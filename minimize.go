package res

import (
	"context"
	"errors"
	"fmt"

	"res/internal/minimize"
	"res/internal/store"
)

// MinimalRepro is a delta-debugged minimal reproduction: the smallest
// evidence attachment set and tightest search budgets that still
// re-analyze to the same root-cause key as the original failure tuple.
// Encode/Decode give its canonical wire form (RESMINR1) and Fingerprint
// its content address.
type MinimalRepro = minimize.MinimalRepro

// DecodeMinimalRepro parses wire-form minimal-repro bytes (RESMINR1),
// rejecting non-canonical encodings.
func DecodeMinimalRepro(b []byte) (*MinimalRepro, error) { return minimize.Decode(b) }

// Minimize delta-debugs a failure tuple: it analyzes (p, d) under the
// supplied options to pin the root-cause key, then runs ddmin over the
// evidence attachment set, tries dropping the checkpoint ring, and
// bisects the depth and node budgets downward — re-running the analyzer
// after every candidate reduction and keeping only reductions that
// re-analyze to the byte-identical cause key. The result is the smallest
// tuple that still reproduces the analysis, suitable for attaching to a
// bug report in place of the full production recording.
//
// Minimization preserves the cause key by construction: every kept
// reduction was verified by a full re-analysis. The options are the same
// ones Analyze takes; observer and trace options are not propagated to
// the internal re-runs.
func Minimize(ctx context.Context, p *Program, d *Dump, opts ...Option) (*MinimalRepro, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	srcs := cfg.sources()
	ring := cfg.checkpoints
	a := NewAnalyzer(p)

	runs := 0
	var best *Result
	run := func(sub []EvidenceSource, ring *CheckpointRing, depth, nodes int) (*Result, error) {
		runs++
		return a.Analyze(ctx, d,
			WithMaxDepth(depth),
			WithMaxNodes(nodes),
			WithBeamWidth(cfg.beamWidth),
			WithSolverOptions(cfg.solver),
			WithSearchParallelism(cfg.parallelism),
			WithCheckpoints(ring),
			WithEvidence(sub...),
		)
	}

	r0, err := run(srcs, ring, cfg.maxDepth, cfg.maxNodes)
	if err != nil {
		return nil, fmt.Errorf("res: minimize baseline analysis: %w", err)
	}
	if r0.Cause == nil {
		return nil, errors.New("res: nothing to minimize: baseline analysis identified no root cause")
	}
	if r0.Partial {
		return nil, errors.New("res: nothing to minimize: baseline analysis was interrupted")
	}
	key := r0.Cause.Key()
	best = r0

	// ok re-analyzes under a candidate reduction and accepts it only when
	// the analysis completes with the byte-identical cause key.
	ok := func(sub []EvidenceSource, ring *CheckpointRing, depth, nodes int) bool {
		if ctx.Err() != nil {
			return false
		}
		r, err := run(sub, ring, depth, nodes)
		if err != nil || r.Cause == nil || r.Partial || r.Cause.Key() != key {
			return false
		}
		best = r
		return true
	}

	// Dimension 1: ddmin the evidence attachment set.
	pick := func(idx []int) []EvidenceSource {
		out := make([]EvidenceSource, 0, len(idx))
		for _, i := range idx {
			out = append(out, srcs[i])
		}
		return out
	}
	keptIdx := minimize.DDMin(len(srcs), func(sub []int) bool {
		return ok(pick(sub), ring, cfg.maxDepth, cfg.maxNodes)
	})
	kept := pick(keptIdx)
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	// Dimension 2: the checkpoint ring, kept only if dropping it loses
	// the cause.
	ringDropped := false
	if ring != nil && ok(kept, nil, cfg.maxDepth, cfg.maxNodes) {
		ring = nil
		ringDropped = true
	}

	// Dimension 3: the depth budget, bisected down from the depth the
	// cause was actually found at.
	minDepth := cfg.maxDepth
	if minDepth == 0 {
		minDepth = best.CauseDepth
	}
	depthReduced := false
	if hi := best.CauseDepth; hi >= 1 && ok(kept, ring, hi, cfg.maxNodes) {
		minDepth = minimize.BisectMin(1, hi, func(v int) bool {
			return ok(kept, ring, v, cfg.maxNodes)
		})
		depthReduced = true
	}

	// Dimension 4: the node budget, tightened to the attempts the
	// minimized analysis actually spent.
	minNodes := cfg.maxNodes
	nodesReduced := false
	if att := best.Report.Stats.Attempts; att > 0 && ok(kept, ring, minDepth, att) {
		minNodes = att
		nodesReduced = true
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	m := &MinimalRepro{
		CauseKey:    key,
		MaxDepth:    minDepth,
		MaxNodes:    minNodes,
		SuffixDepth: best.CauseDepth,
		OrigSources: len(srcs),
		MinSources:  len(kept),
		Runs:        runs,
		Reductions:  (len(srcs) - len(kept)) + int(b2i(ringDropped)+b2i(depthReduced)+b2i(nodesReduced)),
	}
	if len(kept) > 0 {
		m.Evidence = EncodeEvidence(kept...)
	}
	if ring != nil {
		m.Checkpoints = ring.Encode()
	}
	if fp, err := store.ProgramFingerprint(p); err == nil {
		m.ProgramFP = fp.String()
	}
	if fp, _, err := store.DumpFingerprint(d); err == nil {
		m.DumpFP = fp.String()
	}
	return m, nil
}

// DescribeMinimalRepro renders a minimal repro for humans.
func DescribeMinimalRepro(m *MinimalRepro) string {
	s := fmt.Sprintf("minimal repro for %s: %d/%d evidence sources, depth %d, nodes %d",
		m.CauseKey, m.MinSources, m.OrigSources, m.MaxDepth, m.MaxNodes)
	if m.Checkpoints == nil {
		s += ", no checkpoint ring"
	} else {
		s += ", checkpoint ring kept"
	}
	s += fmt.Sprintf(" (%d reductions in %d analyzer runs)", m.Reductions, m.Runs)
	return s
}

package res_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"res"
	"res/internal/evidence"
	"res/internal/workload"
)

// normalizedJSON renders a result's deterministic JSON report with the
// documented nondeterministic fields (elapsed_ms and the wall-clock span
// tree) zeroed.
func normalizedJSON(t testing.TB, r *res.Result) []byte {
	t.Helper()
	rep := r.JSONReport()
	rep.ElapsedMS = 0
	rep.Trace = nil
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSearchEquivalenceParallelVsSequential is the correctness contract of
// the parallel + incremental engine: across the workload corpus and a
// sweep of depth budgets, the report produced with candidate-level
// parallelism is byte-identical to the sequential engine's — statistics,
// suffixes, causes, exploitability, everything except wall-clock.
func TestSearchEquivalenceParallelVsSequential(t *testing.T) {
	bugs := []*workload.Bug{
		workload.Fig1(),
		workload.RaceCounter(),
		workload.AtomViolation(),
		workload.WriteWriteRace(),
		workload.MultiSiteRace(),
		workload.AmbiguousDispatch(8),
		workload.UseAfterFree(),
		workload.TaintedOverflow(),
		workload.HealthyCompute(),
		workload.DistanceChain(6),
	}
	ctx := context.Background()
	for _, bug := range bugs {
		bug := bug
		t.Run(bug.Name, func(t *testing.T) {
			t.Parallel()
			p := bug.Program()
			d, _, err := bug.FindFailure(60)
			if err != nil {
				t.Fatalf("no failing dump: %v", err)
			}
			for _, depth := range []int{4, 10, 16} {
				base := []res.Option{res.WithMaxDepth(depth), res.WithMaxNodes(2500)}
				seq := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(1))...)
				par := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(4))...)

				rs, err := seq.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("depth %d: sequential: %v", depth, err)
				}
				rp, err := par.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("depth %d: parallel: %v", depth, err)
				}
				js, jp := normalizedJSON(t, rs), normalizedJSON(t, rp)
				if !bytes.Equal(js, jp) {
					t.Errorf("depth %d: parallel report differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", depth, js, jp)
				}
				// And the parallel engine is deterministic run to run.
				rp2, err := par.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("depth %d: parallel rerun: %v", depth, err)
				}
				if jp2 := normalizedJSON(t, rp2); !bytes.Equal(jp, jp2) {
					t.Errorf("depth %d: parallel engine nondeterministic across runs", depth)
				}
			}
		})
	}
}

// TestSearchEquivalenceWithEvidence extends the byte-identity contract to
// the pruned search paths: with the classic hints (now lowered through
// evidence.Source) and with recorded evidence attached, the parallel
// engine's report is still byte-identical to the sequential one.
func TestSearchEquivalenceWithEvidence(t *testing.T) {
	bugs := []*workload.Bug{
		workload.RaceCounter(),
		workload.AmbiguousDispatch(8),
		workload.MultiSiteRace(),
	}
	ctx := context.Background()
	for _, bug := range bugs {
		bug := bug
		t.Run(bug.Name, func(t *testing.T) {
			t.Parallel()
			p := bug.Program()
			rcfg := evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64}
			d, set, _, err := bug.FindFailureRecorded(60, rcfg)
			if err != nil {
				t.Fatalf("no failing dump: %v", err)
			}
			if len(set) == 0 {
				t.Fatal("no evidence recorded")
			}
			variants := map[string][]res.Option{
				"legacy-hints": {res.WithLBR(res.LBRRecordAll), res.WithMatchOutputs()},
				"evidence":     {res.WithEvidence(set...)},
			}
			for name, extra := range variants {
				base := append([]res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500)}, extra...)
				seq := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(1))...)
				par := res.NewAnalyzer(p, append(base, res.WithSearchParallelism(4))...)
				rs, err := seq.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("%s: sequential: %v", name, err)
				}
				rp, err := par.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("%s: parallel: %v", name, err)
				}
				js, jp := normalizedJSON(t, rs), normalizedJSON(t, rp)
				if !bytes.Equal(js, jp) {
					t.Errorf("%s: parallel report differs from sequential:\n--- sequential\n%s\n--- parallel\n%s", name, js, jp)
				}
			}
		})
	}
}

// TestSearchEquivalenceTracingOnOff is the zero-interference contract of
// the observability layer: enabling span tracing changes nothing about
// the analysis — across the corpus and at any search parallelism, the
// report with tracing on is byte-identical (modulo the trace field
// itself) to the report with tracing off, and the traced run actually
// produced a span tree rooted at "analysis".
func TestSearchEquivalenceTracingOnOff(t *testing.T) {
	bugs := []*workload.Bug{
		workload.Fig1(),
		workload.RaceCounter(),
		workload.AmbiguousDispatch(8),
		workload.UseAfterFree(),
		workload.HealthyCompute(),
	}
	ctx := context.Background()
	for _, bug := range bugs {
		bug := bug
		t.Run(bug.Name, func(t *testing.T) {
			t.Parallel()
			p := bug.Program()
			d, _, err := bug.FindFailure(60)
			if err != nil {
				t.Fatalf("no failing dump: %v", err)
			}
			for _, par := range []int{1, 4} {
				base := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500), res.WithSearchParallelism(par)}
				plain := res.NewAnalyzer(p, base...)
				traced := res.NewAnalyzer(p, append(base, res.WithTrace(true))...)

				r0, err := plain.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("parallelism %d: untraced: %v", par, err)
				}
				r1, err := traced.Analyze(ctx, d)
				if err != nil {
					t.Fatalf("parallelism %d: traced: %v", par, err)
				}
				if r0.Trace != nil {
					t.Errorf("parallelism %d: untraced analysis carries a trace", par)
				}
				if r1.Trace == nil || len(r1.Trace.Spans) == 0 {
					t.Fatalf("parallelism %d: traced analysis has no span tree", par)
				}
				if root := r1.Trace.Spans[0]; root.Name != "analysis" {
					t.Errorf("parallelism %d: root span is %q, want \"analysis\"", par, root.Name)
				}
				j0, j1 := normalizedJSON(t, r0), normalizedJSON(t, r1)
				if !bytes.Equal(j0, j1) {
					t.Errorf("parallelism %d: tracing changed the report:\n--- off\n%s\n--- on\n%s", par, j0, j1)
				}
			}
		})
	}
}

// TestConcurrentAnalysesSharedAnalyzerParallelSearch exercises the layered
// hot path under the race detector: many goroutines share one Analyzer,
// each analysis itself fanning candidates across an inner worker pool, and
// every result must match the single-threaded reference.
func TestConcurrentAnalysesSharedAnalyzerParallelSearch(t *testing.T) {
	bug := workload.RaceCounter()
	p := bug.Program()
	dumps := collectDumps(t, bug, 3)
	opts := []res.Option{res.WithMaxDepth(12), res.WithMaxNodes(1500), res.WithSearchParallelism(4)}
	a := res.NewAnalyzer(p, opts...)
	ctx := context.Background()

	want := make([][]byte, len(dumps))
	for i, d := range dumps {
		r, err := a.Analyze(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalizedJSON(t, r)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 6*len(dumps))
	for g := 0; g < 6; g++ {
		for i := range dumps {
			wg.Add(1)
			go func(g, i int) {
				defer wg.Done()
				r, err := a.Analyze(ctx, dumps[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d dump %d: %v", g, i, err)
					return
				}
				if !bytes.Equal(normalizedJSON(t, r), want[i]) {
					errs <- fmt.Errorf("goroutine %d dump %d: report differs from reference", g, i)
				}
			}(g, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

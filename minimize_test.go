package res_test

import (
	"bytes"
	"context"
	"testing"

	"res"
	"res/internal/checkpoint"
	"res/internal/evidence"
	"res/internal/workload"
)

// minimizeWorkload is the acceptance harness for res.Minimize: analyze a
// recorded failure under a deliberately redundant evidence set, minimize,
// and require (a) the byte-identical cause key, (b) a strictly smaller
// attachment set, (c) that the minimized tuple — decoded from its own
// wire form — re-analyzes to the same key under the minimized budgets.
func minimizeWorkload(t *testing.T, bug *workload.Bug) {
	t.Helper()
	ctx := context.Background()
	p := bug.Program()
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64})
	if err != nil {
		t.Fatalf("no failing dump: %v", err)
	}
	// Redundant attachment set: the recorded evidence plus the classic
	// dump hints, which largely duplicate it.
	srcs := append([]res.EvidenceSource{}, set...)
	srcs = append(srcs, res.EvidenceLBR(res.LBRRecordAll), res.EvidenceOutputLog())
	opts := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500), res.WithEvidence(srcs...)}

	base, err := res.NewAnalyzer(p).Analyze(ctx, d, opts...)
	if err != nil {
		t.Fatalf("baseline analysis: %v", err)
	}
	if base.Cause == nil {
		t.Fatal("baseline analysis found no cause")
	}
	key := base.Cause.Key()

	m, err := res.Minimize(ctx, p, d, opts...)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if m.CauseKey != key {
		t.Fatalf("minimized cause key %q != baseline %q", m.CauseKey, key)
	}
	if m.OrigSources != len(srcs) {
		t.Fatalf("OrigSources = %d; want %d", m.OrigSources, len(srcs))
	}
	if m.MinSources >= m.OrigSources {
		t.Fatalf("minimization kept all %d sources; redundant set must shrink strictly", m.OrigSources)
	}
	if m.Runs < 2 {
		t.Fatalf("Runs = %d; minimization must re-run the analyzer", m.Runs)
	}
	if m.Reductions < 1 {
		t.Fatalf("Reductions = %d; want at least the evidence reduction", m.Reductions)
	}

	// The wire form is a canonical fixed point.
	wire := m.Encode()
	dec, err := res.DecodeMinimalRepro(wire)
	if err != nil {
		t.Fatalf("DecodeMinimalRepro: %v", err)
	}
	if !bytes.Equal(dec.Encode(), wire) {
		t.Fatal("minimal repro decode∘encode is not a fixed point")
	}
	if dec.Fingerprint() != m.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}

	// The minimized tuple reproduces the byte-identical cause key.
	reOpts := []res.Option{res.WithMaxDepth(dec.MaxDepth), res.WithMaxNodes(dec.MaxNodes)}
	if dec.Evidence != nil {
		minSet, err := res.DecodeEvidence(dec.Evidence)
		if err != nil {
			t.Fatalf("decode minimized evidence: %v", err)
		}
		if len(minSet) != dec.MinSources {
			t.Fatalf("minimized evidence has %d sources; repro says %d", len(minSet), dec.MinSources)
		}
		reOpts = append(reOpts, res.WithEvidence(minSet...))
	} else if dec.MinSources != 0 {
		t.Fatalf("repro has no evidence attachment but MinSources = %d", dec.MinSources)
	}
	if dec.Checkpoints != nil {
		ring, err := res.DecodeCheckpoints(dec.Checkpoints)
		if err != nil {
			t.Fatalf("decode minimized checkpoints: %v", err)
		}
		reOpts = append(reOpts, res.WithCheckpoints(ring))
	}
	re, err := res.NewAnalyzer(p).Analyze(ctx, d, reOpts...)
	if err != nil {
		t.Fatalf("re-analysis of minimized tuple: %v", err)
	}
	if re.Cause == nil || re.Cause.Key() != key {
		t.Fatalf("minimized tuple re-analyzes to %v; want cause key %q", re.Cause, key)
	}
}

func TestMinimizePreservesCauseKeyRaceCounter(t *testing.T) {
	minimizeWorkload(t, workload.RaceCounter())
}

func TestMinimizePreservesCauseKeyAtomViolation(t *testing.T) {
	minimizeWorkload(t, workload.AtomViolation())
}

func TestMinimizeWithCheckpointRing(t *testing.T) {
	ctx := context.Background()
	bug := workload.RaceCounter()
	p := bug.Program()
	d, ring, _, err := bug.FindFailureCheckpointed(60, checkpoint.Config{Every: 16})
	if err != nil {
		t.Fatalf("no failing dump: %v", err)
	}
	opts := []res.Option{
		res.WithMaxDepth(10), res.WithMaxNodes(2500),
		res.WithEvidence(res.EvidenceLBR(res.LBRRecordAll), res.EvidenceOutputLog()),
		res.WithCheckpoints(ring),
	}
	base, err := res.NewAnalyzer(p).Analyze(ctx, d, opts...)
	if err != nil || base.Cause == nil {
		t.Fatalf("baseline analysis: %v, %+v", err, base)
	}
	m, err := res.Minimize(ctx, p, d, opts...)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if m.CauseKey != base.Cause.Key() {
		t.Fatalf("minimized cause key %q != baseline %q", m.CauseKey, base.Cause.Key())
	}
	// The ring either survived as a canonical attachment or was dropped
	// as redundant; both are valid minimizations.
	if m.Checkpoints != nil {
		if _, err := res.DecodeCheckpoints(m.Checkpoints); err != nil {
			t.Fatalf("kept checkpoint attachment does not decode: %v", err)
		}
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	// The service caches minimize jobs by their input fingerprint, so the
	// same tuple must minimize to byte-identical repro bytes every time.
	ctx := context.Background()
	bug := workload.AtomViolation()
	p := bug.Program()
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64})
	if err != nil {
		t.Fatalf("no failing dump: %v", err)
	}
	opts := []res.Option{res.WithMaxDepth(10), res.WithMaxNodes(2500), res.WithEvidence(set...)}
	m1, err := res.Minimize(ctx, p, d, opts...)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	m2, err := res.Minimize(ctx, p, d, opts...)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !bytes.Equal(m1.Encode(), m2.Encode()) {
		t.Fatalf("minimization is not deterministic:\nfirst:  %x\nsecond: %x", m1.Encode(), m2.Encode())
	}
}

package res

import (
	"errors"

	"res/internal/fixverify"
)

// FixPatch is a structured source patch for fix verification: an ordered
// list of replace/insert/delete operations keyed by assembler label.
// Encode gives its canonical wire form (RESPATCH1), FormatText the
// human-authored text form, and Fingerprint its content address.
type FixPatch = fixverify.Patch

// FixPatchOp is one patch operation.
type FixPatchOp = fixverify.Op

// FixVerdict is the outcome of verifying a candidate fix against a
// reproduced failure.
type FixVerdict = fixverify.Result

// FixVerifyConfig tunes fix verification (run-out budget past the
// reproduced window).
type FixVerifyConfig = fixverify.Config

// Fix verification verdicts.
const (
	// FixVerdictFixed: the patched program survives the reproduced
	// failure schedule and the residual failure constraint is
	// unsatisfiable.
	FixVerdictFixed = fixverify.VerdictFixed
	// FixVerdictNotFixed: the failure still reproduces under the patch
	// (or the residual failure constraint remains satisfiable).
	FixVerdictNotFixed = fixverify.VerdictNotFixed
	// FixVerdictInconclusive: the patch changes the execution before the
	// reproduced window's anchor, so the recorded schedule cannot be
	// replayed through it.
	FixVerdictInconclusive = fixverify.VerdictInconclusive
)

// ParsePatch parses the human-authored patch text format
// (replace/insert/delete <label> ... end).
func ParsePatch(src string) (*FixPatch, error) { return fixverify.ParseText(src) }

// DecodePatch accepts a patch in either form: canonical RESPATCH1 wire
// bytes or the text format.
func DecodePatch(b []byte) (*FixPatch, error) { return fixverify.DecodeAny(b) }

// VerifyFix replays an analysis's reproduced failure suffix through a
// patched version of the program and reports whether the patch fixes
// the failure.
//
// source must be the assembly source the analyzed program was built
// from (patches are keyed by its labels). r must be an analysis Result
// for that program with a synthesized suffix — typically the analysis
// whose cause the patch claims to fix, or the re-analysis of a
// minimized repro (Minimize) for a faster verdict.
//
// The verdict is "fixed" when the patched program survives the
// reproduced schedule and the residual failure constraint at the
// original failure site is unsatisfiable; "not-fixed" when the failure
// (or a successor of it) still occurs or the residual constraint stays
// satisfiable; "inconclusive" when the patch alters the execution
// before the reproduced window first reaches patched code, so the
// recorded schedule cannot be driven through it — in that case, record
// a fresh failure of the patched program and analyze that instead.
func VerifyFix(source string, patch *FixPatch, r *Result, d *Dump) (*FixVerdict, error) {
	return VerifyFixConfig(source, patch, r, d, FixVerifyConfig{})
}

// VerifyFixConfig is VerifyFix with an explicit configuration.
func VerifyFixConfig(source string, patch *FixPatch, r *Result, d *Dump, cfg FixVerifyConfig) (*FixVerdict, error) {
	if r == nil || r.Synthesized == nil {
		return nil, errors.New("res: VerifyFix needs an analysis result with a synthesized suffix")
	}
	return fixverify.Verify(source, patch, r.Synthesized, d, cfg)
}

package res

import (
	"encoding/json"

	"res/internal/obs"
)

// ReportJSON is the machine-readable analysis artifact: a deterministic,
// stable-schema rendering of a Result for downstream consumers (triage
// pipelines, dashboards, agents). Two analyses of the same dump with the
// same configuration produce byte-identical reports except for
// elapsed_ms and, when tracing is on, trace.
type ReportJSON struct {
	// Verdict is "root-cause", "hardware-suspect", or "no-cause".
	Verdict string `json:"verdict"`
	// Partial marks an analysis cut short by cancellation or deadline.
	Partial bool `json:"partial,omitempty"`
	// Cause is present when Verdict is "root-cause".
	Cause *CauseJSON `json:"cause,omitempty"`
	// CauseDepth is the suffix length at which the cause was identified.
	CauseDepth int `json:"cause_depth,omitempty"`
	// Suffix is present when a suffix was synthesized: the schedule as
	// "t<tid>:b<block>" steps, oldest first, plus recovered inputs.
	Suffix *SuffixJSON `json:"suffix,omitempty"`
	// Exploitable is the taint verdict, when taint analysis ran.
	Exploitable *bool `json:"exploitable,omitempty"`
	// ExploitDetail explains an exploitable verdict.
	ExploitDetail string `json:"exploit_detail,omitempty"`
	// Evidence lists the kinds of the evidence sources supplied to the
	// analysis (WithEvidence provenance), in application order.
	Evidence []string `json:"evidence,omitempty"`
	// CheckpointAnchor is present when the search was anchored on a
	// recorded checkpoint (WithCheckpoints).
	CheckpointAnchor *CheckpointAnchorJSON `json:"checkpoint_anchor,omitempty"`
	// ReplayMatches reports whether the verification replay reproduced
	// the coredump exactly.
	ReplayMatches bool `json:"replay_matches"`
	// Stats is the search effort.
	Stats StatsJSON `json:"stats"`
	// ElapsedMS is the wall-clock analysis time in milliseconds (the one
	// nondeterministic field).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the analysis's span tree when tracing was on (WithTrace).
	// Like ElapsedMS it carries wall-clock timings, so it is excluded
	// from the byte-determinism guarantee.
	Trace *obs.TraceData `json:"trace,omitempty"`
}

// CauseJSON is the JSON shape of a root cause.
type CauseJSON struct {
	Kind   string `json:"kind"`
	PCs    []int  `json:"pcs,omitempty"`
	Addr   uint32 `json:"addr,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Key is the triage bucketing key (stable across manifestations of
	// the same bug).
	Key string `json:"key"`
}

// CheckpointAnchorJSON is the JSON shape of a checkpoint anchor: the
// checkpoint's step counter, the suffix depth it bounds (dump steps
// minus checkpoint step), and whether forward replay verified the
// failure reproduces from it.
type CheckpointAnchorJSON struct {
	Step     uint64 `json:"step"`
	Depth    int    `json:"depth"`
	Verified bool   `json:"verified"`
}

// SuffixJSON is the JSON shape of a synthesized suffix.
type SuffixJSON struct {
	Steps  []string    `json:"steps"`
	Inputs []InputJSON `json:"inputs,omitempty"`
}

// InputJSON is one recovered external input.
type InputJSON struct {
	Tid     int   `json:"tid"`
	Channel int64 `json:"channel"`
	Value   int64 `json:"value"`
}

// StatsJSON is the JSON shape of the search statistics.
type StatsJSON struct {
	Attempts    int `json:"attempts"`
	Feasible    int `json:"feasible"`
	Infeasible  int `json:"infeasible"`
	Unknown     int `json:"unknown"`
	SolverCalls int `json:"solver_calls"`
	MaxDepth    int `json:"max_depth"`
}

// JSONReport converts the result to its machine-readable form.
func (r *Result) JSONReport() *ReportJSON {
	rep := &ReportJSON{
		Partial:   r.Partial,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000,
	}
	switch {
	case r.Cause != nil:
		rep.Verdict = "root-cause"
	case r.HardwareSuspect:
		rep.Verdict = "hardware-suspect"
	default:
		rep.Verdict = "no-cause"
	}
	if r.Cause != nil {
		rep.Cause = &CauseJSON{
			Kind:   r.Cause.Kind.String(),
			PCs:    r.Cause.PCs,
			Addr:   r.Cause.Addr,
			Detail: r.Cause.Detail,
			Key:    r.Cause.Key(),
		}
		rep.CauseDepth = r.CauseDepth
	}
	if r.Suffix != nil {
		sj := &SuffixJSON{Steps: make([]string, 0, len(r.Suffix.Steps))}
		for _, s := range r.Suffix.Steps {
			sj.Steps = append(sj.Steps, s.String())
		}
		for _, in := range r.Suffix.Inputs {
			sj.Inputs = append(sj.Inputs, InputJSON{Tid: in.Tid, Channel: in.Channel, Value: in.Value})
		}
		rep.Suffix = sj
	}
	if r.Exploitability != nil {
		exp := r.Exploitability.Exploitable
		rep.Exploitable = &exp
		if exp {
			rep.ExploitDetail = r.Exploitability.Detail
		}
	}
	if len(r.Evidence) > 0 {
		rep.Evidence = append([]string(nil), r.Evidence...)
	}
	if a := r.CheckpointAnchor; a != nil {
		rep.CheckpointAnchor = &CheckpointAnchorJSON{Step: a.Step, Depth: a.Depth, Verified: a.Verified}
	}
	rep.Trace = r.Trace
	rep.ReplayMatches = r.Replay != nil && r.Replay.Matches
	if r.Report != nil {
		s := r.Report.Stats
		rep.Stats = StatsJSON{
			Attempts:    s.Attempts,
			Feasible:    s.Feasible,
			Infeasible:  s.Infeasible,
			Unknown:     s.Unknown,
			SolverCalls: s.SolverCalls,
			MaxDepth:    s.MaxDepth,
		}
	}
	return rep
}

// JSON renders the result as an indented, deterministic JSON report.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r.JSONReport(), "", "  ")
}

package res_test

import (
	"strings"
	"testing"

	"res"
	"res/internal/breadcrumb"
	"res/internal/workload"
)

func TestAnalyzeFlagsHardwareViaFacade(t *testing.T) {
	bug := workload.HealthyCompute()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := p.GlobalAddr("g")
	d.Mem.Store(g, d.Mem.Load(g)^8)
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HardwareSuspect {
		t.Errorf("corrupted dump not flagged; stats %+v", r.Report.Stats)
	}
	if r.Cause != nil {
		t.Errorf("cause reported for an inconsistent dump: %v", r.Cause)
	}
	if !strings.Contains(r.Describe(), "hardware") {
		t.Errorf("Describe = %q", r.Describe())
	}
}

func TestDescribeWithCause(t *testing.T) {
	bug := workload.TaintedOverflow()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Analyze(bug.Program(), d, res.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	desc := r.Describe()
	if !strings.Contains(desc, "root cause") {
		t.Errorf("Describe = %q", desc)
	}
	if !strings.Contains(desc, "ATTACKER-CONTROLLED") {
		t.Errorf("exploitability missing from %q", desc)
	}
}

func TestAnalyzeWithBreadcrumbOptions(t *testing.T) {
	// The facade's LBR and output-matching options must not change the
	// verdict, only (potentially) the effort.
	bug := workload.DistanceChain(8)
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := res.Analyze(p, d, res.Options{MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := res.Analyze(p, d, res.Options{
		MaxDepth: 12, UseLBR: true, LBRMode: breadcrumb.RecordAll, MatchOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cause == nil || pruned.Cause == nil {
		t.Fatalf("causes: %v vs %v", plain.Cause, pruned.Cause)
	}
	if plain.Cause.Key() != pruned.Cause.Key() {
		t.Errorf("breadcrumbs changed the verdict: %v vs %v", plain.Cause, pruned.Cause)
	}
	if pruned.Report.Stats.Attempts > plain.Report.Stats.Attempts {
		t.Errorf("breadcrumbs increased effort: %d vs %d",
			pruned.Report.Stats.Attempts, plain.Report.Stats.Attempts)
	}
}

func TestRunCleanExit(t *testing.T) {
	p := res.MustAssemble("func main:\n const r1, 1\n assert r1\n halt")
	d, err := res.Run(p, res.RunConfig{})
	if err != nil || d != nil {
		t.Fatalf("clean program: %v %v", d, err)
	}
}

func TestReplayFacade(t *testing.T) {
	bug := workload.UseAfterFree()
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := res.Analyze(p, d, res.Options{MaxDepth: 10})
	if err != nil || r.Synthesized == nil {
		t.Fatalf("analyze: %v %v", r, err)
	}
	rr, err := res.Replay(p, r.Synthesized, d)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Divergence != nil || !rr.Matches {
		t.Errorf("facade replay: div=%v matches=%v", rr.Divergence, rr.Matches)
	}
}

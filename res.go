// Package res is the public face of the reverse execution synthesis (RES)
// library, a reproduction of "Automated Debugging for Arbitrarily Long
// Executions" (Zamfir et al., HotOS 2013).
//
// The workflow mirrors the paper:
//
//  1. Assemble a program for the RES virtual machine (Assemble).
//  2. Run it in production mode (Run); on failure you get a coredump —
//     the only runtime artifact, no recording.
//  3. Open an analysis session for the program (NewAnalyzer). The session
//     precomputes the backward-CFG predecessor index once, is safe for
//     concurrent use, and is meant to live as long as the program does —
//     one session serves every coredump the program ever produces.
//  4. Analyze coredumps (Analyzer.Analyze): RES walks the control-flow
//     graph backward from the failure, building symbolic snapshots and
//     keeping only predecessor hypotheses consistent with the dump, until
//     it has an execution suffix that provably ends in the observed
//     failure. The call takes a context.Context — cancellation and
//     deadlines reach all the way into the solver, and a timed-out
//     analysis returns its partial Result instead of hanging. Many dumps
//     are processed concurrently with Analyzer.AnalyzeBatch.
//  5. The suffix replays deterministically (Replay), and the instrumented
//     replay identifies the root cause (the Result's Cause) — including
//     data races and atomicity violations whose failure manifests far
//     from the cause.
//
// Analyses are tuned with functional options (WithMaxDepth, WithLBR,
// WithMatchOutputs, WithSolverOptions, ...), given either to NewAnalyzer
// as session defaults or to an individual Analyze call as overrides, and
// observed in flight through an event stream (WithObserver). Results
// render for humans (Result.Describe) or machines (Result.JSON).
//
// The session also answers the paper's other questions: a coredump no
// feasible suffix can explain is flagged as a likely hardware error
// (Analyzer.ClassifyHardware), and the taint verdict classifies crashes
// as attacker-controllable.
//
// The one-shot Analyze function and its Options struct are deprecated
// shims over a throwaway session, kept for callers of the original API.
package res

import (
	"context"
	"fmt"
	"time"

	"res/internal/asm"
	"res/internal/breadcrumb"
	"res/internal/checkpoint"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/obs"
	"res/internal/prog"
	"res/internal/replay"
	"res/internal/rootcause"
	"res/internal/solver"
	"res/internal/taint"
	"res/internal/trace"
	"res/internal/vm"
)

// Re-exported core types, so callers only import this package.
type (
	// Program is an assembled RES-VM program.
	Program = prog.Program
	// Dump is a coredump: the post-failure snapshot RES consumes.
	Dump = coredump.Dump
	// Cause is an identified root cause.
	Cause = rootcause.Cause
	// Suffix is a synthesized, replayable execution suffix.
	Suffix = trace.Suffix
	// RunConfig configures a concrete (production) execution.
	RunConfig = vm.Config

	// EvidenceSource is one piece of production-side evidence that can
	// prune the backward search (WithEvidence). Build sources with the
	// Evidence* constructors, a recorded run (NewEvidenceRecorder), or by
	// decoding wire bytes (DecodeEvidence).
	EvidenceSource = evidence.Source
	// EvidenceSet is an ordered collection of evidence sources with a
	// canonical wire encoding and content fingerprint.
	EvidenceSet = evidence.Set
	// EventRec is one sampled scheduling breadcrumb (block index, thread,
	// block) for EvidenceEventLog.
	EventRec = evidence.EventRec
	// ProbeRec is one timestamped memory observation for
	// EvidenceMemProbe.
	ProbeRec = evidence.Probe
	// EvidenceRecordConfig tunes the production-side evidence recorder.
	EvidenceRecordConfig = evidence.RecordConfig
	// EvidenceRecorder collects evidence from a live VM run.
	EvidenceRecorder = evidence.Recorder

	// CheckpointRing is a recorded ring of execution checkpoints plus the
	// schedule/input log window that makes them replayable
	// (WithCheckpoints). Produce one with NewCheckpointRecorder or by
	// decoding wire bytes (DecodeCheckpoints).
	CheckpointRing = checkpoint.Ring
	// CheckpointConfig tunes the checkpoint recorder (interval, ring cap,
	// log window).
	CheckpointConfig = checkpoint.Config
	// CheckpointRecorder captures a checkpoint ring from a live VM run.
	CheckpointRecorder = checkpoint.Recorder
	// CheckpointAnchor describes how a checkpointed analysis was anchored:
	// the checkpoint step, the suffix depth it pins, and whether forward
	// replay verified the failure reproduces from it.
	CheckpointAnchor = checkpoint.Anchor
)

// EvidenceLBR interprets the dump's hardware branch ring under the given
// recording mode — the Source form of WithLBR.
func EvidenceLBR(mode LBRMode) EvidenceSource { return evidence.LBR{Mode: mode} }

// EvidenceOutputLog matches suffix OUTPUT records against the dump's
// output-log tail — the Source form of WithMatchOutputs.
func EvidenceOutputLog() EvidenceSource { return evidence.OutputLog{} }

// EvidenceEventLog builds a sparse timestamped schedule sample: each
// record pins one suffix depth to a (thread, block) step.
func EvidenceEventLog(recs []EventRec) EvidenceSource { return evidence.EventLog{Records: recs} }

// EvidenceBranchTrace builds an Intel-PT-style partial branch trace: the
// taken/not-taken outcomes of the most recent conditional branches,
// oldest first.
func EvidenceBranchTrace(bits []bool) EvidenceSource { return evidence.BranchTrace{Bits: bits} }

// EvidenceMemProbe builds a set of timestamped memory observations,
// discharged through the solver like dump state.
func EvidenceMemProbe(probes []ProbeRec) EvidenceSource { return evidence.MemProbe{Probes: probes} }

// EncodeEvidence renders evidence sources in their canonical wire form
// (the bytes resd accepts as a dump's evidence attachment).
func EncodeEvidence(srcs ...EvidenceSource) []byte { return evidence.Set(srcs).Encode() }

// DecodeEvidence parses wire-form evidence bytes.
func DecodeEvidence(b []byte) (EvidenceSet, error) { return evidence.Decode(b) }

// NewEvidenceRecorder creates a recorder that collects evidence from a
// live VM run of p: install rec.Hooks() in the RunConfig, rec.Bind the
// VM, run, then rec.Evidence().
func NewEvidenceRecorder(p *Program, cfg EvidenceRecordConfig) *EvidenceRecorder {
	return evidence.NewRecorder(p, cfg)
}

// NewCheckpointRecorder creates a recorder that captures a checkpoint
// ring from a live VM run of p: install rec.Hooks() in the RunConfig
// (compose with other hooks via vm.MergeHooks / MergeRunHooks), rec.Bind
// the VM, run, then rec.Ring().
func NewCheckpointRecorder(p *Program, cfg CheckpointConfig) *CheckpointRecorder {
	return checkpoint.NewRecorder(p, cfg)
}

// MergeRunHooks composes several RunConfig hook sets into one; every
// non-nil callback of every argument fires, in argument order. Use it to
// record evidence and checkpoints in the same run.
func MergeRunHooks(hs ...vm.Hooks) vm.Hooks { return vm.MergeHooks(hs...) }

// EncodeCheckpoints renders a checkpoint ring in its canonical wire form
// (the bytes resd accepts as a dump's checkpoint attachment). An empty
// ring encodes to nil.
func EncodeCheckpoints(r *CheckpointRing) []byte { return r.Encode() }

// DecodeCheckpoints parses wire-form checkpoint ring bytes. Empty input
// yields a nil ring.
func DecodeCheckpoints(b []byte) (*CheckpointRing, error) { return checkpoint.Decode(b) }

// Assemble builds a program from RES assembly source.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// Run executes the program in production mode and returns its coredump,
// or nil if the run exits cleanly.
func Run(p *Program, cfg RunConfig) (*Dump, error) {
	v, err := vm.New(p, cfg)
	if err != nil {
		return nil, err
	}
	return v.Run()
}

// Options tunes the one-shot Analyze.
//
// Deprecated: use NewAnalyzer with functional options (WithMaxDepth,
// WithLBR, WithMatchOutputs, WithSolverOptions, ...) instead.
type Options struct {
	// MaxDepth bounds the suffix length (blocks). 0 = default (24).
	MaxDepth int
	// MaxNodes bounds backward-step attempts. 0 = default (100000).
	MaxNodes int
	// UseLBR prunes the search with the dump's branch ring.
	UseLBR bool
	// LBRMode selects the (simulated) hardware recording mode used when
	// interpreting the ring.
	LBRMode breadcrumb.Mode
	// MatchOutputs prunes with error-log breadcrumbs.
	MatchOutputs bool
	// Solver tunes constraint solving; zero values take defaults.
	Solver solver.Options
}

// options lowers the legacy struct to the functional form.
func (o Options) options() []Option {
	opts := []Option{
		WithMaxDepth(o.MaxDepth),
		WithMaxNodes(o.MaxNodes),
		WithSolverOptions(o.Solver),
	}
	if o.UseLBR {
		opts = append(opts, WithLBR(o.LBRMode))
	}
	if o.MatchOutputs {
		opts = append(opts, WithMatchOutputs())
	}
	return opts
}

// Result is the outcome of an analysis.
type Result struct {
	// Report is the raw search report (statistics, all feasible nodes).
	Report *core.Report
	// Cause is the identified root cause (nil only when no suffix could
	// be synthesized at all).
	Cause *Cause
	// CauseDepth is the suffix length at which the cause was identified.
	CauseDepth int
	// Suffix is the synthesized suffix supporting the cause.
	Suffix *Suffix
	// Synthesized is the full pre-image + schedule bundle for replay.
	Synthesized *core.Synthesized
	// Replay is the verification replay of that suffix.
	Replay *replay.Result
	// Exploitability is the taint verdict for the failure.
	Exploitability *taint.Report
	// Evidence is the provenance of the analysis: the kinds of the
	// evidence sources supplied via WithEvidence, in application order
	// (nil when the analysis used none beyond the classic dump hints).
	Evidence []string
	// CheckpointAnchor is set when the search was anchored on a recorded
	// checkpoint (WithCheckpoints): the suffix depth was bounded by
	// Depth instead of the execution length. Nil when the analysis ran
	// unanchored (no ring, or escalation fell back to the full search).
	CheckpointAnchor *CheckpointAnchor
	// HardwareSuspect: no feasible suffix explains the dump.
	HardwareSuspect bool
	// Partial is set when the analysis was cut short by context
	// cancellation or deadline: the fields above reflect the best answer
	// found before the cutoff, not a completed search.
	Partial bool
	// Elapsed is the wall-clock analysis time.
	Elapsed time.Duration
	// Trace is the analysis's observability span tree (WithTrace):
	// evidence compilation, checkpoint bisection probes, every search
	// depth, and cause extraction, each with wall-clock timings. Nil
	// when tracing was off. Like Elapsed, the trace carries timings and
	// is excluded from the report-determinism guarantee.
	Trace *obs.TraceData
}

// AnalysisTrace is the wire form of an analysis's observability span
// tree (see WithTrace): spans in creation order, root first, with
// Chrome trace-event export via its ChromeTrace method.
type AnalysisTrace = obs.TraceData

// Analyze is the one-shot form of Analyzer.Analyze: it builds a throwaway
// session for p and analyzes d with no cancellation.
//
// Deprecated: use NewAnalyzer(p).Analyze(ctx, d) — a kept session reuses
// the program's precomputed indexes across dumps, takes a context, and
// supports batching and progress observation.
func Analyze(p *Program, d *Dump, opt Options) (*Result, error) {
	return NewAnalyzer(p).Analyze(context.Background(), d, opt.options()...)
}

// Replay re-executes a synthesized suffix and reports whether it
// reproduces the dump exactly.
func Replay(p *Program, syn *core.Synthesized, d *Dump) (*replay.Result, error) {
	return replay.Run(p, syn, d, replay.Config{})
}

// Describe renders an analysis result for humans.
func (r *Result) Describe() string {
	if r.Cause == nil {
		if r.HardwareSuspect {
			return "no feasible execution suffix: likely hardware error"
		}
		if r.Partial {
			return "analysis interrupted before a root cause was identified"
		}
		return "no root cause identified within budget"
	}
	s := fmt.Sprintf("root cause: %s (suffix depth %d, %v)", r.Cause, r.CauseDepth, r.Elapsed.Round(time.Millisecond))
	if r.Partial {
		s += "\nnote: analysis interrupted; this is the best answer found before the cutoff"
	}
	if r.Exploitability != nil && r.Exploitability.Exploitable {
		s += "\nexploitability: ATTACKER-CONTROLLED (" + r.Exploitability.Detail + ")"
	}
	return s
}

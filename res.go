// Package res is the public face of the reverse execution synthesis (RES)
// library, a reproduction of "Automated Debugging for Arbitrarily Long
// Executions" (Zamfir et al., HotOS 2013).
//
// The workflow mirrors the paper:
//
//  1. Assemble a program for the RES virtual machine (Assemble).
//  2. Run it in production mode (Run); on failure you get a coredump —
//     the only runtime artifact, no recording.
//  3. Analyze the coredump (Analyze): RES walks the control-flow graph
//     backward from the failure, building symbolic snapshots and keeping
//     only predecessor hypotheses consistent with the dump, until it has
//     an execution suffix that provably ends in the observed failure.
//  4. The suffix replays deterministically (Replay), and the instrumented
//     replay identifies the root cause (the Result's Cause) — including
//     data races and atomicity violations whose failure manifests far
//     from the cause.
//
// Analyze also answers the paper's other questions: a coredump no
// feasible suffix can explain is flagged as a likely hardware error, and
// the taint verdict classifies crashes as attacker-controllable.
package res

import (
	"fmt"
	"time"

	"res/internal/asm"
	"res/internal/breadcrumb"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/replay"
	"res/internal/rootcause"
	"res/internal/solver"
	"res/internal/taint"
	"res/internal/trace"
	"res/internal/vm"
)

// Re-exported core types, so callers only import this package.
type (
	// Program is an assembled RES-VM program.
	Program = prog.Program
	// Dump is a coredump: the post-failure snapshot RES consumes.
	Dump = coredump.Dump
	// Cause is an identified root cause.
	Cause = rootcause.Cause
	// Suffix is a synthesized, replayable execution suffix.
	Suffix = trace.Suffix
	// RunConfig configures a concrete (production) execution.
	RunConfig = vm.Config
)

// Assemble builds a program from RES assembly source.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// Run executes the program in production mode and returns its coredump,
// or nil if the run exits cleanly.
func Run(p *Program, cfg RunConfig) (*Dump, error) {
	v, err := vm.New(p, cfg)
	if err != nil {
		return nil, err
	}
	return v.Run()
}

// Options tunes Analyze.
type Options struct {
	// MaxDepth bounds the suffix length (blocks). 0 = default (24).
	MaxDepth int
	// MaxNodes bounds backward-step attempts. 0 = default (100000).
	MaxNodes int
	// UseLBR prunes the search with the dump's branch ring.
	UseLBR bool
	// LBRMode selects the (simulated) hardware recording mode used when
	// interpreting the ring.
	LBRMode breadcrumb.Mode
	// MatchOutputs prunes with error-log breadcrumbs.
	MatchOutputs bool
	// Solver tunes constraint solving; zero values take defaults.
	Solver solver.Options
}

// Result is the outcome of Analyze.
type Result struct {
	// Report is the raw search report (statistics, all feasible nodes).
	Report *core.Report
	// Cause is the identified root cause (nil only when no suffix could
	// be synthesized at all).
	Cause *Cause
	// CauseDepth is the suffix length at which the cause was identified.
	CauseDepth int
	// Suffix is the synthesized suffix supporting the cause.
	Suffix *Suffix
	// Synthesized is the full pre-image + schedule bundle for replay.
	Synthesized *core.Synthesized
	// Replay is the verification replay of that suffix.
	Replay *replay.Result
	// Exploitability is the taint verdict for the failure.
	Exploitability *taint.Report
	// HardwareSuspect: no feasible suffix explains the dump.
	HardwareSuspect bool
	// Elapsed is the wall-clock analysis time.
	Elapsed time.Duration
}

// specific reports whether a cause pinpoints something beyond the failure
// site itself (a race, a violated atomicity window, heap corruption).
func specific(c *Cause) bool {
	switch c.Kind {
	case rootcause.DataRace, rootcause.AtomicityViolation,
		rootcause.BufferOverflow, rootcause.UseAfterFree, rootcause.DoubleFree:
		return true
	}
	return false
}

// Analyze synthesizes an execution suffix for the dump and identifies the
// failure's root cause. It searches breadth-first: the first faithful
// suffix whose instrumented replay justifies a specific root cause (race,
// atomicity violation, heap corruption) stops the search; otherwise the
// deepest faithful suffix's analysis is returned.
func Analyze(p *Program, d *Dump, opt Options) (*Result, error) {
	start := time.Now()
	res := &Result{}

	copt := core.Options{
		MaxDepth:     opt.MaxDepth,
		MaxNodes:     opt.MaxNodes,
		Solver:       opt.Solver,
		MatchOutputs: opt.MatchOutputs,
	}
	if opt.UseLBR {
		copt.Filter = breadcrumb.LBRFilter(p, d.LBR, opt.LBRMode)
	}
	var (
		eng  *core.Engine
		best *analysisCandidate
	)
	copt.OnSuffix = func(n *core.Node) bool {
		cand := analyzeNode(p, eng, n, d, opt)
		if cand == nil {
			return false
		}
		if best == nil || cand.better(best) {
			best = cand
		}
		// Stop as soon as a specific cause is justified by a faithful
		// replay: the suffix is long enough to contain the root cause.
		return cand.faithful && specific(cand.cause)
	}
	eng = core.New(p, copt)

	rep, err := eng.Analyze(d)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	res.HardwareSuspect = rep.HardwareSuspect
	if best != nil {
		res.Cause = best.cause
		res.CauseDepth = best.node.Depth
		res.Suffix = best.syn.Suffix
		res.Synthesized = best.syn
		res.Replay = best.replay
		if tr, err := taint.Analyze(p, best.syn, d); err == nil {
			res.Exploitability = tr
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type analysisCandidate struct {
	node     *core.Node
	syn      *core.Synthesized
	cause    *Cause
	faithful bool
	replay   *replay.Result
}

// better orders candidates: faithful beats unfaithful, specific beats
// generic, deeper (more context) beats shallower among equals.
func (c *analysisCandidate) better(o *analysisCandidate) bool {
	if c.faithful != o.faithful {
		return c.faithful
	}
	cs, os := specific(c.cause), specific(o.cause)
	if cs != os {
		return cs
	}
	return c.node.Depth > o.node.Depth
}

// analyzeNode concretizes, replays and classifies one feasible node.
func analyzeNode(p *Program, eng *core.Engine, n *core.Node, d *Dump, opt Options) *analysisCandidate {
	syn, err := eng.Concretize(n, d)
	if err != nil {
		return nil
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil || rr.Divergence != nil {
		return nil
	}
	an, err := rootcause.Analyze(p, syn, d)
	if err != nil || an.Cause == nil {
		return nil
	}
	return &analysisCandidate{
		node:     n,
		syn:      syn,
		cause:    an.Cause,
		faithful: rr.Matches && an.Faithful,
		replay:   rr,
	}
}

// Replay re-executes a synthesized suffix and reports whether it
// reproduces the dump exactly.
func Replay(p *Program, syn *core.Synthesized, d *Dump) (*replay.Result, error) {
	return replay.Run(p, syn, d, replay.Config{})
}

// Describe renders an analysis result for humans.
func (r *Result) Describe() string {
	if r.Cause == nil {
		if r.HardwareSuspect {
			return "no feasible execution suffix: likely hardware error"
		}
		return "no root cause identified within budget"
	}
	s := fmt.Sprintf("root cause: %s (suffix depth %d, %v)", r.Cause, r.CauseDepth, r.Elapsed.Round(time.Millisecond))
	if r.Exploitability != nil && r.Exploitability.Exploitable {
		s += "\nexploitability: ATTACKER-CONTROLLED (" + r.Exploitability.Detail + ")"
	}
	return s
}

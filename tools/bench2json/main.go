// Command bench2json converts `go test -bench` text output into the
// unified BENCH_pr9.json artifact: one JSON document with the machine
// context and one record per benchmark result line — name, iteration
// count, ns/op, and every custom metric (steps/sec, overhead-pct,
// depth/op, ...) keyed by its unit. The perf trajectory across PRs is
// meant to be diffed by tooling, not eyeballed out of ad-hoc text.
//
// Usage: go test -bench . | go run ./tools/bench2json > BENCH_pr9.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the whole document.
type Artifact struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var art Artifact
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			art.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			art.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseResult(line); ok {
				art.Results = append(art.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(art.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseResult parses one result line:
//
//	BenchmarkName/sub-8   20000   210951 ns/op   6.153 overhead-pct   ...
//
// The shape after the name is an iteration count followed by
// value/unit pairs. Lines that don't fit (the bare "BenchmarkX"
// announcement under -v, PASS trailers) are skipped.
func parseResult(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsPerOp = v
			sawNs = true
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[f[i+1]] = v
	}
	return r, sawNs
}

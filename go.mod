module res

go 1.24

package res_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"res"
	"res/internal/coredump"
	"res/internal/workload"
)

// collectDumps produces n distinct failing dumps of the bug's program by
// sweeping scheduler seeds (the triage-corpus recipe).
func collectDumps(t testing.TB, bug *workload.Bug, n int) []*res.Dump {
	t.Helper()
	p := bug.Program()
	var dumps []*res.Dump
	for _, base := range bug.Configs {
		for s := int64(0); s < 300 && len(dumps) < n; s++ {
			cfg := base
			cfg.Seed = s
			d, err := res.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
				continue
			}
			dumps = append(dumps, d)
		}
		if len(dumps) >= n {
			break
		}
	}
	if len(dumps) < n {
		t.Fatalf("only %d/%d dumps manifested for %s", len(dumps), n, bug.Name)
	}
	return dumps
}

// TestAnalyzerMatchesLegacyAnalyze pins the shim semantics: the one-shot
// deprecated Analyze and a session Analyze return the same answer.
func TestAnalyzerMatchesLegacyAnalyze(t *testing.T) {
	bug := workload.Fig1()
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := res.Analyze(p, d, res.Options{MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	session, err := res.NewAnalyzer(p, res.WithMaxDepth(12)).Analyze(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Cause == nil || session.Cause == nil {
		t.Fatalf("causes: legacy=%v session=%v", legacy.Cause, session.Cause)
	}
	if legacy.Cause.Key() != session.Cause.Key() {
		t.Errorf("cause diverged: legacy=%v session=%v", legacy.Cause, session.Cause)
	}
	if legacy.Report.Stats != session.Report.Stats {
		t.Errorf("stats diverged: legacy=%+v session=%+v", legacy.Report.Stats, session.Report.Stats)
	}
}

// TestAnalyzeCancellationMidSearch cancels the context from inside the
// event stream — after several backward steps have already run — and
// checks that Analyze returns promptly with ctx.Err() and the partial
// report accumulated so far.
func TestAnalyzeCancellationMidSearch(t *testing.T) {
	bug := workload.DistanceChain(8)
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	a := res.NewAnalyzer(p, res.WithMaxDepth(12))

	// Reference run: the full search effort.
	full, err := a.Analyze(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if full.Report.Stats.Attempts < 6 {
		t.Fatalf("reference search too small to cancel mid-way: %+v", full.Report.Stats)
	}

	const cancelAfter = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes int32
	r, err := a.Analyze(ctx, d, res.WithObserver(func(ev res.Event) {
		if ev.Kind == res.EventNode && atomic.AddInt32(&nodes, 1) == cancelAfter {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil || r.Report == nil {
		t.Fatal("canceled Analyze returned no partial result")
	}
	if !r.Partial {
		t.Error("partial result not marked Partial")
	}
	got := r.Report.Stats.Attempts
	if got < cancelAfter {
		t.Errorf("cancellation before mid-search: %d attempts, want >= %d", got, cancelAfter)
	}
	if got >= full.Report.Stats.Attempts {
		t.Errorf("cancellation did not cut the search: %d attempts vs full %d",
			got, full.Report.Stats.Attempts)
	}
}

// TestAnalyzeDeadline runs a search too large for its deadline and checks
// the call returns promptly (not at budget exhaustion) with a partial
// report.
func TestAnalyzeDeadline(t *testing.T) {
	bug := workload.AmbiguousDispatch(10)
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	a := res.NewAnalyzer(p, res.WithMaxDepth(34), res.WithMaxNodes(100000))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	r, err := a.Analyze(ctx, d)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (elapsed %v), want context.DeadlineExceeded", err, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline ignored: analysis ran %v", elapsed)
	}
	if r == nil || r.Report == nil || !r.Partial {
		t.Fatalf("no partial result on deadline: %+v", r)
	}
}

// TestAnalyzeBatchDeterminism checks AnalyzeBatch's contract: with
// parallelism > 1 the results are identical to sequential runs.
func TestAnalyzeBatchDeterminism(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := collectDumps(t, bug, 4)
	a := res.NewAnalyzer(bug.Program(), res.WithMaxDepth(16), res.WithMaxNodes(4000))

	batch, err := a.AnalyzeBatch(context.Background(), dumps, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dumps {
		seq, err := a.Analyze(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		b := batch[i]
		if b == nil {
			t.Fatalf("batch result %d missing", i)
		}
		if (b.Cause == nil) != (seq.Cause == nil) {
			t.Fatalf("dump %d: batch cause %v vs sequential %v", i, b.Cause, seq.Cause)
		}
		if b.Cause != nil && b.Cause.Key() != seq.Cause.Key() {
			t.Errorf("dump %d: batch cause %v != sequential %v", i, b.Cause, seq.Cause)
		}
		if b.Report.Stats != seq.Report.Stats {
			t.Errorf("dump %d: batch stats %+v != sequential %+v", i, b.Report.Stats, seq.Report.Stats)
		}
	}
}

// TestAnalyzeBatchParallelismClamp checks the documented parallelism
// contract: <= 0 means GOMAXPROCS (the batch still completes, never
// deadlocks or serializes into nothing), oversized pools clamp to the
// batch size, and an empty batch is a no-op.
func TestAnalyzeBatchParallelismClamp(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := collectDumps(t, bug, 2)
	a := res.NewAnalyzer(bug.Program(), res.WithMaxDepth(14), res.WithMaxNodes(3000))
	ctx := context.Background()

	for _, par := range []int{0, -1, -100, 1000} {
		results, err := a.AnalyzeBatch(ctx, dumps, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(results) != len(dumps) {
			t.Fatalf("parallelism %d: %d results for %d dumps", par, len(results), len(dumps))
		}
		for i, r := range results {
			if r == nil || r.Report == nil {
				t.Fatalf("parallelism %d: result %d missing", par, i)
			}
		}
	}
	for _, par := range []int{-1, 0, 1, 8} {
		results, err := a.AnalyzeBatch(ctx, nil, par)
		if err != nil {
			t.Fatalf("empty batch with parallelism %d: %v", par, err)
		}
		if results == nil || len(results) != 0 {
			t.Fatalf("empty batch with parallelism %d: results = %v, want empty non-nil", par, results)
		}
	}
}

// TestAnalyzerConcurrentUse is the concurrency contract: one Analyzer,
// several goroutines analyzing distinct dumps at once (run under
// -race), some of which are canceled mid-search through the event
// stream while the rest run to completion.
func TestAnalyzerConcurrentUse(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := collectDumps(t, bug, 6)
	a := res.NewAnalyzer(bug.Program(), res.WithMaxDepth(16), res.WithMaxNodes(4000))

	// Reference answers, sequentially.
	want := make([]string, len(dumps))
	for i, d := range dumps {
		r, err := a.Analyze(context.Background(), d)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cause == nil {
			t.Fatalf("reference analysis %d found no cause", i)
		}
		want[i] = r.Cause.Key()
	}

	var wg sync.WaitGroup
	errC := make(chan error, len(dumps))
	for i, d := range dumps {
		// Goroutines 0 and 1 get canceled mid-search; the rest complete.
		cancelMidway := i < 2
		wg.Add(1)
		go func(i int, d *res.Dump) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var opts []res.Option
			var nodes int32
			if cancelMidway {
				opts = append(opts, res.WithObserver(func(ev res.Event) {
					if ev.Kind == res.EventNode && atomic.AddInt32(&nodes, 1) == 2 {
						cancel()
					}
				}))
			}
			r, err := a.Analyze(ctx, d, opts...)
			if cancelMidway {
				if !errors.Is(err, context.Canceled) {
					errC <- fmt.Errorf("goroutine %d: err = %v, want Canceled", i, err)
					return
				}
				if r == nil || r.Report == nil || r.Report.Stats.Attempts < 2 {
					errC <- fmt.Errorf("goroutine %d: no mid-search partial report: %+v", i, r)
				}
				return
			}
			if err != nil {
				errC <- fmt.Errorf("goroutine %d: %v", i, err)
				return
			}
			if r.Cause == nil || r.Cause.Key() != want[i] {
				errC <- fmt.Errorf("goroutine %d: cause %v, want key %s", i, r.Cause, want[i])
			}
		}(i, d)
	}
	wg.Wait()
	close(errC)
	for err := range errC {
		t.Error(err)
	}
}

// TestAnalyzeBatchCancellation: a canceled batch keeps the results it
// produced and fails the rest with the context error.
func TestAnalyzeBatchCancellation(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := collectDumps(t, bug, 3)
	a := res.NewAnalyzer(bug.Program(), res.WithMaxDepth(16), res.WithMaxNodes(4000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the batch starts: every dump fails promptly
	results, err := a.AnalyzeBatch(ctx, dumps, 2)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if len(results) != len(dumps) {
		t.Fatalf("results length %d, want %d", len(results), len(dumps))
	}
}

// TestAnalyzeBatchEmptyAndDefaults covers the edge parameters: an empty
// batch and parallelism < 1 (GOMAXPROCS).
func TestAnalyzeBatchEmptyAndDefaults(t *testing.T) {
	bug := workload.Fig1()
	p := bug.Program()
	a := res.NewAnalyzer(p, res.WithMaxDepth(12))
	if results, err := a.AnalyzeBatch(context.Background(), nil, 4); err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v %v", results, err)
	}
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	results, err := a.AnalyzeBatch(context.Background(), []*res.Dump{d}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Cause == nil {
		t.Fatalf("default-parallelism batch: %+v", results)
	}
}

// TestJSONReportDeterminism: two analyses of the same dump render to the
// same machine-readable report (elapsed aside).
func TestJSONReportDeterminism(t *testing.T) {
	bug := workload.TaintedOverflow()
	p := bug.Program()
	d, _, err := bug.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	a := res.NewAnalyzer(p, res.WithMaxDepth(10))
	r1, err := a.Analyze(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := r1.JSONReport(), r2.JSONReport()
	j1.ElapsedMS, j2.ElapsedMS = 0, 0
	if !reflect.DeepEqual(j1, j2) {
		t.Errorf("reports diverge:\n%+v\n%+v", j1, j2)
	}
	if j1.Verdict != "root-cause" {
		t.Errorf("verdict = %q", j1.Verdict)
	}
	if j1.Exploitable == nil || !*j1.Exploitable {
		t.Error("tainted overflow not marked exploitable in JSON report")
	}
	if !j1.ReplayMatches {
		t.Error("replay_matches false for a faithful analysis")
	}
}

// TestObserverEventStream sanity-checks the event sequence: a depth
// advance precedes depth-2 suffixes, suffix events carry increasing
// depth, and stats snapshots are monotone in attempts.
func TestObserverEventStream(t *testing.T) {
	bug := workload.DistanceChain(4)
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	var events []res.Event
	_, err = res.NewAnalyzer(p, res.WithMaxDepth(8)).Analyze(context.Background(), d,
		res.WithObserver(func(ev res.Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	var sawDepth, sawSuffix bool
	lastAttempts := 0
	for _, ev := range events {
		if ev.Stats.Attempts < lastAttempts {
			t.Errorf("stats went backward: %d -> %d", lastAttempts, ev.Stats.Attempts)
		}
		lastAttempts = ev.Stats.Attempts
		switch ev.Kind {
		case res.EventDepth:
			sawDepth = true
		case res.EventSuffix:
			sawSuffix = true
			if !sawDepth && ev.Depth > 1 {
				t.Error("deep suffix before any depth advance")
			}
		}
	}
	if !sawDepth || !sawSuffix {
		t.Errorf("event stream incomplete: depth=%v suffix=%v", sawDepth, sawSuffix)
	}
}

package workload

import (
	"testing"

	"res/internal/coredump"
	"res/internal/vm"
)

func TestEveryBugManifests(t *testing.T) {
	race, direct := SharedSiteCorpus()
	bugs := []*Bug{
		RaceCounter(), AtomViolation(), WriteWriteRace(),
		Fig1(), LongPrefix(50), DistanceChain(5),
		HashConstruct(true), HashConstruct(false),
		TaintedOverflow(), UntaintedCrash(), HealthyCompute(),
		MultiSiteRace(), race, direct,
	}
	seen := make(map[string]bool)
	for _, bug := range bugs {
		if seen[bug.Name] {
			t.Errorf("duplicate bug name %q", bug.Name)
		}
		seen[bug.Name] = true
		d, _, err := bug.FindFailure(60)
		if err != nil {
			t.Errorf("%s: %v", bug.Name, err)
			continue
		}
		if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
			t.Errorf("%s: fault %v, want %v", bug.Name, d.Fault.Kind, bug.WantFault)
		}
		if bug.RacyGlobal != "" {
			if _, err := bug.Program().GlobalAddr(bug.RacyGlobal); err != nil {
				t.Errorf("%s: racy global %q missing", bug.Name, bug.RacyGlobal)
			}
		}
	}
}

func TestConcurrencyBugsAreNondeterministic(t *testing.T) {
	// The §4 bugs must NOT fail on every schedule — rarity under benign
	// schedules is what makes them production-realistic.
	for _, bug := range ConcurrencyBugs() {
		p := bug.Program()
		clean := 0
		for s := int64(0); s < 20; s++ {
			cfg := bug.Configs[0]
			cfg.Seed = s
			cfg.PreemptPct = 0 // cooperative scheduling: the bug needs preemption
			v, err := vm.New(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			d, err := v.Run()
			if err != nil {
				t.Fatal(err)
			}
			// A clean exit or a livelocked spin (budget) both mean the
			// bug itself did not fire under this schedule.
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				clean++
			}
		}
		if clean == 0 {
			t.Errorf("%s: fails even without preemption — not schedule-dependent", bug.Name)
		}
	}
}

func TestLongPrefixScalesExecution(t *testing.T) {
	short := LongPrefix(60)
	long := LongPrefix(6000)
	ds, _, err := short.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	dl, _, err := long.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Steps < 10*ds.Steps {
		t.Errorf("prefix scaling broken: %d vs %d blocks", ds.Steps, dl.Steps)
	}
	// Identical failure state regardless of prefix length.
	if ds.Fault.Kind != dl.Fault.Kind {
		t.Errorf("fault kinds differ: %v vs %v", ds.Fault.Kind, dl.Fault.Kind)
	}
}

func TestDistanceChainBlocks(t *testing.T) {
	for _, d := range []int{0, 1, 7} {
		bug := DistanceChain(d)
		dump, _, err := bug.FindFailure(2)
		if err != nil {
			t.Fatalf("distance %d: %v", d, err)
		}
		// The execution runs d chain blocks plus entry and the assert tail.
		if dump.Steps < uint64(d) {
			t.Errorf("distance %d: only %d steps", d, dump.Steps)
		}
	}
}

func TestFindFailureErrors(t *testing.T) {
	healthy := &Bug{
		Name:    "never-fails",
		Source:  "func main:\n halt",
		Configs: HealthyCompute().Configs,
	}
	if _, _, err := healthy.FindFailure(3); err == nil {
		t.Error("expected FindFailure to give up")
	}
}

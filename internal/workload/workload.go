// Package workload is the bug-program zoo: parameterized, assembly-level
// reproductions of the failure scenarios the paper evaluates or motivates.
// Every experiment harness and most integration tests draw their programs
// from here.
//
// Each Bug carries the program source, the canonical way to make it fail
// (which may require searching scheduler seeds — concurrency bugs only
// manifest under the right interleaving, exactly as in production), and
// the expected root cause for ground truth.
package workload

import (
	"fmt"
	"strings"

	"res/internal/asm"
	"res/internal/checkpoint"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/prog"
	"res/internal/rootcause"
	"res/internal/vm"
)

// Bug is one reproducible failure scenario.
type Bug struct {
	// Name identifies the bug (and is the triage ground-truth label).
	Name string
	// App identifies the program the bug lives in. Two bugs can share an
	// App (two defects in one binary); triage scopes buckets per App the
	// way WER scopes them per application. Defaults to Name.
	App string
	// Source is the assembly text.
	Source string
	// Kind is the expected root-cause classification.
	Kind rootcause.Kind
	// Configs are VM configurations under which the failure can manifest;
	// FindFailure tries them (and seed perturbations) in order.
	Configs []vm.Config
	// WantFault restricts which fault kind counts as "the" failure
	// (FaultNone means any fault).
	WantFault coredump.FaultKind
	// RacyGlobal, for concurrency bugs, names the global whose accesses
	// race — the address a correct root cause must blame.
	RacyGlobal string

	prog *prog.Program
}

// AppName returns the application identity for triage scoping.
func (b *Bug) AppName() string {
	if b.App != "" {
		return b.App
	}
	return b.Name
}

// Program assembles (and caches) the bug's program.
func (b *Bug) Program() *prog.Program {
	if b.prog == nil {
		b.prog = asm.MustAssemble(b.Source)
	}
	return b.prog
}

// FindFailure runs the program under its configs, perturbing the scheduler
// seed up to maxSeeds times each, until the expected failure manifests.
// This mirrors how rare concurrency failures surface in production: some
// executions crash, most do not.
func (b *Bug) FindFailure(maxSeeds int) (*coredump.Dump, vm.Config, error) {
	d, _, c, err := b.findFailure(maxSeeds, nil)
	return d, c, err
}

// findFailure is the shared seed sweep; with a non-nil record config a
// fresh evidence recorder observes each attempted run and the failing
// run's evidence is returned.
func (b *Bug) findFailure(maxSeeds int, rcfg *evidence.RecordConfig) (*coredump.Dump, evidence.Set, vm.Config, error) {
	p := b.Program()
	for _, cfg := range b.Configs {
		for s := 0; s < maxSeeds; s++ {
			c := cfg
			c.Seed = cfg.Seed + int64(s)
			var rec *evidence.Recorder
			if rcfg != nil {
				rec = evidence.NewRecorder(p, *rcfg)
				c.Hooks = rec.Hooks()
			}
			v, err := vm.New(p, c)
			if err != nil {
				return nil, nil, c, err
			}
			if rec != nil {
				rec.Bind(v)
			}
			d, err := v.Run()
			if err != nil {
				return nil, nil, c, err
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if b.WantFault != coredump.FaultNone && d.Fault.Kind != b.WantFault {
				continue
			}
			var set evidence.Set
			if rec != nil {
				set = rec.Evidence()
			}
			return d, set, c, nil
		}
	}
	return nil, nil, vm.Config{}, fmt.Errorf("workload: %s never failed within %d seeds/config", b.Name, maxSeeds)
}

// FindFailureCheckpointed is FindFailure with a checkpoint recorder
// attached: the failing run's checkpoint ring comes back alongside the
// dump. Recording is observation-only, so the dump is byte-identical to
// the one FindFailure returns for the same seed.
func (b *Bug) FindFailureCheckpointed(maxSeeds int, ccfg checkpoint.Config) (*coredump.Dump, *checkpoint.Ring, vm.Config, error) {
	p := b.Program()
	for _, cfg := range b.Configs {
		for s := 0; s < maxSeeds; s++ {
			c := cfg
			c.Seed = cfg.Seed + int64(s)
			rec := checkpoint.NewRecorder(p, ccfg)
			c.Hooks = rec.Hooks()
			v, err := vm.New(p, c)
			if err != nil {
				return nil, nil, c, err
			}
			rec.Bind(v)
			d, err := v.Run()
			if err != nil {
				return nil, nil, c, err
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if b.WantFault != coredump.FaultNone && d.Fault.Kind != b.WantFault {
				continue
			}
			return d, rec.Ring(), c, nil
		}
	}
	return nil, nil, vm.Config{}, fmt.Errorf("workload: %s never failed within %d seeds/config", b.Name, maxSeeds)
}

// FindFailureRecorded is FindFailure with a production evidence recorder
// attached: the failing run's sampled breadcrumbs come back alongside
// the dump. Recording is observation-only, so the dump is byte-identical
// to the one FindFailure returns for the same seed.
func (b *Bug) FindFailureRecorded(maxSeeds int, rcfg evidence.RecordConfig) (*coredump.Dump, evidence.Set, vm.Config, error) {
	return b.findFailure(maxSeeds, &rcfg)
}

// GlobalAddr resolves a global's address (for memory-probe evidence);
// ok=false when the program has no such global.
func (b *Bug) GlobalAddr(name string) (uint32, bool) {
	addr, err := b.Program().GlobalAddr(name)
	return addr, err == nil
}

// --- The three §4 synthetic concurrency bugs -------------------------------

// RaceCounter is the classic lost-update bug: two threads increment a
// shared counter with a preemption window between load and store. The
// failure (a consistency assert) fires long after the racy interleaving.
func RaceCounter() *Bug {
	src := `
; §4 bug 1: lost update on a shared counter (atomicity violation).
; The done flag is correctly lock-protected; only the counter updates race.
.global c 1
.global done 1
.global m 1
func main:
    const r1, 0
    spawn worker, r1
    const r2, 2
m_loop:
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, m_loop, m_wait
m_wait:
    const r8, &m
    lock r8
    loadg r4, &done
    unlock r8
    br r4, m_check, m_wait
m_check:
    loadg r5, &c
    const r6, 4
    cmpeq r7, r5, r6
    assert r7
    halt
func worker:
    const r2, 2
w_loop:
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, w_loop, w_done
w_done:
    const r8, &m
    lock r8
    const r4, 1
    storeg r4, &done
    unlock r8
    halt
`
	var cfgs []vm.Config
	for pct := 40; pct <= 80; pct += 20 {
		cfgs = append(cfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000})
	}
	return &Bug{
		Name:       "race-counter",
		Source:     src,
		Kind:       rootcause.AtomicityViolation,
		Configs:    cfgs,
		WantFault:  coredump.FaultAssert,
		RacyGlobal: "c",
	}
}

// AtomViolation is a check-then-act TOCTOU on a shared pointer: the check
// and the use are split by another thread nulling the pointer.
func AtomViolation() *Bug {
	src := `
; §4 bug 2: atomicity violation between pointer check and pointer use.
.global p 1
func main:
    const r1, 1
    alloc r2, r1
    const r3, 7
    store r2, r3, 0
    storeg r2, &p
    const r4, 0
    spawn killer, r4
    yield
    loadg r5, &p
    br r5, use, fin
use:
    yield
    loadg r6, &p
    load r7, r6, 0
    jmp fin
fin:
    halt
func killer:
    const r1, 0
    storeg r1, &p
    halt
`
	var cfgs []vm.Config
	for pct := 30; pct <= 90; pct += 20 {
		cfgs = append(cfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000})
	}
	return &Bug{
		Name:       "atom-violation",
		Source:     src,
		Kind:       rootcause.AtomicityViolation,
		Configs:    cfgs,
		WantFault:  coredump.FaultNullDeref,
		RacyGlobal: "p",
	}
}

// WriteWriteRace is an unsynchronized write-write conflict: the main
// thread stores a value and divides by what it reads back; a second
// thread concurrently zeroes the location.
func WriteWriteRace() *Bug {
	src := `
; §4 bug 3: write-write data race zeroing a divisor.
.global g 1
func main:
    const r0, 0
    spawn zeroer, r0
    const r1, 5
    storeg r1, &g
    yield
    loadg r2, &g
    const r3, 100
    div r4, r3, r2
    halt
func zeroer:
    const r1, 0
    storeg r1, &g
    halt
`
	var cfgs []vm.Config
	for pct := 30; pct <= 90; pct += 20 {
		cfgs = append(cfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000})
	}
	return &Bug{
		Name:       "write-write-race",
		Source:     src,
		Kind:       rootcause.AtomicityViolation, // write→read pair split by the zeroing write
		Configs:    cfgs,
		WantFault:  coredump.FaultDivByZero,
		RacyGlobal: "g",
	}
}

// ConcurrencyBugs returns the paper's §4 evaluation set.
func ConcurrencyBugs() []*Bug {
	return []*Bug{RaceCounter(), AtomViolation(), WriteWriteRace()}
}

// --- Figure 1: buffer overflow with predecessor disambiguation -------------

// Fig1 reproduces the paper's Figure 1 scenario: a heap buffer overflow
// (buffer[y] = 1 with y == buffer size) that corrupts an adjacent object;
// the crash happens later, dereferencing the corrupted pointer. One
// predecessor path sets x = 1 and performs the overflow; the alternative
// path sets x = 2 and is benign. The coredump (x == 1, y == 10) proves
// only the overflowing predecessor feasible.
func Fig1() *Bug {
	src := `
; Figure 1: buffer overflow, crash at a distance through a corrupted pointer.
.global x 1
.global y 1
.global bufp 1
.global objp 1
func main:
    const r1, 10
    alloc r2, r1        ; buffer[10]
    storeg r2, &bufp
    const r3, 1
    alloc r4, r3        ; adjacent object holding a valid pointer
    storeg r4, &objp
    storeg r4, &x       ; x temporarily holds a pointer-sized scratch
    store r4, r4, 0     ; obj[0] = obj (any valid pointer)
    input r5, 0         ; y comes from the outside world
    storeg r5, &y
    br r5, pred1, pred2
pred1:
    loadg r6, &bufp
    add r7, r6, r5
    const r8, 1
    store r7, r8, 0     ; buffer[y] = 1   -- first word past the buffer
    store r7, r8, 1     ; buffer[y+1] = 1 -- crosses into obj[0] when y == 10
    const r9, 1
    storeg r9, &x       ; x = 1
    jmp after
pred2:
    const r9, 2
    storeg r9, &x       ; x = 2
    jmp after
after:
    loadg r10, &objp
    load r11, r10, 0    ; read the (possibly corrupted) pointer
    load r12, r11, 0    ; dereference it: faults on the corrupted value 1
    halt
`
	return &Bug{
		Name:      "fig1-overflow",
		Source:    src,
		Kind:      rootcause.BufferOverflow,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {10}}}},
		WantFault: coredump.FaultNullDeref,
	}
}

// --- E3: arbitrarily long executions ----------------------------------------

// LongPrefix builds a program whose failure sits after a benign,
// input-dependent prefix of about n basic blocks. The suffix containing
// the root cause is the same regardless of n — the paper's headline
// scenario. The prefix consumes inputs and branches on them, which is
// what makes forward, whole-execution synthesis blow up.
func LongPrefix(n int) *Bug {
	iters := n / 3 // each iteration executes ~3 blocks
	if iters < 1 {
		iters = 1
	}
	src := fmt.Sprintf(`
; E3: benign input-dependent prefix of ~%d blocks, then a crash whose
; root cause is a handful of blocks from the end.
.global acc 1
.global z 1
func main:
    const r1, %d
prefix:
    input r2, 1
    andi r3, r2, 1
    br r3, odd, even
odd:
    loadg r4, &acc
    add r4, r4, r2
    storeg r4, &acc
    jmp next
even:
    loadg r4, &acc
    sub r4, r4, r2
    storeg r4, &acc
    jmp next
next:
    addi r1, r1, -1
    br r1, prefix, bug
bug:
    input r5, 0
    addi r6, r5, 3
    storeg r6, &z
    loadg r7, &z
    addi r8, r7, -10
    assert r8
    halt
`, n, iters)
	prefixInputs := make([]int64, iters)
	for i := range prefixInputs {
		prefixInputs[i] = int64(i*7 + 3)
	}
	return &Bug{
		Name:   fmt.Sprintf("long-prefix-%d", n),
		Source: src,
		Kind:   rootcause.AssertionFailure,
		Configs: []vm.Config{{
			Inputs:   map[int64][]int64{0: {7}, 1: prefixInputs},
			MaxSteps: uint64(n)*10 + 10000,
		}},
		WantFault: coredump.FaultAssert,
	}
}

// --- E4: root-cause distance sweep ------------------------------------------

// DistanceChain builds a program where the root cause (an input that
// should never be zero, stored to a global) sits exactly d blocks before
// the failing assertion, separated by a chain of d pass-through blocks.
func DistanceChain(d int) *Bug {
	var sb strings.Builder
	sb.WriteString(`
; E4: the root cause is d blocks before the failure.
.global bad 1
.global cnt 1
func main:
    input r1, 0
    storeg r1, &bad
`)
	for i := 0; i < d; i++ {
		fmt.Fprintf(&sb, "step%d:\n    loadg r2, &cnt\n    addi r2, r2, 1\n    storeg r2, &cnt\n    jmp step%d\n", i, i+1)
		// Each chain element is its own block thanks to the jmp/label.
	}
	fmt.Fprintf(&sb, "step%d:\n    loadg r3, &bad\n    assert r3\n    halt\n", d)
	return &Bug{
		Name:      fmt.Sprintf("distance-%d", d),
		Source:    sb.String(),
		Kind:      rootcause.AssertionFailure,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {0}}}},
		WantFault: coredump.FaultAssert,
	}
}

// AmbiguousDispatch builds the E7 workload: a dispatcher loop of `rounds`
// iterations, each branching to one of two handlers with IDENTICAL state
// effects. The coredump cannot tell which handler ran (both are
// state-compatible predecessors), so without breadcrumbs the backward
// search doubles at every round; the LBR ring resolves the taken branches
// and collapses the frontier to the real path.
func AmbiguousDispatch(rounds int) *Bug {
	src := fmt.Sprintf(`
; E7: %d dispatch rounds with state-indistinguishable handlers.
.global cnt 1
func main:
    const r1, %d
loop:
    input r2, 0
    andi r3, r2, 1
    br r3, ha, hb
ha:
    loadg r4, &cnt
    addi r4, r4, 1
    storeg r4, &cnt
    jmp join
hb:
    loadg r4, &cnt
    addi r4, r4, 1
    storeg r4, &cnt
    jmp join
join:
    addi r1, r1, -1
    br r1, loop, bug
bug:
    const r5, 0
    assert r5
    halt
`, rounds, rounds)
	inputs := make([]int64, rounds)
	for i := range inputs {
		inputs[i] = int64(i % 3) // mixed handler choices
	}
	return &Bug{
		Name:      fmt.Sprintf("ambiguous-dispatch-%d", rounds),
		Source:    src,
		Kind:      rootcause.AssertionFailure,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: inputs}, LBRSize: 64}},
		WantFault: coredump.FaultAssert,
	}
}

// --- E9: hard-to-invert constructs ------------------------------------------

// hashInput and hashSecret parameterize HashConstruct: the secret is the
// hash of the input (input² xor input), far outside the solver's search
// neighbourhood so it cannot be guessed — only recovered from the spill.
const (
	hashInput  = 3141
	hashSecret = hashInput*hashInput ^ hashInput
)

// HashConstruct builds a program that mixes an input with a non-invertible
// hash (squaring) before the failure. When spill is true the hash input is
// still in memory (a global spill slot), so RES re-executes the hash
// forward over the concrete spilled value instead of inverting it — the
// paper's §6 workaround. When spill is false the input is nowhere in the
// dump and the construct blocks reconstruction of the input.
func HashConstruct(spill bool) *Bug {
	store := "    storeg r1, &spill\n"
	if !spill {
		store = ""
	}
	src := fmt.Sprintf(`
; E9: non-invertible hash between input and failure. The registers that
; held the input are clobbered after hashing, so the only copy of the
; input (if any) is the spill slot in memory.
.global h 1
.global spill 1
func main:
    input r1, 0
%s    mul r2, r1, r1
    xor r3, r2, r1
    storeg r3, &h
    jmp hash_done
hash_done:
    const r1, 0
    const r2, 0
    const r3, 0
    loadg r4, &h
    addi r5, r4, -%d
    assert r5
    halt
`, store, hashSecret)
	name := "hash-no-spill"
	if spill {
		name = "hash-spill"
	}
	return &Bug{
		Name:      name,
		Source:    src,
		Kind:      rootcause.AssertionFailure,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {hashInput}}}},
		WantFault: coredump.FaultAssert,
	}
}

// --- E8: exploitability -----------------------------------------------------

// TaintedOverflow writes through an index that comes straight from
// external input — the attacker controls the corrupted address, so the
// bug is remotely exploitable.
func TaintedOverflow() *Bug {
	src := `
; E8: attacker-controlled overflow index.
.global bufp 1
func main:
    const r1, 4
    alloc r2, r1
    storeg r2, &bufp
    input r3, 0
    add r4, r2, r3
    const r5, 9
    store r4, r5, 0
    load r6, r2, 0
    const r7, 0
    load r8, r7, 0
    halt
`
	return &Bug{
		Name:      "tainted-overflow",
		Source:    src,
		Kind:      rootcause.OutOfBounds,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {100000}}}},
		WantFault: coredump.FaultOOB,
	}
}

// UntaintedCrash faults on a fixed null pointer with no input influence:
// a crash, but not attacker-controllable.
func UntaintedCrash() *Bug {
	src := `
; E8: constant null dereference; no external influence.
func main:
    input r1, 0
    const r2, 0
    load r3, r2, 0
    halt
`
	return &Bug{
		Name:      "untainted-crash",
		Source:    src,
		Kind:      rootcause.NullDeref,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {5}}}},
		WantFault: coredump.FaultNullDeref,
	}
}

// --- E6: healthy programs for hardware-error injection ----------------------

// HealthyCompute runs a deterministic computation and then crashes on a
// genuine software assert; used as the software-bug control group and,
// with post-hoc corruption, as the hardware-error group.
func HealthyCompute() *Bug {
	src := `
; E6: deterministic computation with a genuine software failure at the end.
.global g 1
.global h 1
func main:
    const r1, 6
    const r2, 7
    mul r3, r1, r2
    storeg r3, &g
    loadg r4, &g
    addi r5, r4, 8
    storeg r5, &h
    const r6, 0
    assert r6
    halt
`
	return &Bug{
		Name:      "healthy-compute",
		Source:    src,
		Kind:      rootcause.AssertionFailure,
		Configs:   []vm.Config{{}},
		WantFault: coredump.FaultAssert,
	}
}

// UseAfterFree is a heap lifetime bug: a pointer is used after its object
// was freed and the address re-read later feeds a crash. Production mode
// does not fault at the stale access; checked replay does.
func UseAfterFree() *Bug {
	src := `
; Use-after-free: the stale write lands in freed memory silently; the
; crash comes later from a flag the stale path failed to set.
.global p 1
.global ok 1
func main:
    const r1, 2
    alloc r2, r1
    storeg r2, &p
    free r2
    const r3, 77
    store r2, r3, 0     ; stale write into freed memory (silent in prod)
    loadg r4, &ok
    assert r4           ; ok was never set: crash
    halt
`
	return &Bug{
		Name:      "use-after-free",
		Source:    src,
		Kind:      rootcause.UseAfterFree,
		Configs:   []vm.Config{{}},
		WantFault: coredump.FaultAssert,
	}
}

// DeadlockBug is the classic lock-order inversion: two threads acquire
// two mutexes in opposite orders. The coredump is a deadlock snapshot
// (both threads blocked), the other failure class §2 says RES handles.
func DeadlockBug() *Bug {
	src := `
; AB-BA deadlock.
.global m1 1
.global m2 1
func main:
    const r1, 0
    spawn other, r1
    const r2, &m1
    lock r2
    yield
    const r3, &m2
    lock r3
    unlock r3
    unlock r2
    halt
func other:
    const r2, &m2
    lock r2
    yield
    const r3, &m1
    lock r3
    unlock r3
    unlock r2
    halt
`
	var cfgs []vm.Config
	for pct := 40; pct <= 80; pct += 20 {
		cfgs = append(cfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000})
	}
	return &Bug{
		Name:      "deadlock-abba",
		Source:    src,
		Kind:      rootcause.Deadlock,
		Configs:   cfgs,
		WantFault: coredump.FaultDeadlock,
	}
}

// --- E5: triage corpus ------------------------------------------------------

// MultiSiteRace is one bug that manifests with different call stacks: a
// race corrupts a shared pointer, and the crash site depends on an
// unrelated input routing the dereference into helperA or helperB. WER
// style stack bucketing splits this single bug into multiple buckets.
func MultiSiteRace() *Bug {
	src := `
; E5: one root cause (race nulling ptr), two distinct crash stacks.
.global ptr 1
.global route 1
func main:
    const r1, 1
    alloc r2, r1
    store r2, r2, 0
    storeg r2, &ptr
    input r3, 0
    storeg r3, &route
    const r4, 0
    spawn nuller, r4
    yield
    loadg r5, &route
    br r5, via_a, via_b
via_a:
    call helperA
    jmp done
via_b:
    call helperB
    jmp done
done:
    halt
func helperA:
    loadg r6, &ptr
    load r7, r6, 0
    ret
func helperB:
    loadg r8, &ptr
    load r9, r8, 0
    ret
func nuller:
    const r1, 0
    storeg r1, &ptr
    halt
`
	var cfgs []vm.Config
	for _, route := range []int64{1, 0} {
		for pct := 40; pct <= 80; pct += 20 {
			cfgs = append(cfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000, Inputs: map[int64][]int64{0: {route}}})
		}
	}
	return &Bug{
		Name:      "multi-site-race",
		Source:    src,
		Kind:      rootcause.AtomicityViolation,
		Configs:   cfgs,
		WantFault: coredump.FaultNullDeref,
	}
}

// SharedSiteCorpus returns two distinct bugs that crash at the same pc
// with the same call stack: a race nulling a pointer and a direct
// null-from-input bug. WER-style bucketing merges them; root-cause
// bucketing separates them.
func SharedSiteCorpus() (race, direct *Bug) {
	src := `
; E5: two latent bugs crashing at the same site.
; Channel 9 selects which latent bug the environment tickles (stands in
; for two different user populations hitting different defects).
.global ptr 1
func main:
    const r1, 1
    alloc r2, r1
    store r2, r2, 0
    storeg r2, &ptr
    input r3, 9
    br r3, racy, direct
racy:
    const r4, 0
    spawn nuller, r4
    yield
    jmp crashsite
direct:
    input r5, 0
    storeg r5, &ptr
    jmp crashsite
crashsite:
    call helper
    halt
func helper:
    loadg r6, &ptr
    load r7, r6, 0
    ret
func nuller:
    const r1, 0
    storeg r1, &ptr
    halt
`
	var raceCfgs []vm.Config
	for pct := 40; pct <= 80; pct += 20 {
		raceCfgs = append(raceCfgs, vm.Config{PreemptPct: pct, MaxSteps: 100000, Inputs: map[int64][]int64{9: {1}}})
	}
	race = &Bug{
		Name:      "shared-site-race",
		App:       "shared-site-app",
		Source:    src,
		Kind:      rootcause.AtomicityViolation,
		Configs:   raceCfgs,
		WantFault: coredump.FaultNullDeref,
	}
	direct = &Bug{
		Name:      "shared-site-direct",
		App:       "shared-site-app",
		Source:    src,
		Kind:      rootcause.NullDeref,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{9: {0}, 0: {0}}}},
		WantFault: coredump.FaultNullDeref,
	}
	return race, direct
}

// TriageCorpus returns the bug set used for the E5 triage experiment.
func TriageCorpus() []*Bug {
	race, direct := SharedSiteCorpus()
	return []*Bug{MultiSiteRace(), race, direct, RaceCounter(), AtomViolation()}
}

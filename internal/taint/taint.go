// Package taint implements the exploitability analysis of §3.1: given a
// synthesized execution suffix, it tracks which values are influenced by
// external input (INPUT instructions — the stand-in for network packets
// and other attacker-controllable data) and decides whether the failure
// is attacker-controlled. A crash whose faulting address or written value
// is input-tainted is classified remotely exploitable; !exploitable-style
// heuristics, which look only at the crash type, cannot make this call.
//
// The analysis is a pure dataflow walk over the suffix schedule: register
// taints propagate through ALU operations, memory taints live in a shadow
// map keyed by the concrete addresses RES resolved during synthesis, and
// INPUT instructions introduce taint. No values are recomputed — the
// suffix already fixes control flow, so only the dataflow matters.
package taint

import (
	"fmt"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
)

// Report is the exploitability verdict.
type Report struct {
	// Exploitable is true when the fault's address or value operand is
	// influenced by external input.
	Exploitable bool
	// FaultAddrTainted marks attacker influence over the faulting address
	// (the strongest signal: arbitrary write/read primitives).
	FaultAddrTainted bool
	// FaultValueTainted marks attacker influence over the value involved.
	FaultValueTainted bool
	Detail            string
}

type threadTaint struct {
	regs [isa.NumRegs]bool
}

// Analyze walks the suffix and classifies the failure.
func Analyze(p *prog.Program, syn *core.Synthesized, original *coredump.Dump) (*Report, error) {
	threads := make(map[int]*threadTaint)
	for tid := range syn.PreRegs {
		threads[tid] = &threadTaint{}
	}
	memTaint := make(map[uint32]bool)

	steps := syn.Node.Steps()
	for _, step := range steps {
		tt := threads[step.Tid]
		if tt == nil {
			tt = &threadTaint{}
			threads[step.Tid] = tt
		}
		ai := 0 // cursor into the step's resolved accesses
		nextAccess := func(write bool) (uint32, bool) {
			for ai < len(step.Accesses) {
				a := step.Accesses[ai]
				ai++
				if a.Write == write {
					return a.Addr, true
				}
			}
			return 0, false
		}
		for pc := step.StartPC; pc < step.EndPC; pc++ {
			in := &p.Code[pc]
			r := &tt.regs
			switch in.Op {
			case isa.OpConst:
				r[in.Rd] = false
			case isa.OpMov, isa.OpNot, isa.OpNeg:
				r[in.Rd] = r[in.Rs1]
			case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod,
				isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
				isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe:
				r[in.Rd] = r[in.Rs1] || r[in.Rs2]
			case isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpXorI:
				r[in.Rd] = r[in.Rs1]
			case isa.OpLoad, isa.OpLoadG:
				if a, ok := nextAccess(false); ok {
					r[in.Rd] = memTaint[a]
				} else {
					r[in.Rd] = false
				}
			case isa.OpStore, isa.OpStoreG:
				if a, ok := nextAccess(true); ok {
					val := in.Rs1
					if in.Op == isa.OpStore {
						val = in.Rs2
					}
					memTaint[a] = r[val]
				}
			case isa.OpCall:
				// Pushes a constant return address: untainted.
				if a, ok := nextAccess(true); ok {
					memTaint[a] = false
				}
			case isa.OpRet:
				nextAccess(false)
			case isa.OpAlloc:
				r[in.Rd] = false
			case isa.OpInput:
				r[in.Rd] = true
			case isa.OpSpawn:
				// The child's r0 receives the parent's operand; the suffix
				// records the child via SpawnChild.
				if step.SpawnChild >= 0 {
					ct := threads[step.SpawnChild]
					if ct == nil {
						ct = &threadTaint{}
						threads[step.SpawnChild] = ct
					}
					ct.regs[0] = r[in.Rs1]
				}
			}
		}
	}

	// Classify the faulting instruction using the faulting thread's final
	// register taints.
	rep := &Report{}
	ft := threads[original.Fault.Thread]
	if ft == nil {
		return rep, nil
	}
	if original.Fault.PC < 0 || original.Fault.PC >= len(p.Code) {
		return rep, nil
	}
	in := &p.Code[original.Fault.PC]
	switch in.Op {
	case isa.OpLoad:
		rep.FaultAddrTainted = ft.regs[in.Rs1]
	case isa.OpStore:
		rep.FaultAddrTainted = ft.regs[in.Rs1]
		rep.FaultValueTainted = ft.regs[in.Rs2]
	case isa.OpLoadG, isa.OpStoreG:
		// Absolute addressing: the address is a constant.
		if in.Op == isa.OpStoreG {
			rep.FaultValueTainted = ft.regs[in.Rs1]
		}
	case isa.OpDiv, isa.OpMod:
		rep.FaultValueTainted = ft.regs[in.Rs2]
	case isa.OpAssert, isa.OpFree, isa.OpLock, isa.OpUnlock:
		rep.FaultValueTainted = ft.regs[in.Rs1]
		if in.Op == isa.OpFree || in.Op == isa.OpLock || in.Op == isa.OpUnlock {
			rep.FaultAddrTainted = ft.regs[in.Rs1]
		}
	}
	rep.Exploitable = rep.FaultAddrTainted || rep.FaultValueTainted
	if rep.Exploitable {
		rep.Detail = fmt.Sprintf("external input reaches the faulting %s at pc %d", in.Op, original.Fault.PC)
	}
	return rep, nil
}

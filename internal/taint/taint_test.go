package taint_test

import (
	"testing"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/taint"
	"res/internal/vm"
	"res/internal/workload"
)

func synthesizeDeepest(t *testing.T, bug *workload.Bug) (*core.Synthesized, *coredump.Dump) {
	t.Helper()
	p := bug.Program()
	d, _, err := bug.FindFailure(10)
	if err != nil {
		t.Fatalf("%s: %v", bug.Name, err)
	}
	eng := core.New(p, core.Options{MaxDepth: 10, MaxNodes: 2000})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("%s: no suffixes; stats %+v", bug.Name, rep.Stats)
	}
	deepest := rep.Suffixes[0]
	for _, n := range rep.Suffixes {
		if n.Depth > deepest.Depth {
			deepest = n
		}
	}
	syn, err := eng.Concretize(deepest, d)
	if err != nil {
		t.Fatal(err)
	}
	return syn, d
}

func TestTaintedOverflowExploitable(t *testing.T) {
	bug := workload.TaintedOverflow()
	syn, d := synthesizeDeepest(t, bug)
	rep, err := taint.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exploitable || !rep.FaultAddrTainted {
		t.Errorf("want exploitable via tainted address, got %+v", rep)
	}
}

func TestUntaintedCrashNotExploitable(t *testing.T) {
	bug := workload.UntaintedCrash()
	syn, d := synthesizeDeepest(t, bug)
	rep, err := taint.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exploitable {
		t.Errorf("constant crash classified exploitable: %+v", rep)
	}
}

func TestTaintFlowsThroughMemory(t *testing.T) {
	// Input -> global -> register -> faulting address: taint survives the
	// memory round trip even after the original register is clobbered.
	bug := &workload.Bug{
		Name: "taint-through-memory",
		Source: `
.global slot 1
func main:
    input r1, 0
    storeg r1, &slot
    const r1, 0
    loadg r2, &slot
    load r3, r2, 0
    halt
`,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {2}}}},
		WantFault: coredump.FaultNullDeref,
	}
	syn, d := synthesizeDeepest(t, bug)
	rep, err := taint.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FaultAddrTainted {
		t.Errorf("taint lost through memory round trip: %+v", rep)
	}
}

func TestSanitizedValueLosesTaint(t *testing.T) {
	// Overwriting a tainted slot with a constant clears the taint.
	bug := &workload.Bug{
		Name: "taint-sanitized",
		Source: `
.global slot 1
func main:
    input r1, 0
    storeg r1, &slot
    const r4, 0
    storeg r4, &slot
    loadg r2, &slot
    load r3, r2, 0
    halt
`,
		Configs:   []vm.Config{{Inputs: map[int64][]int64{0: {2}}}},
		WantFault: coredump.FaultNullDeref,
	}
	syn, d := synthesizeDeepest(t, bug)
	rep, err := taint.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultAddrTainted {
		t.Errorf("sanitized value still tainted: %+v", rep)
	}
}

// Package triage implements §3.1's bug-report bucketing comparison: the
// WER-style baseline that buckets crash reports by failure point and call
// stack, the !exploitable-style heuristic severity classifier, and the
// metrics that compare any bucketing against ground truth.
//
// The RES-based bucketing (by root-cause key) is wired in by the caller —
// typically a closure over res.Analyze — so this package stays independent
// of the analysis engine.
package triage

import (
	"fmt"
	"sort"

	"res/internal/coredump"
	"res/internal/prog"
)

// Item is one bug report: a coredump with its (experiment-only) ground
// truth label.
type Item struct {
	Label string // ground truth: which bug produced this dump
	// App identifies the reporting application; buckets are scoped per
	// App, as in WER (reports from different programs never merge).
	App  string
	Dump *coredump.Dump
	Prog *prog.Program
	// Evidence is the report's optional evidence attachment (canonical
	// evidence wire bytes); classifiers that analyze may use it to prune.
	Evidence []byte
}

// Classifier assigns a bucket key to a report.
type Classifier func(it Item) (string, error)

// StackClassifier is the WER-style baseline: bucket by fault kind plus the
// reconstructed call stack. It is cheap and purely post-mortem, and
// exhibits exactly the failure modes the paper describes — one bug
// spreading over many buckets (different crash sites), different bugs
// colliding in one bucket (same crash site).
func StackClassifier() Classifier {
	return func(it Item) (string, error) {
		tid := it.Dump.Fault.Thread
		if tid < 0 {
			return it.App + "|global|" + it.Dump.Fault.Kind.String(), nil
		}
		frames, err := it.Dump.Walk(it.Prog, tid)
		if err != nil {
			return "", err
		}
		return it.App + "|" + coredump.StackKey(it.Dump.Fault, frames), nil
	}
}

// Severity is the !exploitable-style rating.
type Severity uint8

const (
	SeverityUnknown Severity = iota
	SeverityLow
	SeverityProbable
	SeverityExploitable
)

func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityProbable:
		return "probably-exploitable"
	case SeverityExploitable:
		return "exploitable"
	}
	return "unknown"
}

// HeuristicSeverity mimics !exploitable: it looks only at the crash type
// and faulting instruction, with no knowledge of where the data came from.
// Writes to bad addresses rate exploitable, reads rate probable, division
// and asserts rate low. This over- and under-approximates — which is the
// paper's criticism and what the taint-based verdict fixes.
func HeuristicSeverity(p *prog.Program, d *coredump.Dump) Severity {
	switch d.Fault.Kind {
	case coredump.FaultAssert, coredump.FaultDivByZero, coredump.FaultDeadlock, coredump.FaultBudget:
		return SeverityLow
	case coredump.FaultNullDeref, coredump.FaultOOB, coredump.FaultHeapOOB, coredump.FaultUseAfterFree:
		if d.Fault.PC >= 0 && d.Fault.PC < len(p.Code) && p.Code[d.Fault.PC].WritesMem() {
			return SeverityExploitable
		}
		return SeverityProbable
	case coredump.FaultStackOverflow, coredump.FaultDoubleFree, coredump.FaultBadFree:
		return SeverityProbable
	}
	return SeverityUnknown
}

// Evaluation quantifies how well a bucketing matches ground truth.
type Evaluation struct {
	Items   int
	Buckets int
	// Pairwise clustering metrics over all report pairs: a pair is
	// positive when both reports come from the same bug.
	Precision, Recall, F1 float64
	// OverSplit counts bugs spread across more than one bucket (the
	// "same exploit, many buckets" failure of §3.1).
	OverSplit int
	// Collisions counts buckets containing more than one bug ("different
	// bugs, same bucket").
	Collisions int
	// Errors counts reports the classifier failed on.
	Errors int
}

func (e Evaluation) String() string {
	return fmt.Sprintf("items=%d buckets=%d precision=%.2f recall=%.2f f1=%.2f oversplit=%d collisions=%d",
		e.Items, e.Buckets, e.Precision, e.Recall, e.F1, e.OverSplit, e.Collisions)
}

// Evaluate buckets the corpus with the classifier and scores the result.
func Evaluate(corpus []Item, classify Classifier) Evaluation {
	ev := Evaluation{Items: len(corpus)}
	buckets := make(map[string][]int)
	keys := make([]string, len(corpus))
	for i, it := range corpus {
		k, err := classify(it)
		if err != nil {
			ev.Errors++
			k = fmt.Sprintf("error-%d", i)
		}
		keys[i] = k
		buckets[k] = append(buckets[k], i)
	}
	ev.Buckets = len(buckets)

	// Pairwise precision/recall.
	var tp, fp, fn float64
	for i := 0; i < len(corpus); i++ {
		for j := i + 1; j < len(corpus); j++ {
			sameBug := corpus[i].Label == corpus[j].Label
			sameBucket := keys[i] == keys[j]
			switch {
			case sameBug && sameBucket:
				tp++
			case !sameBug && sameBucket:
				fp++
			case sameBug && !sameBucket:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		ev.Precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		ev.Recall = tp / (tp + fn)
	}
	if ev.Precision+ev.Recall > 0 {
		ev.F1 = 2 * ev.Precision * ev.Recall / (ev.Precision + ev.Recall)
	}

	// Over-splits and collisions.
	bugBuckets := make(map[string]map[string]bool)
	for i, it := range corpus {
		if bugBuckets[it.Label] == nil {
			bugBuckets[it.Label] = make(map[string]bool)
		}
		bugBuckets[it.Label][keys[i]] = true
	}
	for _, bs := range bugBuckets {
		if len(bs) > 1 {
			ev.OverSplit++
		}
	}
	for _, members := range buckets {
		labels := make(map[string]bool)
		for _, i := range members {
			labels[corpus[i].Label] = true
		}
		if len(labels) > 1 {
			ev.Collisions++
		}
	}
	return ev
}

// BucketSummary renders the bucket composition for reports/debugging.
func BucketSummary(corpus []Item, classify Classifier) string {
	buckets := make(map[string][]string)
	for _, it := range corpus {
		k, err := classify(it)
		if err != nil {
			k = "error"
		}
		buckets[k] = append(buckets[k], it.Label)
	}
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%-40s %v\n", k, buckets[k])
	}
	return out
}

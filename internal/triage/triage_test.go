package triage_test

import (
	"fmt"
	"testing"

	"res"
	"res/internal/coredump"
	"res/internal/triage"
	"res/internal/workload"
)

// buildCorpus generates several dumps per bug by varying scheduler seeds,
// like reports arriving from many deployments.
func buildCorpus(t *testing.T, bugs []*workload.Bug, perBug int) []triage.Item {
	t.Helper()
	var corpus []triage.Item
	for _, bug := range bugs {
		p := bug.Program()
		found := 0
		// Spread the quota across configs so every manifestation variant
		// (e.g. both crash sites of a multi-site bug) is represented.
		quota := (perBug + len(bug.Configs) - 1) / len(bug.Configs)
		for _, base := range bug.Configs {
			got := 0
			for s := int64(0); s < 200 && got < quota && found < perBug; s++ {
				cfg := base
				cfg.Seed = s
				d, err := res.Run(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if d == nil || d.Fault.Kind == coredump.FaultBudget {
					continue
				}
				if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
					continue
				}
				corpus = append(corpus, triage.Item{Label: bug.Name, App: bug.AppName(), Dump: d, Prog: p})
				found++
				got++
			}
		}
		if found == 0 {
			t.Fatalf("bug %s never manifested", bug.Name)
		}
	}
	return corpus
}

// resClassifier buckets by RES root-cause key.
func resClassifier() triage.Classifier {
	return func(it triage.Item) (string, error) {
		r, err := res.Analyze(it.Prog, it.Dump, res.Options{MaxDepth: 14, MaxNodes: 3000})
		if err != nil {
			return "", err
		}
		if r.Cause == nil {
			return "", fmt.Errorf("no cause")
		}
		return it.App + "|" + r.Cause.Key(), nil
	}
}

func TestStackBucketingSplitsOneBug(t *testing.T) {
	// MultiSiteRace is ONE bug; WER-style bucketing spreads it over
	// multiple buckets because the crash stacks differ.
	corpus := buildCorpus(t, []*workload.Bug{workload.MultiSiteRace()}, 6)
	stacks := make(map[string]bool)
	cls := triage.StackClassifier()
	for _, it := range corpus {
		k, err := cls(it)
		if err != nil {
			t.Fatal(err)
		}
		stacks[k] = true
	}
	if len(stacks) < 2 {
		t.Fatalf("expected the single bug to oversplit across stacks, got %d bucket(s)", len(stacks))
	}
}

func TestStackBucketingCollidesTwoBugs(t *testing.T) {
	// Two different bugs crash at the same site with the same stack: WER
	// merges them into one bucket.
	race, direct := workload.SharedSiteCorpus()
	corpus := buildCorpus(t, []*workload.Bug{race, direct}, 3)
	cls := triage.StackClassifier()
	keys := make(map[string]map[string]bool)
	for _, it := range corpus {
		k, err := cls(it)
		if err != nil {
			t.Fatal(err)
		}
		if keys[k] == nil {
			keys[k] = make(map[string]bool)
		}
		keys[k][it.Label] = true
	}
	collided := false
	for _, labels := range keys {
		if len(labels) > 1 {
			collided = true
		}
	}
	if !collided {
		t.Fatalf("expected a bucket collision; buckets: %v", keys)
	}
}

func TestRootCauseBucketingBeatsStacks(t *testing.T) {
	// The E5 comparison on a reduced corpus: RES bucketing must score a
	// strictly better F1 than stack bucketing.
	race, direct := workload.SharedSiteCorpus()
	bugs := []*workload.Bug{workload.MultiSiteRace(), race, direct}
	corpus := buildCorpus(t, bugs, 3)

	wer := triage.Evaluate(corpus, triage.StackClassifier())
	resEv := triage.Evaluate(corpus, resClassifier())
	t.Logf("WER-style: %v", wer)
	t.Logf("RES:       %v", resEv)

	if resEv.F1 <= wer.F1 {
		t.Errorf("RES bucketing (F1=%.2f) does not beat stack bucketing (F1=%.2f)", resEv.F1, wer.F1)
	}
	if resEv.Errors > 0 {
		t.Errorf("RES classifier errors: %d", resEv.Errors)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	// Hand-built corpus exercising the metric arithmetic: two bugs, three
	// reports, classifier merges everything into one bucket.
	items := []triage.Item{
		{Label: "A"}, {Label: "A"}, {Label: "B"},
	}
	all := func(triage.Item) (string, error) { return "one", nil }
	ev := triage.Evaluate(items, all)
	if ev.Buckets != 1 || ev.Collisions != 1 || ev.OverSplit != 0 {
		t.Errorf("ev = %+v", ev)
	}
	// Pairs: (A,A) tp; (A,B) fp ×2. precision = 1/3, recall = 1.
	if ev.Precision < 0.32 || ev.Precision > 0.34 || ev.Recall != 1 {
		t.Errorf("precision=%v recall=%v", ev.Precision, ev.Recall)
	}

	// Perfect classifier.
	perfect := func(it triage.Item) (string, error) { return it.Label, nil }
	ev = triage.Evaluate(items, perfect)
	if ev.F1 != 1 || ev.Collisions != 0 || ev.OverSplit != 0 {
		t.Errorf("perfect ev = %+v", ev)
	}
}

func TestHeuristicSeverity(t *testing.T) {
	// !exploitable-style: write crashes rate exploitable even when the
	// address is not attacker-controlled; asserts rate low even when they
	// guard attacker-reachable state. Both misratings are inherent to
	// looking only at the crash.
	tainted := workload.TaintedOverflow()
	d, _, err := tainted.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	sev := triage.HeuristicSeverity(tainted.Program(), d)
	if sev != triage.SeverityExploitable {
		t.Errorf("tainted overflow heuristic = %v, want exploitable", sev)
	}

	benign := workload.UntaintedCrash()
	d2, _, err := benign.FindFailure(4)
	if err != nil {
		t.Fatal(err)
	}
	sev = triage.HeuristicSeverity(benign.Program(), d2)
	// The heuristic rates this read crash "probable" — a false positive
	// relative to the taint ground truth (not attacker-controlled).
	if sev != triage.SeverityProbable {
		t.Errorf("benign read crash heuristic = %v, want probably-exploitable (the heuristic's false positive)", sev)
	}
}

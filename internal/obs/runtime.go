package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// runtimeSamples are the runtime/metrics series backing the process
// gauges on /metrics.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
}

// RuntimeMetrics samples the Go runtime and returns the process-health
// series for /metrics: goroutine count, live heap bytes, cumulative GC
// pause seconds, and uptime since start. Gauges federate tagged per
// node; the pause total is a counter and sums cluster-wide.
func RuntimeMetrics(start time.Time) Snapshot {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var goroutines, heapBytes, gcPause float64
	if samples[0].Value.Kind() == metrics.KindUint64 {
		goroutines = float64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		heapBytes = float64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == metrics.KindFloat64Histogram {
		gcPause = histogramTotal(samples[2].Value.Float64Histogram())
	}
	return Snapshot{
		Gauge("resd_goroutines", "Live goroutines in this process.", goroutines),
		Gauge("resd_heap_bytes", "Bytes of live heap objects.", heapBytes),
		Counter("resd_gc_pause_seconds_total", "Approximate cumulative stop-the-world GC pause time.", gcPause),
		Gauge("resd_uptime_seconds", "Seconds since the process started serving.", time.Since(start).Seconds()),
	}
}

// histogramTotal approximates the sum of a runtime float64 histogram's
// observations as count-weighted bucket midpoints; the unbounded edge
// buckets fall back to their finite bound.
func histogramTotal(h *metrics.Float64Histogram) float64 {
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		} else if math.IsInf(hi, 1) {
			mid = lo
		}
		total += float64(n) * mid
	}
	return total
}

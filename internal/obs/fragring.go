package obs

import "sync"

// FragRing holds recent trace fragments keyed by job ID, bounded by
// job count with oldest-job eviction — the per-node store the trace
// stitcher reads. Routing hops, read-through resolutions, and repair
// pulls each drop a fragment here; the stitcher later gathers every
// node's fragments for a job and merges them. A nil *FragRing is
// valid and inert.
type FragRing struct {
	mu     sync.Mutex
	cap    int
	perJob int
	order  []string // insertion order for FIFO eviction
	frags  map[string][]*TraceData
}

// Per-ring defaults: jobs retained, and fragments per job (a job that
// keeps accumulating fragments — e.g. result GETs — stops recording
// rather than evicting other jobs).
const (
	DefaultFragJobs   = 512
	DefaultFragPerJob = 32
)

// NewFragRing builds a ring retaining fragments for the last jobs
// jobs.
func NewFragRing(jobs int) *FragRing {
	if jobs <= 0 {
		jobs = DefaultFragJobs
	}
	return &FragRing{cap: jobs, perJob: DefaultFragPerJob, frags: make(map[string][]*TraceData)}
}

// Add records one fragment for the given job. Nil-safe; nil fragments
// are ignored.
func (r *FragRing) Add(jobID string, td *TraceData) {
	if r == nil || td == nil || jobID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.frags[jobID]
	if !ok {
		if len(r.order) >= r.cap {
			evict := r.order[0]
			r.order = r.order[1:]
			delete(r.frags, evict)
		}
		r.order = append(r.order, jobID)
	}
	if len(cur) >= r.perJob {
		return
	}
	r.frags[jobID] = append(cur, td)
}

// Get returns the fragments recorded for a job, newest last.
func (r *FragRing) Get(jobID string) []*TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*TraceData(nil), r.frags[jobID]...)
}

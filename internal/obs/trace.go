// Package obs is the zero-dependency observability core: search-trace
// spans, fixed-bucket histograms, and mergeable metric snapshots. It is
// deliberately stdlib-only so every layer (core, solver, checkpoint,
// analyzer, service, cluster, store) can depend on it without pulling
// anything into the module graph.
//
// The tracing half is built around one invariant: a nil *Span is a
// valid, fully inert span. Every method no-ops on a nil receiver, so
// instrumented code never branches on "is tracing enabled" — it just
// calls through, and when tracing is off the calls cost a nil check.
// Call sites that would pay for an argument (time.Now, fmt.Sprintf)
// guard with `if span != nil` themselves.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Version is the build version stamped at link time via
//
//	-ldflags "-X res/internal/obs.Version=v1.2.3"
//
// and reported by every CLI's -version flag and the
// resd_build_info metric.
var Version = "dev"

// Trace collects a tree of timed spans for one analysis. It is safe
// for concurrent use: spans may be created, annotated, and ended from
// worker goroutines.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	spans []*Span
	// Distributed-trace identity. id is the W3C-style 32-hex trace ID
	// shared by every fragment of one request; node names the process
	// that recorded this fragment; parentRef is the Ref of the remote
	// span this fragment hangs under when fragments are stitched.
	id        string
	node      string
	parentRef string
	// refPrefix is this fragment's random 8-hex namespace for span
	// refs, so refs minted on different nodes never collide.
	refPrefix string
}

// Span is one timed node in the trace tree. The zero value is not
// useful; spans are created by Trace.Root or Span.Child. All methods
// are safe on a nil receiver.
//
// Attributes live in small append-only slices, not maps: spans carry a
// handful of keys, a linear scan beats hashing at that size, and Finish
// snapshots them with one copy instead of rebuilding a map per span —
// the difference between tracing costing ~1% and ~5% of an analysis.
type Span struct {
	tr     *Trace
	id     int
	parent int
	name   string
	start  time.Duration
	end    time.Duration
	done   bool
	// ref is the span's 16-hex cross-node handle, minted lazily by Ref
	// so spans that never propagate pay nothing for it.
	ref string
	// shared marks the attribute slices as referenced by a Finish
	// snapshot; the next in-place update copies them first
	// (copy-on-write), so snapshots stay immutable without Finish
	// paying a per-span copy.
	shared bool
	attrs  Attrs
	sattrs StrAttrs
	// inline backs attrs until it overflows, so a span's attributes
	// cost no allocation of their own — it is sized for the busiest
	// span (the per-depth search span, 7 attributes).
	inline [7]Attr
}

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(root string) *Trace {
	t := &Trace{start: time.Now(), spans: make([]*Span, 0, 16)}
	t.newSpan(root, -1, 0)
	return t
}

// NewTraceCtx starts a trace fragment that belongs to a distributed
// request: tc carries the request's trace ID (minted when empty) and
// the Ref of the remote parent span, node names this process. The
// fragment later reassembles with its siblings via Stitch.
func NewTraceCtx(root string, tc TraceContext, node string) *Trace {
	t := NewTrace(root)
	if tc.TraceID == "" {
		tc.TraceID = NewTraceID()
	}
	t.id = tc.TraceID
	t.node = node
	t.parentRef = tc.ParentRef
	return t
}

// ID returns the distributed trace ID, or "" for a local-only trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Context returns the propagation context for a child hop whose remote
// span tree should hang under span s (usually the span wrapping the
// outbound call). On a nil trace it returns the zero TraceContext.
func (t *Trace) Context(s *Span) TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: t.id, ParentRef: s.Ref()}
}

func (t *Trace) newSpan(name string, parent int, start time.Duration) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, id: len(t.spans), parent: parent, name: name, start: start, end: -1}
	t.spans = append(t.spans, s)
	return s
}

// Root returns the root span, or nil when the trace is nil.
func (t *Trace) Root() *Span {
	if t == nil || len(t.spans) == 0 {
		return nil
	}
	return t.spans[0]
}

// Child opens a sub-span. On a nil receiver it returns nil, so chains
// of Child calls stay inert when tracing is disabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, time.Since(s.tr.start))
}

// cowLocked unshares the attribute slices before an in-place update.
// Appends never need this: a snapshot's slice keeps its own length, so
// new entries past it are invisible to the snapshot even when the
// backing array is shared.
func (s *Span) cowLocked() {
	if !s.shared {
		return
	}
	s.attrs = append(Attrs(nil), s.attrs...)
	s.sattrs = append(StrAttrs(nil), s.sattrs...)
	s.shared = false
}

func (s *Span) setIntLocked(key string, v int64, add bool) {
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.cowLocked()
			if add {
				s.attrs[i].Val += v
			} else {
				s.attrs[i].Val = v
			}
			return
		}
	}
	if s.attrs == nil {
		s.attrs = Attrs(s.inline[:0:len(s.inline)])
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// SetInt records an integer attribute on the span.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.setIntLocked(key, v, false)
	s.tr.mu.Unlock()
}

// SetAttrs records several integer attributes under one lock
// acquisition — what hot instrumentation sites (the per-depth search
// span) use instead of a SetInt volley.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for _, kv := range attrs {
		s.setIntLocked(kv.Key, kv.Val, false)
	}
	s.tr.mu.Unlock()
}

// AddInt accumulates into an integer attribute. Safe to call from
// concurrent workers feeding the same span.
func (s *Span) AddInt(key string, delta int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.setIntLocked(key, delta, true)
	s.tr.mu.Unlock()
}

// SetStr records a string attribute on the span.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for i := range s.sattrs {
		if s.sattrs[i].Key == key {
			s.cowLocked()
			s.sattrs[i].Val = v
			s.tr.mu.Unlock()
			return
		}
	}
	s.sattrs = append(s.sattrs, StrAttr{Key: key, Val: v})
	s.tr.mu.Unlock()
}

// Ref returns the span's stable 16-hex handle for cross-node parent
// links: an 8-hex per-fragment prefix plus the span's index. It is
// minted on first use, carried into the traceparent header of outbound
// hops, and resolved again by Stitch. Nil-safe ("" when tracing is
// off).
func (s *Span) Ref() string {
	if s == nil {
		return ""
	}
	s.tr.mu.Lock()
	if s.ref == "" {
		if s.tr.refPrefix == "" {
			s.tr.refPrefix = randHex(8)
		}
		s.ref = fmt.Sprintf("%s%08x", s.tr.refPrefix, s.id)
	}
	r := s.ref
	s.tr.mu.Unlock()
	return r
}

// End closes the span. Idempotent; spans still open when the trace is
// finished are closed at the trace end time, so early returns in
// instrumented code never leak unterminated spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.tr.start)
	s.tr.mu.Lock()
	if !s.done {
		s.done = true
		s.end = now
	}
	s.tr.mu.Unlock()
}

// Finish closes every open span and returns the immutable wire form.
func (t *Trace) Finish() *TraceData {
	if t == nil {
		return nil
	}
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	td := &TraceData{
		TraceID:   t.id,
		Node:      t.node,
		ParentRef: t.parentRef,
		Spans:     make([]SpanData, len(t.spans)),
	}
	for i, s := range t.spans {
		end := s.end
		if !s.done {
			end = now
		}
		sd := SpanData{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			Ref:     s.ref,
			StartUS: s.start.Microseconds(),
			DurUS:   (end - s.start).Microseconds(),
		}
		// Share the attribute slices instead of copying: the span
		// marks itself shared and copies on the next in-place update,
		// so the snapshot stays immutable and Finish stays cheap.
		if len(s.attrs) > 0 {
			sd.Attrs = s.attrs
			s.shared = true
		}
		if len(s.sattrs) > 0 {
			sd.StrAttrs = s.sattrs
			s.shared = true
		}
		td.Spans[i] = sd
	}
	return td
}

// Attr is one integer span attribute.
type Attr struct {
	Key string
	Val int64
}

// Attrs holds a span's integer attributes. It marshals as a JSON
// object with sorted keys — byte-identical to the map form it
// replaces — but is stored as a slice, which a handful of keys is
// both faster to build and cheaper to snapshot.
type Attrs []Attr

// Get returns the named attribute, or 0 when absent.
func (a Attrs) Get(key string) int64 {
	for i := range a {
		if a[i].Key == key {
			return a[i].Val
		}
	}
	return 0
}

// MarshalJSON renders the attributes as an object with sorted keys, the
// deterministic wire form the trace endpoint serves.
func (a Attrs) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, len(a))
	for _, kv := range a {
		m[kv.Key] = kv.Val
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts the object form and stores keys sorted.
func (a *Attrs) UnmarshalJSON(b []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*a = (*a)[:0]
	for _, k := range sortedKeys(m) {
		*a = append(*a, Attr{Key: k, Val: m[k]})
	}
	return nil
}

// StrAttr is one string span attribute.
type StrAttr struct {
	Key string
	Val string
}

// StrAttrs holds a span's string attributes; same representation
// trade-off and wire form as Attrs.
type StrAttrs []StrAttr

// Get returns the named attribute, or "" when absent.
func (a StrAttrs) Get(key string) string {
	for i := range a {
		if a[i].Key == key {
			return a[i].Val
		}
	}
	return ""
}

// MarshalJSON renders the attributes as an object with sorted keys.
func (a StrAttrs) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(a))
	for _, kv := range a {
		m[kv.Key] = kv.Val
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts the object form and stores keys sorted.
func (a *StrAttrs) UnmarshalJSON(b []byte) error {
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*a = (*a)[:0]
	for _, k := range sortedKeys(m) {
		*a = append(*a, StrAttr{Key: k, Val: m[k]})
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// SpanData is the serialized form of one span. Parent is -1 for the
// root. Attributes marshal as objects with sorted keys, so the wire
// form is deterministic for a given span tree.
type SpanData struct {
	ID       int      `json:"id"`
	Parent   int      `json:"parent"`
	Name     string   `json:"name"`
	Ref      string   `json:"ref,omitempty"`
	Node     string   `json:"node,omitempty"`
	StartUS  int64    `json:"start_us"`
	DurUS    int64    `json:"dur_us"`
	Attrs    Attrs    `json:"attrs,omitempty"`
	StrAttrs StrAttrs `json:"str_attrs,omitempty"`
}

// Int returns the named integer attribute, or 0.
func (s SpanData) Int(key string) int64 { return s.Attrs.Get(key) }

// Str returns the named string attribute, or "".
func (s SpanData) Str(key string) string { return s.StrAttrs.Get(key) }

// TraceData is the canonical wire form of a finished trace: spans in
// creation order, root first. For distributed traces each node
// produces one or more such fragments (TraceID shared, Node naming the
// producer, ParentRef pointing at the remote span the fragment hangs
// under); Stitch merges them back into one tree.
type TraceData struct {
	TraceID   string     `json:"trace_id,omitempty"`
	Node      string     `json:"node,omitempty"`
	ParentRef string     `json:"parent_ref,omitempty"`
	Spans     []SpanData `json:"spans"`
}

// ByName returns all spans with the given name, in creation order.
func (td *TraceData) ByName(name string) []SpanData {
	if td == nil {
		return nil
	}
	var out []SpanData
	for _, s := range td.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Children returns the spans whose parent is the given span ID.
func (td *TraceData) Children(id int) []SpanData {
	if td == nil {
		return nil
	}
	var out []SpanData
	for _, s := range td.Spans {
		if s.Parent == id {
			out = append(out, s)
		}
	}
	return out
}

// ChromeTrace renders the trace in Chrome trace-event JSON ("X"
// complete events), loadable in chrome://tracing or Perfetto. Span
// depth in the tree is mapped to the tid column so nesting renders as
// stacked tracks.
func (td *TraceData) ChromeTrace() []byte {
	type event struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	depth := make(map[int]int, len(td.Spans))
	evs := make([]event, 0, len(td.Spans))
	for _, s := range td.Spans {
		d := 0
		if s.Parent >= 0 {
			d = depth[s.Parent] + 1
		}
		depth[s.ID] = d
		ev := event{Name: s.Name, Ph: "X", TS: s.StartUS, Dur: s.DurUS, PID: 1, TID: d + 1}
		if len(s.Attrs) > 0 || len(s.StrAttrs) > 0 || s.Node != "" {
			ev.Args = make(map[string]any, len(s.Attrs)+len(s.StrAttrs)+1)
			if s.Node != "" {
				ev.Args["node"] = s.Node
			}
			for _, kv := range s.Attrs {
				ev.Args[kv.Key] = kv.Val
			}
			for _, kv := range s.StrAttrs {
				ev.Args[kv.Key] = kv.Val
			}
		}
		evs = append(evs, ev)
	}
	b, _ := json.Marshal(struct {
		TraceEvents []event `json:"traceEvents"`
	}{evs})
	return b
}

// Summary renders a one-line-per-span indented tree — the shape the
// slow-analysis log writes to stderr.
func (td *TraceData) Summary() string {
	if td == nil {
		return ""
	}
	depth := make(map[int]int, len(td.Spans))
	var out []byte
	for _, s := range td.Spans {
		d := 0
		if s.Parent >= 0 {
			d = depth[s.Parent] + 1
		}
		depth[s.ID] = d
		for i := 0; i < d; i++ {
			out = append(out, ' ', ' ')
		}
		out = append(out, fmt.Sprintf("%s %.3fms", s.Name, float64(s.DurUS)/1000)...)
		if s.Node != "" {
			out = append(out, (" node=" + s.Node)...)
		}
		if len(s.Attrs) > 0 {
			b, _ := json.Marshal(s.Attrs)
			out = append(out, ' ')
			out = append(out, b...)
		}
		out = append(out, '\n')
	}
	return string(out)
}

// DepthBands lists every band DepthBand can return, in ascending depth
// order — the iteration order for per-band metric series.
var DepthBands = []string{"0-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// DepthBand buckets a search depth into the coarse bands used for
// pprof labels and the per-depth solver-time histogram.
func DepthBand(depth int) string {
	switch {
	case depth <= 4:
		return "0-4"
	case depth <= 8:
		return "5-8"
	case depth <= 16:
		return "9-16"
	case depth <= 32:
		return "17-32"
	case depth <= 64:
		return "33-64"
	default:
		return "65+"
	}
}

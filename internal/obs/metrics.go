package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets are the default bounds (seconds) for whole-analysis
// latencies: queue wait, end-to-end analysis time.
var LatencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// MicroBuckets are the default bounds (seconds) for fast inner
// operations: per-depth solver time, bisect replay, proxy hops, store
// ops.
var MicroBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Histogram is a fixed-bucket, lock-free histogram. Observe is safe
// from any goroutine; Snapshot is safe concurrently with Observe (it
// may tear by at most the in-flight observations, which Prometheus
// scraping tolerates by design).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given upper bounds
// (seconds, ascending).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the le bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot returns the current state as a mergeable wire value.
func (h *Histogram) Snapshot() *HistData {
	d := &HistData{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// HistData is the serialized form of a histogram: per-bucket (not
// cumulative) counts, with Counts[len(Bounds)] holding the +Inf
// bucket.
type HistData struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Merge folds another histogram into this one. Identical bucket
// layouts merge bucket-wise. Mismatched layouts — nodes running
// different builds during a rolling upgrade — re-bucket: each of o's
// buckets lands in the first of h's buckets whose bound is >= its own
// upper bound (the +Inf bucket when none is). Every observation in
// o's bucket is <= that bucket's bound, so the mapping is
// conservative: no count can migrate below the bound it was observed
// under, quantile estimates only widen, and sum/count stay exact.
func (h *HistData) Merge(o *HistData) {
	if o == nil {
		return
	}
	if len(h.Bounds) == len(o.Bounds) && len(h.Counts) == len(o.Counts) {
		same := true
		for i, b := range h.Bounds {
			if o.Bounds[i] != b {
				same = false
				break
			}
		}
		if same {
			for i := range h.Counts {
				h.Counts[i] += o.Counts[i]
			}
			h.Sum += o.Sum
			h.Count += o.Count
			return
		}
	}
	for i, c := range o.Counts {
		if c == 0 {
			continue
		}
		target := len(h.Bounds) // +Inf
		if i < len(o.Bounds) {
			target = sort.SearchFloat64s(h.Bounds, o.Bounds[i])
		}
		if target < len(h.Counts) {
			h.Counts[target] += c
		}
	}
	h.Sum += o.Sum
	h.Count += o.Count
}

// Clone returns a deep copy, so merges never alias a source snapshot.
func (h *HistData) Clone() *HistData {
	c := &HistData{Bounds: h.Bounds, Sum: h.Sum, Count: h.Count}
	c.Counts = make([]uint64, len(h.Counts))
	copy(c.Counts, h.Counts)
	return c
}

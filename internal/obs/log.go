package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// LogFormats lists the values -log-format accepts.
const LogFormats = "text|json"

// NewLogger builds the process-wide structured logger. format selects
// the slog handler ("text" or "json"); node is attached to every
// record so multi-node log streams stay attributable; fr, when
// non-nil, receives a copy of every warn-or-worse record so the flight
// recorder holds recent trouble even when stderr has scrolled away.
//
// Call sites attach request identity per record:
//
//	slog.Warn("slow analysis", "trace_id", tid, "job_id", id, "program", p)
//
// so a grep by trace_id reconstructs one request across every node's
// logs regardless of format.
func NewLogger(format string, w io.Writer, node string, fr *FlightRecorder) (*slog.Logger, error) {
	var h slog.Handler
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want %s)", format, LogFormats)
	}
	if fr != nil {
		h = &teeHandler{Handler: h, fr: fr}
	}
	l := slog.New(h)
	if node != "" {
		l = l.With("node", node)
	}
	return l, nil
}

// teeHandler copies warn-or-worse records into the flight recorder
// before delegating to the real handler.
type teeHandler struct {
	slog.Handler
	fr *FlightRecorder
}

func (t *teeHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelWarn {
		ev := FlightEvent{TimeUS: r.Time.UnixMicro(), Kind: "log", Msg: r.Message}
		r.Attrs(func(a slog.Attr) bool {
			switch a.Key {
			case "trace_id":
				ev.TraceID = a.Value.String()
			case "job_id":
				ev.JobID = a.Value.String()
			default:
				if ev.Attrs == nil {
					ev.Attrs = make(map[string]string, 4)
				}
				ev.Attrs[a.Key] = a.Value.String()
			}
			return true
		})
		t.fr.Record(ev)
	}
	return t.Handler.Handle(ctx, r)
}

func (t *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &teeHandler{Handler: t.Handler.WithAttrs(attrs), fr: t.fr}
}

func (t *teeHandler) WithGroup(name string) slog.Handler {
	return &teeHandler{Handler: t.Handler.WithGroup(name), fr: t.fr}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightEvent is one entry in the flight recorder: a finished span
// summary, a warn-or-worse log record, or an operational event (fault
// injected, breaker tripped, repair action, panic).
type FlightEvent struct {
	TimeUS  int64             `json:"time_us"` // unix microseconds
	Kind    string            `json:"kind"`    // "span", "log", "fault", "breaker", "repair", "panic"
	TraceID string            `json:"trace_id,omitempty"`
	JobID   string            `json:"job_id,omitempty"`
	Msg     string            `json:"msg"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// FlightRecorder is an always-on bounded ring of recent FlightEvents.
// It costs one mutexed append per event, so it can stay armed in
// production; the payoff is that a panic, a chaos run, or a slow
// analysis is debuggable after the fact with nothing pre-enabled.
// A nil *FlightRecorder is valid and inert, mirroring the nil-span
// convention.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	next    int // ring cursor
	wrapped bool
	dropped uint64 // events overwritten, so readers know the window slid
}

// DefaultFlightEvents is the ring capacity when NewFlightRecorder is
// given a non-positive one.
const DefaultFlightEvents = 256

// NewFlightRecorder builds a recorder holding the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
// TimeUS is stamped when zero. Nil-safe.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.TimeUS == 0 {
		ev.TimeUS = time.Now().UnixMicro()
	}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % cap(f.buf)
		f.wrapped = true
		f.dropped++
	}
	f.mu.Unlock()
}

// Eventf records a Kind event with a formatted message. Nil-safe.
func (f *FlightRecorder) Eventf(kind, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(FlightEvent{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Snapshot returns the buffered events oldest-first, plus how many
// older events the ring has already evicted.
func (f *FlightRecorder) Snapshot() (evs []FlightEvent, dropped uint64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	evs = make([]FlightEvent, 0, len(f.buf))
	if f.wrapped {
		evs = append(evs, f.buf[f.next:]...)
		evs = append(evs, f.buf[:f.next]...)
	} else {
		evs = append(evs, f.buf...)
	}
	return evs, f.dropped
}

// WriteJSON serves the ring as the /internal/v1/flightrec body.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	evs, dropped := f.Snapshot()
	return json.NewEncoder(w).Encode(struct {
		Dropped uint64        `json:"dropped"`
		Events  []FlightEvent `json:"events"`
	}{dropped, evs})
}

// Dump writes a human-readable transcript of the ring — the post-mortem
// form emitted on panic and on slow-analysis hits. Nil-safe no-op.
func (f *FlightRecorder) Dump(w io.Writer, why string) {
	if f == nil {
		return
	}
	evs, dropped := f.Snapshot()
	fmt.Fprintf(w, "--- flight recorder dump (%s): %d events, %d evicted ---\n", why, len(evs), dropped)
	for _, ev := range evs {
		ts := time.UnixMicro(ev.TimeUS).UTC().Format("15:04:05.000000")
		fmt.Fprintf(w, "%s %-8s %s", ts, ev.Kind, ev.Msg)
		if ev.TraceID != "" {
			fmt.Fprintf(w, " trace_id=%s", ev.TraceID)
		}
		if ev.JobID != "" {
			fmt.Fprintf(w, " job_id=%s", ev.JobID)
		}
		for _, k := range sortedKeys(ev.Attrs) {
			fmt.Fprintf(w, " %s=%s", k, ev.Attrs[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "--- end flight recorder dump ---\n")
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// Label is one metric label. Labels are an ordered slice, not a map,
// so exposition output is deterministic and byte-stable across
// processes.
type Label struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Metric is one series in a snapshot: a counter or gauge with Value
// set, or a histogram with Hist set. Snapshots are plain data — they
// marshal to JSON for cluster federation and render to Prometheus text
// via WriteProm.
type Metric struct {
	Name   string    `json:"name"`
	Type   string    `json:"type"` // "counter", "gauge", or "histogram"
	Help   string    `json:"help,omitempty"`
	Labels []Label   `json:"labels,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Hist   *HistData `json:"hist,omitempty"`
}

// Snapshot is an ordered list of metrics. Series sharing a name must
// be contiguous (Prometheus exposition requires it); builders keep
// them so, and Merge preserves it.
type Snapshot []Metric

// Counter builds a counter metric.
func Counter(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "counter", Help: help, Value: v}
}

// Gauge builds a gauge metric.
func Gauge(name, help string, v float64) Metric {
	return Metric{Name: name, Type: "gauge", Help: help, Value: v}
}

// HistogramMetric builds a histogram metric from a snapshot.
func HistogramMetric(name, help string, h *HistData) Metric {
	return Metric{Name: name, Type: "histogram", Help: help, Hist: h}
}

// With returns a copy of the metric with the given label pairs
// (k1, v1, k2, v2, ...) appended.
func (m Metric) With(kv ...string) Metric {
	labels := make([]Label, 0, len(m.Labels)+len(kv)/2)
	labels = append(labels, m.Labels...)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, Label{K: kv[i], V: kv[i+1]})
	}
	m.Labels = labels
	return m
}

func (m Metric) labelKey() string {
	var b strings.Builder
	for _, l := range m.Labels {
		fmt.Fprintf(&b, "%s=%q,", l.K, l.V)
	}
	return b.String()
}

func formatLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.K, l.V)
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per
// metric name, on first occurrence.
func WriteProm(w io.Writer, snap Snapshot) {
	seen := make(map[string]bool)
	for _, m := range snap {
		if !seen[m.Name] {
			seen[m.Name] = true
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.Name, m.Help, m.Name, m.Type)
		}
		if m.Type == "histogram" && m.Hist != nil {
			cum := uint64(0)
			for i, b := range m.Hist.Bounds {
				cum += m.Hist.Counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, formatLabels(m.Labels, fmt.Sprintf("le=%q", fmt.Sprintf("%g", b))), cum)
			}
			if len(m.Hist.Counts) > len(m.Hist.Bounds) {
				cum += m.Hist.Counts[len(m.Hist.Bounds)]
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, formatLabels(m.Labels, `le="+Inf"`), cum)
			fmt.Fprintf(w, "%s_sum%s %g\n", m.Name, formatLabels(m.Labels, ""), m.Hist.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", m.Name, formatLabels(m.Labels, ""), m.Hist.Count)
			continue
		}
		fmt.Fprintf(w, "%s%s %g\n", m.Name, formatLabels(m.Labels, ""), m.Value)
	}
}

// NodeSnapshot pairs a node identity with its metric snapshot — the
// JSON body of GET /internal/v1/metrics and the unit of cluster
// federation.
type NodeSnapshot struct {
	Node    string   `json:"node"`
	Metrics Snapshot `json:"metrics"`
}

// Merge federates per-node snapshots into one cluster-wide snapshot:
// counters are summed and histograms bucket-merged across nodes (keyed
// by name + labels), while gauges — point-in-time per-node state —
// keep one series per node, tagged with a node label. Metric order
// follows first appearance across the input, and series of one name
// stay contiguous.
func Merge(nodes []NodeSnapshot) Snapshot {
	type group struct {
		order   []string
		agg     map[string]*Metric
		entries []Metric
	}
	var names []string
	groups := make(map[string]*group)
	for _, ns := range nodes {
		for _, m := range ns.Metrics {
			g := groups[m.Name]
			if g == nil {
				g = &group{agg: make(map[string]*Metric)}
				groups[m.Name] = g
				names = append(names, m.Name)
			}
			switch m.Type {
			case "gauge":
				g.entries = append(g.entries, m.With("node", ns.Node))
			default:
				key := m.labelKey()
				a := g.agg[key]
				if a == nil {
					cp := m
					if cp.Hist != nil {
						cp.Hist = cp.Hist.Clone()
					}
					g.agg[key] = &cp
					g.order = append(g.order, key)
					continue
				}
				if a.Hist != nil {
					a.Hist.Merge(m.Hist)
				} else {
					a.Value += m.Value
				}
			}
		}
	}
	var out Snapshot
	for _, name := range names {
		g := groups[name]
		for _, key := range g.order {
			out = append(out, *g.agg[key])
		}
		out = append(out, g.entries...)
	}
	return out
}

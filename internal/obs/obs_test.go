package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsInert(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("Child on nil span = %v, want nil", c)
	}
	// None of these may panic.
	s.SetInt("k", 1)
	s.AddInt("k", 1)
	s.SetStr("k", "v")
	s.End()
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("Root on nil trace should be nil")
	}
	if tr.Finish() != nil {
		t.Fatal("Finish on nil trace should be nil")
	}
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("analysis")
	root := tr.Root()
	root.SetStr("program", "p")
	search := root.Child("search")
	d0 := search.Child("depth")
	d0.SetInt("depth", 1)
	d0.AddInt("solver_ns", 100)
	d0.AddInt("solver_ns", 50)
	d0.End()
	d1 := search.Child("depth")
	d1.SetInt("depth", 2)
	// d1 and search left open deliberately: Finish must close them.
	td := tr.Finish()
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if td.Spans[0].Parent != -1 || td.Spans[0].Name != "analysis" {
		t.Fatalf("bad root: %+v", td.Spans[0])
	}
	depths := td.ByName("depth")
	if len(depths) != 2 {
		t.Fatalf("got %d depth spans, want 2", len(depths))
	}
	if depths[0].Int("solver_ns") != 150 {
		t.Fatalf("solver_ns = %d, want 150", depths[0].Int("solver_ns"))
	}
	if depths[0].Parent != td.ByName("search")[0].ID {
		t.Fatal("depth span not parented under search")
	}
	for _, s := range td.Spans {
		if s.DurUS < 0 {
			t.Fatalf("span %s has negative duration", s.Name)
		}
	}
	if got := len(td.Children(search.id)); got != 2 {
		t.Fatalf("search has %d children, want 2", got)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("root")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := root.Child("work")
				s.AddInt("n", 1)
				s.End()
				root.AddInt("total", 1)
			}
		}()
	}
	wg.Wait()
	td := tr.Finish()
	if got := len(td.ByName("work")); got != 800 {
		t.Fatalf("got %d work spans, want 800", got)
	}
	if td.Spans[0].Int("total") != 800 {
		t.Fatalf("total = %d, want 800", td.Spans[0].Int("total"))
	}
}

func TestChromeTrace(t *testing.T) {
	tr := NewTrace("analysis")
	tr.Root().Child("search").End()
	td := tr.Finish()
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(td.ChromeTrace(), &out); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	if out.TraceEvents[0].Ph != "X" || out.TraceEvents[0].TID != 1 || out.TraceEvents[1].TID != 2 {
		t.Fatalf("bad events: %+v", out.TraceEvents)
	}
}

func TestSummaryIndents(t *testing.T) {
	tr := NewTrace("analysis")
	tr.Root().Child("search").Child("depth").End()
	sum := tr.Finish().Summary()
	lines := strings.Split(strings.TrimRight(sum, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sum)
	}
	if !strings.HasPrefix(lines[0], "analysis") || !strings.HasPrefix(lines[1], "  search") || !strings.HasPrefix(lines[2], "    depth") {
		t.Fatalf("bad indentation:\n%s", sum)
	}
}

func TestHistogramObserveAndRender(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005) // le 0.01
	h.Observe(0.05)  // le 0.1
	h.Observe(0.05)  // le 0.1
	h.Observe(0.5)   // le 1
	h.Observe(5)     // +Inf
	d := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, d.Counts[i], w)
		}
	}
	if d.Count != 5 {
		t.Fatalf("count = %d, want 5", d.Count)
	}
	if d.Sum < 5.6 || d.Sum > 5.62 {
		t.Fatalf("sum = %g, want ~5.61", d.Sum)
	}
	var b strings.Builder
	WriteProm(&b, Snapshot{HistogramMetric("x_seconds", "help.", d)})
	out := b.String()
	for _, line := range []string{
		`x_seconds_bucket{le="0.01"} 1`,
		`x_seconds_bucket{le="0.1"} 3`,
		`x_seconds_bucket{le="1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(MicroBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.0002)
			}
		}()
	}
	wg.Wait()
	d := h.Snapshot()
	if d.Count != 4000 {
		t.Fatalf("count = %d, want 4000", d.Count)
	}
	if d.Sum < 0.79 || d.Sum > 0.81 {
		t.Fatalf("sum = %g, want ~0.8", d.Sum)
	}
}

func TestWritePromCountersAndLabels(t *testing.T) {
	snap := Snapshot{
		Counter("a_total", "A.", 3),
		Counter("b_total", "B.", 1).With("kind", "event-log"),
		Counter("b_total", "B.", 2).With("kind", "branch-trace"),
		Gauge("g", "G.", 0.5),
	}
	var b strings.Builder
	WriteProm(&b, snap)
	out := b.String()
	for _, line := range []string{
		"# HELP a_total A.",
		"# TYPE a_total counter",
		"a_total 3",
		`b_total{kind="event-log"} 1`,
		`b_total{kind="branch-trace"} 2`,
		"g 0.5",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	if strings.Count(out, "# TYPE b_total counter") != 1 {
		t.Fatalf("TYPE header for b_total should appear once:\n%s", out)
	}
}

func TestMergeFederation(t *testing.T) {
	h1 := NewHistogram([]float64{0.1, 1})
	h1.Observe(0.05)
	h2 := NewHistogram([]float64{0.1, 1})
	h2.Observe(0.5)
	h2.Observe(2)
	n1 := NodeSnapshot{Node: "a:1", Metrics: Snapshot{
		Counter("ingest_total", "I.", 3),
		Gauge("queue_depth", "Q.", 2),
		HistogramMetric("lat_seconds", "L.", h1.Snapshot()),
	}}
	n2 := NodeSnapshot{Node: "b:2", Metrics: Snapshot{
		Counter("ingest_total", "I.", 4),
		Gauge("queue_depth", "Q.", 5),
		HistogramMetric("lat_seconds", "L.", h2.Snapshot()),
	}}
	merged := Merge([]NodeSnapshot{n1, n2})
	var b strings.Builder
	WriteProm(&b, merged)
	out := b.String()
	for _, line := range []string{
		"ingest_total 7",            // counters sum
		`queue_depth{node="a:1"} 2`, // gauges tagged per node
		`queue_depth{node="b:2"} 5`,
		`lat_seconds_bucket{le="0.1"} 1`, // buckets merge
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	// Merging must not mutate the source snapshots.
	if n1.Metrics[2].Hist.Count != 1 {
		t.Fatal("Merge mutated a source histogram")
	}
}

func TestDepthBand(t *testing.T) {
	cases := map[int]string{0: "0-4", 4: "0-4", 5: "5-8", 8: "5-8", 9: "9-16", 16: "9-16", 17: "17-32", 33: "33-64", 64: "33-64", 65: "65+", 1000: "65+"}
	for d, want := range cases {
		if got := DepthBand(d); got != want {
			t.Fatalf("DepthBand(%d) = %q, want %q", d, got, want)
		}
	}
}

func TestFinishSnapshotImmutable(t *testing.T) {
	tr := NewTrace("r")
	s := tr.Root().Child("x")
	s.SetInt("n", 1)
	s.SetStr("k", "a")
	first := tr.Finish()
	// In-place updates after Finish must copy-on-write, appends must
	// stay invisible to the earlier snapshot.
	s.SetInt("n", 2)
	s.AddInt("n", 3)
	s.SetStr("k", "b")
	s.SetInt("extra", 9)
	if got := first.Spans[1].Int("n"); got != 1 {
		t.Fatalf("snapshot n mutated to %d, want 1", got)
	}
	if got := first.Spans[1].Str("k"); got != "a" {
		t.Fatalf("snapshot k mutated to %q, want \"a\"", got)
	}
	if got := first.Spans[1].Int("extra"); got != 0 {
		t.Fatalf("snapshot grew attr extra=%d, want absent", got)
	}
	second := tr.Finish()
	if got := second.Spans[1].Int("n"); got != 5 {
		t.Fatalf("second snapshot n = %d, want 5", got)
	}
	if got := second.Spans[1].Str("k"); got != "b" {
		t.Fatalf("second snapshot k = %q, want \"b\"", got)
	}
	if got := second.Spans[1].Int("extra"); got != 9 {
		t.Fatalf("second snapshot extra = %d, want 9", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("r")
	s := tr.Root().Child("x")
	s.End()
	first := tr.Finish() // snapshot after first End
	time.Sleep(2 * time.Millisecond)
	s.End() // must not move the end time
	second := tr.Finish()
	if first.Spans[1].DurUS != second.Spans[1].DurUS {
		t.Fatalf("second End moved duration: %d != %d", first.Spans[1].DurUS, second.Spans[1].DurUS)
	}
}

// TestMergeFederationMismatchedBuckets pins the rolling-upgrade
// contract at the federation level: two nodes exposing the same
// histogram under DIFFERENT bucket layouts still merge — sum and count
// stay exact, and each foreign bucket lands at the first local bound
// that covers it (conservatively, so quantile estimates only widen and
// the rendered cumulative series stays monotone).
func TestMergeFederationMismatchedBuckets(t *testing.T) {
	old := NodeSnapshot{Node: "a:1", Metrics: Snapshot{
		HistogramMetric("lat_seconds", "L.", &HistData{
			Bounds: []float64{0.1, 1}, Counts: []uint64{3, 2, 1}, Sum: 4.2, Count: 6}),
	}}
	upgraded := NodeSnapshot{Node: "b:2", Metrics: Snapshot{
		HistogramMetric("lat_seconds", "L.", &HistData{
			Bounds: []float64{0.05, 0.5, 5}, Counts: []uint64{1, 1, 1, 1}, Sum: 6.0, Count: 4}),
	}}
	merged := Merge([]NodeSnapshot{old, upgraded})
	if len(merged) != 1 || merged[0].Hist == nil {
		t.Fatalf("merged = %+v, want one histogram series", merged)
	}
	h := merged[0].Hist
	if h.Count != 10 || h.Sum != 10.2 {
		t.Fatalf("count=%d sum=%v, want exact 10 and 10.2", h.Count, h.Sum)
	}
	// b's buckets re-home into a's layout: 0.05→le=0.1, 0.5→le=1, and
	// both 5 and +Inf land in +Inf.
	for i, want := range []uint64{4, 3, 3} {
		if h.Counts[i] != want {
			t.Fatalf("merged counts = %v, want [4 3 3]", h.Counts)
		}
	}
	// The first node's layout wins; neither source snapshot is mutated.
	if got := old.Metrics[0].Hist.Counts[0]; got != 3 {
		t.Fatalf("Merge mutated the old node's histogram: %d", got)
	}
	if got := upgraded.Metrics[0].Hist.Counts[0]; got != 1 {
		t.Fatalf("Merge mutated the upgraded node's histogram: %d", got)
	}
	var b strings.Builder
	WriteProm(&b, merged)
	out := b.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="1"} 7`,
		`lat_seconds_bucket{le="+Inf"} 10`,
		"lat_seconds_count 10",
		"lat_seconds_sum 10.2",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

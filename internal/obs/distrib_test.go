package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTraceCtx("ingest", TraceContext{}, "node-a")
	if len(tr.ID()) != 32 || !isHex(tr.ID()) {
		t.Fatalf("trace ID %q is not 32 hex", tr.ID())
	}
	hop := tr.Root().Child("proxy")
	tc := tr.Context(hop)
	h := tc.Traceparent()
	got := ParseTraceparent(h)
	if got.TraceID != tr.ID() || got.ParentRef != hop.Ref() {
		t.Fatalf("round trip %q -> %+v, want trace %s parent %s", h, got, tr.ID(), hop.Ref())
	}
	if len(hop.Ref()) != 16 || !isHex(hop.Ref()) {
		t.Fatalf("span ref %q is not 16 hex", hop.Ref())
	}
	if hop.Ref() != hop.Ref() {
		t.Fatal("Ref not stable")
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	for _, v := range []string{
		"", "garbage", "00-abc-def-01",
		"00-ZZ" + strings.Repeat("0", 30) + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 15) + "-01",
	} {
		if tc := ParseTraceparent(v); tc != (TraceContext{}) {
			t.Fatalf("ParseTraceparent(%q) = %+v, want zero", v, tc)
		}
	}
	// All-zero parent ref means "no parent", not a ref.
	tc := ParseTraceparent("00-" + strings.Repeat("a", 32) + "-0000000000000000-01")
	if tc.TraceID != strings.Repeat("a", 32) || tc.ParentRef != "" {
		t.Fatalf("zero-parent parse = %+v", tc)
	}
}

func TestNilTraceContextInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	if tc := tr.Context(tr.Root()); tc != (TraceContext{}) {
		t.Fatalf("nil trace context = %+v", tc)
	}
	var s *Span
	if s.Ref() != "" {
		t.Fatal("nil span has a ref")
	}
	if (TraceContext{}).Traceparent() != "" {
		t.Fatal("zero context renders a header")
	}
}

func TestStitchTwoNodes(t *testing.T) {
	// Node A ingests and proxies; node B runs the analysis under the
	// proxy span's ref.
	a := NewTraceCtx("ingest", TraceContext{}, "node-a")
	proxy := a.Root().Child("proxy")
	tc := a.Context(proxy)
	proxy.End()

	b := NewTraceCtx("analysis", tc, "node-b")
	b.Root().Child("search").End()

	fa, fb := a.Finish(), b.Finish()
	if fb.TraceID != fa.TraceID || fb.ParentRef != proxy.Ref() {
		t.Fatalf("child fragment identity wrong: %s/%s", fb.TraceID, fb.ParentRef)
	}

	st := Stitch([]*TraceData{fa, fb})
	if st.TraceID != fa.TraceID {
		t.Fatalf("stitched trace ID = %q, want %q", st.TraceID, fa.TraceID)
	}
	if len(st.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(st.Spans))
	}
	if got := st.Nodes(); len(got) != 2 || got[0] != "node-a" || got[1] != "node-b" {
		t.Fatalf("Nodes() = %v", got)
	}
	// The analysis root must be parented under node A's proxy span.
	anal := st.ByName("analysis")
	if len(anal) != 1 {
		t.Fatalf("analysis spans: %d", len(anal))
	}
	proxySpans := st.ByName("proxy")
	if anal[0].Parent != proxySpans[0].ID {
		t.Fatalf("analysis parent = %d, want proxy %d", anal[0].Parent, proxySpans[0].ID)
	}
	if anal[0].StartUS < proxySpans[0].StartUS {
		t.Fatal("child fragment not rebased onto parent span start")
	}
	// Summary and Chrome export must work on the stitched tree, with
	// parents preceding children.
	sum := st.Summary()
	if !strings.Contains(sum, "node=node-b") {
		t.Fatalf("summary lacks node tags:\n%s", sum)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(st.ChromeTrace(), &chrome); err != nil {
		t.Fatalf("stitched chrome trace: %v", err)
	}
	if len(chrome.TraceEvents) != 4 {
		t.Fatalf("chrome events: %d", len(chrome.TraceEvents))
	}
}

func TestStitchOrphanAndSummaryDepth(t *testing.T) {
	a := NewTraceCtx("ingest", TraceContext{}, "a")
	af := a.Finish()
	// A repair pull recorded with no request context: same job, no
	// trace linkage.
	orphan := NewTraceCtx("repair-pull", TraceContext{TraceID: af.TraceID}, "c")
	of := orphan.Finish()
	st := Stitch([]*TraceData{af, of})
	if len(st.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(st.Spans))
	}
	if st.Spans[1].Parent != st.Spans[0].ID {
		t.Fatalf("orphan parent = %d, want root %d", st.Spans[1].Parent, st.Spans[0].ID)
	}
	lines := strings.Split(strings.TrimRight(st.Summary(), "\n"), "\n")
	if !strings.HasPrefix(lines[1], "  repair-pull") {
		t.Fatalf("orphan not indented under root:\n%s", st.Summary())
	}
}

func TestStitchNilAndEmpty(t *testing.T) {
	if Stitch(nil) != nil {
		t.Fatal("Stitch(nil) should be nil")
	}
	if Stitch([]*TraceData{nil, {}}) != nil {
		t.Fatal("Stitch of empty fragments should be nil")
	}
	one := NewTraceCtx("r", TraceContext{}, "n").Finish()
	st := Stitch([]*TraceData{one})
	if len(st.Spans) != 1 || st.Spans[0].Node != "n" {
		t.Fatalf("single-fragment stitch: %+v", st.Spans)
	}
}

func TestMergeMismatchedBuckets(t *testing.T) {
	h := &HistData{Bounds: []float64{0.1, 1, 10}, Counts: []uint64{0, 0, 0, 0}}
	o := &HistData{Bounds: []float64{0.05, 0.5, 5, 50}, Counts: []uint64{1, 2, 3, 4, 5}, Sum: 100, Count: 15}
	h.Merge(o)
	// 0.05 -> le 0.1; 0.5 -> le 1; 5 -> le 10; 50 -> +Inf; o's +Inf -> +Inf.
	want := []uint64{1, 2, 3, 9}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Sum != 100 || h.Count != 15 {
		t.Fatalf("sum/count = %g/%d", h.Sum, h.Count)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		fr.Record(FlightEvent{Kind: "span", Msg: string(rune('a' + i))})
	}
	evs, dropped := fr.Snapshot()
	if len(evs) != 4 || dropped != 2 {
		t.Fatalf("got %d events dropped %d, want 4/2", len(evs), dropped)
	}
	if evs[0].Msg != "c" || evs[3].Msg != "f" {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	var b bytes.Buffer
	fr.Dump(&b, "test")
	if !strings.Contains(b.String(), "flight recorder dump (test): 4 events, 2 evicted") {
		t.Fatalf("dump header:\n%s", b.String())
	}
	var nilFR *FlightRecorder
	nilFR.Record(FlightEvent{})
	nilFR.Eventf("x", "y")
	nilFR.Dump(&b, "nil")
	if evs, _ := nilFR.Snapshot(); evs != nil {
		t.Fatal("nil recorder returned events")
	}
}

func TestFragRingEviction(t *testing.T) {
	r := NewFragRing(2)
	td := func(n string) *TraceData { return &TraceData{Node: n, Spans: []SpanData{{Name: "x"}}} }
	r.Add("j1", td("a"))
	r.Add("j2", td("a"))
	r.Add("j1", td("b"))
	r.Add("j3", td("a")) // evicts j1 (oldest)
	if got := r.Get("j1"); got != nil {
		t.Fatalf("j1 should be evicted, got %d frags", len(got))
	}
	if got := r.Get("j2"); len(got) != 1 {
		t.Fatalf("j2 frags = %d", len(got))
	}
	var nilRing *FragRing
	nilRing.Add("x", td("a"))
	if nilRing.Get("x") != nil {
		t.Fatal("nil ring returned fragments")
	}
}

func TestLoggerTeeAndFormats(t *testing.T) {
	fr := NewFlightRecorder(8)
	var buf bytes.Buffer
	l, err := NewLogger("json", &buf, "n1", fr)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("quiet", "job_id", "j1")
	l.Warn("slow analysis", "trace_id", "t1", "job_id", "j1", "program", "p")
	var rec map[string]any
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if rec["node"] != "n1" || rec["trace_id"] != "t1" || rec["program"] != "p" {
		t.Fatalf("log record missing fields: %v", rec)
	}
	evs, _ := fr.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("flight recorder got %d events, want 1 (warn only)", len(evs))
	}
	if evs[0].Kind != "log" || evs[0].TraceID != "t1" || evs[0].JobID != "j1" || evs[0].Attrs["program"] != "p" {
		t.Fatalf("tee event: %+v", evs[0])
	}
	if _, err := NewLogger("xml", &buf, "", nil); err == nil {
		t.Fatal("bad format accepted")
	}
	if l, err := NewLogger("text", &buf, "n", nil); err != nil || l == nil {
		t.Fatalf("text logger: %v", err)
	}
}

func TestRuntimeMetricsSnapshot(t *testing.T) {
	start := time.Now().Add(-2 * time.Second)
	snap := RuntimeMetrics(start)
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if g := byName["resd_goroutines"]; g.Type != "gauge" || g.Value < 1 {
		t.Fatalf("goroutines: %+v", g)
	}
	if g := byName["resd_heap_bytes"]; g.Type != "gauge" || g.Value <= 0 {
		t.Fatalf("heap bytes: %+v", g)
	}
	if c := byName["resd_gc_pause_seconds_total"]; c.Type != "counter" || c.Value < 0 {
		t.Fatalf("gc pause: %+v", c)
	}
	if g := byName["resd_uptime_seconds"]; g.Type != "gauge" || g.Value < 2 {
		t.Fatalf("uptime: %+v", g)
	}
	var b strings.Builder
	WriteProm(&b, snap)
	if !strings.Contains(b.String(), "resd_goroutines") {
		t.Fatal("prom render missing runtime gauges")
	}
}

func TestLogFormatSlogLevels(t *testing.T) {
	var buf bytes.Buffer
	l, _ := NewLogger("text", &buf, "", nil)
	l.Log(nil, slog.LevelDebug, "hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked: %s", buf.String())
	}
}

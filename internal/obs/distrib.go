package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
)

// TraceparentHeader is the HTTP header carrying trace context between
// nodes, in the W3C Trace Context wire form:
//
//	00-<32-hex trace id>-<16-hex parent span ref>-01
//
// The parent field carries a Span.Ref, so the receiving node's fragment
// knows exactly which remote span to hang under when stitched.
const TraceparentHeader = "Traceparent"

// TraceContext identifies a request's distributed trace: the trace ID
// shared by every fragment, and the Ref of the span the next fragment
// should parent under. The zero value means "no trace context" — a
// fragment built from it mints a fresh trace ID and becomes a root.
type TraceContext struct {
	TraceID   string
	ParentRef string
}

// NewTraceID mints a random 32-hex trace ID.
func NewTraceID() string { return randHex(32) }

func randHex(n int) string {
	b := make([]byte, (n+1)/2)
	rand.Read(b)
	return hex.EncodeToString(b)[:n]
}

// Traceparent renders the context as a traceparent header value. Empty
// when there is no trace ID, so callers can set the header
// unconditionally.
func (tc TraceContext) Traceparent() string {
	if tc.TraceID == "" {
		return ""
	}
	ref := tc.ParentRef
	if ref == "" {
		ref = "0000000000000000"
	}
	return "00-" + tc.TraceID + "-" + ref + "-01"
}

// ParseTraceparent extracts trace context from a traceparent header
// value. Malformed or absent values yield the zero context — the edge
// then mints a fresh trace instead of failing the request.
func ParseTraceparent(v string) TraceContext {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return TraceContext{}
	}
	if !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return TraceContext{}
	}
	tc := TraceContext{TraceID: parts[1]}
	if parts[2] != "0000000000000000" {
		tc.ParentRef = parts[2]
	}
	return tc
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Stitch merges per-node trace fragments of one request into a single
// tree. A fragment whose ParentRef matches a Ref in another fragment is
// grafted under that span, with its clock rebased so it nests inside
// the parent span (node clocks are not synchronized; nesting at the
// parent's start is the honest approximation). Fragments whose parent
// cannot be resolved — the ingest root, or orphans such as repair
// pulls recorded without request context — are unified into one tree:
// the unresolvable fragment with the largest resolvable subtree (ties
// broken by list order) becomes the root, and the rest graft under it.
// The ingest-edge fragment carries the whole request chain, so it wins
// the root no matter where it sits in the list.
func Stitch(frags []*TraceData) *TraceData {
	var fs []*TraceData
	for _, f := range frags {
		if f != nil && len(f.Spans) > 0 {
			fs = append(fs, f)
		}
	}
	if len(fs) == 0 {
		return nil
	}

	// Resolve each fragment's parent: ref -> fragment/span location.
	type loc struct{ frag, span int }
	refs := make(map[string]loc)
	for i, f := range fs {
		for j, s := range f.Spans {
			if s.Ref != "" {
				refs[s.Ref] = loc{i, j}
			}
		}
	}
	parent := make([]loc, len(fs)) // frag == -1 when unresolved
	children := make([][]int, len(fs))
	var roots []int
	for i, f := range fs {
		parent[i] = loc{frag: -1}
		if l, ok := refs[f.ParentRef]; ok && f.ParentRef != "" && l.frag != i {
			parent[i] = l
			children[l.frag] = append(children[l.frag], i)
		} else {
			roots = append(roots, i)
		}
	}
	// Root election: the unresolvable fragment that carries the biggest
	// subtree. A lone orphan (a repair pull, a read-through) can then
	// never displace the ingest edge as the stitched tree's root.
	var weigh func(i int, seen []bool) int
	weigh = func(i int, seen []bool) int {
		if seen[i] {
			return 0
		}
		seen[i] = true
		total := 1
		for _, c := range children[i] {
			total += weigh(c, seen)
		}
		return total
	}
	best := 0
	for idx, r := range roots {
		if w := weigh(r, make([]bool, len(fs))); w > best {
			best = w
			roots[0], roots[idx] = roots[idx], roots[0]
		}
	}

	out := &TraceData{}
	for _, f := range fs {
		if f.TraceID != "" {
			out.TraceID = f.TraceID
			break
		}
	}

	// Walk fragments depth-first from the first root so parents are
	// always emitted before children; remaining roots (orphans) graft
	// under the first root's root span.
	offset := make([]int, len(fs))   // fragment -> global ID base
	rebase := make([]int64, len(fs)) // fragment -> StartUS shift
	emitted := make([]bool, len(fs))
	var emit func(i int)
	emit = func(i int) {
		if emitted[i] {
			return
		}
		emitted[i] = true
		f := fs[i]
		offset[i] = len(out.Spans)
		parentID := -1
		if p := parent[i]; p.frag >= 0 {
			parentID = offset[p.frag] + p.span
			rebase[i] = out.Spans[parentID].StartUS
		}
		for _, s := range f.Spans {
			s.ID += offset[i]
			if s.Parent >= 0 {
				s.Parent += offset[i]
			} else {
				s.Parent = parentID
			}
			s.StartUS += rebase[i]
			if s.Node == "" {
				s.Node = f.Node
			}
			out.Spans = append(out.Spans, s)
		}
		// Child fragments emit in the order the caller supplied, so the
		// stitched tree is deterministic for a given fragment list.
		for _, c := range children[i] {
			emit(c)
		}
	}
	emit(roots[0])
	for _, r := range roots[1:] {
		parent[r] = loc{frag: roots[0], span: 0}
		emit(r)
	}
	// Any fragments reachable only through an orphan cycle (ParentRef
	// loops) still need emitting.
	for i := range fs {
		if !emitted[i] {
			parent[i] = loc{frag: roots[0], span: 0}
			emit(i)
		}
	}
	return out
}

// Nodes returns the distinct node names appearing in the trace, sorted.
func (td *TraceData) Nodes() []string {
	if td == nil {
		return nil
	}
	set := map[string]bool{}
	for _, s := range td.Spans {
		if s.Node != "" {
			set[s.Node] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package checkpoint

import (
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/solver"
	"res/internal/symx"
)

// Anchor describes how an analysis was anchored: the checkpoint's step,
// the suffix depth it pins (dump steps minus checkpoint step), and
// whether forward replay verified that the failure reproduces from it.
type Anchor struct {
	Step     uint64
	Depth    int
	Verified bool
}

// NewAnchor derives the anchor descriptor for a checkpoint of a dump
// with dumpSteps executed blocks.
func NewAnchor(ck *Checkpoint, dumpSteps uint64, verified bool) Anchor {
	return Anchor{Step: ck.Step, Depth: int(dumpSteps - ck.Step), Verified: verified}
}

// Pruner compiles the checkpoint into a backward-search anchor: a node
// at suffix depth equal to the anchor depth holds the symbolic machine
// state before the checkpointed block ran, so it must equal the
// checkpoint — structurally (thread set, PCs) without solver work, and
// via register/memory equality constraints discharged through the
// child's incremental solver session, exactly like dump state. Wrong
// histories die at the anchor; the true one survives with its pre-image
// pinned to recorded fact. Searches using the pruner should also bound
// MaxDepth to the anchor depth — beyond it the state is known, so deeper
// unwinding only re-derives the recording.
func (a Anchor) Pruner(ck *Checkpoint) core.Pruner {
	return anchorPruner{ck: ck, depth: a.Depth}
}

type anchorPruner struct {
	ck    *Checkpoint
	depth int
}

// Filter does structural vetting only in Constrain (the candidate's
// (tid, block) alone cannot contradict a full-state anchor).
func (anchorPruner) Filter(int, core.StepInfo) (bool, bool) { return true, false }

func (a anchorPruner) Constrain(_ int, s core.StepInfo, c *core.Child) (int, bool, bool) {
	if s.ChildDepth != a.depth {
		return 0, false, true
	}
	// Structural check: the snapshot's thread set at the anchor depth
	// must be exactly the threads alive at the checkpoint, each at the
	// checkpoint's PC. Scheduling states are compared loosely: Blocked
	// vs Runnable differ only by an uncounted lock-park transition the
	// backward search does not model.
	ids := c.Snap.ThreadIDs()
	if len(ids) != len(a.ck.Threads) {
		return 0, false, false
	}
	for _, id := range ids {
		if id < 0 || id >= len(a.ck.Threads) {
			return 0, false, false
		}
		want := a.ck.Threads[id]
		ts := c.Snap.Thread(id)
		if ts == nil || ts.PC != want.PC {
			return 0, false, false
		}
		if (ts.State == coredump.ThreadExited) != (want.State == coredump.ThreadExited) {
			return 0, false, false
		}
	}
	// State equality, discharged through the solver: all registers of
	// every thread, and every memory word the suffix reasoned about.
	var cons []solver.Constraint
	for _, id := range ids {
		want := a.ck.Threads[id]
		ts := c.Snap.Thread(id)
		for reg := 0; reg < isa.NumRegs; reg++ {
			cons = append(cons, solver.Eq(ts.Regs[reg], symx.Const(want.Regs[reg])))
		}
	}
	c.Snap.ForEachMem(func(addr uint32, _ *symx.Expr) {
		if a.ck.Mem.InRange(addr) {
			cons = append(cons, solver.Eq(c.Snap.MemAt(addr), symx.Const(a.ck.Mem.Load(addr))))
		}
	})
	c.Snap.AddCons(cons...)
	return 0, true, true
}

package checkpoint_test

import (
	"bytes"
	"testing"

	"res/internal/checkpoint"
	"res/internal/workload"
)

// FuzzCheckpointDecode hardens the wire decoder: arbitrary bytes must
// never panic, and anything that decodes must be canonical — re-encoding
// reproduces the input byte for byte, and the fingerprint is stable.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RESCKPT1"))
	f.Add([]byte("RESDUMP1 not a checkpoint"))
	for _, bug := range []*workload.Bug{
		workload.LongPrefix(120),
		workload.RaceCounter(),
	} {
		if d, ring, _, err := bug.FindFailureCheckpointed(16, checkpoint.Config{Every: 8}); err == nil && d != nil {
			f.Add(ring.Encode())
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := checkpoint.Decode(data)
		if err != nil {
			return
		}
		if r == nil {
			if len(data) != 0 {
				t.Fatalf("nil ring decoded from %d non-empty bytes without error", len(data))
			}
			return
		}
		enc := r.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode∘encode is not the identity: %d bytes in, %d out", len(data), len(enc))
		}
		if fp := r.Fingerprint(); fp == "" {
			t.Fatal("decoded non-empty ring has empty fingerprint")
		}
		r2, err := checkpoint.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if r2.Fingerprint() != r.Fingerprint() {
			t.Fatal("fingerprint unstable across round trips")
		}
	})
}

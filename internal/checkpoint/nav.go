package checkpoint

import (
	"fmt"

	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/vm"
)

// Nav is timestamp-based execution control over a recorded run: "go to
// step T" restores the nearest preceding checkpoint and deterministically
// replays the remainder, the navigation model of the Timestamp-Based
// Execution Control line of work. resdbg's goto command wraps it.
type Nav struct {
	p    *prog.Program
	ring *Ring
	d    *coredump.Dump
}

// NewNav creates a navigator for a dump and its recorded ring.
func NewNav(p *prog.Program, ring *Ring, d *coredump.Dump) (*Nav, error) {
	if ring.Empty() || len(ring.Checkpoints) == 0 {
		return nil, fmt.Errorf("checkpoint: no checkpoints recorded")
	}
	if ring.End() != d.Steps {
		return nil, fmt.Errorf("checkpoint: ring covers %d steps, dump has %d", ring.End(), d.Steps)
	}
	return &Nav{p: p, ring: ring, d: d}, nil
}

// Steps returns the execution's total step count.
func (n *Nav) Steps() uint64 { return n.d.Steps }

// Goto materializes the machine exactly as it was when step blocks had
// executed: it restores the newest checkpoint at or before the target
// and replays the recorded schedule for the remainder. step == Steps()
// lands on the failure state (the final, faulting block replayed). The
// returned fault is non-nil only there. Targets beyond the end of the
// execution, or before the reach of the checkpoint ring's schedule
// window, are errors.
func (n *Nav) Goto(step uint64) (*vm.VM, *Checkpoint, *coredump.Fault, error) {
	if step > n.d.Steps {
		return nil, nil, nil, fmt.Errorf("step %d is beyond the end of the execution (%d steps)", step, n.d.Steps)
	}
	ck := n.ring.Latest(step)
	if ck == nil {
		return nil, nil, nil, fmt.Errorf("no checkpoint at or before step %d", step)
	}
	if !n.ring.Covered(ck.Step, step) {
		return nil, nil, nil, fmt.Errorf("step %d is outside the checkpoint schedule window [%d,%d)", step, n.ring.LogBase, n.ring.End())
	}
	v, f, err := n.ring.Resume(n.p, ck, step)
	if err != nil {
		return nil, nil, nil, err
	}
	return v, ck, f, nil
}

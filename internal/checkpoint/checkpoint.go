// Package checkpoint implements the checkpoint ring that bounds RES's
// backward search by time instead of execution length. A production run
// periodically captures its complete machine state (every K block-steps,
// stamped with the VM's step counter) into a bounded ring with
// exponential thinning, alongside a sliding window of the schedule and
// input log. On a failure the ring ships as a named attachment of the
// coredump container; the analyzer then replays forward from candidate
// checkpoints (FReD-style bisection) to find the latest one that still
// reproduces the failure and anchors the backward search at that
// checkpoint's state, so the synthesized suffix is bounded by the
// checkpoint interval regardless of how long the execution ran before
// failing — the paper's "arbitrarily long executions" made concrete.
package checkpoint

import (
	"fmt"
	"sort"

	"res/internal/coredump"
	"res/internal/mem"
	"res/internal/prog"
	"res/internal/vm"
)

// Checkpoint is one captured machine state: the complete resumable state
// before the execution's Step-th block ran (Step blocks had executed).
type Checkpoint struct {
	// Step is the VM step counter at capture time: the number of basic
	// blocks executed before this state.
	Step uint64
	// Mem is the full memory image (sparse on the wire).
	Mem *mem.Image
	// Threads are the live threads, dense by ID in spawn order.
	Threads []vm.Thread
	// Locks maps held mutex addresses to owning thread IDs.
	Locks map[uint32]int
	// Heap is the allocator record list.
	Heap []coredump.HeapObject
	// HeapNext is the bump-allocator frontier.
	HeapNext uint32
}

// State lowers the checkpoint to the VM's resume form.
func (c *Checkpoint) State() vm.State {
	return vm.State{
		Mem:      c.Mem,
		Threads:  c.Threads,
		Locks:    c.Locks,
		Heap:     c.Heap,
		HeapNext: c.HeapNext,
	}
}

// SchedRec is one executed block-step: thread Tid ran block Block. Its
// step index is implicit (Ring.LogBase + position).
type SchedRec struct {
	Tid, Block int
}

// InputRec is one consumed external input, stamped with the step index
// of the block that consumed it.
type InputRec struct {
	Step           uint64
	Channel, Value int64
}

// Ring is the recorded artifact: the surviving checkpoints plus the
// sliding schedule/input window that makes the recent ones concretely
// replayable. The window always covers at least the span from the newest
// checkpoint to the end of execution (the recorder trims it only against
// LogWindow, which is sized above the thinned interval), so the latest
// checkpoint can be verified by forward replay; older checkpoints may
// fall outside the window and then anchor the backward search
// symbolically only.
type Ring struct {
	// Interval is the checkpoint spacing in block-steps (doubled by each
	// thinning pass).
	Interval uint64
	// Checkpoints are sorted by strictly increasing Step. The step-0
	// checkpoint (the initial state) is always retained.
	Checkpoints []*Checkpoint
	// LogBase is the step index of Sched[0].
	LogBase uint64
	// Sched is the schedule window: Sched[i] is the step LogBase+i.
	Sched []SchedRec
	// Inputs are the input records with Step >= LogBase, in consumption
	// order.
	Inputs []InputRec
}

// Empty reports whether the ring records nothing.
func (r *Ring) Empty() bool {
	return r == nil || (len(r.Checkpoints) == 0 && len(r.Sched) == 0 && len(r.Inputs) == 0)
}

// End is the step index just past the schedule window.
func (r *Ring) End() uint64 { return r.LogBase + uint64(len(r.Sched)) }

// Covered reports whether the window contains the full schedule from
// step (inclusive) to until (exclusive), i.e. whether a checkpoint at
// step can be concretely replayed up to until.
func (r *Ring) Covered(step, until uint64) bool {
	return step >= r.LogBase && until <= r.End() && step <= until
}

// Latest returns the newest checkpoint with Step <= step, or nil.
func (r *Ring) Latest(step uint64) *Checkpoint {
	i := sort.Search(len(r.Checkpoints), func(i int) bool {
		return r.Checkpoints[i].Step > step
	})
	if i == 0 {
		return nil
	}
	return r.Checkpoints[i-1]
}

// Candidates returns the checkpoints usable as backward-search anchors
// for a dump with the given step count: anchoring needs suffix depth
// >= 2 (depth 1 is pinned by the dump itself), so only checkpoints at
// least two steps before the failure qualify.
func (r *Ring) Candidates(dumpSteps uint64) []*Checkpoint {
	var out []*Checkpoint
	for _, c := range r.Checkpoints {
		if c.Step+2 <= dumpSteps {
			out = append(out, c)
		}
	}
	return out
}

// validate enforces the structural invariants shared by the recorder and
// the wire decoder.
func (r *Ring) validate(memSize uint32) error {
	var prev *Checkpoint
	for i, c := range r.Checkpoints {
		if prev != nil && c.Step <= prev.Step {
			return fmt.Errorf("checkpoint %d: steps not strictly increasing", i)
		}
		if c.Mem == nil || c.Mem.Size() != memSize {
			return fmt.Errorf("checkpoint %d: bad memory image", i)
		}
		if len(c.Threads) == 0 {
			return fmt.Errorf("checkpoint %d: no threads", i)
		}
		for id, t := range c.Threads {
			if t.ID != id {
				return fmt.Errorf("checkpoint %d: thread ids not dense", i)
			}
		}
		prev = c
	}
	for i, in := range r.Inputs {
		if in.Step < r.LogBase {
			return fmt.Errorf("input %d: step below log base", i)
		}
		if in.Step >= r.End() {
			return fmt.Errorf("input %d: step beyond schedule window", i)
		}
		if i > 0 && in.Step < r.Inputs[i-1].Step {
			return fmt.Errorf("input %d: steps not sorted", i)
		}
	}
	return nil
}

// Config tunes the recorder.
type Config struct {
	// Every is the checkpoint interval in block-steps. 0 = default (256).
	Every uint64
	// Cap bounds the number of retained checkpoints; exceeding it thins
	// the ring (drop every second, double the interval). 0 = default
	// (64). Minimum effective value is 4.
	Cap int
	// LogWindow bounds the schedule/input window length in steps. 0 =
	// default (32768). The window should comfortably exceed the thinned
	// interval or the newest checkpoints lose concrete replayability.
	LogWindow int
}

func (c Config) every() uint64 {
	if c.Every == 0 {
		return 256
	}
	return c.Every
}

func (c Config) cap() int {
	switch {
	case c.Cap == 0:
		return 64
	case c.Cap < 4:
		return 4
	}
	return c.Cap
}

func (c Config) logWindow() int {
	if c.LogWindow == 0 {
		return 32768
	}
	return c.LogWindow
}

// Recorder collects a checkpoint ring from a live VM run: install
// rec.Hooks() in the RunConfig, Bind the VM before running, then call
// Ring() after the run.
type Recorder struct {
	p   *prog.Program
	cfg Config
	v   *vm.VM

	interval uint64
	nextAt   uint64
	steps    uint64
	cks      []*Checkpoint

	logBase uint64
	sched   []SchedRec
	inputs  []InputRec
}

// NewRecorder creates a recorder for runs of p.
func NewRecorder(p *prog.Program, cfg Config) *Recorder {
	return &Recorder{p: p, cfg: cfg, interval: cfg.every()}
}

// Bind attaches the recorder to the VM whose run it observes. Without a
// bound VM the hooks still log the schedule and inputs but capture no
// state checkpoints.
func (r *Recorder) Bind(v *vm.VM) { r.v = v }

// Hooks returns the VM hooks that drive the recorder. Merge them with
// any other hook set via vm.MergeHooks.
func (r *Recorder) Hooks() vm.Hooks {
	return vm.Hooks{
		OnBlockStart: r.onBlockStart,
		OnInput:      r.onInput,
	}
}

func (r *Recorder) onBlockStart(tid, block int) {
	// OnBlockStart fires after the VM counted the step but before the
	// block's instructions ran, so the observable state is the machine
	// before step idx — exactly a resumable boundary.
	idx := r.steps
	r.steps++
	if r.v != nil && idx >= r.nextAt {
		st := r.v.CaptureState()
		r.cks = append(r.cks, &Checkpoint{
			Step:     idx,
			Mem:      st.Mem,
			Threads:  st.Threads,
			Locks:    st.Locks,
			Heap:     st.Heap,
			HeapNext: st.HeapNext,
		})
		r.nextAt = idx + r.interval
		r.thin()
	}
	r.sched = append(r.sched, SchedRec{Tid: tid, Block: block})
	if w := r.cfg.logWindow(); len(r.sched) > w {
		drop := len(r.sched) - w
		r.sched = append(r.sched[:0:0], r.sched[drop:]...)
		r.logBase += uint64(drop)
		i := 0
		for i < len(r.inputs) && r.inputs[i].Step < r.logBase {
			i++
		}
		r.inputs = append(r.inputs[:0:0], r.inputs[i:]...)
	}
}

func (r *Recorder) onInput(_ int, channel, value int64) {
	// The consuming block is the one whose OnBlockStart just fired:
	// step index r.steps-1.
	r.inputs = append(r.inputs, InputRec{Step: r.steps - 1, Channel: channel, Value: value})
}

// thin halves the ring once it exceeds the cap: the step-0 checkpoint
// and the newest checkpoint always survive (the first is the fallback
// full-reconstruction anchor, the second is the one bisection wants);
// every second checkpoint between them is dropped and the interval
// doubles, so retained state stays O(cap) while coverage stays
// logarithmically spaced over the whole execution.
func (r *Recorder) thin() {
	if len(r.cks) <= r.cfg.cap() {
		return
	}
	kept := r.cks[:1:1]
	for i := 2; i < len(r.cks)-1; i += 2 {
		kept = append(kept, r.cks[i])
	}
	kept = append(kept, r.cks[len(r.cks)-1])
	r.cks = kept
	r.interval *= 2
	r.nextAt = r.cks[len(r.cks)-1].Step + r.interval
}

// Ring snapshots the recorded artifact. The returned ring shares the
// checkpoints' backing state with the recorder; record one run per
// recorder.
func (r *Recorder) Ring() *Ring {
	return &Ring{
		Interval:    r.interval,
		Checkpoints: r.cks,
		LogBase:     r.logBase,
		Sched:       append([]SchedRec(nil), r.sched...),
		Inputs:      append([]InputRec(nil), r.inputs...),
	}
}

package checkpoint_test

import (
	"bytes"
	"testing"

	"res/internal/checkpoint"
	"res/internal/coredump"
	"res/internal/vm"
	"res/internal/workload"
)

// record produces a failing dump plus its checkpoint ring.
func record(t *testing.T, bug *workload.Bug, cfg checkpoint.Config) (*coredump.Dump, *checkpoint.Ring) {
	t.Helper()
	d, ring, _, err := bug.FindFailureCheckpointed(16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Empty() {
		t.Fatal("recorder produced an empty ring")
	}
	return d, ring
}

func TestWireRoundTrip(t *testing.T) {
	bug := workload.LongPrefix(200)
	_, ring := record(t, bug, checkpoint.Config{Every: 16})
	b := ring.Encode()
	if len(b) == 0 {
		t.Fatal("non-empty ring encoded to nothing")
	}
	dec, err := checkpoint.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2 := dec.Encode()
	if !bytes.Equal(b, b2) {
		t.Fatal("decode∘encode is not a fixed point")
	}
	if ring.Fingerprint() != dec.Fingerprint() {
		t.Fatal("fingerprint not stable across a round trip")
	}
	if dec.Interval != ring.Interval || len(dec.Checkpoints) != len(ring.Checkpoints) {
		t.Fatalf("round trip changed shape: interval %d->%d, %d->%d checkpoints",
			ring.Interval, dec.Interval, len(ring.Checkpoints), len(dec.Checkpoints))
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	cases := [][]byte{
		[]byte("RESCKPT9"),
		[]byte("RESCKPT1"),
		[]byte("RESCKPT1\x00"),
		append([]byte("RESCKPT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for i, c := range cases {
		if _, err := checkpoint.Decode(c); err == nil {
			t.Fatalf("case %d: junk decoded without error", i)
		}
	}
	if r, err := checkpoint.Decode(nil); r != nil || err != nil {
		t.Fatal("empty input must decode to a nil ring")
	}
}

func TestVerifyAndBisect(t *testing.T) {
	for _, tc := range []struct {
		bug *workload.Bug
		cfg checkpoint.Config
	}{
		{workload.LongPrefix(300), checkpoint.Config{Every: 16}},
		{workload.RaceCounter(), checkpoint.Config{Every: 8}},
		{workload.DeadlockBug(), checkpoint.Config{Every: 4}},
	} {
		t.Run(tc.bug.Name, func(t *testing.T) {
			d, ring := record(t, tc.bug, tc.cfg)
			p := tc.bug.Program()
			cands := ring.Candidates(d.Steps)
			if len(cands) == 0 {
				t.Skip("execution too short for an anchor candidate")
			}
			for _, ck := range cands {
				if ring.Covered(ck.Step, d.Steps) && !ring.Verify(p, ck, d) {
					t.Fatalf("genuine checkpoint at step %d failed verification", ck.Step)
				}
			}
			ck, verified := ring.Bisect(p, d)
			if ck == nil {
				t.Fatal("bisect found no anchor")
			}
			if !verified {
				t.Fatal("bisect could not verify any checkpoint of a fully covered run")
			}
			if want := cands[len(cands)-1]; ck.Step != want.Step {
				t.Fatalf("bisect stopped at step %d, latest verifiable candidate is %d", ck.Step, want.Step)
			}
		})
	}
}

func TestThinningBoundsRing(t *testing.T) {
	bug := workload.LongPrefix(3000)
	d, ring := record(t, bug, checkpoint.Config{Every: 4, Cap: 8})
	if len(ring.Checkpoints) > 9 {
		t.Fatalf("ring grew to %d checkpoints past its cap", len(ring.Checkpoints))
	}
	if ring.Interval <= 4 {
		t.Fatalf("thinning did not raise the interval (still %d)", ring.Interval)
	}
	if ring.Checkpoints[0].Step != 0 {
		t.Fatal("thinning dropped the step-0 checkpoint")
	}
	latest := ring.Checkpoints[len(ring.Checkpoints)-1]
	if d.Steps-latest.Step > ring.Interval {
		t.Fatalf("newest checkpoint is %d steps before the failure, interval is %d",
			d.Steps-latest.Step, ring.Interval)
	}
	if !ring.Verify(bug.Program(), latest, d) {
		t.Fatal("newest checkpoint of a thinned ring failed verification")
	}
}

// TestNavGoto exercises timestamp navigation: landing exactly on a
// checkpoint, landing between checkpoints (checkpoint restore + replay
// remainder), and the past-end error.
func TestNavGoto(t *testing.T) {
	bug := workload.LongPrefix(300)
	d, ring := record(t, bug, checkpoint.Config{Every: 16})
	p := bug.Program()
	nav, err := checkpoint.NewNav(p, ring, d)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: re-run the same deterministic execution and capture
	// the true state at each probed step.
	probe := map[uint64]vm.State{}
	var targets []uint64
	if len(ring.Checkpoints) < 2 {
		t.Fatal("need at least two checkpoints")
	}
	exact := ring.Checkpoints[1].Step
	between := ring.Checkpoints[1].Step + ring.Interval/2
	targets = append(targets, exact, between, d.Steps-1)
	var gv *vm.VM
	var steps uint64
	cfg := bug.Configs[0]
	cfg.Hooks = vm.Hooks{OnBlockStart: func(int, int) {
		for _, want := range targets {
			if steps == want {
				probe[want] = gv.CaptureState()
			}
		}
		steps++
	}}
	gv, err = vm.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gv.Run(); err != nil {
		t.Fatal(err)
	}

	for _, target := range targets {
		v, ck, fault, err := nav.Goto(target)
		if err != nil {
			t.Fatalf("goto %d: %v", target, err)
		}
		if fault != nil {
			t.Fatalf("goto %d: unexpected fault %v", target, fault)
		}
		if ck.Step > target {
			t.Fatalf("goto %d restored a later checkpoint (step %d)", target, ck.Step)
		}
		want, ok := probe[target]
		if !ok {
			t.Fatalf("ground-truth run never reached step %d", target)
		}
		if diff := v.Mem.Diff(want.Mem); len(diff) != 0 {
			t.Fatalf("goto %d: memory differs from ground truth at %d addresses", target, len(diff))
		}
		for _, wt := range want.Threads {
			gt := v.Thread(wt.ID)
			if gt == nil || gt.PC != wt.PC || gt.Regs != wt.Regs {
				t.Fatalf("goto %d: thread %d state differs from ground truth", target, wt.ID)
			}
		}
	}

	// The failure state itself.
	v, _, fault, err := nav.Goto(d.Steps)
	if err != nil {
		t.Fatal(err)
	}
	if fault == nil || fault.Kind != d.Fault.Kind {
		t.Fatalf("goto end: fault %v, dump has %v", fault, d.Fault)
	}
	if diff := v.Mem.Diff(d.Mem); len(diff) != 0 {
		t.Fatal("goto end: memory differs from the dump")
	}

	// Past the end is an error.
	if _, _, _, err := nav.Goto(d.Steps + 1); err == nil {
		t.Fatal("goto past end of execution did not error")
	}
}

package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/vm"
)

// Wire form: "RESCKPT1" magic, then the ring in a canonical varint
// encoding — checkpoints sorted by strictly increasing step, locks by
// address, memory as sorted nonzero (addr, value) pairs against a shared
// image size. The canonical form is a decode∘encode fixed point: any
// bytes that decode re-encode to themselves, so the content fingerprint
// is well-defined on the wire bytes.
const wireMagic = "RESCKPT1"

// Decode hardening bounds. Generous against real rings, tight against
// allocation bombs.
const (
	maxCheckpoints = 1 << 12
	maxThreads     = 1 << 10
	maxLocks       = 1 << 16
	maxHeap        = 1 << 16
	maxMemPairs    = 1 << 22
	maxSchedRecs   = 1 << 20
	maxInputRecs   = 1 << 20
	maxMemSize     = 1 << 28
)

type encoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
		return 0
	}
	return v
}

// Encode renders the ring in canonical wire form. An empty ring encodes
// to nil.
func (r *Ring) Encode() []byte {
	if r.Empty() {
		return nil
	}
	e := &encoder{}
	e.buf.WriteString(wireMagic)
	e.uvarint(r.Interval)
	memSize := uint64(0)
	if len(r.Checkpoints) > 0 {
		memSize = uint64(r.Checkpoints[0].Mem.Size())
	}
	e.uvarint(memSize)
	e.uvarint(uint64(len(r.Checkpoints)))
	for _, c := range r.Checkpoints {
		e.uvarint(c.Step)
		e.uvarint(uint64(len(c.Threads)))
		for _, t := range c.Threads {
			for reg := 0; reg < isa.NumRegs; reg++ {
				e.varint(t.Regs[reg])
			}
			e.uvarint(uint64(t.PC))
			e.uvarint(uint64(t.State))
			e.uvarint(uint64(t.WaitAddr))
		}
		addrs := make([]uint32, 0, len(c.Locks))
		for a := range c.Locks {
			addrs = append(addrs, a)
		}
		for i := 1; i < len(addrs); i++ {
			for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
				addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
			}
		}
		e.uvarint(uint64(len(addrs)))
		for _, a := range addrs {
			e.uvarint(uint64(a))
			e.uvarint(uint64(c.Locks[a]))
		}
		e.uvarint(uint64(len(c.Heap)))
		for _, h := range c.Heap {
			e.uvarint(uint64(h.Base))
			e.uvarint(uint64(h.Size))
			e.varint(int64(h.AllocPC))
			e.varint(int64(h.FreePC))
			freed := uint64(0)
			if h.Freed {
				freed = 1
			}
			e.uvarint(freed)
		}
		e.uvarint(uint64(c.HeapNext))
		words := c.Mem.Words()
		pairs := 0
		for _, w := range words {
			if w != 0 {
				pairs++
			}
		}
		e.uvarint(uint64(pairs))
		for a, w := range words {
			if w != 0 {
				e.uvarint(uint64(a))
				e.varint(w)
			}
		}
	}
	e.uvarint(r.LogBase)
	e.uvarint(uint64(len(r.Sched)))
	for _, s := range r.Sched {
		e.varint(int64(s.Tid))
		e.varint(int64(s.Block))
	}
	e.uvarint(uint64(len(r.Inputs)))
	for _, in := range r.Inputs {
		e.uvarint(in.Step)
		e.varint(in.Channel)
		e.varint(in.Value)
	}
	return e.buf.Bytes()
}

// Decode parses wire-form checkpoint bytes. Empty input decodes to a nil
// ring (no checkpoints recorded).
func Decode(b []byte) (*Ring, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) < len(wireMagic) || string(b[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	d := &decoder{r: bytes.NewReader(b[len(wireMagic):])}
	r := &Ring{Interval: d.uvarint()}
	memSize := d.uvarint()
	if d.err == nil && memSize > maxMemSize {
		d.fail("unreasonable memory size %d", memSize)
	}
	if d.err == nil && r.Interval == 0 {
		d.fail("zero interval")
	}
	nCks := d.uvarint()
	if d.err == nil && nCks > maxCheckpoints {
		d.fail("unreasonable checkpoint count %d", nCks)
	}
	if d.err == nil && nCks == 0 && memSize != 0 {
		d.fail("memory size without checkpoints")
	}
	for i := uint64(0); i < nCks && d.err == nil; i++ {
		c := &Checkpoint{Step: d.uvarint(), Locks: map[uint32]int{}}
		nThreads := d.uvarint()
		if d.err == nil && (nThreads == 0 || nThreads > maxThreads) {
			d.fail("checkpoint %d: bad thread count %d", i, nThreads)
		}
		for id := uint64(0); id < nThreads && d.err == nil; id++ {
			t := vm.Thread{ID: int(id)}
			for reg := 0; reg < isa.NumRegs; reg++ {
				t.Regs[reg] = d.varint()
			}
			t.PC = int(d.uvarint())
			t.State = coredump.ThreadState(d.uvarint())
			t.WaitAddr = uint32(d.uvarint())
			c.Threads = append(c.Threads, t)
		}
		nLocks := d.uvarint()
		if d.err == nil && nLocks > maxLocks {
			d.fail("checkpoint %d: unreasonable lock count %d", i, nLocks)
		}
		prevAddr := int64(-1)
		for j := uint64(0); j < nLocks && d.err == nil; j++ {
			a := d.uvarint()
			owner := d.uvarint()
			if d.err != nil {
				break
			}
			if int64(a) <= prevAddr {
				d.fail("checkpoint %d: locks not sorted", i)
				break
			}
			if a > uint64(^uint32(0)) || owner >= nThreads {
				d.fail("checkpoint %d: bad lock record", i)
				break
			}
			prevAddr = int64(a)
			c.Locks[uint32(a)] = int(owner)
		}
		nHeap := d.uvarint()
		if d.err == nil && nHeap > maxHeap {
			d.fail("checkpoint %d: unreasonable heap count %d", i, nHeap)
		}
		for j := uint64(0); j < nHeap && d.err == nil; j++ {
			c.Heap = append(c.Heap, coredump.HeapObject{
				Base:    uint32(d.uvarint()),
				Size:    uint32(d.uvarint()),
				AllocPC: int(d.varint()),
				FreePC:  int(d.varint()),
				Freed:   d.uvarint() != 0,
			})
		}
		c.HeapNext = uint32(d.uvarint())
		nPairs := d.uvarint()
		if d.err == nil && (nPairs > maxMemPairs || nPairs > memSize) {
			d.fail("checkpoint %d: unreasonable memory pair count %d", i, nPairs)
		}
		if d.err == nil {
			c.Mem = mem.NewImage(uint32(memSize))
			prev := int64(-1)
			for j := uint64(0); j < nPairs && d.err == nil; j++ {
				a := d.uvarint()
				v := d.varint()
				if d.err != nil {
					break
				}
				if int64(a) <= prev || a >= memSize {
					d.fail("checkpoint %d: memory pairs not sorted or out of range", i)
					break
				}
				if v == 0 {
					d.fail("checkpoint %d: zero memory pair (not canonical)", i)
					break
				}
				prev = int64(a)
				c.Mem.Store(uint32(a), v)
			}
		}
		r.Checkpoints = append(r.Checkpoints, c)
	}
	r.LogBase = d.uvarint()
	nSched := d.uvarint()
	if d.err == nil && nSched > maxSchedRecs {
		d.fail("unreasonable schedule length %d", nSched)
	}
	for i := uint64(0); i < nSched && d.err == nil; i++ {
		tid := d.varint()
		block := d.varint()
		if d.err != nil {
			break
		}
		if tid < 0 || tid >= maxThreads || block < 0 {
			d.fail("schedule record %d: bad tid/block", i)
			break
		}
		r.Sched = append(r.Sched, SchedRec{Tid: int(tid), Block: int(block)})
	}
	nInputs := d.uvarint()
	if d.err == nil && nInputs > maxInputRecs {
		d.fail("unreasonable input count %d", nInputs)
	}
	for i := uint64(0); i < nInputs && d.err == nil; i++ {
		r.Inputs = append(r.Inputs, InputRec{
			Step:    d.uvarint(),
			Channel: d.varint(),
			Value:   d.varint(),
		})
	}
	if d.err == nil && d.r.Len() != 0 {
		d.fail("trailing bytes")
	}
	if d.err != nil {
		return nil, fmt.Errorf("checkpoint: %w", d.err)
	}
	if r.Empty() {
		return nil, fmt.Errorf("checkpoint: empty ring encoded non-canonically")
	}
	if err := r.validate(uint32(memSize)); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return r, nil
}

// Fingerprint is the content identity of the ring: the hex SHA-256 of
// its canonical encoding, or "" for an empty ring. The service folds it
// into the analysis cache key exactly like the evidence fingerprint.
func (r *Ring) Fingerprint() string {
	b := r.Encode()
	if len(b) == 0 {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

package checkpoint

import (
	"fmt"
	"time"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/vm"
)

// Resume rebuilds the machine at the checkpoint and deterministically
// replays the recorded schedule forward up to (but not including) step
// index until. It returns the VM (positioned at absolute step until, or
// at the faulting step) and the fault that stopped the replay, if any.
// Resume fails when the schedule window does not cover [ck.Step, until)
// or when the replay diverges from the recorded schedule — either means
// the ring does not describe this execution.
func (r *Ring) Resume(p *prog.Program, ck *Checkpoint, until uint64) (*vm.VM, *coredump.Fault, error) {
	if ck == nil {
		return nil, nil, fmt.Errorf("checkpoint: nil checkpoint")
	}
	if until < ck.Step {
		return nil, nil, fmt.Errorf("checkpoint: resume target %d before checkpoint step %d", until, ck.Step)
	}
	if !r.Covered(ck.Step, until) {
		return nil, nil, fmt.Errorf("checkpoint: schedule window [%d,%d) does not cover [%d,%d)", r.LogBase, r.End(), ck.Step, until)
	}
	// Feed the post-checkpoint inputs in consumption order per channel.
	inputs := make(map[int64][]int64)
	for _, in := range r.Inputs {
		if in.Step >= ck.Step {
			inputs[in.Channel] = append(inputs[in.Channel], in.Value)
		}
	}
	v, err := vm.NewFromState(p, vm.Config{Inputs: inputs}, ck.State())
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: rebuilding state: %w", err)
	}
	for step := ck.Step; step < until; step++ {
		rec := r.Sched[step-r.LogBase]
		t := v.Thread(rec.Tid)
		if t == nil {
			return v, nil, fmt.Errorf("checkpoint: replay diverged at step %d: thread %d does not exist", step, rec.Tid)
		}
		block, err := p.BlockAt(t.PC)
		if err != nil {
			return v, nil, fmt.Errorf("checkpoint: replay diverged at step %d: %v", step, err)
		}
		if block.ID != rec.Block {
			return v, nil, fmt.Errorf("checkpoint: replay diverged at step %d: thread %d at block %d, schedule says %d", step, rec.Tid, block.ID, rec.Block)
		}
		f := v.ExecBlock(rec.Tid)
		if f == nil {
			continue
		}
		if f.Kind == coredump.FaultNone {
			return v, nil, fmt.Errorf("checkpoint: replay diverged at step %d: scheduled thread %d blocked on a lock", step, rec.Tid)
		}
		if step != until-1 {
			return v, f, fmt.Errorf("checkpoint: replay diverged at step %d: premature fault %v", step, f)
		}
		return v, f, nil
	}
	return v, nil, nil
}

// Verify replays forward from the checkpoint through the end of the
// recorded schedule and reports whether the execution runs into exactly
// the dump's failure: same fault descriptor, same memory, same thread
// registers and program counters. Deterministic replay means every
// genuine checkpoint of the dumped execution verifies; a false return
// therefore flags either a schedule window too short to reach the
// failure or a ring that does not belong to this dump.
func (r *Ring) Verify(p *prog.Program, ck *Checkpoint, d *coredump.Dump) bool {
	if ck.Step > d.Steps || r.End() != d.Steps {
		return false
	}
	v, f, err := r.Resume(p, ck, d.Steps)
	if err != nil {
		return false
	}
	if d.Fault.Thread < 0 {
		// Global fault (deadlock, budget): no faulting instruction to
		// compare; the end state carries the verdict.
		return endStateMatches(v, d)
	}
	if f == nil {
		return false
	}
	of := d.Fault
	if f.Kind != of.Kind || f.PC != of.PC || f.Thread != of.Thread || f.Addr != of.Addr {
		return false
	}
	return endStateMatches(v, d)
}

// endStateMatches compares replayed memory and thread register/PC state
// against the dump. Scheduling states are deliberately not compared: a
// thread the original run parked on a contended lock (an uncounted,
// unlogged transition) is merely still runnable in the replay, with
// identical registers and PC.
func endStateMatches(v *vm.VM, d *coredump.Dump) bool {
	if len(v.Mem.Diff(d.Mem)) != 0 {
		return false
	}
	for _, ot := range d.Threads {
		t := v.Thread(ot.ID)
		if t == nil {
			return false
		}
		for reg := 0; reg < isa.NumRegs; reg++ {
			if t.Regs[reg] != ot.Regs[reg] {
				return false
			}
		}
		if t.PC != ot.PC {
			return false
		}
	}
	return true
}

// Bisect finds the latest checkpoint from which the failure still
// reproduces — the FReD move: binary-search the process lifetime over
// checkpoints to localize the failure region before any symbolic work.
// Checkpoints outside the schedule window cannot be concretely replayed
// and count as non-reproducing, so the search lands on the newest
// verifiable checkpoint. When nothing verifies (window too short, or a
// foreign ring) it falls back to the newest anchor-eligible checkpoint,
// unverified: the backward search still discharges the anchor state
// through the solver, so a bogus anchor costs completeness, never
// soundness. The boolean reports whether the returned checkpoint was
// verified; nil means the ring offers no usable anchor at all.
func (r *Ring) Bisect(p *prog.Program, d *coredump.Dump) (*Checkpoint, bool) {
	return r.BisectObserved(p, d, nil)
}

// BisectObserved is Bisect with an observer: onVerify, when non-nil,
// is invoked after every forward-replay verification probe with the
// probed checkpoint, the replay's wall time, and its outcome. This is
// the observability hook — the analyzer wires it to per-probe trace
// spans, and the service's bisect-replay histogram is fed from those.
func (r *Ring) BisectObserved(p *prog.Program, d *coredump.Dump, onVerify func(ck *Checkpoint, dur time.Duration, ok bool)) (*Checkpoint, bool) {
	cands := r.Candidates(d.Steps)
	if len(cands) == 0 {
		return nil, false
	}
	lo, hi, best := 0, len(cands)-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		var t0 time.Time
		if onVerify != nil {
			t0 = time.Now()
		}
		ok := r.Verify(p, cands[mid], d)
		if onVerify != nil {
			onVerify(cands[mid], time.Since(t0), ok)
		}
		if ok {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if best < 0 {
		return cands[len(cands)-1], false
	}
	return cands[best], true
}

// EarlierThan returns the newest anchor-eligible checkpoint strictly
// older than step, or nil — the analyzer's escalation path when an
// anchored search needs a wider window.
func (r *Ring) EarlierThan(step, dumpSteps uint64) *Checkpoint {
	cands := r.Candidates(dumpSteps)
	for i := len(cands) - 1; i >= 0; i-- {
		if cands[i].Step < step {
			return cands[i]
		}
	}
	return nil
}

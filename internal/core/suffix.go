package core

import (
	"fmt"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/solver"
	"res/internal/symx"
	"res/internal/trace"
)

// Synthesized is a concretized execution suffix: the paper's output
// <Ti, Mi> — a schedule plus the partial memory image to start from, with
// the external inputs pinned to concrete values by the solver's model.
type Synthesized struct {
	Node   *Node
	Suffix *trace.Suffix
	Model  symx.Model

	// The reconstructed pre-state Mi.
	PreMem      *mem.Image
	PreRegs     map[int][isa.NumRegs]int64
	PreStates   map[int]coredump.ThreadState
	PreLocks    map[uint32]int
	PreHeap     []coredump.HeapObject
	PreHeapNext uint32

	// ReadSet and WriteSet are the resolved data addresses the suffix
	// touches (§3.3: "RES automatically focuses developers' attention on
	// the recently read or written state").
	ReadSet, WriteSet []uint32
}

// Concretize solves the node's constraint system and materializes the
// suffix: schedule, inputs, and the pre-image Mi. The dump supplies the
// failure point (the pc at which the final partial step stops).
func (e *Engine) Concretize(n *Node, d *coredump.Dump) (*Synthesized, error) {
	// With a session on the snapshot this is a residual-only solve (the
	// whole chain is already propagated); without one it solves the
	// flattened constraint set from scratch.
	res := n.Snap.CheckWith(e.opt.Solver, nil)
	if res.Verdict != solver.Sat {
		return nil, fmt.Errorf("core: node constraints not solvable: %v (%s)", res.Verdict, res.Reason)
	}
	model := res.Model

	steps := n.Steps()
	suffix := &trace.Suffix{
		EndPC:    d.Fault.PC,
		StartPCs: make(map[int]int),
	}
	for _, tid := range n.Snap.ThreadIDs() {
		suffix.StartPCs[tid] = n.Snap.Thread(tid).PC
	}
	readSet := make(map[uint32]bool)
	writeSet := make(map[uint32]bool)
	for _, s := range steps {
		suffix.Steps = append(suffix.Steps, trace.Step{Tid: s.Tid, Block: s.Block})
		for _, iu := range s.Inputs {
			suffix.Inputs = append(suffix.Inputs, trace.InputRec{
				Tid:     s.Tid,
				Channel: iu.Channel,
				Value:   model[iu.Var],
			})
		}
		for _, a := range s.Accesses {
			if a.Write {
				writeSet[a.Addr] = true
			} else {
				readSet[a.Addr] = true
			}
		}
	}

	syn := &Synthesized{
		Node:        n,
		Suffix:      suffix,
		Model:       model,
		PreMem:      n.Snap.ConcretizeMem(model),
		PreRegs:     make(map[int][isa.NumRegs]int64),
		PreStates:   make(map[int]coredump.ThreadState),
		PreLocks:    make(map[uint32]int),
		PreHeap:     append([]coredump.HeapObject(nil), n.Snap.Heap...),
		PreHeapNext: n.Snap.HeapNext,
	}
	for _, tid := range n.Snap.ThreadIDs() {
		regs, err := n.Snap.ConcretizeRegs(tid, model)
		if err != nil {
			return nil, err
		}
		syn.PreRegs[tid] = regs
		syn.PreStates[tid] = n.Snap.Thread(tid).State
	}
	n.Snap.ForEachLock(func(a uint32, o int) {
		syn.PreLocks[a] = o
	})
	for a := range readSet {
		syn.ReadSet = append(syn.ReadSet, a)
	}
	for a := range writeSet {
		syn.WriteSet = append(syn.WriteSet, a)
	}
	sortU32(syn.ReadSet)
	sortU32(syn.WriteSet)
	return syn, nil
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Describe renders a synthesized suffix for human consumption.
func (s *Synthesized) Describe() string {
	out := fmt.Sprintf("%s\n", s.Suffix)
	out += fmt.Sprintf("inputs: %v\n", s.Suffix.Inputs)
	out += fmt.Sprintf("read set: %v\nwrite set: %v\n", s.ReadSet, s.WriteSet)
	return out
}

// Package core implements reverse execution synthesis (RES) proper: the
// backward search over candidate (thread, predecessor-block) steps that
// grows an execution suffix from a coredump, exactly as §2 of the paper
// describes. Each search node holds a symbolic snapshot; extending a node
// runs symvm.BackExec for one candidate and keeps the result only when the
// constraint system "executing the candidate from the havocked pre-state
// reproduces the post-state" is satisfiable.
//
// The search is breadth-first in suffix length (the paper wants the
// shortest suffix containing the root cause) with optional beam capping,
// and candidate enumeration supports every edge kind of the execution
// model: straight-line and branch edges, call descent, return edges,
// thread un-spawning, halt unwinding for exited threads, and the base-case
// partial block of the faulting thread.
package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/obs"
	"res/internal/prog"
	"res/internal/solver"
	"res/internal/symstate"
	"res/internal/symvm"
	"res/internal/symx"
)

// StepKind classifies a backward step.
type StepKind uint8

const (
	StepNormal  StepKind = iota
	StepPartial          // the base-case partial block of the faulting thread
	StepSpawn            // un-spawning a child thread
	StepHalt             // unwinding an exited thread's final block
)

func (k StepKind) String() string {
	switch k {
	case StepPartial:
		return "partial"
	case StepSpawn:
		return "spawn"
	case StepHalt:
		return "halt"
	}
	return "normal"
}

// StepRec records one reconstructed step (in backward discovery order; the
// suffix presents them oldest-first).
type StepRec struct {
	Kind           StepKind
	Tid            int // executing thread
	Block          int // block id
	StartPC, EndPC int
	SpawnChild     int
	Inputs         []symvm.InputUse
	Outputs        []symvm.OutputUse
	Accesses       []symvm.MemAccess
}

// Node is one point of the backward search tree.
type Node struct {
	Snap   *symstate.Snapshot
	Parent *Node
	Step   StepRec // the step that produced this node from Parent (zero for root)
	Depth  int     // number of steps from the dump (root partial step = 1)
	// ev holds one evidence cursor per Options.Evidence pruner: the number
	// of that pruner's records this path has consumed. nil when the search
	// runs without evidence.
	ev []int32
	// fp is the snapshot's structural fingerprint, used to deduplicate
	// equivalent frontier nodes before they are expanded.
	fp uint64
}

// EvidenceCursors exposes the node's evidence-consumption counters
// (positional with Options.Evidence); diagnostic only.
func (n *Node) EvidenceCursors() []int32 { return n.ev }

// Steps returns the node's suffix steps, oldest first. Each node's Step is
// the one that produced it from its parent, and deeper nodes correspond to
// temporally earlier steps, so walking up from the node yields the steps
// already ordered oldest to newest.
func (n *Node) Steps() []StepRec {
	var out []StepRec
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		out = append(out, cur.Step)
	}
	return out
}

// EventKind classifies a search progress event.
type EventKind uint8

const (
	// EventDepth signals that the breadth-first frontier advanced to a new
	// suffix depth.
	EventDepth EventKind = iota
	// EventNode signals one attempted backward step (feasible or not).
	EventNode
	// EventSuffix signals a feasible suffix discovered at Event.Depth.
	EventSuffix
	// EventSolver is a periodic statistics snapshot (every 128 attempts).
	EventSolver
)

func (k EventKind) String() string {
	switch k {
	case EventDepth:
		return "depth"
	case EventNode:
		return "node"
	case EventSuffix:
		return "suffix"
	case EventSolver:
		return "solver"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one progress report from the backward search. Events are
// delivered synchronously on the analyzing goroutine via Options.OnEvent.
type Event struct {
	Kind EventKind
	// Depth is the suffix depth the event concerns.
	Depth int
	// Feasible reports, for EventNode, whether the attempted step was
	// feasible.
	Feasible bool
	// Stats is a snapshot of the cumulative search statistics at the time
	// the event was emitted.
	Stats Stats
}

// PredIndex caches Program.ExecPreds for every block ID, so the backward
// CFG navigation is computed once per program instead of once per search
// node. Build it with BuildPredIndex; it is read-only afterwards and safe
// to share across engines running on different goroutines.
type PredIndex [][]int

// BuildPredIndex precomputes the execution-predecessor sets of every
// block of p.
func BuildPredIndex(p *prog.Program) PredIndex {
	idx := make(PredIndex, p.NumBlocks())
	for id := range idx {
		idx[id] = p.ExecPreds(p.Block(id))
	}
	return idx
}

// Filter vets a candidate backward step before it is attempted (the
// breadcrumb integration point). used is the number of breadcrumb entries
// the path has consumed so far; hasTransfer is false when the candidate's
// terminator produces no LBR record (fallthrough terminators). The filter
// returns whether the candidate is allowed and whether accepting it
// consumes a breadcrumb entry (filtered-LBR modes record only some
// transfer kinds, so not every transfer consumes).
type Filter func(used int, hasTransfer bool, from, to int) (ok, consume bool)

// StepInfo describes one candidate backward step to evidence pruners.
type StepInfo struct {
	Kind StepKind
	// Tid and Block identify the executing thread and the block the
	// candidate step would add to the suffix.
	Tid, Block int
	// ChildDepth is the suffix depth the step's child node would have.
	ChildDepth int
	// HasTransfer is true when the candidate's terminator produces a
	// branch-record entry (jmp/br/call/ret); From/To are the transfer's
	// source pc and destination pc when it does.
	HasTransfer bool
	From, To    int
}

// Child is the view of a feasible backward step handed to Pruner.Constrain:
// the child's symbolic snapshot (pruners may append constraints to it) and
// the OUTPUT records the step executed.
type Child struct {
	Snap    *symstate.Snapshot
	Outputs []symvm.OutputUse
}

// MaxPruners bounds Options.Evidence: per-candidate consume verdicts are
// tracked in a 64-bit mask, one bit per pruner. New panics beyond it;
// the evidence wire format rejects such sets long before they get here.
const MaxPruners = 64

// Pruner is the compiled form of one piece of production evidence (see
// internal/evidence): it prunes the backward search by vetoing candidate
// steps before they are attempted and/or by constraining feasible children
// through the solver. Implementations must be read-only and safe for
// concurrent use — all per-path state lives in the integer cursor the
// engine threads through the search nodes (the count of evidence records
// the path has consumed for this pruner).
type Pruner interface {
	// Filter vets a candidate before BackExec. ok=false prunes the
	// candidate without consuming attempt budget; consume=true advances
	// the cursor on the child this candidate produces.
	Filter(used int, s StepInfo) (ok, consume bool)
	// Constrain runs after a feasible BackExec produced child. It may
	// append constraints to child.Snap; consumed advances the cursor,
	// needCheck requests an incremental solver check of the appended
	// constraints (counted as one solver call), and ok=false rejects the
	// child outright with no solver call (a structural mismatch).
	Constrain(used int, s StepInfo, child *Child) (consumed int, needCheck, ok bool)
}

// Options tunes the analysis.
type Options struct {
	// MaxDepth bounds the suffix length in blocks (including the base-case
	// partial step). Zero means the package default of 24.
	MaxDepth int
	// MaxNodes bounds the total backward-step attempts. Zero = 100000.
	MaxNodes int
	// BeamWidth caps the number of frontier nodes kept per depth;
	// zero = unlimited.
	BeamWidth int
	// Solver tunes the underlying constraint solving.
	Solver solver.Options
	// DisableProbe forwards the symvm ablation knob (see symvm.Options).
	DisableProbe bool
	// Evidence is the ordered list of compiled evidence pruners applied to
	// the search (the internal/evidence integration point; the classic LBR
	// filter and output-log matching are two of them). Order matters: each
	// pruner owns one cursor slot on every node, and cursors participate
	// in frontier deduplication.
	Evidence []Pruner
	// OnSuffix is invoked for every feasible node (depth >= 1). Returning
	// true stops the search. When nil, the search runs to its budgets.
	OnSuffix func(*Node) bool
	// OnEvent, when non-nil, observes search progress. Events are
	// delivered synchronously from the search loop, so handlers must be
	// fast and must not call back into the engine.
	OnEvent func(Event)
	// Preds, when non-nil, is a precomputed execution-predecessor index
	// (BuildPredIndex) shared across analyses of the same program. When
	// nil, predecessors are recomputed on the fly at every node.
	Preds PredIndex
	// Parallelism is the number of candidate backward steps evaluated
	// concurrently within one depth of the search. Values <= 1 run
	// sequentially. Results are bit-identical at any parallelism: every
	// candidate's work is independent, and outcomes are merged in
	// candidate order so statistics, events, suffix discovery order, and
	// early-stop points match the sequential engine exactly.
	Parallelism int
	// Trace, when non-nil, is the parent observability span under which
	// the engine records the search: one "base-case" span, then one
	// "depth" span per frontier depth carrying attempt/feasibility
	// counts and solver time. When the calling goroutine already carries
	// pprof labels (the service's job/program labels), the engine
	// additionally refines them with a depth_band label per band
	// crossed. Tracing adds no behavioral branches — a nil Trace reduces
	// every instrumentation site to a nil check, and the produced Report
	// is identical either way.
	Trace *obs.Span
}

func (o Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return 24
	}
	return o.MaxDepth
}

func (o Options) maxNodes() int {
	if o.MaxNodes == 0 {
		return 100000
	}
	return o.MaxNodes
}

func (o Options) parallelism() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// Stats aggregates search effort; the experiment harness reports these.
type Stats struct {
	Attempts    int // BackExec invocations
	Feasible    int
	Infeasible  int
	Unknown     int
	SolverCalls int
	MaxDepth    int
}

// Report is the outcome of an analysis.
type Report struct {
	Stats Stats
	// Suffixes holds every feasible node discovered, in discovery order
	// (shortest first). The caller concretizes the ones it cares about.
	Suffixes []*Node
	// Stopped is true if OnSuffix requested the stop.
	Stopped bool
	// Interrupted is set when the search stopped early because its
	// context was canceled or its deadline expired; the report then holds
	// the partial results accumulated up to that point.
	Interrupted bool
	// HardwareSuspect is set when the base case or every depth-1 candidate
	// is infeasible with no Unknowns: no feasible execution ends at this
	// coredump, so the dump is inconsistent with the program — the
	// signature of a hardware error (§3.2).
	HardwareSuspect bool
	// FullReconstruction is set when the search unwound an entire
	// execution back to the program's initial state.
	FullReconstruction *Node
}

// Engine analyzes coredumps of one program. An Engine is NOT safe for
// concurrent use: create one engine per in-flight analysis. Engines of
// the same program may share a read-only Options.Preds index; that is
// what makes per-analysis engine construction cheap.
type Engine struct {
	P    *prog.Program
	opt  Options
	pool *symx.Pool
	// solverOpt is the per-analysis solver tuning: opt.Solver plus the
	// context interrupt and trace observer installed by AnalyzeContext.
	solverOpt solver.Options
	// solverChecks/solverNS accumulate the solver Observe hook's output.
	// Atomic because checks run on the candidate worker pool; only
	// written when tracing is on.
	solverChecks atomic.Int64
	solverNS     atomic.Int64
}

// New creates an engine. It panics when opt.Evidence exceeds MaxPruners
// — a programmer error public callers cannot reach (evidence sets are
// size-checked at decode and compile time).
func New(p *prog.Program, opt Options) *Engine {
	if len(opt.Evidence) > MaxPruners {
		panic(fmt.Sprintf("core: %d evidence pruners exceeds MaxPruners (%d)", len(opt.Evidence), MaxPruners))
	}
	return &Engine{P: p, opt: opt, pool: symx.NewPool(), solverOpt: opt.Solver}
}

// Pool exposes the engine's variable pool (for rendering expressions).
func (e *Engine) Pool() *symx.Pool { return e.pool }

// execPreds returns the execution predecessors of b, consulting the
// precomputed index when one was provided.
func (e *Engine) execPreds(b *prog.Block) []int {
	if e.opt.Preds != nil {
		return e.opt.Preds[b.ID]
	}
	return e.P.ExecPreds(b)
}

// emit delivers a progress event to the observer, if any.
func (e *Engine) emit(k EventKind, depth int, feasible bool, rep *Report) {
	if e.opt.OnEvent == nil {
		return
	}
	e.opt.OnEvent(Event{Kind: k, Depth: depth, Feasible: feasible, Stats: rep.Stats})
}

// Analyze runs the backward search from the dump to its budgets.
func (e *Engine) Analyze(d *coredump.Dump) (*Report, error) {
	return e.AnalyzeContext(context.Background(), d)
}

// AnalyzeContext runs the backward search from the dump under a context.
// Cancellation and deadlines are observed between backward-step attempts
// and inside the solver's search phases, so even analyses stuck deep in
// constraint solving return promptly. On cancellation the partial report
// accumulated so far is returned together with ctx.Err() — callers that
// want best-effort results must not discard the report when the error is
// a context error.
func (e *Engine) AnalyzeContext(ctx context.Context, d *coredump.Dump) (*Report, error) {
	e.solverOpt = e.opt.Solver
	if done := ctx.Done(); done != nil {
		prev := e.opt.Solver.Interrupt
		e.solverOpt.Interrupt = func() bool {
			if prev != nil && prev() {
				return true
			}
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
	}
	labelBands := false
	if e.opt.Trace != nil {
		prevObs := e.opt.Solver.Observe
		e.solverOpt.Observe = func(d time.Duration, v solver.Verdict) {
			if prevObs != nil {
				prevObs(d, v)
			}
			e.solverChecks.Add(1)
			e.solverNS.Add(d.Nanoseconds())
		}
		// Depth-band pprof labels refine the service's per-job labels;
		// when the caller's goroutine carries none (local runs,
		// benchmarks), no profile consumes them, so skip the runtime
		// label churn and restore only what was changed.
		if _, ok := pprof.Label(ctx, "job"); ok {
			labelBands = true
			defer pprof.SetGoroutineLabels(ctx)
		}
	}

	rep := &Report{}
	if err := ctx.Err(); err != nil {
		rep.Interrupted = true
		return rep, err
	}
	var bspan *obs.Span
	if e.opt.Trace != nil {
		bspan = e.opt.Trace.Child("base-case")
	}
	root, err := e.baseCase(d, rep)
	if bspan != nil {
		bspan.SetAttrs(
			obs.Attr{Key: "feasible", Val: boolInt(root != nil)},
			obs.Attr{Key: "solver_calls", Val: int64(rep.Stats.SolverCalls)},
		)
		bspan.End()
	}
	if err != nil {
		return nil, err
	}
	e.emit(EventNode, 1, root != nil, rep)
	if root == nil {
		if err := ctx.Err(); err != nil {
			rep.Interrupted = true
			return rep, err
		}
		// Base case infeasible: the dump's own fault state is inconsistent.
		rep.HardwareSuspect = rep.Stats.Unknown == 0
		return rep, nil
	}

	frontier := []*Node{root}
	if root.Depth >= 1 {
		rep.Suffixes = append(rep.Suffixes, root)
		e.emit(EventSuffix, root.Depth, true, rep)
		if e.opt.OnSuffix != nil && e.opt.OnSuffix(root) {
			rep.Stopped = true
			return rep, nil
		}
	}

	depth1Feasible := 0
	depth1Unknown := 0
	curBand := ""
	for len(frontier) > 0 && rep.Stats.Attempts < e.opt.maxNodes() {
		depth := frontier[0].Depth + 1
		e.emit(EventDepth, depth, false, rep)
		// Open the per-depth trace span and label the goroutine (and the
		// workers runWork spawns, which inherit labels) with the depth
		// band, so CPU profiles attribute time to search depth.
		var dspan *obs.Span
		var att0, feas0, sc0 int
		var checks0, checkNS0, stepNS int64
		if e.opt.Trace != nil {
			dspan = e.opt.Trace.Child("depth")
			dspan.SetInt("depth", int64(depth))
			att0, feas0, sc0 = rep.Stats.Attempts, rep.Stats.Feasible, rep.Stats.SolverCalls
			checks0, checkNS0 = e.solverChecks.Load(), e.solverNS.Load()
			if band := obs.DepthBand(depth); labelBands && band != curBand {
				curBand = band
				pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("depth_band", band)))
			}
		}
		closeDepth := func() {
			if dspan == nil {
				return
			}
			dspan.SetAttrs(
				obs.Attr{Key: "attempts", Val: int64(rep.Stats.Attempts - att0)},
				obs.Attr{Key: "feasible", Val: int64(rep.Stats.Feasible - feas0)},
				obs.Attr{Key: "solver_calls", Val: int64(rep.Stats.SolverCalls - sc0)},
				obs.Attr{Key: "solver_checks", Val: e.solverChecks.Load() - checks0},
				obs.Attr{Key: "solver_ns", Val: e.solverNS.Load() - checkNS0},
				obs.Attr{Key: "step_ns", Val: stepNS},
			)
			dspan.End()
		}
		// Enumerate this depth's candidate work up front (budget- and
		// filter-aware, deduplicating fingerprint-identical frontier
		// nodes), optionally fan the per-candidate BackExec+check work
		// across workers, then merge outcomes in candidate order so the
		// result is bit-identical to a sequential pass.
		work := e.buildWork(frontier, rep)
		results := e.runWork(ctx, work, d)
		var next []*Node
		for i := range work {
			it := &work[i]
			if err := ctx.Err(); err != nil {
				rep.Interrupted = true
				closeDepth()
				return rep, err
			}
			var out stepOut
			switch {
			case !it.filterOK:
				out = stepOut{verdict: symvm.Infeasible}
			case results != nil && results[i].computed:
				out = results[i]
			default:
				// Sequential mode (or a worker skipped by cancellation):
				// compute lazily, so an early stop attempts exactly what
				// the seed engine would have.
				out = e.tryStep(it.node, it.cand, it.consumeMask, d)
			}
			if it.filterOK {
				rep.Stats.Attempts++
				rep.Stats.SolverCalls += out.solverCalls
				stepNS += out.durNS
				switch out.verdict {
				case symvm.Feasible:
					rep.Stats.Feasible++
				case symvm.Infeasible:
					rep.Stats.Infeasible++
				default:
					rep.Stats.Unknown++
				}
			}
			e.emit(EventNode, it.node.Depth+1, out.verdict == symvm.Feasible, rep)
			if rep.Stats.Attempts%128 == 0 {
				e.emit(EventSolver, it.node.Depth+1, false, rep)
			}
			switch out.verdict {
			case symvm.Feasible:
				if it.node == root || it.node.Depth == 0 {
					depth1Feasible++
				}
				child := out.child
				if child.Depth > rep.Stats.MaxDepth {
					rep.Stats.MaxDepth = child.Depth
				}
				rep.Suffixes = append(rep.Suffixes, child)
				e.emit(EventSuffix, child.Depth, true, rep)
				if e.opt.OnSuffix != nil && e.opt.OnSuffix(child) {
					rep.Stopped = true
					closeDepth()
					return rep, nil
				}
				if full := e.checkFullReconstruction(child); full {
					rep.FullReconstruction = child
					closeDepth()
					return rep, nil
				}
				next = append(next, child)
			case symvm.Unknown:
				if it.node == root || it.node.Depth == 0 {
					depth1Unknown++
				}
			}
		}
		if e.opt.BeamWidth > 0 && len(next) > e.opt.BeamWidth {
			next = next[:e.opt.BeamWidth]
		}
		closeDepth()
		frontier = next
	}
	if err := ctx.Err(); err != nil {
		rep.Interrupted = true
		return rep, err
	}
	if len(rep.Suffixes) == 0 && depth1Feasible == 0 && depth1Unknown == 0 {
		rep.HardwareSuspect = true
	}
	return rep, nil
}

// baseCase builds the root node. For a thread fault it executes the
// partial final block of the faulting thread with the fault condition as
// an extra constraint; for global faults (deadlock, budget) the root is
// the dump itself at depth 0.
func (e *Engine) baseCase(d *coredump.Dump, rep *Report) (*Node, error) {
	snap := symstate.FromDump(d, e.P.Layout.HeapBase, e.pool)
	// Seed the incremental solver session at the root: every descendant
	// snapshot extends it with only the constraints its own step added.
	snap.AttachSession(e.solverOpt)
	if d.Fault.Thread < 0 {
		return &Node{Snap: snap, ev: e.rootCursors(), fp: snap.Fingerprint()}, nil
	}
	t, err := d.Thread(d.Fault.Thread)
	if err != nil {
		return nil, err
	}
	if t.PC != d.Fault.PC {
		return nil, fmt.Errorf("core: dump thread pc %d disagrees with fault pc %d", t.PC, d.Fault.PC)
	}
	block, err := e.P.BlockAt(d.Fault.PC)
	if err != nil {
		return nil, err
	}
	req := symvm.Req{
		P:          e.P,
		Post:       snap,
		Tid:        d.Fault.Thread,
		StartPC:    block.Start,
		EndPC:      d.Fault.PC,
		Partial:    true,
		SpawnChild: -1,
		FaultCons:  e.faultCons(d),
	}
	res := symvm.BackExec(req, symvm.Options{Solver: e.solverOpt, DisableProbe: e.opt.DisableProbe})
	rep.Stats.Attempts++
	rep.Stats.SolverCalls += res.SolverCalls
	switch res.Verdict {
	case symvm.Feasible:
		rep.Stats.Feasible++
	case symvm.Infeasible:
		rep.Stats.Infeasible++
		return nil, nil
	default:
		rep.Stats.Unknown++
		return nil, nil
	}
	node := &Node{
		Snap:  res.Pre,
		Step:  StepRec{Kind: StepPartial, Tid: d.Fault.Thread, Block: block.ID, StartPC: block.Start, EndPC: d.Fault.PC, Inputs: res.Inputs, Outputs: res.Outputs, Accesses: res.Accesses},
		Depth: 1,
		ev:    e.rootCursors(),
		fp:    res.Pre.Fingerprint(),
	}
	node.Parent = &Node{Snap: snap} // sentinel root so Steps() includes the partial step
	rep.Stats.MaxDepth = 1
	return node, nil
}

// faultCons translates the dump's fault descriptor into constraints over
// the register state at the faulting instruction: the reconstructed
// execution must fault in exactly the observed way.
func (e *Engine) faultCons(d *coredump.Dump) func([isa.NumRegs]*symx.Expr) []solver.Constraint {
	in := &e.P.Code[d.Fault.PC]
	kind := d.Fault.Kind
	addr := int64(d.Fault.Addr)
	return func(regs [isa.NumRegs]*symx.Expr) []solver.Constraint {
		switch kind {
		case coredump.FaultNullDeref, coredump.FaultOOB, coredump.FaultHeapOOB, coredump.FaultUseAfterFree:
			var addrExpr *symx.Expr
			switch in.Op {
			case isa.OpLoad, isa.OpStore:
				addrExpr = symx.Binary(symx.OpAdd, regs[in.Rs1], symx.Const(in.Imm))
			case isa.OpLoadG, isa.OpStoreG:
				addrExpr = symx.Const(in.Imm)
			case isa.OpLock, isa.OpUnlock, isa.OpFree:
				addrExpr = regs[in.Rs1]
			case isa.OpRet, isa.OpCall:
				addrExpr = regs[isa.SP]
				if in.Op == isa.OpCall {
					addrExpr = symx.Binary(symx.OpAdd, addrExpr, symx.Const(-1))
				}
			default:
				return nil
			}
			if kind == coredump.FaultOOB {
				// The recorded address is truncated to 32 bits; constrain
				// only when it is representable.
				return []solver.Constraint{solver.Eq(symx.Binary(symx.OpAnd, addrExpr, symx.Const(0xffffffff)), symx.Const(addr))}
			}
			return []solver.Constraint{solver.Eq(addrExpr, symx.Const(addr))}
		case coredump.FaultDivByZero:
			return []solver.Constraint{solver.Eq(regs[in.Rs2], symx.Const(0))}
		case coredump.FaultAssert:
			return []solver.Constraint{solver.Falsy(regs[in.Rs1])}
		}
		return nil
	}
}

// candidate describes one backward-step possibility.
type candidate struct {
	kind       StepKind
	tid        int
	block      *prog.Block
	spawnChild int
	// transfer info for LBR pruning
	hasTransfer bool
	from, to    int
}

// candidates enumerates the backward steps possible from a node.
func (e *Engine) candidates(n *Node) []candidate {
	var out []candidate
	maxTid := n.Snap.MaxThreadID()
	for _, tid := range n.Snap.ThreadIDs() {
		t := n.Snap.Thread(tid)
		switch t.State {
		case coredump.ThreadExited:
			block, err := e.P.BlockAt(t.PC)
			if err != nil || block.End-1 != t.PC {
				continue
			}
			if e.P.Code[t.PC].Op != isa.OpHalt {
				continue
			}
			out = append(out, candidate{kind: StepHalt, tid: tid, block: block, spawnChild: -1})
		case coredump.ThreadRunnable, coredump.ThreadBlocked:
			cur, err := e.P.BlockAt(t.PC)
			if err != nil || cur.Start != t.PC {
				continue
			}
			for _, pid := range e.execPreds(cur) {
				pred := e.P.Block(pid)
				term := pred.Terminator(e.P.Code)
				termPC := pred.End - 1
				switch term.Op {
				case isa.OpSpawn:
					if term.Target == cur.Start && pred.End != cur.Start {
						// tid is the child at its entry: a spawn by some
						// other thread parked right after the spawn block.
						if tid != maxTid {
							continue
						}
						for _, ptid := range n.Snap.ThreadIDs() {
							if ptid == tid {
								continue
							}
							pt := n.Snap.Thread(ptid)
							if pt.State == coredump.ThreadExited || pt.PC != pred.End {
								continue
							}
							out = append(out, candidate{kind: StepSpawn, tid: ptid, block: pred, spawnChild: tid})
						}
						continue
					}
					// Fallthrough edge: tid itself executed the spawn and
					// continued; the child it created must be unwindable.
					child := maxTid
					if child == tid {
						continue
					}
					ct := n.Snap.Thread(child)
					if ct == nil || ct.PC != term.Target {
						continue
					}
					out = append(out, candidate{kind: StepSpawn, tid: tid, block: pred, spawnChild: child})
				case isa.OpJmp, isa.OpBr:
					out = append(out, candidate{kind: StepNormal, tid: tid, block: pred, spawnChild: -1, hasTransfer: true, from: termPC, to: cur.Start})
				case isa.OpCall:
					out = append(out, candidate{kind: StepNormal, tid: tid, block: pred, spawnChild: -1, hasTransfer: true, from: termPC, to: cur.Start})
				case isa.OpRet:
					out = append(out, candidate{kind: StepNormal, tid: tid, block: pred, spawnChild: -1, hasTransfer: true, from: termPC, to: cur.Start})
				default:
					// Fallthrough terminators (yield, lock) produce no LBR
					// record.
					out = append(out, candidate{kind: StepNormal, tid: tid, block: pred, spawnChild: -1})
				}
			}
		}
	}
	return out
}

// workItem pairs a frontier node with one enumerated candidate, plus the
// evidence filters' verdict, evaluated at enumeration time so the
// budget cut and the parallel fan-out agree with sequential order.
type workItem struct {
	node     *Node
	cand     candidate
	filterOK bool
	// consumeMask has bit i set when Evidence[i].Filter consumed a record
	// for this candidate (applied to the child's cursor on success).
	consumeMask uint64
}

// rootCursors allocates the zeroed evidence-cursor vector for a root
// node, or nil when the search runs without evidence.
func (e *Engine) rootCursors() []int32 {
	if len(e.opt.Evidence) == 0 {
		return nil
	}
	return make([]int32, len(e.opt.Evidence))
}

// stepInfo describes a candidate to the evidence pruners.
func stepInfo(n *Node, c candidate) StepInfo {
	return StepInfo{
		Kind:        c.kind,
		Tid:         c.tid,
		Block:       c.block.ID,
		ChildDepth:  n.Depth + 1,
		HasTransfer: c.hasTransfer,
		From:        c.from,
		To:          c.to,
	}
}

// stepOut is the outcome of one attempted backward step.
type stepOut struct {
	child       *Node
	verdict     symvm.Verdict
	solverCalls int
	computed    bool
	// durNS is the wall time tryStep spent on this attempt (BackExec +
	// evidence constraining + incremental checks). Only measured when
	// tracing is on; merged into the depth span in candidate order.
	durNS int64
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// buildWork enumerates this depth's candidate attempts in frontier order,
// applying the depth bound, the attempt budget (filtered candidates do
// not consume budget, exactly as the sequential loop counts), and
// fingerprint deduplication: a frontier node whose snapshot is
// structurally identical to an earlier node of the same depth — with the
// same evidence cursors, which govern how descendants are filtered —
// expands to an isomorphic subtree, so only the first is expanded (the
// dropped twin itself was already reported as a suffix).
func (e *Engine) buildWork(frontier []*Node, rep *Report) []workItem {
	var work []workItem
	att := rep.Stats.Attempts
	max := e.opt.maxNodes()
	seen := make(map[uint64]bool, len(frontier))
	for _, node := range frontier {
		if node.Depth >= e.opt.maxDepth() {
			continue
		}
		if att >= max {
			break
		}
		key := node.fp
		for _, u := range node.ev {
			key = symx.MixHash(key, uint64(u))
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, cand := range e.candidates(node) {
			if att >= max {
				break
			}
			it := workItem{node: node, cand: cand, filterOK: true}
			if len(e.opt.Evidence) > 0 {
				info := stepInfo(node, cand)
				for i, pr := range e.opt.Evidence {
					ok, consume := pr.Filter(int(node.ev[i]), info)
					if !ok {
						it.filterOK = false
						break
					}
					if consume {
						it.consumeMask |= 1 << i
					}
				}
			}
			if it.filterOK {
				att++
			}
			work = append(work, it)
		}
	}
	return work
}

// runWork fans the candidate attempts across a bounded worker pool and
// collects results by candidate index. In sequential mode (parallelism
// <= 1) it returns nil and the merge loop computes lazily, so early stops
// attempt exactly what the sequential engine would.
func (e *Engine) runWork(ctx context.Context, work []workItem, d *coredump.Dump) []stepOut {
	workers := e.opt.parallelism()
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 || len(work) < 2 {
		return nil
	}
	results := make([]stepOut, len(work))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil || !work[i].filterOK {
					continue
				}
				results[i] = e.tryStep(work[i].node, work[i].cand, work[i].consumeMask, d)
				results[i].computed = true
			}
		}()
	}
	for i := range work {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// tryStep runs one backward step and builds the child node on success. It
// does not touch the engine or the report, so distinct candidates may run
// concurrently; the merge loop applies the returned statistics in
// candidate order. When tracing, the attempt's wall time is measured
// here — a plain wrapper, not a defer, because the closure a deferred
// measurement allocates per attempt is itself measurable search
// overhead.
func (e *Engine) tryStep(n *Node, c candidate, consumeMask uint64, d *coredump.Dump) stepOut {
	if e.opt.Trace == nil {
		return e.stepOnce(n, c, consumeMask, d)
	}
	t0 := time.Now()
	out := e.stepOnce(n, c, consumeMask, d)
	out.durNS = time.Since(t0).Nanoseconds()
	return out
}

// stepOnce is tryStep without the timing shell.
func (e *Engine) stepOnce(n *Node, c candidate, consumeMask uint64, d *coredump.Dump) (out stepOut) {
	req := symvm.Req{
		P:          e.P,
		Post:       n.Snap,
		Tid:        c.tid,
		StartPC:    c.block.Start,
		EndPC:      c.block.End,
		SpawnChild: c.spawnChild,
		HaltStep:   c.kind == StepHalt,
	}
	res := symvm.BackExec(req, symvm.Options{Solver: e.solverOpt, DisableProbe: e.opt.DisableProbe})
	out = stepOut{verdict: res.Verdict, solverCalls: res.SolverCalls}
	if res.Verdict != symvm.Feasible {
		return out
	}
	child := &Node{
		Snap:   res.Pre,
		Parent: n,
		Depth:  n.Depth + 1,
		Step: StepRec{
			Kind: c.kind, Tid: c.tid, Block: c.block.ID,
			StartPC: c.block.Start, EndPC: c.block.End,
			SpawnChild: c.spawnChild,
			Inputs:     res.Inputs, Outputs: res.Outputs, Accesses: res.Accesses,
		},
	}
	// Evidence: advance the filter-consumed cursors, then let each pruner
	// constrain the child (output matching, memory probes, ...). Each
	// needCheck propagates only the constraints appended since the last
	// check, on top of the child's incremental session.
	if len(e.opt.Evidence) > 0 {
		child.ev = append([]int32(nil), n.ev...)
		for i := range e.opt.Evidence {
			if consumeMask&(1<<i) != 0 {
				child.ev[i]++
			}
		}
		info := stepInfo(n, c)
		view := &Child{Snap: child.Snap, Outputs: res.Outputs}
		for i, pr := range e.opt.Evidence {
			consumed, needCheck, ok := pr.Constrain(int(child.ev[i]), info, view)
			if !ok {
				out.verdict = symvm.Infeasible
				return out
			}
			child.ev[i] += int32(consumed)
			if needCheck {
				chk := child.Snap.Check(e.solverOpt)
				out.solverCalls++
				if chk.Verdict == solver.Unsat {
					out.verdict = symvm.Infeasible
					return out
				}
			}
		}
	}
	child.fp = child.Snap.Fingerprint()
	out.child = child
	return out
}

// checkFullReconstruction reports whether the node has unwound the whole
// execution: only the main thread remains, parked at the program entry,
// and the snapshot is consistent with the initial machine state.
func (e *Engine) checkFullReconstruction(n *Node) bool {
	ids := n.Snap.ThreadIDs()
	if len(ids) != 1 || ids[0] != 0 {
		return false
	}
	entry, err := e.P.Entry()
	if err != nil {
		return false
	}
	t := n.Snap.Thread(0)
	if t.PC != entry {
		return false
	}
	// Initial state: zero registers (sp = stack top), memory = zeros plus
	// global initializers.
	init := mem.NewImage(e.P.Layout.MemSize)
	for _, g := range e.P.Globals {
		for i, val := range g.Init {
			init.Store(g.Addr+uint32(i), val)
		}
	}
	var extra []solver.Constraint
	for r := 0; r < isa.NumRegs; r++ {
		want := int64(0)
		if isa.Reg(r) == isa.SP {
			want = int64(e.P.Layout.StackTop(0))
		}
		extra = append(extra, solver.Eq(t.Regs[r], symx.Const(want)))
	}
	n.Snap.ForEachMem(func(a uint32, _ *symx.Expr) {
		extra = append(extra, solver.Eq(n.Snap.MemAt(a), symx.Const(init.Load(a))))
	})
	res := n.Snap.CheckWith(e.solverOpt, extra)
	return res.Verdict == solver.Sat
}

package core_test

import (
	"testing"

	"res/internal/asm"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/replay"
	"res/internal/vm"
)

// crash runs the program to its failure and returns the dump.
func crash(t *testing.T, src string, cfg vm.Config) (*coredump.Dump, *vm.VM) {
	t.Helper()
	p := asm.MustAssemble(src)
	v, err := vm.New(p, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	d, err := v.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d == nil {
		t.Fatal("program did not fail")
	}
	return d, v
}

func TestStraightLineAssert(t *testing.T) {
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    loadg r2, &g
    addi r2, r2, -5
    assert r2
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{})
	if d.Fault.Kind != coredump.FaultAssert {
		t.Fatalf("fault = %v", d.Fault)
	}
	eng := core.New(p, core.Options{})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("no suffixes found; stats %+v", rep.Stats)
	}
	if rep.HardwareSuspect {
		t.Error("spurious hardware suspicion")
	}
	// The base-case suffix replays to the exact dump.
	syn, err := eng.Concretize(rep.Suffixes[0], d)
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("divergence: %v", rr.Divergence)
	}
	if !rr.Matches {
		t.Fatalf("replay does not match dump; memdiff=%v fault=%v", rr.MemDiff, rr.Fault)
	}
}

func TestBranchDisambiguationFigure1Style(t *testing.T) {
	// The Figure 1 structure: two predecessors write different constants
	// into x; the dump has x == 1, so only Pred1 is part of a feasible
	// suffix.
	src := `
.global x 1
func main:
    input r1, 0
    br r1, p1, p2
p1:
    const r3, 1
    storeg r3, &x
    jmp join
p2:
    const r3, 2
    storeg r3, &x
    jmp join
join:
    loadg r4, &x
    addi r5, r4, -1
    assert r5
    halt
`
	p := asm.MustAssemble(src)
	// Input 1 takes p1: x = 1, assert(1-1) fails.
	d, _ := crash(t, src, vm.Config{Inputs: map[int64][]int64{0: {1}}})
	if d.Fault.Kind != coredump.FaultAssert {
		t.Fatalf("fault = %v", d.Fault)
	}
	eng := core.New(p, core.Options{MaxDepth: 8})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Suffixes) < 2 {
		t.Fatalf("expected suffixes beyond the base case; stats %+v", rep.Stats)
	}
	// Every depth-2 suffix must go through p1 (block containing pc 2),
	// never p2 (block containing pc 5).
	p1Block, _ := p.BlockAt(2)
	p2Block, _ := p.BlockAt(5)
	sawP1 := false
	for _, n := range rep.Suffixes {
		for _, s := range n.Steps() {
			if s.Block == p2Block.ID {
				t.Errorf("infeasible predecessor p2 (block %d) appears in a suffix", p2Block.ID)
			}
			if s.Block == p1Block.ID {
				sawP1 = true
			}
		}
	}
	if !sawP1 {
		t.Error("feasible predecessor p1 never appears")
	}
	if rep.Stats.Infeasible == 0 {
		t.Error("expected the p2 candidate to be proven infeasible")
	}
}

func TestSuffixReplaysWithInputs(t *testing.T) {
	// The crash depends on an input value; RES must synthesize an input
	// that reproduces the same failure state (x must equal the dumped
	// value exactly, so the solver must pick the same input).
	src := `
.global x 1
func main:
    input r1, 0
    addi r2, r1, 3
    storeg r2, &x
    loadg r3, &x
    addi r4, r3, -10
    assert r4
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{Inputs: map[int64][]int64{0: {7}}})
	if d.Fault.Kind != coredump.FaultAssert {
		t.Fatalf("fault = %v", d.Fault)
	}
	eng := core.New(p, core.Options{MaxDepth: 4})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("no suffixes; stats %+v", rep.Stats)
	}
	// The deepest suffix includes the INPUT; its synthesized value must
	// be 7 (forced by x == 10 in the dump).
	deepest := rep.Suffixes[len(rep.Suffixes)-1]
	syn, err := eng.Concretize(deepest, d)
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	if len(syn.Suffix.Inputs) > 0 {
		if got := syn.Suffix.Inputs[0].Value; got != 7 {
			t.Errorf("synthesized input = %d, want 7", got)
		}
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence != nil {
		t.Fatalf("divergence: %v", rr.Divergence)
	}
	if !rr.Matches {
		t.Fatalf("replay mismatch; memdiff=%v fault=%v vs %v", rr.MemDiff, rr.Fault, d.Fault)
	}
}

func TestLoopUnwinding(t *testing.T) {
	// A countdown loop that ends in a failure: RES should unwind several
	// loop iterations, each a feasible backward step.
	src := `
.global g 1
func main:
    const r1, 4
loop:
    loadg r2, &g
    addi r2, r2, 1
    storeg r2, &g
    addi r1, r1, -1
    br r1, loop, done
done:
    loadg r3, &g
    addi r3, r3, -4
    assert r3
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{})
	eng := core.New(p, core.Options{MaxDepth: 10})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if rep.Stats.MaxDepth < 4 {
		t.Fatalf("expected to unwind several loop iterations; stats %+v", rep.Stats)
	}
	// Deep suffixes replay exactly.
	var deep *core.Node
	for _, n := range rep.Suffixes {
		if deep == nil || n.Depth > deep.Depth {
			deep = n
		}
	}
	syn, err := eng.Concretize(deep, d)
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Divergence != nil || !rr.Matches {
		t.Fatalf("replay: divergence=%v matches=%v diff=%v", rr.Divergence, rr.Matches, rr.MemDiff)
	}
}

func TestCallReturnUnwinding(t *testing.T) {
	src := `
.global g 1
func main:
    const r0, 6
    call double
    storeg r0, &g
    loadg r1, &g
    addi r2, r1, -12
    assert r2
    halt
func double:
    add r0, r0, r0
    ret
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{})
	eng := core.New(p, core.Options{MaxDepth: 8})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The search must pass backward through the RET and the CALL.
	sawRet, sawCall := false, false
	for _, n := range rep.Suffixes {
		for _, s := range n.Steps() {
			blk := p.Block(s.Block)
			term := blk.Terminator(p.Code)
			switch term.Op.String() {
			case "ret":
				sawRet = true
			case "call":
				sawCall = true
			}
		}
	}
	if !sawRet || !sawCall {
		t.Errorf("ret unwound: %v, call unwound: %v; stats %+v", sawRet, sawCall, rep.Stats)
	}
	if rep.FullReconstruction == nil {
		t.Errorf("expected full reconstruction of this short execution; stats %+v", rep.Stats)
	}
}

func TestFullReconstructionOfShortProgram(t *testing.T) {
	src := `
.global g 1
func main:
    const r1, 3
    storeg r1, &g
    loadg r2, &g
    addi r2, r2, -3
    assert r2
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{})
	eng := core.New(p, core.Options{MaxDepth: 6})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The whole execution is one partial block from the entry: the root
	// IS the full reconstruction; accept either representation.
	if rep.FullReconstruction == nil && len(rep.Suffixes) == 0 {
		t.Fatalf("nothing reconstructed; stats %+v", rep.Stats)
	}
}

func TestHardwareInconsistencyDetected(t *testing.T) {
	// Corrupt the dump: the program provably wrote 5 into g just before
	// the failure, but the dump says 6 — a memory bit flip. No feasible
	// suffix exists.
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    const r2, 0
    assert r2
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{})
	addr, _ := p.GlobalAddr("g")
	d.Mem.Store(addr, 6) // inject the "bit flip"
	eng := core.New(p, core.Options{MaxDepth: 6})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !rep.HardwareSuspect {
		t.Errorf("hardware error not flagged; stats %+v, suffixes %d", rep.Stats, len(rep.Suffixes))
	}
}

func TestNullDerefFaultConstraint(t *testing.T) {
	// The faulting address must be reconstructed: r2 gets its value from
	// an input; the fault constraint pins it to the dumped fault address.
	src := `
func main:
    input r2, 0
    load r3, r2, 0
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{Inputs: map[int64][]int64{0: {3}}})
	if d.Fault.Kind != coredump.FaultNullDeref || d.Fault.Addr != 3 {
		t.Fatalf("fault = %v", d.Fault)
	}
	eng := core.New(p, core.Options{MaxDepth: 3})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("no suffix; stats %+v", rep.Stats)
	}
	syn, err := eng.Concretize(rep.Suffixes[0], d)
	if err != nil {
		t.Fatalf("Concretize: %v", err)
	}
	if len(syn.Suffix.Inputs) != 1 || syn.Suffix.Inputs[0].Value != 3 {
		t.Fatalf("inputs = %v, want the faulting address 3", syn.Suffix.Inputs)
	}
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil || rr.Divergence != nil || !rr.Matches {
		t.Fatalf("replay: err=%v div=%v matches=%v", err, rr.Divergence, rr.Matches)
	}
}

func TestSpawnUnwinding(t *testing.T) {
	// The child thread crashes immediately; unwinding must cross the
	// spawn edge and reconstruct the argument handoff.
	src := `
func main:
    const r2, 0
    spawn worker, r2
wait:
    jmp wait
func worker:
    load r3, r0, 0
    halt
`
	p := asm.MustAssemble(src)
	d, _ := crash(t, src, vm.Config{Seed: 1, PreemptPct: 50, MaxSteps: 10000})
	if d.Fault.Kind != coredump.FaultNullDeref {
		t.Fatalf("fault = %v", d.Fault)
	}
	eng := core.New(p, core.Options{MaxDepth: 6})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	sawSpawn := false
	for _, n := range rep.Suffixes {
		for _, s := range n.Steps() {
			if s.Kind == core.StepSpawn {
				sawSpawn = true
			}
		}
	}
	if !sawSpawn {
		t.Errorf("spawn edge never unwound; stats %+v", rep.Stats)
	}
}

package coredump

import (
	"bytes"
	"math/rand"
	"testing"

	"res/internal/mem"
)

// FuzzDumpRoundTrip guards the serialization the content-addressed store
// depends on: serialized bytes are the dump's identity, so any input that
// decodes must re-encode to a canonical form that survives another
// decode/encode cycle bit-for-bit. A violation would make identical dumps
// hash differently (cache misses forever) or, worse, different dumps
// collide.
func FuzzDumpRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		b, err := sampleDump(rand.New(rand.NewSource(seed))).Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// A minimal dump: zero threads, empty everything.
	empty := &Dump{Mem: mem.NewImage(1), Locks: map[uint32]int{}}
	if b, err := empty.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add([]byte("RESDUMP1"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data)
		if err != nil {
			return // not a dump; rejecting is the correct behavior
		}
		canon, err := d.Marshal()
		if err != nil {
			t.Fatalf("decoded dump failed to re-encode: %v", err)
		}
		d2, err := Unmarshal(canon)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		// Canonical form is a fixed point: encode(decode(canon)) == canon.
		canon2, err := d2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %x\nsecond: %x", canon, canon2)
		}
		// And decoding preserves every field the encoder writes.
		if d2.Fault != d.Fault || d2.Steps != d.Steps ||
			len(d2.Threads) != len(d.Threads) || len(d2.Heap) != len(d.Heap) ||
			len(d2.Outputs) != len(d.Outputs) || len(d2.LBR) != len(d.LBR) ||
			len(d2.Locks) != len(d.Locks) {
			t.Fatalf("round trip changed the dump: %+v vs %+v", d2, d)
		}
		for i := range d.Threads {
			if d2.Threads[i] != d.Threads[i] {
				t.Fatalf("thread %d changed: %+v vs %+v", i, d2.Threads[i], d.Threads[i])
			}
		}
		for a, v := range d.Locks {
			if d2.Locks[a] != v {
				t.Fatalf("lock %d changed", a)
			}
		}
		if d.Mem != nil && d2.Mem != nil {
			if diff := d2.Mem.Diff(d.Mem); len(diff) != 0 {
				t.Fatalf("memory image changed at %v", diff)
			}
		}
	})
}

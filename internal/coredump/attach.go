package coredump

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Attachment container: a dump plus named opaque attachments (evidence
// wire bytes, and whatever future producers add) in one file. The dump's
// content identity is unchanged — fingerprints hash the inner dump bytes
// alone — so attaching evidence never perturbs dump-level dedup; the
// attachments carry their own identity (the evidence fingerprint) into
// the analysis cache key instead.
const attachMagic = "RESDATT1"

// maxAttachment bounds one attachment's size (decode hardening).
const maxAttachment = 1 << 26

// WriteAttached serializes a dump-with-attachments container: the
// serialized dump followed by the attachments in sorted-name order (the
// canonical form).
func WriteAttached(w io.Writer, dump []byte, attachments map[string][]byte) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, attachMagic); err != nil {
		return err
	}
	e := &encoder{w: bw}
	e.uvarint(uint64(len(dump)))
	if e.err == nil {
		_, e.err = bw.Write(dump)
	}
	names := make([]string, 0, len(attachments))
	for name := range attachments {
		names = append(names, name)
	}
	sort.Strings(names)
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		e.str(name)
		e.uvarint(uint64(len(attachments[name])))
		if e.err == nil {
			_, e.err = bw.Write(attachments[name])
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// EncodeAttached is WriteAttached to bytes.
func EncodeAttached(dump []byte, attachments map[string][]byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteAttached(&buf, dump, attachments); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeAttached splits a container into the dump bytes and the
// attachment map. A plain dump (RESDUMP1 magic) passes through with nil
// attachments, so every consumer of dump files accepts both forms.
func DecodeAttached(b []byte) (dump []byte, attachments map[string][]byte, err error) {
	if len(b) < len(attachMagic) {
		return nil, nil, fmt.Errorf("coredump: short input")
	}
	if string(b[:len(dumpMagic)]) == dumpMagic {
		return b, nil, nil
	}
	if string(b[:len(attachMagic)]) != attachMagic {
		return nil, nil, fmt.Errorf("coredump: bad magic %q", b[:len(attachMagic)])
	}
	br := bufio.NewReader(bytes.NewReader(b[len(attachMagic):]))
	dec := &decoder{r: br}
	readBlob := func(what string) []byte {
		n := dec.uvarint()
		if dec.err != nil {
			return nil
		}
		if n > maxAttachment {
			dec.err = fmt.Errorf("%s too long (%d)", what, n)
			return nil
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(br, blob); err != nil {
			dec.err = err
			return nil
		}
		return blob
	}
	dump = readBlob("dump")
	n := dec.uvarint()
	const maxAttachments = 1 << 8
	if dec.err == nil && n > maxAttachments {
		dec.err = fmt.Errorf("unreasonable attachment count %d", n)
	}
	for i := uint64(0); i < n && dec.err == nil; i++ {
		name := dec.str()
		blob := readBlob("attachment " + name)
		if dec.err != nil {
			break
		}
		if attachments == nil {
			attachments = make(map[string][]byte, n)
		}
		if _, dup := attachments[name]; dup {
			dec.err = fmt.Errorf("duplicate attachment %q", name)
			break
		}
		attachments[name] = blob
	}
	if dec.err != nil {
		return nil, nil, fmt.Errorf("coredump: attachments: %w", dec.err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("coredump: attachments: trailing bytes")
	}
	return dump, attachments, nil
}

// DecodeAttachedLenient is DecodeAttached with degraded-mode recovery:
// when the container is damaged but the dump section itself is intact
// (the dump is length-prefixed first, so attachment-area corruption
// cannot reach it), the dump is returned with nil attachments and a
// non-empty warning instead of an error. A crash dump whose evidence
// sidecar rotted is still a crash dump — the analysis runs without the
// pruning rather than not at all. Damage to the dump section itself
// still fails.
func DecodeAttachedLenient(b []byte) (dump []byte, attachments map[string][]byte, warn string, err error) {
	dump, attachments, err = DecodeAttached(b)
	if err == nil {
		return dump, attachments, "", nil
	}
	if len(b) < len(attachMagic) || string(b[:len(attachMagic)]) != attachMagic {
		return nil, nil, "", err
	}
	br := bufio.NewReader(bytes.NewReader(b[len(attachMagic):]))
	dec := &decoder{r: br}
	n := dec.uvarint()
	if dec.err != nil || n > maxAttachment {
		return nil, nil, "", err
	}
	blob := make([]byte, n)
	if _, rerr := io.ReadFull(br, blob); rerr != nil {
		return nil, nil, "", err
	}
	return blob, nil, fmt.Sprintf("attachments dropped (%v)", err), nil
}

// EvidenceAttachment is the well-known attachment name for evidence wire
// bytes (internal/evidence's canonical encoding).
const EvidenceAttachment = "evidence"

// CheckpointAttachment is the well-known attachment name for checkpoint
// ring wire bytes (internal/checkpoint's canonical encoding).
const CheckpointAttachment = "checkpoints"

// PatchAttachment is the well-known attachment name for a candidate-fix
// patch (internal/fixverify's canonical RESPATCH1 encoding or its text
// form) riding alongside the dump it claims to fix.
const PatchAttachment = "patch"

// MinimalReproAttachment is the well-known attachment name for a
// delta-debugged minimal repro (internal/minimize's canonical RESMINR1
// encoding) derived from the dump it travels with.
const MinimalReproAttachment = "minrepro"

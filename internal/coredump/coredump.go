// Package coredump models the snapshot of a failed execution: the full
// memory image, per-thread register files, lock table, heap metadata, the
// fault descriptor, and the cheap post-crash breadcrumbs the paper
// describes (output-log tail and the hardware last-branch-record ring).
//
// A Dump is the sole runtime input to RES: there is no recorded trace.
package coredump

import (
	"fmt"

	"res/internal/isa"
	"res/internal/mem"
	"res/internal/prog"
)

// FaultKind classifies why the execution stopped.
type FaultKind uint8

const (
	FaultNone         FaultKind = iota
	FaultNullDeref              // access inside the null guard page
	FaultOOB                    // access outside mapped memory
	FaultHeapOOB                // checked-mode access outside any live object
	FaultUseAfterFree           // checked-mode access to a freed object
	FaultDoubleFree
	FaultBadFree // free of a non-object address
	FaultDivByZero
	FaultAssert
	FaultDeadlock  // all live threads blocked on locks
	FaultBadUnlock // unlock of a mutex not held by the thread
	FaultRelock    // lock of a mutex already held by the thread
	FaultStackOverflow
	FaultBadJump     // control transferred outside the code
	FaultOutOfMemory // heap exhausted
	FaultBudget      // execution budget exhausted (not a program failure)
)

var faultNames = map[FaultKind]string{
	FaultNone: "none", FaultNullDeref: "null-deref", FaultOOB: "out-of-bounds",
	FaultHeapOOB: "heap-out-of-bounds", FaultUseAfterFree: "use-after-free",
	FaultDoubleFree: "double-free", FaultBadFree: "bad-free",
	FaultDivByZero: "div-by-zero", FaultAssert: "assert-failed",
	FaultDeadlock: "deadlock", FaultBadUnlock: "bad-unlock",
	FaultRelock: "relock", FaultStackOverflow: "stack-overflow",
	FaultBadJump: "bad-jump", FaultOutOfMemory: "out-of-memory",
	FaultBudget: "budget-exhausted",
}

func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes the failure that produced the dump.
type Fault struct {
	Kind   FaultKind
	Thread int    // faulting thread id (-1 for deadlock/budget)
	PC     int    // faulting instruction index
	Addr   uint32 // offending address, when applicable
	Detail string
}

func (f Fault) String() string {
	s := fmt.Sprintf("%v at pc=%d tid=%d", f.Kind, f.PC, f.Thread)
	if f.Addr != 0 {
		s += fmt.Sprintf(" addr=%d", f.Addr)
	}
	if f.Detail != "" {
		s += " (" + f.Detail + ")"
	}
	return s
}

// ThreadState is the scheduling state of a thread at dump time.
type ThreadState uint8

const (
	ThreadRunnable ThreadState = iota
	ThreadBlocked              // waiting on a mutex
	ThreadExited
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunnable:
		return "runnable"
	case ThreadBlocked:
		return "blocked"
	case ThreadExited:
		return "exited"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Thread is the register file and scheduling state of one thread.
type Thread struct {
	ID       int
	Regs     [isa.NumRegs]int64
	PC       int
	State    ThreadState
	WaitAddr uint32 // mutex address when State == ThreadBlocked
}

// HeapObject is the allocator's record of one allocation.
type HeapObject struct {
	Base    uint32
	Size    uint32
	Freed   bool
	AllocPC int
	FreePC  int
}

// Contains reports whether addr falls inside the object.
func (h HeapObject) Contains(addr uint32) bool {
	return addr >= h.Base && addr < h.Base+h.Size
}

// OutputRec is one entry of the program's output log ("existing error
// logs" in the paper's breadcrumb discussion).
type OutputRec struct {
	PC    int
	Tag   int64
	Value int64
}

// BranchRec is one LBR entry: a retired control transfer.
type BranchRec struct {
	From int // pc of the transferring instruction
	To   int // destination pc
}

// Dump is the complete post-mortem snapshot.
type Dump struct {
	Mem     *mem.Image
	Threads []Thread
	Locks   map[uint32]int // held mutexes: address -> owner tid
	Heap    []HeapObject
	Fault   Fault

	// Breadcrumbs (cheap to collect after the crash; optional for RES).
	Outputs []OutputRec
	LBR     []BranchRec // oldest first

	// Steps is the number of basic blocks executed before the failure.
	// It is diagnostic metadata (used by experiment harnesses to report
	// execution length); RES never reads it.
	Steps uint64
}

// Clone returns a deep copy of the dump.
func (d *Dump) Clone() *Dump {
	nd := &Dump{
		Mem:     d.Mem.Clone(),
		Threads: append([]Thread(nil), d.Threads...),
		Locks:   make(map[uint32]int, len(d.Locks)),
		Heap:    append([]HeapObject(nil), d.Heap...),
		Fault:   d.Fault,
		Outputs: append([]OutputRec(nil), d.Outputs...),
		LBR:     append([]BranchRec(nil), d.LBR...),
		Steps:   d.Steps,
	}
	for k, v := range d.Locks {
		nd.Locks[k] = v
	}
	return nd
}

// Thread returns the thread record with the given id.
func (d *Dump) Thread(id int) (*Thread, error) {
	for i := range d.Threads {
		if d.Threads[i].ID == id {
			return &d.Threads[i], nil
		}
	}
	return nil, fmt.Errorf("coredump: no thread %d", id)
}

// FaultingThread returns the thread that faulted, or nil for global faults
// (deadlock, budget).
func (d *Dump) FaultingThread() *Thread {
	t, err := d.Thread(d.Fault.Thread)
	if err != nil {
		return nil
	}
	return t
}

// LiveObjectAt returns the live heap object containing addr, if any.
func (d *Dump) LiveObjectAt(addr uint32) (HeapObject, bool) {
	for _, h := range d.Heap {
		if !h.Freed && h.Contains(addr) {
			return h, true
		}
	}
	return HeapObject{}, false
}

// Frame is one reconstructed stack frame.
type Frame struct {
	Func   string
	PC     int // pc within the function: the faulting pc for the top
	CallPC int // pc of the call instruction for non-top frames, -1 for top
}

// Walk reconstructs the call stack of thread tid using the return
// addresses stored in stack memory, exactly as a debugger would: scan from
// SP toward the stack top, treating any word w for which code[w-1] is a
// CALL instruction as a return address. This heuristic is what WER-style
// call-stack bucketing consumes.
func (d *Dump) Walk(p *prog.Program, tid int) ([]Frame, error) {
	t, err := d.Thread(tid)
	if err != nil {
		return nil, err
	}
	var frames []Frame
	fn, err := p.FuncAt(t.PC)
	if err != nil {
		return nil, fmt.Errorf("coredump: thread %d pc %d: %w", tid, t.PC, err)
	}
	frames = append(frames, Frame{Func: fn.Name, PC: t.PC, CallPC: -1})

	sp := uint64(t.Regs[isa.SP])
	top := uint64(p.Layout.StackTop(tid))
	for a := sp; a < top; a++ {
		if a >= uint64(d.Mem.Size()) {
			break
		}
		w := d.Mem.Load(uint32(a))
		if w <= 0 || w > int64(len(p.Code)) {
			continue
		}
		ret := int(w)
		if ret-1 < 0 || ret-1 >= len(p.Code) {
			continue
		}
		if p.Code[ret-1].Op != isa.OpCall {
			continue
		}
		cfn, err := p.FuncAt(ret - 1)
		if err != nil {
			continue
		}
		frames = append(frames, Frame{Func: cfn.Name, PC: ret, CallPC: ret - 1})
		const maxFrames = 64
		if len(frames) >= maxFrames {
			break
		}
	}
	return frames, nil
}

// StackKey renders the walked stack as a bucketing key: the fault kind plus
// the function names and call sites, mirroring WER's "bucket by failure
// point and stack" heuristic.
func StackKey(fault Fault, frames []Frame) string {
	key := fault.Kind.String()
	for _, f := range frames {
		key += fmt.Sprintf("|%s+%d", f.Func, f.CallPC)
	}
	return key
}

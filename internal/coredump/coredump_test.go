package coredump

import (
	"math/rand"
	"strings"
	"testing"

	"res/internal/mem"
)

func sampleDump(rng *rand.Rand) *Dump {
	d := &Dump{
		Mem:   mem.NewImage(256),
		Locks: map[uint32]int{40: 1},
		Heap: []HeapObject{
			{Base: 30, Size: 4, AllocPC: 2, FreePC: -1},
			{Base: 35, Size: 2, Freed: true, AllocPC: 3, FreePC: 9},
		},
		Fault:   Fault{Kind: FaultAssert, Thread: 1, PC: 17, Addr: 5, Detail: "x"},
		Outputs: []OutputRec{{PC: 4, Tag: 9, Value: -3}},
		LBR:     []BranchRec{{From: 3, To: 7}, {From: 7, To: 3}},
		Steps:   991,
	}
	for i := 0; i < 2; i++ {
		th := Thread{ID: i, PC: 10 + i, State: ThreadRunnable}
		for r := range th.Regs {
			th.Regs[r] = rng.Int63() - rng.Int63()
		}
		d.Threads = append(d.Threads, th)
	}
	d.Mem.Store(33, 123)
	return d
}

func TestRoundTrip(t *testing.T) {
	d := sampleDump(rand.New(rand.NewSource(4)))
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault != d.Fault || got.Steps != d.Steps {
		t.Errorf("fault/steps mismatch: %+v vs %+v", got.Fault, d.Fault)
	}
	if len(got.Threads) != 2 || got.Threads[1] != d.Threads[1] {
		t.Errorf("threads mismatch")
	}
	if got.Locks[40] != 1 || len(got.Locks) != 1 {
		t.Errorf("locks = %v", got.Locks)
	}
	if len(got.Heap) != 2 || got.Heap[1] != d.Heap[1] {
		t.Errorf("heap = %+v", got.Heap)
	}
	if len(got.Outputs) != 1 || got.Outputs[0] != d.Outputs[0] {
		t.Errorf("outputs = %+v", got.Outputs)
	}
	if len(got.LBR) != 2 || got.LBR[0] != d.LBR[0] {
		t.Errorf("lbr = %+v", got.LBR)
	}
	if diff := got.Mem.Diff(d.Mem); len(diff) != 0 {
		t.Errorf("mem differs at %v", diff)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	d := sampleDump(rand.New(rand.NewSource(5)))
	b, _ := d.Marshal()
	for cut := 1; cut < len(b); cut += 7 {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("NOTADUMPxxxx")); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sampleDump(rand.New(rand.NewSource(6)))
	c := d.Clone()
	c.Mem.Store(33, 999)
	c.Locks[41] = 0
	c.Threads[0].Regs[0] = 42
	if d.Mem.Load(33) == 999 || len(d.Locks) != 1 || d.Threads[0].Regs[0] == 42 {
		t.Error("clone shares state")
	}
}

func TestThreadLookup(t *testing.T) {
	d := sampleDump(rand.New(rand.NewSource(7)))
	th, err := d.Thread(1)
	if err != nil || th.ID != 1 {
		t.Errorf("Thread(1) = %v, %v", th, err)
	}
	if _, err := d.Thread(9); err == nil {
		t.Error("Thread(9) should fail")
	}
	if ft := d.FaultingThread(); ft == nil || ft.ID != 1 {
		t.Errorf("FaultingThread = %v", ft)
	}
}

func TestLiveObjectAt(t *testing.T) {
	d := sampleDump(rand.New(rand.NewSource(8)))
	if _, ok := d.LiveObjectAt(31); !ok {
		t.Error("address in live object not found")
	}
	if _, ok := d.LiveObjectAt(36); ok {
		t.Error("freed object reported live")
	}
	if _, ok := d.LiveObjectAt(200); ok {
		t.Error("unallocated address reported live")
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := FaultNone; k <= FaultBudget; k++ {
		if strings.HasPrefix(k.String(), "fault(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
	f := Fault{Kind: FaultNullDeref, Thread: 2, PC: 9, Addr: 3, Detail: "d"}
	s := f.String()
	for _, want := range []string{"null-deref", "pc=9", "tid=2", "addr=3", "(d)"} {
		if !strings.Contains(s, want) {
			t.Errorf("fault string %q missing %q", s, want)
		}
	}
}

func TestStackKeyStability(t *testing.T) {
	f := Fault{Kind: FaultAssert}
	frames := []Frame{{Func: "inner", PC: 5, CallPC: -1}, {Func: "main", PC: 2, CallPC: 1}}
	k1 := StackKey(f, frames)
	k2 := StackKey(f, frames)
	if k1 != k2 || !strings.Contains(k1, "inner") || !strings.Contains(k1, "main") {
		t.Errorf("key = %q", k1)
	}
	// Different stack, different key.
	k3 := StackKey(f, frames[:1])
	if k3 == k1 {
		t.Error("distinct stacks share a key")
	}
}

package coredump

import (
	"bytes"
	"testing"
)

// TestDecodeAttachedLenient: damage confined to the attachment area
// degrades — the dump comes back with a warning — while damage to the
// dump section itself still fails, and intact containers carry no
// warning.
func TestDecodeAttachedLenient(t *testing.T) {
	dump := []byte("RESDUMP1-pretend-dump-payload")
	att := map[string][]byte{
		EvidenceAttachment:   bytes.Repeat([]byte{0xEE}, 64),
		CheckpointAttachment: bytes.Repeat([]byte{0xCC}, 64),
	}
	full, err := EncodeAttached(dump, att)
	if err != nil {
		t.Fatal(err)
	}

	// Intact container: both attachments, no warning.
	d, got, warn, err := DecodeAttachedLenient(full)
	if err != nil || warn != "" {
		t.Fatalf("intact container: warn=%q err=%v", warn, err)
	}
	if !bytes.Equal(d, dump) || len(got) != 2 {
		t.Fatalf("intact container decoded wrong: %d attachments", len(got))
	}

	// Truncate inside the attachment area (past the dump section): the
	// strict decoder fails, the lenient one recovers the dump.
	dumpEnd := len(full) - 40
	if _, _, err := DecodeAttached(full[:dumpEnd]); err == nil {
		t.Fatal("strict decode accepted a truncated container")
	}
	d, got, warn, err = DecodeAttachedLenient(full[:dumpEnd])
	if err != nil {
		t.Fatalf("lenient decode failed on attachment-area damage: %v", err)
	}
	if !bytes.Equal(d, dump) {
		t.Fatal("lenient decode corrupted the dump bytes")
	}
	if got != nil || warn == "" {
		t.Fatalf("degraded decode: attachments=%v warn=%q", got, warn)
	}

	// Truncate inside the dump section: nothing to salvage.
	if _, _, _, err := DecodeAttachedLenient(full[:len(attachMagic)+3]); err == nil {
		t.Fatal("lenient decode invented a dump from a destroyed container")
	}

	// A plain dump passes through untouched.
	d, got, warn, err = DecodeAttachedLenient(dump)
	if err != nil || warn != "" || got != nil || !bytes.Equal(d, dump) {
		t.Fatalf("plain dump pass-through broken: warn=%q err=%v", warn, err)
	}
}

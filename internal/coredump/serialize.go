package coredump

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"res/internal/isa"
	"res/internal/mem"
)

const dumpMagic = "RESDUMP1"

type encoder struct {
	w       io.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.scratch[:], v)
	_, e.err = e.w.Write(e.scratch[:n])
}

func (e *encoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.scratch[:], v)
	_, e.err = e.w.Write(e.scratch[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.err = err
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.err = err
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	const maxStr = 1 << 20
	if n > maxStr {
		d.err = fmt.Errorf("coredump: string too long (%d)", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

// Write serializes the dump to w.
func (d *Dump) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, dumpMagic); err != nil {
		return err
	}
	e := &encoder{w: bw}

	e.uvarint(uint64(d.Fault.Kind))
	e.varint(int64(d.Fault.Thread))
	e.varint(int64(d.Fault.PC))
	e.uvarint(uint64(d.Fault.Addr))
	e.str(d.Fault.Detail)
	e.uvarint(d.Steps)

	e.uvarint(uint64(len(d.Threads)))
	for _, t := range d.Threads {
		e.varint(int64(t.ID))
		for _, r := range t.Regs {
			e.varint(r)
		}
		e.varint(int64(t.PC))
		e.uvarint(uint64(t.State))
		e.uvarint(uint64(t.WaitAddr))
	}

	// Locks in deterministic order.
	addrs := make([]uint32, 0, len(d.Locks))
	for a := range d.Locks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.uvarint(uint64(len(addrs)))
	for _, a := range addrs {
		e.uvarint(uint64(a))
		e.varint(int64(d.Locks[a]))
	}

	e.uvarint(uint64(len(d.Heap)))
	for _, h := range d.Heap {
		e.uvarint(uint64(h.Base))
		e.uvarint(uint64(h.Size))
		if h.Freed {
			e.uvarint(1)
		} else {
			e.uvarint(0)
		}
		e.varint(int64(h.AllocPC))
		e.varint(int64(h.FreePC))
	}

	e.uvarint(uint64(len(d.Outputs)))
	for _, o := range d.Outputs {
		e.varint(int64(o.PC))
		e.varint(o.Tag)
		e.varint(o.Value)
	}

	e.uvarint(uint64(len(d.LBR)))
	for _, b := range d.LBR {
		e.varint(int64(b.From))
		e.varint(int64(b.To))
	}
	if e.err != nil {
		return e.err
	}
	if _, err := d.Mem.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a dump written by Write.
func Read(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("coredump: reading magic: %w", err)
	}
	if string(magic) != dumpMagic {
		return nil, fmt.Errorf("coredump: bad magic %q", magic)
	}
	dec := &decoder{r: br}
	d := &Dump{Locks: make(map[uint32]int)}

	d.Fault.Kind = FaultKind(dec.uvarint())
	d.Fault.Thread = int(dec.varint())
	d.Fault.PC = int(dec.varint())
	d.Fault.Addr = uint32(dec.uvarint())
	d.Fault.Detail = dec.str()
	d.Steps = dec.uvarint()

	nThreads := dec.uvarint()
	const maxThreads = 1 << 12
	if nThreads > maxThreads {
		return nil, fmt.Errorf("coredump: unreasonable thread count %d", nThreads)
	}
	for i := uint64(0); i < nThreads && dec.err == nil; i++ {
		var t Thread
		t.ID = int(dec.varint())
		for r := 0; r < isa.NumRegs; r++ {
			t.Regs[r] = dec.varint()
		}
		t.PC = int(dec.varint())
		t.State = ThreadState(dec.uvarint())
		t.WaitAddr = uint32(dec.uvarint())
		d.Threads = append(d.Threads, t)
	}

	nLocks := dec.uvarint()
	for i := uint64(0); i < nLocks && dec.err == nil; i++ {
		a := uint32(dec.uvarint())
		d.Locks[a] = int(dec.varint())
	}

	nHeap := dec.uvarint()
	const maxHeap = 1 << 24
	if nHeap > maxHeap {
		return nil, fmt.Errorf("coredump: unreasonable heap count %d", nHeap)
	}
	for i := uint64(0); i < nHeap && dec.err == nil; i++ {
		var h HeapObject
		h.Base = uint32(dec.uvarint())
		h.Size = uint32(dec.uvarint())
		h.Freed = dec.uvarint() == 1
		h.AllocPC = int(dec.varint())
		h.FreePC = int(dec.varint())
		d.Heap = append(d.Heap, h)
	}

	nOut := dec.uvarint()
	const maxOut = 1 << 24
	if nOut > maxOut {
		return nil, fmt.Errorf("coredump: unreasonable output count %d", nOut)
	}
	for i := uint64(0); i < nOut && dec.err == nil; i++ {
		var o OutputRec
		o.PC = int(dec.varint())
		o.Tag = dec.varint()
		o.Value = dec.varint()
		d.Outputs = append(d.Outputs, o)
	}

	nLBR := dec.uvarint()
	const maxLBR = 1 << 16
	if nLBR > maxLBR {
		return nil, fmt.Errorf("coredump: unreasonable LBR count %d", nLBR)
	}
	for i := uint64(0); i < nLBR && dec.err == nil; i++ {
		var b BranchRec
		b.From = int(dec.varint())
		b.To = int(dec.varint())
		d.LBR = append(d.LBR, b)
	}
	if dec.err != nil {
		return nil, fmt.Errorf("coredump: %w", dec.err)
	}

	img, err := mem.ReadImage(br)
	if err != nil {
		return nil, err
	}
	d.Mem = img
	return d, nil
}

// Marshal returns the serialized dump bytes.
func (d *Dump) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a dump from bytes.
func Unmarshal(b []byte) (*Dump, error) {
	return Read(bytes.NewReader(b))
}

// Package asm implements a two-pass textual assembler for the RES virtual
// machine ISA. The source format:
//
//	; comments run to end of line (also #)
//	.global counter 1            ; reserve 1 word
//	.global table 4 = 7 8 9 10   ; reserve 4 words with initial values
//
//	func main:
//	    const r1, 3
//	loop:
//	    addi r1, r1, -1
//	    br r1, loop, done
//	done:
//	    halt
//
// Operands are registers (r0..r15, sp), signed immediates (decimal or
// 0x-hex), `&name` for the address of a global, or label/function names
// for control-flow targets. Labels are file-scoped and must be unique.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"res/internal/isa"
	"res/internal/prog"
)

// Error is an assembly error annotated with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type line struct {
	num    int
	fields []string // mnemonic + operands, commas stripped
}

type pendingGlobal struct {
	name string
	size uint32
	init []int64
	line int
}

// Assemble parses src and returns the resolved program, using the default
// layout sized to the declared globals.
func Assemble(src string) (*prog.Program, error) {
	return AssembleWithLayout(src, nil)
}

// AssembleWithLayout is Assemble with an explicit layout override. If
// layout is nil, prog.DefaultLayout is used. The layout's HeapBase is
// adjusted to sit after the declared globals.
func AssembleWithLayout(src string, layout *prog.Layout) (*prog.Program, error) {
	lines, err := tokenize(src)
	if err != nil {
		return nil, err
	}

	// Pass 1: globals, labels, functions, instruction counting.
	var globals []pendingGlobal
	globalNames := make(map[string]int)
	labels := make(map[string]int) // label -> instruction index
	labelLine := make(map[string]int)
	funcs := make(map[string]int)
	pc := 0
	for _, ln := range lines {
		f := ln.fields
		switch {
		case f[0] == ".global":
			g, err := parseGlobal(ln)
			if err != nil {
				return nil, err
			}
			if _, dup := globalNames[g.name]; dup {
				return nil, errf(ln.num, "duplicate global %q", g.name)
			}
			globalNames[g.name] = len(globals)
			globals = append(globals, g)
		case f[0] == "func":
			if len(f) != 2 || !strings.HasSuffix(f[1], ":") {
				return nil, errf(ln.num, "func syntax: func name:")
			}
			name := strings.TrimSuffix(f[1], ":")
			if err := defineLabel(labels, labelLine, name, pc, ln.num); err != nil {
				return nil, err
			}
			if _, dup := funcs[name]; dup {
				return nil, errf(ln.num, "duplicate function %q", name)
			}
			funcs[name] = pc
		case len(f) == 1 && strings.HasSuffix(f[0], ":"):
			name := strings.TrimSuffix(f[0], ":")
			if name == "" {
				return nil, errf(ln.num, "empty label")
			}
			if err := defineLabel(labels, labelLine, name, pc, ln.num); err != nil {
				return nil, err
			}
		default:
			pc++
		}
	}

	// Assign global addresses.
	var lay prog.Layout
	var totalGlobals uint32
	for _, g := range globals {
		totalGlobals += g.size
	}
	if layout != nil {
		lay = *layout
		lay.HeapBase = lay.GlobalBase + totalGlobals
	} else {
		lay = prog.DefaultLayout(totalGlobals)
	}
	var pglobals []prog.Global
	addr := lay.GlobalBase
	globalAddr := make(map[string]uint32, len(globals))
	for _, g := range globals {
		pglobals = append(pglobals, prog.Global{Name: g.name, Addr: addr, Size: g.size, Init: g.init})
		globalAddr[g.name] = addr
		addr += g.size
	}

	// Pass 2: emit instructions.
	a := &assembler{labels: labels, funcs: funcs, globalAddr: globalAddr}
	code := make([]isa.Instr, 0, pc)
	for _, ln := range lines {
		f := ln.fields
		if f[0] == ".global" || f[0] == "func" && strings.HasSuffix(f[len(f)-1], ":") {
			continue
		}
		if len(f) == 1 && strings.HasSuffix(f[0], ":") {
			continue
		}
		in, err := a.emit(ln)
		if err != nil {
			return nil, err
		}
		code = append(code, in)
	}

	p, err := prog.Build(code, funcs, pglobals, lay)
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func defineLabel(labels, labelLine map[string]int, name string, pc, lineNum int) error {
	if prev, dup := labels[name]; dup {
		_ = prev
		return errf(lineNum, "duplicate label %q (first defined at line %d)", name, labelLine[name])
	}
	labels[name] = pc
	labelLine[name] = lineNum
	return nil
}

func tokenize(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		s := raw
		if idx := strings.IndexAny(s, ";#"); idx >= 0 {
			s = s[:idx]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		s = strings.ReplaceAll(s, ",", " ")
		fields := strings.Fields(s)
		out = append(out, line{num: i + 1, fields: fields})
	}
	return out, nil
}

func parseGlobal(ln line) (pendingGlobal, error) {
	f := ln.fields
	// .global name size [= v0 v1 ...]
	if len(f) < 3 {
		return pendingGlobal{}, errf(ln.num, ".global syntax: .global name size [= values...]")
	}
	size, err := strconv.ParseUint(f[2], 0, 32)
	if err != nil || size == 0 {
		return pendingGlobal{}, errf(ln.num, "bad global size %q", f[2])
	}
	g := pendingGlobal{name: f[1], size: uint32(size), line: ln.num}
	if len(f) > 3 {
		if f[3] != "=" {
			return pendingGlobal{}, errf(ln.num, "expected '=' before initial values")
		}
		for _, v := range f[4:] {
			x, err := strconv.ParseInt(v, 0, 64)
			if err != nil {
				return pendingGlobal{}, errf(ln.num, "bad initial value %q", v)
			}
			g.init = append(g.init, x)
		}
		if uint32(len(g.init)) > g.size {
			return pendingGlobal{}, errf(ln.num, "%d initial values exceed size %d", len(g.init), g.size)
		}
	}
	return g, nil
}

type assembler struct {
	labels     map[string]int
	funcs      map[string]int
	globalAddr map[string]uint32
}

func (a *assembler) reg(s string, ln int) (isa.Reg, error) {
	if s == "sp" {
		return isa.SP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, errf(ln, "bad register %q", s)
}

func (a *assembler) imm(s string, ln int) (int64, error) {
	if strings.HasPrefix(s, "&") {
		addr, ok := a.globalAddr[s[1:]]
		if !ok {
			return 0, errf(ln, "unknown global %q", s[1:])
		}
		return int64(addr), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, errf(ln, "bad immediate %q", s)
	}
	return v, nil
}

func (a *assembler) target(s string, ln int) (int, error) {
	if t, ok := a.labels[s]; ok {
		return t, nil
	}
	return 0, errf(ln, "unknown label %q", s)
}

func (a *assembler) funcTarget(s string, ln int) (int, error) {
	if t, ok := a.funcs[s]; ok {
		return t, nil
	}
	return 0, errf(ln, "unknown function %q", s)
}

func (a *assembler) emit(ln line) (isa.Instr, error) {
	f := ln.fields
	op, ok := isa.ByName(f[0])
	if !ok {
		return isa.Instr{}, errf(ln.num, "unknown mnemonic %q", f[0])
	}
	args := f[1:]
	need := func(n int) error {
		if len(args) != n {
			return errf(ln.num, "%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	in := isa.Instr{Op: op}
	var err error
	switch op {
	case isa.OpNop, isa.OpRet, isa.OpYield, isa.OpHalt:
		err = need(0)
	case isa.OpConst:
		if err = need(2); err == nil {
			if in.Rd, err = a.reg(args[0], ln.num); err == nil {
				in.Imm, err = a.imm(args[1], ln.num)
			}
		}
	case isa.OpMov, isa.OpNot, isa.OpNeg, isa.OpAlloc:
		if err = need(2); err == nil {
			if in.Rd, err = a.reg(args[0], ln.num); err == nil {
				in.Rs1, err = a.reg(args[1], ln.num)
			}
		}
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpMod, isa.OpAnd,
		isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr,
		isa.OpCmpEq, isa.OpCmpNe, isa.OpCmpLt, isa.OpCmpLe:
		if err = need(3); err == nil {
			if in.Rd, err = a.reg(args[0], ln.num); err == nil {
				if in.Rs1, err = a.reg(args[1], ln.num); err == nil {
					in.Rs2, err = a.reg(args[2], ln.num)
				}
			}
		}
	case isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpXorI, isa.OpLoad:
		if err = need(3); err == nil {
			if in.Rd, err = a.reg(args[0], ln.num); err == nil {
				if in.Rs1, err = a.reg(args[1], ln.num); err == nil {
					in.Imm, err = a.imm(args[2], ln.num)
				}
			}
		}
	case isa.OpStore:
		if err = need(3); err == nil {
			if in.Rs1, err = a.reg(args[0], ln.num); err == nil {
				if in.Rs2, err = a.reg(args[1], ln.num); err == nil {
					in.Imm, err = a.imm(args[2], ln.num)
				}
			}
		}
	case isa.OpLoadG, isa.OpInput:
		if err = need(2); err == nil {
			if in.Rd, err = a.reg(args[0], ln.num); err == nil {
				in.Imm, err = a.imm(args[1], ln.num)
			}
		}
	case isa.OpStoreG, isa.OpOutput:
		if err = need(2); err == nil {
			if in.Rs1, err = a.reg(args[0], ln.num); err == nil {
				in.Imm, err = a.imm(args[1], ln.num)
			}
		}
	case isa.OpJmp:
		if err = need(1); err == nil {
			in.Sym = args[0]
			in.Target, err = a.target(args[0], ln.num)
		}
	case isa.OpBr:
		if err = need(3); err == nil {
			if in.Rs1, err = a.reg(args[0], ln.num); err == nil {
				in.Sym = args[1]
				if in.Target, err = a.target(args[1], ln.num); err == nil {
					in.Target2, err = a.target(args[2], ln.num)
				}
			}
		}
	case isa.OpCall:
		if err = need(1); err == nil {
			in.Sym = args[0]
			in.Target, err = a.funcTarget(args[0], ln.num)
		}
	case isa.OpSpawn:
		if err = need(2); err == nil {
			in.Sym = args[0]
			if in.Target, err = a.funcTarget(args[0], ln.num); err == nil {
				in.Rs1, err = a.reg(args[1], ln.num)
			}
		}
	case isa.OpFree, isa.OpLock, isa.OpUnlock, isa.OpAssert:
		if err = need(1); err == nil {
			in.Rs1, err = a.reg(args[0], ln.num)
		}
	default:
		err = errf(ln.num, "unhandled mnemonic %q", f[0])
	}
	if err != nil {
		return isa.Instr{}, err
	}
	return in, nil
}

// MustAssemble is Assemble that panics on error; for tests and examples.
func MustAssemble(src string) *prog.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

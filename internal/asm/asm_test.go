package asm

import (
	"strings"
	"testing"

	"res/internal/isa"
)

const simpleSrc = `
; a tiny counting program
.global counter 1
.global table 3 = 10 20 30

func main:
    const r1, 3
loop:
    loadg r2, &counter
    addi r2, r2, 1
    storeg r2, &counter
    addi r1, r1, -1
    br r1, loop, done
done:
    halt
`

func TestAssembleSimple(t *testing.T) {
	p, err := Assemble(simpleSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Code) != 7 {
		t.Fatalf("got %d instructions, want 7\n%s", len(p.Code), p.Disassemble())
	}
	if p.Code[0].Op != isa.OpConst || p.Code[0].Rd != 1 || p.Code[0].Imm != 3 {
		t.Errorf("instr 0 = %s", p.Code[0].String())
	}
	br := p.Code[5]
	if br.Op != isa.OpBr || br.Target != 1 || br.Target2 != 6 {
		t.Errorf("br = %+v", br)
	}
	ctr, err := p.GlobalAddr("counter")
	if err != nil || ctr != p.Layout.GlobalBase {
		t.Errorf("counter addr = %d, %v", ctr, err)
	}
	tbl, _ := p.GlobalAddr("table")
	if tbl != ctr+1 {
		t.Errorf("table addr = %d, want %d", tbl, ctr+1)
	}
	g := p.GlobalByName["table"]
	if len(g.Init) != 3 || g.Init[0] != 10 || g.Init[2] != 30 {
		t.Errorf("table init = %v", g.Init)
	}
	// The loadg should have resolved &counter.
	if p.Code[1].Op != isa.OpLoadG || p.Code[1].Imm != int64(ctr) {
		t.Errorf("loadg = %s", p.Code[1].String())
	}
}

func TestAssembleCFG(t *testing.T) {
	p := MustAssemble(simpleSrc)
	main := p.FuncByName["main"]
	if main == nil {
		t.Fatal("no main")
	}
	// Blocks: [const], [loadg..br], [halt]
	if len(main.Blocks) != 3 {
		t.Fatalf("got %d blocks:\n%s", len(main.Blocks), p.Disassemble())
	}
	b0, b1, b2 := main.Blocks[0], main.Blocks[1], main.Blocks[2]
	if len(b0.Succs) != 1 || b0.Succs[0] != b1.ID {
		t.Errorf("b0 succs = %v", b0.Succs)
	}
	wantSuccs := map[int]bool{b1.ID: true, b2.ID: true}
	if len(b1.Succs) != 2 || !wantSuccs[b1.Succs[0]] || !wantSuccs[b1.Succs[1]] {
		t.Errorf("b1 succs = %v", b1.Succs)
	}
	if len(b2.Preds) != 1 || b2.Preds[0] != b1.ID {
		t.Errorf("b2 preds = %v", b2.Preds)
	}
	// ExecPreds of the loop block: entry block and itself.
	preds := p.ExecPreds(b1)
	if len(preds) != 2 {
		t.Errorf("ExecPreds(b1) = %v", preds)
	}
}

func TestAssembleCallGraph(t *testing.T) {
	src := `
func main:
    const r0, 4
    call helper
    assert r0
    halt
func helper:
    addi r0, r0, 1
    ret
`
	p := MustAssemble(src)
	helper := p.FuncByName["helper"]
	if helper == nil {
		t.Fatal("no helper")
	}
	if len(helper.RetBlocks) != 1 {
		t.Fatalf("helper RetBlocks = %v", helper.RetBlocks)
	}
	sites := p.CallSites(helper.Entry)
	if len(sites) != 1 {
		t.Fatalf("CallSites = %v", sites)
	}
	// The block after the call has the callee's RET block as its exec pred.
	callBlock := p.Block(sites[0])
	after, err := p.BlockAt(callBlock.End)
	if err != nil {
		t.Fatal(err)
	}
	preds := p.ExecPreds(after)
	if len(preds) != 1 || preds[0] != helper.RetBlocks[0] {
		t.Errorf("ExecPreds(after call) = %v, want [%d]", preds, helper.RetBlocks[0])
	}
	// The helper entry's exec preds include the call site.
	entryBlock, _ := p.BlockAt(helper.Entry)
	preds = p.ExecPreds(entryBlock)
	if len(preds) != 1 || preds[0] != callBlock.ID {
		t.Errorf("ExecPreds(helper entry) = %v, want [%d]", preds, callBlock.ID)
	}
}

func TestAssembleSpawn(t *testing.T) {
	src := `
func main:
    const r2, 7
    spawn worker, r2
    halt
func worker:
    mov r1, r0
    halt
`
	p := MustAssemble(src)
	w := p.FuncByName["worker"]
	sites := p.SpawnSites(w.Entry)
	if len(sites) != 1 {
		t.Fatalf("SpawnSites = %v", sites)
	}
	entryBlock, _ := p.BlockAt(w.Entry)
	preds := p.ExecPreds(entryBlock)
	if len(preds) != 1 || preds[0] != sites[0] {
		t.Errorf("ExecPreds(worker entry) = %v", preds)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "func main:\n frob r1\n halt", "unknown mnemonic"},
		{"unknown label", "func main:\n jmp nowhere\n halt", "unknown label"},
		{"unknown function", "func main:\n call nowhere\n halt", "unknown function"},
		{"unknown global", "func main:\n loadg r1, &nope\n halt", "unknown global"},
		{"bad register", "func main:\n mov r77, r1\n halt", "bad register"},
		{"duplicate label", "func main:\nx:\nx:\n halt", "duplicate label"},
		{"duplicate global", ".global a 1\n.global a 1\nfunc main:\n halt", "duplicate global"},
		{"operand count", "func main:\n add r1, r2\n halt", "expects 3 operands"},
		{"fallthrough end", "func main:\n const r1, 1", "falls through"},
		{"call as last", "func main:\n call main", "falling-through terminator"},
		{"bad immediate", "func main:\n const r1, zz\n halt", "bad immediate"},
		{"global too many init", ".global g 1 = 1 2\nfunc main:\n halt", "exceed size"},
		{"code before func", " const r1, 1\nfunc main:\n halt", "before the first function"},
	}
	for _, tc := range tests {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestAssembleHexAndNegative(t *testing.T) {
	p := MustAssemble("func main:\n const r1, 0x10\n const r2, -3\n halt")
	if p.Code[0].Imm != 16 || p.Code[1].Imm != -3 {
		t.Errorf("imms = %d, %d", p.Code[0].Imm, p.Code[1].Imm)
	}
}

func TestLayoutAssignments(t *testing.T) {
	p := MustAssemble(".global a 2\n.global b 5\nfunc main:\n halt")
	if p.Layout.HeapBase != p.Layout.GlobalBase+7 {
		t.Errorf("heap base = %d", p.Layout.HeapBase)
	}
	if p.Layout.StackTop(0) != p.Layout.MemSize {
		t.Errorf("stack top(0) = %d", p.Layout.StackTop(0))
	}
	if p.Layout.StackFloor(0) != p.Layout.MemSize-p.Layout.StackSize {
		t.Errorf("stack floor(0) = %d", p.Layout.StackFloor(0))
	}
	if p.Layout.StackTop(1) != p.Layout.StackFloor(0) {
		t.Error("stacks should be adjacent")
	}
}

func TestDisassembleRoundTripish(t *testing.T) {
	p := MustAssemble(simpleSrc)
	d := p.Disassemble()
	for _, want := range []string{"func main:", "const r1, 3", "br r1, loop", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestBranchLeavingFunctionRejected(t *testing.T) {
	src := `
func main:
    jmp inner
    halt
func other:
inner:
    halt
`
	if _, err := Assemble(src); err == nil || !strings.Contains(err.Error(), "leaves function") {
		t.Errorf("err = %v, want leaves function", err)
	}
}

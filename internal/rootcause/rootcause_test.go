package rootcause_test

import (
	"testing"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/replay"
	"res/internal/rootcause"
	"res/internal/workload"
)

// deepestFaithful synthesizes suffixes for the bug and returns the deepest
// one that replays to the dump.
func deepestFaithful(t *testing.T, bug *workload.Bug, maxDepth, maxNodes int) (*core.Synthesized, *coredump.Dump) {
	t.Helper()
	p := bug.Program()
	d, _, err := bug.FindFailure(50)
	if err != nil {
		t.Fatalf("%s: %v", bug.Name, err)
	}
	eng := core.New(p, core.Options{MaxDepth: maxDepth, MaxNodes: maxNodes})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	var best *core.Synthesized
	for _, n := range rep.Suffixes {
		syn, err := eng.Concretize(n, d)
		if err != nil {
			continue
		}
		rr, err := replay.Run(p, syn, d, replay.Config{})
		if err != nil || !rr.Matches {
			continue
		}
		if best == nil || syn.Node.Depth > best.Node.Depth {
			best = syn
		}
	}
	if best == nil {
		t.Fatalf("%s: no faithful suffix; stats %+v", bug.Name, rep.Stats)
	}
	return best, d
}

func TestAtomicityViolationDetected(t *testing.T) {
	bug := workload.AtomViolation()
	syn, d := deepestFaithful(t, bug, 12, 3000)
	an, err := rootcause.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if an.Cause == nil {
		t.Fatal("no cause")
	}
	if an.Cause.Kind != rootcause.AtomicityViolation && an.Cause.Kind != rootcause.DataRace {
		t.Errorf("kind = %v, want race family (%s)", an.Cause.Kind, an.Cause)
	}
	p := bug.Program()
	racy, _ := p.GlobalAddr(bug.RacyGlobal)
	if an.Cause.Addr != racy {
		t.Errorf("blamed addr %d, want %d", an.Cause.Addr, racy)
	}
}

func TestOverflowDetectedByCheckedReplay(t *testing.T) {
	bug := workload.Fig1()
	syn, d := deepestFaithful(t, bug, 12, 3000)
	an, err := rootcause.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if an.Cause == nil || an.Cause.Kind != rootcause.BufferOverflow {
		t.Fatalf("cause = %v, want buffer-overflow", an.Cause)
	}
	if !an.Faithful {
		t.Error("checked-replay overflow should count as faithful")
	}
}

func TestFallbackToFaultCause(t *testing.T) {
	bug := workload.DistanceChain(3)
	syn, d := deepestFaithful(t, bug, 8, 2000)
	an, err := rootcause.Analyze(bug.Program(), syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if an.Cause == nil || an.Cause.Kind != rootcause.AssertionFailure {
		t.Fatalf("cause = %v, want assertion-failure", an.Cause)
	}
	if len(an.Cause.PCs) != 1 || an.Cause.PCs[0] != d.Fault.PC {
		t.Errorf("pcs = %v, want [%d]", an.Cause.PCs, d.Fault.PC)
	}
}

func TestCauseKeyStability(t *testing.T) {
	// Two different failures of the same bug must map to the same key.
	bug := workload.AtomViolation()
	keys := make(map[string]bool)
	for i := 0; i < 2; i++ {
		syn, d := deepestFaithful(t, bug, 12, 3000)
		an, err := rootcause.Analyze(bug.Program(), syn, d)
		if err != nil || an.Cause == nil {
			t.Fatalf("analysis %d failed: %v %v", i, err, an)
		}
		keys[an.Cause.Key()] = true
	}
	if len(keys) != 1 {
		t.Errorf("unstable cause keys: %v", keys)
	}
}

func TestKindStrings(t *testing.T) {
	for k := rootcause.Unknown; k <= rootcause.OutOfBounds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	c := &rootcause.Cause{Kind: rootcause.DataRace, PCs: []int{3, 9}, Addr: 17}
	if c.Key() != "data-race@addr17" {
		t.Errorf("key = %q", c.Key())
	}
	c2 := &rootcause.Cause{Kind: rootcause.BufferOverflow, PCs: []int{14}, Addr: 31}
	if c2.Key() != "buffer-overflow@14" {
		t.Errorf("key = %q", c2.Key())
	}
}

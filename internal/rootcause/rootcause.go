// Package rootcause identifies the likely root cause of a failure from a
// synthesized execution suffix (§3.1 of the paper: triage by root cause
// rather than by failure point). It replays the suffix deterministically
// with full instrumentation — allocator checking on, every memory access
// and lock transition observed — and runs dynamic detectors over the
// recording:
//
//   - checked-heap faults (buffer overflow, use-after-free) that were
//     silent in production surface at the corrupting access;
//   - a block-granularity lockset race detector finds unsynchronized
//     conflicting accesses;
//   - an access-pattern detector finds atomicity violations (a thread's
//     read–use pair split by a conflicting write from another thread);
//   - otherwise the fault itself (assert, division, null pointer,
//     deadlock) is the cause, located at its pc.
package rootcause

import (
	"fmt"
	"sort"
	"strings"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/replay"
	"res/internal/vm"
)

// Kind classifies root causes.
type Kind uint8

const (
	Unknown Kind = iota
	DataRace
	AtomicityViolation
	BufferOverflow
	UseAfterFree
	DoubleFree
	NullDeref
	DivByZero
	AssertionFailure
	Deadlock
	StackOverflow
	OutOfBounds
)

var kindNames = map[Kind]string{
	Unknown: "unknown", DataRace: "data-race",
	AtomicityViolation: "atomicity-violation", BufferOverflow: "buffer-overflow",
	UseAfterFree: "use-after-free", DoubleFree: "double-free",
	NullDeref: "null-deref", DivByZero: "div-by-zero",
	AssertionFailure: "assertion-failure", Deadlock: "deadlock",
	StackOverflow: "stack-overflow", OutOfBounds: "out-of-bounds",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Cause is an identified root cause. PCs are the program locations
// involved (for a race: both access sites), which makes Key stable across
// different failure manifestations of the same bug — the property WER's
// stack bucketing lacks.
type Cause struct {
	Kind   Kind
	PCs    []int
	Addr   uint32
	Detail string
}

// Key renders a bucketing key: same root cause, same key. For race-family
// causes the stable identity is the contended location — the access sites
// vary with the interleaving and the crash site (that variance is exactly
// why stack bucketing over-splits), so the key uses the kind plus the racy
// address. For other causes the defect site (pc list) is stable and
// discriminating.
func (c *Cause) Key() string {
	switch c.Kind {
	case DataRace, AtomicityViolation:
		return fmt.Sprintf("%v@addr%d", c.Kind, c.Addr)
	}
	pcs := make([]string, len(c.PCs))
	for i, pc := range c.PCs {
		pcs[i] = fmt.Sprintf("%d", pc)
	}
	return c.Kind.String() + "@" + strings.Join(pcs, ",")
}

func (c *Cause) String() string {
	s := fmt.Sprintf("%v at pcs %v", c.Kind, c.PCs)
	if c.Addr != 0 {
		s += fmt.Sprintf(" on addr %d", c.Addr)
	}
	if c.Detail != "" {
		s += " (" + c.Detail + ")"
	}
	return s
}

// accessRec is one observed access during instrumented replay.
type accessRec struct {
	seq   int
	tid   int
	pc    int
	addr  uint32
	write bool
	locks map[uint32]bool // locks held by tid at access time
}

// Analysis is the full result: the cause plus whether the replay
// faithfully reproduced the original failure (a cause from an unfaithful
// replay is reported but flagged).
type Analysis struct {
	Cause    *Cause
	Faithful bool
	Races    []*Cause // all conflicts found, primary first
}

// Analyze replays the synthesized suffix with instrumentation and returns
// the most specific root cause it can justify.
func Analyze(p *prog.Program, syn *core.Synthesized, original *coredump.Dump) (*Analysis, error) {
	var recs []accessRec
	held := make(map[int]map[uint32]bool)
	lockset := func(tid int) map[uint32]bool {
		ls := make(map[uint32]bool, len(held[tid]))
		for a := range held[tid] {
			ls[a] = true
		}
		return ls
	}
	seq := 0
	hooks := vm.Hooks{
		OnAccess: func(tid, pc int, addr uint32, write bool) {
			recs = append(recs, accessRec{seq: seq, tid: tid, pc: pc, addr: addr, write: write, locks: lockset(tid)})
			seq++
		},
		OnLock: func(tid, pc int, addr uint32, acquire bool) {
			if held[tid] == nil {
				held[tid] = make(map[uint32]bool)
			}
			if acquire {
				held[tid][addr] = true
			} else {
				delete(held[tid], addr)
			}
			seq++
		},
	}
	// Seed locksets with the locks already held at the suffix start.
	for a, owner := range syn.PreLocks {
		if held[owner] == nil {
			held[owner] = make(map[uint32]bool)
		}
		held[owner][a] = true
	}

	rr, err := replay.Run(p, syn, original, replay.Config{CheckHeap: true, Hooks: hooks})
	if err != nil {
		return nil, err
	}

	an := &Analysis{Faithful: rr.Matches}

	// Checked replay surfaced heap corruption that production missed: the
	// corrupting access is the root cause.
	if rr.Fault.Kind == coredump.FaultHeapOOB {
		an.Cause = &Cause{Kind: BufferOverflow, PCs: []int{rr.Fault.PC}, Addr: rr.Fault.Addr}
		an.Faithful = true // the earlier fault is expected under checking
		return an, nil
	}
	if rr.Fault.Kind == coredump.FaultUseAfterFree {
		an.Cause = &Cause{Kind: UseAfterFree, PCs: []int{rr.Fault.PC}, Addr: rr.Fault.Addr, Detail: rr.Fault.Detail}
		an.Faithful = true
		return an, nil
	}

	// Concurrency analysis over the access recording.
	if c := findAtomicityViolation(recs); c != nil {
		an.Races = append(an.Races, c)
	}
	if cs := findRaces(recs); len(cs) > 0 {
		an.Races = append(an.Races, cs...)
	}
	if len(an.Races) > 0 {
		an.Cause = an.Races[0]
		return an, nil
	}

	// Fall back to the failure itself.
	f := rr.Fault
	if rr.Divergence != nil {
		f = original.Fault
		an.Faithful = false
	}
	an.Cause = faultCause(f)
	return an, nil
}

// faultCause maps a fault descriptor to a cause.
func faultCause(f coredump.Fault) *Cause {
	c := &Cause{PCs: []int{f.PC}, Addr: f.Addr, Detail: f.Detail}
	switch f.Kind {
	case coredump.FaultNullDeref:
		c.Kind = NullDeref
	case coredump.FaultOOB, coredump.FaultHeapOOB:
		c.Kind = OutOfBounds
	case coredump.FaultUseAfterFree:
		c.Kind = UseAfterFree
	case coredump.FaultDoubleFree:
		c.Kind = DoubleFree
	case coredump.FaultDivByZero:
		c.Kind = DivByZero
	case coredump.FaultAssert:
		c.Kind = AssertionFailure
	case coredump.FaultDeadlock:
		c.Kind = Deadlock
	case coredump.FaultStackOverflow:
		c.Kind = StackOverflow
	default:
		c.Kind = Unknown
	}
	return c
}

// findRaces runs the lockset discipline over the recording: two accesses
// to the same address from different threads, at least one a write, with
// no common lock protecting both.
func findRaces(recs []accessRec) []*Cause {
	byAddr := make(map[uint32][]accessRec)
	for _, r := range recs {
		byAddr[r.addr] = append(byAddr[r.addr], r)
	}
	addrs := make([]uint32, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var out []*Cause
	seen := make(map[string]bool)
	for _, a := range addrs {
		rs := byAddr[a]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				x, y := rs[i], rs[j]
				if x.tid == y.tid || (!x.write && !y.write) {
					continue
				}
				if commonLock(x.locks, y.locks) {
					continue
				}
				pcs := []int{x.pc, y.pc}
				sort.Ints(pcs)
				c := &Cause{Kind: DataRace, PCs: pcs, Addr: a,
					Detail: fmt.Sprintf("t%d and t%d access word %d unsynchronized", x.tid, y.tid, a)}
				if !seen[c.Key()] {
					seen[c.Key()] = true
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// findAtomicityViolation looks for the classic single-variable pattern:
// thread t accesses a, thread u writes a, thread t accesses a again, with
// the t accesses unprotected by a common lock spanning both.
func findAtomicityViolation(recs []accessRec) *Cause {
	for i := 0; i < len(recs); i++ {
		first := recs[i]
		for j := i + 1; j < len(recs); j++ {
			mid := recs[j]
			if mid.tid == first.tid || mid.addr != first.addr || !mid.write {
				continue
			}
			for k := j + 1; k < len(recs); k++ {
				last := recs[k]
				if last.tid != first.tid || last.addr != first.addr {
					continue
				}
				// The pair (first, last) should have been atomic. If a lock
				// protects both endpoints AND the intruder held it too, the
				// schedule could not interleave — not a violation.
				if commonLock(first.locks, mid.locks) && commonLock(last.locks, mid.locks) {
					continue
				}
				pcs := []int{first.pc, mid.pc, last.pc}
				sort.Ints(pcs)
				return &Cause{Kind: AtomicityViolation, PCs: pcs, Addr: first.addr,
					Detail: fmt.Sprintf("t%d's accesses at pc %d and %d split by t%d's write at pc %d",
						first.tid, first.pc, last.pc, mid.tid, mid.pc)}
			}
		}
	}
	return nil
}

func commonLock(a, b map[uint32]bool) bool {
	for l := range a {
		if b[l] {
			return true
		}
	}
	return false
}

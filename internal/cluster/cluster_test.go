package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"res"
	"res/internal/checkpoint"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/service"
	"res/internal/store"
	"res/internal/workload"
)

// ---- rendezvous hashing ----

func TestRendezvousStableAndSpread(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	owned := map[string]int{}
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("program-%d", i)
		order := rank(nodes, key)
		if len(order) != 3 {
			t.Fatalf("rank dropped nodes: %v", order)
		}
		again := rank(nodes, key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("rank is not deterministic: %v vs %v", order, again)
			}
		}
		owned[order[0]]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Fatalf("node %s owns nothing across 120 keys: %v", n, owned)
		}
	}
}

// TestRendezvousMinimalDisruption is the property the failover design
// leans on: removing a node only remaps the keys it owned; every other
// key keeps its owner, and a removed owner's keys fail over to their
// individual second choices.
func TestRendezvousMinimalDisruption(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	dead := nodes[0]
	survivors := nodes[1:]
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("program-%d", i)
		before := rank(nodes, key)
		after := rank(survivors, key)
		if before[0] == dead {
			if after[0] != before[1] {
				t.Fatalf("key %s: failover owner %s, want the second choice %s", key, after[0], before[1])
			}
			continue
		}
		if after[0] != before[0] {
			t.Fatalf("key %s: owner moved from %s to %s though its node survived", key, before[0], after[0])
		}
	}
}

// ---- health state machine ----

func TestHealthStateMachine(t *testing.T) {
	p := newProber("self", []string{"self", "peer"}, 2, 2)
	st := func() PeerState { return p.state("peer") }
	if st() != StateHealthy {
		t.Fatalf("initial state = %v", st())
	}
	p.observe("peer", false, "conn refused")
	if st() != StateSuspect || !st().Routable() {
		t.Fatalf("after one failure: %v (routable=%v), want routable suspect", st(), st().Routable())
	}
	p.observe("peer", true, "")
	if st() != StateHealthy {
		t.Fatalf("suspect did not heal on success: %v", st())
	}
	p.observe("peer", false, "x")
	p.observe("peer", false, "x")
	if st() != StateDown || st().Routable() {
		t.Fatalf("after two failures: %v, want unroutable down", st())
	}
	p.observe("peer", true, "")
	if st() != StateRecovering || !st().Routable() {
		t.Fatalf("first success after down: %v, want routable recovering", st())
	}
	p.observe("peer", false, "flap")
	if st() != StateDown {
		t.Fatalf("flap mid-recovery: %v, want down", st())
	}
	p.observe("peer", true, "")
	p.observe("peer", true, "")
	if st() != StateHealthy {
		t.Fatalf("two successes after down: %v, want healthy", st())
	}
	if p.state("self") != StateHealthy {
		t.Fatal("self must always be healthy")
	}
}

// ---- artifact verification ----

func TestVerifyArtifact(t *testing.T) {
	blob := []byte("canonical dump bytes")
	k := store.DumpKey(store.BytesFingerprint(blob))
	if err := verifyArtifact(k, blob); err != nil {
		t.Fatalf("honest dump rejected: %v", err)
	}
	if err := verifyArtifact(k, []byte("tampered")); err == nil {
		t.Fatal("tampered dump blob accepted")
	}
	rk := store.ResultKey(store.BytesFingerprint([]byte("p")), store.BytesFingerprint([]byte("d")), store.OptionsFingerprint("o"))
	if err := verifyArtifact(rk, []byte(`{"verdict":"x"}`)); err != nil {
		t.Fatalf("honest report rejected: %v", err)
	}
	if err := verifyArtifact(rk, []byte("not json")); err == nil {
		t.Fatal("garbage result accepted")
	}
	if err := verifyArtifact(store.Key{Space: "journal-snapshot"}, []byte("{}")); err == nil {
		t.Fatal("journal space accepted for replication")
	}
}

// ---- in-process cluster harness ----

// failingDumps mirrors the service tests' generator: n distinct failing
// dumps of the bug's program.
func failingDumps(t testing.TB, bug *workload.Bug, n int) [][]byte {
	t.Helper()
	p := bug.Program()
	var out [][]byte
	for _, base := range bug.Configs {
		for s := int64(0); s < 300 && len(out) < n; s++ {
			cfg := base
			cfg.Seed = s
			d, err := res.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
				continue
			}
			b, err := d.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		if len(out) >= n {
			break
		}
	}
	if len(out) < n {
		t.Fatalf("%s: only %d of %d failing dumps found", bug.Name, len(out), n)
	}
	return out
}

var testAnalysis = service.AnalysisConfig{MaxDepth: 12, MaxNodes: 2000}

// normalizeReport canonicalizes a report for byte-equality checks across
// nodes: zero the one documented nondeterministic field (elapsed_ms, the
// same convention the engine's own equivalence tests use) and compact
// the encoding (HTTP responses embed the report compacted).
func normalizeReport(t testing.TB, rep []byte) []byte {
	t.Helper()
	var r res.ReportJSON
	if err := json.Unmarshal(rep, &r); err != nil {
		t.Fatalf("unparseable report: %v\n%s", err, rep)
	}
	r.ElapsedMS = 0
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// testCluster is N in-process resd nodes behind real HTTP servers. The
// servers exist before the nodes (peer URLs must be known to build the
// membership), so each serves through a swappable handler.
type testCluster struct {
	t        *testing.T
	urls     []string
	srvs     []*httptest.Server
	handlers []atomic.Value // http.Handler
	svcs     []*service.Service
	journals []*service.Journal
	nodes    []*Node
	dir      string
	// clusterCfg, when set (from inside mkCfg, before the first boot),
	// tweaks each node's cluster-layer Config — chaos tests use it to arm
	// fault injectors and shorten breaker timings.
	clusterCfg func(i int, cfg Config) Config
}

func startCluster(t *testing.T, n int, mkCfg func(tc *testCluster, i int) service.Config) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, dir: t.TempDir()}
	tc.handlers = make([]atomic.Value, n)
	for i := 0; i < n; i++ {
		i := i
		tc.srvs = append(tc.srvs, httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := tc.handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})))
		tc.urls = append(tc.urls, tc.srvs[i].URL)
	}
	tc.svcs = make([]*service.Service, n)
	tc.journals = make([]*service.Journal, n)
	tc.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		tc.boot(i, mkCfg(tc, i))
	}
	t.Cleanup(func() {
		for i := range tc.nodes {
			if tc.nodes[i] != nil {
				tc.nodes[i].Close()
			}
		}
		for _, srv := range tc.srvs {
			srv.Close()
		}
		for i, svc := range tc.svcs {
			if svc != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				svc.Shutdown(ctx)
				cancel()
			}
			if tc.journals[i] != nil {
				tc.journals[i].Close()
			}
		}
	})
	return tc
}

// nodeConfig is the per-node service configuration with durable store
// and journal under the cluster's temp dir.
func (tc *testCluster) nodeConfig(i int) service.Config {
	tc.t.Helper()
	st, err := store.NewDisk(0, filepath.Join(tc.dir, fmt.Sprintf("store-%d", i)))
	if err != nil {
		tc.t.Fatal(err)
	}
	j, err := service.OpenJournal(filepath.Join(tc.dir, fmt.Sprintf("journal-%d.jsonl", i)))
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.journals[i] = j
	return service.Config{
		Analysis:     testAnalysis,
		ShardWorkers: 2,
		Store:        st,
		Journal:      j,
	}
}

// boot builds node i's service and cluster layer and swaps its handler
// live. Used for initial start and for restarts.
func (tc *testCluster) boot(i int, cfg service.Config) {
	tc.t.Helper()
	tc.svcs[i] = service.New(cfg)
	ncfg := Config{
		Self:          tc.urls[i],
		Peers:         tc.urls,
		Replicas:      2,
		Service:       tc.svcs[i],
		ProbeInterval: 100 * time.Millisecond,
		Client:        &http.Client{Timeout: 5 * time.Second},
	}
	if tc.clusterCfg != nil {
		ncfg = tc.clusterCfg(i, ncfg)
	}
	node, err := New(ncfg)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.nodes[i] = node
	tc.handlers[i].Store(node.Handler())
}

// stop tears node i down without touching its disk state.
func (tc *testCluster) stop(i int) {
	tc.t.Helper()
	tc.nodes[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	tc.svcs[i].Shutdown(ctx)
	cancel()
	tc.journals[i].Close()
	tc.nodes[i], tc.svcs[i], tc.journals[i] = nil, nil, nil
}

// singleNodeReport analyzes one dump on a standalone service with the
// same analysis configuration: the byte-equality reference.
func singleNodeReport(t *testing.T, bug *workload.Bug, dump []byte) []byte {
	t.Helper()
	svc := service.New(service.Config{Analysis: testAnalysis, ShardWorkers: 2})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterSource(bug.Name, bug.Source)
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	if job, err = svc.Wait(context.Background(), job.ID); err != nil || job.Status != service.StatusDone {
		t.Fatalf("reference job = %+v, err = %v", job, err)
	}
	return job.Report
}

// programFP computes the routing key the cluster will use for bug.
func programFP(t *testing.T, bug *workload.Bug) string {
	t.Helper()
	fp, err := store.ProgramFingerprint(bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	return fp.String()
}

// TestTwoNodeClusterEndToEnd is the PR's acceptance test: a dump
// submitted to the non-owning node is routed to its owner and comes back
// byte-identical to a single-node analysis; the result is readable from
// both nodes (write-through replication); and restarting the owner
// restores its job history and bucket membership from the journal.
func TestTwoNodeClusterEndToEnd(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := failingDumps(t, bug, 1)
	reference := singleNodeReport(t, bug, dumps[0])

	tc := startCluster(t, 2, (*testCluster).nodeConfig)
	fp := programFP(t, bug)
	order := rank(tc.urls, fp)
	ownerIdx, otherIdx := -1, -1
	for i, u := range tc.urls {
		if u == order[0] {
			ownerIdx = i
		} else {
			otherIdx = i
		}
	}
	if ownerIdx < 0 || otherIdx < 0 {
		t.Fatalf("could not map owner %s into %v", order[0], tc.urls)
	}

	// Submit to the NON-owner; the router must proxy to the owner.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(tc.urls[otherIdx])
	job, err := client.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	job, err = client.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != service.StatusDone {
		t.Fatalf("job = %+v, want done", job)
	}
	if !bytes.Equal(normalizeReport(t, job.Report), normalizeReport(t, reference)) {
		t.Fatalf("cluster report differs from single-node run:\n%s\nvs\n%s", job.Report, reference)
	}
	if m := tc.svcs[ownerIdx].Metrics(); m.Completed != 1 {
		t.Fatalf("owner metrics = %+v, want the analysis to have run on the owner", m)
	}
	if m := tc.svcs[otherIdx].Metrics(); m.Completed != 0 {
		t.Fatalf("non-owner metrics = %+v, want no local analysis", m)
	}

	// Replication: the result answers from BOTH nodes — the owner from
	// its job record, the non-owner from its replicated store tier.
	for i := range tc.urls {
		got, err := service.NewClient(tc.urls[i]).Result(ctx, job.ID)
		if err != nil {
			t.Fatalf("node %d result: %v", i, err)
		}
		if got.Status != service.StatusDone || !bytes.Equal(normalizeReport(t, got.Report), normalizeReport(t, reference)) {
			t.Fatalf("node %d served %+v, want the replicated report", i, got)
		}
	}
	// The non-owner's copy arrived via write-through, not via a peer
	// proxy: its local store holds the bytes.
	if _, ok := tc.svcs[otherIdx].Store().GetByID(job.ID); !ok {
		t.Fatal("write-through did not land the result in the non-owner's store")
	}

	// The cluster-wide bucket view lists the job from either entry point.
	buckets, err := client.Buckets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 || buckets[0].Count != 1 || buckets[0].JobIDs[0] != job.ID {
		t.Fatalf("merged buckets = %+v, want the one job", buckets)
	}

	// Restart the owner. Journal + store disk tier restore its history:
	// the job ID still resolves (with its report) and the bucket
	// membership survives.
	tc.stop(ownerIdx)
	tc.boot(ownerIdx, tc.nodeConfig(ownerIdx))
	ownerClient := service.NewClient(tc.urls[ownerIdx])
	got, err := ownerClient.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != service.StatusDone || !bytes.Equal(normalizeReport(t, got.Report), normalizeReport(t, reference)) {
		t.Fatalf("restarted owner served %+v, want the journaled job's report", got)
	}
	if got.Bucket != job.Bucket {
		t.Fatalf("restarted owner lost the bucket: %q, want %q", got.Bucket, job.Bucket)
	}
	buckets, err = ownerClient.Buckets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 1 || buckets[0].Count != 1 || buckets[0].JobIDs[0] != job.ID {
		t.Fatalf("buckets after restart = %+v, want the journaled membership", buckets)
	}
	if m := tc.svcs[ownerIdx].Metrics(); m.Programs != 1 || m.JournalReplayed == 0 {
		t.Fatalf("restarted owner metrics = %+v, want journaled program + replayed entries", m)
	}

	// Evidence attachments traverse the proxy byte-exactly. Submit a
	// dump+evidence pair through the NON-owner (proxied to the owner),
	// then the identical pair directly at the owner: the job ID hashes
	// the canonical evidence bytes into the cache identity, so the IDs
	// can only match if the proxy preserved the attachment bit-for-bit.
	evDump, evSet, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{
		EventEvery: 3, EventWindow: 64, BranchWindow: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evSet) == 0 {
		t.Fatal("recorder produced no evidence")
	}
	evDumpBytes, err := evDump.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	evBytes := evSet.Encode()
	viaProxy, err := client.SubmitSourceEvidence(ctx, bug.Name, bug.Source, evDumpBytes, evBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaProxy.Evidence) == 0 {
		t.Fatalf("proxied submission lost its evidence kinds: %+v", viaProxy)
	}
	if viaProxy, err = client.PollResult(ctx, viaProxy.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if viaProxy.Status != service.StatusDone {
		t.Fatalf("evidence job = %+v, want done", viaProxy)
	}
	direct, err := ownerClient.SubmitEvidence(ctx, programFP(t, bug), evDumpBytes, evBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.ID != viaProxy.ID {
		t.Fatalf("proxied evidence tuple %s != direct tuple %s: attachment not preserved byte-exactly", viaProxy.ID, direct.ID)
	}
	if !direct.Cached {
		t.Fatalf("identical (dump, evidence) resubmission did not cache-hit: %+v", direct)
	}
	// And the same dump without evidence is a different tuple.
	plain, err := ownerClient.SubmitEvidence(ctx, programFP(t, bug), evDumpBytes, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == viaProxy.ID {
		t.Fatal("evidence did not change the cluster-side cache identity")
	}
	// The events endpoint resolves the owner's job from the non-owner
	// (terminal job: a single status line).
	resp, err := http.Get(tc.urls[otherIdx] + "/v1/jobs/" + viaProxy.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status":"done"`)) {
		t.Fatalf("events via non-owner: %d %q", resp.StatusCode, body)
	}

	// Checkpoint attachments traverse the proxy byte-exactly too: the job
	// ID hashes the canonical ring bytes into the cache identity, so the
	// proxied and direct submissions can only coalesce if the proxy
	// relayed the attachment bit-for-bit.
	ckDump, ring, _, err := bug.FindFailureCheckpointed(60, checkpoint.Config{Every: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Empty() {
		t.Fatal("recorder produced no checkpoints")
	}
	ckDumpBytes, err := ckDump.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ckBytes := ring.Encode()
	ckViaProxy, err := client.SubmitSourceEvidenceCheckpoints(ctx, bug.Name, bug.Source, ckDumpBytes, nil, ckBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !ckViaProxy.Checkpointed {
		t.Fatalf("proxied submission lost its checkpoint attachment: %+v", ckViaProxy)
	}
	if ckViaProxy, err = client.PollResult(ctx, ckViaProxy.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ckViaProxy.Status != service.StatusDone {
		t.Fatalf("checkpoint job = %+v, want done", ckViaProxy)
	}
	ckDirect, err := ownerClient.SubmitEvidenceCheckpoints(ctx, programFP(t, bug), ckDumpBytes, nil, ckBytes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ckDirect.ID != ckViaProxy.ID {
		t.Fatalf("proxied checkpoint tuple %s != direct tuple %s: attachment not preserved byte-exactly", ckViaProxy.ID, ckDirect.ID)
	}
	if !ckDirect.Cached {
		t.Fatalf("identical (dump, checkpoints) resubmission did not cache-hit: %+v", ckDirect)
	}
	if ckPlain, err := ownerClient.SubmitEvidence(ctx, programFP(t, bug), ckDumpBytes, nil, nil); err != nil {
		t.Fatal(err)
	} else if ckPlain.ID == ckViaProxy.ID {
		t.Fatal("checkpoints did not change the cluster-side cache identity")
	}
}

// TestReadThroughRepairsLostDisk: a node that lost its entire store
// lazily repopulates from its peers on the first miss.
func TestReadThroughRepairsLostDisk(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := failingDumps(t, bug, 1)

	tc := startCluster(t, 2, (*testCluster).nodeConfig)
	fp := programFP(t, bug)
	order := rank(tc.urls, fp)
	ownerIdx := 0
	for i, u := range tc.urls {
		if u == order[0] {
			ownerIdx = i
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(tc.urls[ownerIdx])
	job, err := client.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job, err = client.PollResult(ctx, job.ID, 10*time.Millisecond); err != nil || job.Status != service.StatusDone {
		t.Fatalf("job = %+v, err = %v", job, err)
	}

	// Simulate the owner losing its disk: a fresh empty store, same
	// cluster. A resubmission's cache probe misses both local tiers and
	// must pull the result back from the replica.
	tc.stop(ownerIdx)
	freshStore, err := store.NewDisk(0, filepath.Join(tc.dir, "rebuilt-store"))
	if err != nil {
		t.Fatal(err)
	}
	j, err := service.OpenJournal(filepath.Join(tc.dir, "rebuilt-journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tc.journals[ownerIdx] = j
	tc.boot(ownerIdx, service.Config{
		Analysis:     testAnalysis,
		ShardWorkers: 2,
		Store:        freshStore,
		Journal:      j,
	})

	again, err := service.NewClient(tc.urls[ownerIdx]).SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(normalizeReport(t, again.Report), normalizeReport(t, job.Report)) {
		t.Fatalf("resubmission after disk loss = %+v, want a read-through cache hit", again)
	}
	if st := freshStore.Stats(); st.ReplicaHits == 0 {
		t.Fatalf("store stats = %+v, want the answer pulled from a peer", st)
	}
}

// TestThreeNodeFailover kills a program's owner mid-job and asserts the
// resubmitted dump lands on the rendezvous failover node with a report
// byte-identical to a single-node run.
func TestThreeNodeFailover(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := failingDumps(t, bug, 1)
	reference := singleNodeReport(t, bug, dumps[0])

	// Every node carries a gate: once blockIdx is set to a node index,
	// that node's workers hang before analyzing — the "mid-job" window.
	var blockIdx atomic.Int64
	blockIdx.Store(-1)
	release := make(chan struct{})
	tc := startCluster(t, 3, func(tc *testCluster, i int) service.Config {
		cfg := tc.nodeConfig(i)
		cfg.BeforeAnalyze = func() {
			if int64(i) == blockIdx.Load() {
				<-release
			}
		}
		return cfg
	})
	fp := programFP(t, bug)
	order := rank(tc.urls, fp)
	idxOf := func(u string) int {
		for i, v := range tc.urls {
			if v == u {
				return i
			}
		}
		t.Fatalf("unknown url %s", u)
		return -1
	}
	ownerIdx, failoverIdx := idxOf(order[0]), idxOf(order[1])
	submitIdx := idxOf(order[2]) // the node least likely to serve it

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(tc.urls[submitIdx])

	// First submission: proxied to the owner, whose worker hangs.
	blockIdx.Store(int64(ownerIdx))
	job, err := client.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Terminal() {
		t.Fatalf("job = %+v, want it queued on the owner", job)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if j, ok := tc.svcs[ownerIdx].Job(job.ID); ok && j.Status == service.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running on the owner")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the owner mid-job: its HTTP server goes away; the blocked
	// worker (and its eventual result) dies with the process as far as
	// the cluster can tell.
	ownerSrv := tc.srvs[ownerIdx]
	ownerSrv.CloseClientConnections()
	ownerSrv.Close()

	// Resubmit the same dump via the same entry node. The router's proxy
	// to the dead owner fails over to the next node in the preference
	// order, which analyzes it fresh.
	again, err := client.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	final, err := tc.svcs[failoverIdx].Wait(ctx, again.ID)
	if err != nil {
		t.Fatalf("resubmitted job did not land on the failover node: %v", err)
	}
	if final.Status != service.StatusDone {
		t.Fatalf("failover job = %+v, want done", final)
	}
	if !bytes.Equal(normalizeReport(t, final.Report), normalizeReport(t, reference)) {
		t.Fatalf("failover report differs from single-node run:\n%s\nvs\n%s", final.Report, reference)
	}
	if m := tc.svcs[failoverIdx].Metrics(); m.Completed != 1 {
		t.Fatalf("failover node metrics = %+v, want it to have run the analysis", m)
	}
	tc.nodes[submitIdx].mu.Lock()
	failovers := tc.nodes[submitIdx].failovers
	tc.nodes[submitIdx].mu.Unlock()
	if failovers == 0 {
		t.Fatal("submitting node recorded no failover")
	}

	// The prober converges on the owner's death: suspect after the first
	// failed observation, down after FailThreshold.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := tc.nodes[submitIdx].prober.state(tc.urls[ownerIdx])
		if st == StateDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never marked down (state %v)", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unblock the dead owner's worker so cleanup can drain it
	// (httptest.Server.Close is idempotent, so Cleanup can re-Close).
	close(release)
	tc.stop(ownerIdx)
}

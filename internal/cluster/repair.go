package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"res/internal/store"
)

// The anti-entropy sweep is the cluster's repair loop: replication on the
// write path is best-effort (a down replica, an injected disk error, a
// partial write all leave artifacts under-replicated or corrupt), and the
// read-through pull only heals keys somebody asks for. The sweep walks
// the full inventory — the local store's key index plus every routable
// peer's — and restores the replication invariant without waiting for a
// client read: corrupt local copies are dropped and re-pulled, missing
// owned artifacts are fetched, and replicas that lack an artifact we hold
// get it pushed.

// RepairStats is one sweep's outcome.
type RepairStats struct {
	// Scanned is the number of distinct replicable keys considered.
	Scanned int `json:"scanned"`
	// Pulled counts artifacts this node was missing (or holding corrupt)
	// and recovered from a replica.
	Pulled int `json:"pulled"`
	// Pushed counts artifacts re-pushed to replicas that lacked them.
	Pushed int `json:"pushed"`
	// Corrupt counts local copies whose bytes no longer matched their
	// content address; each was dropped (and re-pulled when possible).
	Corrupt int `json:"corrupt"`
	// Failed counts keys this node owns but could not recover this sweep
	// (no replica had intact bytes). They stay in the inventory and are
	// retried next sweep.
	Failed int `json:"failed"`
}

// RepairNow runs one synchronous anti-entropy sweep.
func (n *Node) RepairNow(ctx context.Context) RepairStats {
	var st RepairStats

	// Inventory: union of the local key index and every routable peer's.
	// The peer half is what makes a wiped disk recoverable — a node with
	// an empty store has an empty index, and only its peers remember what
	// it should hold.
	inventory := make(map[store.Key]bool)
	for _, k := range n.st.Keys() {
		if replicable(k) {
			inventory[k] = true
		}
	}
	for _, peer := range n.peers {
		if peer == n.self || !n.routable(peer) {
			continue
		}
		for _, k := range n.peerIndex(ctx, peer) {
			if replicable(k) {
				inventory[k] = true
			}
		}
	}
	keys := make([]store.Key, 0, len(inventory))
	for k := range inventory {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].ID() < keys[j].ID() })

	for _, k := range keys {
		if ctx.Err() != nil {
			break
		}
		st.Scanned++
		want := false
		for _, peer := range n.replicaSet(k) {
			if peer == n.self {
				want = true
				break
			}
		}
		data, have := n.st.PeekLocal(k)
		if have && verifyArtifact(k, data) != nil {
			// The bytes rotted under their content address: a partial
			// write, a flipped bit, torn disk. Drop the poison; the
			// re-pull below restores an intact copy.
			n.st.Drop(k)
			have = false
			st.Corrupt++
			n.fr.Eventf("fault", "sweep dropped corrupt %s %s", k.Space, k.ID())
		}
		if !have && want {
			if fetched, ok := n.fetchFromPeers(k); ok {
				if n.st.PutLocal(k, fetched) == nil {
					have = true
					st.Pulled++
				}
			}
			if !have {
				st.Failed++
				continue
			}
			data, _ = n.st.PeekLocal(k)
		}
		if have && len(data) > 0 {
			// Re-push to any replica that lacks the artifact (cheap HEAD
			// probe first — the common case is everyone has it).
			for _, peer := range n.replicaSet(k) {
				if peer == n.self || !n.routable(peer) {
					continue
				}
				if n.peerHasArtifact(ctx, peer, k.ID()) {
					continue
				}
				if n.pushArtifact(peer, k, data) == nil {
					st.Pushed++
				}
			}
		}
	}

	n.mu.Lock()
	n.repairSweeps++
	n.repairPulled += uint64(st.Pulled)
	n.repairPushed += uint64(st.Pushed)
	n.repairCorrupt += uint64(st.Corrupt)
	n.mu.Unlock()
	if st.Pulled > 0 || st.Pushed > 0 || st.Corrupt > 0 || st.Failed > 0 {
		// Quiet sweeps (the steady state) stay out of the ring; a sweep
		// that actually repaired something is part of the node's story.
		n.fr.Eventf("repair", "sweep: scanned=%d pulled=%d pushed=%d corrupt=%d failed=%d",
			st.Scanned, st.Pulled, st.Pushed, st.Corrupt, st.Failed)
	}
	return st
}

// repairLoop runs RepairNow on the interval until ctx ends.
func (n *Node) repairLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.RepairNow(ctx)
		}
	}
}

// keyRecord is the store-index wire form: one key in hex.
type keyRecord struct {
	Space   string `json:"space"`
	Program string `json:"program"`
	Dump    string `json:"dump"`
	Options string `json:"options"`
}

func (r keyRecord) key() (store.Key, error) {
	var k store.Key
	var err error
	k.Space = r.Space
	if k.Program, err = store.ParseFingerprint(r.Program); err != nil {
		return k, err
	}
	if k.Dump, err = store.ParseFingerprint(r.Dump); err != nil {
		return k, err
	}
	k.Options, err = store.ParseFingerprint(r.Options)
	return k, err
}

// peerIndex fetches one peer's replicable key inventory.
func (n *Node) peerIndex(ctx context.Context, peer string) []store.Key {
	ctx, cancel := context.WithTimeout(ctx, n.repTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/internal/v1/store-index", nil)
	if err != nil {
		return nil
	}
	req.Header.Set(forwardedHeader, "1")
	resp, err := n.hc.Do(req)
	if err != nil {
		n.prober.observe(peer, false, err.Error())
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var recs []keyRecord
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&recs); err != nil {
		return nil
	}
	keys := make([]store.Key, 0, len(recs))
	for _, rec := range recs {
		if k, err := rec.key(); err == nil {
			keys = append(keys, k)
		}
	}
	return keys
}

// peerHasArtifact HEAD-probes a peer's store for one artifact ID.
func (n *Node) peerHasArtifact(ctx context.Context, peer, id string) bool {
	ctx, cancel := context.WithTimeout(ctx, n.repTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, peer+"/internal/v1/store/"+id, nil)
	if err != nil {
		return false
	}
	req.Header.Set(forwardedHeader, "1")
	resp, err := n.hc.Do(req)
	if err != nil {
		n.prober.observe(peer, false, err.Error())
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"res/internal/obs"
	"res/internal/service"
	"res/internal/store"
	"res/internal/workload"
)

// ownerIndex returns which node of tc owns the bug's program.
func ownerIndex(t *testing.T, tc *testCluster, bug *workload.Bug) int {
	t.Helper()
	owner := rank(tc.urls, programFP(t, bug))[0]
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %s not in %v", owner, tc.urls)
	return -1
}

// bugOwnedBy finds a workload whose program rendezvous-hashes to node
// want, so a submission via the other node must cross the proxy.
func bugOwnedBy(t *testing.T, tc *testCluster, want int) *workload.Bug {
	t.Helper()
	candidates := []*workload.Bug{
		workload.RaceCounter(), workload.Fig1(), workload.AtomViolation(),
		workload.WriteWriteRace(), workload.MultiSiteRace(), workload.UseAfterFree(),
	}
	for k := 4; k <= 24; k++ {
		candidates = append(candidates, workload.DistanceChain(k))
	}
	for _, bug := range candidates {
		if ownerIndex(t, tc, bug) == want {
			return bug
		}
	}
	t.Fatalf("no candidate program owned by node %d", want)
	return nil
}

// TestClusterTraceStitch is the tentpole acceptance test: a dump
// submitted through the NON-owner carries one trace ID across the
// router hop on the ingest node and the analysis on the owner, and
// GET /v1/jobs/{id}/trace — asked of EITHER node — serves the stitched
// tree: route → proxy → request → analyze → analysis, with spans from
// both nodes under one trace ID.
func TestClusterTraceStitch(t *testing.T) {
	recs := make([]*obs.FlightRecorder, 2)
	tc := startCluster(t, 2, func(tc *testCluster, i int) service.Config {
		cfg := tc.nodeConfig(i)
		cfg.Node = tc.urls[i]
		recs[i] = obs.NewFlightRecorder(128)
		cfg.FlightRec = recs[i]
		if tc.clusterCfg == nil {
			tc.clusterCfg = func(j int, c Config) Config {
				c.FlightRec = recs[j]
				return c
			}
		}
		return cfg
	})
	bug := bugOwnedBy(t, tc, 0)
	dump := failingDumps(t, bug, 1)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Submit via node 1, the non-owner: the dump crosses the proxy to
	// node 0, which runs the analysis.
	ingest := service.NewClient(tc.urls[1])
	job, err := ingest.SubmitSource(ctx, bug.Name, bug.Source, dump)
	if err != nil {
		t.Fatal(err)
	}
	if job.TraceID == "" {
		t.Fatal("submitted job carries no trace ID")
	}
	done, err := ingest.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != service.StatusDone {
		t.Fatalf("job = %+v, want done", done)
	}

	// The stitched tree must be identical in shape from either entry
	// point: any node answers any trace.
	for i := range tc.urls {
		td, err := service.NewClient(tc.urls[i]).Trace(ctx, job.ID)
		if err != nil {
			t.Fatalf("trace via node %d: %v", i, err)
		}
		if td.TraceID != job.TraceID {
			t.Fatalf("node %d: stitched trace ID %q != job trace ID %q", i, td.TraceID, job.TraceID)
		}
		if len(td.Spans) == 0 || td.Spans[0].Name != "route" {
			t.Fatalf("node %d: stitched root = %+v, want the ingest route span", i, td.Spans)
		}
		for _, want := range []string{"route", "proxy", "request", "analyze", "analysis"} {
			if len(td.ByName(want)) == 0 {
				t.Fatalf("node %d: stitched trace has no %q span:\n%s", i, want, td.Summary())
			}
		}
		// Cross-node parent links: the owner's request fragment hangs
		// under the ingest node's proxy span, the engine's analysis tree
		// under the request fragment's analyze span.
		if got := td.ByName("request")[0].Parent; got != td.ByName("proxy")[0].ID {
			t.Fatalf("node %d: request parent = %d, want proxy %d:\n%s",
				i, got, td.ByName("proxy")[0].ID, td.Summary())
		}
		if got := td.ByName("analysis")[0].Parent; got != td.ByName("analyze")[0].ID {
			t.Fatalf("node %d: analysis parent = %d, want analyze %d", i, got, td.ByName("analyze")[0].ID)
		}
		if nodes := td.Nodes(); len(nodes) != 2 || nodes[0] != tc.urls[0] && nodes[1] != tc.urls[0] {
			t.Fatalf("node %d: trace spans nodes %v, want both of %v", i, nodes, tc.urls)
		}
		sum := fetchText(t, tc.urls[i], "/v1/jobs/"+job.ID+"/trace?format=text")
		for _, u := range tc.urls {
			if !strings.Contains(sum, "node="+u) {
				t.Fatalf("node %d: text summary lacks spans from %s:\n%s", i, u, sum)
			}
		}
	}

	// The ingest node's fragment endpoint serves its routing fragment;
	// the flight recorders on both nodes saw the request.
	var frags []*obs.TraceData
	if err := json.Unmarshal([]byte(fetchText(t, tc.urls[1], "/internal/v1/trace/"+job.ID)), &frags); err != nil {
		t.Fatal(err)
	}
	if len(frags) == 0 || frags[0].Node != tc.urls[1] {
		t.Fatalf("ingest node fragments = %+v, want its route fragment", frags)
	}
	evs, _ := recs[0].Snapshot()
	var sawSpan bool
	for _, ev := range evs {
		if ev.Kind == "span" && ev.JobID == job.ID {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Fatalf("owner flight recorder has no span event for job %s: %+v", job.ID, evs)
	}
	var fr struct {
		Events []obs.FlightEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(fetchText(t, tc.urls[0], "/internal/v1/flightrec")), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Events) == 0 {
		t.Fatal("flight recorder endpoint served no events")
	}
}

// TestCacheHitTraceViaNonOwner404 pins the satellite contract: a job
// served from the result store never ran a traced analysis, so fetching
// its trace through a NON-owner node must produce a clean 404 — the
// stitcher finds no fragments anywhere and must not 500.
func TestCacheHitTraceViaNonOwner404(t *testing.T) {
	tc := startCluster(t, 2, (*testCluster).nodeConfig)
	bug := bugOwnedBy(t, tc, 0)
	dump := failingDumps(t, bug, 1)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Analyze once, directly on the owner (node 1 stays out of the
	// request path entirely).
	owner := service.NewClient(tc.urls[0])
	job, err := owner.SubmitSource(ctx, bug.Name, bug.Source, dump)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.PollResult(ctx, job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Restart the owner with a fresh process memory (no journal) over
	// the same disk store: the result survives, every trace fragment
	// and job record does not.
	tc.stop(0)
	st, err := store.NewDisk(0, filepath.Join(tc.dir, "store-0"))
	if err != nil {
		t.Fatal(err)
	}
	tc.boot(0, service.Config{Analysis: testAnalysis, ShardWorkers: 2, Store: st})

	// Resubmitting the same dump through the non-owner proxies to the
	// owner and hits the store.
	hit, err := service.NewClient(tc.urls[1]).SubmitSource(ctx, bug.Name, bug.Source, dump)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.ID != job.ID {
		t.Fatalf("resubmission = %+v, want a cache hit of job %s", hit, job.ID)
	}

	for i, base := range tc.urls {
		resp, err := http.Get(base + "/v1/jobs/" + hit.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("node %d: cache-hit trace = %d, want 404\n%s", i, resp.StatusCode, body)
		}
		if !json.Valid(body) || !strings.Contains(string(body), "error") {
			t.Fatalf("node %d: 404 body is not a clean error envelope: %s", i, body)
		}
	}
}

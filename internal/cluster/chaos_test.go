package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"res/internal/fault"
	"res/internal/service"
	"res/internal/store"
	"res/internal/workload"
)

// TestClusterChaosAllSeams is the PR's chaos acceptance test: a 3-node
// cluster with seeded faults armed on all four seams — disk errors and
// bit-flips in the store, connection resets and cut bodies on the
// intra-cluster transport (the flapping-peer source), corrupt journal
// appends, and solver stalls — still lands every submitted dump in the
// same crash bucket (cause key) a fault-free run produces. Transient
// errors are allowed (clients retry; submission is content-keyed and
// idempotent); hangs, panics, and lost or misbucketed results are not.
func TestClusterChaosAllSeams(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := failingDumps(t, bug, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Fault-free reference: each dump's cause key.
	refSvc := service.New(service.Config{Analysis: testAnalysis, ShardWorkers: 2})
	progID, err := refSvc.RegisterSource(bug.Name, bug.Source)
	if err != nil {
		t.Fatal(err)
	}
	refBucket := make([]string, len(dumps))
	for i, d := range dumps {
		job, err := refSvc.Submit(progID, d)
		if err != nil {
			t.Fatal(err)
		}
		if job, err = refSvc.Wait(ctx, job.ID); err != nil || job.Status != service.StatusDone {
			t.Fatalf("reference job %d = %+v, err = %v", i, job, err)
		}
		refBucket[i] = job.Bucket
	}
	refSvc.Shutdown(context.Background())

	// One injector per node, seeded deterministically: every seam armed.
	injectors := make([]*fault.Injector, 3)
	tc := startCluster(t, 3, func(tc *testCluster, i int) service.Config {
		in := fault.New(uint64(1000+i),
			fault.Rule{Seam: fault.SeamStore, Kind: fault.KindReadError, P: 0.05},
			fault.Rule{Seam: fault.SeamStore, Kind: fault.KindPartialWrite, P: 0.05},
			fault.Rule{Seam: fault.SeamStore, Kind: fault.KindBitFlip, P: 0.02},
			fault.Rule{Seam: fault.SeamTransport, Kind: fault.KindReset, P: 0.05},
			fault.Rule{Seam: fault.SeamTransport, Kind: fault.KindCutBody, P: 0.03},
			fault.Rule{Seam: fault.SeamDecode, Kind: fault.KindJournalCorrupt, P: 0.02},
			fault.Rule{Seam: fault.SeamSolver, Kind: fault.KindStall, P: 0.5, Delay: 20 * time.Millisecond},
		)
		injectors[i] = in
		cfg := tc.nodeConfig(i)
		cfg.Faults = in
		cfg.Store.SetFaults(in)
		tc.journals[i].SetFaults(in)
		tc.clusterCfg = func(j int, ncfg Config) Config {
			ncfg.Faults = injectors[j]
			ncfg.BreakerCooldown = 200 * time.Millisecond
			return ncfg
		}
		return cfg
	})

	// Submit each dump through a different entry node, retrying through
	// injected transport failures (idempotent: same content, same job).
	jobIDs := make([]string, len(dumps))
	for i, d := range dumps {
		client := service.NewClient(tc.urls[i%len(tc.urls)])
		for {
			job, err := client.SubmitSource(ctx, bug.Name, bug.Source, d)
			if err == nil {
				jobIDs[i] = job.ID
				break
			}
			if ctx.Err() != nil {
				t.Fatalf("dump %d: submission never landed: %v", i, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Every job must reach done with the fault-free cause key. Polls also
	// retry: a cut response body or a transiently opened breaker is a
	// recoverable read, not a lost result.
	for i, id := range jobIDs {
		client := service.NewClient(tc.urls[i%len(tc.urls)])
		for {
			job, err := client.Result(ctx, id)
			if err == nil && job.Status == service.StatusDone && job.Bucket != "" {
				if job.Bucket != refBucket[i] {
					t.Fatalf("dump %d: chaos bucket %q != fault-free bucket %q", i, job.Bucket, refBucket[i])
				}
				break
			}
			if err == nil && job.Status == service.StatusFailed {
				t.Fatalf("dump %d: job failed under chaos: %+v", i, job)
			}
			if ctx.Err() != nil {
				t.Fatalf("dump %d: result never became readable (last: %+v, %v)", i, job, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// The run must actually have been chaotic: the injectors fired.
	var total uint64
	for i, in := range injectors {
		for k, v := range in.Counts() {
			total += v
			t.Logf("node %d fired %s ×%d", i, k, v)
		}
	}
	if total == 0 {
		t.Fatal("chaos run fired no faults — the seams are not wired")
	}
}

// TestRepairReconvergesWipedDisk is the anti-entropy acceptance test: a
// node that lost its entire store reconverges through repair sweeps alone
// — no client read ever touches the wiped keys. Both directions are
// exercised: the healthy peer's sweep pushes what the victim is missing,
// and the victim's own sweep detects and re-pulls a locally corrupted
// artifact.
func TestRepairReconvergesWipedDisk(t *testing.T) {
	bug := workload.RaceCounter()
	dumps := failingDumps(t, bug, 1)

	tc := startCluster(t, 2, (*testCluster).nodeConfig)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(tc.urls[0])
	job, err := client.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job, err = client.PollResult(ctx, job.ID, 10*time.Millisecond); err != nil || job.Status != service.StatusDone {
		t.Fatalf("job = %+v, err = %v", job, err)
	}

	// With Replicas=2 on a 2-node cluster, every replicable key belongs on
	// both nodes. Snapshot the inventory from node 0 before the wipe.
	var want []store.Key
	for _, k := range tc.svcs[0].Store().Keys() {
		if replicable(k) {
			want = append(want, k)
		}
	}
	if len(want) == 0 {
		t.Fatal("no replicable artifacts produced")
	}

	// Wipe node 1: fresh empty store AND journal, so nothing can come back
	// via replay — only repair can restore it.
	victim := 1
	tc.stop(victim)
	if err := os.RemoveAll(filepath.Join(tc.dir, fmt.Sprintf("store-%d", victim))); err != nil {
		t.Fatal(err)
	}
	freshStore, err := store.NewDisk(0, filepath.Join(tc.dir, "wiped-store"))
	if err != nil {
		t.Fatal(err)
	}
	j, err := service.OpenJournal(filepath.Join(tc.dir, "wiped-journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	tc.journals[victim] = j
	tc.boot(victim, service.Config{
		Analysis:     testAnalysis,
		ShardWorkers: 2,
		Store:        freshStore,
		Journal:      j,
	})
	for _, k := range want {
		if _, ok := freshStore.PeekLocal(k); ok {
			t.Fatalf("wiped node still holds %v before repair", k)
		}
	}

	// Direction 1: the HEALTHY node's sweep notices the victim's missing
	// replicas (HEAD probes) and pushes them.
	stats := tc.nodes[0].RepairNow(ctx)
	if stats.Pushed < len(want) {
		t.Fatalf("healthy sweep = %+v, want ≥%d pushes", stats, len(want))
	}
	for _, k := range want {
		data, ok := freshStore.PeekLocal(k)
		if !ok {
			t.Fatalf("repair did not restore %v", k)
		}
		if err := verifyArtifact(k, data); err != nil {
			t.Fatalf("repair restored corrupt bytes for %v: %v", k, err)
		}
	}

	// Direction 2: rot one artifact on the victim in place. Its own sweep
	// (via the POST /internal/v1/repair trigger) must detect the content
	// mismatch, drop it, and re-pull intact bytes from the peer.
	k0 := want[0]
	freshStore.Drop(k0)
	if err := freshStore.PutLocal(k0, []byte("rotted bytes")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.urls[victim]+"/internal/v1/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats2 RepairStats
	if err := json.NewDecoder(resp.Body).Decode(&stats2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats2.Corrupt != 1 || stats2.Pulled < 1 {
		t.Fatalf("victim sweep = %+v, want the rotted artifact dropped and re-pulled", stats2)
	}
	if data, ok := freshStore.PeekLocal(k0); !ok || verifyArtifact(k0, data) != nil {
		t.Fatal("corrupt artifact was not healed")
	}

	// The repair metrics made it to the exposition.
	mresp, err := http.Get(tc.urls[victim] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mbody, []byte("resd_repair_total")) {
		t.Fatal("metrics exposition lacks resd_repair_total")
	}
}

// ---- proxy failover with stub peers ----

// fakePeerRig is one real router node whose two peers are stub handlers:
// the setup for exercising proxy failover behavior (mid-transfer death,
// drain refusal) without needing a real peer to misbehave on cue.
type fakePeerRig struct {
	node    *Node
	svc     *service.Service
	selfURL string
	fp      string // program fingerprint whose order is [fakeA, fakeB, self]
}

func newFakePeerRig(t *testing.T, fakeA, fakeB http.Handler) *fakePeerRig {
	t.Helper()
	srvA := httptest.NewServer(fakeA)
	srvB := httptest.NewServer(fakeB)
	var nodeH atomic.Value
	selfSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, _ := nodeH.Load().(http.Handler)
		if h == nil {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	svc := service.New(service.Config{Analysis: testAnalysis, ShardWorkers: 1})
	node, err := New(Config{
		Self:     selfSrv.URL,
		Peers:    []string{selfSrv.URL, srvA.URL, srvB.URL},
		Replicas: 1,
		Service:  svc,
		// No probes during the test: peer behavior is scripted per request.
		ProbeInterval: time.Hour,
		SpoolDir:      t.TempDir(),
		Client:        &http.Client{Timeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodeH.Store(node.Handler())
	t.Cleanup(func() {
		node.Close()
		svc.Shutdown(context.Background())
		selfSrv.Close()
		srvA.Close()
		srvB.Close()
	})

	// Find a program fingerprint that ranks the stubs first and self last,
	// so routeSubmit must proxy (and fail over) before serving locally.
	for i := 0; ; i++ {
		cand := store.BytesFingerprint([]byte(fmt.Sprintf("rig-probe-%d", i))).String()
		order := rank(node.peers, cand)
		if order[0] == srvA.URL && order[1] == srvB.URL {
			return &fakePeerRig{node: node, svc: svc, selfURL: selfSrv.URL, fp: cand}
		}
	}
}

func (rig *fakePeerRig) counters() (spooled, failovers uint64) {
	rig.node.mu.Lock()
	defer rig.node.mu.Unlock()
	return rig.node.spooledBytes, rig.node.failovers
}

// TestLargeDumpProxyFailoverMidTransfer is the big-body acceptance test:
// a submission well past the old 64MB routing cap crosses the router via
// the disk spool, the owner dies mid-transfer after consuming part of the
// body, and the failover peer still receives the body complete — the
// spool's rewind, not a second client upload, replays it.
func TestLargeDumpProxyFailoverMidTransfer(t *testing.T) {
	var aRead, bRead atomic.Int64
	fakeA := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// Consume a slice of the body, then die mid-transfer.
		n, _ := io.CopyN(io.Discard, r.Body, 1<<20)
		aRead.Add(n)
		panic(http.ErrAbortHandler)
	})
	fakeB := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		n, _ := io.Copy(io.Discard, r.Body)
		bRead.Store(n)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"id":"job-big","status":"queued"}`)
	})
	rig := newFakePeerRig(t, fakeA, fakeB)

	// ~68MB body: the head routes on program_id; the oversized dump value
	// is never materialized by the router (only spooled and streamed).
	var sb strings.Builder
	sb.WriteString(`{"program_id":"` + rig.fp + `","dump":"`)
	chunk := strings.Repeat("Q", 1<<20)
	for i := 0; i < 68; i++ {
		sb.WriteString(chunk)
	}
	sb.WriteString(`"}`)
	body := sb.String()
	if len(body) <= 64<<20 {
		t.Fatalf("test body is only %d bytes; must exceed the old 64MB cap", len(body))
	}

	resp, err := http.Post(rig.selfURL+"/v1/dumps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !bytes.Contains(out, []byte("job-big")) {
		t.Fatalf("failover response = %d %q, want the stub owner's 202", resp.StatusCode, out)
	}
	if got := bRead.Load(); got != int64(len(body)) {
		t.Fatalf("failover peer received %d of %d body bytes", got, len(body))
	}
	if got := aRead.Load(); got >= int64(len(body)) {
		t.Fatalf("dead owner consumed the whole body (%d) — no mid-transfer death happened", got)
	}
	spooled, failovers := rig.counters()
	if spooled < uint64(len(body)) {
		t.Fatalf("spooledBytes = %d, want the body spilled to disk (≥%d)", spooled, len(body))
	}
	if failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1", failovers)
	}
}

// TestDrainFailoverMidFlightProxiedDump: an owner that starts draining
// mid-submission (it consumed part of the proxied body, then answered
// 503) triggers a clean failover; and when every candidate including the
// local node is draining, the client gets a prompt retryable 503 — never
// a hang.
func TestDrainFailoverMidFlightProxiedDump(t *testing.T) {
	var allDraining atomic.Bool
	drainHandler := func(partialRead int64) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			io.CopyN(io.Discard, r.Body, partialRead)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"draining"}`)
		}
	}
	fakeA := drainHandler(512) // drains after eating part of the body
	fakeB := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if allDraining.Load() {
			drainHandler(0)(w, r)
			return
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"id":"job-drain","status":"queued"}`)
	})
	rig := newFakePeerRig(t, fakeA, fakeB)

	body := `{"program_id":"` + rig.fp + `","dump":"` + strings.Repeat("x", 8192) + `"}`
	resp, err := http.Post(rig.selfURL+"/v1/dumps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !bytes.Contains(out, []byte("job-drain")) {
		t.Fatalf("mid-flight drain did not fail over cleanly: %d %q", resp.StatusCode, out)
	}
	if _, failovers := rig.counters(); failovers != 1 {
		t.Fatalf("failovers = %d, want 1", failovers)
	}

	// Whole cluster draining: the local service drains too, and the
	// client must get a prompt, clean 503 — retryable, not a hang.
	if err := rig.svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	allDraining.Store(true)
	bounded := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	resp2, err := bounded.Post(rig.selfURL+"/v1/dumps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("fully-draining cluster hung or broke the connection: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fully-draining cluster answered %d, want a retryable 503", resp2.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain refusal took %v — that is a hang, not a clean error", elapsed)
	}
}

package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// PeerState is one peer's position in the health state machine:
//
//	healthy ──fail──▶ suspect ──fail──▶ down ──ok──▶ recovering ──ok──▶ healthy
//	   ▲                 │ok                              │fail
//	   └─────────────────┘◀───────────────────────────────┘
//
// healthy and suspect peers are routed to (one failed probe is grounds
// for suspicion, not exclusion — the next request's transport error will
// skip it anyway); down peers are not; recovering peers are routed to
// again but must string together RecoverThreshold successful probes
// before they count as healthy — a flapping node that fails mid-recovery
// drops straight back to down.
type PeerState int

const (
	StateHealthy PeerState = iota
	StateSuspect
	StateDown
	StateRecovering
)

func (s PeerState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateRecovering:
		return "recovering"
	}
	return "unknown"
}

// Routable reports whether the router should offer requests to a peer in
// this state.
func (s PeerState) Routable() bool { return s != StateDown }

// peerHealth is one peer's tracked state.
type peerHealth struct {
	state PeerState
	fails int // consecutive failures while healthy/suspect
	oks   int // consecutive successes while recovering
	err   string
	since time.Time
}

// prober runs the health state machine over the peer set. Observations
// come from two sources: periodic GET /healthz probes, and passive
// reports from the router (a proxy that could not reach its target is as
// good as a failed probe and arrives earlier).
type prober struct {
	self      string
	failAfter int // consecutive failures before suspect becomes down
	okAfter   int // consecutive successes before recovering becomes healthy

	// onObserve, when set, is called (outside the lock) with every
	// observation — the hook that feeds the circuit breaker from all
	// existing report sites without touching them.
	onObserve func(peer string, ok bool)

	mu    sync.Mutex
	peers map[string]*peerHealth

	probes, transitions uint64
}

func newProber(self string, peers []string, failAfter, okAfter int) *prober {
	if failAfter < 1 {
		failAfter = 2
	}
	if okAfter < 1 {
		okAfter = 2
	}
	p := &prober{
		self:      self,
		failAfter: failAfter,
		okAfter:   okAfter,
		peers:     make(map[string]*peerHealth),
	}
	now := time.Now()
	for _, n := range peers {
		if n != self {
			p.peers[n] = &peerHealth{state: StateHealthy, since: now}
		}
	}
	return p
}

// observe feeds one observation (probe result or passive report) into
// the state machine.
func (p *prober) observe(peer string, ok bool, errMsg string) {
	if p.onObserve != nil {
		defer p.onObserve(peer, ok)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, known := p.peers[peer]
	if !known {
		return
	}
	prev := ph.state
	if ok {
		ph.err = ""
		switch ph.state {
		case StateHealthy, StateSuspect:
			ph.state = StateHealthy
			ph.fails = 0
		case StateDown:
			ph.state = StateRecovering
			ph.oks = 1
		case StateRecovering:
			ph.oks++
			if ph.oks >= p.okAfter {
				ph.state = StateHealthy
				ph.fails, ph.oks = 0, 0
			}
		}
	} else {
		ph.err = errMsg
		switch ph.state {
		case StateHealthy, StateSuspect:
			ph.state = StateSuspect
			ph.fails++
			if ph.fails >= p.failAfter {
				ph.state = StateDown
			}
		case StateRecovering:
			// Flapped mid-recovery: straight back down.
			ph.state = StateDown
			ph.oks = 0
		case StateDown:
		}
	}
	if ph.state != prev {
		ph.since = time.Now()
		p.transitions++
	}
}

// state returns a peer's current state (self is always healthy).
func (p *prober) state(peer string) PeerState {
	if peer == p.self {
		return StateHealthy
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ph, ok := p.peers[peer]; ok {
		return ph.state
	}
	return StateDown
}

// routable reports whether requests should be offered to peer.
func (p *prober) routable(peer string) bool {
	return peer == p.self || p.state(peer).Routable()
}

// PeerStatus is one peer's health as surfaced by GET /v1/cluster.
type PeerStatus struct {
	Peer  string    `json:"peer"`
	State string    `json:"state"`
	Since time.Time `json:"since"`
	Error string    `json:"error,omitempty"`
}

func (p *prober) snapshot() []PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStatus, 0, len(p.peers))
	for n, ph := range p.peers {
		out = append(out, PeerStatus{Peer: n, State: ph.state.String(), Since: ph.since, Error: ph.err})
	}
	return out
}

// probeLoop polls every peer's /healthz on the interval until ctx ends.
func (p *prober) probeLoop(ctx context.Context, interval time.Duration, hc *http.Client) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		p.mu.Lock()
		targets := make([]string, 0, len(p.peers))
		for n := range p.peers {
			targets = append(targets, n)
		}
		p.probes++
		p.mu.Unlock()
		for _, peer := range targets {
			p.probeOne(ctx, peer, hc)
		}
	}
}

// probeOne performs one /healthz round trip. A 503 (draining node) is a
// failure for routing purposes: the peer would reject proxied work.
func (p *prober) probeOne(ctx context.Context, peer string, hc *http.Client) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		p.observe(peer, false, err.Error())
		return
	}
	resp, err := hc.Do(req)
	if err != nil {
		p.observe(peer, false, err.Error())
		return
	}
	resp.Body.Close()
	p.observe(peer, resp.StatusCode == http.StatusOK, resp.Status)
}

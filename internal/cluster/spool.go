package cluster

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// spool captures a request body once and replays it any number of times.
// Small bodies stay in memory; anything past the memory limit streams to
// an unlinked-on-Close temp file, so a 100MB+ dump crossing the router
// costs one disk spill instead of a heap buffer — and, unlike a plain
// io.Reader, the body survives a failed proxy attempt intact for the
// failover retry.
type spool struct {
	mem  []byte   // exactly one of mem/f is set
	f    *os.File // file-backed when the body outgrew memLimit
	size int64
}

// spoolMemLimit is the largest body kept in memory; bigger bodies go to
// disk. Covers every routine submission (dumps are tiny relative to
// this) while bounding per-request heap under a burst.
const spoolMemLimit = 8 << 20

// newSpool drains r to completion. dir is the temp-file directory ("" =
// the system default).
func newSpool(r io.Reader, dir string) (*spool, error) {
	head := make([]byte, 0, 64<<10)
	buf := make([]byte, 64<<10)
	for int64(len(head)) <= spoolMemLimit {
		nr, err := r.Read(buf)
		head = append(head, buf[:nr]...)
		if err == io.EOF {
			return &spool{mem: head, size: int64(len(head))}, nil
		}
		if err != nil {
			return nil, err
		}
	}
	f, err := os.CreateTemp(dir, "resd-spool-*")
	if err != nil {
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	sp := &spool{f: f}
	nw, err := f.Write(head)
	if err == nil {
		var rest int64
		rest, err = io.Copy(f, r)
		sp.size = int64(nw) + rest
	}
	if err != nil {
		sp.Close()
		return nil, fmt.Errorf("cluster: spool: %w", err)
	}
	return sp, nil
}

// NewReader returns a fresh reader over the full body, positioned at the
// start. Readers are independent and safe to use concurrently (section
// readers carry their own offset; they never seek the shared handle).
func (sp *spool) NewReader() io.Reader {
	if sp.f != nil {
		return io.NewSectionReader(sp.f, 0, sp.size)
	}
	return bytes.NewReader(sp.mem)
}

// Size returns the body's byte length.
func (sp *spool) Size() int64 { return sp.size }

// spilled reports whether the body went to disk.
func (sp *spool) spilled() bool { return sp.f != nil }

// Close releases the temp file, if any.
func (sp *spool) Close() {
	if sp.f != nil {
		name := sp.f.Name()
		sp.f.Close()
		os.Remove(name)
		sp.f = nil
	}
}

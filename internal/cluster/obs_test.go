package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"res/internal/checkpoint"
	"res/internal/evidence"
	"res/internal/service"
	"res/internal/workload"
)

// fetchText GETs a path from a cluster node and returns the body.
func fetchText(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of an exact series line ("name 3" or
// "name{labels} 3") from Prometheus text, or fails.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in:\n%s", series, text)
	return 0
}

// TestClusterMetricsFederation is the observability acceptance test for
// the cluster layer: per-node /metrics (served through the full cluster
// handler, evidence/checkpoint counters and latency histograms
// included) stay node-local, while /v1/cluster/metrics merges the
// fleet — counters summed, histogram buckets merged, gauges tagged with
// a per-node label — from either entry point.
func TestClusterMetricsFederation(t *testing.T) {
	tc := startCluster(t, 2, (*testCluster).nodeConfig)

	// Two programs owned by different nodes, so both nodes analyze.
	ownerOf := func(bug *workload.Bug) int {
		fp := programFP(t, bug)
		owner := rank(tc.urls, fp)[0]
		for i, u := range tc.urls {
			if u == owner {
				return i
			}
		}
		t.Fatalf("owner %s not in %v", owner, tc.urls)
		return -1
	}
	candidates := []*workload.Bug{
		workload.RaceCounter(), workload.Fig1(), workload.AtomViolation(),
		workload.WriteWriteRace(), workload.MultiSiteRace(), workload.UseAfterFree(),
	}
	for k := 4; k <= 24; k++ {
		candidates = append(candidates, workload.DistanceChain(k))
	}
	var bugs [2]*workload.Bug
	for _, bug := range candidates {
		i := ownerOf(bug)
		if bugs[i] == nil {
			bugs[i] = bug
		}
		if bugs[0] != nil && bugs[1] != nil {
			break
		}
	}
	if bugs[0] == nil || bugs[1] == nil {
		t.Fatalf("no candidate program for each owner: %v", bugs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Node 0's program ships WITH EVIDENCE, submitted via node 1 (the
	// non-owner), so the submission crosses the proxy.
	dA, setA, _, err := bugs[0].FindFailureRecorded(60, evidence.RecordConfig{EventEvery: 3, EventWindow: 64, BranchWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	dumpA, err := dA.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	jobA, err := service.NewClient(tc.urls[1]).SubmitSourceEvidenceCheckpoints(
		ctx, bugs[0].Name, bugs[0].Source, dumpA, setA.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Node 1's program ships WITH A CHECKPOINT RING, submitted via node 0.
	dB, ringB, _, err := bugs[1].FindFailureCheckpointed(60, checkpoint.Config{Every: 16})
	if err != nil {
		t.Fatal(err)
	}
	dumpB, err := dB.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := service.NewClient(tc.urls[0]).SubmitSourceEvidenceCheckpoints(
		ctx, bugs[1].Name, bugs[1].Source, dumpB, nil, ringB.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{jobA.ID, jobB.ID} {
		job, err := service.NewClient(tc.urls[i^1]).PollResult(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status != service.StatusDone {
			t.Fatalf("job %s = %+v, want done", id, job)
		}
	}

	// Per-node /metrics through the cluster handler: each node reports
	// exactly its own analysis, with the attachment counters and the
	// latency histograms of the work it ran.
	m0 := fetchText(t, tc.urls[0], "/metrics")
	m1 := fetchText(t, tc.urls[1], "/metrics")
	if v := metricValue(t, m0, "resd_evidence_attached_total"); v != 1 {
		t.Errorf("node0 resd_evidence_attached_total = %g, want 1", v)
	}
	if !strings.Contains(m0, `resd_evidence_sources_total{kind=`) {
		t.Error("node0 metrics missing per-kind evidence counters")
	}
	if v := metricValue(t, m1, "resd_checkpoint_attached_total"); v != 1 {
		t.Errorf("node1 resd_checkpoint_attached_total = %g, want 1", v)
	}
	if v := metricValue(t, m1, "resd_checkpoint_anchored_total"); v != 1 {
		t.Errorf("node1 resd_checkpoint_anchored_total = %g, want 1", v)
	}
	for i, m := range []string{m0, m1} {
		if v := metricValue(t, m, "resd_analysis_seconds_count"); v != 1 {
			t.Errorf("node%d resd_analysis_seconds_count = %g, want 1", i, v)
		}
		if !strings.Contains(m, "resd_cluster_proxy_seconds_bucket") {
			t.Errorf("node%d metrics missing the proxy-hop histogram", i)
		}
	}

	// Federation, from either entry point: ingest counters sum, histogram
	// buckets merge, and per-node gauges carry a node label.
	for i := range tc.urls {
		fed := fetchText(t, tc.urls[i], "/v1/cluster/metrics")
		if v := metricValue(t, fed, "resd_submitted_total"); v != 2 {
			t.Errorf("entry %d: federated resd_submitted_total = %g, want 2", i, v)
		}
		if v := metricValue(t, fed, "resd_completed_total"); v != 2 {
			t.Errorf("entry %d: federated resd_completed_total = %g, want 2", i, v)
		}
		if v := metricValue(t, fed, "resd_analysis_seconds_count"); v != 2 {
			t.Errorf("entry %d: federated resd_analysis_seconds_count = %g, want 2", i, v)
		}
		if v := metricValue(t, fed, "resd_evidence_attached_total"); v != 1 {
			t.Errorf("entry %d: federated resd_evidence_attached_total = %g, want 1", i, v)
		}
		for _, u := range tc.urls {
			if !strings.Contains(fed, `node="`+u+`"`) {
				t.Errorf("entry %d: federated gauges missing node label for %s", i, u)
			}
		}
		if n := strings.Count(fed, "resd_build_info{"); n != 2 {
			t.Errorf("entry %d: %d resd_build_info series, want one per node", i, n)
		}
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"res"
	"res/internal/service"
	"res/internal/store"
)

// fixBuggySrc fails deterministically: x is 5 but the check asserts 4.
const fixBuggySrc = `
.global x 1
func main:
    const r1, 5
    storeg r1, &x
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
site:
    assert r4
    halt
`

const fixGoodPatch = `replace check
    loadg r2, &x
    const r3, 5
    cmpeq r4, r2, r3
end
`

// TestTwoNodeFixAndMinimizeRouting is the closing-the-loop acceptance
// test at cluster scope: a fix submitted to the NON-owning node routes
// to the program's owner (like dumps do), the verdict is byte-identical
// when fetched via either node, and a minimize request for the owner's
// job routes to the node that holds the job's tuple.
func TestTwoNodeFixAndMinimizeRouting(t *testing.T) {
	p := res.MustAssemble(fixBuggySrc)
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil || d == nil {
		t.Fatalf("run: %v, dump %v", err, d)
	}
	dump, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := store.ProgramFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}

	tc := startCluster(t, 2, (*testCluster).nodeConfig)
	order := rank(tc.urls, fp.String())
	ownerIdx, otherIdx := -1, -1
	for i, u := range tc.urls {
		if u == order[0] {
			ownerIdx = i
		} else {
			otherIdx = i
		}
	}
	if ownerIdx < 0 || otherIdx < 0 {
		t.Fatalf("could not map owner %s into %v", order[0], tc.urls)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := service.NewClient(tc.urls[otherIdx])

	// Submit the fix to the NON-owner; the router must proxy it.
	job, err := client.SubmitFix(ctx, service.SubmitFixRequest{
		ProgramName:   "fix-buggy",
		ProgramSource: fixBuggySrc,
		Patch:         []byte(fixGoodPatch),
		Dump:          dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err = client.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var vrep struct {
		Kind    string `json:"kind"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal(job.Report, &vrep); err != nil {
		t.Fatal(err)
	}
	if job.Status != service.StatusDone || vrep.Kind != "fixverify" || vrep.Verdict != "fixed" {
		t.Fatalf("fix job = %+v report %s, want done fixed", job, job.Report)
	}
	if m := tc.svcs[ownerIdx].Metrics(); m.FixVerifyTotal != 1 {
		t.Fatalf("owner metrics = %+v, want the verification to have run on the owner", m)
	}
	if m := tc.svcs[otherIdx].Metrics(); m.FixVerifyTotal != 0 {
		t.Fatalf("non-owner metrics = %+v, want no local verification", m)
	}

	// The verdict answers byte-identically from BOTH nodes.
	for i := range tc.urls {
		got, err := service.NewClient(tc.urls[i]).Result(ctx, job.ID)
		if err != nil {
			t.Fatalf("node %d result: %v", i, err)
		}
		if got.Status != service.StatusDone || !bytes.Equal(got.Report, job.Report) {
			t.Fatalf("node %d served %+v, want the byte-identical verdict", i, got)
		}
	}

	// Resubmitting the same (tuple, patch) through either node is a cache
	// hit on the same job, byte-identical.
	again, err := service.NewClient(tc.urls[ownerIdx]).SubmitFix(ctx, service.SubmitFixRequest{
		ProgramName:   "fix-buggy",
		ProgramSource: fixBuggySrc,
		Patch:         []byte(fixGoodPatch),
		Dump:          dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID || !again.Cached || !bytes.Equal(again.Report, job.Report) {
		t.Fatalf("resubmitted fix = %+v, want cached byte-identical verdict", again)
	}

	// Minimize: analyze the dump, then ask the NON-owner to minimize the
	// owner's job — the request must route to the node holding the tuple.
	aj, err := client.SubmitSource(ctx, "fix-buggy", fixBuggySrc, dump)
	if err != nil {
		t.Fatal(err)
	}
	if aj, err = client.PollResult(ctx, aj.ID, 10*time.Millisecond); err != nil || aj.Status != service.StatusDone {
		t.Fatalf("analysis job = %+v, err %v", aj, err)
	}
	mj, err := client.MinimizeJob(ctx, aj.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mj, err = client.PollResult(ctx, mj.ID, 10*time.Millisecond); err != nil || mj.Status != service.StatusDone {
		t.Fatalf("minimize job = %+v, err %v", mj, err)
	}
	var mrep struct {
		Kind  string `json:"kind"`
		Repro []byte `json:"repro"`
	}
	if err := json.Unmarshal(mj.Report, &mrep); err != nil {
		t.Fatal(err)
	}
	if mrep.Kind != "minimal-repro" {
		t.Fatalf("minimize report = %s, want kind minimal-repro", mj.Report)
	}
	if _, err := res.DecodeMinimalRepro(mrep.Repro); err != nil {
		t.Fatalf("repro bytes do not decode: %v", err)
	}
	if m := tc.svcs[ownerIdx].Metrics(); m.MinimizeTotal != 1 {
		t.Fatalf("owner metrics = %+v, want the minimization on the owner", m)
	}
}

package cluster

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// ---- circuit breaker ----

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	if !b.allow("p") {
		t.Fatal("fresh peer rejected")
	}
	b.observe("p", false)
	b.observe("p", false)
	if !b.allow("p") {
		t.Fatal("circuit opened below the threshold")
	}
	b.observe("p", false)
	if b.allow("p") {
		t.Fatal("circuit did not open at the threshold")
	}
	if open, trips := b.snapshot(); open != 1 || trips != 1 {
		t.Fatalf("snapshot after trip = (%d open, %d trips), want (1, 1)", open, trips)
	}

	// Half-open: after the cooldown exactly one trial is admitted.
	time.Sleep(60 * time.Millisecond)
	if !b.allow("p") {
		t.Fatal("no half-open trial after the cooldown")
	}
	if b.allow("p") {
		t.Fatal("second trial admitted while the first is in flight")
	}
	// The trial fails: the circuit re-arms its cooldown.
	b.observe("p", false)
	if b.allow("p") {
		t.Fatal("failed trial did not re-open the circuit")
	}
	if _, trips := b.snapshot(); trips != 1 {
		t.Fatalf("re-arming an open circuit counted as a new trip (%d)", trips)
	}

	// Next trial succeeds: fully closed, unlimited traffic.
	time.Sleep(60 * time.Millisecond)
	if !b.allow("p") {
		t.Fatal("no trial after the re-armed cooldown")
	}
	b.observe("p", true)
	for i := 0; i < 3; i++ {
		if !b.allow("p") {
			t.Fatal("closed circuit rejecting traffic")
		}
	}
	if open, _ := b.snapshot(); open != 0 {
		t.Fatalf("%d circuits open after recovery, want 0", open)
	}

	// A success from anywhere (e.g. a background probe) closes an open
	// circuit without waiting for the cooldown.
	b.observe("p", false)
	b.observe("p", false)
	b.observe("p", false)
	if b.allow("p") {
		t.Fatal("circuit should be open again")
	}
	b.observe("p", true)
	if !b.allow("p") {
		t.Fatal("probe success did not close the open circuit")
	}
}

// ---- disk spool ----

func TestSpoolMemoryAndSpill(t *testing.T) {
	dir := t.TempDir()

	small := []byte("a small submission body")
	sp, err := newSpool(bytes.NewReader(small), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if sp.spilled() || sp.Size() != int64(len(small)) {
		t.Fatalf("small body: spilled=%v size=%d", sp.spilled(), sp.Size())
	}
	got, _ := io.ReadAll(sp.NewReader())
	if !bytes.Equal(got, small) {
		t.Fatal("small body round-trip mismatch")
	}

	// A body past the memory limit spills to a temp file; readers are
	// independent (each starts at offset 0) and Close removes the file.
	big := bytes.Repeat([]byte("0123456789abcdef"), (spoolMemLimit/16)+1024)
	sp2, err := newSpool(bytes.NewReader(big), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sp2.spilled() || sp2.Size() != int64(len(big)) {
		t.Fatalf("big body: spilled=%v size=%d want %d", sp2.spilled(), sp2.Size(), len(big))
	}
	name := sp2.f.Name()
	if _, err := os.Stat(name); err != nil {
		t.Fatalf("spool file missing: %v", err)
	}
	r1, r2 := sp2.NewReader(), sp2.NewReader()
	head := make([]byte, 1024)
	if _, err := io.ReadFull(r1, head); err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(r2)
	if err != nil || !bytes.Equal(all, big) {
		t.Fatalf("second reader not independent/complete: %v", err)
	}
	rest, err := io.ReadAll(r1)
	if err != nil || !bytes.Equal(append(head, rest...), big) {
		t.Fatalf("first reader lost its offset: %v", err)
	}
	sp2.Close()
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("Close left the spool file behind: %v", err)
	}
}

// ---- streaming submit-head parser ----

// failAfterEOF errors on any Read: appended after a prefix it proves the
// parser stopped inside the prefix.
type failReader struct{}

func (failReader) Read([]byte) (int, error) {
	return 0, fmt.Errorf("parser read past the routing head")
}

func TestParseSubmitHeadEarlyExit(t *testing.T) {
	// program_id first, then a dump field whose value lives past the fail
	// point: the parser must stop at the dump key without touching the
	// payload. The padding keeps the decoder's read-ahead buffer inside
	// the safe prefix.
	prefix := `{"program_id":"deadbeef","dump":"` + strings.Repeat("A", 64<<10)
	h, err := parseSubmitHead(io.MultiReader(strings.NewReader(prefix), failReader{}))
	if err != nil {
		t.Fatalf("parser did not early-exit before the dump payload: %v", err)
	}
	if h.ProgramID != "deadbeef" {
		t.Fatalf("head = %+v", h)
	}

	// Batch form routes on the same head: "dumps" triggers the same stop.
	prefix = `{"program_source":"mov r0, 1","dumps":["` + strings.Repeat("B", 64<<10)
	h, err = parseSubmitHead(io.MultiReader(strings.NewReader(prefix), failReader{}))
	if err != nil || h.ProgramSource != "mov r0, 1" {
		t.Fatalf("batch head = %+v, err = %v", h, err)
	}
}

func TestParseSubmitHeadReorderedAndEdgeCases(t *testing.T) {
	// A client that puts the dump first still routes — the parser skips
	// the payload value and finds the program afterwards.
	dump := base64.StdEncoding.EncodeToString(bytes.Repeat([]byte{0xAB}, 4096))
	body := fmt.Sprintf(`{"dump":%q,"options":{"max_depth":5,"nested":[1,{"a":2}]},"program_id":"cafe"}`, dump)
	h, err := parseSubmitHead(strings.NewReader(body))
	if err != nil || h.ProgramID != "cafe" {
		t.Fatalf("reordered head = %+v, err = %v", h, err)
	}

	// No program field at all: empty head, no error (fingerprint
	// resolution rejects it later with a proper message).
	h, err = parseSubmitHead(strings.NewReader(`{"dump":"xyz"}`))
	if err != nil || h.ProgramID != "" || h.ProgramSource != "" {
		t.Fatalf("program-less head = %+v, err = %v", h, err)
	}

	// Not an object: a clean parse error, not a panic.
	if _, err := parseSubmitHead(strings.NewReader(`[1,2,3]`)); err == nil {
		t.Fatal("array body accepted")
	}
	if _, err := parseSubmitHead(strings.NewReader(``)); err == nil {
		t.Fatal("empty body accepted")
	}
}

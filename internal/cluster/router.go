package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"time"

	"res/internal/obs"
	"res/internal/service"
)

// Handler returns the node's cluster-aware HTTP API. It serves the same
// public surface as a single resd (the cluster is invisible to clients —
// any node answers any request), plus the cluster's own endpoints:
//
//	GET /v1/cluster                     membership + per-peer health
//	GET /v1/cluster/route/{program}     a program's owner + failover order
//	GET /v1/cluster/metrics             federated cluster-wide metrics
//	GET /internal/v1/metrics            this node's snapshot (JSON), the
//	                                    unit the federation merges
//	GET /internal/v1/trace/{id}         this node's trace fragments for a
//	                                    job (service + routing layer), the
//	                                    unit the trace stitcher merges
//	GET /internal/v1/store/{id}         replication: serve one artifact
//	PUT /internal/v1/store/{id}         replication: accept one artifact
//
// Routing: dump submissions are proxied to the program's rendezvous
// owner (failing over down the preference order when the owner is
// unreachable), result lookups try the local service, then the local
// store's replica tier, then the peers, and bucket listings merge the
// whole cluster's view. Trace lookups stitch: every node's fragments
// for the job are gathered and merged into one tree.
func (n *Node) Handler() http.Handler {
	local := n.svc.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dumps", n.routeSubmit)
	mux.HandleFunc("POST /v1/dumps/batch", n.routeSubmit)
	mux.HandleFunc("POST /v1/fixes", n.routeSubmit)
	mux.HandleFunc("POST /v1/jobs/{id}/minimize", n.handleMinimize)
	mux.HandleFunc("POST /v1/programs", n.handleRegister)
	mux.HandleFunc("GET /v1/results/{id}", n.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", n.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", n.handleJobTrace)
	mux.HandleFunc("GET /v1/buckets", n.handleBuckets)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /v1/cluster", n.handleStatus)
	mux.HandleFunc("GET /v1/cluster/route/{program}", n.handleRoute)
	mux.HandleFunc("GET /v1/cluster/metrics", n.handleClusterMetrics)
	mux.HandleFunc("GET /internal/v1/metrics", n.handleNodeMetrics)
	mux.HandleFunc("GET /internal/v1/trace/{id}", n.handleTraceFragments)
	mux.HandleFunc("GET /internal/v1/store/{id}", n.handleStoreGet)
	mux.HandleFunc("PUT /internal/v1/store/{id}", n.handleStorePut)
	mux.HandleFunc("GET /internal/v1/store-index", n.handleStoreIndex)
	mux.HandleFunc("POST /internal/v1/repair", n.handleRepair)
	mux.Handle("/", local)
	return n.recoverPanics(mux)
}

// recoverPanics converts a routing-layer panic into a 500 after dumping
// the flight recorder, mirroring the service's own recovery for the
// handlers the cluster mux serves itself.
func (n *Node) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil || rec == http.ErrAbortHandler {
				return
			}
			slog.Error("cluster handler panic", "node", n.self, "path", r.URL.Path, "panic", fmt.Sprint(rec))
			n.fr.Record(obs.FlightEvent{Kind: "panic", Msg: fmt.Sprintf("%s: %v", r.URL.Path, rec)})
			n.fr.Dump(os.Stderr, "panic in "+r.URL.Path)
			writeErr(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: fmt.Sprintf(format, args...)})
}

// forwarded reports whether the request already made an intra-cluster
// hop and must be served locally (the loop guard).
func forwarded(r *http.Request) bool { return r.Header.Get(forwardedHeader) != "" }

// serveLocal replays a buffered request body into the local service.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	n.svc.Handler().ServeHTTP(w, r2)
}

// serveSpool replays a spooled request body into the local service.
func (n *Node) serveSpool(w http.ResponseWriter, r *http.Request, sp *spool) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(sp.NewReader())
	r2.ContentLength = sp.Size()
	n.svc.Handler().ServeHTTP(w, r2)
}

// maxRouteBody mirrors the service's own request bound (small control
// endpoints that never carry a dump keep this fixed cap).
const maxRouteBody = 64 << 20

// routeSubmit is the dump ingestion router, shared by the single and
// batch endpoints (both route on the same program head fields): pick the
// program's owner by rendezvous hash, serve locally if that is us,
// otherwise proxy — failing over down the preference order past down or
// unreachable nodes. The body is spooled, not buffered: a big dump
// spills to a temp file and streams to the owner, so the router's memory
// cost per request is bounded regardless of dump size, and the spool's
// rewind makes the body replayable for failover after a dead owner ate
// the first attempt.
func (n *Node) routeSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := newSpool(http.MaxBytesReader(w, r.Body, n.maxBody), n.spoolDir)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	defer sp.Close()
	if sp.spilled() {
		n.mu.Lock()
		n.spooledBytes += uint64(sp.Size())
		n.mu.Unlock()
	}
	if forwarded(r) {
		// The proxying node already routed (and traced) this hop; the
		// traceparent header it set rides into the local service intact.
		n.serveSpool(w, r, sp)
		return
	}
	head, err := parseSubmitHead(sp.NewReader())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	fp, err := n.programFingerprint(head.ProgramID, head.ProgramSource)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// This node is the ingest edge: adopt the client's trace context when
	// it sent one, mint the request's trace ID otherwise, and record the
	// routing decision as this node's fragment of the distributed trace.
	tr := obs.NewTraceCtx("route", obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)), n.self)
	tr.Root().SetStr("program", fp)
	if sp.spilled() {
		tr.Root().SetStr("spooled", "true")
	}
	n.routeToOwner(w, r, sp, fp, tr)
}

// recordRouteFrag files the ingest edge's trace fragment once the
// response has been written, keyed by the job ID the serving node
// reported in its response headers. Cache hits are skipped — their
// trace endpoint 404s by design, and a routing fragment would turn
// that into a misleading one-span "trace".
func (n *Node) recordRouteFrag(w http.ResponseWriter, tr *obs.Trace) {
	if w.Header().Get(service.CachedHeader) == "true" {
		return
	}
	if jobID := w.Header().Get(service.JobHeader); jobID != "" {
		n.frags.Add(jobID, tr.Finish())
		slog.Info("submission routed", "trace_id", tr.ID(), "job_id", jobID, "node", n.self)
	}
}

// submitHead is the routing-relevant prefix of a submission body.
type submitHead struct {
	ProgramID     string
	ProgramSource string
}

// parseSubmitHead extracts the program fields from a submission body by
// streaming tokens instead of unmarshaling the whole object — the body
// may carry a dump orders of magnitude larger than the head, and routing
// must not materialize it. Our own client marshals the program fields
// before the dump (struct field order), so the scan normally stops long
// before the payload; a client that reorders fields still parses, just
// slower.
func parseSubmitHead(r io.Reader) (submitHead, error) {
	var h submitHead
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return h, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return h, fmt.Errorf("request body is not a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return h, err
		}
		key, _ := keyTok.(string)
		// Once a routing key is known, stop before the payload fields —
		// decoding a 100MB base64 dump token to discard it is the exact
		// cost this parser exists to avoid.
		if (key == "dump" || key == "dumps" || key == "evidence" || key == "checkpoints" || key == "patch") &&
			(h.ProgramID != "" || h.ProgramSource != "") {
			return h, nil
		}
		switch key {
		case "program_id":
			if err := dec.Decode(&h.ProgramID); err != nil {
				return h, err
			}
		case "program_source":
			if err := dec.Decode(&h.ProgramSource); err != nil {
				return h, err
			}
		default:
			if err := skipJSONValue(dec); err != nil {
				return h, err
			}
		}
		if h.ProgramID != "" {
			// program_id wins over program_source in routing; no later
			// field can change the decision.
			return h, nil
		}
	}
	return h, nil
}

// skipJSONValue consumes one JSON value (scalar, object, or array) from
// the decoder.
func skipJSONValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}

// routeToOwner walks the key's preference order: self serves locally, a
// routable peer gets a proxy attempt, down nodes are skipped, and
// transport failures and draining targets (503) fail over to the next
// candidate. A request served by anyone but order[0] counts as a
// failover. Every attempt — the failed ones included — gets a span in
// the routing fragment tr, and the serving hop's traceparent rides the
// forwarded request so the serving node's fragment parents under it.
func (n *Node) routeToOwner(w http.ResponseWriter, r *http.Request, sp *spool, programFP string, tr *obs.Trace) {
	order := rank(n.peers, programFP)
	var lastErr string
	for i, target := range order {
		if target == n.self {
			if i > 0 {
				n.countFailover()
			}
			span := tr.Root().Child("local")
			span.SetInt("attempt", int64(i))
			r.Header.Set(obs.TraceparentHeader, tr.Context(span).Traceparent())
			n.serveSpool(w, r, sp)
			span.End()
			n.recordRouteFrag(w, tr)
			return
		}
		if !n.routable(target) {
			lastErr = target + " is down"
			continue
		}
		span := tr.Root().Child("proxy")
		span.SetStr("peer", target)
		span.SetInt("attempt", int64(i))
		ok, errMsg := n.proxy(w, r, sp, target, tr.Context(span).Traceparent())
		span.End()
		if ok {
			if i > 0 {
				n.countFailover()
			}
			n.recordRouteFrag(w, tr)
			return
		}
		span.SetStr("error", errMsg)
		lastErr = errMsg
		n.prober.observe(target, false, errMsg)
	}
	writeErr(w, http.StatusBadGateway, "no live node for program %s: %s", programFP, lastErr)
}

func (n *Node) countFailover() {
	n.mu.Lock()
	n.failovers++
	n.mu.Unlock()
}

// proxy relays the spooled request to target. The bool reports whether
// the response was delivered; false means the caller may fail over (the
// target was unreachable or draining — nothing was written to w). The
// spool's rewind is what makes the failover safe: a target that died
// mid-transfer consumed a throwaway reader, not the body. traceparent,
// when non-empty, carries the routing span's context to the target; the
// job/trace/cached response headers are relayed back so the ingest edge
// (and the client) learn the job identity this hop produced.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, sp *spool, target, traceparent string) (bool, string) {
	t0 := time.Now()
	defer func() { n.histProxy.Observe(time.Since(t0).Seconds()) }()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, sp.NewReader())
	if err != nil {
		return false, err.Error()
	}
	req.ContentLength = sp.Size()
	req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(sp.NewReader()), nil }
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.Header.Set(forwardedHeader, n.self)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// The owner is draining: it answered, but will not take the work.
		io.Copy(io.Discard, resp.Body)
		return false, resp.Status
	}
	n.mu.Lock()
	n.proxied++
	n.mu.Unlock()
	n.prober.observe(target, true, "")
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	for _, h := range []string{service.JobHeader, service.TraceHeader, service.CachedHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true, ""
}

// handleRegister registers the program locally and broadcasts the
// registration to every routable peer. Registration is content-keyed
// and idempotent, so the broadcast just pre-warms shards fleet-wide —
// any node can then accept the program's dumps by ID even after a
// failover (submissions carrying source never needed the broadcast).
func (n *Node) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if !forwarded(r) {
		for _, peer := range n.peers {
			if peer == n.self || !n.routable(peer) {
				continue
			}
			req, err := http.NewRequest(http.MethodPost, peer+"/v1/programs", bytes.NewReader(body))
			if err != nil {
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(forwardedHeader, n.self)
			if resp, err := n.hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	n.serveLocal(w, r, body)
}

// handleResult answers a result poll from, in order: the local service
// (it ran or restored the job — the record carries the full metadata:
// bucket, program, timings), then the peers (one of them ran it), and
// finally the local store's replica tier — a bare but correct answer
// that keeps results readable even when every node that knew the job's
// metadata is gone.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if job, ok := n.svc.Job(id); ok {
		writeJSON(w, http.StatusOK, job)
		return
	}
	if !forwarded(r) {
		for _, peer := range n.peers {
			if peer == n.self || !n.routable(peer) {
				continue
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/v1/results/"+id, nil)
			if err != nil {
				continue
			}
			req.Header.Set(forwardedHeader, n.self)
			resp, err := n.hc.Do(req)
			if err != nil {
				n.prober.observe(peer, false, err.Error())
				continue
			}
			if resp.StatusCode == http.StatusOK {
				n.mu.Lock()
				n.proxied++
				n.mu.Unlock()
				w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
				w.WriteHeader(http.StatusOK)
				io.Copy(w, resp.Body)
				resp.Body.Close()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if data, ok := n.st.GetByID(id); ok && id != journalSnapshotID && looksLikeReport(data) {
		// The replica tier is the answer of last resort: every node that
		// knew the job's metadata is gone, so the recovery is worth a
		// flight-recorder entry.
		n.fr.Record(obs.FlightEvent{Kind: "repair", JobID: id,
			Msg: "result served from the replica tier (no node knows the job)"})
		writeJSON(w, http.StatusOK, service.Job{
			ID:     id,
			Status: service.StatusDone,
			Cached: true,
			Report: json.RawMessage(data),
		})
		return
	}
	writeErr(w, http.StatusNotFound, "unknown job %s", id)
}

// handleJobEvents serves a job's progress stream: locally when this node
// runs (or ran) the job, otherwise proxied live from the peer that does,
// flushing per chunk so NDJSON progress lines arrive as they are
// produced. The stream proxy uses an untimed client — a watch legally
// outlives the router's request timeout.
func (n *Node) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := n.svc.Job(id); ok || forwarded(r) {
		n.svc.Handler().ServeHTTP(w, r)
		return
	}
	streamClient := &http.Client{Transport: n.hc.Transport}
	for _, peer := range n.peers {
		if peer == n.self || !n.routable(peer) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedHeader, n.self)
		resp, err := streamClient.Do(req)
		if err != nil {
			n.prober.observe(peer, false, err.Error())
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		n.mu.Lock()
		n.proxied++
		n.mu.Unlock()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(http.StatusOK)
		flushCopy(w, resp.Body)
		resp.Body.Close()
		return
	}
	// No peer knows the job either: the local service renders the
	// canonical answer (a store-backed status, or 404).
	n.svc.Handler().ServeHTTP(w, r)
}

// handleMinimize routes a minimize request to the node that holds the
// job's input tuple: locally when this node knows the job, otherwise to
// the peer that does. Minimization needs the retained attachments and
// the archived dump, which only the node that ran (or cache-served) the
// analysis holds — the cluster routes by job, not by program, because
// the job ID alone identifies where that state lives.
func (n *Node) handleMinimize(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if _, ok := n.svc.Job(id); ok || forwarded(r) {
		n.serveLocal(w, r, body)
		return
	}
	for _, peer := range n.peers {
		if peer == n.self || !n.routable(peer) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, peer+"/v1/jobs/"+id+"/minimize", bytes.NewReader(body))
		if err != nil {
			continue
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		req.Header.Set(forwardedHeader, n.self)
		resp, err := n.hc.Do(req)
		if err != nil {
			n.prober.observe(peer, false, err.Error())
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			// This peer does not know the job; keep looking.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		n.mu.Lock()
		n.proxied++
		n.mu.Unlock()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		for _, h := range []string{service.JobHeader, service.TraceHeader, service.CachedHeader} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	// No node knows the job: the local service renders the canonical 404.
	n.serveLocal(w, r, body)
}

// flushCopy streams r to w, flushing after every chunk so proxied
// event lines are delivered live rather than buffered.
func flushCopy(w http.ResponseWriter, r io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, err := r.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// localFragments gathers everything this node recorded for a job: the
// routing layer's fragments (proxy hops, read-through and repair pulls)
// plus the service's (the request fragment and the analysis span tree).
func (n *Node) localFragments(id string) []*obs.TraceData {
	return append(n.frags.Get(id), n.svc.TraceFragments(id)...)
}

// handleJobTrace is the cluster-wide trace stitcher: it gathers every
// node's span fragments for the job — this node's routing and service
// fragments plus each routable peer's via GET /internal/v1/trace/{id} —
// and serves them merged into one tree. Any node can answer for any
// job: the ingest edge holds the routing fragment, the analyzing node
// the request and analysis fragments, and repair or read-through pulls
// may have scattered more. Jobs with no fragments anywhere (cache hits,
// replayed records) fall through to the local service's canonical 404.
func (n *Node) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	frags := n.localFragments(id)
	if !forwarded(r) {
		for _, peer := range n.peers {
			if peer == n.self || !n.routable(peer) {
				continue
			}
			frags = append(frags, n.peerFragments(r, peer, id)...)
		}
	}
	tr := obs.Stitch(frags)
	if tr == nil {
		// The local service renders the canonical answer: a no-trace 404
		// for a job it knows (a cache hit), or unknown job.
		n.svc.Handler().ServeHTTP(w, r)
		return
	}
	service.WriteTrace(w, r, tr)
}

// peerFragments fetches one peer's raw fragments for a job.
func (n *Node) peerFragments(r *http.Request, peer, id string) []*obs.TraceData {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/internal/v1/trace/"+id, nil)
	if err != nil {
		return nil
	}
	req.Header.Set(forwardedHeader, n.self)
	resp, err := n.hc.Do(req)
	if err != nil {
		n.prober.observe(peer, false, err.Error())
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var frags []*obs.TraceData
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&frags); err != nil {
		return nil
	}
	return frags
}

// handleTraceFragments serves this node's fragments for a job — the
// routing layer's ring plus the service's — to a stitching peer. An
// empty list is a 200: "nothing recorded here" is an answer.
func (n *Node) handleTraceFragments(w http.ResponseWriter, r *http.Request) {
	frags := n.localFragments(r.PathValue("id"))
	if frags == nil {
		frags = []*obs.TraceData{}
	}
	writeJSON(w, http.StatusOK, frags)
}

// journalSnapshotID is the one store ID that must never leave the node:
// the journal snapshot mirror holds program sources and the full job
// history under a globally constant key, and it is neither a result nor
// a replicated artifact.
var journalSnapshotID = service.JournalSnapshotKey().ID()

// looksLikeReport guards the by-ID store path: only JSON objects (result
// reports) are served as results — a dump blob whose ID was guessed is
// not a job.
func looksLikeReport(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{' && json.Valid(data)
}

// handleBuckets merges the whole cluster's crash-dedup view: the same
// root cause analyzed on two nodes is still one bucket.
func (n *Node) handleBuckets(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]map[string]bool)
	add := func(bs []service.Bucket) {
		for _, b := range bs {
			ids := merged[b.Key]
			if ids == nil {
				ids = make(map[string]bool)
				merged[b.Key] = ids
			}
			for _, id := range b.JobIDs {
				ids[id] = true
			}
		}
	}
	add(n.svc.Buckets())
	if !forwarded(r) {
		for _, peer := range n.peers {
			if peer == n.self || !n.routable(peer) {
				continue
			}
			if bs, err := n.peerBuckets(r, peer); err == nil {
				add(bs)
			}
		}
	}
	out := make([]service.Bucket, 0, len(merged))
	for k, ids := range merged {
		b := service.Bucket{Key: k, Count: len(ids)}
		for id := range ids {
			b.JobIDs = append(b.JobIDs, id)
		}
		sort.Strings(b.JobIDs)
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	writeJSON(w, http.StatusOK, struct {
		Buckets []service.Bucket `json:"buckets"`
	}{Buckets: out})
}

func (n *Node) peerBuckets(r *http.Request, peer string) ([]service.Bucket, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/v1/buckets", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(forwardedHeader, n.self)
	resp, err := n.hc.Do(req)
	if err != nil {
		n.prober.observe(peer, false, err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s", resp.Status)
	}
	var parsed struct {
		Buckets []service.Bucket `json:"buckets"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&parsed); err != nil {
		return nil, err
	}
	return parsed.Buckets, nil
}

// Status is the GET /v1/cluster body.
type Status struct {
	Self     string       `json:"self"`
	Peers    []string     `json:"peers"`
	Replicas int          `json:"replicas"`
	Health   []PeerStatus `json:"health"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	health := n.prober.snapshot()
	sort.Slice(health, func(i, j int) bool { return health[i].Peer < health[j].Peer })
	writeJSON(w, http.StatusOK, Status{
		Self:     n.self,
		Peers:    n.Peers(),
		Replicas: n.replicas,
		Health:   health,
	})
}

// RouteInfo is the GET /v1/cluster/route/{program} body: where a
// program's dumps go, in failover order. Scripts (and the CI smoke test)
// use it to find a program's owner without reimplementing the hash.
type RouteInfo struct {
	Program string   `json:"program"`
	Owner   string   `json:"owner"`
	Order   []string `json:"order"`
	Replica []string `json:"replicas"`
}

func (n *Node) handleRoute(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("program")
	order := rank(n.peers, fp)
	replicas := order
	if len(replicas) > n.replicas {
		replicas = replicas[:n.replicas]
	}
	writeJSON(w, http.StatusOK, RouteInfo{
		Program: fp,
		Owner:   order[0],
		Order:   order,
		Replica: replicas,
	})
}

// handleStoreGet serves one artifact to a pulling peer. Local tiers
// only: answering from our own fetch path would let two missing nodes
// ping-pong forever. The journal snapshot's constant ID is refused —
// it is node-local state, not a replicated artifact.
func (n *Node) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if r.PathValue("id") == journalSnapshotID {
		writeErr(w, http.StatusNotFound, "no artifact %s", r.PathValue("id"))
		return
	}
	data, ok := n.st.GetByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no artifact %s", r.PathValue("id"))
		return
	}
	if r.Method == http.MethodHead {
		// The repair sweep's existence probe: status only, and not
		// counted as a serve.
		w.WriteHeader(http.StatusOK)
		return
	}
	n.mu.Lock()
	n.served++
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleStoreIndex serves this node's replicable key inventory — what a
// sweeping peer unions into its repair work list. Keys only, never data;
// the journal space and other node-local keys are excluded.
func (n *Node) handleStoreIndex(w http.ResponseWriter, r *http.Request) {
	keys := n.st.Keys()
	recs := make([]keyRecord, 0, len(keys))
	for _, k := range keys {
		if !replicable(k) {
			continue
		}
		recs = append(recs, keyRecord{
			Space:   k.Space,
			Program: k.Program.String(),
			Dump:    k.Dump.String(),
			Options: k.Options.String(),
		})
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleRepair runs one synchronous anti-entropy sweep and returns its
// stats — the deterministic trigger the chaos smoke test (and an
// operator mid-incident) uses instead of waiting out RepairInterval.
func (n *Node) handleRepair(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.RepairNow(r.Context()))
}

// handleStorePut accepts a peer's write-through. The artifact is
// verified against its content address before entering the local store,
// and stored with PutLocal so it does not echo back into the cluster.
func (n *Node) handleStorePut(w http.ResponseWriter, r *http.Request) {
	var env artifactEnvelope
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouteBody)).Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, "bad envelope: %v", err)
		return
	}
	k, err := env.key()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad key: %v", err)
		return
	}
	if k.ID() != r.PathValue("id") {
		writeErr(w, http.StatusBadRequest, "key does not hash to %s", r.PathValue("id"))
		return
	}
	if err := verifyArtifact(k, env.Data); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := n.st.PutLocal(k, env.Data); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// clusterSnapshot renders the cluster layer's own series as an
// obs.Snapshot, appended after the service's in every exposition.
func (n *Node) clusterSnapshot() obs.Snapshot {
	n.mu.Lock()
	proxied, failovers := n.proxied, n.failovers
	rputs, rerrs := n.replicaPuts, n.putErrors
	fetches, fmisses := n.fetches, n.fetchMisses
	served := n.served
	spooled := n.spooledBytes
	sweeps := n.repairSweeps
	pulled, pushed, corrupt := n.repairPulled, n.repairPushed, n.repairCorrupt
	n.mu.Unlock()
	openNow, trips := n.brk.snapshot()
	snap := obs.Snapshot{
		obs.Gauge("resd_cluster_peers", "Cluster membership size (self included).", float64(len(n.peers))),
		obs.Counter("resd_cluster_proxied_total", "Requests proxied to their owning node.", float64(proxied)),
		obs.Counter("resd_cluster_failovers_total", "Proxy attempts that failed over past an unhealthy owner.", float64(failovers)),
		obs.Counter("resd_cluster_replica_puts_total", "Artifacts written through to peer replicas.", float64(rputs)),
		obs.Counter("resd_cluster_replica_put_errors_total", "Write-through attempts that failed.", float64(rerrs)),
		obs.Counter("resd_cluster_replica_fetches_total", "Read-through pulls that recovered an artifact from a peer.", float64(fetches)),
		obs.Counter("resd_cluster_replica_fetch_misses_total", "Read-through pulls no peer could answer.", float64(fmisses)),
		obs.Counter("resd_cluster_replica_serves_total", "Artifacts served to pulling peers.", float64(served)),
		obs.Counter("resd_cluster_spooled_bytes_total", "Request-body bytes spilled to the router's disk spool.", float64(spooled)),
		obs.Counter("resd_cluster_breaker_open_total", "Peer circuit-breaker trips (closed to open).", float64(trips)),
		obs.Gauge("resd_cluster_breaker_open", "Peer circuits currently open.", float64(openNow)),
		obs.Counter("resd_repair_sweeps_total", "Anti-entropy sweeps completed.", float64(sweeps)),
		obs.Counter("resd_repair_total", "Artifacts recovered (pulled) by the anti-entropy sweep.", float64(pulled)),
		obs.Counter("resd_repair_pushed_total", "Artifacts re-pushed to under-replicated peers by the sweep.", float64(pushed)),
		obs.Counter("resd_repair_corrupt_total", "Local artifacts dropped by the sweep for failing content verification.", float64(corrupt)),
	}
	states := map[string]int{}
	for _, ps := range n.prober.snapshot() {
		states[ps.State]++
	}
	for _, st := range []string{"healthy", "suspect", "down", "recovering"} {
		snap = append(snap, obs.Gauge("resd_cluster_peer_state", "Peers per health state.",
			float64(states[st])).With("state", st))
	}
	snap = append(snap, obs.HistogramMetric("resd_cluster_proxy_seconds",
		"Intra-cluster proxy hop latency.", n.histProxy.Snapshot()))
	return snap
}

// nodeSnapshot is this node's full metric state — service plus cluster
// series — tagged with its identity: the unit of federation.
func (n *Node) nodeSnapshot() obs.NodeSnapshot {
	return obs.NodeSnapshot{
		Node:    n.self,
		Metrics: append(n.svc.MetricsSnapshot(), n.clusterSnapshot()...),
	}
}

// handleMetrics renders this node's service + cluster series as
// Prometheus text.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WriteProm(w, n.nodeSnapshot().Metrics)
}

// handleNodeMetrics serves the node's snapshot in its JSON wire form —
// what a federating peer merges.
func (n *Node) handleNodeMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.nodeSnapshot())
}

// handleClusterMetrics federates the whole cluster into one exposition:
// this node's snapshot plus every routable peer's, merged by obs.Merge —
// counters summed, histogram buckets merged, gauges tagged per node. A
// peer that cannot be reached is skipped (its absence shows in
// resd_cluster_peer_state), so one dead node never blanks the scrape.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	nodes := []obs.NodeSnapshot{n.nodeSnapshot()}
	for _, peer := range n.peers {
		if peer == n.self || !n.routable(peer) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/internal/v1/metrics", nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedHeader, n.self)
		resp, err := n.hc.Do(req)
		if err != nil {
			n.prober.observe(peer, false, err.Error())
			continue
		}
		var ns obs.NodeSnapshot
		if resp.StatusCode == http.StatusOK &&
			json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&ns) == nil {
			nodes = append(nodes, ns)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WriteProm(w, obs.Merge(nodes))
}

// Package cluster turns N resd processes into one logical crash-analysis
// service. Membership is static (every node is started with the same
// -peers list); coordination is peer-to-peer with no leader: every node
// embeds the same router, so any node can accept any request and proxy
// it to the node that owns it.
//
// Ownership is rendezvous (highest-random-weight) hashing on the program
// fingerprint — the same key the service already shards on internally.
// Rendezvous hashing gives each (key, node) pair an independent score
// and routes the key to the highest-scoring live node, which has two
// properties this layer leans on: every node computes the same owner
// with no coordination, and when a node dies only the keys it owned move
// (each to its own second-highest node — the failover target is per-key,
// so a dead node's load spreads over the whole cluster instead of
// dogpiling one neighbor).
//
// The content-addressed store gains a replication tier here: completed
// results and dump blobs are written through to the key's top-R nodes,
// and a local store miss pulls from peers (verified against the
// content address), so a node that lost its disk repopulates lazily.
// Together with each node's job journal (internal/service.Journal) this
// makes the cluster lose no durable state when any single node's disk
// or process goes away, R-1 disks' worth of history when R-1 do.
//
// Trust model: the cluster endpoints — like the rest of resd's HTTP API —
// carry no authentication. Replicated dump blobs are re-verified against
// their content address and result blobs must parse as reports, but a
// result's key is not derivable from its bytes, so a peer (or anyone who
// can reach the listen address) is trusted not to forge result entries.
// Run the cluster on a trusted network segment or behind an
// authenticating proxy, exactly as you would the single-node daemon.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// score is one node's rendezvous weight for one key: a keyed hash,
// reduced to its first 8 bytes. Independent per (node, key) pair, stable
// across processes — every node agrees on every ranking.
func score(node, key string) uint64 {
	h := sha256.New()
	h.Write([]byte("rescluster\x00"))
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// rank orders nodes by descending rendezvous score for key (ties broken
// by node ID for determinism). rank(...)[0] is the key's owner; the rest
// is the failover/replication preference order.
func rank(nodes []string, key string) []string {
	out := append([]string(nil), nodes...)
	scores := make(map[string]uint64, len(out))
	for _, n := range out {
		scores[n] = score(n, key)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

package cluster

import (
	"sync"
	"time"
)

// breaker is a per-peer circuit breaker layered under the health prober.
// The prober's state machine is deliberately slow (it waits for
// consecutive probe failures on the probe interval); the breaker reacts
// to the request path itself — threshold consecutive failures against a
// peer open its circuit immediately, and while open the router stops
// offering that peer work instead of burning a timeout per attempt.
//
//	closed ──threshold fails──▶ open ──cooldown──▶ half-open ──ok──▶ closed
//	                              ▲                    │fail
//	                              └────────────────────┘
//
// Half-open admits exactly one trial request after the cooldown; its
// outcome decides between closing and re-opening. Any successful
// observation — including a background /healthz probe — closes the
// circuit, so an open breaker can never strand a recovered peer.
type breaker struct {
	threshold int
	cooldown  time.Duration
	// onTrip, when set, observes each closed→open transition (the flight
	// recorder hook). Called with the breaker lock held, so it must not
	// re-enter the breaker.
	onTrip func(peer string)

	mu    sync.Mutex
	peers map[string]*breakerPeer
	trips uint64 // closed→open transitions, resd_cluster_breaker_open_total
}

type breakerPeer struct {
	fails    int
	open     bool
	probing  bool // the half-open trial is in flight
	openedAt time.Time
}

// defaultBreakerThreshold and defaultBreakerCooldown apply when the
// Config fields are zero.
const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 2 * time.Second
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		peers:     make(map[string]*breakerPeer),
	}
}

// observe feeds one outcome for peer into the breaker. Wired as the
// prober's observation hook, so every call site that reports a proxy,
// replication, or probe outcome feeds the breaker for free.
func (b *breaker) observe(peer string, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bp := b.peers[peer]
	if bp == nil {
		bp = &breakerPeer{}
		b.peers[peer] = bp
	}
	if ok {
		bp.fails = 0
		bp.open = false
		bp.probing = false
		return
	}
	bp.fails++
	if bp.open {
		// A failure while open re-arms the cooldown (the half-open trial
		// failed, or a straggling in-flight request lost its race).
		bp.openedAt = time.Now()
		bp.probing = false
		return
	}
	if bp.fails >= b.threshold {
		bp.open = true
		bp.probing = false
		bp.openedAt = time.Now()
		b.trips++
		if b.onTrip != nil {
			b.onTrip(peer)
		}
	}
}

// allow reports whether the router may offer peer a request. An open
// circuit admits a single half-open trial once the cooldown has passed.
func (b *breaker) allow(peer string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	bp := b.peers[peer]
	if bp == nil || !bp.open {
		return true
	}
	if bp.probing || time.Since(bp.openedAt) < b.cooldown {
		return false
	}
	bp.probing = true
	return true
}

// snapshot returns (circuits currently open, lifetime trips).
func (b *breaker) snapshot() (open int, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, bp := range b.peers {
		if bp.open {
			open++
		}
	}
	return open, b.trips
}

package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"res"
	"res/internal/fault"
	"res/internal/obs"
	"res/internal/service"
	"res/internal/store"
)

// Config assembles one cluster node.
type Config struct {
	// Self is this node's advertised base URL — the identity rendezvous
	// hashing scores, so it must be spelled exactly as it appears in
	// Peers (it is added if absent).
	Self string
	// Peers is the full static membership: every node's base URL,
	// including (usually) Self. Order does not matter; all nodes must be
	// started with the same set.
	Peers []string
	// Replicas is R, the number of nodes (owner included) that hold each
	// completed result and dump blob. Clamped to [1, len(peers)];
	// 0 = DefaultReplicas.
	Replicas int
	// Service is the local analysis service this node fronts.
	Service *service.Service
	// ProbeInterval is the /healthz polling period; 0 = DefaultProbeInterval.
	ProbeInterval time.Duration
	// FailThreshold is how many consecutive failed observations take a
	// peer from healthy to down (via suspect); 0 = 2.
	FailThreshold int
	// RecoverThreshold is how many consecutive successful probes take a
	// down peer back to healthy (via recovering); 0 = 2.
	RecoverThreshold int
	// Client is the HTTP client for proxying, replication, and probes;
	// nil = a default with a sane timeout.
	Client *http.Client
	// ReplicationTimeout bounds each replication round trip (write-through
	// push, read-through pull). Replication traffic shares the submission
	// path — a write-through runs on the worker that produced the result,
	// a read-through inside the submit-time cache probe — so a slow or
	// half-dead peer must cost a bounded wait, not the client's full
	// proxy timeout. 0 = DefaultReplicationTimeout.
	ReplicationTimeout time.Duration
	// RepairInterval is the anti-entropy sweep period. 0 disables the
	// background loop (RepairNow still works on demand).
	RepairInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; 0 = 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects a peer before
	// admitting a half-open trial; 0 = 2s.
	BreakerCooldown time.Duration
	// SpoolDir is where oversized request bodies spool to disk while
	// crossing the router; "" = the system temp directory.
	SpoolDir string
	// MaxRouteBody bounds request bodies crossing the router; <= 0 means
	// service.DefaultMaxRequestBody (mirroring the local service bound).
	MaxRouteBody int64
	// Faults, when set, injects transport faults (resets, black holes,
	// mid-body cuts) into every intra-cluster HTTP call. Chaos-testing
	// only; nil in production.
	Faults *fault.Injector
	// FlightRec, when set, receives the cluster layer's operational
	// events (breaker trips, repair actions, replication faults) —
	// normally the same recorder the local service writes to, so one
	// ring holds the node's whole story. Nil disables recording.
	FlightRec *obs.FlightRecorder
}

// DefaultReplicas keeps every artifact on two nodes: lose any one disk
// and the cluster still has the bytes.
const DefaultReplicas = 2

// DefaultProbeInterval is the /healthz polling period when unset.
const DefaultProbeInterval = 2 * time.Second

// DefaultReplicationTimeout bounds one replication round trip when
// Config.ReplicationTimeout is unset.
const DefaultReplicationTimeout = 5 * time.Second

// forwardedHeader marks intra-cluster requests. A request carrying it is
// served locally no matter what the ring says — the hop that set it
// already did the routing — so a proxy can never loop.
const forwardedHeader = "X-Rescluster-Forwarded"

// Node is one member of the cluster: the local service plus the
// embedded router, health prober, and replication tier.
type Node struct {
	self     string
	peers    []string // full membership, sorted, self included
	replicas int
	svc      *service.Service
	st       *store.Store
	prober   *prober
	brk      *breaker
	hc       *http.Client
	repTO    time.Duration
	spoolDir string
	maxBody  int64
	fr       *obs.FlightRecorder
	// frags holds the routing layer's trace fragments (proxy hops,
	// read-through pulls, repair pulls) keyed by job ID, served to the
	// cluster-wide trace stitcher alongside the service's own fragments.
	frags *obs.FragRing

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu sync.Mutex
	// fpCache memoizes program_source → program fingerprint hex so the
	// router prices routing at one map hit per submission, not one
	// assembly.
	fpCache map[[sha256.Size]byte]string

	proxied, failovers                        uint64
	replicaPuts, putErrors                    uint64
	fetches, fetchMisses                      uint64
	served                                    uint64 // internal store gets answered for peers
	spooledBytes                              uint64 // bodies spilled to disk while routing
	repairSweeps                              uint64
	repairPulled, repairPushed, repairCorrupt uint64

	// histProxy times each intra-cluster proxy hop (request relay plus
	// the owning node's handling), the resd_cluster_proxy_seconds series.
	histProxy *obs.Histogram
}

// New assembles a node. The service's store gains the replication tier
// as a side effect (write-through on Put, read-through pull on miss);
// call Start to begin health probing and Close to detach.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: Service is required")
	}
	members := map[string]bool{normalizeURL(cfg.Self): true}
	for _, p := range cfg.Peers {
		if u := normalizeURL(p); u != "" {
			members[u] = true
		}
	}
	peers := make([]string, 0, len(members))
	for u := range members {
		peers = append(peers, u)
	}
	sort.Strings(peers)
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	if replicas > len(peers) {
		replicas = len(peers)
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Faults.Enabled(fault.SeamTransport) {
		// Clone: the caller's client must not inherit the fault layer.
		faulty := *hc
		faulty.Transport = fault.Transport(hc.Transport, cfg.Faults)
		hc = &faulty
	}
	repTO := cfg.ReplicationTimeout
	if repTO <= 0 {
		repTO = DefaultReplicationTimeout
	}
	maxBody := cfg.MaxRouteBody
	if maxBody <= 0 {
		maxBody = service.DefaultMaxRequestBody
	}
	n := &Node{
		self:      normalizeURL(cfg.Self),
		peers:     peers,
		replicas:  replicas,
		svc:       cfg.Service,
		st:        cfg.Service.Store(),
		prober:    newProber(normalizeURL(cfg.Self), peers, cfg.FailThreshold, cfg.RecoverThreshold),
		brk:       newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		hc:        hc,
		repTO:     repTO,
		spoolDir:  cfg.SpoolDir,
		maxBody:   maxBody,
		fpCache:   make(map[[sha256.Size]byte]string),
		histProxy: obs.NewHistogram(obs.MicroBuckets),
		fr:        cfg.FlightRec,
		frags:     obs.NewFragRing(obs.DefaultFragJobs),
	}
	// Every health observation — active probe or passive report from the
	// request path — also feeds the circuit breaker; trips land in the
	// flight recorder so a post-mortem shows when a peer went dark.
	n.brk.onTrip = func(peer string) {
		n.fr.Eventf("breaker", "circuit opened for peer %s", peer)
	}
	n.prober.onObserve = n.brk.observe
	n.st.SetReplication(n.writeThrough, n.fetchFromPeers)
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	interval := cfg.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.prober.probeLoop(ctx, interval, hc)
	}()
	if cfg.RepairInterval > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.repairLoop(ctx, cfg.RepairInterval)
		}()
	}
	return n, nil
}

// routable combines both exclusion layers: the prober's health state
// machine and the peer's circuit breaker.
func (n *Node) routable(peer string) bool {
	return n.prober.routable(peer) && (peer == n.self || n.brk.allow(peer))
}

// Close stops the health prober and detaches the replication tier (the
// store keeps working locally).
func (n *Node) Close() {
	n.cancel()
	n.wg.Wait()
	n.st.SetReplication(nil, nil)
}

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.self }

// Peers returns the full membership (sorted, self included).
func (n *Node) Peers() []string { return append([]string(nil), n.peers...) }

// normalizeURL gives peer addresses a canonical spelling so "host:port"
// and "http://host:port/" rendezvous-hash identically.
func normalizeURL(u string) string {
	u = strings.TrimSpace(u)
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// Owners returns the rendezvous preference order for a program
// fingerprint: Owners(fp)[0] is the owner, the rest the failover order.
func (n *Node) Owners(programFP string) []string {
	return rank(n.peers, programFP)
}

// replicaSet returns the top-R nodes for a store key. Results and dump
// blobs hash by their dominant fingerprint component so a program's
// results live where its dumps are routed.
func (n *Node) replicaSet(k store.Key) []string {
	key := k.Program.String()
	if k.Program.IsZero() {
		key = k.Dump.String()
	}
	r := rank(n.peers, key)
	if len(r) > n.replicas {
		r = r[:n.replicas]
	}
	return r
}

// replicable reports whether a key participates in replication. The
// journal space is node-local state: replicating it would have peers
// overwrite each other's snapshots.
func replicable(k store.Key) bool {
	return k.Space == "result" || k.Space == "dump"
}

// writeThrough pushes one completed artifact to the key's other
// replicas. Synchronous (it runs on the analysis worker that produced
// the artifact) and best-effort: an unreachable replica heals later via
// the read-through pull.
func (n *Node) writeThrough(k store.Key, data []byte) {
	if !replicable(k) {
		return
	}
	for _, peer := range n.replicaSet(k) {
		if peer == n.self {
			continue
		}
		if !n.routable(peer) {
			continue // a down node pulls what it missed when it recovers
		}
		if err := n.pushArtifact(peer, k, data); err != nil {
			n.prober.observe(peer, false, err.Error())
			n.fr.Eventf("fault", "write-through of %s to %s failed: %v", k.ID(), peer, err)
			n.mu.Lock()
			n.putErrors++
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		n.replicaPuts++
		n.mu.Unlock()
	}
}

// artifactEnvelope is the intra-cluster replication wire form: the full
// key (the receiver stores by key, not by opaque ID) plus the bytes.
type artifactEnvelope struct {
	Space   string `json:"space"`
	Program string `json:"program"`
	Dump    string `json:"dump"`
	Options string `json:"options"`
	Data    []byte `json:"data"`
}

func envelope(k store.Key, data []byte) artifactEnvelope {
	return artifactEnvelope{
		Space:   k.Space,
		Program: k.Program.String(),
		Dump:    k.Dump.String(),
		Options: k.Options.String(),
		Data:    data,
	}
}

func (e artifactEnvelope) key() (store.Key, error) {
	var k store.Key
	var err error
	k.Space = e.Space
	if k.Program, err = store.ParseFingerprint(e.Program); err != nil {
		return k, err
	}
	if k.Dump, err = store.ParseFingerprint(e.Dump); err != nil {
		return k, err
	}
	k.Options, err = store.ParseFingerprint(e.Options)
	return k, err
}

// verifyArtifact checks replicated bytes against their content address
// before they enter the local store: a dump blob must re-hash to the
// key's dump fingerprint (the key IS the content hash), and a result
// must at least parse as a report object — a corrupted or malicious
// replica cannot poison the cache with bytes that don't match their
// name.
func verifyArtifact(k store.Key, data []byte) error {
	switch k.Space {
	case "dump":
		if store.BytesFingerprint(data) != k.Dump {
			return fmt.Errorf("cluster: dump blob does not re-hash to its key")
		}
	case "result":
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(data, &probe); err != nil {
			return fmt.Errorf("cluster: result blob is not a report: %w", err)
		}
	default:
		return fmt.Errorf("cluster: space %q is not replicated", k.Space)
	}
	return nil
}

// pushArtifact PUTs one artifact to a peer's internal store endpoint.
func (n *Node) pushArtifact(peer string, k store.Key, data []byte) error {
	body, err := json.Marshal(envelope(k, data))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.repTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/internal/v1/store/"+k.ID(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: replica put: %s", resp.Status)
	}
	return nil
}

// fetchFromPeers is the read-through pull: both local tiers missed, so
// ask the key's replicas (then any remaining peer, covering placement
// drift) for the bytes. Verified against the content address before the
// store caches them. A successful recovery leaves a trace fragment in
// the router's ring — a result key's ID is its job ID, so the pull
// shows up in that job's stitched trace — plus a flight-recorder event.
// Misses stay silent beyond the counter: every fresh submission's cache
// probe legitimately misses here.
func (n *Node) fetchFromPeers(k store.Key) ([]byte, bool) {
	if !replicable(k) {
		return nil, false
	}
	id := k.ID()
	tried := make(map[string]bool, len(n.peers))
	order := append(n.replicaSet(k), rank(n.peers, k.Program.String())...)
	for _, peer := range order {
		if peer == n.self || tried[peer] || !n.routable(peer) {
			continue
		}
		tried[peer] = true
		tr := obs.NewTraceCtx("read-through", obs.TraceContext{}, n.self)
		tr.Root().SetStr("peer", peer)
		tr.Root().SetStr("space", k.Space)
		data, ok := n.pullArtifact(peer, id)
		if !ok {
			continue
		}
		if verifyArtifact(k, data) != nil {
			continue
		}
		n.frags.Add(id, tr.Finish())
		n.fr.Eventf("repair", "read-through pulled %s %s from %s", k.Space, id, peer)
		n.mu.Lock()
		n.fetches++
		n.mu.Unlock()
		return data, true
	}
	n.mu.Lock()
	n.fetchMisses++
	n.mu.Unlock()
	return nil, false
}

// pullArtifact GETs one artifact from a peer's internal store endpoint.
func (n *Node) pullArtifact(peer, id string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), n.repTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/internal/v1/store/"+id, nil)
	if err != nil {
		return nil, false
	}
	req.Header.Set(forwardedHeader, "1")
	resp, err := n.hc.Do(req)
	if err != nil {
		n.prober.observe(peer, false, err.Error())
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false
	}
	return data, true
}

// programFingerprint resolves a submission's routing key: the program_id
// when present, else the fingerprint of the assembled source (memoized
// by source hash — a fleet resubmitting one binary's dumps assembles it
// here once).
func (n *Node) programFingerprint(programID, source string) (string, error) {
	if programID != "" {
		if _, err := store.ParseFingerprint(programID); err != nil {
			return "", err
		}
		return programID, nil
	}
	if source == "" {
		return "", fmt.Errorf("cluster: program_id or program_source required")
	}
	h := sha256.Sum256([]byte(source))
	n.mu.Lock()
	fp, ok := n.fpCache[h]
	n.mu.Unlock()
	if ok {
		return fp, nil
	}
	p, err := res.Assemble(source)
	if err != nil {
		return "", err
	}
	pfp, err := store.ProgramFingerprint(p)
	if err != nil {
		return "", err
	}
	fp = pfp.String()
	n.mu.Lock()
	if len(n.fpCache) > 4096 { // bound a hostile stream of unique sources
		n.fpCache = make(map[[sha256.Size]byte]string)
	}
	n.fpCache[h] = fp
	n.mu.Unlock()
	return fp, nil
}

// Package breadcrumb turns the cheap post-crash execution hints the paper
// identifies (§2.4 "Execution breadcrumbs") into search filters for RES:
//
//   - the Last Branch Record ring — the source/destination pairs of the
//     most recent control transfers, collected by hardware for free;
//   - the filtered-LBR extension: hardware configured to skip recording
//     branch classes RES can re-derive offline (taken conditional
//     branches), which stretches the ring's effective history;
//   - the program's own output log (error-log breadcrumbs), matched
//     against the OUTPUT records of candidate suffixes by core itself.
package breadcrumb

import (
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
)

// Mode selects which transfer classes the (simulated) hardware recorded.
type Mode uint8

const (
	// RecordAll mirrors stock LBR: every jmp/br/call/ret transfer.
	RecordAll Mode = iota
	// SkipConditional is the paper's extension: conditional branches are
	// not recorded (RES re-derives them from the CFG), so the 16 slots
	// cover more history.
	SkipConditional
)

// LBRFilter builds a core search filter that prunes candidate backward
// steps whose control transfer contradicts the dump's branch ring. A
// candidate beyond the ring's recorded horizon is always allowed.
//
// The prog parameter is needed in SkipConditional mode to classify the
// candidate's transfer (conditional branches neither match nor consume
// ring entries).
func LBRFilter(p *prog.Program, lbr []coredump.BranchRec, mode Mode) core.Filter {
	ring := append([]coredump.BranchRec(nil), lbr...)
	return func(used int, hasTransfer bool, from, to int) (bool, bool) {
		if !hasTransfer {
			return true, false
		}
		if mode == SkipConditional && from >= 0 && from < len(p.Code) && p.Code[from].Op == isa.OpBr {
			// Not recorded by the filtered hardware: no evidence either way.
			return true, false
		}
		idx := len(ring) - 1 - used
		if idx < 0 {
			return true, false // beyond the recorded horizon
		}
		want := ring[idx]
		if want.From != from || want.To != to {
			return false, false
		}
		return true, true
	}
}

// FilterRing post-processes a full branch ring the way filtered hardware
// would have recorded it: conditional-branch entries are dropped and the
// most recent `size` survivors kept. Used by experiment harnesses to
// derive the SkipConditional view from a stock recording.
func FilterRing(p *prog.Program, lbr []coredump.BranchRec, size int) []coredump.BranchRec {
	var kept []coredump.BranchRec
	for _, b := range lbr {
		if b.From >= 0 && b.From < len(p.Code) && p.Code[b.From].Op == isa.OpBr {
			continue
		}
		kept = append(kept, b)
	}
	if len(kept) > size {
		kept = kept[len(kept)-size:]
	}
	return kept
}

// Truncate keeps the most recent n entries of a branch ring (harness
// helper for sweeping the ring size).
func Truncate(lbr []coredump.BranchRec, n int) []coredump.BranchRec {
	if n < 0 {
		return nil
	}
	if len(lbr) > n {
		return append([]coredump.BranchRec(nil), lbr[len(lbr)-n:]...)
	}
	return append([]coredump.BranchRec(nil), lbr...)
}

package breadcrumb_test

import (
	"testing"

	"res/internal/asm"
	"res/internal/breadcrumb"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/evidence"
	"res/internal/vm"
	"res/internal/workload"
)

func TestLBRFilterMatching(t *testing.T) {
	p := asm.MustAssemble(`
func main:
    const r1, 1
    br r1, a, b
a:
    jmp c
b:
    jmp c
c:
    halt
`)
	ring := []coredump.BranchRec{
		{From: 1, To: 2}, // br took 'a'
		{From: 2, To: 4}, // jmp to c
	}
	f := breadcrumb.LBRFilter(p, ring, breadcrumb.RecordAll)

	// Most recent transfer first (used = 0): jmp@2 -> 4 matches.
	ok, consume := f(0, true, 2, 4)
	if !ok || !consume {
		t.Errorf("matching transfer rejected: %v %v", ok, consume)
	}
	// A contradicting transfer is pruned.
	ok, _ = f(0, true, 3, 4)
	if ok {
		t.Error("contradicting transfer allowed")
	}
	// Next entry backward (used = 1): the br.
	ok, consume = f(1, true, 1, 2)
	if !ok || !consume {
		t.Error("second entry mismatch")
	}
	// Beyond the horizon: anything goes, nothing consumed.
	ok, consume = f(2, true, 3, 4)
	if !ok || consume {
		t.Errorf("beyond horizon: %v %v", ok, consume)
	}
	// Non-transfer candidates are always allowed.
	ok, consume = f(0, false, 0, 0)
	if !ok || consume {
		t.Error("non-transfer treatment wrong")
	}
}

func TestLBRFilterSkipConditional(t *testing.T) {
	p := asm.MustAssemble(`
func main:
    const r1, 1
    br r1, a, b
a:
    jmp c
b:
    jmp c
c:
    halt
`)
	// Filtered hardware did not record the br; ring holds only the jmp.
	ring := []coredump.BranchRec{{From: 2, To: 4}}
	f := breadcrumb.LBRFilter(p, ring, breadcrumb.SkipConditional)
	// The conditional branch candidate neither matches nor consumes.
	ok, consume := f(0, true, 1, 2)
	if !ok || consume {
		t.Errorf("conditional branch under filter: %v %v", ok, consume)
	}
	// The jmp must still match.
	ok, consume = f(0, true, 2, 4)
	if !ok || !consume {
		t.Errorf("jmp under filter: %v %v", ok, consume)
	}
}

func TestTruncateAndFilterRing(t *testing.T) {
	p := asm.MustAssemble(`
func main:
    const r1, 1
    br r1, a, b
a:
    jmp c
b:
    jmp c
c:
    halt
`)
	ring := []coredump.BranchRec{{From: 1, To: 2}, {From: 2, To: 4}}
	if got := breadcrumb.Truncate(ring, 1); len(got) != 1 || got[0].From != 2 {
		t.Errorf("Truncate = %v", got)
	}
	if got := breadcrumb.Truncate(ring, 0); len(got) != 0 {
		t.Errorf("Truncate(0) = %v", got)
	}
	filtered := breadcrumb.FilterRing(p, ring, 16)
	if len(filtered) != 1 || filtered[0].From != 2 {
		t.Errorf("FilterRing = %v", filtered)
	}
}

// TestLBRPrunesSearch is the E7 smoke test: with the branch ring wired in,
// RES explores no more (and typically fewer) candidate snapshots, and the
// result is the same.
func TestLBRPrunesSearch(t *testing.T) {
	bug := workload.DistanceChain(10)
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	base := core.New(p, core.Options{MaxDepth: 14})
	baseRep, err := base.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	prs, err := evidence.Set{evidence.LBR{Mode: breadcrumb.RecordAll}}.Compile(p, d)
	if err != nil {
		t.Fatal(err)
	}
	pruned := core.New(p, core.Options{
		MaxDepth: 14,
		Evidence: prs,
	})
	prunedRep, err := pruned.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if prunedRep.Stats.MaxDepth < baseRep.Stats.MaxDepth {
		t.Errorf("pruned search lost depth: %d vs %d", prunedRep.Stats.MaxDepth, baseRep.Stats.MaxDepth)
	}
	if prunedRep.Stats.Attempts > baseRep.Stats.Attempts {
		t.Errorf("LBR pruning increased work: %d vs %d", prunedRep.Stats.Attempts, baseRep.Stats.Attempts)
	}
}

// TestOutputBreadcrumbs checks the error-log integration end to end: the
// OUTPUT values in the dump pin the synthesized inputs.
func TestOutputBreadcrumbs(t *testing.T) {
	src := `
func main:
    input r1, 0
    output r1, 7
    const r2, 0
    assert r2
    halt
`
	p := asm.MustAssemble(src)
	v, _ := vm.New(p, vm.Config{Inputs: map[int64][]int64{0: {55}}})
	d, _ := v.Run()
	if d == nil || len(d.Outputs) != 1 {
		t.Fatalf("dump outputs = %+v", d)
	}
	outPrs, err := evidence.Set{evidence.OutputLog{}}.Compile(p, d)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(p, core.Options{MaxDepth: 4, Evidence: outPrs})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("no suffixes; stats %+v", rep.Stats)
	}
	deepest := rep.Suffixes[len(rep.Suffixes)-1]
	syn, err := eng.Concretize(deepest, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Suffix.Inputs) > 0 && syn.Suffix.Inputs[0].Value != 55 {
		t.Errorf("log breadcrumb did not pin the input: %v", syn.Suffix.Inputs)
	}
}

// Package hwerr implements §3.2: distinguishing failures caused by
// hardware errors from software bugs. The injectors corrupt a captured
// coredump the way flaky hardware would — DRAM bit flips in memory words,
// miscomputed ALU results in registers — and the classifier asks RES
// whether any feasible execution suffix explains the (possibly corrupted)
// dump. A dump that no suffix can reach is flagged as a likely hardware
// error; the paper's example is exactly the implemented check ("on all
// possible paths the program writes 1 to an address, but the coredump
// contains 0").
package hwerr

import (
	"context"
	"fmt"
	"math/rand"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/prog"
)

// Injection describes one simulated hardware fault.
type Injection struct {
	Kind   string // "mem-bitflip" | "reg-bitflip"
	Addr   uint32 // memory word (mem-bitflip)
	Reg    int    // register index (reg-bitflip)
	Thread int
	Bit    uint // flipped bit position
}

func (in Injection) String() string {
	switch in.Kind {
	case "mem-bitflip":
		return fmt.Sprintf("DRAM bit flip: mem[%d] bit %d", in.Addr, in.Bit)
	case "reg-bitflip":
		return fmt.Sprintf("CPU miscompute: t%d r%d bit %d", in.Thread, in.Reg, in.Bit)
	}
	return in.Kind
}

// FlipMemoryBit returns a copy of the dump with one bit flipped in the
// given memory word.
func FlipMemoryBit(d *coredump.Dump, addr uint32, bit uint) (*coredump.Dump, Injection) {
	nd := d.Clone()
	v := nd.Mem.Load(addr)
	nd.Mem.Store(addr, v^(1<<(bit&63)))
	return nd, Injection{Kind: "mem-bitflip", Addr: addr, Bit: bit & 63}
}

// FlipRegisterBit returns a copy of the dump with one bit flipped in a
// register of the given thread — the post-mortem signature of a CPU that
// miscomputed a result just before the failure.
func FlipRegisterBit(d *coredump.Dump, tid, reg int, bit uint) (*coredump.Dump, Injection, error) {
	nd := d.Clone()
	t, err := nd.Thread(tid)
	if err != nil {
		return nil, Injection{}, err
	}
	t.Regs[reg] ^= 1 << (bit & 63)
	return nd, Injection{Kind: "reg-bitflip", Thread: tid, Reg: reg, Bit: bit & 63}, nil
}

// RandomMemoryFlip flips a bit in a word chosen from the given candidate
// addresses (typically the write set of the failure's neighbourhood, where
// corruption is detectable because the suffix pins the value).
func RandomMemoryFlip(d *coredump.Dump, candidates []uint32, rng *rand.Rand) (*coredump.Dump, Injection, error) {
	if len(candidates) == 0 {
		return nil, Injection{}, fmt.Errorf("hwerr: no candidate addresses")
	}
	addr := candidates[rng.Intn(len(candidates))]
	bit := uint(rng.Intn(63))
	nd, inj := FlipMemoryBit(d, addr, bit)
	return nd, inj, nil
}

// Verdict is the classifier's answer.
type Verdict struct {
	// HardwareSuspect is true when no feasible suffix explains the dump.
	HardwareSuspect bool
	// Inconclusive is set when the search hit Unknown steps, so absence
	// of a suffix is not evidence.
	Inconclusive bool
	Stats        core.Stats
}

// Classify runs the RES consistency analysis over the dump.
func Classify(p *prog.Program, d *coredump.Dump, opt core.Options) (Verdict, error) {
	return ClassifyContext(context.Background(), p, d, opt)
}

// ClassifyContext is Classify under a context: cancellation and deadlines
// propagate into the backward search. A canceled classification returns
// the zero Verdict and ctx.Err(); there is no meaningful partial verdict,
// because absence of a suffix is only evidence once the budget ran fully.
func ClassifyContext(ctx context.Context, p *prog.Program, d *coredump.Dump, opt core.Options) (Verdict, error) {
	eng := core.New(p, opt)
	rep, err := eng.AnalyzeContext(ctx, d)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{Stats: rep.Stats}
	if rep.HardwareSuspect {
		v.HardwareSuspect = true
		return v, nil
	}
	if len(rep.Suffixes) == 0 {
		// Nothing feasible but Unknowns present: cannot conclude.
		v.Inconclusive = true
	}
	return v, nil
}

package hwerr_test

import (
	"math/rand"
	"testing"

	"res/internal/core"
	"res/internal/hwerr"
	"res/internal/isa"
	"res/internal/workload"
)

func TestBitFlipDetected(t *testing.T) {
	// Flip a bit in a word the failing suffix provably wrote: no feasible
	// suffix can explain the corrupted dump.
	bug := workload.HealthyCompute()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	gaddr, _ := p.GlobalAddr("g")
	corrupt, inj := hwerr.FlipMemoryBit(d, gaddr, 3)
	t.Log(inj)
	v, err := hwerr.Classify(p, corrupt, core.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !v.HardwareSuspect {
		t.Errorf("memory bit flip not detected: %+v", v)
	}
}

func TestRegisterFlipDetected(t *testing.T) {
	// A CPU-miscompute signature: the dumped register disagrees with what
	// every feasible suffix computes.
	bug := workload.HealthyCompute()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	// r3 holds 42 (6*7) at the fault; flip a bit.
	corrupt, inj, err := hwerr.FlipRegisterBit(d, d.Fault.Thread, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(inj)
	v, err := hwerr.Classify(p, corrupt, core.Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !v.HardwareSuspect {
		t.Errorf("register flip not detected: %+v", v)
	}
}

func TestSoftwareBugNotFlagged(t *testing.T) {
	// The uncorrupted dump of a genuine software bug must NOT be flagged:
	// zero false positives on the control group.
	for _, bug := range []*workload.Bug{workload.HealthyCompute(), workload.AtomViolation()} {
		p := bug.Program()
		d, _, err := bug.FindFailure(50)
		if err != nil {
			t.Fatalf("%s: %v", bug.Name, err)
		}
		v, err := hwerr.Classify(p, d, core.Options{MaxDepth: 8, MaxNodes: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if v.HardwareSuspect {
			t.Errorf("%s: software bug misclassified as hardware error", bug.Name)
		}
	}
}

func TestStaleDataFlipUndetectable(t *testing.T) {
	// Flipping a word that no nearby suffix writes is undetectable with a
	// short search horizon — the paper's honesty point: "diagnosing a
	// hardware error with full accuracy requires exploring all possible
	// execution suffixes".
	bug := workload.HealthyCompute()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	// A word in untouched heap space: no suffix constrains it.
	corrupt, _ := hwerr.FlipMemoryBit(d, p.Layout.HeapBase+100, 7)
	v, err := hwerr.Classify(p, corrupt, core.Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.HardwareSuspect {
		t.Error("flip in unconstrained memory should not be provably inconsistent")
	}
}

func TestRandomMemoryFlip(t *testing.T) {
	bug := workload.HealthyCompute()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	gaddr, _ := p.GlobalAddr("g")
	haddr, _ := p.GlobalAddr("h")
	rng := rand.New(rand.NewSource(1))
	corrupt, inj, err := hwerr.RandomMemoryFlip(d, []uint32{gaddr, haddr}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt.Mem.Load(inj.Addr) == d.Mem.Load(inj.Addr) {
		t.Error("injection did not change memory")
	}
	if _, _, err := hwerr.RandomMemoryFlip(d, nil, rng); err == nil {
		t.Error("expected error with no candidates")
	}
}

func TestFlipRegisterBadThread(t *testing.T) {
	bug := workload.HealthyCompute()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hwerr.FlipRegisterBit(d, 99, 0, 0); err == nil {
		t.Error("expected error for unknown thread")
	}
	if _, inj, err := hwerr.FlipRegisterBit(d, 0, int(isa.SP), 1); err != nil || inj.Kind != "reg-bitflip" {
		t.Errorf("sp flip: %v %v", inj, err)
	}
}

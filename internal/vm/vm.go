// Package vm implements the concrete multithreaded interpreter for the RES
// instruction set. It is the "production system" of the reproduction:
// programs run here with no recording beyond the free breadcrumbs the
// paper allows (an LBR-style branch ring and the program's own output
// log), and on failure the VM captures a coredump.
//
// Scheduling is deterministic given a seed and switches threads only at
// basic-block boundaries (and at blocking operations), which realizes the
// sequential-consistency, block-granularity schedule model the paper's
// prototype assumes (§4).
package vm

import (
	"fmt"
	"math/rand"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/prog"
	"res/internal/trace"
)

// DefaultLBRSize mirrors the 16-entry Last Branch Record of Intel CPUs
// that the paper proposes as a free breadcrumb source.
const DefaultLBRSize = 16

// Config controls one execution.
type Config struct {
	// Seed drives the deterministic scheduler.
	Seed int64
	// MaxSteps bounds the number of basic blocks executed; 0 means the
	// package default (100 million).
	MaxSteps uint64
	// Inputs provides the values returned by INPUT per channel, in order.
	// Exhausted channels return 0 (EOF convention).
	Inputs map[int64][]int64
	// CheckHeap enables allocator bounds/liveness checking (a debug-build
	// behaviour). Production runs leave it false: overflows corrupt
	// memory silently and the crash happens later, which is exactly the
	// scenario RES exists for. The replayer turns it on to pinpoint
	// root causes.
	CheckHeap bool
	// LBRSize is the branch-ring capacity; 0 means DefaultLBRSize,
	// negative disables the ring.
	LBRSize int
	// LBRSkipConditional simulates the paper's filtered-LBR hardware
	// extension: conditional branches are not recorded, so the ring's
	// slots cover more history.
	LBRSkipConditional bool
	// PreemptPct is the percentage chance (0..100) that the scheduler
	// switches away from a runnable thread at a block boundary. 0 keeps
	// threads running until they block or exit.
	PreemptPct int
	// RecordTrace makes the VM record the full schedule and input
	// consumption. This is ground truth for tests and experiment
	// harnesses only — RES never sees it.
	RecordTrace bool
	// Hooks observe execution; the replay-time root-cause detectors use
	// them. All hooks may be nil.
	Hooks Hooks
}

// Hooks are optional observation points.
type Hooks struct {
	// OnAccess fires for every successful data memory access.
	OnAccess func(tid, pc int, addr uint32, write bool)
	// OnLock fires on successful lock (acquire=true) and unlock.
	OnLock func(tid, pc int, addr uint32, acquire bool)
	// OnBlockStart fires when a thread begins executing a block.
	OnBlockStart func(tid, block int)
	// OnBranch fires for every retired control transfer (jmp/br/call/ret),
	// regardless of the LBR ring configuration. The evidence recorder uses
	// it to collect partial branch traces.
	OnBranch func(from, to int)
	// OnInput fires for every INPUT instruction with the value it
	// returned (including the 0 EOF convention). The checkpoint recorder
	// uses it to log post-checkpoint inputs for deterministic resume.
	OnInput func(tid int, channel, value int64)
}

// MergeHooks composes hook sets: each callback fires every non-nil
// handler in argument order. Recorders that each need their own hooks
// (evidence, checkpoints) are combined this way in one Config.
func MergeHooks(hs ...Hooks) Hooks {
	var out Hooks
	for _, h := range hs {
		h := h
		if h.OnAccess != nil {
			prev := out.OnAccess
			cur := h.OnAccess
			out.OnAccess = func(tid, pc int, addr uint32, write bool) {
				if prev != nil {
					prev(tid, pc, addr, write)
				}
				cur(tid, pc, addr, write)
			}
		}
		if h.OnLock != nil {
			prev := out.OnLock
			cur := h.OnLock
			out.OnLock = func(tid, pc int, addr uint32, acquire bool) {
				if prev != nil {
					prev(tid, pc, addr, acquire)
				}
				cur(tid, pc, addr, acquire)
			}
		}
		if h.OnBlockStart != nil {
			prev := out.OnBlockStart
			cur := h.OnBlockStart
			out.OnBlockStart = func(tid, block int) {
				if prev != nil {
					prev(tid, block)
				}
				cur(tid, block)
			}
		}
		if h.OnBranch != nil {
			prev := out.OnBranch
			cur := h.OnBranch
			out.OnBranch = func(from, to int) {
				if prev != nil {
					prev(from, to)
				}
				cur(from, to)
			}
		}
		if h.OnInput != nil {
			prev := out.OnInput
			cur := h.OnInput
			out.OnInput = func(tid int, channel, value int64) {
				if prev != nil {
					prev(tid, channel, value)
				}
				cur(tid, channel, value)
			}
		}
	}
	return out
}

func (c Config) maxSteps() uint64 {
	if c.MaxSteps == 0 {
		return 100_000_000
	}
	return c.MaxSteps
}

// Thread is one live thread of the VM.
type Thread struct {
	ID       int
	Regs     [isa.NumRegs]int64
	PC       int
	State    coredump.ThreadState
	WaitAddr uint32
}

// VM is an interpreter instance. Create with New, drive with Run, or use
// the fine-grained Step/ExecBlock API (the replayer does).
type VM struct {
	P   *prog.Program
	Mem *mem.Image

	Threads  []*Thread
	locks    map[uint32]int
	heap     []coredump.HeapObject
	heapNext uint32

	inputs   map[int64][]int64
	inputPos map[int64]int
	outputs  []coredump.OutputRec

	lbr     []coredump.BranchRec
	lbrSize int

	steps uint64
	rng   *rand.Rand
	cfg   Config

	Trace *trace.Trace // non-nil when cfg.RecordTrace
}

// New creates a VM for the program with globals initialized and thread 0
// parked at main's entry.
func New(p *prog.Program, cfg Config) (*VM, error) {
	entry, err := p.Entry()
	if err != nil {
		return nil, err
	}
	v := &VM{
		P:        p,
		Mem:      mem.NewImage(p.Layout.MemSize),
		locks:    make(map[uint32]int),
		heapNext: p.Layout.HeapBase,
		inputs:   cfg.Inputs,
		inputPos: make(map[int64]int),
		lbrSize:  cfg.LBRSize,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
	}
	if v.lbrSize == 0 {
		v.lbrSize = DefaultLBRSize
	}
	if cfg.RecordTrace {
		v.Trace = &trace.Trace{}
	}
	for _, g := range p.Globals {
		for i, val := range g.Init {
			v.Mem.Store(g.Addr+uint32(i), val)
		}
	}
	t := &Thread{ID: 0, PC: entry}
	t.Regs[isa.SP] = int64(p.Layout.StackTop(0))
	v.Threads = append(v.Threads, t)
	return v, nil
}

// State describes a complete machine state to resume from; the replayer
// instantiates RES's inferred pre-image Mi this way (the paper's "special
// environment slipped underneath the debugger").
type State struct {
	Mem      *mem.Image
	Threads  []Thread
	Locks    map[uint32]int
	Heap     []coredump.HeapObject
	HeapNext uint32
}

// NewFromState creates a VM resuming from an arbitrary machine state.
func NewFromState(p *prog.Program, cfg Config, st State) (*VM, error) {
	if st.Mem == nil {
		return nil, fmt.Errorf("vm: state has no memory image")
	}
	if st.Mem.Size() != p.Layout.MemSize {
		return nil, fmt.Errorf("vm: state memory size %d does not match layout %d", st.Mem.Size(), p.Layout.MemSize)
	}
	v := &VM{
		P:        p,
		Mem:      st.Mem.Clone(),
		locks:    make(map[uint32]int, len(st.Locks)),
		heap:     append([]coredump.HeapObject(nil), st.Heap...),
		heapNext: st.HeapNext,
		inputs:   cfg.Inputs,
		inputPos: make(map[int64]int),
		lbrSize:  cfg.LBRSize,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
	}
	if v.lbrSize == 0 {
		v.lbrSize = DefaultLBRSize
	}
	if v.heapNext == 0 {
		v.heapNext = p.Layout.HeapBase
	}
	if cfg.RecordTrace {
		v.Trace = &trace.Trace{}
	}
	for a, o := range st.Locks {
		v.locks[a] = o
	}
	// Threads must be registered densely by id, mirroring spawn order.
	byID := make(map[int]Thread, len(st.Threads))
	maxID := -1
	for _, t := range st.Threads {
		byID[t.ID] = t
		if t.ID > maxID {
			maxID = t.ID
		}
	}
	for id := 0; id <= maxID; id++ {
		t, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("vm: state thread ids not dense (missing %d)", id)
		}
		nt := t
		v.Threads = append(v.Threads, &nt)
	}
	if len(v.Threads) == 0 {
		return nil, fmt.Errorf("vm: state has no threads")
	}
	return v, nil
}

// CaptureState deep-copies the complete resumable machine state: feeding
// it to NewFromState (with the same inputs and a forced schedule) resumes
// the execution bit-exactly. The checkpoint recorder calls it at block
// boundaries, where the state is well-defined (no instruction is
// mid-flight).
func (v *VM) CaptureState() State {
	st := State{
		Mem:      v.Mem.Clone(),
		Locks:    make(map[uint32]int, len(v.locks)),
		Heap:     append([]coredump.HeapObject(nil), v.heap...),
		HeapNext: v.heapNext,
	}
	for a, o := range v.locks {
		st.Locks[a] = o
	}
	for _, t := range v.Threads {
		st.Threads = append(st.Threads, *t)
	}
	return st
}

// Steps returns the number of basic blocks executed so far.
func (v *VM) Steps() uint64 { return v.steps }

// Thread returns the thread with the given id, or nil.
func (v *VM) Thread(id int) *Thread {
	if id >= 0 && id < len(v.Threads) {
		return v.Threads[id]
	}
	return nil
}

// Run executes the program to completion, failure, or budget exhaustion.
// It returns a coredump if the execution failed (including deadlock and
// budget exhaustion) and nil on a clean exit.
func (v *VM) Run() (*coredump.Dump, error) {
	cur := 0
	for {
		if v.steps >= v.cfg.maxSteps() {
			return v.capture(coredump.Fault{Kind: coredump.FaultBudget, Thread: -1, PC: -1}), nil
		}
		tid, ok := v.pick(cur)
		if !ok {
			if v.anyBlocked() {
				return v.capture(coredump.Fault{Kind: coredump.FaultDeadlock, Thread: -1, PC: -1, Detail: v.blockedDetail()}), nil
			}
			return nil, nil // clean exit
		}
		cur = tid
		if f := v.ExecBlock(tid); f != nil {
			if f.Kind == coredump.FaultNone {
				continue // lock contention: nothing ran
			}
			return v.capture(*f), nil
		}
	}
}

// pick selects the next thread to run. It keeps the current thread with
// probability (100-PreemptPct)% if it is still runnable, otherwise picks
// uniformly among runnable threads.
func (v *VM) pick(cur int) (int, bool) {
	var runnable []int
	for _, t := range v.Threads {
		if t.State == coredump.ThreadRunnable {
			runnable = append(runnable, t.ID)
		}
	}
	if len(runnable) == 0 {
		return 0, false
	}
	if cur < len(v.Threads) && v.Threads[cur].State == coredump.ThreadRunnable {
		if v.cfg.PreemptPct <= 0 || v.rng.Intn(100) >= v.cfg.PreemptPct || len(runnable) == 1 {
			return cur, true
		}
	}
	return runnable[v.rng.Intn(len(runnable))], true
}

func (v *VM) anyBlocked() bool {
	for _, t := range v.Threads {
		if t.State == coredump.ThreadBlocked {
			return true
		}
	}
	return false
}

func (v *VM) blockedDetail() string {
	s := ""
	for _, t := range v.Threads {
		if t.State == coredump.ThreadBlocked {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("t%d waits on %d (held by t%d)", t.ID, t.WaitAddr, v.locks[t.WaitAddr])
		}
	}
	return s
}

// ExecBlock runs thread tid from its current pc to the end of its basic
// block. It returns nil on success, a Fault with Kind FaultNone if the
// thread parked on a contended lock without executing anything, or the
// fault that stopped execution. The faulting instruction's side effects
// are not applied.
func (v *VM) ExecBlock(tid int) *coredump.Fault {
	t := v.Threads[tid]
	if t.State != coredump.ThreadRunnable {
		return &coredump.Fault{Kind: coredump.FaultBadJump, Thread: tid, PC: t.PC, Detail: "scheduling non-runnable thread"}
	}
	block, err := v.P.BlockAt(t.PC)
	if err != nil {
		return &coredump.Fault{Kind: coredump.FaultBadJump, Thread: tid, PC: t.PC, Detail: err.Error()}
	}
	// Contended lock: park without running and without counting a step.
	term := block.Terminator(v.P.Code)
	if term.Op == isa.OpLock && block.End-block.Start == 1 {
		addr := uint64(t.Regs[term.Rs1])
		if owner, held := v.lockOwner(addr); held && owner != tid {
			t.State = coredump.ThreadBlocked
			t.WaitAddr = uint32(addr)
			return &coredump.Fault{Kind: coredump.FaultNone}
		}
	}
	v.steps++
	if v.Trace != nil {
		v.Trace.Append(trace.Step{Tid: tid, Block: block.ID})
	}
	if v.cfg.Hooks.OnBlockStart != nil {
		v.cfg.Hooks.OnBlockStart(tid, block.ID)
	}
	for pc := block.Start; pc < block.End; pc++ {
		t.PC = pc
		transferred, f := v.execInstr(t, &v.P.Code[pc])
		if f != nil {
			return f
		}
		if transferred {
			break
		}
		t.PC = pc + 1
	}
	return nil
}

func (v *VM) lockOwner(addr uint64) (int, bool) {
	if addr > uint64(^uint32(0)) {
		return 0, false
	}
	owner, held := v.locks[uint32(addr)]
	return owner, held
}

// checkAccess validates a data memory access and returns a fault if it is
// illegal. addr is the raw computed address (may be negative).
func (v *VM) checkAccess(t *Thread, pc int, addr int64) *coredump.Fault {
	lay := v.P.Layout
	if addr < 0 || addr >= int64(lay.MemSize) {
		return &coredump.Fault{Kind: coredump.FaultOOB, Thread: t.ID, PC: pc, Addr: uint32(addr & 0xffffffff), Detail: fmt.Sprintf("address %d outside memory", addr)}
	}
	a := uint32(addr)
	if a < lay.GlobalBase {
		return &coredump.Fault{Kind: coredump.FaultNullDeref, Thread: t.ID, PC: pc, Addr: a}
	}
	if v.cfg.CheckHeap && a >= lay.HeapBase && a < lay.HeapLimit() {
		// Heap region: must be inside a live object. The bump allocator
		// never reuses addresses, so at most one object contains a.
		for i := len(v.heap) - 1; i >= 0; i-- {
			h := v.heap[i]
			if h.Contains(a) {
				if h.Freed {
					return &coredump.Fault{Kind: coredump.FaultUseAfterFree, Thread: t.ID, PC: pc, Addr: a, Detail: fmt.Sprintf("object [%d,%d) freed at pc %d", h.Base, h.Base+h.Size, h.FreePC)}
				}
				return nil
			}
		}
		return &coredump.Fault{Kind: coredump.FaultHeapOOB, Thread: t.ID, PC: pc, Addr: a}
	}
	return nil
}

func (v *VM) recordBranch(from, to int) {
	if v.cfg.Hooks.OnBranch != nil {
		v.cfg.Hooks.OnBranch(from, to)
	}
	if v.lbrSize < 0 {
		return
	}
	if v.cfg.LBRSkipConditional && v.P.Code[from].Op == isa.OpBr {
		return
	}
	v.lbr = append(v.lbr, coredump.BranchRec{From: from, To: to})
	if len(v.lbr) > v.lbrSize {
		v.lbr = v.lbr[1:]
	}
}

// execInstr applies one instruction. It reports whether the instruction
// transferred control (in which case it set t.PC itself, possibly to the
// same pc for a self-jump) and any fault.
func (v *VM) execInstr(t *Thread, in *isa.Instr) (bool, *coredump.Fault) {
	pc := t.PC
	r := &t.Regs
	switch in.Op {
	case isa.OpNop:
	case isa.OpConst:
		r[in.Rd] = in.Imm
	case isa.OpMov:
		r[in.Rd] = r[in.Rs1]
	case isa.OpAdd:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.OpSub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.OpMul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.OpDiv:
		if r[in.Rs2] == 0 {
			return false, &coredump.Fault{Kind: coredump.FaultDivByZero, Thread: t.ID, PC: pc}
		}
		r[in.Rd] = r[in.Rs1] / r[in.Rs2]
	case isa.OpMod:
		if r[in.Rs2] == 0 {
			return false, &coredump.Fault{Kind: coredump.FaultDivByZero, Thread: t.ID, PC: pc}
		}
		r[in.Rd] = r[in.Rs1] % r[in.Rs2]
	case isa.OpAnd:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case isa.OpOr:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case isa.OpXor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case isa.OpShl:
		r[in.Rd] = r[in.Rs1] << (uint64(r[in.Rs2]) & 63)
	case isa.OpShr:
		r[in.Rd] = r[in.Rs1] >> (uint64(r[in.Rs2]) & 63)
	case isa.OpAddI:
		r[in.Rd] = r[in.Rs1] + in.Imm
	case isa.OpMulI:
		r[in.Rd] = r[in.Rs1] * in.Imm
	case isa.OpAndI:
		r[in.Rd] = r[in.Rs1] & in.Imm
	case isa.OpXorI:
		r[in.Rd] = r[in.Rs1] ^ in.Imm
	case isa.OpNot:
		r[in.Rd] = ^r[in.Rs1]
	case isa.OpNeg:
		r[in.Rd] = -r[in.Rs1]
	case isa.OpCmpEq:
		r[in.Rd] = b2i(r[in.Rs1] == r[in.Rs2])
	case isa.OpCmpNe:
		r[in.Rd] = b2i(r[in.Rs1] != r[in.Rs2])
	case isa.OpCmpLt:
		r[in.Rd] = b2i(r[in.Rs1] < r[in.Rs2])
	case isa.OpCmpLe:
		r[in.Rd] = b2i(r[in.Rs1] <= r[in.Rs2])

	case isa.OpLoad, isa.OpLoadG:
		addr := in.Imm
		if in.Op == isa.OpLoad {
			addr += r[in.Rs1]
		}
		if f := v.checkAccess(t, pc, addr); f != nil {
			return false, f
		}
		if v.cfg.Hooks.OnAccess != nil {
			v.cfg.Hooks.OnAccess(t.ID, pc, uint32(addr), false)
		}
		r[in.Rd] = v.Mem.Load(uint32(addr))
	case isa.OpStore, isa.OpStoreG:
		addr := in.Imm
		val := r[in.Rs1]
		if in.Op == isa.OpStore {
			addr += r[in.Rs1]
			val = r[in.Rs2]
		}
		if f := v.checkAccess(t, pc, addr); f != nil {
			return false, f
		}
		if v.cfg.Hooks.OnAccess != nil {
			v.cfg.Hooks.OnAccess(t.ID, pc, uint32(addr), true)
		}
		v.Mem.Store(uint32(addr), val)

	case isa.OpJmp:
		v.recordBranch(pc, in.Target)
		t.PC = in.Target
		return true, nil
	case isa.OpBr:
		dst := in.Target2
		if r[in.Rs1] != 0 {
			dst = in.Target
		}
		v.recordBranch(pc, dst)
		t.PC = dst
		return true, nil
	case isa.OpCall:
		sp := r[isa.SP] - 1
		if sp < int64(v.P.Layout.StackFloor(t.ID)) {
			return false, &coredump.Fault{Kind: coredump.FaultStackOverflow, Thread: t.ID, PC: pc, Addr: uint32(sp & 0xffffffff)}
		}
		if f := v.checkAccess(t, pc, sp); f != nil {
			return false, f
		}
		v.Mem.Store(uint32(sp), int64(pc+1))
		r[isa.SP] = sp
		v.recordBranch(pc, in.Target)
		t.PC = in.Target
		return true, nil
	case isa.OpRet:
		sp := r[isa.SP]
		if f := v.checkAccess(t, pc, sp); f != nil {
			return false, f
		}
		ret := v.Mem.Load(uint32(sp))
		if ret < 0 || ret >= int64(len(v.P.Code)) {
			return false, &coredump.Fault{Kind: coredump.FaultBadJump, Thread: t.ID, PC: pc, Detail: fmt.Sprintf("return address %d", ret)}
		}
		r[isa.SP] = sp + 1
		v.recordBranch(pc, int(ret))
		t.PC = int(ret)
		return true, nil

	case isa.OpAlloc:
		size := r[in.Rs1]
		if size <= 0 || size > int64(v.P.Layout.HeapLimit()-v.P.Layout.HeapBase) {
			return false, &coredump.Fault{Kind: coredump.FaultOutOfMemory, Thread: t.ID, PC: pc, Detail: fmt.Sprintf("bad allocation size %d", size)}
		}
		base := v.heapNext + prog.HeapRedzone
		if base+uint32(size) > v.P.Layout.HeapLimit() {
			return false, &coredump.Fault{Kind: coredump.FaultOutOfMemory, Thread: t.ID, PC: pc}
		}
		v.heap = append(v.heap, coredump.HeapObject{Base: base, Size: uint32(size), AllocPC: pc, FreePC: -1})
		r[in.Rd] = int64(base)
		v.heapNext = base + uint32(size)
	case isa.OpFree:
		base := r[in.Rs1]
		found := false
		for i := range v.heap {
			if int64(v.heap[i].Base) == base {
				if v.heap[i].Freed {
					return false, &coredump.Fault{Kind: coredump.FaultDoubleFree, Thread: t.ID, PC: pc, Addr: uint32(base & 0xffffffff)}
				}
				v.heap[i].Freed = true
				v.heap[i].FreePC = pc
				found = true
				break
			}
		}
		if !found {
			return false, &coredump.Fault{Kind: coredump.FaultBadFree, Thread: t.ID, PC: pc, Addr: uint32(base & 0xffffffff)}
		}

	case isa.OpSpawn:
		if len(v.Threads) >= v.P.Layout.MaxThreads {
			return false, &coredump.Fault{Kind: coredump.FaultOutOfMemory, Thread: t.ID, PC: pc, Detail: "too many threads"}
		}
		nt := &Thread{ID: len(v.Threads), PC: in.Target}
		nt.Regs[0] = r[in.Rs1]
		nt.Regs[isa.SP] = int64(v.P.Layout.StackTop(nt.ID))
		v.Threads = append(v.Threads, nt)
		t.PC = pc + 1
		return true, nil
	case isa.OpYield:
		t.PC = pc + 1
		return true, nil
	case isa.OpLock:
		addr := r[in.Rs1]
		if f := v.checkAccess(t, pc, addr); f != nil {
			return false, f
		}
		a := uint32(addr)
		if owner, held := v.locks[a]; held {
			if owner == t.ID {
				return false, &coredump.Fault{Kind: coredump.FaultRelock, Thread: t.ID, PC: pc, Addr: a}
			}
			// Contention is normally intercepted in ExecBlock before the
			// block runs; reaching here means a forced schedule ran a
			// blocked acquire — report it as deadlock-class.
			return false, &coredump.Fault{Kind: coredump.FaultDeadlock, Thread: t.ID, PC: pc, Addr: a, Detail: "forced acquire of held mutex"}
		}
		v.locks[a] = t.ID
		if v.cfg.Hooks.OnLock != nil {
			v.cfg.Hooks.OnLock(t.ID, pc, a, true)
		}
		t.PC = pc + 1
		return true, nil
	case isa.OpUnlock:
		addr := r[in.Rs1]
		if f := v.checkAccess(t, pc, addr); f != nil {
			return false, f
		}
		a := uint32(addr)
		if owner, held := v.locks[a]; !held || owner != t.ID {
			return false, &coredump.Fault{Kind: coredump.FaultBadUnlock, Thread: t.ID, PC: pc, Addr: a}
		}
		delete(v.locks, a)
		if v.cfg.Hooks.OnLock != nil {
			v.cfg.Hooks.OnLock(t.ID, pc, a, false)
		}
		v.wake(a)

	case isa.OpInput:
		val := int64(0)
		ch := in.Imm
		if vals, ok := v.inputs[ch]; ok && v.inputPos[ch] < len(vals) {
			val = vals[v.inputPos[ch]]
			v.inputPos[ch]++
		}
		r[in.Rd] = val
		if v.cfg.Hooks.OnInput != nil {
			v.cfg.Hooks.OnInput(t.ID, ch, val)
		}
		if v.Trace != nil {
			v.Trace.Inputs = append(v.Trace.Inputs, trace.InputRec{Tid: t.ID, Channel: ch, Value: val})
		}
	case isa.OpOutput:
		v.outputs = append(v.outputs, coredump.OutputRec{PC: pc, Tag: in.Imm, Value: r[in.Rs1]})
	case isa.OpAssert:
		if r[in.Rs1] == 0 {
			return false, &coredump.Fault{Kind: coredump.FaultAssert, Thread: t.ID, PC: pc}
		}
	case isa.OpHalt:
		t.State = coredump.ThreadExited
		return true, nil
	default:
		return false, &coredump.Fault{Kind: coredump.FaultBadJump, Thread: t.ID, PC: pc, Detail: fmt.Sprintf("unimplemented opcode %v", in.Op)}
	}
	return false, nil
}

// wake moves threads blocked on mutex addr back to runnable.
func (v *VM) wake(addr uint32) {
	for _, t := range v.Threads {
		if t.State == coredump.ThreadBlocked && t.WaitAddr == addr {
			t.State = coredump.ThreadRunnable
			t.WaitAddr = 0
		}
	}
}

// capture snapshots the VM into a coredump.
func (v *VM) capture(f coredump.Fault) *coredump.Dump {
	d := &coredump.Dump{
		Mem:     v.Mem.Clone(),
		Locks:   make(map[uint32]int, len(v.locks)),
		Heap:    append([]coredump.HeapObject(nil), v.heap...),
		Fault:   f,
		Outputs: append([]coredump.OutputRec(nil), v.outputs...),
		LBR:     append([]coredump.BranchRec(nil), v.lbr...),
		Steps:   v.steps,
	}
	for a, o := range v.locks {
		d.Locks[a] = o
	}
	for _, t := range v.Threads {
		d.Threads = append(d.Threads, coredump.Thread{
			ID: t.ID, Regs: t.Regs, PC: t.PC, State: t.State, WaitAddr: t.WaitAddr,
		})
	}
	return d
}

// Snapshot captures the current state as a dump with the given fault
// descriptor; used by fault-injection harnesses.
func (v *VM) Snapshot(f coredump.Fault) *coredump.Dump { return v.capture(f) }

// Outputs returns the output log so far.
func (v *VM) Outputs() []coredump.OutputRec { return v.outputs }

// Heap returns the allocator records so far.
func (v *VM) Heap() []coredump.HeapObject { return append([]coredump.HeapObject(nil), v.heap...) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

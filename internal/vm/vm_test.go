package vm

import (
	"testing"

	"res/internal/asm"
	"res/internal/coredump"
	"res/internal/isa"
)

func run(t *testing.T, src string, cfg Config) (*VM, *coredump.Dump) {
	t.Helper()
	p := asm.MustAssemble(src)
	v, err := New(p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := v.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v, d
}

func TestArithmeticAndGlobals(t *testing.T) {
	src := `
.global x 1
.global y 1
func main:
    const r1, 6
    const r2, 7
    mul r3, r1, r2
    storeg r3, &x
    loadg r4, &x
    addi r4, r4, -2
    storeg r4, &y
    halt
`
	v, d := run(t, src, Config{})
	if d != nil {
		t.Fatalf("unexpected fault: %v", d.Fault)
	}
	x, _ := v.P.GlobalAddr("x")
	y, _ := v.P.GlobalAddr("y")
	if got := v.Mem.Load(x); got != 42 {
		t.Errorf("x = %d, want 42", got)
	}
	if got := v.Mem.Load(y); got != 40 {
		t.Errorf("y = %d, want 40", got)
	}
}

func TestLoopAndBranch(t *testing.T) {
	src := `
.global sum 1
func main:
    const r1, 10
    const r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    br r1, loop, done
done:
    storeg r2, &sum
    halt
`
	v, d := run(t, src, Config{})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	addr, _ := v.P.GlobalAddr("sum")
	if got := v.Mem.Load(addr); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestCallRet(t *testing.T) {
	src := `
.global out 1
func main:
    const r0, 5
    call double
    storeg r0, &out
    halt
func double:
    add r0, r0, r0
    ret
`
	v, d := run(t, src, Config{})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	addr, _ := v.P.GlobalAddr("out")
	if got := v.Mem.Load(addr); got != 10 {
		t.Errorf("out = %d, want 10", got)
	}
	// SP restored.
	if sp := v.Threads[0].Regs[isa.SP]; sp != int64(v.P.Layout.StackTop(0)) {
		t.Errorf("sp = %d, want %d", sp, v.P.Layout.StackTop(0))
	}
}

func TestRecursion(t *testing.T) {
	// fact(6) via recursion, result in r0.
	src := `
.global out 1
func main:
    const r0, 6
    call fact
    storeg r0, &out
    halt
func fact:
    const r2, 1
    cmple r3, r0, r2
    br r3, base, rec
rec:
    mov r4, r0
    addi sp, sp, -1
    store sp, r4, 0
    addi r0, r0, -1
    call fact
    load r4, sp, 0
    addi sp, sp, 1
    mul r0, r0, r4
    ret
base:
    const r0, 1
    ret
`
	v, d := run(t, src, Config{})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	addr, _ := v.P.GlobalAddr("out")
	if got := v.Mem.Load(addr); got != 720 {
		t.Errorf("fact(6) = %d, want 720", got)
	}
}

func TestNullDerefFault(t *testing.T) {
	src := `
func main:
    const r1, 0
    load r2, r1, 0
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultNullDeref {
		t.Fatalf("dump = %+v, want null-deref", d)
	}
	if d.Fault.PC != 1 || d.Fault.Thread != 0 {
		t.Errorf("fault = %v", d.Fault)
	}
}

func TestDivByZeroFault(t *testing.T) {
	src := `
func main:
    const r1, 9
    const r2, 0
    div r3, r1, r2
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultDivByZero {
		t.Fatalf("want div-by-zero, got %+v", d)
	}
}

func TestAssertFault(t *testing.T) {
	src := `
.global g 1
func main:
    loadg r1, &g
    assert r1
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultAssert {
		t.Fatalf("want assert fault, got %+v", d)
	}
}

func TestInputsAndOutputs(t *testing.T) {
	src := `
func main:
    input r1, 0
    input r2, 0
    add r3, r1, r2
    output r3, 99
    halt
`
	v, d := run(t, src, Config{Inputs: map[int64][]int64{0: {11, 31}}})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	outs := v.Outputs()
	if len(outs) != 1 || outs[0].Value != 42 || outs[0].Tag != 99 {
		t.Errorf("outputs = %+v", outs)
	}
}

func TestInputExhaustionReturnsZero(t *testing.T) {
	src := `
func main:
    input r1, 5
    assert r1
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultAssert {
		t.Fatalf("want assert on zero input, got %+v", d)
	}
}

func TestHeapAllocFree(t *testing.T) {
	src := `
.global p 1
func main:
    const r1, 4
    alloc r2, r1
    storeg r2, &p
    const r3, 77
    store r2, r3, 2
    load r4, r2, 2
    assert r4
    free r2
    halt
`
	v, d := run(t, src, Config{})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	h := v.Heap()
	if len(h) != 1 || !h[0].Freed || h[0].Size != 4 {
		t.Errorf("heap = %+v", h)
	}
}

func TestDoubleFree(t *testing.T) {
	src := `
func main:
    const r1, 2
    alloc r2, r1
    free r2
    free r2
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultDoubleFree {
		t.Fatalf("want double-free, got %+v", d)
	}
}

func TestUseAfterFreeCheckedMode(t *testing.T) {
	src := `
func main:
    const r1, 2
    alloc r2, r1
    free r2
    load r3, r2, 0
    halt
`
	_, d := run(t, src, Config{CheckHeap: true})
	if d == nil || d.Fault.Kind != coredump.FaultUseAfterFree {
		t.Fatalf("want use-after-free, got %+v", d)
	}
	// Production mode: silent.
	_, d = run(t, src, Config{})
	if d != nil {
		t.Fatalf("production mode should not fault, got %v", d.Fault)
	}
}

func TestHeapOOBCheckedMode(t *testing.T) {
	src := `
func main:
    const r1, 2
    alloc r2, r1
    const r3, 5
    store r2, r3, 3
    halt
`
	_, d := run(t, src, Config{CheckHeap: true})
	if d == nil || d.Fault.Kind != coredump.FaultHeapOOB {
		t.Fatalf("want heap-oob, got %+v", d)
	}
	_, d = run(t, src, Config{})
	if d != nil {
		t.Fatalf("production mode should not fault, got %v", d.Fault)
	}
}

func TestSpawnAndJoinViaFlag(t *testing.T) {
	src := `
.global flag 1
.global val 1
func main:
    const r2, 21
    spawn worker, r2
wait:
    loadg r1, &flag
    cmpeq r3, r1, r1
    br r1, done, wait
done:
    loadg r4, &val
    output r4, 1
    halt
func worker:
    add r1, r0, r0
    storeg r1, &val
    const r2, 1
    storeg r2, &flag
    halt
`
	v, d := run(t, src, Config{Seed: 7, PreemptPct: 30})
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	outs := v.Outputs()
	if len(outs) != 1 || outs[0].Value != 42 {
		t.Errorf("outputs = %+v", outs)
	}
}

func TestLockMutualExclusionAndDeadlock(t *testing.T) {
	// Two threads each lock m1 then m2 / m2 then m1: classic deadlock,
	// given a schedule that interleaves the first acquires.
	src := `
.global m1 1
.global m2 1
func main:
    const r1, 0
    spawn worker, r1
    const r2, &m1
    lock r2
    yield
    const r3, &m2
    lock r3
    unlock r3
    unlock r2
    halt
func worker:
    const r2, &m2
    lock r2
    yield
    const r3, &m1
    lock r3
    unlock r3
    unlock r2
    halt
`
	// Search seeds until the deadlock manifests (it needs the right
	// interleaving, like any real concurrency bug).
	found := false
	for seed := int64(0); seed < 50; seed++ {
		_, d := run(t, src, Config{Seed: seed, PreemptPct: 60})
		if d != nil && d.Fault.Kind == coredump.FaultDeadlock {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("deadlock never manifested across 50 seeds")
	}
}

func TestBadUnlock(t *testing.T) {
	src := `
.global m 1
func main:
    const r1, &m
    unlock r1
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultBadUnlock {
		t.Fatalf("want bad-unlock, got %+v", d)
	}
}

func TestRelockFault(t *testing.T) {
	src := `
.global m 1
func main:
    const r1, &m
    lock r1
    lock r1
    halt
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultRelock {
		t.Fatalf("want relock, got %+v", d)
	}
}

func TestBudgetFault(t *testing.T) {
	src := `
func main:
loop:
    jmp loop
`
	_, d := run(t, src, Config{MaxSteps: 100})
	if d == nil || d.Fault.Kind != coredump.FaultBudget {
		t.Fatalf("want budget fault, got %+v", d)
	}
	if d.Steps != 100 {
		t.Errorf("steps = %d, want 100", d.Steps)
	}
}

func TestStackOverflow(t *testing.T) {
	src := `
func main:
    call main
`
	// main ends with a terminator (call is last) — that is rejected by the
	// assembler, so use a jmp loop around the call instead.
	src = `
func main:
loop:
    call f
    jmp loop
func f:
    call f
    ret
`
	_, d := run(t, src, Config{})
	if d == nil || d.Fault.Kind != coredump.FaultStackOverflow {
		t.Fatalf("want stack overflow, got %+v", d)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	src := `
.global c 1
func main:
    const r1, 0
    spawn worker, r1
    spawn worker, r1
    const r2, 50
m:
    loadg r3, &c
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, m, md
md:
    halt
func worker:
    const r2, 50
w:
    loadg r3, &c
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, w, wd
wd:
    halt
`
	p := asm.MustAssemble(src)
	results := make([]int64, 2)
	for i := range results {
		v, err := New(p, Config{Seed: 99, PreemptPct: 50})
		if err != nil {
			t.Fatal(err)
		}
		if d, err := v.Run(); err != nil || d != nil {
			t.Fatalf("run %d: %v %v", i, err, d)
		}
		addr, _ := p.GlobalAddr("c")
		results[i] = v.Mem.Load(addr)
	}
	if results[0] != results[1] {
		t.Errorf("same seed diverged: %d vs %d", results[0], results[1])
	}
}

func TestLostUpdateRaceObservable(t *testing.T) {
	// The classic data race: unsynchronized read-modify-write from two
	// threads. With preemption between load and store, updates get lost.
	src := `
.global c 1
func main:
    const r1, 0
    spawn worker, r1
    const r2, 40
m:
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, m, md
md:
    halt
func worker:
    const r2, 40
w:
    loadg r3, &c
    yield
    addi r3, r3, 1
    storeg r3, &c
    addi r2, r2, -1
    br r2, w, wd
wd:
    halt
`
	p := asm.MustAssemble(src)
	addr, _ := p.GlobalAddr("c")
	lost := false
	for seed := int64(0); seed < 30 && !lost; seed++ {
		v, _ := New(p, Config{Seed: seed, PreemptPct: 70})
		if d, err := v.Run(); err != nil || d != nil {
			t.Fatalf("unexpected failure: %v %v", err, d)
		}
		if v.Mem.Load(addr) < 80 {
			lost = true
		}
	}
	if !lost {
		t.Error("lost update never manifested across 30 seeds")
	}
}

func TestLBRRecording(t *testing.T) {
	src := `
func main:
    const r1, 3
loop:
    addi r1, r1, -1
    br r1, loop, done
done:
    halt
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{})
	d, _ := v.Run()
	if d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	// 3 branch records from the br (two taken, one fallthrough).
	dump := v.Snapshot(coredump.Fault{})
	if len(dump.LBR) != 3 {
		t.Fatalf("LBR = %+v", dump.LBR)
	}
	if dump.LBR[0].To != 1 || dump.LBR[2].To != 3 {
		t.Errorf("LBR = %+v", dump.LBR)
	}
}

func TestLBRRingBounded(t *testing.T) {
	src := `
func main:
    const r1, 100
loop:
    addi r1, r1, -1
    br r1, loop, done
done:
    halt
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{LBRSize: 8})
	if d, _ := v.Run(); d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	dump := v.Snapshot(coredump.Fault{})
	if len(dump.LBR) != 8 {
		t.Errorf("LBR len = %d, want 8", len(dump.LBR))
	}
}

func TestTraceRecording(t *testing.T) {
	src := `
func main:
    input r1, 0
    assert r1
    halt
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{RecordTrace: true, Inputs: map[int64][]int64{0: {5}}})
	if d, _ := v.Run(); d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	if v.Trace == nil || v.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	if len(v.Trace.Inputs) != 1 || v.Trace.Inputs[0].Value != 5 {
		t.Errorf("trace inputs = %+v", v.Trace.Inputs)
	}
}

func TestDumpCaptureAndStackWalk(t *testing.T) {
	src := `
.global g 1
func main:
    const r0, 1
    call outer
    halt
func outer:
    call inner
    ret
func inner:
    const r1, 0
    load r2, r1, 0
    ret
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{})
	d, err := v.Run()
	if err != nil || d == nil {
		t.Fatalf("expected dump, got %v %v", d, err)
	}
	if d.Fault.Kind != coredump.FaultNullDeref {
		t.Fatalf("fault = %v", d.Fault)
	}
	frames, err := d.Walk(p, d.Fault.Thread)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Func != "inner" || frames[1].Func != "outer" || frames[2].Func != "main" {
		t.Errorf("stack = %v %v %v", frames[0].Func, frames[1].Func, frames[2].Func)
	}
}

func TestDumpSerializationRoundTrip(t *testing.T) {
	src := `
.global g 2
func main:
    const r1, 7
    storeg r1, &g
    const r2, 0
    spawn worker, r2
    const r3, 0
    load r4, r3, 0
    halt
func worker:
    const r5, 1
w:
    jmp w
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{Seed: 3})
	d, _ := v.Run()
	if d == nil {
		t.Fatal("expected a dump")
	}
	b, err := d.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	d2, err := coredump.Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if d2.Fault != d.Fault {
		t.Errorf("fault: %+v vs %+v", d2.Fault, d.Fault)
	}
	if len(d2.Threads) != len(d.Threads) {
		t.Fatalf("threads: %d vs %d", len(d2.Threads), len(d.Threads))
	}
	for i := range d.Threads {
		if d2.Threads[i] != d.Threads[i] {
			t.Errorf("thread %d: %+v vs %+v", i, d2.Threads[i], d.Threads[i])
		}
	}
	if diffs := d2.Mem.Diff(d.Mem); len(diffs) != 0 {
		t.Errorf("memory differs at %v", diffs)
	}
	if d2.Steps != d.Steps {
		t.Errorf("steps: %d vs %d", d2.Steps, d.Steps)
	}
}

package vm

import (
	"testing"

	"res/internal/asm"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/mem"
)

func TestNewFromStateResumes(t *testing.T) {
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    loadg r2, &g
    addi r3, r2, 1
    storeg r3, &g
    halt
`
	p := asm.MustAssemble(src)
	// Run the first block... the whole main is one block; instead build a
	// state by hand mid-computation: g = 5, pc at the loadg.
	img := mem.NewImage(p.Layout.MemSize)
	gaddr, _ := p.GlobalAddr("g")
	img.Store(gaddr, 5)
	th := Thread{ID: 0, PC: 2}
	th.Regs[1] = 5
	th.Regs[isa.SP] = int64(p.Layout.StackTop(0))
	v, err := NewFromState(p, Config{}, State{
		Mem:      img,
		Threads:  []Thread{th},
		HeapNext: p.Layout.HeapBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Run()
	if err != nil || d != nil {
		t.Fatalf("resume run: %v %v", d, err)
	}
	if got := v.Mem.Load(gaddr); got != 6 {
		t.Errorf("g = %d, want 6", got)
	}
}

func TestNewFromStateValidation(t *testing.T) {
	p := asm.MustAssemble("func main:\n halt")
	if _, err := NewFromState(p, Config{}, State{}); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := NewFromState(p, Config{}, State{Mem: mem.NewImage(8)}); err == nil {
		t.Error("wrong-size memory accepted")
	}
	img := mem.NewImage(p.Layout.MemSize)
	if _, err := NewFromState(p, Config{}, State{Mem: img}); err == nil {
		t.Error("zero threads accepted")
	}
	// Non-dense thread ids rejected.
	if _, err := NewFromState(p, Config{}, State{
		Mem:     img,
		Threads: []Thread{{ID: 1}},
	}); err == nil {
		t.Error("sparse thread ids accepted")
	}
}

func TestNewFromStateLocksRestored(t *testing.T) {
	src := `
.global m 1
func main:
    const r1, &m
    unlock r1
    halt
`
	p := asm.MustAssemble(src)
	img := mem.NewImage(p.Layout.MemSize)
	maddr, _ := p.GlobalAddr("m")
	th := Thread{ID: 0, PC: 0}
	th.Regs[isa.SP] = int64(p.Layout.StackTop(0))
	v, err := NewFromState(p, Config{}, State{
		Mem:     img,
		Threads: []Thread{th},
		Locks:   map[uint32]int{maddr: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The restored lock table lets the unlock succeed.
	if d, err := v.Run(); err != nil || d != nil {
		t.Fatalf("unlock with restored lock: %v %v", d, err)
	}
}

func TestHooksObserveExecution(t *testing.T) {
	src := `
.global g 1
.global m 1
func main:
    const r1, &m
    lock r1
    loadg r2, &g
    addi r2, r2, 1
    storeg r2, &g
    unlock r1
    halt
`
	p := asm.MustAssemble(src)
	var accesses, locks, blocks int
	var lastWrite uint32
	v, _ := New(p, Config{Hooks: Hooks{
		OnAccess: func(tid, pc int, addr uint32, write bool) {
			accesses++
			if write {
				lastWrite = addr
			}
		},
		OnLock:       func(tid, pc int, addr uint32, acquire bool) { locks++ },
		OnBlockStart: func(tid, block int) { blocks++ },
	}})
	if d, err := v.Run(); err != nil || d != nil {
		t.Fatalf("run: %v %v", d, err)
	}
	gaddr, _ := p.GlobalAddr("g")
	if accesses != 2 || lastWrite != gaddr {
		t.Errorf("accesses=%d lastWrite=%d", accesses, lastWrite)
	}
	if locks != 2 {
		t.Errorf("lock events = %d, want 2", locks)
	}
	if blocks < 2 {
		t.Errorf("block events = %d", blocks)
	}
}

func TestLBRSkipConditional(t *testing.T) {
	src := `
func main:
    const r1, 2
loop:
    addi r1, r1, -1
    br r1, loop, done
done:
    jmp fin
fin:
    halt
`
	p := asm.MustAssemble(src)
	v, _ := New(p, Config{LBRSkipConditional: true})
	if d, _ := v.Run(); d != nil {
		t.Fatalf("fault: %v", d.Fault)
	}
	dump := v.Snapshot(coredump.Fault{})
	// Only the unconditional jmp is recorded.
	if len(dump.LBR) != 1 {
		t.Fatalf("LBR = %+v, want only the jmp", dump.LBR)
	}
	if p.Code[dump.LBR[0].From].Op != isa.OpJmp {
		t.Errorf("recorded %v", p.Code[dump.LBR[0].From].Op)
	}
}

// Package synth implements the baseline RES is measured against: forward
// execution synthesis in the style of ESD (Zamfir & Candea, EuroSys 2010),
// the authors' own earlier system. It symbolically executes the program
// forward from its initial state, forking at input-dependent branches and
// at scheduling choices, searching for a path that ends in the dumped
// failure with a memory state matching the coredump.
//
// The point of the baseline is the paper's motivation: the cost of forward
// synthesis grows with the length of the execution (every prefix branch
// forks the search), while RES's backward suffix synthesis does not. The
// harness measures states explored and solver effort until the goal or the
// budget is hit.
package synth

import (
	"time"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/solver"
	"res/internal/symx"
)

// Options bounds the search.
type Options struct {
	// MaxStates caps explored symbolic states. 0 = 10000.
	MaxStates int
	// MaxBlocksPerPath caps a single path's length (loop guard). 0 = 100000.
	MaxBlocksPerPath int
	// Solver tunes constraint solving.
	Solver solver.Options
	// MatchGlobals requires the goal state's globals to equal the dump's
	// (the "reproduces the coredump" requirement). Disabling it makes the
	// baseline strictly easier, which only strengthens the comparison.
	MatchGlobals bool
}

func (o Options) maxStates() int {
	if o.MaxStates == 0 {
		return 10000
	}
	return o.MaxStates
}

func (o Options) maxBlocks() int {
	if o.MaxBlocksPerPath == 0 {
		return 100000
	}
	return o.MaxBlocksPerPath
}

// Result reports the search outcome.
type Result struct {
	Found          bool
	StatesExplored int
	SolverCalls    int
	GoalPathBlocks int // length of the found path, in blocks
	GaveUp         bool
	Reason         string
	Elapsed        time.Duration
}

type threadState struct {
	regs  [isa.NumRegs]*symx.Expr
	pc    int
	alive bool
}

type state struct {
	threads  []*threadState
	mem      map[uint32]*symx.Expr // overlay over the initial image
	cons     []solver.Constraint
	blocks   int
	heapNext uint32
	locks    map[uint32]int
}

func (s *state) clone() *state {
	ns := &state{
		threads:  make([]*threadState, len(s.threads)),
		mem:      make(map[uint32]*symx.Expr, len(s.mem)),
		cons:     append([]solver.Constraint(nil), s.cons...),
		blocks:   s.blocks,
		heapNext: s.heapNext,
		locks:    make(map[uint32]int, len(s.locks)),
	}
	for i, t := range s.threads {
		nt := *t
		ns.threads[i] = &nt
	}
	for a, e := range s.mem {
		ns.mem[a] = e
	}
	for a, o := range s.locks {
		ns.locks[a] = o
	}
	return ns
}

// Synthesize searches forward from the initial state for an execution that
// reproduces the dump's failure.
func Synthesize(p *prog.Program, d *coredump.Dump, opt Options) *Result {
	start := time.Now()
	res := &Result{}
	pool := symx.NewPool()

	entry, err := p.Entry()
	if err != nil {
		res.GaveUp = true
		res.Reason = err.Error()
		return res
	}
	init := &state{
		mem:      make(map[uint32]*symx.Expr),
		heapNext: p.Layout.HeapBase,
		locks:    make(map[uint32]int),
	}
	t0 := &threadState{pc: entry, alive: true}
	for r := range t0.regs {
		t0.regs[r] = symx.Const(0)
	}
	t0.regs[isa.SP] = symx.Const(int64(p.Layout.StackTop(0)))
	init.threads = append(init.threads, t0)
	for _, g := range p.Globals {
		for i, val := range g.Init {
			init.mem[g.Addr+uint32(i)] = symx.Const(val)
		}
	}

	// DFS over (state, thread-choice) forks.
	stack := []*state{init}
	for len(stack) > 0 {
		if res.StatesExplored >= opt.maxStates() {
			res.GaveUp = true
			res.Reason = "state budget exhausted"
			break
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.StatesExplored++

		if s.blocks > opt.maxBlocks() {
			continue
		}
		// Goal test: the faulting thread is at the fault pc's block and
		// executing it faults the observed way with a dump-matching state.
		if ok, blocks := goalTest(p, d, s, pool, opt, res); ok {
			res.Found = true
			res.GoalPathBlocks = blocks
			break
		}

		// Fork on scheduling: every alive thread may run next.
		for tid := len(s.threads) - 1; tid >= 0; tid-- {
			if !s.threads[tid].alive {
				continue
			}
			for _, succ := range execBlock(p, s, tid, pool, opt, res) {
				stack = append(stack, succ)
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// goalTest checks whether running the faulting thread's current block
// reproduces the fault.
func goalTest(p *prog.Program, d *coredump.Dump, s *state, pool *symx.Pool, opt Options, res *Result) (bool, int) {
	if d.Fault.Thread < 0 || d.Fault.Thread >= len(s.threads) {
		return false, 0
	}
	t := s.threads[d.Fault.Thread]
	if !t.alive {
		return false, 0
	}
	fb, err := p.BlockAt(d.Fault.PC)
	if err != nil || !fb.Contains(t.pc) || t.pc != fb.Start {
		return false, 0
	}
	// Execute the partial block up to the fault and collect constraints.
	g := s.clone()
	gt := g.threads[d.Fault.Thread]
	for pc := fb.Start; pc < d.Fault.PC; pc++ {
		if !stepInstr(p, g, gt, &p.Code[pc], pc, pool, res) {
			return false, 0
		}
	}
	cs := append([]solver.Constraint{}, g.cons...)
	in := &p.Code[d.Fault.PC]
	switch d.Fault.Kind {
	case coredump.FaultAssert:
		cs = append(cs, solver.Falsy(gt.regs[in.Rs1]))
	case coredump.FaultDivByZero:
		cs = append(cs, solver.Eq(gt.regs[in.Rs2], symx.Const(0)))
	case coredump.FaultNullDeref:
		var addr *symx.Expr
		switch in.Op {
		case isa.OpLoad, isa.OpStore:
			addr = symx.Binary(symx.OpAdd, gt.regs[in.Rs1], symx.Const(in.Imm))
		default:
			addr = symx.Const(int64(d.Fault.Addr))
		}
		cs = append(cs, solver.Eq(addr, symx.Const(int64(d.Fault.Addr))))
	default:
		// Other fault kinds: require only reaching the pc.
	}
	if opt.MatchGlobals {
		for _, gl := range p.Globals {
			for i := uint32(0); i < gl.Size; i++ {
				a := gl.Addr + i
				want := symx.Const(d.Mem.Load(a))
				have, ok := g.mem[a]
				if !ok {
					have = symx.Const(0)
				}
				cs = append(cs, solver.Eq(have, want))
			}
		}
	}
	chk := solver.Check(cs, opt.Solver)
	res.SolverCalls++
	return chk.Verdict == solver.Sat, g.blocks
}

// execBlock symbolically executes thread tid's current block, returning
// the successor states (two for a symbolic branch).
func execBlock(p *prog.Program, s *state, tid int, pool *symx.Pool, opt Options, res *Result) []*state {
	ns := s.clone()
	t := ns.threads[tid]
	block, err := p.BlockAt(t.pc)
	if err != nil || t.pc != block.Start {
		return nil
	}
	ns.blocks++
	for pc := block.Start; pc < block.End; pc++ {
		in := &p.Code[pc]
		if in.Op == isa.OpBr {
			cond := t.regs[in.Rs1]
			if c, ok := cond.IsConst(); ok {
				if c != 0 {
					t.pc = in.Target
				} else {
					t.pc = in.Target2
				}
				return []*state{ns}
			}
			// Fork: both directions that remain satisfiable.
			var out []*state
			taken := ns.clone()
			taken.cons = append(taken.cons, solver.Truthy(cond))
			taken.threads[tid].pc = in.Target
			if r := solver.Check(taken.cons, opt.Solver); r.Verdict != solver.Unsat {
				out = append(out, taken)
			}
			res.SolverCalls++
			fall := ns
			fall.cons = append(fall.cons, solver.Falsy(cond))
			fall.threads[tid].pc = in.Target2
			if r := solver.Check(fall.cons, opt.Solver); r.Verdict != solver.Unsat {
				out = append(out, fall)
			}
			res.SolverCalls++
			return out
		}
		if !stepInstr(p, ns, t, in, pc, pool, res) {
			return nil // path abandoned (fault or unsupported)
		}
		if in.IsTerminator() {
			return []*state{ns}
		}
	}
	return []*state{ns}
}

// stepInstr executes one non-branch instruction forward symbolically.
// Returns false to abandon the path.
func stepInstr(p *prog.Program, s *state, t *threadState, in *isa.Instr, pc int, pool *symx.Pool, res *Result) bool {
	r := &t.regs
	bin := func(op symx.Op) { r[in.Rd] = symx.Binary(op, r[in.Rs1], r[in.Rs2]) }
	bini := func(op symx.Op) { r[in.Rd] = symx.Binary(op, r[in.Rs1], symx.Const(in.Imm)) }
	loadAddr := func() (uint32, bool) {
		e := symx.Const(in.Imm)
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			e = symx.Binary(symx.OpAdd, r[in.Rs1], symx.Const(in.Imm))
		}
		c, ok := e.IsConst()
		if !ok || c < int64(p.Layout.GlobalBase) || c >= int64(p.Layout.MemSize) {
			return 0, false
		}
		return uint32(c), true
	}
	switch in.Op {
	case isa.OpNop, isa.OpOutput, isa.OpAssert:
		// assert: assume the non-failing direction on intermediate blocks;
		// recording the constraint keeps paths honest.
		if in.Op == isa.OpAssert {
			s.cons = append(s.cons, solver.Truthy(r[in.Rs1]))
		}
	case isa.OpConst:
		r[in.Rd] = symx.Const(in.Imm)
	case isa.OpMov:
		r[in.Rd] = r[in.Rs1]
	case isa.OpAdd:
		bin(symx.OpAdd)
	case isa.OpSub:
		bin(symx.OpSub)
	case isa.OpMul:
		bin(symx.OpMul)
	case isa.OpDiv:
		s.cons = append(s.cons, solver.Ne(r[in.Rs2], symx.Const(0)))
		bin(symx.OpDiv)
	case isa.OpMod:
		s.cons = append(s.cons, solver.Ne(r[in.Rs2], symx.Const(0)))
		bin(symx.OpMod)
	case isa.OpAnd:
		bin(symx.OpAnd)
	case isa.OpOr:
		bin(symx.OpOr)
	case isa.OpXor:
		bin(symx.OpXor)
	case isa.OpShl:
		bin(symx.OpShl)
	case isa.OpShr:
		bin(symx.OpShr)
	case isa.OpAddI:
		bini(symx.OpAdd)
	case isa.OpMulI:
		bini(symx.OpMul)
	case isa.OpAndI:
		bini(symx.OpAnd)
	case isa.OpXorI:
		bini(symx.OpXor)
	case isa.OpNot:
		r[in.Rd] = symx.Unary(symx.OpNot, r[in.Rs1])
	case isa.OpNeg:
		r[in.Rd] = symx.Unary(symx.OpNeg, r[in.Rs1])
	case isa.OpCmpEq:
		bin(symx.OpEq)
	case isa.OpCmpNe:
		bin(symx.OpNe)
	case isa.OpCmpLt:
		bin(symx.OpLt)
	case isa.OpCmpLe:
		bin(symx.OpLe)
	case isa.OpLoad, isa.OpLoadG:
		a, ok := loadAddr()
		if !ok {
			return false // symbolic address: abandon (conservative baseline)
		}
		if e, has := s.mem[a]; has {
			r[in.Rd] = e
		} else {
			r[in.Rd] = symx.Const(0)
		}
	case isa.OpStore, isa.OpStoreG:
		a, ok := loadAddr()
		if !ok {
			return false
		}
		val := r[in.Rs1]
		if in.Op == isa.OpStore {
			val = r[in.Rs2]
		}
		s.mem[a] = val
	case isa.OpJmp:
		t.pc = in.Target
		return true
	case isa.OpCall:
		sp, ok := r[isa.SP].IsConst()
		if !ok {
			return false
		}
		s.mem[uint32(sp-1)] = symx.Const(int64(pc + 1))
		r[isa.SP] = symx.Const(sp - 1)
		t.pc = in.Target
		return true
	case isa.OpRet:
		sp, ok := r[isa.SP].IsConst()
		if !ok {
			return false
		}
		retE, has := s.mem[uint32(sp)]
		if !has {
			return false
		}
		ret, ok := retE.IsConst()
		if !ok || ret < 0 || ret >= int64(len(p.Code)) {
			return false
		}
		r[isa.SP] = symx.Const(sp + 1)
		t.pc = int(ret)
		return true
	case isa.OpAlloc:
		size, ok := r[in.Rs1].IsConst()
		if !ok || size <= 0 {
			return false
		}
		base := s.heapNext + prog.HeapRedzone
		r[in.Rd] = symx.Const(int64(base))
		s.heapNext = base + uint32(size)
		t.pc = pc + 1
	case isa.OpFree:
		// Bump allocator: frees do not affect forward synthesis state.
	case isa.OpSpawn:
		nt := &threadState{pc: in.Target, alive: true}
		for i := range nt.regs {
			nt.regs[i] = symx.Const(0)
		}
		nt.regs[0] = r[in.Rs1]
		nt.regs[isa.SP] = symx.Const(int64(p.Layout.StackTop(len(s.threads))))
		s.threads = append(s.threads, nt)
		t.pc = pc + 1
		return true
	case isa.OpYield:
		t.pc = pc + 1
		return true
	case isa.OpLock:
		a, aok := r[in.Rs1].IsConst()
		if !aok {
			return false
		}
		if _, held := s.locks[uint32(a)]; held {
			return false // contended in this interleaving: abandon
		}
		s.locks[uint32(a)] = 0
		t.pc = pc + 1
		return true
	case isa.OpUnlock:
		a, aok := r[in.Rs1].IsConst()
		if !aok {
			return false
		}
		delete(s.locks, uint32(a))
	case isa.OpInput:
		r[in.Rd] = pool.FreshExpr("input")
	case isa.OpHalt:
		t.alive = false
		return true
	default:
		return false
	}
	t.pc = pc + 1
	return true
}

package synth

import (
	"testing"

	"res/internal/asm"
	"res/internal/vm"
	"res/internal/workload"
)

func TestFindsShortExecution(t *testing.T) {
	src := `
.global g 1
func main:
    input r1, 0
    addi r2, r1, 3
    storeg r2, &g
    loadg r3, &g
    addi r4, r3, -10
    assert r4
    halt
`
	p := asm.MustAssemble(src)
	v, _ := vm.New(p, vm.Config{Inputs: map[int64][]int64{0: {7}}})
	d, _ := v.Run()
	if d == nil {
		t.Fatal("expected a dump")
	}
	res := Synthesize(p, d, Options{MaxStates: 1000, MatchGlobals: true})
	if !res.Found {
		t.Fatalf("forward synthesis failed on a trivial program: %+v", res)
	}
	if res.StatesExplored == 0 {
		t.Error("no states explored")
	}
}

func TestBranchForking(t *testing.T) {
	src := `
.global g 1
func main:
    input r1, 0
    br r1, a, b
a:
    const r2, 1
    storeg r2, &g
    jmp end
b:
    const r2, 2
    storeg r2, &g
    jmp end
end:
    const r3, 0
    assert r3
    halt
`
	p := asm.MustAssemble(src)
	v, _ := vm.New(p, vm.Config{Inputs: map[int64][]int64{0: {1}}})
	d, _ := v.Run()
	res := Synthesize(p, d, Options{MaxStates: 1000, MatchGlobals: true})
	if !res.Found {
		t.Fatalf("not found: %+v", res)
	}
	// The search must have forked (explored both branch directions).
	if res.StatesExplored < 3 {
		t.Errorf("expected forked exploration, states=%d", res.StatesExplored)
	}
}

func TestCostGrowsWithPrefixLength(t *testing.T) {
	// The E3 shape: the same bug behind benign prefixes of different
	// lengths. Forward synthesis effort must grow; with a modest state
	// budget the longer prefix must not be solvable.
	shortBug := workload.LongPrefix(30)
	longBug := workload.LongPrefix(600)

	dShort, _, err := shortBug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	dLong, _, err := longBug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}

	budget := Options{MaxStates: 3000, MatchGlobals: false}
	rShort := Synthesize(shortBug.Program(), dShort, budget)
	rLong := Synthesize(longBug.Program(), dLong, budget)

	if !rShort.Found {
		t.Fatalf("short prefix not synthesized: %+v", rShort)
	}
	if rLong.Found {
		t.Fatalf("long prefix synthesized within the same budget — no explosion? %+v", rLong)
	}
	if !rLong.GaveUp {
		t.Errorf("long prefix should exhaust the budget: %+v", rLong)
	}
	if rLong.StatesExplored <= rShort.StatesExplored {
		t.Errorf("exploration did not grow: short=%d long=%d", rShort.StatesExplored, rLong.StatesExplored)
	}
}

func TestGoalRequiresMatchingGlobals(t *testing.T) {
	// With MatchGlobals, a dump whose globals cannot be produced must not
	// be "found".
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    const r2, 0
    assert r2
    halt
`
	p := asm.MustAssemble(src)
	v, _ := vm.New(p, vm.Config{})
	d, _ := v.Run()
	addr, _ := p.GlobalAddr("g")
	d.Mem.Store(addr, 99) // impossible value
	res := Synthesize(p, d, Options{MaxStates: 200, MatchGlobals: true})
	if res.Found {
		t.Error("synthesized an execution for an impossible dump")
	}
}

package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStore(t *testing.T) {
	m := NewImage(64)
	if m.Size() != 64 {
		t.Fatalf("size = %d", m.Size())
	}
	m.Store(10, -7)
	if got := m.Load(10); got != -7 {
		t.Errorf("load = %d", got)
	}
	if !m.InRange(63) || m.InRange(64) {
		t.Error("InRange boundary wrong")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := NewImage(8)
	m.Store(1, 11)
	c := m.Clone()
	c.Store(1, 22)
	if m.Load(1) != 11 || c.Load(1) != 22 {
		t.Error("clone shares storage")
	}
}

func TestDiff(t *testing.T) {
	a := NewImage(8)
	b := NewImage(8)
	if d := a.Diff(b); len(d) != 0 {
		t.Errorf("identical images diff = %v", d)
	}
	b.Store(3, 1)
	b.Store(7, 2)
	if d := a.Diff(b); len(d) != 2 || d[0] != 3 || d[1] != 7 {
		t.Errorf("diff = %v", d)
	}
	// Size mismatch: trailing addresses differ.
	c := NewImage(10)
	if d := a.Diff(c); len(d) != 2 || d[0] != 8 || d[1] != 9 {
		t.Errorf("size-mismatch diff = %v", d)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		m := NewImage(uint32(rng.Intn(2000)))
		// Sparse writes, mimicking real images.
		for i := 0; i < rng.Intn(50); i++ {
			if m.Size() == 0 {
				break
			}
			m.Store(uint32(rng.Intn(int(m.Size()))), rng.Int63()-rng.Int63())
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("trial %d: WriteTo: %v", trial, err)
		}
		got, err := ReadImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadImage: %v", trial, err)
		}
		if d := m.Diff(got); len(d) != 0 {
			t.Fatalf("trial %d: round trip differs at %v", trial, d)
		}
	}
}

func TestSerializationCompressesZeros(t *testing.T) {
	m := NewImage(1 << 16)
	m.Store(100, 1)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 64 {
		t.Errorf("sparse 64K-word image serialized to %d bytes", buf.Len())
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})); err == nil {
		t.Error("unreasonable size accepted")
	}
	if _, err := ReadImage(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Bad run length.
	if _, err := ReadImage(bytes.NewReader([]byte{4, 0, 200})); err == nil {
		t.Error("overlong run accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(words []int64) bool {
		if len(words) > 4096 {
			words = words[:4096]
		}
		m := NewImage(uint32(len(words)))
		for i, w := range words {
			m.Store(uint32(i), w)
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadImage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		return len(m.Diff(got)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package mem provides the flat word-addressed memory image shared by the
// concrete VM, coredumps, and the symbolic snapshot machinery.
package mem

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Word is the machine word: 64-bit signed.
type Word = int64

// Addr is a word address.
type Addr = uint32

// Image is a flat memory of 64-bit words.
type Image struct {
	words []Word
}

// NewImage allocates a zeroed image of size words.
func NewImage(size uint32) *Image {
	return &Image{words: make([]Word, size)}
}

// Size returns the number of words in the image.
func (m *Image) Size() uint32 { return uint32(len(m.words)) }

// InRange reports whether addr is a valid address.
func (m *Image) InRange(addr Addr) bool { return int(addr) < len(m.words) }

// Load returns the word at addr. It panics on out-of-range access; callers
// (the VM) are expected to bounds-check and fault gracefully first.
func (m *Image) Load(addr Addr) Word { return m.words[addr] }

// Store writes the word at addr.
func (m *Image) Store(addr Addr, v Word) { m.words[addr] = v }

// Clone returns a deep copy of the image.
func (m *Image) Clone() *Image {
	w := make([]Word, len(m.words))
	copy(w, m.words)
	return &Image{words: w}
}

// Words exposes the backing slice (read-only by convention); used by
// serialization and diffing.
func (m *Image) Words() []Word { return m.words }

// Diff returns the addresses at which m and other differ. Images of
// different sizes differ at every address past the shorter one.
func (m *Image) Diff(other *Image) []Addr {
	var out []Addr
	n := len(m.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		if m.words[i] != other.words[i] {
			out = append(out, Addr(i))
		}
	}
	longer := len(m.words)
	if len(other.words) > longer {
		longer = len(other.words)
	}
	for i := n; i < longer; i++ {
		out = append(out, Addr(i))
	}
	return out
}

// WriteTo serializes the image. It uses a simple run-length encoding of
// zero words, since images are typically sparse.
func (m *Image) WriteTo(w io.Writer) (int64, error) {
	var total int64
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		k, err := w.Write(scratch[:n])
		total += int64(k)
		return err
	}
	if err := put(uint64(len(m.words))); err != nil {
		return total, err
	}
	i := 0
	for i < len(m.words) {
		if m.words[i] == 0 {
			j := i
			for j < len(m.words) && m.words[j] == 0 {
				j++
			}
			// 0 tag = zero run.
			if err := put(0); err != nil {
				return total, err
			}
			if err := put(uint64(j - i)); err != nil {
				return total, err
			}
			i = j
			continue
		}
		j := i
		for j < len(m.words) && m.words[j] != 0 {
			j++
		}
		// 1 tag = literal run.
		if err := put(1); err != nil {
			return total, err
		}
		if err := put(uint64(j - i)); err != nil {
			return total, err
		}
		for k := i; k < j; k++ {
			if err := put(uint64(m.words[k])); err != nil {
				return total, err
			}
		}
		i = j
	}
	return total, nil
}

// ReadImage deserializes an image written by WriteTo.
func ReadImage(r io.ByteReader) (*Image, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("mem: reading size: %w", err)
	}
	const maxWords = 1 << 28
	if size > maxWords {
		return nil, fmt.Errorf("mem: unreasonable image size %d", size)
	}
	img := NewImage(uint32(size))
	i := uint64(0)
	for i < size {
		tag, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("mem: reading run tag: %w", err)
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("mem: reading run length: %w", err)
		}
		if n == 0 || i+n > size {
			return nil, fmt.Errorf("mem: bad run length %d at word %d", n, i)
		}
		switch tag {
		case 0:
			i += n
		case 1:
			for k := uint64(0); k < n; k++ {
				v, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, fmt.Errorf("mem: reading word: %w", err)
				}
				img.words[i] = Word(v)
				i++
			}
		default:
			return nil, fmt.Errorf("mem: bad run tag %d", tag)
		}
	}
	return img, nil
}

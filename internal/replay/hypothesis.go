package replay

import (
	"fmt"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/vm"
)

// This file implements §3.3's "automate the testing of various hypotheses
// formulated during debugging": structured queries evaluated by replaying
// the synthesized suffix with instrumentation, such as
//
//   - "what was the program state when the program was executing at
//     program counter X?"  -> StateAt
//   - "was a thread T preempted before updating shared memory location
//     M?"                  -> PreemptedBeforeWrite
//   - "which thread last wrote M, and when?" -> LastWriter
//
// Because the suffix replays deterministically, every query has a single
// well-defined answer for this reconstruction.

// StateSample is a snapshot of one thread's state at a queried moment.
type StateSample struct {
	Step int // schedule position (block index within the suffix)
	Tid  int
	PC   int
	Regs [isa.NumRegs]int64
	// Mem holds the values of the queried addresses at that moment.
	Mem map[uint32]int64
}

// StateAt replays the suffix and captures the machine state every time
// execution reaches program counter pc (any thread), reporting the given
// memory addresses alongside the registers. It answers the paper's
// "what was the program state at pc X" hypothesis directly.
func StateAt(p *prog.Program, syn *core.Synthesized, pc int, addrs []uint32) ([]StateSample, error) {
	var samples []StateSample
	var v *vm.VM
	step := 0
	hooks := vm.Hooks{
		OnBlockStart: func(tid, block int) {},
	}
	v, err := New(p, syn, Config{Hooks: hooks})
	if err != nil {
		return nil, err
	}
	// Drive block by block; after each block, check whether the block
	// contained pc and sample state at block boundaries (the finest
	// deterministic grain of the schedule).
	for _, s := range syn.Suffix.Steps {
		t := v.Thread(s.Tid)
		if t == nil {
			return nil, fmt.Errorf("replay: schedule names dead thread %d", s.Tid)
		}
		block, err := p.BlockAt(t.PC)
		if err != nil {
			return nil, err
		}
		hit := block.Contains(pc)
		if hit {
			// Sample just before the block containing pc runs.
			samples = append(samples, sample(v, step, s.Tid, t.PC, addrs))
		}
		if f := v.ExecBlock(s.Tid); f != nil && f.Kind != coredump.FaultNone {
			if hit && f.PC >= pc {
				// The faulting block contained the pc; the pre-block
				// sample above already covers it.
				return samples, nil
			}
			break
		}
		step++
	}
	return samples, nil
}

func sample(v *vm.VM, step, tid, pc int, addrs []uint32) StateSample {
	s := StateSample{Step: step, Tid: tid, PC: pc, Mem: make(map[uint32]int64, len(addrs))}
	if t := v.Thread(tid); t != nil {
		s.Regs = t.Regs
	}
	for _, a := range addrs {
		if v.Mem.InRange(a) {
			s.Mem[a] = v.Mem.Load(a)
		}
	}
	return s
}

// WriteEvent is one observed write to a watched address.
type WriteEvent struct {
	Step int
	Tid  int
	PC   int
}

// LastWriter replays the suffix and reports every write to addr in order;
// the last entry answers "who last wrote M before the failure".
func LastWriter(p *prog.Program, syn *core.Synthesized, addr uint32) ([]WriteEvent, error) {
	var events []WriteEvent
	step := 0
	hooks := vm.Hooks{
		OnAccess: func(tid, pc int, a uint32, write bool) {
			if write && a == addr {
				events = append(events, WriteEvent{Step: step, Tid: tid, PC: pc})
			}
		},
	}
	v, err := New(p, syn, Config{Hooks: hooks})
	if err != nil {
		return nil, err
	}
	for _, s := range syn.Suffix.Steps {
		if f := v.ExecBlock(s.Tid); f != nil && f.Kind != coredump.FaultNone {
			break
		}
		step++
	}
	return events, nil
}

// PreemptedBeforeWrite answers §3.3's example hypothesis: was thread tid
// preempted (another thread scheduled) between its last read of addr and
// its next write to addr? True indicates the classic lost-update window
// actually occurred in this reconstruction.
func PreemptedBeforeWrite(p *prog.Program, syn *core.Synthesized, tid int, addr uint32) (bool, error) {
	type access struct {
		step  int
		tid   int
		write bool
	}
	var accesses []access
	step := 0
	hooks := vm.Hooks{
		OnAccess: func(t, pc int, a uint32, write bool) {
			if a == addr {
				accesses = append(accesses, access{step: step, tid: t, write: write})
			}
		},
	}
	v, err := New(p, syn, Config{Hooks: hooks})
	if err != nil {
		return false, err
	}
	schedule := syn.Suffix.Steps
	for _, s := range schedule {
		if f := v.ExecBlock(s.Tid); f != nil && f.Kind != coredump.FaultNone {
			break
		}
		step++
	}
	// Find a read(tid) ... write(tid) pair on addr with an intervening
	// step by another thread.
	for i, a := range accesses {
		if a.tid != tid || a.write {
			continue
		}
		for j := i + 1; j < len(accesses); j++ {
			b := accesses[j]
			if b.tid != tid || !b.write {
				continue
			}
			// Any schedule step between a.step and b.step by another
			// thread is a preemption of the read-modify-write window.
			for s := a.step + 1; s < b.step && s < len(schedule); s++ {
				if schedule[s].Tid != tid {
					return true, nil
				}
			}
			break // only the first write after the read closes the window
		}
	}
	return false, nil
}

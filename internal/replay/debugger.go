package replay

import (
	"fmt"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/vm"
)

// StopReason says why the debugger paused.
type StopReason uint8

const (
	StopNone StopReason = iota
	StopStep
	StopBreakpoint
	StopWatchpoint
	StopFault
	StopEnd // schedule exhausted without a fault (divergent suffix)
)

func (s StopReason) String() string {
	switch s {
	case StopStep:
		return "step"
	case StopBreakpoint:
		return "breakpoint"
	case StopWatchpoint:
		return "watchpoint"
	case StopFault:
		return "fault"
	case StopEnd:
		return "end"
	}
	return "none"
}

// Stop describes a pause.
type Stop struct {
	Reason StopReason
	Tid    int
	PC     int
	// Watch details, when Reason == StopWatchpoint.
	WatchAddr  uint32
	WatchWrite bool
	// Fault details, when Reason == StopFault.
	Fault coredump.Fault
}

func (s Stop) String() string {
	switch s.Reason {
	case StopWatchpoint:
		op := "read"
		if s.WatchWrite {
			op = "write"
		}
		return fmt.Sprintf("watchpoint: %s of mem[%d] at pc %d (t%d)", op, s.WatchAddr, s.PC, s.Tid)
	case StopFault:
		return "fault: " + s.Fault.String()
	default:
		return fmt.Sprintf("%v at pc %d (t%d)", s.Reason, s.PC, s.Tid)
	}
}

// Debugger drives a synthesized suffix like gdb drives a live process —
// except the "process" is RES's reconstruction, so it can also step
// backward: deterministic replay makes reverse execution a restart plus a
// shorter forward run, with no recording of the original execution
// (§3.3).
type Debugger struct {
	p        *prog.Program
	syn      *core.Synthesized
	original *coredump.Dump

	vm  *vm.VM
	pos int // scheduled blocks executed

	breakpoints map[int]bool
	watchpoints map[uint32]bool

	pendingWatch *Stop
	fault        *coredump.Fault
}

// NewDebugger prepares a debugger over the suffix; the machine sits at the
// suffix start (the inferred pre-image Mi).
func NewDebugger(p *prog.Program, syn *core.Synthesized, original *coredump.Dump) (*Debugger, error) {
	d := &Debugger{
		p:           p,
		syn:         syn,
		original:    original,
		breakpoints: make(map[int]bool),
		watchpoints: make(map[uint32]bool),
	}
	if err := d.Restart(); err != nil {
		return nil, err
	}
	return d, nil
}

// Restart rewinds to the suffix start.
func (d *Debugger) Restart() error {
	v, err := New(d.p, d.syn, Config{Hooks: vm.Hooks{OnAccess: d.onAccess}})
	if err != nil {
		return err
	}
	d.vm = v
	d.pos = 0
	d.pendingWatch = nil
	d.fault = nil
	return nil
}

func (d *Debugger) onAccess(tid, pc int, addr uint32, write bool) {
	if d.pendingWatch == nil && d.watchpoints[addr] {
		d.pendingWatch = &Stop{Reason: StopWatchpoint, Tid: tid, PC: pc, WatchAddr: addr, WatchWrite: write}
	}
}

// Break sets a breakpoint at an instruction index.
func (d *Debugger) Break(pc int) { d.breakpoints[pc] = true }

// ClearBreak removes a breakpoint.
func (d *Debugger) ClearBreak(pc int) { delete(d.breakpoints, pc) }

// Watch sets a watchpoint on a memory word.
func (d *Debugger) Watch(addr uint32) { d.watchpoints[addr] = true }

// ClearWatch removes a watchpoint.
func (d *Debugger) ClearWatch(addr uint32) { delete(d.watchpoints, addr) }

// Pos returns how many scheduled blocks have executed.
func (d *Debugger) Pos() int { return d.pos }

// Len returns the schedule length.
func (d *Debugger) Len() int { return len(d.syn.Suffix.Steps) }

// Done reports whether the suffix is fully replayed.
func (d *Debugger) Done() bool { return d.pos >= len(d.syn.Suffix.Steps) || d.fault != nil }

// Where reports the next scheduled thread and its pc.
func (d *Debugger) Where() (tid, pc int, fn string) {
	if d.pos >= len(d.syn.Suffix.Steps) {
		return -1, -1, ""
	}
	step := d.syn.Suffix.Steps[d.pos]
	t := d.vm.Thread(step.Tid)
	if t == nil {
		return step.Tid, -1, ""
	}
	if f, err := d.p.FuncAt(t.PC); err == nil {
		fn = f.Name
	}
	return step.Tid, t.PC, fn
}

// Regs returns a thread's register file.
func (d *Debugger) Regs(tid int) ([isa.NumRegs]int64, error) {
	t := d.vm.Thread(tid)
	if t == nil {
		return [isa.NumRegs]int64{}, fmt.Errorf("debugger: no thread %d", tid)
	}
	return t.Regs, nil
}

// ReadMem reads a memory word of the replayed machine.
func (d *Debugger) ReadMem(addr uint32) (int64, error) {
	if !d.vm.Mem.InRange(addr) {
		return 0, fmt.Errorf("debugger: address %d out of range", addr)
	}
	return d.vm.Mem.Load(addr), nil
}

// Step executes the next scheduled block and reports why it stopped.
func (d *Debugger) Step() Stop {
	if d.fault != nil {
		return Stop{Reason: StopFault, Fault: *d.fault}
	}
	if d.pos >= len(d.syn.Suffix.Steps) {
		return Stop{Reason: StopEnd}
	}
	step := d.syn.Suffix.Steps[d.pos]
	d.pendingWatch = nil
	f := d.vm.ExecBlock(step.Tid)
	d.pos++
	if f != nil && f.Kind != coredump.FaultNone {
		d.fault = f
		return Stop{Reason: StopFault, Tid: f.Thread, PC: f.PC, Fault: *f}
	}
	if d.pendingWatch != nil {
		s := *d.pendingWatch
		return s
	}
	t := d.vm.Thread(step.Tid)
	pc := -1
	if t != nil {
		pc = t.PC
	}
	return Stop{Reason: StopStep, Tid: step.Tid, PC: pc}
}

// Continue runs until a breakpoint block, watchpoint hit, fault, or the
// end of the suffix.
func (d *Debugger) Continue() Stop {
	for !d.Done() {
		// Breakpoint check: does the next scheduled block contain one?
		step := d.syn.Suffix.Steps[d.pos]
		if bp, at := d.blockHasBreakpoint(step.Block); bp {
			return Stop{Reason: StopBreakpoint, Tid: step.Tid, PC: at}
		}
		s := d.Step()
		if s.Reason == StopWatchpoint || s.Reason == StopFault {
			return s
		}
	}
	if d.fault != nil {
		return Stop{Reason: StopFault, Fault: *d.fault}
	}
	return Stop{Reason: StopEnd}
}

func (d *Debugger) blockHasBreakpoint(blockID int) (bool, int) {
	b := d.p.Block(blockID)
	for pc := b.Start; pc < b.End; pc++ {
		if d.breakpoints[pc] {
			return true, pc
		}
	}
	return false, -1
}

// StepOver is Continue past the pending breakpoint block (gdb's behaviour
// when continuing from a breakpoint).
func (d *Debugger) StepOver() Stop {
	if d.Done() {
		return d.Continue()
	}
	if s := d.Step(); s.Reason != StopStep {
		return s
	}
	return d.Continue()
}

// ReverseStep steps one scheduled block backward: deterministic replay
// makes this a restart plus pos-1 forward steps.
func (d *Debugger) ReverseStep() (Stop, error) {
	target := d.pos - 1
	if target < 0 {
		target = 0
	}
	if err := d.Restart(); err != nil {
		return Stop{}, err
	}
	return d.runTo(target)
}

// RunTo replays from the start up to (but not including) scheduled block
// index target.
func (d *Debugger) RunTo(target int) (Stop, error) {
	if target < d.pos {
		if err := d.Restart(); err != nil {
			return Stop{}, err
		}
	}
	return d.runTo(target)
}

func (d *Debugger) runTo(target int) (Stop, error) {
	last := Stop{Reason: StopStep}
	for d.pos < target && !d.Done() {
		last = d.Step()
		if last.Reason == StopFault {
			return last, nil
		}
	}
	if d.pos >= len(d.syn.Suffix.Steps) {
		last = Stop{Reason: StopEnd}
	}
	return last, nil
}

// RunToFault replays the remaining schedule and returns the fault stop —
// "to the developer it looks as if the program deterministically runs into
// the same failure".
func (d *Debugger) RunToFault() Stop {
	for !d.Done() {
		if s := d.Step(); s.Reason == StopFault {
			return s
		}
	}
	if d.fault != nil {
		return Stop{Reason: StopFault, Fault: *d.fault}
	}
	return Stop{Reason: StopEnd}
}

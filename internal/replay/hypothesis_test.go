package replay_test

import (
	"testing"

	"res/internal/core"
	"res/internal/replay"
	"res/internal/vm"
	"res/internal/workload"
)

func TestStateAtSamplesLoop(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	_ = d
	addr, _ := p.GlobalAddr("g")
	// pc 2 is the storeg inside the loop body; its block runs once per
	// reconstructed iteration.
	samples, err := replay.StateAt(p, syn, 2, []uint32{addr})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples at the loop body pc")
	}
	// g grows by 2 per iteration; the samples must be monotonically
	// increasing snapshots of that history.
	last := int64(-1)
	for _, s := range samples {
		v := s.Mem[addr]
		if v < last {
			t.Errorf("state history not monotone: %d after %d", v, last)
		}
		last = v
		if s.Tid != 0 {
			t.Errorf("unexpected thread %d", s.Tid)
		}
	}
}

func TestLastWriter(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	_ = d
	addr, _ := p.GlobalAddr("g")
	events, err := replay.LastWriter(p, syn, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no writes observed")
	}
	// All writes come from the loop's storeg (pc 3 in loopCrashSrc).
	for _, e := range events {
		if e.Tid != 0 {
			t.Errorf("writer tid %d", e.Tid)
		}
		if p.Code[e.PC].Op.String() != "storeg" {
			t.Errorf("writer instruction %s", p.Code[e.PC].String())
		}
	}
}

func TestPreemptedBeforeWriteOnRace(t *testing.T) {
	// On the lost-update bug, the hypothesis "was the incrementing thread
	// preempted between reading and writing the counter" must hold in the
	// reconstruction that explains the failure.
	bug := workload.RaceCounter()
	p := bug.Program()
	d, _, err := bug.FindFailure(50)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(p, core.Options{MaxDepth: 16, MaxNodes: 4000})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	caddr, _ := p.GlobalAddr("c")
	preempted := false
	for _, n := range rep.Suffixes {
		syn, err := eng.Concretize(n, d)
		if err != nil {
			continue
		}
		rr, err := replay.Run(p, syn, d, replay.Config{})
		if err != nil || !rr.Matches {
			continue
		}
		for tid := 0; tid <= 1; tid++ {
			got, err := replay.PreemptedBeforeWrite(p, syn, tid, caddr)
			if err != nil {
				t.Fatal(err)
			}
			if got {
				preempted = true
			}
		}
	}
	if !preempted {
		t.Error("no faithful suffix exhibits the read-modify-write preemption")
	}
}

func TestPreemptedBeforeWriteNegative(t *testing.T) {
	// Single-threaded program: no preemption can exist.
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	_ = d
	addr, _ := p.GlobalAddr("g")
	got, err := replay.PreemptedBeforeWrite(p, syn, 0, addr)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("phantom preemption in a single-threaded suffix")
	}
}

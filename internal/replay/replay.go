// Package replay deterministically re-executes a synthesized suffix: it
// instantiates RES's inferred pre-image Mi in a fresh VM, forces the
// synthesized thread schedule and external inputs, and verifies that the
// execution runs into exactly the failure captured by the original
// coredump. This is the paper's "special environment slipped underneath
// the debugger": to the developer it looks as if the program
// deterministically fails the same way, over and over again.
package replay

import (
	"fmt"

	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/vm"
)

// Divergence describes how a replay failed to reproduce the coredump.
type Divergence struct {
	Step   int // index into the suffix schedule, -1 for end-state mismatch
	Reason string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("replay diverged at step %d: %s", d.Step, d.Reason)
}

// Result reports a replay.
type Result struct {
	// Matches is true when the replay reproduced the original fault and
	// the final memory and register state equals the coredump.
	Matches bool
	// Fault is the fault the replay ran into (zero if none).
	Fault coredump.Fault
	// MemDiff lists addresses where replayed memory differs from the dump.
	MemDiff []uint32
	// Divergence is non-nil when the forced schedule could not be followed.
	Divergence *Divergence
	// VM is the machine after the replay, for state inspection (the
	// debugger wraps it).
	VM *vm.VM
}

// Config tunes the replay.
type Config struct {
	// CheckHeap turns on allocator checking during replay, which makes
	// silent-in-production heap corruption fault at the corrupting access
	// (how RES pinpoints Figure 1's overflow).
	CheckHeap bool
	// Hooks are passed through to the VM (root-cause detectors use them).
	Hooks vm.Hooks
}

// New builds the replay VM for a synthesized suffix without running it;
// the debugger drives it step by step.
func New(p *prog.Program, syn *core.Synthesized, cfg Config) (*vm.VM, error) {
	st := vm.State{
		Mem:      syn.PreMem,
		Locks:    syn.PreLocks,
		Heap:     syn.PreHeap,
		HeapNext: syn.PreHeapNext,
	}
	for tid, regs := range syn.PreRegs {
		st.Threads = append(st.Threads, vm.Thread{
			ID:    tid,
			Regs:  regs,
			PC:    syn.Suffix.StartPCs[tid],
			State: syn.PreStates[tid],
		})
	}
	inputs := make(map[int64][]int64)
	for _, in := range syn.Suffix.Inputs {
		inputs[in.Channel] = append(inputs[in.Channel], in.Value)
	}
	vcfg := vm.Config{
		Inputs:    inputs,
		CheckHeap: cfg.CheckHeap,
		Hooks:     cfg.Hooks,
	}
	return vm.NewFromState(p, vcfg, st)
}

// Run replays the suffix against the original dump.
func Run(p *prog.Program, syn *core.Synthesized, original *coredump.Dump, cfg Config) (*Result, error) {
	v, err := New(p, syn, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{VM: v}
	steps := syn.Suffix.Steps
	for i, step := range steps {
		t := v.Thread(step.Tid)
		if t == nil {
			res.Divergence = &Divergence{Step: i, Reason: fmt.Sprintf("thread %d does not exist", step.Tid)}
			return res, nil
		}
		block, err := p.BlockAt(t.PC)
		if err != nil {
			res.Divergence = &Divergence{Step: i, Reason: err.Error()}
			return res, nil
		}
		if block.ID != step.Block {
			res.Divergence = &Divergence{Step: i, Reason: fmt.Sprintf("thread %d at block %d, schedule says %d", step.Tid, block.ID, step.Block)}
			return res, nil
		}
		f := v.ExecBlock(step.Tid)
		if f == nil {
			continue
		}
		if f.Kind == coredump.FaultNone {
			res.Divergence = &Divergence{Step: i, Reason: "forced thread blocked on a lock"}
			return res, nil
		}
		res.Fault = *f
		if i != len(steps)-1 {
			// Early faults under CheckHeap are the point of checked
			// replay: report the fault, not a divergence.
			if cfg.CheckHeap && (f.Kind == coredump.FaultHeapOOB || f.Kind == coredump.FaultUseAfterFree) {
				return res, nil
			}
			res.Divergence = &Divergence{Step: i, Reason: fmt.Sprintf("premature fault %v", f)}
			return res, nil
		}
		res.Matches = matches(v, f, original)
		res.MemDiff = v.Mem.Diff(original.Mem)
		return res, nil
	}
	// No fault surfaced. For global faults (deadlock) verify the end state
	// instead.
	if original.Fault.Thread < 0 {
		res.Fault = original.Fault
		res.Matches = len(v.Mem.Diff(original.Mem)) == 0
		res.MemDiff = v.Mem.Diff(original.Mem)
		return res, nil
	}
	res.Divergence = &Divergence{Step: -1, Reason: "schedule completed without reproducing the fault"}
	return res, nil
}

// matches compares the replayed failure state against the original dump:
// fault descriptor, memory, and per-thread registers.
func matches(v *vm.VM, f *coredump.Fault, original *coredump.Dump) bool {
	of := original.Fault
	if f.Kind != of.Kind || f.PC != of.PC || f.Thread != of.Thread || f.Addr != of.Addr {
		return false
	}
	if len(v.Mem.Diff(original.Mem)) != 0 {
		return false
	}
	for _, ot := range original.Threads {
		t := v.Thread(ot.ID)
		if t == nil {
			return false
		}
		for r := 0; r < isa.NumRegs; r++ {
			if t.Regs[r] != ot.Regs[r] {
				return false
			}
		}
		if t.PC != ot.PC {
			return false
		}
	}
	return true
}

package replay_test

import (
	"testing"

	"res/internal/asm"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/replay"
	"res/internal/vm"
	"res/internal/workload"
)

// synthesize runs a program to failure and synthesizes its deepest suffix.
func synthesize(t *testing.T, src string, cfg vm.Config, maxDepth int) (*prog.Program, *coredump.Dump, *core.Synthesized) {
	t.Helper()
	p := asm.MustAssemble(src)
	v, err := vm.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Run()
	if err != nil || d == nil {
		t.Fatalf("no dump: %v %v", d, err)
	}
	eng := core.New(p, core.Options{MaxDepth: maxDepth})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suffixes) == 0 {
		t.Fatalf("no suffixes; stats %+v", rep.Stats)
	}
	var deepest *core.Node
	for _, n := range rep.Suffixes {
		if deepest == nil || n.Depth > deepest.Depth {
			deepest = n
		}
	}
	syn, err := eng.Concretize(deepest, d)
	if err != nil {
		t.Fatal(err)
	}
	return p, d, syn
}

const loopCrashSrc = `
.global g 1
func main:
    const r1, 3
loop:
    loadg r2, &g
    addi r2, r2, 2
    storeg r2, &g
    addi r1, r1, -1
    br r1, loop, done
done:
    loadg r3, &g
    addi r4, r3, -6
    assert r4
    halt
`

func TestReplayReproducesDump(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Divergence != nil {
		t.Fatalf("divergence: %v", rr.Divergence)
	}
	if !rr.Matches {
		t.Fatalf("mismatch: fault %v vs %v, memdiff %v", rr.Fault, d.Fault, rr.MemDiff)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	for i := 0; i < 3; i++ {
		rr, err := replay.Run(p, syn, d, replay.Config{})
		if err != nil || !rr.Matches {
			t.Fatalf("replay %d: err=%v matches=%v", i, err, rr.Matches)
		}
	}
}

func TestReplayDetectsCorruptedPreImage(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	// Corrupt the pre-image: the replay must diverge or mismatch, never
	// silently "match".
	addr, _ := p.GlobalAddr("g")
	syn.PreMem.Store(addr, 12345)
	rr, err := replay.Run(p, syn, d, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Matches {
		t.Fatal("corrupted pre-image still matches")
	}
}

func TestDebuggerStepAndInspect(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	if dbg.Pos() != 0 || dbg.Done() {
		t.Fatalf("fresh debugger at pos %d done=%v", dbg.Pos(), dbg.Done())
	}
	s := dbg.Step()
	if s.Reason != replay.StopStep && s.Reason != replay.StopFault {
		t.Fatalf("first step: %v", s)
	}
	if dbg.Pos() != 1 {
		t.Errorf("pos = %d, want 1", dbg.Pos())
	}
	if _, err := dbg.Regs(0); err != nil {
		t.Errorf("Regs: %v", err)
	}
	addr, _ := p.GlobalAddr("g")
	if _, err := dbg.ReadMem(addr); err != nil {
		t.Errorf("ReadMem: %v", err)
	}
}

func TestDebuggerRunToFault(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	s := dbg.RunToFault()
	if s.Reason != replay.StopFault {
		t.Fatalf("stop = %v, want fault", s)
	}
	if s.Fault.Kind != d.Fault.Kind || s.Fault.PC != d.Fault.PC {
		t.Errorf("fault %v, want %v", s.Fault, d.Fault)
	}
}

func TestDebuggerWatchpoint(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	if len(syn.Suffix.Steps) < 2 {
		t.Skip("suffix too short to exercise a watchpoint")
	}
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := p.GlobalAddr("g")
	dbg.Watch(addr)
	s := dbg.Continue()
	if s.Reason != replay.StopWatchpoint {
		t.Fatalf("stop = %v, want watchpoint", s)
	}
	if s.WatchAddr != addr {
		t.Errorf("watch addr %d, want %d", s.WatchAddr, addr)
	}
}

func TestDebuggerBreakpoint(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	// Break on the assert instruction.
	dbg.Break(d.Fault.PC)
	s := dbg.Continue()
	if s.Reason != replay.StopBreakpoint {
		t.Fatalf("stop = %v, want breakpoint", s)
	}
	// Continuing from the breakpoint reaches the fault.
	s = dbg.StepOver()
	if s.Reason != replay.StopFault {
		t.Fatalf("after breakpoint: %v, want fault", s)
	}
}

func TestDebuggerReverseStep(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	if len(syn.Suffix.Steps) < 3 {
		t.Skip("suffix too short")
	}
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := p.GlobalAddr("g")

	// Record g's value at every position going forward.
	vals := []int64{}
	for !dbg.Done() {
		v, _ := dbg.ReadMem(addr)
		vals = append(vals, v)
		dbg.Step()
	}
	// Step backward and verify the time-travel view matches.
	for pos := dbg.Pos() - 1; pos > 0; pos-- {
		if _, err := dbg.ReverseStep(); err != nil {
			t.Fatalf("ReverseStep: %v", err)
		}
		if dbg.Pos() != pos {
			t.Fatalf("pos = %d, want %d", dbg.Pos(), pos)
		}
		v, _ := dbg.ReadMem(addr)
		if v != vals[pos] {
			t.Errorf("reverse to %d: g = %d, want %d", pos, v, vals[pos])
		}
	}
}

func TestDebuggerRestart(t *testing.T) {
	p, d, syn := synthesize(t, loopCrashSrc, vm.Config{}, 8)
	dbg, err := replay.NewDebugger(p, syn, d)
	if err != nil {
		t.Fatal(err)
	}
	dbg.RunToFault()
	if err := dbg.Restart(); err != nil {
		t.Fatal(err)
	}
	if dbg.Pos() != 0 || dbg.Done() {
		t.Errorf("after restart pos=%d done=%v", dbg.Pos(), dbg.Done())
	}
	// Deterministic again.
	if s := dbg.RunToFault(); s.Reason != replay.StopFault {
		t.Errorf("second run: %v", s)
	}
}

func TestReplayConcurrencySuffix(t *testing.T) {
	// A multithreaded suffix replays to the same dump: thread schedule
	// reconstruction is part of the contract.
	bug := workload.AtomViolation()
	p := bug.Program()
	d, _, err := bug.FindFailure(50)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New(p, core.Options{MaxDepth: 10, MaxNodes: 2000})
	rep, err := eng.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	matched := false
	for _, n := range rep.Suffixes {
		syn, err := eng.Concretize(n, d)
		if err != nil {
			continue
		}
		rr, err := replay.Run(p, syn, d, replay.Config{})
		if err == nil && rr.Matches {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("no suffix replayed to the dump; %d suffixes, stats %+v", len(rep.Suffixes), rep.Stats)
	}
}

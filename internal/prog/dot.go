package prog

import (
	"fmt"
	"strings"

	"res/internal/isa"
)

// Dot renders the program's control-flow graph in Graphviz dot format:
// one cluster per function, one node per basic block (labelled with its
// instructions), solid edges for intra-procedural flow, dashed edges for
// calls and spawns, dotted edges for returns. Useful when inspecting why
// RES enumerated a particular set of backward candidates.
func (p *Program) Dot() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n")
	for fi, fn := range p.Functions {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", fi, fn.Name)
		for _, blk := range fn.Blocks {
			var label strings.Builder
			fmt.Fprintf(&label, "b%d\\n", blk.ID)
			for pc := blk.Start; pc < blk.End; pc++ {
				fmt.Fprintf(&label, "%d: %s\\l", pc, escapeDot(p.Code[pc].String()))
			}
			fmt.Fprintf(&b, "    b%d [label=\"%s\"];\n", blk.ID, label.String())
		}
		b.WriteString("  }\n")
	}
	for _, blk := range p.blocks {
		for _, succ := range blk.Succs {
			fmt.Fprintf(&b, "  b%d -> b%d;\n", blk.ID, succ)
		}
		term := blk.Terminator(p.Code)
		switch term.Op {
		case isa.OpCall:
			if callee, err := p.BlockAt(term.Target); err == nil {
				fmt.Fprintf(&b, "  b%d -> b%d [style=dashed, label=\"call\"];\n", blk.ID, callee.ID)
			}
		case isa.OpSpawn:
			if entry, err := p.BlockAt(term.Target); err == nil {
				fmt.Fprintf(&b, "  b%d -> b%d [style=dashed, label=\"spawn\"];\n", blk.ID, entry.ID)
			}
		case isa.OpRet:
			// Return edges to every caller's continuation.
			for _, site := range p.callSites[blk.Func.Entry] {
				caller := p.blocks[site]
				if cont, err := p.BlockAt(caller.End); err == nil {
					fmt.Fprintf(&b, "  b%d -> b%d [style=dotted, label=\"ret\"];\n", blk.ID, cont.ID)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

package prog

import (
	"strings"
	"testing"

	"res/internal/isa"
)

// buildSimple constructs a two-function program by hand:
//
//	main:  0 const r1,2 ; 1 br r1 @3 @2 ; 2 halt ; 3 call f(@5) ; 4 halt
//	f:     5 lock r1 ; 6 ret
func buildSimple(t *testing.T) *Program {
	t.Helper()
	code := []isa.Instr{
		{Op: isa.OpConst, Rd: 1, Imm: 2},
		{Op: isa.OpBr, Rs1: 1, Target: 3, Target2: 2},
		{Op: isa.OpHalt},
		{Op: isa.OpCall, Target: 5},
		{Op: isa.OpHalt},
		{Op: isa.OpLock, Rs1: 1},
		{Op: isa.OpRet},
	}
	p, err := Build(code, map[string]int{"main": 0, "f": 5}, nil, DefaultLayout(0))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLayoutValidate(t *testing.T) {
	l := DefaultLayout(10)
	if err := l.Validate(); err != nil {
		t.Errorf("default layout invalid: %v", err)
	}
	bad := l
	bad.GlobalBase = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero guard page accepted")
	}
	bad = l
	bad.MaxThreads = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	bad = l
	bad.HeapBase = 5
	if err := bad.Validate(); err == nil {
		t.Error("heap below globals accepted")
	}
}

func TestStackRegions(t *testing.T) {
	l := DefaultLayout(0)
	if l.StackTop(0) != l.MemSize {
		t.Error("thread 0 stack top")
	}
	for tid := 0; tid < l.MaxThreads-1; tid++ {
		if l.StackFloor(tid) != l.StackTop(tid+1) {
			t.Errorf("stack regions not adjacent at %d", tid)
		}
	}
	if l.HeapLimit() != l.StackFloor(l.MaxThreads-1) {
		t.Error("heap limit should touch the last stack floor")
	}
}

func TestBlocksAndEdges(t *testing.T) {
	p := buildSimple(t)
	// Blocks: [0..1], [2], [3], [4], [5], [6]
	if p.NumBlocks() != 6 {
		t.Fatalf("blocks = %d\n%s", p.NumBlocks(), p.Disassemble())
	}
	b0, _ := p.BlockAt(0)
	if b0.Start != 0 || b0.End != 2 {
		t.Errorf("b0 = [%d,%d)", b0.Start, b0.End)
	}
	if len(b0.Succs) != 2 {
		t.Errorf("b0 succs = %v", b0.Succs)
	}
	// lock at 5 is its own block (leader by LOCK rule).
	b5, _ := p.BlockAt(5)
	if b5.Start != 5 || b5.End != 6 {
		t.Errorf("lock block = [%d,%d)", b5.Start, b5.End)
	}
}

func TestFuncLookup(t *testing.T) {
	p := buildSimple(t)
	f, err := p.FuncAt(6)
	if err != nil || f.Name != "f" {
		t.Errorf("FuncAt(6) = %v, %v", f, err)
	}
	m, err := p.FuncAt(0)
	if err != nil || m.Name != "main" {
		t.Errorf("FuncAt(0) = %v, %v", m, err)
	}
	if _, err := p.FuncAt(-1); err == nil {
		t.Error("FuncAt(-1) should fail")
	}
	entry, err := p.Entry()
	if err != nil || entry != 0 {
		t.Errorf("Entry = %d, %v", entry, err)
	}
}

func TestCallRetEdges(t *testing.T) {
	p := buildSimple(t)
	f := p.FuncByName["f"]
	if len(f.RetBlocks) != 1 {
		t.Fatalf("RetBlocks = %v", f.RetBlocks)
	}
	sites := p.CallSites(f.Entry)
	if len(sites) != 1 {
		t.Fatalf("CallSites = %v", sites)
	}
	// ExecPreds of the block after the call (pc 4) is f's ret block.
	after, _ := p.BlockAt(4)
	preds := p.ExecPreds(after)
	if len(preds) != 1 || preds[0] != f.RetBlocks[0] {
		t.Errorf("ExecPreds(after call) = %v", preds)
	}
	// ExecPreds of f's entry (the lock block) is the call-site block.
	fentry, _ := p.BlockAt(5)
	preds = p.ExecPreds(fentry)
	if len(preds) != 1 || preds[0] != sites[0] {
		t.Errorf("ExecPreds(f entry) = %v", preds)
	}
}

func TestBuildRejections(t *testing.T) {
	mk := func(code []isa.Instr, funcs map[string]int) error {
		_, err := Build(code, funcs, nil, DefaultLayout(0))
		return err
	}
	if err := mk(nil, nil); err == nil {
		t.Error("empty program accepted")
	}
	if err := mk([]isa.Instr{{Op: isa.OpJmp, Target: 99}, {Op: isa.OpHalt}}, map[string]int{"main": 0}); err == nil {
		t.Error("out-of-range jmp accepted")
	}
	// A recursive call followed by halt is a perfectly valid program.
	if err := mk([]isa.Instr{{Op: isa.OpCall, Target: 0}, {Op: isa.OpHalt}}, map[string]int{"main": 0}); err != nil {
		t.Errorf("valid recursive program rejected: %v", err)
	}
	// A function ending in a falling-through terminator is not.
	if err := mk([]isa.Instr{{Op: isa.OpCall, Target: 0}}, map[string]int{"main": 0}); err == nil || !strings.Contains(err.Error(), "falling-through") {
		t.Errorf("trailing call accepted: %v", err)
	}
	if err := mk([]isa.Instr{{Op: isa.OpConst, Rd: 1}}, map[string]int{"main": 0}); err == nil {
		t.Error("fall-off-end accepted")
	}
	if err := mk([]isa.Instr{{Op: isa.OpCall, Target: 1}, {Op: isa.OpHalt}}, map[string]int{"main": 0}); err == nil {
		t.Error("call to non-entry accepted")
	}
	if err := mk([]isa.Instr{{Op: isa.OpHalt}}, map[string]int{"main": 0, "ghost": 0}); err == nil {
		t.Error("empty function accepted")
	}
}

func TestGlobalAddr(t *testing.T) {
	code := []isa.Instr{{Op: isa.OpHalt}}
	globals := []Global{{Name: "g", Addr: 16, Size: 2, Init: []int64{5}}}
	p, err := Build(code, map[string]int{"main": 0}, globals, DefaultLayout(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.GlobalAddr("g")
	if err != nil || a != 16 {
		t.Errorf("GlobalAddr = %d, %v", a, err)
	}
	if _, err := p.GlobalAddr("nope"); err == nil {
		t.Error("unknown global accepted")
	}
}

package prog

import (
	"strings"
	"testing"

	"res/internal/isa"
)

func TestDotExport(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.OpConst, Rd: 1, Imm: 1},
		{Op: isa.OpBr, Rs1: 1, Target: 2, Target2: 3},
		{Op: isa.OpCall, Target: 5},
		{Op: isa.OpHalt},
		{Op: isa.OpHalt},
		{Op: isa.OpRet},
	}
	p, err := Build(code, map[string]int{"main": 0, "f": 5}, nil, DefaultLayout(0))
	if err != nil {
		t.Fatal(err)
	}
	dot := p.Dot()
	for _, want := range []string{
		"digraph cfg", "subgraph cluster_0", `label="main"`, `label="f"`,
		"style=dashed, label=\"call\"", "style=dotted, label=\"ret\"",
		"b0 -> b1", "b0 -> b2",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q\n%s", want, dot)
		}
	}
	if strings.Count(dot, "}")-strings.Count(dot, "{") != 0 {
		t.Error("unbalanced braces")
	}
}

func TestDotEscaping(t *testing.T) {
	if escapeDot(`a"b\c`) != `a\"b\\c` {
		t.Errorf("escape = %q", escapeDot(`a"b\c`))
	}
}

// Package prog models a loaded program: the instruction stream, its
// functions, its global data layout, and the control-flow graph that RES
// navigates backward. It is the shared static view used by the concrete
// VM, the symbolic executor, and the baseline analyses.
package prog

import (
	"fmt"
	"sort"

	"res/internal/isa"
)

// Layout describes the word-addressed memory layout of a program instance.
// Addresses are word indices.
//
//	[0, GlobalBase)          null guard page: every access faults
//	[GlobalBase, HeapBase)   globals, assigned by the assembler
//	[HeapBase, stack floor)  heap, grows upward
//	top of memory            per-thread stacks, thread i gets the i-th
//	                         StackSize-word region from the top, growing down
type Layout struct {
	MemSize    uint32 // total words of memory
	GlobalBase uint32 // first global address (size of the null guard page)
	HeapBase   uint32 // first heap address
	StackSize  uint32 // words of stack per thread
	MaxThreads int    // maximum number of threads (stack regions reserved)
}

// HeapRedzone is the number of guard words the bump allocator leaves
// between consecutive objects. Overflows into a redzone are detectable in
// checked mode; in production they silently corrupt nothing until they
// cross into the next object.
const HeapRedzone = 1

// DefaultLayout returns the layout used when the assembler is not given an
// explicit one. globalWords is the number of words of globals to reserve.
func DefaultLayout(globalWords uint32) Layout {
	return Layout{
		MemSize:    1 << 16,
		GlobalBase: 16,
		HeapBase:   16 + globalWords,
		StackSize:  1024,
		MaxThreads: 8,
	}
}

// StackTop returns the initial stack pointer for thread tid: one past the
// lowest address of the thread's region is its floor; SP starts at the
// region's top (exclusive upper bound), and pushes pre-decrement.
func (l Layout) StackTop(tid int) uint32 {
	return l.MemSize - uint32(tid)*l.StackSize
}

// StackFloor returns the lowest valid stack address for thread tid.
func (l Layout) StackFloor(tid int) uint32 {
	return l.MemSize - uint32(tid+1)*l.StackSize
}

// HeapLimit returns the first address past the heap region.
func (l Layout) HeapLimit() uint32 {
	return l.MemSize - uint32(l.MaxThreads)*l.StackSize
}

// Validate checks internal consistency of the layout.
func (l Layout) Validate() error {
	if l.GlobalBase == 0 {
		return fmt.Errorf("prog: layout must reserve a null guard page")
	}
	if l.HeapBase < l.GlobalBase {
		return fmt.Errorf("prog: heap base %d below global base %d", l.HeapBase, l.GlobalBase)
	}
	if l.MaxThreads < 1 {
		return fmt.Errorf("prog: MaxThreads must be >= 1")
	}
	if l.HeapLimit() <= l.HeapBase || l.HeapLimit() > l.MemSize {
		return fmt.Errorf("prog: no room for heap (limit %d, base %d)", l.HeapLimit(), l.HeapBase)
	}
	return nil
}

// Global describes one named global variable.
type Global struct {
	Name string
	Addr uint32
	Size uint32  // words
	Init []int64 // initial values; len <= Size, rest zero
}

// Block is one basic block: instructions [Start, End). The last instruction
// is either a terminator or the block falls through to the next block (the
// next leader). Succs/Preds are *intra-procedural* edges by block ID;
// inter-procedural structure (calls, returns, spawns) is kept on Program.
type Block struct {
	ID    int
	Func  *Function
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator(code []isa.Instr) *isa.Instr { return &code[b.End-1] }

// Contains reports whether the instruction index pc lies in the block.
func (b *Block) Contains(pc int) bool { return pc >= b.Start && pc < b.End }

// Function is a contiguous range of instructions with a single entry.
type Function struct {
	Name      string
	Entry     int // entry instruction index
	EndPC     int // one past the last instruction of the function
	Blocks    []*Block
	RetBlocks []int // IDs of blocks whose terminator is RET
}

// Program is a fully resolved program image.
type Program struct {
	Code         []isa.Instr
	Functions    []*Function
	FuncByName   map[string]*Function
	Globals      []Global
	GlobalByName map[string]*Global
	Layout       Layout

	blocks     []*Block      // all blocks, indexed by ID
	blockOf    []int         // instruction index -> block ID
	funcOf     []int         // instruction index -> function index
	callSites  map[int][]int // function entry pc -> block IDs ending in CALL to it
	spawnSites map[int][]int // function entry pc -> block IDs ending in SPAWN of it
}

// Entry returns the entry pc of the main function.
func (p *Program) Entry() (int, error) {
	f, ok := p.FuncByName["main"]
	if !ok {
		return 0, fmt.Errorf("prog: no main function")
	}
	return f.Entry, nil
}

// Block returns the basic block with the given ID.
func (p *Program) Block(id int) *Block { return p.blocks[id] }

// NumBlocks returns the total number of basic blocks.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// BlockAt returns the block containing instruction index pc.
func (p *Program) BlockAt(pc int) (*Block, error) {
	if pc < 0 || pc >= len(p.Code) {
		return nil, fmt.Errorf("prog: pc %d out of range [0,%d)", pc, len(p.Code))
	}
	return p.blocks[p.blockOf[pc]], nil
}

// FuncAt returns the function containing instruction index pc.
func (p *Program) FuncAt(pc int) (*Function, error) {
	if pc < 0 || pc >= len(p.Code) {
		return nil, fmt.Errorf("prog: pc %d out of range", pc)
	}
	return p.Functions[p.funcOf[pc]], nil
}

// CallSites returns the IDs of blocks whose terminator is a CALL to the
// function whose entry pc is entry.
func (p *Program) CallSites(entry int) []int { return p.callSites[entry] }

// SpawnSites returns the IDs of blocks whose terminator is a SPAWN of the
// function whose entry pc is entry.
func (p *Program) SpawnSites(entry int) []int { return p.spawnSites[entry] }

// ExecPreds returns the IDs of all blocks that can immediately precede
// block b in a single thread's execution, following the paper's backward
// CFG navigation:
//
//   - an intra-procedural predecessor whose terminator is not a CALL
//     precedes b directly;
//   - an intra-procedural predecessor ending in CALL means the thread
//     returned into b, so the real predecessors are the callee's RET blocks;
//   - if b is a function entry block, the predecessors are the CALL-site
//     blocks and SPAWN-site blocks of the function (for a spawned thread,
//     the SPAWN block executed by the parent precedes the entry block).
func (p *Program) ExecPreds(b *Block) []int {
	var out []int
	for _, pid := range b.Preds {
		pred := p.blocks[pid]
		term := pred.Terminator(p.Code)
		if term.Op == isa.OpCall {
			callee, err := p.FuncAt(term.Target)
			if err == nil {
				out = append(out, callee.RetBlocks...)
			}
			continue
		}
		out = append(out, pid)
	}
	if b.Start == b.Func.Entry {
		out = append(out, p.callSites[b.Func.Entry]...)
		out = append(out, p.spawnSites[b.Func.Entry]...)
	}
	sort.Ints(out)
	// Deduplicate.
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

// Build constructs a Program from a resolved instruction stream, function
// table (name -> entry pc, functions must be contiguous and sorted by
// entry), globals, and layout. It validates control-flow targets and
// computes blocks, CFG edges and call/spawn site maps.
func Build(code []isa.Instr, funcs map[string]int, globals []Global, layout Layout) (*Program, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if len(code) == 0 {
		return nil, fmt.Errorf("prog: empty program")
	}
	for i := range code {
		if err := code[i].Validate(); err != nil {
			return nil, fmt.Errorf("prog: instruction %d: %w", i, err)
		}
	}
	// Validate targets.
	inRange := func(t int) bool { return t >= 0 && t < len(code) }
	funcEntries := make(map[int]bool, len(funcs))
	for _, e := range funcs {
		if !inRange(e) {
			return nil, fmt.Errorf("prog: function entry %d out of range", e)
		}
		funcEntries[e] = true
	}
	for i := range code {
		in := &code[i]
		switch in.Op {
		case isa.OpJmp:
			if !inRange(in.Target) {
				return nil, fmt.Errorf("prog: instr %d: jmp target %d out of range", i, in.Target)
			}
		case isa.OpBr:
			if !inRange(in.Target) || !inRange(in.Target2) {
				return nil, fmt.Errorf("prog: instr %d: br targets out of range", i)
			}
		case isa.OpCall, isa.OpSpawn:
			if !inRange(in.Target) {
				return nil, fmt.Errorf("prog: instr %d: %s target out of range", i, in.Op)
			}
			if !funcEntries[in.Target] {
				return nil, fmt.Errorf("prog: instr %d: %s target %d is not a function entry", i, in.Op, in.Target)
			}
		}
	}

	p := &Program{
		Code:         code,
		FuncByName:   make(map[string]*Function, len(funcs)),
		Globals:      globals,
		GlobalByName: make(map[string]*Global, len(globals)),
		Layout:       layout,
		callSites:    make(map[int][]int),
		spawnSites:   make(map[int][]int),
	}
	for i := range p.Globals {
		g := &p.Globals[i]
		p.GlobalByName[g.Name] = g
	}

	// Functions sorted by entry; each extends to the next entry.
	type fe struct {
		name  string
		entry int
	}
	var fes []fe
	for name, entry := range funcs {
		fes = append(fes, fe{name, entry})
	}
	sort.Slice(fes, func(i, j int) bool { return fes[i].entry < fes[j].entry })
	for i, f := range fes {
		end := len(code)
		if i+1 < len(fes) {
			end = fes[i+1].entry
		}
		if f.entry >= end {
			return nil, fmt.Errorf("prog: function %q is empty", f.name)
		}
		fn := &Function{Name: f.name, Entry: f.entry, EndPC: end}
		p.Functions = append(p.Functions, fn)
		p.FuncByName[f.name] = fn
	}
	if len(p.Functions) == 0 || p.Functions[0].Entry != 0 {
		return nil, fmt.Errorf("prog: instructions before the first function")
	}

	p.funcOf = make([]int, len(code))
	for fi, fn := range p.Functions {
		for pc := fn.Entry; pc < fn.EndPC; pc++ {
			p.funcOf[pc] = fi
		}
	}

	if err := p.buildBlocks(); err != nil {
		return nil, err
	}
	return p, nil
}

// buildBlocks computes leaders, blocks, intra-procedural edges and the
// call/spawn site maps.
func (p *Program) buildBlocks() error {
	code := p.Code
	leader := make([]bool, len(code)+1)
	for _, fn := range p.Functions {
		leader[fn.Entry] = true
	}
	for i := range code {
		in := &code[i]
		if in.IsTerminator() {
			leader[i+1] = true
		}
		switch in.Op {
		case isa.OpJmp:
			leader[in.Target] = true
		case isa.OpBr:
			leader[in.Target] = true
			leader[in.Target2] = true
		case isa.OpLock:
			// A blocking LOCK must be a block of its own: if the thread
			// cannot acquire the mutex it parks *before* the block runs,
			// so no partially-executed block state exists to unwind.
			leader[i] = true
		}
	}
	// Control must not fall off the end of a function into the next: the
	// last instruction of every function must be a terminator (jmp/halt/ret).
	for _, fn := range p.Functions {
		last := &code[fn.EndPC-1]
		if !last.IsTerminator() {
			return fmt.Errorf("prog: function %q falls through its end (last instr %q)", fn.Name, last.String())
		}
		switch last.Op {
		case isa.OpCall, isa.OpSpawn, isa.OpYield, isa.OpLock:
			// These terminators fall through to the next instruction,
			// which would be outside the function.
			return fmt.Errorf("prog: function %q ends with falling-through terminator %q", fn.Name, last.String())
		}
	}
	// Jump targets must stay within their function.
	for i := range code {
		in := &code[i]
		if in.Op == isa.OpJmp || in.Op == isa.OpBr {
			fi := p.funcOf[i]
			if p.funcOf[in.Target] != fi || (in.Op == isa.OpBr && p.funcOf[in.Target2] != fi) {
				return fmt.Errorf("prog: instr %d: branch leaves function %q", i, p.Functions[fi].Name)
			}
		}
	}

	p.blockOf = make([]int, len(code))
	for _, fn := range p.Functions {
		start := fn.Entry
		for pc := fn.Entry + 1; pc <= fn.EndPC; pc++ {
			if pc == fn.EndPC || leader[pc] {
				b := &Block{ID: len(p.blocks), Func: fn, Start: start, End: pc}
				p.blocks = append(p.blocks, b)
				fn.Blocks = append(fn.Blocks, b)
				for j := start; j < pc; j++ {
					p.blockOf[j] = b.ID
				}
				start = pc
			}
		}
	}

	// Edges.
	addEdge := func(from, toPC int) {
		to := p.blockOf[toPC]
		p.blocks[from].Succs = append(p.blocks[from].Succs, to)
		p.blocks[to].Preds = append(p.blocks[to].Preds, from)
	}
	for _, b := range p.blocks {
		term := b.Terminator(code)
		switch term.Op {
		case isa.OpJmp:
			addEdge(b.ID, term.Target)
		case isa.OpBr:
			addEdge(b.ID, term.Target)
			if term.Target2 != term.Target {
				addEdge(b.ID, term.Target2)
			}
		case isa.OpRet:
			b.Func.RetBlocks = append(b.Func.RetBlocks, b.ID)
		case isa.OpHalt:
			// no successors
		case isa.OpCall:
			p.callSites[term.Target] = append(p.callSites[term.Target], b.ID)
			addEdge(b.ID, b.End) // intra-proc: continue after return
		case isa.OpSpawn:
			p.spawnSites[term.Target] = append(p.spawnSites[term.Target], b.ID)
			addEdge(b.ID, b.End)
		default:
			// Fallthrough (yield/lock or implicit leader split).
			if b.End < b.Func.EndPC {
				addEdge(b.ID, b.End)
			}
		}
	}
	return nil
}

// GlobalAddr returns the address of a named global.
func (p *Program) GlobalAddr(name string) (uint32, error) {
	g, ok := p.GlobalByName[name]
	if !ok {
		return 0, fmt.Errorf("prog: unknown global %q", name)
	}
	return g.Addr, nil
}

// Disassemble renders the whole program with function and block markers,
// for debugging and golden tests.
func (p *Program) Disassemble() string {
	var out []byte
	for _, fn := range p.Functions {
		out = append(out, fmt.Sprintf("func %s:  ; pc %d..%d\n", fn.Name, fn.Entry, fn.EndPC)...)
		for _, b := range fn.Blocks {
			out = append(out, fmt.Sprintf("  ; block %d  succs=%v preds=%v\n", b.ID, b.Succs, b.Preds)...)
			for pc := b.Start; pc < b.End; pc++ {
				out = append(out, fmt.Sprintf("  %4d  %s\n", pc, p.Code[pc].String())...)
			}
		}
	}
	return string(out)
}

package trace

import (
	"strings"
	"testing"
)

func TestTraceAppendAndTail(t *testing.T) {
	var tr Trace
	for i := 0; i < 5; i++ {
		tr.Append(Step{Tid: i % 2, Block: i})
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	tail := tr.Tail(2)
	if len(tail) != 2 || tail[0].Block != 3 || tail[1].Block != 4 {
		t.Errorf("tail = %v", tail)
	}
	if got := tr.Tail(99); len(got) != 5 {
		t.Errorf("oversized tail = %v", got)
	}
}

func TestTraceString(t *testing.T) {
	var tr Trace
	tr.Append(Step{Tid: 0, Block: 3})
	tr.Append(Step{Tid: 1, Block: 7})
	if got := tr.String(); got != "t0:b3 t1:b7" {
		t.Errorf("String = %q", got)
	}
}

func TestSuffixClone(t *testing.T) {
	s := &Suffix{
		Steps:    []Step{{Tid: 0, Block: 1}},
		EndPC:    9,
		Inputs:   []InputRec{{Tid: 0, Channel: 2, Value: 5}},
		StartPCs: map[int]int{0: 4},
	}
	c := s.Clone()
	c.Steps[0].Block = 99
	c.Inputs[0].Value = 99
	c.StartPCs[0] = 99
	if s.Steps[0].Block != 1 || s.Inputs[0].Value != 5 || s.StartPCs[0] != 4 {
		t.Error("clone shares state")
	}
	if c.Len() != 1 || s.Len() != 1 {
		t.Error("lengths wrong")
	}
}

func TestSuffixString(t *testing.T) {
	s := &Suffix{Steps: []Step{{Tid: 1, Block: 2}}, EndPC: 5}
	str := s.String()
	if !strings.Contains(str, "end pc 5") || !strings.Contains(str, "t1:b2") {
		t.Errorf("String = %q", str)
	}
}

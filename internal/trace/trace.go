// Package trace defines execution suffixes and schedules: the shared
// currency between the concrete VM (which can record them as ground
// truth), RES (which synthesizes them from a coredump), and the replayer
// (which forces them back onto the VM).
package trace

import (
	"fmt"
	"strings"
)

// Step is one scheduled basic-block execution: thread Tid ran block Block.
type Step struct {
	Tid   int
	Block int
}

func (s Step) String() string { return fmt.Sprintf("t%d:b%d", s.Tid, s.Block) }

// InputRec records one value consumed from an input channel.
type InputRec struct {
	Tid     int
	Channel int64
	Value   int64
}

// Trace is a recorded or synthesized execution fragment: the schedule at
// block granularity plus the external inputs consumed, in order.
type Trace struct {
	Steps  []Step
	Inputs []InputRec
}

// Append adds a step.
func (t *Trace) Append(s Step) { t.Steps = append(t.Steps, s) }

// Len returns the number of scheduled blocks.
func (t *Trace) Len() int { return len(t.Steps) }

// Tail returns the last n steps (or all of them if fewer).
func (t *Trace) Tail(n int) []Step {
	if n >= len(t.Steps) {
		return t.Steps
	}
	return t.Steps[len(t.Steps)-n:]
}

// String renders the schedule compactly.
func (t *Trace) String() string {
	var b strings.Builder
	for i, s := range t.Steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Suffix is RES's synthesized execution suffix: a schedule whose first
// step begins from the inferred pre-image, together with the inputs each
// step consumes and where in the final block execution stops (the failure
// point).
type Suffix struct {
	// Steps is the schedule, oldest first. The last step is the partial
	// block of the failing thread, executed up to and including EndPC.
	Steps []Step
	// EndPC is the pc at which execution of the last step's block stops
	// (the faulting instruction).
	EndPC int
	// Inputs are the external input values consumed during the suffix,
	// in consumption order.
	Inputs []InputRec
	// StartPCs maps each thread id to its program counter at the start
	// of the suffix.
	StartPCs map[int]int
}

// Clone returns a deep copy.
func (s *Suffix) Clone() *Suffix {
	ns := &Suffix{
		Steps:    append([]Step(nil), s.Steps...),
		EndPC:    s.EndPC,
		Inputs:   append([]InputRec(nil), s.Inputs...),
		StartPCs: make(map[int]int, len(s.StartPCs)),
	}
	for k, v := range s.StartPCs {
		ns.StartPCs[k] = v
	}
	return ns
}

// Len returns the suffix length in blocks.
func (s *Suffix) Len() int { return len(s.Steps) }

func (s *Suffix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suffix[%d blocks, end pc %d]:", len(s.Steps), s.EndPC)
	for _, st := range s.Steps {
		b.WriteByte(' ')
		b.WriteString(st.String())
	}
	return b.String()
}

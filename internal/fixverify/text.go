package fixverify

import (
	"fmt"
	"strings"
)

// ParseText parses the human-authored patch format into a Patch. The
// format is line-oriented:
//
//	# comments and blank lines between ops are ignored
//	replace <label>
//	    <assembly line>
//	    ...
//	end
//	insert <label>
//	    <assembly line>
//	    ...
//	end
//	delete <label>
//
// Body lines are taken verbatim (the assembler's own ;/# comment rules
// apply to them later); a body runs until a line consisting of "end".
// delete takes no body.
func ParseText(src string) (*Patch, error) {
	p := &Patch{}
	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		raw := lines[i]
		s := strings.TrimSpace(raw)
		i++
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, fmt.Errorf("fixverify: patch line %d: want \"replace|insert|delete <label>\", got %q", i, s)
		}
		var kind OpKind
		switch fields[0] {
		case "replace":
			kind = OpReplace
		case "insert":
			kind = OpInsert
		case "delete":
			kind = OpDelete
		default:
			return nil, fmt.Errorf("fixverify: patch line %d: unknown op %q", i, fields[0])
		}
		op := Op{Kind: kind, Label: strings.TrimSuffix(fields[1], ":")}
		if kind != OpDelete {
			closed := false
			for i < len(lines) {
				body := lines[i]
				i++
				if strings.TrimSpace(body) == "end" {
					closed = true
					break
				}
				op.Lines = append(op.Lines, strings.TrimRight(body, " \t\r"))
			}
			if !closed {
				return nil, fmt.Errorf("fixverify: patch op %s %s: missing \"end\"", kind, op.Label)
			}
		}
		p.Ops = append(p.Ops, op)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FormatText renders a patch in the ParseText format.
func (p *Patch) FormatText() string {
	var b strings.Builder
	for _, op := range p.Ops {
		fmt.Fprintf(&b, "%s %s\n", op.Kind, op.Label)
		if op.Kind == OpDelete {
			continue
		}
		for _, ln := range op.Lines {
			fmt.Fprintf(&b, "%s\n", ln)
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// DecodeAny accepts a patch in either form: canonical RESPATCH1 wire
// bytes or the ParseText source format.
func DecodeAny(b []byte) (*Patch, error) {
	if len(b) >= len(wireMagic) && string(b[:len(wireMagic)]) == wireMagic {
		return Decode(b)
	}
	return ParseText(string(b))
}

package fixverify

import (
	"bytes"
	"strings"
	"testing"
)

func samplePatch() *Patch {
	return &Patch{Ops: []Op{
		{Kind: OpReplace, Label: "check", Lines: []string{"    const r3, 5", "    cmpeq r4, r2, r3"}},
		{Kind: OpInsert, Label: "init", Lines: []string{"    const r9, 1"}},
		{Kind: OpDelete, Label: "dead"},
	}}
}

func TestPatchWireRoundTrip(t *testing.T) {
	p := samplePatch()
	b := p.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatalf("decode∘encode is not a fixed point")
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Fatalf("fingerprint changed across round trip")
	}
}

func TestPatchIdentityIsEncodable(t *testing.T) {
	p := &Patch{}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("Decode(identity): %v", err)
	}
	if len(got.Ops) != 0 {
		t.Fatalf("identity patch decoded with %d ops", len(got.Ops))
	}
}

func TestPatchDecodeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("NOTAPATCH"),
		"trailing bytes": append((&Patch{}).Encode(), 0),
		"truncated":      samplePatch().Encode()[:12],
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

func TestPatchValidate(t *testing.T) {
	bad := []Patch{
		{Ops: []Op{{Kind: OpKind(9), Label: "x"}}},
		{Ops: []Op{{Kind: OpReplace, Label: ""}}},
		{Ops: []Op{{Kind: OpReplace, Label: "has space"}}},
		{Ops: []Op{{Kind: OpReplace, Label: "trail:"}}},
		{Ops: []Op{{Kind: OpDelete, Label: "x", Lines: []string{"nop"}}}},
		{Ops: []Op{{Kind: OpInsert, Label: "x", Lines: []string{"two\nlines"}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid patch", i)
		}
	}
}

func TestPatchFingerprintDistinct(t *testing.T) {
	a := &Patch{Ops: []Op{{Kind: OpReplace, Label: "check", Lines: []string{"    halt"}}}}
	b := &Patch{Ops: []Op{{Kind: OpReplace, Label: "check", Lines: []string{"    nop"}}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("distinct patches share a fingerprint")
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	text := `# fix the comparison
replace check
    const r3, 5
    cmpeq r4, r2, r3
end

insert init
    const r9, 1
end
delete dead
`
	p, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(p.Ops) != 3 || p.Ops[0].Kind != OpReplace || p.Ops[1].Kind != OpInsert || p.Ops[2].Kind != OpDelete {
		t.Fatalf("parsed ops wrong: %+v", p.Ops)
	}
	p2, err := ParseText(p.FormatText())
	if err != nil {
		t.Fatalf("reparse FormatText: %v", err)
	}
	if p2.Fingerprint() != p.Fingerprint() {
		t.Fatalf("FormatText round trip changed the patch")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"unknown op":  "frobnicate check\nend\n",
		"missing end": "replace check\n    halt\n",
		"bad header":  "replace\n",
	}
	for name, text := range cases {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: ParseText accepted invalid input", name)
		}
	}
}

func TestDecodeAny(t *testing.T) {
	p := samplePatch()
	fromWire, err := DecodeAny(p.Encode())
	if err != nil {
		t.Fatalf("DecodeAny(wire): %v", err)
	}
	fromText, err := DecodeAny([]byte(p.FormatText()))
	if err != nil {
		t.Fatalf("DecodeAny(text): %v", err)
	}
	if fromWire.Fingerprint() != fromText.Fingerprint() {
		t.Fatalf("wire and text forms decode to different patches")
	}
}

const applySrc = `; apply test program
.global x 1
func main:
    const r1, 5
    storeg r1, &x
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
site:
    assert r4
    halt
`

func TestApplyReplace(t *testing.T) {
	p := &Patch{Ops: []Op{{Kind: OpReplace, Label: "check", Lines: []string{
		"    loadg r2, &x",
		"    const r3, 5",
		"    cmpeq r4, r2, r3",
	}}}}
	ap, err := Apply(applySrc, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ap.Identity {
		t.Fatalf("replace patch reported as identity")
	}
	// Instructions 0..1 (const, storeg) are untouched and keep their PCs;
	// 2..4 were replaced; 5..6 (assert, halt) shift by the body delta (0).
	for _, pc := range []int{0, 1} {
		if got, ok := ap.PCMap[pc]; !ok || got != pc {
			t.Errorf("PCMap[%d] = %d, %v; want identity mapping", pc, got, ok)
		}
	}
	for _, pc := range []int{2, 3, 4} {
		if _, ok := ap.PCMap[pc]; ok {
			t.Errorf("PCMap[%d] exists; replaced instructions must be unmapped", pc)
		}
	}
	if got, ok := ap.PCMap[5]; !ok || got != 5 {
		t.Errorf("PCMap[5] = %d, %v; want 5 (same-size body)", got, ok)
	}
	if len(ap.Touched) != 3 {
		t.Errorf("Touched = %v; want the 3 replacement instructions", ap.Touched)
	}
}

func TestApplyInsertShiftsFollowing(t *testing.T) {
	p := &Patch{Ops: []Op{{Kind: OpInsert, Label: "check", Lines: []string{"    const r9, 1"}}}}
	ap, err := Apply(applySrc, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := ap.PCMap[2]; got != 3 {
		t.Errorf("PCMap[2] = %d; want 3 (shifted past the insert)", got)
	}
	if !ap.Touched[2] {
		t.Errorf("inserted instruction at pc 2 not marked touched")
	}
	if len(ap.Program.Code) != ap.OrigInstrs+1 {
		t.Errorf("patched program has %d instructions; want %d", len(ap.Program.Code), ap.OrigInstrs+1)
	}
}

func TestApplyDelete(t *testing.T) {
	p := &Patch{Ops: []Op{{Kind: OpDelete, Label: "check"}}}
	ap, err := Apply(applySrc, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, pc := range []int{2, 3, 4} {
		if _, ok := ap.PCMap[pc]; ok {
			t.Errorf("deleted instruction %d still mapped", pc)
		}
	}
	if got, ok := ap.PCMap[5]; !ok || got != 2 {
		t.Errorf("PCMap[5] = %d, %v; want 2 (shifted over the deleted body)", got, ok)
	}
	if len(ap.Touched) != 0 {
		t.Errorf("delete introduced instructions: %v", ap.Touched)
	}
}

func TestApplyIdentity(t *testing.T) {
	ap, err := Apply(applySrc, &Patch{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !ap.Identity {
		t.Fatalf("zero-op patch not detected as identity")
	}
	if len(ap.PCMap) != ap.OrigInstrs {
		t.Fatalf("identity PCMap covers %d of %d instructions", len(ap.PCMap), ap.OrigInstrs)
	}
}

func TestApplyErrors(t *testing.T) {
	cases := map[string]*Patch{
		"unknown label": {Ops: []Op{{Kind: OpDelete, Label: "nosuch"}}},
		"body declares global": {Ops: []Op{{Kind: OpReplace, Label: "check",
			Lines: []string{".global y 1"}}}},
		"body declares func": {Ops: []Op{{Kind: OpReplace, Label: "check",
			Lines: []string{"func evil:"}}}},
		"does not assemble": {Ops: []Op{{Kind: OpReplace, Label: "check",
			Lines: []string{"    bogusop r1"}}}},
	}
	for name, p := range cases {
		if _, err := Apply(applySrc, p); err == nil {
			t.Errorf("%s: Apply accepted invalid patch", name)
		}
	}
}

func TestApplyFuncLabel(t *testing.T) {
	// func headers are labels too: replacing "main" replaces the lines up
	// to the next label.
	p := &Patch{Ops: []Op{{Kind: OpReplace, Label: "main", Lines: []string{
		"    const r1, 4",
		"    storeg r1, &x",
	}}}}
	ap, err := Apply(applySrc, p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !strings.Contains(ap.Source, "const r1, 4") {
		t.Fatalf("patched source missing replacement body")
	}
}

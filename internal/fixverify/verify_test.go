package fixverify_test

import (
	"context"
	"strings"
	"testing"

	"res"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/fixverify"
	"res/internal/isa"
	"res/internal/mem"
	"res/internal/trace"
)

// buggySrc fails deterministically: x is 5 but the check asserts it is 4.
// The failure site (site:) is a separate region from the buggy comparison
// (check:), so patches to check leave the assert in place and exercise
// the residual-constraint judgment.
const buggySrc = `
.global x 1
func main:
    const r1, 5
    storeg r1, &x
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
site:
    assert r4
    halt
`

// analyzeBuggy runs the buggy program to its failure and analyzes the
// dump, returning everything a fix verification needs.
func analyzeBuggy(t *testing.T) (*res.Result, *res.Dump) {
	t.Helper()
	p := res.MustAssemble(buggySrc)
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d == nil {
		t.Fatalf("buggy program did not fail")
	}
	r, err := res.NewAnalyzer(p).Analyze(context.Background(), d)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r.Cause == nil || r.Synthesized == nil {
		t.Fatalf("analysis found no cause/suffix: %+v", r)
	}
	return r, d
}

func mustParse(t *testing.T, text string) *res.FixPatch {
	t.Helper()
	p, err := res.ParsePatch(text)
	if err != nil {
		t.Fatalf("ParsePatch: %v", err)
	}
	return p
}

func TestVerifyGoodPatchFixed(t *testing.T) {
	r, d := analyzeBuggy(t)
	patch := mustParse(t, `replace check
    loadg r2, &x
    const r3, 5
    cmpeq r4, r2, r3
end
`)
	v, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if v.Verdict != res.FixVerdictFixed {
		t.Fatalf("verdict = %s (%s); want fixed", v.Verdict, v.Reason)
	}
	if v.ResidualSat {
		t.Fatalf("good patch left the residual constraint satisfiable")
	}
	if !v.Contacted {
		t.Fatalf("patched code never executed")
	}
}

func TestVerifyBadPatchNotFixed(t *testing.T) {
	r, d := analyzeBuggy(t)
	// Still compares against the wrong constant: the assert still fires.
	patch := mustParse(t, `replace check
    loadg r2, &x
    const r3, 3
    cmpeq r4, r2, r3
end
`)
	v, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if v.Verdict != res.FixVerdictNotFixed {
		t.Fatalf("verdict = %s (%s); want not-fixed", v.Verdict, v.Reason)
	}
	if !v.ResidualSat {
		t.Fatalf("reproduced failure must report a satisfiable residual")
	}
}

func TestVerifyIdentityPatchNotFixed(t *testing.T) {
	r, d := analyzeBuggy(t)
	v, err := res.VerifyFix(buggySrc, &res.FixPatch{}, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if v.Verdict != res.FixVerdictNotFixed {
		t.Fatalf("verdict = %s (%s); want not-fixed for the identity patch", v.Verdict, v.Reason)
	}
	if !strings.Contains(v.Reason, "identity") {
		t.Fatalf("identity verdict reason should say so, got %q", v.Reason)
	}
}

func TestVerifyRemovedFailureSiteFixed(t *testing.T) {
	r, d := analyzeBuggy(t)
	patch := mustParse(t, `replace site
    halt
end
`)
	v, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if v.Verdict != res.FixVerdictFixed {
		t.Fatalf("verdict = %s (%s); want fixed when the failure site is removed", v.Verdict, v.Reason)
	}
	if !strings.Contains(v.Residual, "removed") {
		t.Fatalf("residual should record the removed site, got %q", v.Residual)
	}
}

// divergeSrc is buggySrc with yields between the regions, so each region
// is its own basic block and a schedule can diverge before reaching a
// patched block.
const divergeSrc = `
.global x 1
func main:
    const r1, 5
    storeg r1, &x
    yield
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
    yield
site:
    assert r4
    halt
`

// wholeRunSyn hand-builds a synthesized suffix spanning divergeSrc's
// entire (deterministic, single-threaded) execution from pc 0: the
// full-length window an unbounded backward search would produce.
func wholeRunSyn(t *testing.T, p *res.Program) *core.Synthesized {
	t.Helper()
	var steps []trace.Step
	for b := 0; b < p.NumBlocks(); b++ {
		steps = append(steps, trace.Step{Tid: 0, Block: b})
	}
	return &core.Synthesized{
		Suffix: &trace.Suffix{
			Steps:    steps,
			EndPC:    7, // the assert
			StartPCs: map[int]int{0: 0},
		},
		PreMem:    mem.NewImage(p.Layout.MemSize),
		PreRegs:   map[int][isa.NumRegs]int64{0: {}},
		PreStates: map[int]coredump.ThreadState{0: coredump.ThreadRunnable},
		PreLocks:  map[uint32]int{},
	}
}

func TestVerifyDivergenceBeforeAnchorInconclusive(t *testing.T) {
	p := res.MustAssemble(divergeSrc)
	if p.NumBlocks() < 3 {
		t.Fatalf("divergeSrc has %d blocks; the test needs at least 3", p.NumBlocks())
	}
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil || d == nil {
		t.Fatalf("divergeSrc did not fail: %v", err)
	}
	syn := wholeRunSyn(t, p)
	// Sanity: the honest whole-run schedule replays to the fault.
	if v, err := fixverify.Verify(divergeSrc, &fixverify.Patch{}, syn, d, fixverify.Config{}); err != nil || v.Verdict != res.FixVerdictNotFixed {
		t.Fatalf("whole-run schedule does not reproduce: %+v, %v", v, err)
	}
	// Corrupt the schedule so the replay diverges at step 0 — before the
	// patched site region runs: the first step claims the check block
	// while the thread still sits at the program entry.
	syn.Suffix.Steps[0].Block = 1

	patch := mustParse(t, `replace site
    const r8, 1
    assert r8
    halt
end
`)
	v, err := fixverify.Verify(divergeSrc, patch, syn, d, fixverify.Config{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if v.Verdict != res.FixVerdictInconclusive {
		t.Fatalf("verdict = %s (%s); want inconclusive on pre-anchor divergence", v.Verdict, v.Reason)
	}
	if v.Verdict == res.FixVerdictFixed {
		t.Fatalf("pre-anchor divergence must never report fixed")
	}
	if !strings.Contains(v.Reason, "diverged") {
		t.Fatalf("reason should mention the divergence, got %q", v.Reason)
	}
}

func TestVerifySuffixStartInsidePatchInconclusive(t *testing.T) {
	r, d := analyzeBuggy(t)
	// Patch whichever region holds the suffix's starting pc; the window
	// then begins inside rewritten code and cannot anchor the replay.
	start := r.Synthesized.Suffix.StartPCs[d.Fault.Thread]
	label := "main"
	switch {
	case start >= 5:
		label = "site"
	case start >= 2:
		label = "check"
	}
	body := map[string]string{
		"main":  "    const r1, 5\n    storeg r1, &x",
		"check": "    loadg r2, &x\n    const r3, 4\n    cmpeq r4, r2, r3",
		"site":  "    assert r4\n    halt",
	}[label]
	patch := mustParse(t, "replace "+label+"\n"+body+"\nend\n")
	v, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if v.Verdict != res.FixVerdictInconclusive {
		t.Fatalf("verdict = %s (%s); want inconclusive when the window starts inside patched code", v.Verdict, v.Reason)
	}
}

func TestVerifyDeterministic(t *testing.T) {
	r, d := analyzeBuggy(t)
	patch := mustParse(t, `replace check
    loadg r2, &x
    const r3, 5
    cmpeq r4, r2, r3
end
`)
	v1, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	v2, err := res.VerifyFix(buggySrc, patch, r, d)
	if err != nil {
		t.Fatalf("VerifyFix: %v", err)
	}
	if *v1 != *v2 {
		t.Fatalf("verdicts differ across identical runs:\n%+v\n%+v", v1, v2)
	}
}

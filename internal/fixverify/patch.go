// Package fixverify closes the debugging loop: given a failure whose
// execution suffix RES has synthesized, it mechanically checks a proposed
// fix. A fix is a structured patch over the program's assembly source —
// replace/insert/delete operations keyed by assembler label — with a
// canonical wire form (RESPATCH1) so the ingestion service can cache
// verdicts by (failure tuple, patch) content. Verification replays the
// synthesized suffix under the patched program through the hypothesis
// harness and reports one of three verdicts: the failure still reproduces
// (not-fixed), the failure provably cannot fire in the replayed window
// (fixed), or the patched execution diverges before the patch takes
// effect, so the repro window cannot judge it (inconclusive).
package fixverify

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// OpKind classifies a patch operation.
type OpKind uint8

const (
	// OpReplace swaps the labeled region's body for the op's lines.
	OpReplace OpKind = iota
	// OpInsert prepends the op's lines to the labeled region's body.
	OpInsert
	// OpDelete removes the labeled region's body (the label line stays).
	OpDelete
)

var opNames = map[OpKind]string{
	OpReplace: "replace", OpInsert: "insert", OpDelete: "delete",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one patch operation. Label names an assembler label (or function
// header) in the target source; the op acts on that label's region — the
// lines after the label up to the next label, function header, or .global
// directive. Lines carry assembly text for replace/insert and must be
// empty for delete.
type Op struct {
	Kind  OpKind
	Label string
	Lines []string
}

// Patch is an ordered list of operations over one program's source. Ops
// apply in order, each against the text the previous ops produced. A
// zero-op patch is the identity.
type Patch struct {
	Ops []Op
}

// The wire form is a canonical container: magic, op count, then each op
// as (kind, label, line count, lines). Every numeric field is a varint
// and Decode enforces the construction invariants (valid kind, wellformed
// label, no embedded newlines, delete carries no lines) plus a
// trailing-byte check, so decode∘encode is the identity on canonical
// bytes and encode∘decode is a fixed point on anything that decodes.
const wireMagic = "RESPATCH1"

// Decode limits: a corrupt or malicious stream must fail fast, not
// allocate unboundedly.
const (
	maxOps     = 1 << 10
	maxLines   = 1 << 12
	maxLineLen = 1 << 12
	maxLabel   = 256
)

type encoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("fixverify: "+format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("fixverify: %w", err)
	}
	return v
}

func (d *decoder) str(max uint64) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > max {
		d.fail("string too long (%d)", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = fmt.Errorf("fixverify: %w", err)
		return ""
	}
	return string(b)
}

// validLabel reports whether s can name an assembler label on the wire:
// nonempty, bounded, and free of whitespace, colons, and newlines.
func validLabel(s string) bool {
	if s == "" || len(s) > maxLabel {
		return false
	}
	return !strings.ContainsAny(s, " \t\r\n:;#")
}

// Validate checks the patch's construction invariants (the same ones
// Decode enforces on the wire).
func (p *Patch) Validate() error {
	if len(p.Ops) > maxOps {
		return fmt.Errorf("fixverify: %d ops exceeds the %d-op limit", len(p.Ops), maxOps)
	}
	for i, op := range p.Ops {
		if op.Kind > OpDelete {
			return fmt.Errorf("fixverify: op %d: unknown kind %d", i, op.Kind)
		}
		if !validLabel(op.Label) {
			return fmt.Errorf("fixverify: op %d: bad label %q", i, op.Label)
		}
		if op.Kind == OpDelete && len(op.Lines) != 0 {
			return fmt.Errorf("fixverify: op %d: delete carries %d lines", i, len(op.Lines))
		}
		if len(op.Lines) > maxLines {
			return fmt.Errorf("fixverify: op %d: %d lines exceeds the %d-line limit", i, len(op.Lines), maxLines)
		}
		for j, ln := range op.Lines {
			if len(ln) > maxLineLen {
				return fmt.Errorf("fixverify: op %d line %d: too long (%d bytes)", i, j, len(ln))
			}
			if strings.ContainsAny(ln, "\n\r") {
				return fmt.Errorf("fixverify: op %d line %d: embedded newline", i, j)
			}
		}
	}
	return nil
}

// Encode renders the patch in its canonical wire form.
func (p *Patch) Encode() []byte {
	e := &encoder{}
	e.buf.WriteString(wireMagic)
	e.uvarint(uint64(len(p.Ops)))
	for _, op := range p.Ops {
		e.uvarint(uint64(op.Kind))
		e.str(op.Label)
		e.uvarint(uint64(len(op.Lines)))
		for _, ln := range op.Lines {
			e.str(ln)
		}
	}
	return e.buf.Bytes()
}

// Decode parses wire-form patch bytes. Empty input is an error: a patch
// is always explicit (the identity patch is a zero-op patch, which still
// carries the magic).
func Decode(b []byte) (*Patch, error) {
	if len(b) < len(wireMagic) || string(b[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("fixverify: bad patch magic")
	}
	d := &decoder{r: bytes.NewReader(b[len(wireMagic):])}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxOps {
		return nil, fmt.Errorf("fixverify: unreasonable op count %d", n)
	}
	p := &Patch{Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind := d.uvarint()
		label := d.str(maxLabel)
		ln := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if kind > uint64(OpDelete) {
			return nil, fmt.Errorf("fixverify: op %d: unknown kind %d", i, kind)
		}
		if !validLabel(label) {
			return nil, fmt.Errorf("fixverify: op %d: bad label %q", i, label)
		}
		if ln > maxLines {
			return nil, fmt.Errorf("fixverify: op %d: unreasonable line count %d", i, ln)
		}
		op := Op{Kind: OpKind(kind), Label: label}
		for j := uint64(0); j < ln; j++ {
			line := d.str(maxLineLen)
			if d.err != nil {
				return nil, d.err
			}
			if strings.ContainsAny(line, "\n\r") {
				return nil, fmt.Errorf("fixverify: op %d line %d: embedded newline", i, j)
			}
			op.Lines = append(op.Lines, line)
		}
		if op.Kind == OpDelete && len(op.Lines) != 0 {
			return nil, fmt.Errorf("fixverify: op %d: delete carries %d lines", i, len(op.Lines))
		}
		p.Ops = append(p.Ops, op)
	}
	if d.r.Len() != 0 {
		return nil, fmt.Errorf("fixverify: %d trailing bytes", d.r.Len())
	}
	return p, nil
}

// Fingerprint is the content address of the patch: the hex SHA-256 of
// its canonical encoding. Distinct patches get distinct fingerprints;
// the service keys cached verdicts by (failure tuple, patch fingerprint).
func (p *Patch) Fingerprint() string {
	sum := sha256.Sum256(p.Encode())
	return hex.EncodeToString(sum[:])
}

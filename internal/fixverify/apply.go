package fixverify

import (
	"fmt"
	"strings"

	"res/internal/asm"
	"res/internal/prog"
)

// Applied is the result of applying a patch to a program's source: the
// patched source and program, plus the instruction mapping the verifier
// needs to drive the original suffix through the patched code.
type Applied struct {
	// Source is the patched assembly source.
	Source string
	// Program is the assembled patched program.
	Program *prog.Program
	// PCMap maps original instruction indexes to patched instruction
	// indexes for every instruction the patch left untouched. Original
	// instructions deleted or replaced by the patch have no entry.
	PCMap map[int]int
	// Touched marks patched-program instruction indexes the patch
	// introduced (from replace/insert bodies).
	Touched map[int]bool
	// OrigInstrs is the original program's instruction count.
	OrigInstrs int
	// Identity reports a patch with no instruction-level effect: every
	// original instruction survives and nothing new was introduced.
	Identity bool
}

// srcLine is one line of source text tagged with its provenance: the
// original line index, or -1 for patch-introduced lines.
type srcLine struct {
	text string
	orig int
}

// stripLine removes comments and surrounding space, mirroring the
// assembler's tokenizer.
func stripLine(s string) string {
	if idx := strings.IndexAny(s, ";#"); idx >= 0 {
		s = s[:idx]
	}
	return strings.TrimSpace(s)
}

// lineClass classifies a source line the way the assembler's two passes
// do: blank/comment, .global directive, func header, label, or
// instruction.
type lineClass uint8

const (
	classBlank lineClass = iota
	classGlobal
	classFunc
	classLabel
	classInstr
)

func classify(s string) (lineClass, string) {
	s = stripLine(s)
	if s == "" {
		return classBlank, ""
	}
	fields := strings.Fields(strings.ReplaceAll(s, ",", " "))
	switch {
	case fields[0] == ".global":
		return classGlobal, ""
	case fields[0] == "func" && strings.HasSuffix(fields[len(fields)-1], ":"):
		return classFunc, strings.TrimSuffix(fields[len(fields)-1], ":")
	case len(fields) == 1 && strings.HasSuffix(fields[0], ":"):
		return classLabel, strings.TrimSuffix(fields[0], ":")
	}
	return classInstr, ""
}

// findRegion locates a label's region in the current text: the label's
// line index plus the half-open body range (labelIdx+1, end) that runs to
// the next label, function header, or .global directive.
func findRegion(lines []srcLine, label string) (labelIdx, end int, err error) {
	labelIdx = -1
	for i, ln := range lines {
		c, name := classify(ln.text)
		if (c == classLabel || c == classFunc) && name == label {
			labelIdx = i
			break
		}
	}
	if labelIdx < 0 {
		return 0, 0, fmt.Errorf("fixverify: patch names unknown label %q", label)
	}
	end = len(lines)
	for i := labelIdx + 1; i < len(lines); i++ {
		c, _ := classify(lines[i].text)
		if c == classLabel || c == classFunc || c == classGlobal {
			end = i
			break
		}
	}
	return labelIdx, end, nil
}

// checkBodyLines rejects patch bodies that would change the program's
// data layout or function table: .global directives and func headers are
// structure, not code, and patching them would invalidate the synthesized
// pre-state the verifier replays from.
func checkBodyLines(op Op) error {
	for _, ln := range op.Lines {
		switch c, _ := classify(ln); c {
		case classGlobal:
			return fmt.Errorf("fixverify: op %s %s: patches must not declare globals", op.Kind, op.Label)
		case classFunc:
			return fmt.Errorf("fixverify: op %s %s: patches must not declare functions", op.Kind, op.Label)
		}
	}
	return nil
}

// Apply applies the patch to the program's assembly source, assembles the
// result, and computes the original→patched instruction mapping. Ops
// apply in order, each against the text the previous ops produced.
func Apply(source string, p *Patch) (*Applied, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var lines []srcLine
	for i, t := range strings.Split(source, "\n") {
		lines = append(lines, srcLine{text: t, orig: i})
	}
	for _, op := range p.Ops {
		if err := checkBodyLines(op); err != nil {
			return nil, err
		}
		labelIdx, end, err := findRegion(lines, op.Label)
		if err != nil {
			return nil, err
		}
		body := make([]srcLine, len(op.Lines))
		for i, t := range op.Lines {
			body[i] = srcLine{text: t, orig: -1}
		}
		switch op.Kind {
		case OpReplace:
			lines = splice(lines, labelIdx+1, end, body)
		case OpInsert:
			lines = splice(lines, labelIdx+1, labelIdx+1, body)
		case OpDelete:
			lines = splice(lines, labelIdx+1, end, nil)
		}
	}

	texts := make([]string, len(lines))
	for i, ln := range lines {
		texts[i] = ln.text
	}
	patchedSrc := strings.Join(texts, "\n")
	patched, err := asm.Assemble(patchedSrc)
	if err != nil {
		return nil, fmt.Errorf("fixverify: patched program does not assemble: %w", err)
	}

	// Instruction mapping by line provenance: the i-th instruction line of
	// a source is instruction i, so untouched lines map original PCs to
	// patched PCs directly.
	origPCByLine := make(map[int]int)
	origInstrs := 0
	for i, t := range strings.Split(source, "\n") {
		if c, _ := classify(t); c == classInstr {
			origPCByLine[i] = origInstrs
			origInstrs++
		}
	}
	ap := &Applied{
		Source:     patchedSrc,
		Program:    patched,
		PCMap:      make(map[int]int),
		Touched:    make(map[int]bool),
		OrigInstrs: origInstrs,
	}
	pc := 0
	for _, ln := range lines {
		if c, _ := classify(ln.text); c != classInstr {
			continue
		}
		if ln.orig >= 0 {
			ap.PCMap[origPCByLine[ln.orig]] = pc
		} else {
			ap.Touched[pc] = true
		}
		pc++
	}
	ap.Identity = len(ap.Touched) == 0 && len(ap.PCMap) == origInstrs
	return ap, nil
}

func splice(lines []srcLine, from, to int, body []srcLine) []srcLine {
	out := make([]srcLine, 0, len(lines)-(to-from)+len(body))
	out = append(out, lines[:from]...)
	out = append(out, body...)
	out = append(out, lines[to:]...)
	return out
}

package fixverify

import (
	"fmt"

	"res/internal/asm"
	"res/internal/core"
	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/replay"
	"res/internal/solver"
	"res/internal/symx"
	"res/internal/trace"
	"res/internal/vm"
)

// Verdict is the outcome of a fix verification.
type Verdict string

const (
	// VerdictFixed: the original failure provably cannot fire in the
	// replayed window under the patch.
	VerdictFixed Verdict = "fixed"
	// VerdictNotFixed: the failure (or its residual condition) survives
	// the patch.
	VerdictNotFixed Verdict = "not-fixed"
	// VerdictInconclusive: the patched execution diverges before the
	// patch takes effect, or the patch lies outside the reproduced
	// window, so this repro cannot judge the fix.
	VerdictInconclusive Verdict = "inconclusive"
)

// Result reports one fix verification.
type Result struct {
	Verdict Verdict `json:"verdict"`
	// Reason explains the verdict.
	Reason string `json:"reason"`
	// ResidualSat reports whether the residual failure constraint — the
	// original fault's firing condition evaluated over the patched
	// replay's state — is still satisfiable. It is the evidence behind a
	// fixed/not-fixed verdict reached without the fault literally firing.
	ResidualSat bool `json:"residual_sat"`
	// Residual renders the residual constraint that was checked, when one
	// was.
	Residual string `json:"residual,omitempty"`
	// PatchFingerprint is the verified patch's content address.
	PatchFingerprint string `json:"patch_fingerprint"`
	// Contacted reports whether patched code executed during the replay.
	Contacted bool `json:"contacted"`
}

// Config tunes verification.
type Config struct {
	// RunOutBlocks bounds the deterministic run-out after the forced
	// schedule completes without a fault: the patch may have shifted the
	// failure a few blocks past the recorded window. 0 = default (256).
	RunOutBlocks int
}

const defaultRunOut = 256

// Verify checks a proposed fix against a synthesized failure suffix. It
// applies the patch to the program's source, maps the suffix's pre-state
// onto the patched program, and force-replays the synthesized schedule:
// strictly (block by block) until the execution first touches patched
// code, then by thread order, then a bounded deterministic run-out. A
// divergence before any patched code runs means the repro window cannot
// judge the patch (inconclusive); a reproduced fault means not-fixed; a
// clean window is judged by the residual failure constraint's
// satisfiability.
//
// source must be the assembly text the suffix was synthesized against.
func Verify(source string, p *Patch, syn *core.Synthesized, d *coredump.Dump, cfg Config) (*Result, error) {
	if syn == nil || syn.Suffix == nil {
		return nil, fmt.Errorf("fixverify: no synthesized suffix to replay")
	}
	orig, err := asm.Assemble(source)
	if err != nil {
		return nil, fmt.Errorf("fixverify: original program does not assemble: %w", err)
	}
	applied, err := Apply(source, p)
	if err != nil {
		return nil, err
	}
	res := &Result{PatchFingerprint: p.Fingerprint()}
	inconclusive := func(format string, args ...any) (*Result, error) {
		res.Verdict = VerdictInconclusive
		res.Reason = fmt.Sprintf(format, args...)
		return res, nil
	}
	notFixed := func(format string, args ...any) (*Result, error) {
		res.Verdict = VerdictNotFixed
		res.Reason = fmt.Sprintf(format, args...)
		return res, nil
	}

	// Map the suffix's starting PCs onto the patched program. A start
	// inside a patched region means the recorded window begins in code
	// the patch rewrote — nothing to anchor the replay on.
	psyn := &core.Synthesized{
		Suffix: &trace.Suffix{
			EndPC:    -1,
			StartPCs: make(map[int]int, len(syn.Suffix.StartPCs)),
			Inputs:   syn.Suffix.Inputs,
		},
		PreMem:      syn.PreMem,
		PreRegs:     syn.PreRegs,
		PreStates:   syn.PreStates,
		PreLocks:    syn.PreLocks,
		PreHeap:     syn.PreHeap,
		PreHeapNext: syn.PreHeapNext,
	}
	for tid, pc := range syn.Suffix.StartPCs {
		mpc, ok := applied.PCMap[pc]
		if !ok {
			return inconclusive("thread %d's suffix start (pc %d) is inside patched code; the window cannot anchor the replay", tid, pc)
		}
		psyn.Suffix.StartPCs[tid] = mpc
	}

	v, err := replay.New(applied.Program, psyn, replay.Config{})
	if err != nil {
		return nil, fmt.Errorf("fixverify: %w", err)
	}

	mappedFaultPC, faultMapped := applied.PCMap[d.Fault.PC]
	guard := &guardSampler{v: v, tid: d.Fault.Thread, mapped: faultMapped, pc: mappedFaultPC}

	var fault *coredump.Fault
	steps := syn.Suffix.Steps
schedule: // phase 1+2: the forced schedule
	for i, step := range steps {
		t := v.Thread(step.Tid)
		if t == nil || t.State == coredump.ThreadExited {
			if res.Contacted {
				break // the patch changed scheduling; judge by run-out + residual
			}
			return inconclusive("replay diverged at step %d before reaching the patch: thread %d is gone", i, step.Tid)
		}
		block, berr := applied.Program.BlockAt(t.PC)
		if berr != nil {
			if res.Contacted {
				break
			}
			return inconclusive("replay diverged at step %d before reaching the patch: %v", i, berr)
		}
		touched := blockTouched(block, applied.Touched)
		if !res.Contacted {
			expected, mapped := expectedStart(orig, step.Block, applied.PCMap)
			switch {
			case touched || !mapped:
				// First contact: the schedule entered patched code (or a
				// region whose original instructions the patch removed).
				res.Contacted = true
			case !block.Contains(expected):
				// Same fidelity as replay.Run: the thread must be inside the
				// scheduled block (its start may be mid-block for the first,
				// partial step of a thread).
				return inconclusive("replay diverged at step %d before reaching the patch: thread %d at pc %d, schedule expects block starting at %d", i, step.Tid, t.PC, expected)
			}
		}
		f := v.ExecBlock(step.Tid)
		guard.sample(step.Tid, block)
		if f == nil {
			continue
		}
		if f.Kind == coredump.FaultNone {
			if res.Contacted {
				break schedule // forced thread blocked post-contact
			}
			return inconclusive("replay diverged at step %d before reaching the patch: forced thread %d blocked", i, step.Tid)
		}
		fault = f
		if !res.Contacted && !(i == len(steps)-1 && faultMatches(f, d, mappedFaultPC, faultMapped)) {
			return inconclusive("replay faulted at step %d (%v) before reaching the patch", i, f)
		}
		break schedule
	}

	if fault == nil && res.Contacted {
		// Run-out: the patch may have pushed the failure past the recorded
		// window. Continue deterministically (rotating over runnable
		// threads) for a bounded number of blocks.
		fault = runOut(v, guard, cfg.runOut())
	}

	if fault != nil {
		res.ResidualSat = true
		if faultMatches(fault, d, mappedFaultPC, faultMapped) {
			if applied.Identity {
				return notFixed("identity patch: the failure reproduces unchanged")
			}
			return notFixed("the failure still reproduces under the patch (%v)", fault)
		}
		if res.Contacted {
			return notFixed("the patch changes the execution but it still fails: %v", fault)
		}
		return inconclusive("replay faulted before reaching the patch: %v", fault)
	}

	if !res.Contacted {
		if applied.Identity {
			return notFixed("identity patch leaves the program unchanged")
		}
		return inconclusive("the patch never executes within the reproduced window; re-analyze with a wider suffix to judge it")
	}

	// Clean window: judge by the residual failure constraint — can the
	// original fault still fire at its (mapped) site given the replayed
	// state?
	if !faultMapped {
		res.Verdict = VerdictFixed
		res.Reason = "the patch removes the failure site; no failure in the replayed window"
		res.Residual = "unsatisfiable: failure site removed"
		return res, nil
	}
	if !guard.sampled {
		res.Verdict = VerdictFixed
		res.Reason = "the failure site is never reached under the reproduced schedule"
		res.Residual = "unsatisfiable: failure site not reached"
		return res, nil
	}
	c, ok := residualConstraint(applied.Program, mappedFaultPC, d.Fault.Kind, guard.regs)
	if !ok {
		res.Verdict = VerdictFixed
		res.Reason = "no failure within the replayed window"
		return res, nil
	}
	res.Residual = c.String()
	check := solver.Check([]solver.Constraint{c}, solver.Options{})
	switch check.Verdict {
	case solver.Sat:
		res.ResidualSat = true
		return notFixed("the residual failure constraint still holds at the failure site (%s)", res.Residual)
	case solver.Unsat:
		res.Verdict = VerdictFixed
		res.Reason = "the residual failure constraint is unsatisfiable at the failure site"
		return res, nil
	default:
		return inconclusive("the residual failure constraint's satisfiability is undecided (%s)", res.Residual)
	}
}

func (c Config) runOut() int {
	if c.RunOutBlocks > 0 {
		return c.RunOutBlocks
	}
	return defaultRunOut
}

// guardSampler captures the fault thread's registers each time it
// finishes executing the block holding the mapped failure site; the last
// sample feeds the residual constraint.
type guardSampler struct {
	v       *vm.VM
	tid     int
	mapped  bool
	pc      int
	sampled bool
	regs    [isa.NumRegs]int64
}

func (g *guardSampler) sample(tid int, block *prog.Block) {
	if !g.mapped || tid != g.tid || !block.Contains(g.pc) {
		return
	}
	if t := g.v.Thread(tid); t != nil {
		g.regs = t.Regs
		g.sampled = true
	}
}

// blockTouched reports whether the block contains any patch-introduced
// instruction.
func blockTouched(b *prog.Block, touched map[int]bool) bool {
	for pc := b.Start; pc < b.End; pc++ {
		if touched[pc] {
			return true
		}
	}
	return false
}

// expectedStart maps an original schedule step's block to its patched
// starting pc; mapped is false when the block's first instruction was
// removed or replaced by the patch.
func expectedStart(orig *prog.Program, blockID int, pcMap map[int]int) (int, bool) {
	if blockID < 0 || blockID >= orig.NumBlocks() {
		return 0, false
	}
	pc, ok := pcMap[orig.Block(blockID).Start]
	return pc, ok
}

// faultMatches compares a replayed fault against the original failure,
// with the failure pc translated through the patch mapping.
func faultMatches(f *coredump.Fault, d *coredump.Dump, mappedPC int, mapped bool) bool {
	if f == nil {
		return false
	}
	return mapped && f.Kind == d.Fault.Kind && f.PC == mappedPC &&
		f.Thread == d.Fault.Thread && f.Addr == d.Fault.Addr
}

// runOut continues execution deterministically after the forced schedule:
// runnable threads take turns in rotating tid order for up to budget
// blocks, or until a fault or global halt.
func runOut(v *vm.VM, guard *guardSampler, budget int) *coredump.Fault {
	cursor := 0
	for n := 0; n < budget; n++ {
		tid, ok := nextRunnable(v, cursor)
		if !ok {
			return nil
		}
		cursor = tid + 1
		t := v.Thread(tid)
		block, err := v.P.BlockAt(t.PC)
		if err != nil {
			return nil
		}
		f := v.ExecBlock(tid)
		guard.sample(tid, block)
		if f != nil && f.Kind != coredump.FaultNone {
			return f
		}
	}
	return nil
}

// nextRunnable picks the first runnable thread at or after cursor,
// wrapping around; deterministic for a given machine state.
func nextRunnable(v *vm.VM, cursor int) (int, bool) {
	n := len(v.Threads)
	if n == 0 {
		return 0, false
	}
	for i := 0; i < n; i++ {
		t := v.Threads[(cursor+i)%n]
		if t.State == coredump.ThreadRunnable {
			return t.ID, true
		}
	}
	return 0, false
}

// residualConstraint builds the original fault's firing condition at its
// mapped site over the sampled register state. ok is false when the
// fault kind has no register-level guard to evaluate.
func residualConstraint(p *prog.Program, pc int, kind coredump.FaultKind, regs [isa.NumRegs]int64) (solver.Constraint, bool) {
	if pc < 0 || pc >= len(p.Code) {
		return solver.Constraint{}, false
	}
	in := p.Code[pc]
	switch kind {
	case coredump.FaultAssert:
		if in.Op == isa.OpAssert {
			return solver.Falsy(symx.Const(regs[in.Rs1])), true
		}
	case coredump.FaultDivByZero:
		if in.Op == isa.OpDiv || in.Op == isa.OpMod {
			return solver.Eq(symx.Const(regs[in.Rs2]), symx.Const(0)), true
		}
	case coredump.FaultNullDeref:
		switch in.Op {
		case isa.OpLoad:
			return solver.Eq(symx.Const(regs[in.Rs1]+in.Imm), symx.Const(0)), true
		case isa.OpStore:
			return solver.Eq(symx.Const(regs[in.Rs2]+in.Imm), symx.Const(0)), true
		}
	}
	return solver.Constraint{}, false
}

package fixverify

import (
	"bytes"
	"testing"
)

// FuzzPatchDecode guards the patch wire decoder the way FuzzEvidenceDecode
// guards the evidence codec: arbitrary bytes must never panic, anything
// that decodes must re-encode to a canonical form that is a fixed point
// under another decode/encode cycle, and the content fingerprint must be
// stable across the trip — the service caches fix verdicts by patch
// fingerprint, so instability would split or collide cache entries. The
// seed corpus under testdata/fuzz/FuzzPatchDecode is checked in.
func FuzzPatchDecode(f *testing.F) {
	seeds := []*Patch{
		{},
		{Ops: []Op{{Kind: OpDelete, Label: "dead"}}},
		{Ops: []Op{{Kind: OpReplace, Label: "check", Lines: []string{"    const r3, 5", "    cmpeq r4, r2, r3"}}}},
		{Ops: []Op{
			{Kind: OpInsert, Label: "init", Lines: []string{"    const r9, 1"}},
			{Kind: OpReplace, Label: "site", Lines: []string{"    halt"}},
			{Kind: OpDelete, Label: "old"},
		}},
	}
	for _, p := range seeds {
		f.Add(p.Encode())
	}
	f.Add([]byte("RESPATCH1"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // not a patch; rejecting is the correct behavior
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("decoded patch fails validation: %v", verr)
		}
		canon := p.Encode()
		p2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if canon2 := p2.Encode(); !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %x\nsecond: %x", canon, canon2)
		}
		if p.Fingerprint() != p2.Fingerprint() {
			t.Fatal("fingerprint changed across round trip")
		}
		if len(p.Ops) != len(p2.Ops) {
			t.Fatalf("round trip changed op count: %d vs %d", len(p.Ops), len(p2.Ops))
		}
	})
}

// FuzzPatchText guards the human text parser: arbitrary text must never
// panic, and anything it accepts must survive a FormatText/ParseText
// round trip with the same fingerprint.
func FuzzPatchText(f *testing.F) {
	f.Add("replace check\n    const r3, 5\nend\n")
	f.Add("delete dead\n")
	f.Add("# comment\ninsert a\n    nop\nend\ndelete b\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParseText(text)
		if err != nil {
			return
		}
		p2, err := ParseText(p.FormatText())
		if err != nil {
			t.Fatalf("FormatText output failed to reparse: %v", err)
		}
		if p.Fingerprint() != p2.Fingerprint() {
			t.Fatal("text round trip changed the patch")
		}
	})
}

package symvm_test

import (
	"testing"

	"res/internal/asm"
	"res/internal/coredump"
	"res/internal/prog"
	"res/internal/solver"
	"res/internal/symstate"
	"res/internal/symvm"
	"res/internal/symx"
	"res/internal/vm"
)

// crashSnap runs the program to failure and returns the program, dump and
// base snapshot.
func crashSnap(t *testing.T, src string, cfg vm.Config) (*prog.Program, *coredump.Dump, *symstate.Snapshot) {
	t.Helper()
	p := asm.MustAssemble(src)
	v, err := vm.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Run()
	if err != nil || d == nil {
		t.Fatalf("no dump: %v %v", d, err)
	}
	pool := symx.NewPool()
	return p, d, symstate.FromDump(d, p.Layout.HeapBase, pool)
}

func backExec(t *testing.T, p *prog.Program, post *symstate.Snapshot, tid, start, end int) *symvm.Result {
	t.Helper()
	return symvm.BackExec(symvm.Req{
		P: p, Post: post, Tid: tid, StartPC: start, EndPC: end, SpawnChild: -1,
	}, symvm.Options{})
}

func TestHavocAndPassThrough(t *testing.T) {
	// Block writes r1 only: r1's pre-value is havocked (symbolic), other
	// registers pass through from Spost.
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    const r2, 0
    assert r2
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	_ = d
	// Back-execute just "const r1, 5; storeg r1, &g" as a range.
	res := backExec(t, p, snap, 0, 0, 2)
	if res.Verdict != symvm.Feasible {
		t.Fatalf("verdict %v: %s", res.Verdict, res.Reason)
	}
	pre := res.Pre
	r1, _ := pre.Reg(0, 1)
	if _, isVar := r1.IsVar(); !isVar {
		t.Errorf("written register r1 not havocked: %v", r1)
	}
	r3, _ := pre.Reg(0, 3)
	if _, ok := r3.IsConst(); !ok {
		t.Errorf("untouched register r3 should pass through concretely: %v", r3)
	}
	// The overwritten global's pre-value is symbolic in the pre snapshot.
	gaddr, _ := p.GlobalAddr("g")
	if !pre.MemAt(gaddr).HasVars() {
		t.Errorf("overwritten memory should be symbolic, got %v", pre.MemAt(gaddr))
	}
}

func TestIncompatibleWriteRejected(t *testing.T) {
	// The block provably writes 5, but the post state says 6: infeasible.
	src := `
.global g 1
func main:
    const r1, 5
    storeg r1, &g
    const r2, 0
    assert r2
    halt
`
	p, d, _ := crashSnap(t, src, vm.Config{})
	d.Mem.Store(16, 6) // corrupt g (first global)
	pool := symx.NewPool()
	snap := symstate.FromDump(d, p.Layout.HeapBase, pool)
	res := backExec(t, p, snap, 0, 0, 2)
	if res.Verdict != symvm.Infeasible {
		t.Fatalf("verdict = %v, want infeasible", res.Verdict)
	}
}

func TestBranchDirectionConstraint(t *testing.T) {
	src := `
.global g 1
func main:
    input r1, 0
    br r1, a, b
a:
    const r2, 1
    storeg r2, &g
    jmp end
b:
    const r2, 2
    storeg r2, &g
    jmp end
end:
    const r3, 0
    assert r3
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{Inputs: map[int64][]int64{0: {1}}})
	_ = d
	// Back-execute the entry block [input; br] with post pc at 'a' (2).
	// The branch condition (the input) must be constrained truthy.
	endBlock, _ := p.BlockAt(d.Fault.PC)
	base := backExec(t, p, snap, 0, endBlock.Start, d.Fault.PC)
	if base.Verdict != symvm.Feasible {
		t.Fatalf("base: %v %s", base.Verdict, base.Reason)
	}
	// From end, predecessor 'a' ([2,5)):
	aRes := backExec(t, p, base.Pre, 0, 2, 5)
	if aRes.Verdict != symvm.Feasible {
		t.Fatalf("a: %v %s", aRes.Verdict, aRes.Reason)
	}
	// 'b' ([5,8)) writes g=2 but dump has g=1: infeasible.
	bRes := backExec(t, p, base.Pre, 0, 5, 8)
	if bRes.Verdict != symvm.Infeasible {
		t.Fatalf("b: %v, want infeasible", bRes.Verdict)
	}
	// Behind 'a', the entry block's branch constrains the input truthy.
	entry := backExec(t, p, aRes.Pre, 0, 0, 2)
	if entry.Verdict != symvm.Feasible {
		t.Fatalf("entry: %v %s", entry.Verdict, entry.Reason)
	}
	if len(entry.Inputs) != 1 {
		t.Fatalf("inputs = %v", entry.Inputs)
	}
	// Solve and confirm the input model is non-zero (took the branch).
	chk := solver.Check(entry.Pre.Cons(), solver.Options{})
	if chk.Verdict != solver.Sat {
		t.Fatalf("pre constraints unsat")
	}
	if chk.Model[entry.Inputs[0].Var] == 0 {
		t.Error("branch direction constraint lost: input modelled as 0")
	}
}

func TestReadBeforeWriteUnconstrained(t *testing.T) {
	// Block increments g: the read-before-write pre-value must link to the
	// post value via v_pre + 1 == post.
	src := `
.global g 1
func main:
    loadg r1, &g
    addi r1, r1, 1
    storeg r1, &g
    const r2, 0
    assert r2
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	gaddr, _ := p.GlobalAddr("g")
	if d.Mem.Load(gaddr) != 1 {
		t.Fatalf("g = %d at crash", d.Mem.Load(gaddr))
	}
	res := backExec(t, p, snap, 0, 0, 3)
	if res.Verdict != symvm.Feasible {
		t.Fatalf("%v: %s", res.Verdict, res.Reason)
	}
	// Solving the pre constraints must pin the pre-value of g to 0.
	chk := solver.Check(res.Pre.Cons(), solver.Options{})
	if chk.Verdict != solver.Sat {
		t.Fatal("unsat")
	}
	preG, ok := res.Pre.MemAt(gaddr).Eval(chk.Model)
	if !ok || preG != 0 {
		t.Errorf("pre g = %d, want 0", preG)
	}
}

func TestSpawnChildConstraints(t *testing.T) {
	src := `
func main:
    const r2, 7
    spawn worker, r2
wait:
    jmp wait
func worker:
    load r3, r0, 0
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{Seed: 3, PreemptPct: 50, MaxSteps: 1000})
	if d.Fault.Kind != coredump.FaultNullDeref {
		t.Skipf("crash did not manifest as null deref: %v", d.Fault)
	}
	// Base case: worker's partial block.
	blk, _ := p.BlockAt(d.Fault.PC)
	base := symvm.BackExec(symvm.Req{
		P: p, Post: snap, Tid: d.Fault.Thread,
		StartPC: blk.Start, EndPC: d.Fault.PC, Partial: true, SpawnChild: -1,
	}, symvm.Options{})
	if base.Verdict != symvm.Feasible {
		t.Fatalf("base: %v %s", base.Verdict, base.Reason)
	}
	// Spawn-unwind: main executed the spawn block; the worker un-borns.
	spawnSites := p.SpawnSites(p.FuncByName["worker"].Entry)
	if len(spawnSites) != 1 {
		t.Fatal("no spawn site")
	}
	sb := p.Block(spawnSites[0])
	res := symvm.BackExec(symvm.Req{
		P: p, Post: base.Pre, Tid: 0,
		StartPC: sb.Start, EndPC: sb.End, SpawnChild: 1,
	}, symvm.Options{})
	if res.Verdict != symvm.Feasible {
		t.Fatalf("spawn unwind: %v %s", res.Verdict, res.Reason)
	}
	if res.Pre.Thread(1) != nil {
		t.Error("child still live before its spawn")
	}
}

func TestHaltUnwind(t *testing.T) {
	src := `
.global flag 1
func main:
    const r1, 0
    spawn worker, r1
spin:
    loadg r2, &flag
    br r2, crash, spin
crash:
    const r3, 0
    load r4, r3, 0
    halt
func worker:
    const r1, 1
    storeg r1, &flag
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{Seed: 1, PreemptPct: 40, MaxSteps: 10000})
	wt, err := d.Thread(1)
	if err != nil || wt.State != coredump.ThreadExited {
		t.Skipf("worker not exited in dump: %v %v", wt, err)
	}
	// Unwind the worker's final (halt) block directly from the dump.
	blk, _ := p.BlockAt(wt.PC)
	res := symvm.BackExec(symvm.Req{
		P: p, Post: snap, Tid: 1,
		StartPC: blk.Start, EndPC: blk.End, HaltStep: true, SpawnChild: -1,
	}, symvm.Options{})
	if res.Verdict != symvm.Feasible {
		t.Fatalf("halt unwind: %v %s", res.Verdict, res.Reason)
	}
	if res.Pre.Thread(1).State != coredump.ThreadRunnable {
		t.Error("unwound thread should be runnable")
	}
}

func TestDivSideConstraint(t *testing.T) {
	// A completed division implies a non-zero divisor; a post state where
	// the quotient disagrees with any legal divisor is infeasible.
	src := `
.global a 1
.global q 1
func main:
    loadg r1, &a
    const r2, 100
    div r3, r2, r1
    storeg r3, &q
    const r4, 0
    assert r4
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	_ = d
	res := backExec(t, p, snap, 0, 0, 4)
	// a == 0 in the dump, but then the division would have faulted: the
	// pre-value of a is read before any write, so it equals the dump's 0,
	// contradicting the side constraint divisor != 0.
	if res.Verdict == symvm.Feasible {
		chk := solver.Check(res.Pre.Cons(), solver.Options{})
		if chk.Verdict == solver.Sat {
			t.Fatalf("division by zero accepted as feasible")
		}
	}
}

func TestAllocUnwind(t *testing.T) {
	src := `
.global p 1
func main:
    const r1, 3
    alloc r2, r1
    storeg r2, &p
    const r3, 0
    assert r3
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	_ = d
	res := backExec(t, p, snap, 0, 0, 3)
	if res.Verdict != symvm.Feasible {
		t.Fatalf("%v: %s", res.Verdict, res.Reason)
	}
	if len(res.Pre.Heap) != 0 {
		t.Errorf("pre heap = %+v, want empty", res.Pre.Heap)
	}
	if res.Pre.HeapNext != p.Layout.HeapBase {
		t.Errorf("pre heapNext = %d, want %d", res.Pre.HeapNext, p.Layout.HeapBase)
	}
}

func TestLockUnwind(t *testing.T) {
	src := `
.global m 1
func main:
    const r1, &m
    lock r1
    const r2, 0
    assert r2
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	if _, held := d.Locks[16]; !held {
		t.Fatalf("mutex not held in dump: %v", d.Locks)
	}
	// The lock block is [lock] alone.
	var lockBlock *prog.Block
	for pc := range p.Code {
		if p.Code[pc].Op.String() == "lock" {
			lockBlock, _ = p.BlockAt(pc)
		}
	}
	res := backExec(t, p, snap, 0, lockBlock.Start, lockBlock.End)
	if res.Verdict != symvm.Feasible {
		t.Fatalf("%v: %s", res.Verdict, res.Reason)
	}
	if _, held := res.Pre.LockOwner(16); held {
		t.Error("mutex still held before its acquisition")
	}
}

func TestEmptyRangeWithFaultCons(t *testing.T) {
	// A fault on a block's first instruction yields an empty base range;
	// the fault constraint is still applied.
	src := `
func main:
    const r1, 0
    br r1, a, b
a:
    halt
b:
    load r2, r1, 0
    halt
`
	p, d, snap := crashSnap(t, src, vm.Config{})
	blk, _ := p.BlockAt(d.Fault.PC)
	if blk.Start != d.Fault.PC {
		t.Skip("fault not on a block leader")
	}
	res := symvm.BackExec(symvm.Req{
		P: p, Post: snap, Tid: 0, StartPC: blk.Start, EndPC: d.Fault.PC,
		Partial: true, SpawnChild: -1,
		FaultCons: func(regs [16]*symx.Expr) []solver.Constraint {
			return []solver.Constraint{solver.Eq(regs[1], symx.Const(0))}
		},
	}, symvm.Options{})
	if res.Verdict != symvm.Feasible {
		t.Fatalf("%v: %s", res.Verdict, res.Reason)
	}
}

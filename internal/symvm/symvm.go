// Package symvm implements the single-block backward step of reverse
// execution synthesis (§2.4 of the paper): given a post-state snapshot
// Spost and a candidate predecessor block B executed by thread t, it
// derives the hypothesis pre-state Spre by havocking everything B
// overwrites, executes B forward symbolically from Spre, and checks that
// the resulting state S' is an over-approximation of Spost — i.e. that the
// constraint system "S' matches Spost" is satisfiable.
//
// The paper's memory rules are implemented exactly:
//
//   - a write to address a records the written expression; the pre-value
//     of a becomes an unconstrained fresh symbol;
//   - a read from a returns the pending written expression if B already
//     wrote a; otherwise it returns a fresh pre-symbol which, unless a is
//     written later in B, is equated with Spost's value of a at the end
//     (that is the "take it directly from Spost" rule, routed through the
//     solver so it also works when Spost's value is itself symbolic).
//
// Register pre-values are symbols for the registers B writes and
// pass-throughs from Spost otherwise. Address expressions are resolved via
// a register-only pre-pass whose forced (logically implied) bindings
// recover things like stack-pointer arithmetic; remaining ambiguous
// addresses yield an honest Unknown verdict, mirroring the paper's
// deferred treatment of symbolic pointers.
package symvm

import (
	"fmt"
	"os"
	"sort"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
	"res/internal/solver"
	"res/internal/symstate"
	"res/internal/symx"
)

// Verdict classifies a backward-step attempt.
type Verdict uint8

const (
	Unknown Verdict = iota
	Feasible
	Infeasible
)

func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	}
	return "unknown"
}

// InputUse records one INPUT executed inside the block: the fresh symbol
// that stands for the external value consumed.
type InputUse struct {
	Var     symx.Var
	Channel int64
	PC      int
}

// OutputUse records one OUTPUT executed inside the block.
type OutputUse struct {
	PC    int
	Tag   int64
	Value *symx.Expr
}

// MemAccess records one resolved data memory access (the paper's §3.3
// read/write sets, which focus the developer's attention during replay).
type MemAccess struct {
	PC    int
	Addr  uint32
	Write bool
}

// Req describes one backward-step request.
type Req struct {
	P    *prog.Program
	Post *symstate.Snapshot
	Tid  int
	// Instruction range [StartPC, EndPC) to execute. For a full block this
	// is the whole block including its terminator; for the base-case
	// partial block it stops just before the faulting instruction.
	StartPC, EndPC int
	// Partial marks the base-case range (no terminator semantics).
	Partial bool
	// SpawnChild is the thread id being un-born when the range ends in
	// SPAWN; -1 otherwise.
	SpawnChild int
	// HaltStep marks the unwinding of an exited thread's final block.
	HaltStep bool
	// FaultCons, when non-nil, contributes extra constraints derived from
	// the failing instruction (e.g. "the faulting load's address equals
	// the fault address"), given the register state at the end of the
	// range.
	FaultCons func(finalRegs [isa.NumRegs]*symx.Expr) []solver.Constraint
}

// Options tunes the step.
type Options struct {
	Solver solver.Options
	// DisableProbe skips the register-only pre-pass (pass A) whose forced
	// bindings resolve stack-pointer-relative and other derived addresses.
	// Ablation knob: with the pass disabled, blocks that address memory
	// through havocked registers degrade to Unknown.
	DisableProbe bool
}

// Result is the outcome of a backward step.
type Result struct {
	Verdict     Verdict
	Reason      string
	Pre         *symstate.Snapshot // populated when Feasible
	FinalRegs   [isa.NumRegs]*symx.Expr
	Inputs      []InputUse
	Outputs     []OutputUse
	Accesses    []MemAccess
	SolverCalls int
}

type lockOp struct {
	addr   uint32
	unlock bool
}

type heapOp struct {
	free bool
	base uint32 // object base (alloc: assigned; free: resolved operand)
}

type exec struct {
	req  Req
	opt  Options
	pool *symx.Pool

	regs       [isa.NumRegs]*symx.Expr
	preRegVars map[isa.Reg]symx.Var
	writeSet   map[isa.Reg]bool

	writes map[uint32]*symx.Expr
	preMem map[uint32]symx.Var
	// eager maps addresses whose pre-value symbol was optimistically
	// equated with Spost's value at read time (so mid-block address
	// resolution can chase pointers). A later write to the address
	// retracts the constraint: the pre-value is then unconstrained.
	eager map[uint32]int

	cons    []solver.Constraint // side constraints gathered during execution
	inputs  []InputUse
	outputs []OutputUse
	access  []MemAccess

	lockOps []lockOp
	heapOps []heapOp
	// heapRun is the contiguous top-of-heap run of objects allocated by
	// this range, oldest first.
	heapRun []coredump.HeapObject

	forced      map[symx.Var]int64
	probe       bool
	solverCalls int
}

// BackExec performs one backward step.
func BackExec(req Req, opt Options) *Result {
	if req.Post.Thread(req.Tid) == nil {
		return &Result{Verdict: Infeasible, Reason: fmt.Sprintf("thread %d not live", req.Tid)}
	}
	if req.StartPC >= req.EndPC {
		// An empty range (fault on a block's first instruction) is a
		// no-op step: the pre-state is the post-state.
		r := &Result{Verdict: Feasible, Pre: req.Post.Clone()}
		t := req.Post.Thread(req.Tid)
		r.FinalRegs = t.Regs
		if req.FaultCons != nil {
			r.Pre.AddCons(req.FaultCons(t.Regs)...)
			// Check is incremental when the post snapshot carries a solver
			// session: only the fault constraints are propagated.
			chk := r.Pre.Check(opt.Solver)
			r.SolverCalls++
			if chk.Verdict == solver.Unsat {
				return &Result{Verdict: Infeasible, Reason: "fault condition unsatisfiable: " + chk.Reason, SolverCalls: r.SolverCalls}
			}
			if chk.Verdict == solver.Unknown {
				return &Result{Verdict: Unknown, Reason: chk.Reason, SolverCalls: r.SolverCalls}
			}
		}
		return r
	}

	// Pass A: register-only probe to learn forced pre-register bindings
	// (stack-pointer arithmetic and friends).
	var (
		forced      map[symx.Var]int64
		preRegVars  map[isa.Reg]symx.Var
		solverCalls int
	)
	if !opt.DisableProbe {
		probe := newExec(req, opt, true, nil)
		if res := probe.run(); res != nil {
			return res
		}
		// Incremental against the post snapshot's session when present:
		// only the probe's own constraints are propagated on top of the
		// already-solved history.
		pr := req.Post.CheckWith(opt.Solver, append(probe.postRegCons(), probe.cons...))
		if pr.Verdict == solver.Unsat {
			return &Result{Verdict: Infeasible, Reason: "register state contradiction: " + pr.Reason, SolverCalls: probe.solverCalls + 1}
		}
		forced = pr.Forced
		preRegVars = probe.preRegVars
		solverCalls = probe.solverCalls + 1
	}

	// Pass B: the real execution with forced bindings available for
	// address resolution.
	e := newExec(req, opt, false, forced)
	if preRegVars != nil {
		e.preRegVars = preRegVars // share pre-register symbols across passes
	}
	e.initRegs()
	e.solverCalls = solverCalls
	if res := e.run(); res != nil {
		return res
	}
	return e.finish()
}

func newExec(req Req, opt Options, probe bool, forced map[symx.Var]int64) *exec {
	e := &exec{
		req:        req,
		opt:        opt,
		pool:       req.Post.Pool,
		preRegVars: make(map[isa.Reg]symx.Var),
		writeSet:   make(map[isa.Reg]bool),
		writes:     make(map[uint32]*symx.Expr),
		preMem:     make(map[uint32]symx.Var),
		eager:      make(map[uint32]int),
		forced:     forced,
		probe:      probe,
	}
	for pc := req.StartPC; pc < req.EndPC; pc++ {
		if r, ok := req.P.Code[pc].WritesReg(); ok {
			e.writeSet[r] = true
		}
	}
	if probe {
		e.initRegs()
	}
	return e
}

// initRegs sets up the pre-state register file: fresh symbols for written
// registers, Spost pass-throughs otherwise.
func (e *exec) initRegs() {
	post := e.req.Post.Thread(e.req.Tid)
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.Reg(r)
		if e.writeSet[reg] {
			v, ok := e.preRegVars[reg]
			if !ok {
				v = e.pool.Fresh(fmt.Sprintf("t%d.%s@d%d", e.req.Tid, reg, e.req.Post.Depth+1))
				e.preRegVars[reg] = v
			}
			e.regs[r] = e.substForced(symx.VarExpr(v))
		} else {
			e.regs[r] = e.substForced(post.Regs[r])
		}
	}
}

// substForced rewrites variables with their forced (implied) values.
func (e *exec) substForced(x *symx.Expr) *symx.Expr {
	if e.forced == nil || !x.HasVars() {
		return x
	}
	vars := make(map[symx.Var]bool)
	x.Vars(vars)
	sub := make(map[symx.Var]*symx.Expr)
	for v := range vars {
		if c, ok := e.forced[v]; ok {
			sub[v] = symx.Const(c)
		}
	}
	if len(sub) == 0 {
		return x
	}
	return x.Subst(sub)
}

// run executes the instruction range. It returns a terminal Result on
// Infeasible/Unknown, nil to continue to finish().
func (e *exec) run() *Result {
	for pc := e.req.StartPC; pc < e.req.EndPC; pc++ {
		in := &e.req.P.Code[pc]
		if res := e.step(pc, in); res != nil {
			return res
		}
	}
	return nil
}

func (e *exec) fail(v Verdict, format string, args ...any) *Result {
	return &Result{Verdict: v, Reason: fmt.Sprintf(format, args...), SolverCalls: e.solverCalls}
}

// resolveAddr turns an address expression into a concrete word address.
func (e *exec) resolveAddr(x *symx.Expr, pc int) (uint32, *Result) {
	x = e.substForced(x)
	if c, ok := x.IsConst(); ok {
		lay := e.req.P.Layout
		if c < int64(lay.GlobalBase) || c >= int64(lay.MemSize) {
			// The block executed without faulting, so an illegal address
			// proves the candidate infeasible.
			return 0, e.fail(Infeasible, "pc %d: resolved address %d is illegal for a non-faulting block", pc, c)
		}
		return uint32(c), nil
	}
	if e.probe {
		return 0, e.fail(Unknown, "probe: symbolic address at pc %d", pc)
	}
	// Uniqueness resolution against the accumulated constraints,
	// incremental over the post snapshot's session when present.
	r1 := e.req.Post.CheckWith(e.opt.Solver, e.cons)
	e.solverCalls++
	if r1.Verdict == solver.Unsat {
		return 0, e.fail(Infeasible, "pc %d: path constraints unsatisfiable while resolving address", pc)
	}
	if r1.Verdict != solver.Sat {
		return 0, e.fail(Unknown, "pc %d: cannot resolve symbolic address %s", pc, x)
	}
	v1, ok := x.Eval(r1.Model)
	if !ok {
		return 0, e.fail(Unknown, "pc %d: address evaluation failed", pc)
	}
	ne := append(append([]solver.Constraint(nil), e.cons...), solver.Ne(x, symx.Const(v1)))
	r2 := e.req.Post.CheckWith(e.opt.Solver, ne)
	e.solverCalls++
	if r2.Verdict != solver.Unsat {
		return 0, e.fail(Unknown, "pc %d: ambiguous symbolic address %s", pc, x)
	}
	lay := e.req.P.Layout
	if v1 < int64(lay.GlobalBase) || v1 >= int64(lay.MemSize) {
		return 0, e.fail(Infeasible, "pc %d: unique address %d is illegal", pc, v1)
	}
	// Pin the address so later steps agree with the resolution.
	e.cons = append(e.cons, solver.Eq(x, symx.Const(v1)))
	return uint32(v1), nil
}

// readMem applies the paper's backward read rule at address a: pending
// in-block writes are forwarded; otherwise the read returns a pre-value
// symbol. The symbol is optimistically equated with Spost's value right
// away — the paper's "take the value directly from Spost" — and the
// equation is retracted if the block later overwrites the address.
func (e *exec) readMem(a uint32, pc int) *symx.Expr {
	e.access = append(e.access, MemAccess{PC: pc, Addr: a})
	if w, ok := e.writes[a]; ok {
		return w
	}
	if v, ok := e.preMem[a]; ok {
		return e.substForced(symx.VarExpr(v))
	}
	v := e.pool.Fresh(fmt.Sprintf("pre.m[%d]@d%d", a, e.req.Post.Depth+1))
	e.preMem[a] = v
	e.eager[a] = len(e.cons)
	e.cons = append(e.cons, solver.Eq(symx.VarExpr(v), e.req.Post.MemAt(a)))
	return e.substForced(symx.VarExpr(v))
}

// writeMem applies the backward write rule, retracting any optimistic
// pre-value equation for the overwritten address.
func (e *exec) writeMem(a uint32, val *symx.Expr, pc int) {
	e.access = append(e.access, MemAccess{PC: pc, Addr: a, Write: true})
	if idx, ok := e.eager[a]; ok {
		e.cons[idx] = solver.Eq(symx.Const(0), symx.Const(0))
		delete(e.eager, a)
	}
	e.writes[a] = val
}

// step executes one instruction symbolically.
func (e *exec) step(pc int, in *isa.Instr) *Result {
	r := &e.regs
	bin := func(op symx.Op) {
		r[in.Rd] = symx.Binary(op, r[in.Rs1], r[in.Rs2])
	}
	bini := func(op symx.Op) {
		r[in.Rd] = symx.Binary(op, r[in.Rs1], symx.Const(in.Imm))
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpConst:
		r[in.Rd] = symx.Const(in.Imm)
	case isa.OpMov:
		r[in.Rd] = r[in.Rs1]
	case isa.OpAdd:
		bin(symx.OpAdd)
	case isa.OpSub:
		bin(symx.OpSub)
	case isa.OpMul:
		bin(symx.OpMul)
	case isa.OpDiv:
		// The block completed, so the divisor was non-zero.
		e.cons = append(e.cons, solver.Ne(r[in.Rs2], symx.Const(0)))
		bin(symx.OpDiv)
	case isa.OpMod:
		e.cons = append(e.cons, solver.Ne(r[in.Rs2], symx.Const(0)))
		bin(symx.OpMod)
	case isa.OpAnd:
		bin(symx.OpAnd)
	case isa.OpOr:
		bin(symx.OpOr)
	case isa.OpXor:
		bin(symx.OpXor)
	case isa.OpShl:
		bin(symx.OpShl)
	case isa.OpShr:
		bin(symx.OpShr)
	case isa.OpAddI:
		bini(symx.OpAdd)
	case isa.OpMulI:
		bini(symx.OpMul)
	case isa.OpAndI:
		bini(symx.OpAnd)
	case isa.OpXorI:
		bini(symx.OpXor)
	case isa.OpNot:
		r[in.Rd] = symx.Unary(symx.OpNot, r[in.Rs1])
	case isa.OpNeg:
		r[in.Rd] = symx.Unary(symx.OpNeg, r[in.Rs1])
	case isa.OpCmpEq:
		bin(symx.OpEq)
	case isa.OpCmpNe:
		bin(symx.OpNe)
	case isa.OpCmpLt:
		bin(symx.OpLt)
	case isa.OpCmpLe:
		bin(symx.OpLe)

	case isa.OpLoad, isa.OpLoadG:
		if e.probe {
			// Probe mode: the read value is an opaque fresh symbol and the
			// address is not resolved; register dataflow is all pass A
			// needs.
			r[in.Rd] = e.pool.FreshExpr(fmt.Sprintf("probe.m@pc%d", pc))
			break
		}
		addrExpr := symx.Const(in.Imm)
		if in.Op == isa.OpLoad {
			addrExpr = symx.Binary(symx.OpAdd, r[in.Rs1], symx.Const(in.Imm))
		}
		a, res := e.resolveAddr(addrExpr, pc)
		if res != nil {
			return res
		}
		r[in.Rd] = e.readMem(a, pc)
	case isa.OpStore, isa.OpStoreG:
		if e.probe {
			break
		}
		addrExpr := symx.Const(in.Imm)
		val := r[in.Rs1]
		if in.Op == isa.OpStore {
			addrExpr = symx.Binary(symx.OpAdd, r[in.Rs1], symx.Const(in.Imm))
			val = r[in.Rs2]
		}
		a, res := e.resolveAddr(addrExpr, pc)
		if res != nil {
			return res
		}
		e.writeMem(a, val, pc)

	case isa.OpJmp:
		if !e.req.Partial && e.postPC() != in.Target {
			return e.fail(Infeasible, "jmp at %d targets %d, post pc is %d", pc, in.Target, e.postPC())
		}
	case isa.OpBr:
		if e.req.Partial {
			break
		}
		postPC := e.postPC()
		switch {
		case postPC == in.Target && postPC == in.Target2:
			// Either direction reaches the successor: no constraint.
		case postPC == in.Target:
			e.cons = append(e.cons, solver.Truthy(r[in.Rs1]))
		case postPC == in.Target2:
			e.cons = append(e.cons, solver.Falsy(r[in.Rs1]))
		default:
			return e.fail(Infeasible, "br at %d cannot reach post pc %d", pc, postPC)
		}
	case isa.OpCall:
		if !e.req.Partial && e.postPC() != in.Target {
			return e.fail(Infeasible, "call at %d targets %d, post pc is %d", pc, in.Target, e.postPC())
		}
		spExpr := symx.Binary(symx.OpAdd, r[isa.SP], symx.Const(-1))
		if !e.probe {
			a, res := e.resolveAddr(spExpr, pc)
			if res != nil {
				return res
			}
			e.writeMem(a, symx.Const(int64(pc+1)), pc)
		}
		r[isa.SP] = spExpr
	case isa.OpRet:
		if !e.probe {
			a, res := e.resolveAddr(r[isa.SP], pc)
			if res != nil {
				return res
			}
			if !e.req.Partial {
				retVal := e.readMem(a, pc)
				e.cons = append(e.cons, solver.Eq(retVal, symx.Const(int64(e.postPC()))))
			}
		}
		r[isa.SP] = symx.Binary(symx.OpAdd, r[isa.SP], symx.Const(1))

	case isa.OpAlloc:
		if e.probe {
			r[in.Rd] = e.pool.FreshExpr("probe.alloc")
			break
		}
		obj, res := e.popHeapTop(pc)
		if res != nil {
			return res
		}
		e.cons = append(e.cons, solver.Eq(r[in.Rs1], symx.Const(int64(obj.Size))))
		r[in.Rd] = symx.Const(int64(obj.Base))
		e.heapOps = append(e.heapOps, heapOp{base: obj.Base})
	case isa.OpFree:
		if e.probe {
			break
		}
		a, res := e.resolveAddr(r[in.Rs1], pc)
		if res != nil {
			return res
		}
		e.heapOps = append(e.heapOps, heapOp{free: true, base: a})

	case isa.OpSpawn:
		// Semantics handled in finish(); requires SpawnChild.
		if !e.req.Partial && e.req.SpawnChild < 0 {
			return e.fail(Infeasible, "spawn at %d without child to unwind", pc)
		}
	case isa.OpYield:
		// No effect.
	case isa.OpLock:
		if e.probe {
			break
		}
		a, res := e.resolveAddr(r[in.Rs1], pc)
		if res != nil {
			return res
		}
		e.lockOps = append(e.lockOps, lockOp{addr: a})
	case isa.OpUnlock:
		if e.probe {
			break
		}
		a, res := e.resolveAddr(r[in.Rs1], pc)
		if res != nil {
			return res
		}
		e.lockOps = append(e.lockOps, lockOp{addr: a, unlock: true})

	case isa.OpInput:
		v := e.pool.Fresh(fmt.Sprintf("input.ch%d@pc%d.d%d", in.Imm, pc, e.req.Post.Depth+1))
		if !e.probe {
			e.inputs = append(e.inputs, InputUse{Var: v, Channel: in.Imm, PC: pc})
		}
		r[in.Rd] = symx.VarExpr(v)
	case isa.OpOutput:
		if !e.probe {
			e.outputs = append(e.outputs, OutputUse{PC: pc, Tag: in.Imm, Value: r[in.Rs1]})
		}
	case isa.OpAssert:
		// The block completed, so the assertion held.
		e.cons = append(e.cons, solver.Truthy(r[in.Rs1]))
	case isa.OpHalt:
		if !e.req.HaltStep && !e.req.Partial {
			return e.fail(Infeasible, "halt at %d outside a halt-unwind step", pc)
		}
	default:
		return e.fail(Unknown, "unhandled opcode %v at %d", in.Op, pc)
	}
	return nil
}

func (e *exec) postPC() int { return e.req.Post.Thread(e.req.Tid).PC }

// popHeapTop returns the next object being un-allocated. The range's
// allocations form a contiguous run at the top of the bump-allocated heap
// (the run ends at Spost's bump pointer); allocations execute forward, so
// the i-th ALLOC of the range claims the i-th object of the run.
func (e *exec) popHeapTop(pc int) (coredump.HeapObject, *Result) {
	if e.heapRun == nil {
		n := 0
		for p := e.req.StartPC; p < e.req.EndPC; p++ {
			if e.req.P.Code[p].Op == isa.OpAlloc {
				n++
			}
		}
		run := make([]coredump.HeapObject, 0, n)
		end := e.req.Post.HeapNext
		for len(run) < n {
			found := false
			for _, h := range e.req.Post.Heap {
				if h.Base+h.Size == end {
					run = append([]coredump.HeapObject{h}, run...)
					end = h.Base - prog.HeapRedzone
					found = true
					break
				}
			}
			if !found {
				return coredump.HeapObject{}, e.fail(Infeasible, "pc %d: heap lacks %d trailing allocations", pc, n)
			}
		}
		e.heapRun = run
	}
	idx := 0
	for _, op := range e.heapOps {
		if !op.free {
			idx++
		}
	}
	if idx >= len(e.heapRun) {
		return coredump.HeapObject{}, e.fail(Infeasible, "pc %d: more allocs than heap run", pc)
	}
	return e.heapRun[idx], nil
}

// postRegCons builds the register compatibility constraints: the final
// value of every written register must match Spost.
func (e *exec) postRegCons() []solver.Constraint {
	post := e.req.Post.Thread(e.req.Tid)
	var out []solver.Constraint
	for r := 0; r < isa.NumRegs; r++ {
		if e.writeSet[isa.Reg(r)] {
			out = append(out, solver.Eq(e.regs[r], post.Regs[r]))
		}
	}
	return out
}

// sortedAddrs returns the keys of an address-keyed map in ascending
// order, so constraint emission is deterministic run to run.
func sortedAddrs[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// finish assembles the step's added constraints (the compatibility system
// minus the already-solved history), checks them incrementally against
// the post snapshot's solver session, and on success constructs the
// pre-state snapshot as a copy-on-write layer over Spost.
func (e *exec) finish() *Result {
	req := e.req
	post := req.Post

	// The constraints this step adds on top of post's accumulated set.
	// Map-derived segments are emitted in sorted order so the system — and
	// therefore every solver decision downstream — is deterministic.
	added := e.postRegCons()
	for _, a := range sortedAddrs(e.writes) {
		added = append(added, solver.Eq(e.writes[a], post.MemAt(a)))
	}
	for _, a := range sortedAddrs(e.preMem) {
		if _, written := e.writes[a]; !written {
			if _, hasEager := e.eager[a]; !hasEager {
				added = append(added, solver.Eq(symx.VarExpr(e.preMem[a]), post.MemAt(a)))
			}
		}
	}
	added = append(added, e.cons...)
	// Forced bindings are implied by the pass-A subset of this system;
	// asserting them keeps the substituted system equisatisfiable.
	forcedVars := make([]symx.Var, 0, len(e.forced))
	for v := range e.forced {
		forcedVars = append(forcedVars, v)
	}
	sort.Slice(forcedVars, func(i, j int) bool { return forcedVars[i] < forcedVars[j] })
	for _, v := range forcedVars {
		added = append(added, solver.Eq(symx.VarExpr(v), symx.Const(e.forced[v])))
	}
	if req.FaultCons != nil {
		added = append(added, req.FaultCons(e.regs)...)
	}

	// Spawn terminator: the child's register file at Spost must be the
	// fresh-thread state the SPAWN created.
	if req.SpawnChild >= 0 {
		child := post.Thread(req.SpawnChild)
		if child == nil {
			return e.fail(Infeasible, "spawn child %d not live", req.SpawnChild)
		}
		term := &req.P.Code[req.EndPC-1]
		if term.Op != isa.OpSpawn {
			return e.fail(Infeasible, "spawn-unwind step does not end in spawn")
		}
		if child.PC != term.Target {
			return e.fail(Infeasible, "child pc %d is not at spawn target %d", child.PC, term.Target)
		}
		for r := 0; r < isa.NumRegs; r++ {
			switch isa.Reg(r) {
			case 0:
				added = append(added, solver.Eq(e.regs[term.Rs1], child.Regs[0]))
			case isa.SP:
				top := req.P.Layout.StackTop(req.SpawnChild)
				added = append(added, solver.Eq(symx.Const(int64(top)), child.Regs[isa.SP]))
			default:
				added = append(added, solver.Eq(symx.Const(0), child.Regs[r]))
			}
		}
	}

	// Lock-table reconstruction, applied in reverse over the recorded
	// operations. Only the changed addresses are tracked (the pre snapshot
	// layers them over post); a nil entry means freed.
	lockChanges := make(map[uint32]*int)
	lockOwner := func(a uint32) (int, bool) {
		if o, ok := lockChanges[a]; ok {
			if o == nil {
				return 0, false
			}
			return *o, true
		}
		return post.LockOwner(a)
	}
	for i := len(e.lockOps) - 1; i >= 0; i-- {
		op := e.lockOps[i]
		owner, held := lockOwner(op.addr)
		if op.unlock {
			// Reverse of unlock: the mutex must be free after, held before.
			if held {
				return e.fail(Infeasible, "unlock of %d but mutex still held by t%d at post", op.addr, owner)
			}
			tid := req.Tid
			lockChanges[op.addr] = &tid
		} else {
			// Reverse of lock: held by tid after, free before.
			if !held || owner != req.Tid {
				return e.fail(Infeasible, "lock of %d not reflected in post lock table", op.addr)
			}
			lockChanges[op.addr] = nil
		}
	}

	preHeap := post.Heap
	preHeapNext := post.HeapNext
	if len(e.heapOps) > 0 {
		preHeap = append([]coredump.HeapObject(nil), post.Heap...)
		for i := len(e.heapOps) - 1; i >= 0; i-- {
			op := e.heapOps[i]
			if op.free {
				found := false
				for j := range preHeap {
					if preHeap[j].Base == op.base {
						if !preHeap[j].Freed {
							return e.fail(Infeasible, "free of %d but object live at post", op.base)
						}
						preHeap[j].Freed = false
						preHeap[j].FreePC = -1
						found = true
						break
					}
				}
				if !found {
					return e.fail(Infeasible, "free of %d with no allocator record", op.base)
				}
			} else {
				// Reverse of alloc: remove the object; the bump pointer
				// retreats to its base.
				idx := -1
				for j := range preHeap {
					if preHeap[j].Base == op.base {
						idx = j
						break
					}
				}
				if idx < 0 {
					return e.fail(Infeasible, "alloc of %d with no allocator record", op.base)
				}
				preHeap = append(preHeap[:idx], preHeap[idx+1:]...)
				preHeapNext = op.base - prog.HeapRedzone
			}
		}
	}

	// Build Spre as a copy-on-write layer and check the added constraints.
	// With a session on post this propagates only `added`; without one it
	// falls back to a from-scratch solve of the flattened chain.
	pre := post.Clone()
	pre.Depth++
	pre.AddCons(added...)
	if os.Getenv("RES_DEBUG_CONS") != "" {
		for _, c := range pre.Cons() {
			fmt.Println("  cons:", c)
		}
	}
	chk := pre.Check(e.opt.Solver)
	e.solverCalls++
	switch chk.Verdict {
	case solver.Unsat:
		return e.fail(Infeasible, "incompatible with Spost: %s", chk.Reason)
	case solver.Unknown:
		return e.fail(Unknown, "solver: %s", chk.Reason)
	}

	for a, o := range lockChanges {
		if o == nil {
			pre.DeleteLock(a)
		} else {
			pre.SetLock(a, *o)
		}
	}
	pre.Heap = preHeap
	pre.HeapNext = preHeapNext
	for _, a := range sortedAddrs(e.writes) {
		if v, ok := e.preMem[a]; ok {
			pre.SetMem(a, symx.VarExpr(v))
		} else {
			pre.SetMem(a, e.pool.FreshExpr(fmt.Sprintf("pre.m[%d]@d%d", a, pre.Depth)))
		}
	}
	for a, v := range e.preMem {
		if _, written := e.writes[a]; !written {
			pre.SetMem(a, symx.VarExpr(v))
		}
	}
	t := pre.MutableThread(req.Tid)
	for r := 0; r < isa.NumRegs; r++ {
		if e.writeSet[isa.Reg(r)] {
			t.Regs[r] = symx.VarExpr(e.preRegVars[isa.Reg(r)])
		}
	}
	t.PC = req.StartPC
	t.State = coredump.ThreadRunnable
	t.WaitAddr = 0
	if req.SpawnChild >= 0 {
		pre.DeleteThread(req.SpawnChild)
	}

	return &Result{
		Verdict:     Feasible,
		Pre:         pre,
		FinalRegs:   e.regs,
		Inputs:      e.inputs,
		Outputs:     e.outputs,
		Accesses:    e.access,
		SolverCalls: e.solverCalls,
	}
}

package cli

import (
	"os"
	"path/filepath"
	"testing"

	"res/internal/vm"
)

func TestParseInputs(t *testing.T) {
	got, err := ParseInputs([]string{"0=1,2,3", "5=-7", "0=4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 4 || got[0][3] != 4 {
		t.Errorf("channel 0 = %v", got[0])
	}
	if len(got[5]) != 1 || got[5][0] != -7 {
		t.Errorf("channel 5 = %v", got[5])
	}
	if m, err := ParseInputs(nil); err != nil || m != nil {
		t.Errorf("empty specs = %v, %v", m, err)
	}
	for _, bad := range []string{"nospec", "x=1", "0=a"} {
		if _, err := ParseInputs([]string{bad}); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Hex and whitespace.
	got, err = ParseInputs([]string{"0x10 = 0x20 , 2"})
	if err != nil || got[16][0] != 32 || got[16][1] != 2 {
		t.Errorf("hex spec = %v, %v", got, err)
	}
}

func TestInputSpecsFlag(t *testing.T) {
	var s InputSpecs
	if err := s.Set("0=1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("1=2"); err != nil {
		t.Fatal(err)
	}
	if s.String() != "0=1;1=2" {
		t.Errorf("String = %q", s.String())
	}
}

func TestLoadProgramAndDumpRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := `
func main:
    const r1, 0
    assert r1
    halt
`
	progPath := filepath.Join(dir, "p.s")
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(progPath)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Run()
	if err != nil || d == nil {
		t.Fatalf("run: %v %v", d, err)
	}
	dumpPath := filepath.Join(dir, "core.dump")
	if err := SaveDump(dumpPath, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDump(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault != d.Fault {
		t.Errorf("fault round trip: %v vs %v", got.Fault, d.Fault)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadProgram("/nonexistent/x.s"); err == nil {
		t.Error("missing program accepted")
	}
	if _, err := LoadDump("/nonexistent/x.dump"); err == nil {
		t.Error("missing dump accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	os.WriteFile(bad, []byte("func main:\n frobnicate\n"), 0o644)
	if _, err := LoadProgram(bad); err == nil {
		t.Error("bad assembly accepted")
	}
}

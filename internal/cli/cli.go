// Package cli holds the small helpers shared by the command-line tools:
// parsing of input-channel specs, dump/program loading, and uniform error
// reporting.
package cli

import (
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"strings"

	"res/internal/asm"
	"res/internal/coredump"
	"res/internal/obs"
	"res/internal/prog"
)

// VersionString is the uniform -version output for every tool: the build
// version (stamped at link time via
// -ldflags "-X res/internal/obs.Version=v1.2.3") and the Go toolchain.
func VersionString(tool string) string {
	return fmt.Sprintf("%s %s (%s)", tool, obs.Version, runtime.Version())
}

// ParseInputs parses repeated "-input ch=v1,v2,..." specs into the VM's
// input map.
func ParseInputs(specs []string) (map[int64][]int64, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make(map[int64][]int64)
	for _, spec := range specs {
		ch, vals, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("input spec %q: want ch=v1,v2,...", spec)
		}
		c, err := strconv.ParseInt(strings.TrimSpace(ch), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("input spec %q: bad channel: %v", spec, err)
		}
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				continue
			}
			x, err := strconv.ParseInt(v, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("input spec %q: bad value %q: %v", spec, v, err)
			}
			out[c] = append(out[c], x)
		}
	}
	return out, nil
}

// InputSpecs is a repeatable string flag.
type InputSpecs []string

func (s *InputSpecs) String() string { return strings.Join(*s, ";") }

// Set appends one occurrence of the flag.
func (s *InputSpecs) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// LoadProgram assembles a program from a source file.
func LoadProgram(path string) (*prog.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// LoadDump reads a serialized coredump. Files in the attachment
// container form are accepted; their attachments are ignored (use
// LoadDumpEvidence to keep them).
func LoadDump(path string) (*coredump.Dump, error) {
	d, _, err := LoadDumpEvidence(path)
	return d, err
}

// LoadDumpEvidence reads a coredump file in either the plain or the
// attachment-container form and returns the dump together with its
// evidence attachment's wire bytes (nil when the file carries none).
func LoadDumpEvidence(path string) (*coredump.Dump, []byte, error) {
	d, ev, _, err := LoadDumpAttachments(path)
	return d, ev, err
}

// LoadDumpAttachments reads a coredump file in either the plain or the
// attachment-container form and returns the dump together with its
// evidence and checkpoint attachments' wire bytes (nil when the file
// carries none). A container whose attachment area is damaged degrades:
// the dump still loads, the attachments are dropped with a warning on
// stderr — a corrupt sidecar must not make the crash dump unreadable.
func LoadDumpAttachments(path string) (d *coredump.Dump, evidence, checkpoints []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	dumpBytes, att, warn, err := coredump.DecodeAttachedLenient(b)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if warn != "" {
		fmt.Fprintf(os.Stderr, "warning: %s: %s\n", path, warn)
	}
	d, err = coredump.Unmarshal(dumpBytes)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, att[coredump.EvidenceAttachment], att[coredump.CheckpointAttachment], nil
}

// SplitDumpFile reads a coredump file and returns its raw dump bytes and
// evidence and checkpoint attachment bytes without decoding the dump —
// the shape remote submission ships over the wire. Damaged attachment
// areas degrade the same way LoadDumpAttachments does.
func SplitDumpFile(path string) (dump, evidence, checkpoints []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	dumpBytes, att, warn, err := coredump.DecodeAttachedLenient(b)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if warn != "" {
		fmt.Fprintf(os.Stderr, "warning: %s: %s\n", path, warn)
	}
	return dumpBytes, att[coredump.EvidenceAttachment], att[coredump.CheckpointAttachment], nil
}

// SaveDump writes a coredump to a file.
func SaveDump(path string, d *coredump.Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fatal prints an error and exits non-zero.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

// LogFormatUsage is the shared -log-format flag help text.
const LogFormatUsage = "structured log format: text or json"

// SetupLogging installs the process-wide structured logger: slog to
// stderr in the given format ("text" or "json"; "" = text), every record
// tagged with the node identity when non-empty, and warn-or-worse
// records teed into the flight recorder when one is supplied. Every
// binary calls this right after flag parsing so all subsequent output
// is uniformly structured.
func SetupLogging(format, node string, fr *obs.FlightRecorder) error {
	logger, err := obs.NewLogger(format, os.Stderr, node, fr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	return nil
}

package solver

import (
	"math/rand"
	"sync"
	"testing"

	"res/internal/symx"
)

func check(t *testing.T, cs []Constraint) Result {
	t.Helper()
	return Check(cs, DefaultOptions())
}

func mustSat(t *testing.T, cs []Constraint) symx.Model {
	t.Helper()
	res := check(t, cs)
	if res.Verdict != Sat {
		t.Fatalf("verdict = %v (%s), want sat for %s", res.Verdict, res.Reason, String(cs))
	}
	for _, c := range cs {
		ok, def := c.Holds(res.Model)
		if !def || !ok {
			t.Fatalf("model %v violates %s", res.Model, c)
		}
	}
	return res.Model
}

func mustUnsat(t *testing.T, cs []Constraint) {
	t.Helper()
	res := check(t, cs)
	if res.Verdict != Unsat {
		t.Fatalf("verdict = %v, want unsat for %s (model %v)", res.Verdict, String(cs), res.Model)
	}
}

func TestGroundConstraints(t *testing.T) {
	mustSat(t, []Constraint{Eq(symx.Const(3), symx.Const(3))})
	mustUnsat(t, []Constraint{Eq(symx.Const(3), symx.Const(4))})
	mustSat(t, []Constraint{Lt(symx.Const(1), symx.Const(2))})
	mustUnsat(t, []Constraint{Lt(symx.Const(2), symx.Const(1))})
	mustSat(t, []Constraint{Ne(symx.Const(1), symx.Const(2))})
}

func TestSimpleBinding(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{Eq(symx.VarExpr(x), symx.Const(42))})
	if m[x] != 42 {
		t.Errorf("x = %d", m[x])
	}
}

func TestConflictingBindings(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	mustUnsat(t, []Constraint{
		Eq(symx.VarExpr(x), symx.Const(1)),
		Eq(symx.VarExpr(x), symx.Const(2)),
	})
}

func TestAdditionInversion(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// x + 5 == 12  =>  x == 7
	m := mustSat(t, []Constraint{Eq(symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.Const(5)), symx.Const(12))})
	if m[x] != 7 {
		t.Errorf("x = %d, want 7", m[x])
	}
	// 5 - x == 12 => x == -7
	m = mustSat(t, []Constraint{Eq(symx.Binary(symx.OpSub, symx.Const(5), symx.VarExpr(x)), symx.Const(12))})
	if m[x] != -7 {
		t.Errorf("x = %d, want -7", m[x])
	}
}

func TestXorNegNotInversion(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{Eq(symx.Binary(symx.OpXor, symx.VarExpr(x), symx.Const(0xff)), symx.Const(0x0f))})
	if m[x] != 0xf0 {
		t.Errorf("x = %#x, want 0xf0", m[x])
	}
	m = mustSat(t, []Constraint{Eq(symx.Unary(symx.OpNeg, symx.VarExpr(x)), symx.Const(9))})
	if m[x] != -9 {
		t.Errorf("x = %d, want -9", m[x])
	}
	m = mustSat(t, []Constraint{Eq(symx.Unary(symx.OpNot, symx.VarExpr(x)), symx.Const(0))})
	if m[x] != -1 {
		t.Errorf("x = %d, want -1", m[x])
	}
}

func TestMulInversionOdd(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// 3*x == 21 => x == 7 (3 is odd: fully invertible mod 2^64)
	m := mustSat(t, []Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(3)), symx.Const(21))})
	if m[x] != 7 {
		t.Errorf("x = %d, want 7", m[x])
	}
}

func TestMulInversionEvenParity(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// 4*x == 6 is unsatisfiable over 64-bit words (parity).
	mustUnsat(t, []Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(4)), symx.Const(6))})
	// 4*x == 8 is satisfiable (x=2 among others).
	m := mustSat(t, []Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(4)), symx.Const(8))})
	if got, _ := symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(4)).Eval(m); got != 8 {
		t.Errorf("4*x = %d under model, want 8", got)
	}
}

func TestMulZeroCases(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	_ = x
	// 0*x == 0 simplifies away at construction; build with explicit Expr
	// to hit the solver path: Binary simplifies, so this is ground sat.
	mustSat(t, []Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(0)), symx.Const(0))})
	mustUnsat(t, []Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(0)), symx.Const(5))})
}

func TestComparisonDecomposition(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// (x == 9) == 1  =>  x == 9
	cmp := symx.Binary(symx.OpEq, symx.VarExpr(x), symx.Const(9))
	m := mustSat(t, []Constraint{Eq(cmp, symx.Const(1))})
	if m[x] != 9 {
		t.Errorf("x = %d, want 9", m[x])
	}
	// (x == 9) == 0  =>  x != 9
	m = mustSat(t, []Constraint{Eq(cmp, symx.Const(0))})
	if m[x] == 9 {
		t.Error("x should differ from 9")
	}
	// (x < 5) == 1 together with x > 3 pins x == 4.
	lt := symx.Binary(symx.OpLt, symx.VarExpr(x), symx.Const(5))
	m = mustSat(t, []Constraint{
		Eq(lt, symx.Const(1)),
		Lt(symx.Const(3), symx.VarExpr(x)),
	})
	if m[x] != 4 {
		t.Errorf("x = %d, want 4", m[x])
	}
	// Comparison equated to 7: impossible.
	mustUnsat(t, []Constraint{Eq(cmp, symx.Const(7))})
}

func TestChainedInversion(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// ((x * 3) + 4) ^ 5 == ((10*3)+4)^5  =>  x == 10
	build := func(e *symx.Expr) *symx.Expr {
		return symx.Binary(symx.OpXor,
			symx.Binary(symx.OpAdd, symx.Binary(symx.OpMul, e, symx.Const(3)), symx.Const(4)),
			symx.Const(5))
	}
	want, _ := build(symx.Const(10)).IsConst()
	m := mustSat(t, []Constraint{Eq(build(symx.VarExpr(x)), symx.Const(want))})
	if m[x] != 10 {
		t.Errorf("x = %d, want 10", m[x])
	}
}

func TestDefinitionsAndSubstitution(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	y := p.Fresh("y")
	// x == y + 1, y == 5  =>  x == 6
	m := mustSat(t, []Constraint{
		Eq(symx.VarExpr(x), symx.Binary(symx.OpAdd, symx.VarExpr(y), symx.Const(1))),
		Eq(symx.VarExpr(y), symx.Const(5)),
	})
	if m[x] != 6 || m[y] != 5 {
		t.Errorf("x=%d y=%d", m[x], m[y])
	}
}

func TestDefinitionChain(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	y := p.Fresh("y")
	z := p.Fresh("z")
	m := mustSat(t, []Constraint{
		Eq(symx.VarExpr(x), symx.Binary(symx.OpAdd, symx.VarExpr(y), symx.Const(1))),
		Eq(symx.VarExpr(y), symx.Binary(symx.OpMul, symx.VarExpr(z), symx.Const(2))),
		Eq(symx.VarExpr(z), symx.Const(10)),
	})
	if m[z] != 10 || m[y] != 20 || m[x] != 21 {
		t.Errorf("x=%d y=%d z=%d", m[x], m[y], m[z])
	}
}

func TestSelfReferenceUnsatisfiable(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// x == x + 1: no solution; the solver may return Unsat or Unknown but
	// never Sat.
	res := check(t, []Constraint{Eq(symx.VarExpr(x), symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.Const(1)))})
	if res.Verdict == Sat {
		t.Fatalf("x == x+1 declared sat with model %v", res.Model)
	}
}

func TestIntervalPropagation(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	// 3 <= x <= 3 pins x.
	m := mustSat(t, []Constraint{
		Le(symx.Const(3), symx.VarExpr(x)),
		Le(symx.VarExpr(x), symx.Const(3)),
	})
	if m[x] != 3 {
		t.Errorf("x = %d, want 3", m[x])
	}
	// Empty interval.
	mustUnsat(t, []Constraint{
		Lt(symx.Const(5), symx.VarExpr(x)),
		Lt(symx.VarExpr(x), symx.Const(5)),
	})
	// Interval conflicts with binding.
	mustUnsat(t, []Constraint{
		Eq(symx.VarExpr(x), symx.Const(10)),
		Lt(symx.VarExpr(x), symx.Const(5)),
	})
}

func TestNeWithSearch(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{
		Le(symx.Const(0), symx.VarExpr(x)),
		Le(symx.VarExpr(x), symx.Const(1)),
		Ne(symx.VarExpr(x), symx.Const(0)),
	})
	if m[x] != 1 {
		t.Errorf("x = %d, want 1", m[x])
	}
	// x in [0,0] and x != 0: exhaustively unsat.
	mustUnsat(t, []Constraint{
		Le(symx.Const(0), symx.VarExpr(x)),
		Le(symx.VarExpr(x), symx.Const(0)),
		Ne(symx.VarExpr(x), symx.Const(0)),
	})
}

func TestTwoVariableSearch(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	y := p.Fresh("y")
	// x + y == 10, x == y: propagation defines x := y... then y+y==10 has
	// a mul-by-2 form; searchable.
	m := mustSat(t, []Constraint{
		Eq(symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.VarExpr(y)), symx.Const(10)),
		Eq(symx.VarExpr(x), symx.VarExpr(y)),
	})
	if m[x]+m[y] != 10 || m[x] != m[y] {
		t.Errorf("x=%d y=%d", m[x], m[y])
	}
}

func TestTruthyFalsy(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{Truthy(symx.Binary(symx.OpLt, symx.VarExpr(x), symx.Const(0)))})
	if m[x] >= 0 {
		t.Errorf("x = %d, want negative", m[x])
	}
	m = mustSat(t, []Constraint{Falsy(symx.Binary(symx.OpLt, symx.VarExpr(x), symx.Const(0)))})
	if m[x] < 0 {
		t.Errorf("x = %d, want non-negative", m[x])
	}
}

func TestModelDefaultsUnconstrained(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	y := p.Fresh("y")
	m := mustSat(t, []Constraint{Eq(symx.VarExpr(x), symx.Const(1))})
	if m[y] != 0 {
		t.Errorf("unconstrained y = %d, want 0 default", m[y])
	}
}

func TestUnsatReasonNonEmpty(t *testing.T) {
	res := check(t, []Constraint{Eq(symx.Const(1), symx.Const(2))})
	if res.Verdict != Unsat || res.Reason == "" {
		t.Errorf("res = %+v", res)
	}
}

// Property test: random linear chains are always solved exactly.
func TestQuickLinearChainsSolved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		p := symx.NewPool()
		x := p.Fresh("x")
		secret := rng.Int63n(2000) - 1000
		e := symx.VarExpr(x)
		ops := []symx.Op{symx.OpAdd, symx.OpXor, symx.OpSub}
		for i := 0; i < 1+rng.Intn(6); i++ {
			op := ops[rng.Intn(len(ops))]
			c := symx.Const(rng.Int63n(100) - 50)
			e = symx.Binary(op, e, c)
		}
		want, _ := e.Subst(map[symx.Var]*symx.Expr{x: symx.Const(secret)}).IsConst()
		res := check(t, []Constraint{Eq(e, symx.Const(want))})
		if res.Verdict != Sat {
			t.Fatalf("trial %d: %v (%s)", trial, res.Verdict, res.Reason)
		}
		if res.Model[x] != secret {
			// Some chains (xor with overlapping adds) may admit multiple
			// solutions; verify semantically instead of syntactically.
			got, _ := e.Eval(res.Model)
			if got != want {
				t.Fatalf("trial %d: model does not reproduce target", trial)
			}
		}
	}
}

// Property: solver never returns Sat for constraints that are ground-false
// after substituting its own model (soundness of the recheck).
func TestQuickSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		p := symx.NewPool()
		nv := 1 + rng.Intn(3)
		vars := make([]symx.Var, nv)
		for i := range vars {
			vars[i] = p.Fresh("v")
		}
		var cs []Constraint
		for i := 0; i < 1+rng.Intn(4); i++ {
			v := symx.VarExpr(vars[rng.Intn(nv)])
			c := symx.Const(rng.Int63n(20) - 10)
			switch rng.Intn(4) {
			case 0:
				cs = append(cs, Eq(symx.Binary(symx.OpAdd, v, symx.Const(rng.Int63n(5))), c))
			case 1:
				cs = append(cs, Ne(v, c))
			case 2:
				cs = append(cs, Lt(v, c))
			case 3:
				cs = append(cs, Le(c, v))
			}
		}
		res := check(t, cs)
		if res.Verdict == Sat {
			for _, c := range cs {
				ok, def := c.Holds(res.Model)
				if !def || !ok {
					t.Fatalf("trial %d: sat model violates %s", trial, c)
				}
			}
		}
	}
}

func TestShiftNotUnsoundlyInverted(t *testing.T) {
	// x << 3 == 8 has many solutions (high bits lost); the solver must
	// find one but never prove uniqueness it does not have.
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{Eq(symx.Binary(symx.OpShl, symx.VarExpr(x), symx.Const(3)), symx.Const(8))})
	if got, _ := symx.Binary(symx.OpShl, symx.VarExpr(x), symx.Const(3)).Eval(m); got != 8 {
		t.Errorf("model does not satisfy the shift: %d", got)
	}
}

func TestDivisionConstraintSatisfiable(t *testing.T) {
	// 100 / x == 20 with x in a small interval.
	p := symx.NewPool()
	x := p.Fresh("x")
	m := mustSat(t, []Constraint{
		Eq(symx.Binary(symx.OpDiv, symx.Const(100), symx.VarExpr(x)), symx.Const(20)),
		Le(symx.Const(1), symx.VarExpr(x)),
		Le(symx.VarExpr(x), symx.Const(10)),
	})
	if m[x] != 5 {
		t.Errorf("x = %d, want 5", m[x])
	}
}

func TestDivisionByZeroNeverSat(t *testing.T) {
	// x == 0 together with 1/x == anything is undefined, never Sat.
	p := symx.NewPool()
	x := p.Fresh("x")
	res := check(t, []Constraint{
		Eq(symx.VarExpr(x), symx.Const(0)),
		Eq(symx.Binary(symx.OpDiv, symx.Const(1), symx.VarExpr(x)), symx.Const(1)),
	})
	if res.Verdict == Sat {
		t.Fatalf("division by zero declared sat: %v", res.Model)
	}
}

func TestForcedBindingsExposed(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	y := p.Fresh("y")
	res := check(t, []Constraint{
		Eq(symx.Binary(symx.OpAdd, symx.VarExpr(x), symx.Const(2)), symx.Const(7)),
		Ne(symx.VarExpr(y), symx.Const(0)), // y is satisfiable but not forced
	})
	if res.Verdict != Sat {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Forced[x] != 5 {
		t.Errorf("x not forced to 5: %v", res.Forced)
	}
	if _, forced := res.Forced[y]; forced {
		t.Errorf("y wrongly forced: %v", res.Forced)
	}
}

func TestZeroOptionsAreUsable(t *testing.T) {
	p := symx.NewPool()
	x := p.Fresh("x")
	res := Check([]Constraint{Eq(symx.Binary(symx.OpMul, symx.VarExpr(x), symx.Const(2)), symx.Const(12))}, Options{})
	if res.Verdict != Sat {
		t.Fatalf("zero options broke the search phase: %v (%s)", res.Verdict, res.Reason)
	}
}

// TestSessionMatchesCheck is the incremental-solving contract: splitting a
// constraint set into base + added and solving via a Session must agree
// with a from-scratch Check of the whole conjunction — same verdict, same
// model — at every split point, including chained extensions.
func TestSessionMatchesCheck(t *testing.T) {
	v := func(i uint32) *symx.Expr { return symx.VarExpr(symx.Var(i)) }
	systems := [][]Constraint{
		{Eq(v(0), symx.Const(5)), Eq(v(1), symx.Binary(symx.OpAdd, v(0), symx.Const(3))), Lt(v(2), symx.Const(10)), Le(symx.Const(4), v(2)), Ne(v(2), symx.Const(7))},
		{Eq(symx.Binary(symx.OpMul, v(0), symx.Const(3)), symx.Const(21)), Eq(symx.Binary(symx.OpXor, v(1), symx.Const(0xff)), symx.Const(0)), Ne(v(0), v(1))},
		{Eq(v(0), symx.Const(1)), Eq(v(0), symx.Const(2))}, // unsat in the base or the delta
		{Le(v(0), symx.Const(3)), Le(symx.Const(3), v(0)), Eq(v(1), symx.Binary(symx.OpSub, v(0), v(2))), Eq(v(2), symx.Const(1))},
	}
	for si, cs := range systems {
		want := Check(cs, Options{})
		for split := 0; split <= len(cs); split++ {
			sess := NewSession()
			var res Result
			res, sess = sess.Extend(cs[:split], Options{})
			if split < len(cs) || res.Verdict != Unsat {
				res = sess.CheckWith(cs[split:], Options{})
			}
			if res.Verdict != want.Verdict {
				t.Errorf("system %d split %d: verdict %v, want %v (%s)", si, split, res.Verdict, want.Verdict, res.Reason)
				continue
			}
			if want.Verdict == Sat {
				for _, c := range cs {
					ok, def := c.Holds(res.Model)
					if !def || !ok {
						t.Errorf("system %d split %d: session model violates %s", si, split, c)
					}
				}
				// Verdict parity is required; for these systems the models
				// must agree exactly (same propagation, same search order).
				for k, x := range want.Model {
					if res.Model[k] != x {
						t.Errorf("system %d split %d: model[%d] = %d, want %d", si, split, k, res.Model[k], x)
					}
				}
			}
		}
	}
}

// TestSessionChainedExtend walks a session down a chain of extensions, the
// shape the backward search uses, verifying verdicts at each depth and
// that an unsat extension latches.
func TestSessionChainedExtend(t *testing.T) {
	v := func(i uint32) *symx.Expr { return symx.VarExpr(symx.Var(i)) }
	sess := NewSession()
	all := []Constraint{}
	for i := 0; i < 12; i++ {
		step := []Constraint{Eq(v(uint32(i+1)), symx.Binary(symx.OpAdd, v(uint32(i)), symx.Const(int64(i))))}
		all = append(all, step...)
		var res Result
		res, sess = sess.Extend(step, Options{})
		want := Check(all, Options{})
		if res.Verdict != want.Verdict {
			t.Fatalf("depth %d: verdict %v, want %v", i, res.Verdict, want.Verdict)
		}
	}
	res, sess := sess.Extend([]Constraint{Eq(v(0), symx.Const(1)), Eq(v(0), symx.Const(2))}, Options{})
	if res.Verdict != Unsat {
		t.Fatalf("contradictory extension = %v, want unsat", res.Verdict)
	}
	if res := sess.CheckWith(nil, Options{}); res.Verdict != Unsat {
		t.Fatalf("unsat session did not latch: %v", res.Verdict)
	}
}

// TestSessionConcurrentExtend extends one parent session from many
// goroutines at once — the parallel-frontier shape — under -race.
func TestSessionConcurrentExtend(t *testing.T) {
	v := func(i uint32) *symx.Expr { return symx.VarExpr(symx.Var(i)) }
	base := []Constraint{Eq(v(0), symx.Const(9)), Le(v(1), symx.Const(100))}
	_, sess := NewSession().Extend(base, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			delta := []Constraint{Eq(v(1), symx.Binary(symx.OpAdd, v(0), symx.Const(int64(g))))}
			res := sess.CheckWith(delta, Options{})
			if res.Verdict != Sat || res.Model[symx.Var(1)] != int64(9+g) {
				t.Errorf("goroutine %d: %+v", g, res)
			}
		}(g)
	}
	wg.Wait()
}

// TestDefInheritsInterval is the regression for a soundness hole: a base
// constraint discharged into an interval (x <= 5) must survive x being
// defined away by a later equation (x == y). Without the interval
// transfer onto the definition, both the full Check and an incremental
// Session could hand out (or fail to refute) models violating the base.
func TestDefInheritsInterval(t *testing.T) {
	v := func(i uint32) *symx.Expr { return symx.VarExpr(symx.Var(i)) }
	base := []Constraint{Le(v(0), symx.Const(5))}
	added := []Constraint{Eq(v(0), v(1)), Eq(v(1), symx.Const(7))}
	all := append(append([]Constraint(nil), base...), added...)

	if got := Check(all, Options{}); got.Verdict != Unsat {
		t.Fatalf("Check = %v (%s), want unsat", got.Verdict, got.Reason)
	}
	_, sess := NewSession().Extend(base, Options{})
	if got := sess.CheckWith(added, Options{}); got.Verdict != Unsat {
		t.Fatalf("Session = %v (%s), want unsat", got.Verdict, got.Reason)
	}

	// And the satisfiable variant still solves, respecting the interval.
	okAdd := []Constraint{Eq(v(0), v(1)), Eq(v(1), symx.Const(4))}
	res := sess.CheckWith(okAdd, Options{})
	if res.Verdict != Sat || res.Model[symx.Var(0)] != 4 {
		t.Fatalf("sat variant = %v model=%v", res.Verdict, res.Model)
	}
	for _, c := range append(append([]Constraint(nil), base...), okAdd...) {
		if ok, def := c.Holds(res.Model); !def || !ok {
			t.Fatalf("model violates %s", c)
		}
	}
}

// Package solver implements the constraint solver behind RES's symbolic
// snapshots. It decides satisfiability of conjunctions of relational
// constraints over symx expressions and produces concrete models, which
// RES uses both for the compatibility check S' ⊇ Spost ("is there any
// pre-state for which this block produces the observed post-state?") and
// for concretizing the inferred pre-image Mi before replay.
//
// The pipeline is: simplification → equality propagation with exact
// arithmetic inversion (addition, xor, negation, complement, and
// multiplication via modular inverses) and comparison decomposition →
// interval propagation → bounded enumeration and seeded randomized
// completion. Verdicts are three-valued; Unsat and Sat are sound (Sat
// verdicts always carry a model that has been checked against the
// original constraints), Unknown is the honest fallback.
package solver

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"res/internal/symx"
)

// Rel is a relational operator between two expressions.
type Rel uint8

const (
	RelEq Rel = iota
	RelNe
	RelLt // signed
	RelLe // signed
)

func (r Rel) String() string {
	switch r {
	case RelEq:
		return "=="
	case RelNe:
		return "!="
	case RelLt:
		return "<"
	case RelLe:
		return "<="
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Constraint asserts L Rel R.
type Constraint struct {
	L, R *symx.Expr
	Rel  Rel
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Rel, c.R)
}

// Eq, Ne, Lt, Le build constraints.
func Eq(l, r *symx.Expr) Constraint { return Constraint{L: l, R: r, Rel: RelEq} }
func Ne(l, r *symx.Expr) Constraint { return Constraint{L: l, R: r, Rel: RelNe} }
func Lt(l, r *symx.Expr) Constraint { return Constraint{L: l, R: r, Rel: RelLt} }
func Le(l, r *symx.Expr) Constraint { return Constraint{L: l, R: r, Rel: RelLe} }

// Truthy asserts that e is non-zero (a taken branch condition).
func Truthy(e *symx.Expr) Constraint { return Ne(e, symx.Const(0)) }

// Falsy asserts that e is zero (a fall-through branch condition).
func Falsy(e *symx.Expr) Constraint { return Eq(e, symx.Const(0)) }

// Holds evaluates the constraint under a model. The bool result is false
// on evaluation failure (division by zero).
func (c Constraint) Holds(m symx.Model) (bool, bool) {
	a, ok := c.L.Eval(m)
	if !ok {
		return false, false
	}
	b, ok := c.R.Eval(m)
	if !ok {
		return false, false
	}
	switch c.Rel {
	case RelEq:
		return a == b, true
	case RelNe:
		return a != b, true
	case RelLt:
		return a < b, true
	case RelLe:
		return a <= b, true
	}
	return false, false
}

// Verdict is the solver's three-valued answer.
type Verdict uint8

const (
	Unknown Verdict = iota
	Sat
	Unsat
)

func (v Verdict) String() string {
	switch v {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Options tunes solver effort.
type Options struct {
	// MaxEnum bounds the total models tried during enumeration.
	MaxEnum int
	// RandomTries bounds the randomized completion phase.
	RandomTries int
	// Seed drives the randomized phase deterministically.
	Seed int64
	// Interrupt, when non-nil, is polled periodically during the search
	// phases; once it returns true the solver abandons the remaining
	// budget and reports Unknown ("interrupted"). Verdicts reached before
	// the interrupt fires (including propagation-derived Unsat) are
	// unaffected, so interruption never makes the solver unsound — only
	// less complete. This is how context cancellation reaches the deepest
	// loops of an analysis.
	Interrupt func() bool
	// Observe, when non-nil, is invoked once per top-level solver
	// decision (Check, Session.CheckWith, Session.Extend) with the wall
	// time the decision took and its verdict. It is the observability
	// hook: the search engine wires it to its trace spans. Observers are
	// called from whatever goroutine runs the check and must be
	// concurrency-safe and fast. A nil Observe costs nothing — not even
	// a clock read.
	Observe func(d time.Duration, v Verdict)
}

// DefaultOptions returns the tuning used throughout the repo.
func DefaultOptions() Options {
	return Options{MaxEnum: 1 << 16, RandomTries: 4096, Seed: 1}
}

// Result carries the verdict, a model when Sat, and effort statistics.
type Result struct {
	Verdict Verdict
	Model   symx.Model
	// Forced holds the variable assignments that are logical consequences
	// of the constraint set (derived by propagation, not search). Unlike
	// Model entries, these hold in EVERY satisfying assignment, so callers
	// may substitute them without losing solutions. Populated for Sat and
	// Unknown verdicts.
	Forced map[symx.Var]int64
	// Stats
	PropagationRounds int
	ModelsTried       int
	Reason            string // human-readable explanation for Unsat/Unknown
}

// normalize fills zero option fields with the package defaults.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.MaxEnum == 0 {
		o.MaxEnum = def.MaxEnum
	}
	if o.RandomTries == 0 {
		o.RandomTries = def.RandomTries
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	return o
}

// Check decides the conjunction of cs. Zero-valued option fields take the
// package defaults, so Check(cs, Options{}) is meaningful.
func Check(cs []Constraint, opt Options) Result {
	var t0 time.Time
	if opt.Observe != nil {
		t0 = time.Now()
	}
	s := &state{
		opt:       opt.normalize(),
		bindings:  make(map[symx.Var]int64),
		defs:      nil,
		intervals: make(map[symx.Var]interval),
	}
	for _, c := range cs {
		s.pending = append(s.pending, c)
	}
	res := finishResult(s, s.solve(), cs)
	if opt.Observe != nil {
		opt.Observe(time.Since(t0), res.Verdict)
	}
	return res
}

// finishResult attaches the forced bindings and applies the model safety
// net: a Sat verdict must satisfy recheck, the constraints the caller can
// vouch for. For a full Check that is the original set; for a Session
// check it is the residual-plus-added set (the base's discharged
// constraints hold by construction under the bindings the model carries).
func finishResult(s *state, res Result, recheck []Constraint) Result {
	if res.Verdict != Unsat {
		res.Forced = make(map[symx.Var]int64, len(s.bindings))
		for v, c := range s.bindings {
			res.Forced[v] = c
		}
	}
	if res.Verdict == Sat {
		for _, c := range recheck {
			ok, def := c.Holds(res.Model)
			if !def || !ok {
				res.Verdict = Unknown
				res.Reason = fmt.Sprintf("model failed recheck on %s", c)
				res.Model = nil
				break
			}
		}
	}
	return res
}

// clone copies the propagated state (bindings, intervals, definitions,
// residual pending constraints) so a child solve can extend it without
// touching the parent. Search bookkeeping starts fresh.
func (s *state) clone() *state {
	ns := &state{
		opt:       s.opt,
		pending:   append([]Constraint(nil), s.pending...),
		bindings:  make(map[symx.Var]int64, len(s.bindings)),
		defs:      append([]def(nil), s.defs...),
		intervals: make(map[symx.Var]interval, len(s.intervals)),
	}
	for v, c := range s.bindings {
		ns.bindings[v] = c
	}
	for v, iv := range s.intervals {
		ns.intervals[v] = iv
	}
	return ns
}

// Session is the incremental-solving entry point: it snapshots the
// propagated state (variable bindings, intervals, definitions, and the
// residual constraint set) reached over a base conjunction, so checking
// base ∧ added costs only the propagation of `added` plus whatever search
// the residue needs — not a re-propagation of the whole base. RES threads
// one session per search node: a child step adds the handful of
// constraints its block introduced instead of re-solving a depth-long
// history.
//
// Sessions are immutable after construction and safe for concurrent use:
// CheckWith and Extend clone the propagated state before mutating it, so
// any number of goroutines may extend one parent session simultaneously.
//
// Verdict parity with Check: propagation is monotone and runs to fixpoint
// over the same constraints in the same order (base first, added after —
// exactly the order a full Check would see), so a Session reaches the
// same bindings, the same residue, and therefore the same verdicts and
// models as Check over the flattened set.
type Session struct {
	st     *state // propagated over the base set; read-only after construction
	unsat  bool   // the base itself is contradictory
	reason string
}

// NewSession returns the empty session (no base constraints).
func NewSession() *Session {
	return &Session{
		st: &state{
			bindings:  make(map[symx.Var]int64),
			intervals: make(map[symx.Var]interval),
		},
	}
}

// CheckWith decides base ∧ added under opt, reusing the session's
// propagated state. It is Check over the flattened conjunction, minus the
// re-propagation of the base. Zero option fields take package defaults.
func (s *Session) CheckWith(added []Constraint, opt Options) Result {
	res, _ := s.extend(added, opt, false)
	return res
}

// Extend decides base ∧ added and, when the verdict is not Unsat, returns
// a child session whose base is the propagated combined set — the state a
// feasible search node hands to its children.
func (s *Session) Extend(added []Constraint, opt Options) (Result, *Session) {
	return s.extend(added, opt, true)
}

func (s *Session) extend(added []Constraint, opt Options, keep bool) (Result, *Session) {
	if s.unsat {
		// The base was already contradictory; nothing added can fix it.
		return Result{Verdict: Unsat, Reason: s.reason}, s
	}
	var t0 time.Time
	if opt.Observe != nil {
		t0 = time.Now()
	}
	st := s.st.clone()
	st.opt = opt.normalize()
	recheck := append(append([]Constraint(nil), st.pending...), added...)
	st.pending = append(st.pending, added...)
	res := finishResult(st, st.solve(), recheck)
	if opt.Observe != nil {
		opt.Observe(time.Since(t0), res.Verdict)
	}
	if !keep {
		return res, nil
	}
	child := &Session{st: st}
	if res.Verdict == Unsat {
		child.unsat, child.reason = true, res.Reason
	} else {
		// The search phases only touch bookkeeping, but clear it so the
		// retained state is a pure propagation snapshot.
		st.tried, st.rounds, st.enumComplete, st.interrupted = 0, 0, false, false
	}
	return res, child
}

type interval struct {
	lo, hi int64
	hasLo  bool
	hasHi  bool
}

func (iv interval) empty() bool { return iv.hasLo && iv.hasHi && iv.lo > iv.hi }

func (iv interval) singleton() (int64, bool) {
	if iv.hasLo && iv.hasHi && iv.lo == iv.hi {
		return iv.lo, true
	}
	return 0, false
}

type def struct {
	v symx.Var
	e *symx.Expr
}

type state struct {
	opt       Options
	pending   []Constraint
	bindings  map[symx.Var]int64 // concrete assignments discovered
	defs      []def              // variable definitions x := e (e not ground yet)
	intervals map[symx.Var]interval
	rounds    int
	tried     int
	// enumComplete is set when enumeration walked the full candidate
	// lattice without finding a model.
	enumComplete bool
	// interrupted is latched when opt.Interrupt fires mid-search.
	interrupted bool
}

// interruptNow polls the interrupt hook (cheaply: every 256th call per
// phase iteration sites pass their loop counter).
func (s *state) interruptNow(i int) bool {
	if s.interrupted {
		return true
	}
	if s.opt.Interrupt != nil && i&0xff == 0 && s.opt.Interrupt() {
		s.interrupted = true
	}
	return s.interrupted
}

func (s *state) solve() Result {
	if why, ok := s.propagate(); !ok {
		return Result{Verdict: Unsat, Reason: why, PropagationRounds: s.rounds}
	}
	// All constraints discharged by propagation?
	if len(s.pending) == 0 {
		return Result{Verdict: Sat, Model: s.buildModel(nil), PropagationRounds: s.rounds}
	}
	// Search phase over the residual constraints.
	vars := s.residualVars()
	if m, ok := s.enumerate(vars); ok {
		return Result{Verdict: Sat, Model: s.buildModel(m), PropagationRounds: s.rounds, ModelsTried: s.tried}
	}
	if m, ok := s.randomized(vars); ok {
		return Result{Verdict: Sat, Model: s.buildModel(m), PropagationRounds: s.rounds, ModelsTried: s.tried}
	}
	if s.interrupted {
		return Result{Verdict: Unknown, Reason: "interrupted", PropagationRounds: s.rounds, ModelsTried: s.tried}
	}
	// If every residual variable has a small finite interval and we
	// covered the full product space during enumeration, the residue is
	// exhaustively refuted.
	if s.exhausted(vars) {
		return Result{Verdict: Unsat, Reason: "finite domains exhausted", PropagationRounds: s.rounds, ModelsTried: s.tried}
	}
	return Result{Verdict: Unknown, Reason: "search budget exhausted", PropagationRounds: s.rounds, ModelsTried: s.tried}
}

// propagate runs simplification, inversion and interval narrowing to a
// fixpoint. Returns (reason, false) on a sound contradiction.
func (s *state) propagate() (string, bool) {
	for {
		s.rounds++
		if s.rounds > 10000 {
			return "", true // give up on propagation, fall through to search
		}
		if s.interruptNow(s.rounds) {
			return "", true // abandoned: solve() reports the interrupt
		}
		changed := false
		next := make([]Constraint, 0, len(s.pending))
		for _, c := range s.pending {
			cl := s.substitute(c.L)
			cr := s.substitute(c.R)
			nc := Constraint{L: cl, R: cr, Rel: c.Rel}
			status, emit, why := s.step(nc)
			switch status {
			case stepUnsat:
				return why, false
			case stepDischarged:
				changed = true
			case stepRewritten:
				changed = true
				next = append(next, emit...)
			case stepKeep:
				if !cl.Equal(c.L) || !cr.Equal(c.R) {
					changed = true
				}
				next = append(next, nc)
			}
		}
		s.pending = next
		if !changed {
			return "", true
		}
	}
}

type stepStatus uint8

const (
	stepKeep stepStatus = iota
	stepDischarged
	stepRewritten
	stepUnsat
)

// step processes a single constraint: evaluates ground ones, binds
// variables, inverts arithmetic, decomposes comparisons, and narrows
// intervals.
func (s *state) step(c Constraint) (stepStatus, []Constraint, string) {
	lc, lok := c.L.IsConst()
	rc, rok := c.R.IsConst()
	if lok && rok {
		ok := false
		switch c.Rel {
		case RelEq:
			ok = lc == rc
		case RelNe:
			ok = lc != rc
		case RelLt:
			ok = lc < rc
		case RelLe:
			ok = lc <= rc
		}
		if ok {
			return stepDischarged, nil, ""
		}
		return stepUnsat, nil, fmt.Sprintf("ground contradiction: %d %s %d", lc, c.Rel, rc)
	}
	// Normalize: constant on the right.
	if lok {
		switch c.Rel {
		case RelEq, RelNe:
			c.L, c.R = c.R, c.L
			lok, rok = rok, lok
			lc, rc = rc, lc
		case RelLt: // c < e  ==  e > c  ==  ¬(e <= c)... keep as interval form below
			// rewrite to e >= c+1 i.e. Le(Const(c+1), e) stays const-left; handle in intervals.
		}
	}

	switch c.Rel {
	case RelEq:
		return s.stepEq(c.L, c.R)
	case RelNe:
		// x != c with x bound elsewhere handled by substitution; otherwise
		// keep for the search phase (and singleton-interval refutation).
		if v, ok := c.L.IsVar(); ok && rok {
			if single, isSingle := s.intervals[v].singleton(); isSingle && single == rc {
				return stepUnsat, nil, fmt.Sprintf("v%d pinned to %d but must differ", uint32(v), rc)
			}
		}
		return stepKeep, nil, ""
	case RelLt, RelLe:
		return s.stepOrder(c)
	}
	return stepKeep, nil, ""
}

// stepEq handles L == R with R canonical (constant on right if any).
func (s *state) stepEq(l, r *symx.Expr) (stepStatus, []Constraint, string) {
	// Bare variable on either side.
	if v, ok := l.IsVar(); ok {
		return s.bindOrDefine(v, r)
	}
	if v, ok := r.IsVar(); ok {
		return s.bindOrDefine(v, l)
	}
	rcVal, rok := r.IsConst()
	if !rok {
		// expr == expr: try l - r == 0 if that simplifies to something
		// invertible.
		diff := symx.Binary(symx.OpSub, l, r)
		if !diff.Equal(l) { // avoid no-progress loops
			if dc, ok := diff.IsConst(); ok {
				if dc == 0 {
					return stepDischarged, nil, ""
				}
				return stepUnsat, nil, "expressions differ by nonzero constant"
			}
		}
		return stepKeep, nil, ""
	}

	// Inversion on the left structure.
	switch l.Kind {
	case symx.KUnary:
		switch l.Op {
		case symx.OpNeg:
			return stepRewritten, []Constraint{Eq(l.L, symx.Const(-rcVal))}, ""
		case symx.OpNot:
			return stepRewritten, []Constraint{Eq(l.L, symx.Const(^rcVal))}, ""
		}
	case symx.KBinary:
		if c2, ok := l.R.IsConst(); ok {
			switch l.Op {
			case symx.OpAdd:
				return stepRewritten, []Constraint{Eq(l.L, symx.Const(rcVal-c2))}, ""
			case symx.OpSub:
				return stepRewritten, []Constraint{Eq(l.L, symx.Const(rcVal+c2))}, ""
			case symx.OpXor:
				return stepRewritten, []Constraint{Eq(l.L, symx.Const(rcVal^c2))}, ""
			case symx.OpMul:
				return s.invertMul(l.L, c2, rcVal)
			}
		}
		if c2, ok := l.L.IsConst(); ok && l.Op == symx.OpSub {
			// c2 - x == r  =>  x == c2 - r
			return stepRewritten, []Constraint{Eq(l.R, symx.Const(c2-rcVal))}, ""
		}
		// Comparison results are 0/1 only.
		if l.Op.IsCmp() {
			if rcVal != 0 && rcVal != 1 {
				return stepUnsat, nil, fmt.Sprintf("comparison result equated to %d", rcVal)
			}
			pos := rcVal == 1
			var out Constraint
			switch l.Op {
			case symx.OpEq:
				if pos {
					out = Eq(l.L, l.R)
				} else {
					out = Ne(l.L, l.R)
				}
			case symx.OpNe:
				if pos {
					out = Ne(l.L, l.R)
				} else {
					out = Eq(l.L, l.R)
				}
			case symx.OpLt:
				if pos {
					out = Lt(l.L, l.R)
				} else {
					out = Le(l.R, l.L)
				}
			case symx.OpLe:
				if pos {
					out = Le(l.L, l.R)
				} else {
					out = Lt(l.R, l.L)
				}
			}
			return stepRewritten, []Constraint{out}, ""
		}
	}
	return stepKeep, nil, ""
}

// invertMul solves x * c == r over 64-bit words: with g the largest power
// of two dividing c, solutions exist iff g divides r, and then
// x == (r/g) * inverse(c/g) mod 2^64 is one canonical solution; since the
// odd part is invertible the solution set is exactly that value plus
// multiples of 2^64/g in the high bits — we constrain only the canonical
// solution when g == 1 (fully invertible) and otherwise keep the
// constraint for the search phase to avoid losing solutions.
func (s *state) invertMul(x *symx.Expr, c, r int64) (stepStatus, []Constraint, string) {
	if c == 0 {
		if r == 0 {
			return stepDischarged, nil, ""
		}
		return stepUnsat, nil, "0*x equated to nonzero"
	}
	uc := uint64(c)
	g := uc & -uc // power-of-two part
	if uint64(r)%g != 0 {
		return stepUnsat, nil, fmt.Sprintf("%d*x == %d has no solution (parity)", c, r)
	}
	if g == 1 {
		inv := modInverse(uc)
		return stepRewritten, []Constraint{Eq(x, symx.Const(int64(uint64(r)*inv)))}, ""
	}
	return stepKeep, nil, ""
}

// modInverse computes the multiplicative inverse of odd a modulo 2^64 by
// Newton iteration.
func modInverse(a uint64) uint64 {
	x := a // 3 bits correct
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}

// bindOrDefine records v == e: a concrete binding when e is ground, a
// definition otherwise (with an occurs check to reject v == f(v) unless it
// simplifies).
func (s *state) bindOrDefine(v symx.Var, e *symx.Expr) (stepStatus, []Constraint, string) {
	if c, ok := e.IsConst(); ok {
		if iv, okIV := s.intervals[v]; okIV {
			if (iv.hasLo && c < iv.lo) || (iv.hasHi && c > iv.hi) {
				return stepUnsat, nil, fmt.Sprintf("binding v%d=%d violates interval", uint32(v), c)
			}
		}
		if old, bound := s.bindings[v]; bound {
			if old != c {
				return stepUnsat, nil, fmt.Sprintf("v%d bound to both %d and %d", uint32(v), old, c)
			}
			return stepDischarged, nil, ""
		}
		s.bindings[v] = c
		return stepDischarged, nil, ""
	}
	vars := make(map[symx.Var]bool)
	e.Vars(vars)
	if vars[v] {
		// v == f(v): keep for search; may still be satisfiable (v == v+0
		// already simplified away).
		return stepKeep, nil, ""
	}
	// Avoid duplicate definitions for the same variable: keep the first,
	// and turn the rest into equations between the definitions.
	for _, d := range s.defs {
		if d.v == v {
			return stepRewritten, []Constraint{Eq(d.e, e)}, ""
		}
	}
	s.defs = append(s.defs, def{v: v, e: e})
	// Transfer v's narrowed interval onto the definition: substitution
	// erases v from the system, so without this v ∈ [lo,hi] (knowledge
	// discharged from earlier order constraints) would be lost and a
	// model could assign e a value outside it.
	if iv, ok := s.intervals[v]; ok {
		var out []Constraint
		if iv.hasLo {
			out = append(out, Le(symx.Const(iv.lo), e))
		}
		if iv.hasHi {
			out = append(out, Le(e, symx.Const(iv.hi)))
		}
		if len(out) > 0 {
			return stepRewritten, out, ""
		}
	}
	return stepDischarged, nil, ""
}

// stepOrder narrows intervals from order constraints with one variable
// side and one constant side.
func (s *state) stepOrder(c Constraint) (stepStatus, []Constraint, string) {
	lc, lok := c.L.IsConst()
	rc, rok := c.R.IsConst()
	if v, ok := c.L.IsVar(); ok && rok {
		// v < rc / v <= rc
		hi := rc
		if c.Rel == RelLt {
			if rc == minInt64 {
				return stepUnsat, nil, "v < MinInt64"
			}
			hi = rc - 1
		}
		return s.narrow(v, interval{hi: hi, hasHi: true})
	}
	if v, ok := c.R.IsVar(); ok && lok {
		// lc < v / lc <= v
		lo := lc
		if c.Rel == RelLt {
			if lc == maxInt64 {
				return stepUnsat, nil, "MaxInt64 < v"
			}
			lo = lc + 1
		}
		return s.narrow(v, interval{lo: lo, hasLo: true})
	}
	// (x + c) <= rc  =>  x <= rc - c, when no overflow ambiguity: we only
	// rewrite when the addition provably cannot wrap for any x in the
	// current interval — conservatively, only when c == 0 (already
	// simplified). Keep otherwise.
	return stepKeep, nil, ""
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

func (s *state) narrow(v symx.Var, nv interval) (stepStatus, []Constraint, string) {
	iv := s.intervals[v]
	if nv.hasLo && (!iv.hasLo || nv.lo > iv.lo) {
		iv.lo, iv.hasLo = nv.lo, true
	}
	if nv.hasHi && (!iv.hasHi || nv.hi < iv.hi) {
		iv.hi, iv.hasHi = nv.hi, true
	}
	if iv.empty() {
		return stepUnsat, nil, fmt.Sprintf("empty interval for v%d", uint32(v))
	}
	s.intervals[v] = iv
	if c, ok := iv.singleton(); ok {
		if old, bound := s.bindings[v]; bound && old != c {
			return stepUnsat, nil, fmt.Sprintf("interval pins v%d to %d but it is bound to %d", uint32(v), c, old)
		}
		s.bindings[v] = c
	}
	// Check against existing binding.
	if c, bound := s.bindings[v]; bound {
		if (iv.hasLo && c < iv.lo) || (iv.hasHi && c > iv.hi) {
			return stepUnsat, nil, fmt.Sprintf("binding v%d=%d outside interval", uint32(v), c)
		}
	}
	return stepDischarged, nil, ""
}

// substitute applies concrete bindings and definitions to an expression.
func (s *state) substitute(e *symx.Expr) *symx.Expr {
	if !e.HasVars() {
		return e
	}
	sub := make(map[symx.Var]*symx.Expr)
	vars := make(map[symx.Var]bool)
	e.Vars(vars)
	for v := range vars {
		if c, ok := s.bindings[v]; ok {
			sub[v] = symx.Const(c)
			continue
		}
		for _, d := range s.defs {
			if d.v == v {
				sub[v] = d.e
				break
			}
		}
	}
	if len(sub) == 0 {
		return e
	}
	return e.Subst(sub)
}

func (s *state) residualVars() []symx.Var {
	set := make(map[symx.Var]bool)
	for _, c := range s.pending {
		c.L.Vars(set)
		c.R.Vars(set)
	}
	out := make([]symx.Var, 0, len(set))
	for v := range set {
		if _, bound := s.bindings[v]; !bound {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// candidates returns the candidate values tried for a variable during
// enumeration: interval endpoints, small integers, and the constants that
// appear in the residual constraints with ±1 neighbours.
func (s *state) candidates(v symx.Var) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	add := func(x int64) {
		iv := s.intervals[v]
		if iv.hasLo && x < iv.lo {
			return
		}
		if iv.hasHi && x > iv.hi {
			return
		}
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	iv := s.intervals[v]
	if iv.hasLo {
		add(iv.lo)
	}
	if iv.hasHi {
		add(iv.hi)
	}
	for _, x := range []int64{0, 1, -1, 2} {
		add(x)
	}
	var walk func(e *symx.Expr)
	walk = func(e *symx.Expr) {
		switch e.Kind {
		case symx.KConst:
			add(e.Val)
			if e.Val != maxInt64 {
				add(e.Val + 1)
			}
			if e.Val != minInt64 {
				add(e.Val - 1)
			}
		case symx.KUnary:
			walk(e.L)
		case symx.KBinary:
			walk(e.L)
			walk(e.R)
		}
	}
	for _, c := range s.pending {
		walk(c.L)
		walk(c.R)
	}
	// Canonical solutions of residual even multiplications c*v == r: the
	// propagation phase keeps these (the solution set has 2^k elements),
	// but the small canonical representative is almost always the one
	// real programs mean, so offer it to the enumerator.
	for _, c := range s.pending {
		if c.Rel != RelEq {
			continue
		}
		l, r := c.L, c.R
		rcv, rok := r.IsConst()
		if !rok {
			continue
		}
		if l.Kind != symx.KBinary || l.Op != symx.OpMul {
			continue
		}
		mv, vok := l.L.IsVar()
		mc, cok := l.R.IsConst()
		if !vok || !cok || mv != v || mc == 0 {
			continue
		}
		uc := uint64(mc)
		g := uc & -uc
		if uint64(rcv)%g != 0 {
			continue
		}
		base := int64((uint64(rcv) / g) * modInverse(uc/g))
		add(base)
	}
	return out
}

// residualHolds checks the residual constraint set under m.
func (s *state) residualHolds(m symx.Model) bool {
	for _, c := range s.pending {
		ok, def := c.Holds(m)
		if !def || !ok {
			return false
		}
	}
	return true
}

// enumerate tries the cross product of per-variable candidates.
func (s *state) enumerate(vars []symx.Var) (symx.Model, bool) {
	if len(vars) == 0 {
		return nil, s.residualHolds(symx.Model{})
	}
	cands := make([][]int64, len(vars))
	total := 1
	for i, v := range vars {
		cands[i] = s.candidates(v)
		total *= len(cands[i])
		if total > s.opt.MaxEnum || total < 0 {
			total = s.opt.MaxEnum + 1
			break
		}
	}
	if total > s.opt.MaxEnum {
		// Too many combinations: sample the lattice diagonally instead of
		// enumerating; the randomized phase still follows.
		return nil, false
	}
	idx := make([]int, len(vars))
	m := make(symx.Model, len(vars))
	for {
		if s.interruptNow(s.tried) {
			return nil, false
		}
		s.tried++
		for i, v := range vars {
			m[v] = cands[i][idx[i]]
		}
		if s.residualHolds(m) {
			out := make(symx.Model, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out, true
		}
		// Odometer increment.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(cands[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			s.enumComplete = true
			return nil, false
		}
	}
}

// randomized samples models at random within intervals.
func (s *state) randomized(vars []symx.Var) (symx.Model, bool) {
	if len(vars) == 0 {
		return nil, false
	}
	rng := rand.New(rand.NewSource(s.opt.Seed))
	m := make(symx.Model, len(vars))
	for try := 0; try < s.opt.RandomTries; try++ {
		if s.interruptNow(try) {
			return nil, false
		}
		s.tried++
		for _, v := range vars {
			iv := s.intervals[v]
			var x int64
			switch {
			case iv.hasLo && iv.hasHi:
				span := uint64(iv.hi - iv.lo)
				if span == 0 {
					x = iv.lo
				} else if span < 1<<62 {
					x = iv.lo + int64(rng.Uint64()%(span+1))
				} else {
					x = int64(rng.Uint64())
				}
			case try%2 == 0:
				// Small values dominate real workloads.
				x = rng.Int63n(1<<16) - 1<<15
			default:
				x = int64(rng.Uint64())
			}
			m[v] = x
		}
		if s.residualHolds(m) {
			out := make(symx.Model, len(m))
			for k, v := range m {
				out[k] = v
			}
			return out, true
		}
	}
	return nil, false
}

// exhausted reports whether the enumeration covered the entire (finite)
// solution space, making a negative result a sound Unsat.
func (s *state) exhausted(vars []symx.Var) bool {
	if !s.enumComplete {
		return false
	}
	// Enumeration is complete only if every variable's candidate set
	// covered its entire domain, i.e. the variable has a finite interval
	// fully contained in its candidates. We approximate: singleton or
	// two-point intervals only.
	for _, v := range vars {
		iv := s.intervals[v]
		if !iv.hasLo || !iv.hasHi {
			return false
		}
		if iv.hi-iv.lo > 1 {
			return false
		}
	}
	return true
}

// buildModel combines propagation bindings, definitions and the search
// model into a full assignment.
func (s *state) buildModel(search symx.Model) symx.Model {
	m := make(symx.Model, len(s.bindings)+len(search))
	for v, c := range s.bindings {
		m[v] = c
	}
	for v, c := range search {
		m[v] = c
	}
	// Resolve definitions; chains are acyclic (occurs check), so at most
	// len(defs) passes reach a fixpoint, then default remaining to 0.
	for pass := 0; pass <= len(s.defs); pass++ {
		progress := false
		for _, d := range s.defs {
			if _, done := m[d.v]; done {
				continue
			}
			if val, ok := d.e.Eval(m); ok {
				// Only accept when all vars of the definition are pinned;
				// Eval defaults missing vars to 0 which is fine on the
				// final pass.
				vars := make(map[symx.Var]bool)
				d.e.Vars(vars)
				all := true
				for v := range vars {
					if _, has := m[v]; !has {
						all = false
						break
					}
				}
				if all || pass == len(s.defs) {
					m[d.v] = val
					progress = true
				}
			}
		}
		if !progress && pass > 0 {
			break
		}
	}
	for _, d := range s.defs {
		if _, done := m[d.v]; !done {
			if val, ok := d.e.Eval(m); ok {
				m[d.v] = val
			}
		}
	}
	return m
}

// String renders a constraint set for diagnostics.
func String(cs []Constraint) string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// Package pse implements the other baseline the paper positions RES
// against: post-mortem static analysis in the style of PSE (Manevich et
// al., FSE 2004). Starting from the failure point it computes a backward
// static slice over the CFG — the instructions that may have influenced
// the faulting operands — without consulting any coredump values.
//
// Because the analysis is static it cannot discard infeasible
// predecessors, so its answer is a *set* of candidate root-cause sites;
// the experiment harness compares that set's size against RES's pinpointed
// locations (precision), and its coverage of the true site (recall).
package pse

import (
	"sort"

	"res/internal/isa"
	"res/internal/prog"
)

// Slice is the analysis result.
type Slice struct {
	// PCs is the backward slice: every instruction that may influence the
	// failure, in ascending order.
	PCs []int
	// Candidates are the slice's state-changing sites (stores and input
	// reads) — PSE's analog of "possible root causes".
	Candidates []int
	// VisitedBlocks counts analysis effort.
	VisitedBlocks int
}

// Contains reports whether pc is in the slice.
func (s *Slice) Contains(pc int) bool {
	i := sort.SearchInts(s.PCs, pc)
	return i < len(s.PCs) && s.PCs[i] == pc
}

// absVal abstracts the tracked dataflow facts: registers (per value) and
// memory (a single abstract cell for all of memory plus per-address cells
// for statically known global addresses).
type fact struct {
	reg    isa.Reg
	isReg  bool
	global uint32 // valid when !isReg && !allMem
	allMem bool
}

type factSet map[fact]bool

func (fs factSet) clone() factSet {
	n := make(factSet, len(fs))
	for f := range fs {
		n[f] = true
	}
	return n
}

func (fs factSet) equal(o factSet) bool {
	if len(fs) != len(o) {
		return false
	}
	for f := range fs {
		if !o[f] {
			return false
		}
	}
	return true
}

// Analyze computes the backward slice from the faulting instruction.
func Analyze(p *prog.Program, faultPC int) *Slice {
	if faultPC < 0 || faultPC >= len(p.Code) {
		return &Slice{}
	}
	// Seed: the faulting instruction's register uses.
	seed := make(factSet)
	for _, r := range p.Code[faultPC].ReadsRegs(nil) {
		seed[fact{reg: r, isReg: true}] = true
	}

	slicePCs := map[int]bool{faultPC: true}
	visited := 0

	// Worklist over (block, facts-at-block-end). Facts flow backward.
	type item struct {
		block int
		out   factSet
	}
	fb, err := p.BlockAt(faultPC)
	if err != nil {
		return &Slice{}
	}
	best := make(map[int]factSet) // widest fact set seen per block
	var work []item
	push := func(b int, fs factSet) {
		old, ok := best[b]
		if ok {
			merged := old.clone()
			grew := false
			for f := range fs {
				if !merged[f] {
					merged[f] = true
					grew = true
				}
			}
			if !grew {
				return
			}
			best[b] = merged
			work = append(work, item{b, merged})
			return
		}
		best[b] = fs.clone()
		work = append(work, item{b, fs.clone()})
	}

	// The fault block is processed from the fault pc upward first.
	out := transferRange(p, fb.Start, faultPC, seed, slicePCs)
	for _, pred := range p.ExecPreds(fb) {
		push(pred, out)
	}
	visited++

	const maxVisits = 100000
	for len(work) > 0 && visited < maxVisits {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		visited++
		b := p.Block(it.block)
		in := transferRange(p, b.Start, b.End, it.out, slicePCs)
		if len(in) == 0 {
			continue
		}
		for _, pred := range p.ExecPreds(b) {
			push(pred, in)
		}
	}

	s := &Slice{VisitedBlocks: visited}
	for pc := range slicePCs {
		s.PCs = append(s.PCs, pc)
	}
	sort.Ints(s.PCs)
	for _, pc := range s.PCs {
		switch p.Code[pc].Op {
		case isa.OpStore, isa.OpStoreG, isa.OpInput:
			s.Candidates = append(s.Candidates, pc)
		}
	}
	return s
}

// transferRange applies the backward transfer function over instructions
// [start, end), mutating the slice membership map and returning the facts
// live at the range's entry.
func transferRange(p *prog.Program, start, end int, out factSet, slicePCs map[int]bool) factSet {
	fs := out.clone()
	for pc := end - 1; pc >= start; pc-- {
		in := &p.Code[pc]
		relevant := false
		// Does this instruction define a tracked fact?
		if rd, ok := in.WritesReg(); ok && fs[fact{reg: rd, isReg: true}] {
			relevant = true
			delete(fs, fact{reg: rd, isReg: true})
		}
		switch in.Op {
		case isa.OpStoreG:
			f := fact{global: uint32(in.Imm)}
			if fs[f] || fs[fact{allMem: true}] {
				relevant = true
				delete(fs, f)
			}
		case isa.OpStore, isa.OpCall:
			// Unknown address: may define any memory fact.
			if fs[fact{allMem: true}] {
				relevant = true
			}
			for f := range fs {
				if !f.isReg {
					relevant = true
					break
				}
			}
		}
		// Branch conditions always influence reachability of the failure.
		if in.Op == isa.OpBr {
			relevant = true
		}
		if !relevant {
			continue
		}
		slicePCs[pc] = true
		// Uses become live.
		for _, r := range in.ReadsRegs(nil) {
			fs[fact{reg: r, isReg: true}] = true
		}
		switch in.Op {
		case isa.OpLoadG:
			fs[fact{global: uint32(in.Imm)}] = true
		case isa.OpLoad, isa.OpRet:
			fs[fact{allMem: true}] = true
		case isa.OpInput:
			// External input: a source; nothing upstream.
		}
	}
	return fs
}

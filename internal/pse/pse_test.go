package pse

import (
	"testing"

	"res/internal/asm"
	"res/internal/workload"
)

func TestSliceCoversDefChain(t *testing.T) {
	src := `
.global g 1
func main:
    const r1, 5      ; pc 0: in slice (defines r1 used by store)
    storeg r1, &g    ; pc 1: in slice (defines g)
    const r9, 99     ; pc 2: irrelevant
    loadg r2, &g     ; pc 3: in slice
    addi r3, r2, -5  ; pc 4: in slice
    assert r3        ; pc 5: the failure
    halt
`
	p := asm.MustAssemble(src)
	s := Analyze(p, 5)
	for _, pc := range []int{0, 1, 3, 4, 5} {
		if !s.Contains(pc) {
			t.Errorf("slice missing pc %d: %v", pc, s.PCs)
		}
	}
	if s.Contains(2) {
		t.Errorf("slice includes irrelevant pc 2: %v", s.PCs)
	}
	// Candidates: the storeg.
	if len(s.Candidates) != 1 || s.Candidates[0] != 1 {
		t.Errorf("candidates = %v, want [1]", s.Candidates)
	}
}

func TestSliceIsPathInsensitive(t *testing.T) {
	// Static analysis cannot rule out either predecessor: both stores are
	// candidates, unlike RES which discards one using the dump. This is
	// the precision gap the paper describes.
	bug := workload.Fig1()
	p := bug.Program()
	d, _, err := bug.FindFailure(2)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(p, d.Fault.PC)
	// Both the pred1 store and the pred2 store of x must be in the slice.
	var pred1Store, pred2Store int
	for pc := range p.Code {
		switch p.Code[pc].String() {
		case "store r7, r8, 0":
			pred1Store = pc
		case "const r9, 2":
			pred2Store = pc + 1 // the storeg that follows
		}
	}
	if !s.Contains(pred1Store) {
		t.Errorf("slice misses the true overflow store at %d", pred1Store)
	}
	if !s.Contains(pred2Store) {
		t.Errorf("slice should conservatively keep the benign path store at %d", pred2Store)
	}
	if len(s.Candidates) < 2 {
		t.Errorf("static analysis should report multiple candidates, got %v", s.Candidates)
	}
}

func TestSliceRecallOnWorkloads(t *testing.T) {
	// The slice must always contain the true root-cause site (recall 1);
	// its size is the imprecision RES improves on.
	for _, bug := range []*workload.Bug{workload.DistanceChain(6), workload.HashConstruct(true)} {
		p := bug.Program()
		d, _, err := bug.FindFailure(2)
		if err != nil {
			t.Fatalf("%s: %v", bug.Name, err)
		}
		s := Analyze(p, d.Fault.PC)
		if len(s.PCs) == 0 {
			t.Errorf("%s: empty slice", bug.Name)
		}
		// The input instruction (root cause source) must be in the slice.
		found := false
		for _, pc := range s.PCs {
			if p.Code[pc].Op.String() == "input" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: slice misses the input source: %v", bug.Name, s.PCs)
		}
	}
}

func TestBadPC(t *testing.T) {
	p := asm.MustAssemble("func main:\n halt")
	if s := Analyze(p, -1); len(s.PCs) != 0 {
		t.Error("slice for invalid pc should be empty")
	}
	if s := Analyze(p, 99); len(s.PCs) != 0 {
		t.Error("slice for out-of-range pc should be empty")
	}
}

package minimize

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"res/internal/evidence"
)

// keepContains builds a keep predicate that accepts any subset covering
// all of want, and counts invocations.
func keepContains(want []int, calls *int) func([]int) bool {
	return func(sub []int) bool {
		*calls++
		have := make(map[int]bool, len(sub))
		for _, i := range sub {
			have[i] = true
		}
		for _, w := range want {
			if !have[w] {
				return false
			}
		}
		return true
	}
}

func TestDDMinFindsSingleton(t *testing.T) {
	var calls int
	got := DDMin(8, keepContains([]int{5}, &calls))
	if !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("DDMin = %v; want [5]", got)
	}
	if calls == 0 {
		t.Fatal("keep never called")
	}
}

func TestDDMinFindsPair(t *testing.T) {
	got := DDMin(10, keepContains([]int{2, 7}, new(int)))
	if !reflect.DeepEqual(got, []int{2, 7}) {
		t.Fatalf("DDMin = %v; want [2 7]", got)
	}
}

func TestDDMinEmptyWhenNothingNeeded(t *testing.T) {
	got := DDMin(6, keepContains(nil, new(int)))
	if len(got) != 0 {
		t.Fatalf("DDMin = %v; want empty set", got)
	}
}

func TestDDMinKeepsEverythingWhenAllNeeded(t *testing.T) {
	all := []int{0, 1, 2, 3, 4}
	got := DDMin(5, keepContains(all, new(int)))
	if !reflect.DeepEqual(got, all) {
		t.Fatalf("DDMin = %v; want %v", got, all)
	}
}

func TestDDMinZero(t *testing.T) {
	if got := DDMin(0, func([]int) bool { t.Fatal("keep called for n=0"); return false }); len(got) != 0 {
		t.Fatalf("DDMin(0) = %v", got)
	}
}

func TestDDMinResultIsOneMinimal(t *testing.T) {
	// An awkward predicate: needs 3 scattered elements.
	want := []int{1, 6, 11}
	var calls int
	keep := keepContains(want, &calls)
	got := DDMin(13, keep)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DDMin = %v; want %v", got, want)
	}
	// 1-minimality: removing any single element must break it.
	for i := range got {
		trial := append(append([]int{}, got[:i]...), got[i+1:]...)
		if keep(trial) {
			t.Fatalf("result %v is not 1-minimal: %v still passes", got, trial)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("result %v not sorted", got)
	}
}

func TestBisectMin(t *testing.T) {
	calls := 0
	got := BisectMin(1, 100, func(v int) bool { calls++; return v >= 37 })
	if got != 37 {
		t.Fatalf("BisectMin = %d; want 37", got)
	}
	if calls > 8 {
		t.Fatalf("BisectMin used %d probes; want logarithmic", calls)
	}
	if got := BisectMin(5, 5, func(int) bool { t.Fatal("ok called for lo==hi"); return true }); got != 5 {
		t.Fatalf("BisectMin(5,5) = %d", got)
	}
}

func sampleRepro() *MinimalRepro {
	return &MinimalRepro{
		CauseKey:    "atomicity-violation@addr12",
		ProgramFP:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		DumpFP:      "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210",
		MaxDepth:    6,
		MaxNodes:    120,
		SuffixDepth: 6,
		OrigSources: 4,
		MinSources:  1,
		Runs:        17,
		Reductions:  5,
		Evidence:    evidence.Set{evidence.LBR{Mode: 1}}.Encode(),
	}
}

func TestReproWireRoundTrip(t *testing.T) {
	m := sampleRepro()
	b := m.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.Encode(), b) {
		t.Fatalf("decode∘encode is not a fixed point")
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint changed across round trip")
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip changed fields:\n got %+v\nwant %+v", got, m)
	}
}

func TestReproDecodeRejects(t *testing.T) {
	valid := sampleRepro().Encode()
	noKey := &MinimalRepro{}
	badFP := sampleRepro()
	badFP.ProgramFP = "XYZ"
	inverted := sampleRepro()
	inverted.MinSources = 9
	badEvidence := sampleRepro()
	badEvidence.Evidence = []byte("not evidence")
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("NOTAMINR"),
		"trailing bytes": append(append([]byte{}, valid...), 1),
		"truncated":      valid[:len(valid)-3],
		"no cause key":   noKey.Encode(),
		"bad fp":         badFP.Encode(),
		"min > orig":     inverted.Encode(),
		"bad evidence":   badEvidence.Encode(),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

func TestReproFingerprintDistinct(t *testing.T) {
	a := sampleRepro()
	b := sampleRepro()
	b.MaxDepth++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("distinct repros share a fingerprint")
	}
}

package minimize

import (
	"bytes"
	"testing"

	"res/internal/evidence"
)

// FuzzMinimalReproDecode guards the RESMINR1 decoder: arbitrary bytes
// must never panic, anything that decodes must re-encode byte-identically
// (decode∘encode fixed point — the repro's fingerprint is a content
// address), and the embedded attachment sub-encodings must themselves be
// canonical. The seed corpus under testdata/fuzz/FuzzMinimalReproDecode
// is checked in.
func FuzzMinimalReproDecode(f *testing.F) {
	seeds := []*MinimalRepro{
		{CauseKey: "assertion-failure@7"},
		{
			CauseKey:    "atomicity-violation@addr12",
			ProgramFP:   "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
			DumpFP:      "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210",
			MaxDepth:    6,
			MaxNodes:    120,
			SuffixDepth: 6,
			OrigSources: 4,
			MinSources:  1,
			Runs:        17,
			Reductions:  5,
			Evidence:    evidence.Set{evidence.LBR{Mode: 1}}.Encode(),
		},
		{
			CauseKey: "data-race@addr3",
			Evidence: evidence.Set{
				evidence.OutputLog{},
				evidence.EventLog{Records: []evidence.EventRec{{Index: 2, Tid: 1, Block: 4}}},
			}.Encode(),
			OrigSources: 2,
			MinSources:  2,
		},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
	}
	f.Add([]byte("RESMINR1"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // not a repro; rejecting is the correct behavior
		}
		canon := m.Encode()
		m2, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if canon2 := m2.Encode(); !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %x\nsecond: %x", canon, canon2)
		}
		if m.Fingerprint() != m2.Fingerprint() {
			t.Fatal("fingerprint changed across round trip")
		}
		if m2.MinSources > m2.OrigSources {
			t.Fatal("decoded repro violates MinSources <= OrigSources")
		}
	})
}

// Package minimize implements delta-debugged minimal repros: the ddmin
// algorithm over a failure tuple's reducible dimensions (evidence
// attachment set, checkpoint ring, search budgets) plus the canonical
// MinimalRepro wire form (RESMINR1) that names the smallest tuple still
// reproducing the analyzed root cause. The analyzer-driving loop lives in
// the public res package (res.Minimize); this package is the mechanism.
package minimize

// DDMin runs Zeller's ddmin over the index set [0, n): it returns a
// subset of indexes, in ascending order, such that keep(subset) is true
// and the subset is 1-minimal with respect to the chunk granularity
// schedule (removing any single tried chunk breaks it). keep must be
// deterministic; it is never called with the full set (the caller has
// already established the full set reproduces) and never with the same
// subset twice in one descent path.
//
// keep is called O(n²) times in the worst case; RES evidence sets are
// capped at 64 sources, so the bound is immaterial.
func DDMin(n int, keep func(sub []int) bool) []int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	if n == 0 {
		return cur
	}
	// Fast path first: the empty set. Evidence is often entirely
	// redundant once the dump alone pins the cause.
	if keep(nil) {
		return []int{}
	}
	gran := 2
	for len(cur) >= 2 {
		chunks := split(cur, gran)
		reduced := false
		// Try each chunk alone ("reduce to subset").
		for _, c := range chunks {
			if len(c) < len(cur) && keep(c) {
				cur = c
				gran = 2
				reduced = true
				break
			}
		}
		if !reduced && gran > 2 {
			// Try each complement ("reduce to complement").
			for i := range chunks {
				comp := complement(chunks, i)
				if len(comp) < len(cur) && keep(comp) {
					cur = comp
					gran--
					reduced = true
					break
				}
			}
		}
		if reduced {
			continue
		}
		if gran >= len(cur) {
			break // 1-minimal at the finest granularity
		}
		gran *= 2
		if gran > len(cur) {
			gran = len(cur)
		}
	}
	// Final singleton sweep: drop elements one at a time to a fixed
	// point, so the result is 1-minimal even off ddmin's chunk grid.
	for i := 0; i < len(cur); {
		trial := make([]int, 0, len(cur)-1)
		trial = append(trial, cur[:i]...)
		trial = append(trial, cur[i+1:]...)
		if len(trial) > 0 && keep(trial) {
			cur = trial
		} else {
			i++
		}
	}
	return cur
}

// split partitions s into k contiguous chunks of near-equal size.
func split(s []int, k int) [][]int {
	if k > len(s) {
		k = len(s)
	}
	out := make([][]int, 0, k)
	for i := 0; i < k; i++ {
		lo := i * len(s) / k
		hi := (i + 1) * len(s) / k
		if lo < hi {
			out = append(out, s[lo:hi])
		}
	}
	return out
}

// complement concatenates every chunk except chunks[i].
func complement(chunks [][]int, i int) []int {
	var out []int
	for j, c := range chunks {
		if j != i {
			out = append(out, c...)
		}
	}
	return out
}

// BisectMin finds the smallest v in [lo, hi] with ok(v) true, assuming
// monotonicity (ok(hi) must hold); it is the budget-shrinking analogue of
// ddmin for scalar dimensions like the suffix depth bound. Returns hi
// unchanged when lo >= hi.
func BisectMin(lo, hi int, ok func(v int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

package minimize

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"res/internal/checkpoint"
	"res/internal/evidence"
)

// MinimalRepro is a delta-debugged minimal reproduction: the smallest
// attachment set and tightest search budgets that still re-analyze to
// the same root-cause key as the original failure tuple. It is the
// artifact a bug report ships instead of the full production evidence.
type MinimalRepro struct {
	// CauseKey is the preserved root-cause bucketing key; every reduction
	// kept during minimization re-analyzed to exactly this key.
	CauseKey string
	// ProgramFP and DumpFP name the tuple the repro reduces (hex SHA-256
	// content fingerprints; either may be empty when unknown).
	ProgramFP string
	DumpFP    string
	// Evidence is the minimized evidence attachment in canonical wire
	// form (nil when the dump alone reproduces the cause).
	Evidence []byte
	// Checkpoints is the minimized checkpoint ring in canonical wire form
	// (nil when the ring was dropped or never present).
	Checkpoints []byte
	// MaxDepth and MaxNodes are the minimized search budgets that still
	// reproduce.
	MaxDepth int
	MaxNodes int
	// SuffixDepth is the shortest suffix depth at which the cause was
	// re-identified.
	SuffixDepth int
	// OrigSources and MinSources count the evidence attachment set before
	// and after minimization.
	OrigSources int
	MinSources  int
	// Runs counts the analyzer re-runs the minimization spent; Reductions
	// counts the reductions it kept.
	Runs       int
	Reductions int
}

// The wire form is a canonical container: magic, the cause key and tuple
// fingerprints, the minimized budgets and stats, then the minimized
// attachments as length-prefixed canonical sub-encodings. Decode
// re-validates the sub-encodings against their own codecs (and rejects
// non-canonical bytes), so decode∘encode is the identity on canonical
// bytes and the fingerprint is a true content address.
const wireMagic = "RESMINR1"

const (
	maxKey      = 1 << 10
	maxFP       = 64
	maxInt      = 1 << 30
	maxAttach   = 1 << 26
	maxSrcCount = 1 << 20
)

// Encode renders the repro in its canonical wire form.
func (m *MinimalRepro) Encode() []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(wireMagic)
	str(m.CauseKey)
	str(m.ProgramFP)
	str(m.DumpFP)
	uv(uint64(m.MaxDepth))
	uv(uint64(m.MaxNodes))
	uv(uint64(m.SuffixDepth))
	uv(uint64(m.OrigSources))
	uv(uint64(m.MinSources))
	uv(uint64(m.Runs))
	uv(uint64(m.Reductions))
	uv(uint64(len(m.Evidence)))
	buf.Write(m.Evidence)
	uv(uint64(len(m.Checkpoints)))
	buf.Write(m.Checkpoints)
	return buf.Bytes()
}

// Decode parses wire-form minimal-repro bytes, enforcing canonicality:
// the magic, bounded fields, hex fingerprints, and attachment
// sub-encodings that round-trip byte-identically through their own
// codecs.
func Decode(b []byte) (*MinimalRepro, error) {
	if len(b) < len(wireMagic) || string(b[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("minimize: bad repro magic")
	}
	r := bytes.NewReader(b[len(wireMagic):])
	var derr error
	uv := func(max uint64) uint64 {
		if derr != nil {
			return 0
		}
		v, err := binary.ReadUvarint(r)
		if err != nil {
			derr = fmt.Errorf("minimize: %w", err)
			return 0
		}
		if v > max {
			derr = fmt.Errorf("minimize: field out of range (%d)", v)
			return 0
		}
		return v
	}
	str := func(max uint64) string {
		n := uv(max)
		if derr != nil {
			return ""
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(r, s); err != nil {
			derr = fmt.Errorf("minimize: %w", err)
			return ""
		}
		return string(s)
	}
	bs := func(max uint64) []byte {
		n := uv(max)
		if derr != nil || n == 0 {
			return nil
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(r, s); err != nil {
			derr = fmt.Errorf("minimize: %w", err)
			return nil
		}
		return s
	}
	m := &MinimalRepro{
		CauseKey:    str(maxKey),
		ProgramFP:   str(maxFP),
		DumpFP:      str(maxFP),
		MaxDepth:    int(uv(maxInt)),
		MaxNodes:    int(uv(maxInt)),
		SuffixDepth: int(uv(maxInt)),
		OrigSources: int(uv(maxSrcCount)),
		MinSources:  int(uv(maxSrcCount)),
		Runs:        int(uv(maxInt)),
		Reductions:  int(uv(maxInt)),
		Evidence:    bs(maxAttach),
		Checkpoints: bs(maxAttach),
	}
	if derr != nil {
		return nil, derr
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("minimize: %d trailing bytes", r.Len())
	}
	if m.CauseKey == "" {
		return nil, fmt.Errorf("minimize: repro carries no cause key")
	}
	if !validFP(m.ProgramFP) || !validFP(m.DumpFP) {
		return nil, fmt.Errorf("minimize: malformed tuple fingerprint")
	}
	if m.MinSources > m.OrigSources {
		return nil, fmt.Errorf("minimize: minimized source count %d exceeds original %d", m.MinSources, m.OrigSources)
	}
	// The attachments must themselves be canonical: decode through their
	// codecs and require a byte-identical re-encoding.
	if m.Evidence != nil {
		set, err := evidence.Decode(m.Evidence)
		if err != nil {
			return nil, fmt.Errorf("minimize: evidence attachment: %w", err)
		}
		if !bytes.Equal(set.Encode(), m.Evidence) {
			return nil, fmt.Errorf("minimize: evidence attachment is not canonical")
		}
	}
	if m.Checkpoints != nil {
		ring, err := checkpoint.Decode(m.Checkpoints)
		if err != nil {
			return nil, fmt.Errorf("minimize: checkpoint attachment: %w", err)
		}
		if !bytes.Equal(ring.Encode(), m.Checkpoints) {
			return nil, fmt.Errorf("minimize: checkpoint attachment is not canonical")
		}
	}
	return m, nil
}

// validFP accepts the empty string or a 64-char lowercase hex SHA-256.
func validFP(s string) bool {
	if s == "" {
		return true
	}
	if len(s) != maxFP {
		return false
	}
	_, err := hex.DecodeString(s)
	if err != nil {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'F' {
			return false
		}
	}
	return true
}

// Fingerprint is the content address of the repro: the hex SHA-256 of
// its canonical encoding.
func (m *MinimalRepro) Fingerprint() string {
	sum := sha256.Sum256(m.Encode())
	return hex.EncodeToString(sum[:])
}

// Package fault is a deterministic, seed-driven fault-injection layer
// for chaos testing. Faults are registered per seam (store I/O, cluster
// transport, decode paths, solver deadlines) as a kind plus a firing
// probability; every decision is drawn from one seeded PRNG, so a chaos
// run is reproducible from its seed alone.
//
// The layer is free when off: a nil *Injector is a valid receiver for
// every method and compiles down to a nil check, the same discipline as
// the tracing layer — production builds pay one branch per seam, no
// allocation, no locking.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Seam names one of the system's failure surfaces.
type Seam string

const (
	// SeamStore is disk I/O in the content-addressed store: read errors,
	// write errors, partial writes, bit-flips in blobs read back.
	SeamStore Seam = "store"
	// SeamTransport is intra-cluster HTTP: connection resets, black-holed
	// (slow then dead) requests, responses cut mid-body.
	SeamTransport Seam = "transport"
	// SeamDecode is the durable-format decode surface: torn or corrupt
	// journal entries, truncated attachment payloads.
	SeamDecode Seam = "decode"
	// SeamSolver is the analysis path: injected stalls ahead of the
	// backward search, exercising job timeouts and drain cut-offs.
	SeamSolver Seam = "solver"
)

// Fault kinds understood by the seams that consume them. The injector
// itself treats kinds as opaque strings; these constants just keep the
// producers and consumers spelling them identically.
const (
	KindReadError         = "read-error"         // store: disk read fails (treated as a miss)
	KindWriteError        = "write-error"        // store: disk write fails outright
	KindPartialWrite      = "partial-write"      // store: only a prefix reaches disk
	KindBitFlip           = "bit-flip"           // store: one bit flips in a blob read back
	KindReset             = "reset"              // transport: connection reset before any response
	KindBlackhole         = "blackhole"          // transport: request hangs for Delay, then dies
	KindCutBody           = "cut-body"           // transport: response body cut mid-stream
	KindJournalCorrupt    = "journal-corrupt"    // decode: a journal entry is corrupted on append
	KindAttachmentCorrupt = "attachment-corrupt" // decode: evidence/checkpoint wire bytes corrupted
	KindStall             = "stall"              // solver: analysis sleeps Delay before starting
)

// Rule arms one fault: at each opportunity on (Seam, Kind), fire with
// probability P. Delay is the stall length for time-based kinds
// (blackhole, stall); other kinds ignore it.
type Rule struct {
	Seam  Seam
	Kind  string
	P     float64
	Delay time.Duration
}

type ruleKey struct {
	seam Seam
	kind string
}

// Injector is a set of armed rules over one deterministic PRNG. The nil
// injector is valid and never fires. All methods are safe for concurrent
// use; determinism is per draw sequence — concurrent callers interleave,
// so a test that needs bit-exact replay serializes its opportunities.
type Injector struct {
	mu    sync.Mutex
	state uint64 // splitmix64 state
	rules map[ruleKey]Rule
	fired map[ruleKey]uint64
	seams map[Seam]bool
}

// New arms the given rules over a PRNG seeded with seed.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{
		state: seed,
		rules: make(map[ruleKey]Rule, len(rules)),
		fired: make(map[ruleKey]uint64),
		seams: make(map[Seam]bool),
	}
	for _, r := range rules {
		in.rules[ruleKey{r.Seam, r.Kind}] = r
		in.seams[r.Seam] = true
	}
	return in
}

// Parse builds an injector from a flag-friendly spec: comma-separated
// seam:kind:probability[:delay] entries, e.g.
//
//	store:read-error:0.05,transport:reset:0.1,solver:stall:0.2:10ms
//
// An empty spec returns nil — the free-when-off injector.
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("fault: %q: want seam:kind:probability[:delay]", ent)
		}
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: %q: probability must be in [0,1]", ent)
		}
		r := Rule{Seam: Seam(parts[0]), Kind: parts[1], P: p}
		switch r.Seam {
		case SeamStore, SeamTransport, SeamDecode, SeamSolver:
		default:
			return nil, fmt.Errorf("fault: %q: unknown seam %q", ent, parts[0])
		}
		if len(parts) == 4 {
			if r.Delay, err = time.ParseDuration(parts[3]); err != nil {
				return nil, fmt.Errorf("fault: %q: bad delay: %v", ent, err)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, rules...), nil
}

// next is splitmix64: a full-period 64-bit generator small enough to
// inline and dependency-free (math/rand/v2 would also do; this keeps the
// sequence pinned to the algorithm, not a stdlib version).
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Enabled reports whether any rule is armed on the seam: the cheap guard
// callers use before paying for a wrapper or a copy.
func (in *Injector) Enabled(seam Seam) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seams[seam]
}

// Should draws one firing decision for (seam, kind). Without a matching
// rule it returns false without consuming randomness, so arming one seam
// never perturbs another seam's sequence.
func (in *Injector) Should(seam Seam, kind string) bool {
	fired, _ := in.decide(seam, kind)
	return fired
}

// Delay draws one firing decision and returns the rule's stall length on
// fire, 0 otherwise.
func (in *Injector) Delay(seam Seam, kind string) time.Duration {
	fired, r := in.decide(seam, kind)
	if !fired {
		return 0
	}
	return r.Delay
}

func (in *Injector) decide(seam Seam, kind string) (bool, Rule) {
	if in == nil {
		return false, Rule{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rules[ruleKey{seam, kind}]
	if !ok || r.P <= 0 {
		return false, Rule{}
	}
	// 53 uniform bits -> [0, 1), the usual double construction.
	if float64(in.next()>>11)/(1<<53) >= r.P {
		return false, Rule{}
	}
	in.fired[ruleKey{seam, kind}]++
	return true, r
}

// Corrupt draws one firing decision and, on fire, returns a copy of b
// with one deterministically chosen bit flipped. Otherwise (or for empty
// input) b is returned unchanged, uncopied.
func (in *Injector) Corrupt(seam Seam, kind string, b []byte) []byte {
	if in == nil || len(b) == 0 {
		return b
	}
	fired, _ := in.decide(seam, kind)
	if !fired {
		return b
	}
	in.mu.Lock()
	bit := in.next() % uint64(len(b)*8)
	in.mu.Unlock()
	out := make([]byte, len(b))
	copy(out, b)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Counts returns how often each armed fault fired, keyed "seam/kind".
// Chaos tests assert on it to prove the run actually exercised the seams.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fired))
	for k, v := range in.fired {
		out[string(k.seam)+"/"+k.kind] = v
	}
	return out
}

// String renders the armed rules, sorted, for startup logging.
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	parts := make([]string, 0, len(in.rules))
	for _, r := range in.rules {
		s := fmt.Sprintf("%s:%s:%g", r.Seam, r.Kind, r.P)
		if r.Delay > 0 {
			s += ":" + r.Delay.String()
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

package fault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestNilInjectorIsFree: every method on the nil injector is a no-op —
// the free-when-off contract production code relies on.
func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if in.Enabled(SeamStore) || in.Should(SeamStore, KindReadError) {
		t.Fatal("nil injector fired")
	}
	if d := in.Delay(SeamSolver, KindStall); d != 0 {
		t.Fatalf("nil injector delayed %v", d)
	}
	b := []byte("payload")
	if got := in.Corrupt(SeamDecode, KindBitFlip, b); !bytes.Equal(got, b) {
		t.Fatal("nil injector corrupted bytes")
	}
	if c := in.Counts(); c != nil {
		t.Fatalf("nil injector counted %v", c)
	}
	if in.String() != "off" {
		t.Fatalf("nil injector String = %q", in.String())
	}
}

// TestDeterministicSequence: the same seed and the same draw sequence
// produce the same decisions — the reproducibility chaos tests lean on.
func TestDeterministicSequence(t *testing.T) {
	draw := func() []bool {
		in := New(42, Rule{Seam: SeamStore, Kind: KindReadError, P: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Should(SeamStore, KindReadError)
		}
		return out
	}
	a, b := draw(), draw()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded injectors", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 fired %d/%d times — PRNG looks broken", fired, len(a))
	}
	in := New(43, Rule{Seam: SeamStore, Kind: KindReadError, P: 0.3})
	diff := 0
	for i := range a {
		if in.Should(SeamStore, KindReadError) != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestUnarmedKindNeverFiresOrDraws: asking about a rule that is not
// armed returns false and does not consume randomness.
func TestUnarmedKindNeverFiresOrDraws(t *testing.T) {
	mk := func(probeOther bool) []bool {
		in := New(7, Rule{Seam: SeamStore, Kind: KindBitFlip, P: 0.5})
		out := make([]bool, 50)
		for i := range out {
			if probeOther {
				if in.Should(SeamTransport, KindReset) {
					t.Fatal("unarmed rule fired")
				}
			}
			out[i] = in.Should(SeamStore, KindBitFlip)
		}
		return out
	}
	plain, interleaved := mk(false), mk(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatal("probing an unarmed rule perturbed the armed rule's sequence")
		}
	}
}

// TestCorruptFlipsExactlyOneBit: corruption is a single deterministic
// bit-flip in a copy; the input is never mutated.
func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in := New(1, Rule{Seam: SeamStore, Kind: KindBitFlip, P: 1})
	orig := []byte("content-addressed blob")
	keep := append([]byte(nil), orig...)
	got := in.Corrupt(SeamStore, KindBitFlip, orig)
	if !bytes.Equal(orig, keep) {
		t.Fatal("Corrupt mutated its input")
	}
	diffBits := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("Corrupt flipped %d bits, want exactly 1", diffBits)
	}
	if c := in.Counts()["store/bit-flip"]; c != 1 {
		t.Fatalf("fired count = %d, want 1", c)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("store:read-error:0.05, transport:reset:0.1, solver:stall:1:10ms", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled(SeamStore) || !in.Enabled(SeamTransport) || !in.Enabled(SeamSolver) || in.Enabled(SeamDecode) {
		t.Fatalf("parsed seams wrong: %s", in)
	}
	if d := in.Delay(SeamSolver, KindStall); d != 10*time.Millisecond {
		t.Fatalf("stall delay = %v, want 10ms", d)
	}
	if in, err := Parse("", 0); in != nil || err != nil {
		t.Fatalf("empty spec = %v, %v; want nil, nil", in, err)
	}
	for _, bad := range []string{"store:read-error", "store:read-error:2", "nope:x:0.5", "solver:stall:0.5:xyz"} {
		if _, err := Parse(bad, 0); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestTransportFaults exercises the three transport kinds against a real
// server.
func TestTransportFaults(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 8192)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		w.Write(payload)
	}))
	defer srv.Close()

	// Pass-through: transport rules absent, base returned untouched.
	base := http.DefaultTransport
	if got := Transport(base, nil); got != base {
		t.Fatal("nil injector wrapped the transport")
	}

	reset := &http.Client{Transport: Transport(nil, New(3, Rule{Seam: SeamTransport, Kind: KindReset, P: 1}))}
	if _, err := reset.Get(srv.URL); err == nil {
		t.Fatal("injected reset did not surface")
	}

	cut := &http.Client{Transport: Transport(nil, New(3, Rule{Seam: SeamTransport, Kind: KindCutBody, P: 1}))}
	resp, err := cut.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err == nil {
		t.Fatal("cut body read to EOF cleanly")
	}
	if n == 0 || n >= int64(len(payload)) {
		t.Fatalf("cut delivered %d of %d bytes, want a strict prefix", n, len(payload))
	}

	hole := &http.Client{
		Timeout:   50 * time.Millisecond,
		Transport: Transport(nil, New(3, Rule{Seam: SeamTransport, Kind: KindBlackhole, P: 1, Delay: time.Minute})),
	}
	t0 := time.Now()
	if _, err := hole.Get(srv.URL); err == nil {
		t.Fatal("black-holed request succeeded")
	}
	if since := time.Since(t0); since > 5*time.Second {
		t.Fatalf("black hole ignored the client timeout (took %v)", since)
	}
}

package fault

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with the transport seam's faults:
// connection resets (the request dies before any response), black holes
// (the request hangs for the rule's Delay, then dies — exercising caller
// timeouts), and mid-body cuts (a real response whose body dies halfway
// through). When no transport rule is armed the base transport is
// returned untouched, so the wrapper costs nothing when off.
func Transport(base http.RoundTripper, in *Injector) http.RoundTripper {
	if !in.Enabled(SeamTransport) {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{base: base, in: in}
}

type faultTransport struct {
	base http.RoundTripper
	in   *Injector
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.in.Should(SeamTransport, KindReset) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault: injected connection reset to %s", req.URL.Host)
	}
	if d := t.in.Delay(SeamTransport, KindBlackhole); d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault: injected black hole to %s", req.URL.Host)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.in.Should(SeamTransport, KindCutBody) {
		// Deliver roughly half the advertised body, then fail the read —
		// the shape of a peer crashing mid-response.
		cut := int64(1024)
		if resp.ContentLength > 1 {
			cut = resp.ContentLength / 2
		}
		resp.Body = &cutBody{rc: resp.Body, remain: cut}
	}
	return resp, nil
}

// cutBody reads through to its underlying body for remain bytes, then
// fails with io.ErrUnexpectedEOF.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= int64(n)
	if err == io.EOF {
		return n, err
	}
	if c.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

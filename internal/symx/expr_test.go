package symx

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		e    *Expr
		want int64
	}{
		{Binary(OpAdd, Const(2), Const(3)), 5},
		{Binary(OpSub, Const(2), Const(3)), -1},
		{Binary(OpMul, Const(6), Const(7)), 42},
		{Binary(OpDiv, Const(7), Const(2)), 3},
		{Binary(OpMod, Const(7), Const(2)), 1},
		{Binary(OpAnd, Const(0b1100), Const(0b1010)), 0b1000},
		{Binary(OpOr, Const(0b1100), Const(0b1010)), 0b1110},
		{Binary(OpXor, Const(0b1100), Const(0b1010)), 0b0110},
		{Binary(OpShl, Const(1), Const(4)), 16},
		{Binary(OpShr, Const(-16), Const(2)), -4},
		{Binary(OpEq, Const(3), Const(3)), 1},
		{Binary(OpNe, Const(3), Const(3)), 0},
		{Binary(OpLt, Const(-1), Const(0)), 1},
		{Binary(OpLe, Const(1), Const(0)), 0},
		{Unary(OpNot, Const(0)), -1},
		{Unary(OpNeg, Const(5)), -5},
	}
	for _, tc := range tests {
		got, ok := tc.e.IsConst()
		if !ok || got != tc.want {
			t.Errorf("%s: got %d (const=%v), want %d", tc.e, got, ok, tc.want)
		}
	}
}

func TestDivModByZeroNotFolded(t *testing.T) {
	e := Binary(OpDiv, Const(1), Const(0))
	if _, ok := e.IsConst(); ok {
		t.Error("div by zero folded to a constant")
	}
	if _, ok := e.Eval(Model{}); ok {
		t.Error("div by zero evaluated")
	}
}

func TestIdentities(t *testing.T) {
	p := NewPool()
	x := p.FreshExpr("x")
	tests := []struct {
		name string
		e    *Expr
		want *Expr
	}{
		{"x+0", Binary(OpAdd, x, Const(0)), x},
		{"0+x", Binary(OpAdd, Const(0), x), x},
		{"x-0", Binary(OpSub, x, Const(0)), x},
		{"x-x", Binary(OpSub, x, x), Const(0)},
		{"x*1", Binary(OpMul, x, Const(1)), x},
		{"1*x", Binary(OpMul, Const(1), x), x},
		{"x*0", Binary(OpMul, x, Const(0)), Const(0)},
		{"x/1", Binary(OpDiv, x, Const(1)), x},
		{"x&0", Binary(OpAnd, x, Const(0)), Const(0)},
		{"x&-1", Binary(OpAnd, x, Const(-1)), x},
		{"x&x", Binary(OpAnd, x, x), x},
		{"x|0", Binary(OpOr, x, Const(0)), x},
		{"x|x", Binary(OpOr, x, x), x},
		{"x^0", Binary(OpXor, x, Const(0)), x},
		{"x^x", Binary(OpXor, x, x), Const(0)},
		{"x<<0", Binary(OpShl, x, Const(0)), x},
		{"x==x", Binary(OpEq, x, x), Const(1)},
		{"x!=x", Binary(OpNe, x, x), Const(0)},
		{"x<x", Binary(OpLt, x, x), Const(0)},
		{"x<=x", Binary(OpLe, x, x), Const(1)},
		{"--x", Unary(OpNeg, Unary(OpNeg, x)), x},
		{"~~x", Unary(OpNot, Unary(OpNot, x)), x},
	}
	for _, tc := range tests {
		if !tc.e.Equal(tc.want) {
			t.Errorf("%s: got %s, want %s", tc.name, tc.e, tc.want)
		}
	}
}

func TestAddChainNormalization(t *testing.T) {
	p := NewPool()
	x := p.FreshExpr("x")
	// ((x + 3) + 4) => x + 7
	e := Binary(OpAdd, Binary(OpAdd, x, Const(3)), Const(4))
	want := Binary(OpAdd, x, Const(7))
	if !e.Equal(want) {
		t.Errorf("got %s, want %s", e, want)
	}
	// (x - 3) + 5 => x + 2
	e = Binary(OpAdd, Binary(OpSub, x, Const(3)), Const(5))
	want = Binary(OpAdd, x, Const(2))
	if !e.Equal(want) {
		t.Errorf("got %s, want %s", e, want)
	}
	// x - 5 => x + (-5) canonical form
	e = Binary(OpSub, x, Const(5))
	want = Binary(OpAdd, x, Const(-5))
	if !e.Equal(want) {
		t.Errorf("got %s, want %s", e, want)
	}
}

func TestEvalWithModel(t *testing.T) {
	p := NewPool()
	xv := p.Fresh("x")
	yv := p.Fresh("y")
	e := Binary(OpMul, Binary(OpAdd, VarExpr(xv), Const(2)), VarExpr(yv))
	got, ok := e.Eval(Model{xv: 4, yv: 7})
	if !ok || got != 42 {
		t.Errorf("eval = %d, %v; want 42", got, ok)
	}
	// Missing vars default to zero.
	got, ok = e.Eval(Model{})
	if !ok || got != 0 {
		t.Errorf("eval with empty model = %d, want 0", got)
	}
}

func TestSubst(t *testing.T) {
	p := NewPool()
	xv := p.Fresh("x")
	yv := p.Fresh("y")
	e := Binary(OpAdd, VarExpr(xv), VarExpr(yv))
	// x := 3 re-simplifies: 3 + y canonicalizes to y + 3.
	got := e.Subst(map[Var]*Expr{xv: Const(3)})
	want := Binary(OpAdd, VarExpr(yv), Const(3))
	if !got.Equal(want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// Full substitution folds to a constant.
	got = e.Subst(map[Var]*Expr{xv: Const(3), yv: Const(4)})
	if c, ok := got.IsConst(); !ok || c != 7 {
		t.Errorf("got %s, want 7", got)
	}
}

func TestVarsAndSize(t *testing.T) {
	p := NewPool()
	xv := p.Fresh("x")
	yv := p.Fresh("y")
	e := Binary(OpAdd, Binary(OpMul, VarExpr(xv), VarExpr(yv)), VarExpr(xv))
	set := make(map[Var]bool)
	e.Vars(set)
	if len(set) != 2 || !set[xv] || !set[yv] {
		t.Errorf("vars = %v", set)
	}
	if !e.HasVars() {
		t.Error("HasVars = false")
	}
	if Const(1).HasVars() {
		t.Error("const HasVars = true")
	}
	if e.Size() != 5 {
		t.Errorf("size = %d, want 5", e.Size())
	}
	sv := SortedVars(e)
	if len(sv) != 2 || sv[0] != xv || sv[1] != yv {
		t.Errorf("SortedVars = %v", sv)
	}
}

func TestPoolNames(t *testing.T) {
	p := NewPool()
	v := p.Fresh("mem[42]")
	if p.Count() != 1 {
		t.Errorf("count = %d", p.Count())
	}
	name := p.Name(v)
	if name != "mem[42]#0" {
		t.Errorf("name = %q", name)
	}
	r := p.Render(Binary(OpAdd, VarExpr(v), Const(1)))
	if r != "(mem[42]#0 + 1)" {
		t.Errorf("render = %q", r)
	}
}

func TestStringRendering(t *testing.T) {
	p := NewPool()
	x := p.FreshExpr("x")
	e := Binary(OpLt, Unary(OpNeg, x), Const(10))
	if got := e.String(); got != "(-(v0) < 10)" {
		t.Errorf("String = %q", got)
	}
}

// randExpr builds a random expression over nv variables with given depth.
func randExpr(rng *rand.Rand, nv, depth int) *Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return Const(rng.Int63n(64) - 32)
		}
		return VarExpr(Var(rng.Intn(nv)))
	}
	if rng.Intn(5) == 0 {
		op := OpNot
		if rng.Intn(2) == 0 {
			op = OpNeg
		}
		return Unary(op, randExpr(rng, nv, depth-1))
	}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpDiv, OpMod}
	op := ops[rng.Intn(len(ops))]
	return Binary(op, randExpr(rng, nv, depth-1), randExpr(rng, nv, depth-1))
}

// rawEval evaluates without simplification by mirroring the semantics.
func rawEval(e *Expr, m Model) (int64, bool) {
	switch e.Kind {
	case KConst:
		return e.Val, true
	case KVar:
		return m[e.V], true
	case KUnary:
		a, ok := rawEval(e.L, m)
		if !ok {
			return 0, false
		}
		return evalUn(e.Op, a)
	case KBinary:
		a, ok := rawEval(e.L, m)
		if !ok {
			return 0, false
		}
		b, ok := rawEval(e.R, m)
		if !ok {
			return 0, false
		}
		return evalBin(e.Op, a, b)
	}
	return 0, false
}

// Property: simplification preserves semantics — a simplified expression
// evaluates to the same value as the raw construction under any model.
func TestQuickSimplificationSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		e := randExpr(rng, 3, 4)
		m := Model{0: rng.Int63() - rng.Int63(), 1: rng.Int63n(100) - 50, 2: rng.Int63n(5)}
		want, wok := rawEval(e, m)
		got, gok := e.Eval(m)
		// Simplification may remove a division by zero (e.g. x*0 folding
		// away a div); it must never introduce one or change a defined
		// result.
		if wok {
			if !gok {
				t.Fatalf("trial %d: %s became undefined", trial, e)
			}
			if got != want {
				t.Fatalf("trial %d: %s = %d, raw = %d (model %v)", trial, e, got, want, m)
			}
		}
	}
}

// Property: Subst with ground values agrees with Eval.
func TestQuickSubstMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		e := randExpr(rng, 2, 3)
		m := Model{0: rng.Int63n(1000) - 500, 1: rng.Int63n(1000) - 500}
		sub := map[Var]*Expr{0: Const(m[0]), 1: Const(m[1])}
		se := e.Subst(sub)
		want, wok := e.Eval(m)
		if !wok {
			continue
		}
		got, gok := se.Eval(Model{})
		if !gok || got != want {
			t.Fatalf("trial %d: subst(%s) = %s -> %d,%v; eval = %d", trial, e, se, got, gok, want)
		}
	}
}

// Property via testing/quick: Binary canonicalization puts constants right
// for commutative operators and Equal is reflexive.
func TestQuickCanonicalAndEqual(t *testing.T) {
	f := func(c int64, vid uint8) bool {
		x := VarExpr(Var(vid % 4))
		e := Binary(OpAdd, Const(c), x)
		if c != 0 {
			if e.Kind != KBinary || e.L.Kind != KVar {
				return false
			}
		}
		return e.Equal(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the cached structural hash is consistent with Equal — two
// independently constructed, structurally equal trees share a hash, and
// random unequal trees (checked structurally) essentially never collide.
// The hash is never zero for constructor-built expressions, which is what
// makes Equal's O(1) inequality fast path sound.
func TestQuickHashEqualConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		a := randExpr(rng, 3, 4)
		b := randExpr(rng, 3, 4)
		if a.Hash() == 0 || b.Hash() == 0 {
			t.Fatalf("trial %d: zero hash for constructed expr", trial)
		}
		if a.Equal(b) != b.Equal(a) {
			t.Fatalf("trial %d: Equal not symmetric", trial)
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("trial %d: equal exprs %s and %s hash differently", trial, a, b)
		}
		if a.Hash() != b.Hash() && a.Equal(b) {
			t.Fatalf("trial %d: hash fast path would miscompare %s and %s", trial, a, b)
		}
	}
	// Rebuilding the same structure through the constructors reproduces
	// the hash (structural, not identity-based).
	x, y := VarExpr(3), VarExpr(4)
	e1 := Binary(OpAdd, Binary(OpMul, x, y), Const(7))
	e2 := Binary(OpAdd, Binary(OpMul, VarExpr(3), VarExpr(4)), Const(7))
	if e1.Hash() != e2.Hash() || !e1.Equal(e2) {
		t.Fatal("independently built equal trees disagree on hash")
	}
}

// Pool must be safe for concurrent Fresh calls (the parallel search draws
// from one engine-wide pool): IDs stay unique and dense.
func TestPoolConcurrentFresh(t *testing.T) {
	p := NewPool()
	const workers, per = 8, 200
	ids := make([][]Var, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[w] = append(ids[w], p.Fresh("c"))
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[Var]bool)
	for _, chunk := range ids {
		for _, v := range chunk {
			if seen[v] {
				t.Fatalf("duplicate variable %d", v)
			}
			seen[v] = true
		}
	}
	if p.Count() != workers*per || len(seen) != workers*per {
		t.Fatalf("count = %d, unique = %d, want %d", p.Count(), len(seen), workers*per)
	}
}

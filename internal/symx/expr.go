// Package symx provides the symbolic expression language used by RES's
// symbolic snapshots: 64-bit integer expressions over symbolic variables,
// with aggressive construction-time simplification, evaluation under a
// model, substitution, and structural equality.
//
// It plays the role KLEE's expression library played for the paper's
// prototype, specialized to the RES VM's word-sized semantics.
package symx

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Var identifies a symbolic variable. Fresh variables come from a Pool so
// their provenance ("pre-value of mem[1043] at search depth 3") is
// recorded for diagnostics.
type Var uint32

// Op enumerates expression operators. Comparison operators yield 0 or 1,
// matching the VM's ALU.
type Op uint8

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // faulting semantics handled by side constraints, not here
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl // shift count masked to 6 bits, as in the VM
	OpShr // arithmetic
	OpNot
	OpNeg
	OpEq
	OpNe
	OpLt // signed
	OpLe // signed
)

var opSyms = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpNot: "~", OpNeg: "-", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
}

func (o Op) String() string {
	if int(o) < len(opSyms) {
		return opSyms[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsUnary reports whether the operator takes a single operand.
func (o Op) IsUnary() bool { return o == OpNot || o == OpNeg }

// IsCmp reports whether the operator is a comparison (result 0/1).
func (o Op) IsCmp() bool { return o == OpEq || o == OpNe || o == OpLt || o == OpLe }

// Kind discriminates expression nodes.
type Kind uint8

const (
	KConst Kind = iota
	KVar
	KUnary
	KBinary
)

// Expr is an immutable expression tree node. Construct with Const, VarExpr,
// Unary and Binary — direct literals bypass simplification and canonical
// invariants.
type Expr struct {
	Kind Kind
	Val  int64 // KConst
	V    Var   // KVar
	Op   Op    // KUnary, KBinary
	L, R *Expr // operands (L only for KUnary)
	// hash is the structural hash, computed once at construction. It is
	// never zero for constructor-built expressions, so Equal can use an
	// O(1) inequality fast path while staying correct for (discouraged)
	// hand-built literals whose hash is zero.
	hash uint64
}

// MixHash folds v into h (multiply-xorshift, splitmix64-style): the
// mixer behind expression hashes, shared with snapshot fingerprinting so
// every structural hash in the system composes from one primitive.
func MixHash(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// exprHash combines a node's kind, payload and child hashes.
func exprHash(kind Kind, tag, l, r uint64) uint64 {
	h := MixHash(0x9e3779b97f4a7c15^uint64(kind), tag)
	h = MixHash(h, l)
	h = MixHash(h, r)
	if h == 0 {
		h = 1
	}
	return h
}

// Hash returns the cached structural hash: Equal expressions always share
// it, and unequal expressions collide with probability ~2^-64. Snapshot
// fingerprinting builds on this.
func (e *Expr) Hash() uint64 { return e.hash }

// Const returns a constant expression.
func Const(v int64) *Expr {
	return &Expr{Kind: KConst, Val: v, hash: exprHash(KConst, uint64(v), 0, 0)}
}

// VarExpr returns a variable reference.
func VarExpr(v Var) *Expr {
	return &Expr{Kind: KVar, V: v, hash: exprHash(KVar, uint64(v), 0, 0)}
}

// Bool converts a Go bool to the VM's 0/1 representation.
func Bool(b bool) *Expr {
	if b {
		return Const(1)
	}
	return Const(0)
}

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (int64, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return 0, false
}

// IsVar reports whether e is a bare variable.
func (e *Expr) IsVar() (Var, bool) {
	if e.Kind == KVar {
		return e.V, true
	}
	return 0, false
}

func evalBin(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		return a << (uint64(b) & 63), true
	case OpShr:
		return a >> (uint64(b) & 63), true
	case OpEq:
		return b2i(a == b), true
	case OpNe:
		return b2i(a != b), true
	case OpLt:
		return b2i(a < b), true
	case OpLe:
		return b2i(a <= b), true
	}
	return 0, false
}

func evalUn(op Op, a int64) (int64, bool) {
	switch op {
	case OpNot:
		return ^a, true
	case OpNeg:
		return -a, true
	}
	return 0, false
}

// Unary builds a simplified unary expression.
func Unary(op Op, l *Expr) *Expr {
	if c, ok := l.IsConst(); ok {
		if v, ok := evalUn(op, c); ok {
			return Const(v)
		}
	}
	// Double negation / complement cancel.
	if l.Kind == KUnary && l.Op == op && (op == OpNot || op == OpNeg) {
		return l.L
	}
	return &Expr{Kind: KUnary, Op: op, L: l, hash: exprHash(KUnary, uint64(op), l.hash, 0)}
}

// Binary builds a simplified binary expression: constants fold, algebraic
// identities reduce, and commutative operators put constants on the right
// so downstream pattern matching sees a canonical form.
func Binary(op Op, l, r *Expr) *Expr {
	lc, lok := l.IsConst()
	rc, rok := r.IsConst()
	if lok && rok {
		if v, ok := evalBin(op, lc, rc); ok {
			return Const(v)
		}
	}
	// Canonicalize commutative ops: constant to the right.
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		if lok && !rok {
			l, r = r, l
			lc, lok, rc, rok = rc, rok, lc, lok
		}
	}
	switch op {
	case OpAdd:
		if rok && rc == 0 {
			return l
		}
		// x + x => 2*x, which the solver can invert exactly.
		if l.Equal(r) {
			return Binary(OpMul, l, Const(2))
		}
		// (x + c1) + c2 => x + (c1+c2)
		if rok && l.Kind == KBinary && l.Op == OpAdd {
			if c1, ok := l.R.IsConst(); ok {
				return Binary(OpAdd, l.L, Const(c1+rc))
			}
		}
		// (x - c1) + c2 => x + (c2-c1)
		if rok && l.Kind == KBinary && l.Op == OpSub {
			if c1, ok := l.R.IsConst(); ok {
				return Binary(OpAdd, l.L, Const(rc-c1))
			}
		}
	case OpSub:
		if rok && rc == 0 {
			return l
		}
		if l.Equal(r) {
			return Const(0)
		}
		if rok {
			// x - c => x + (-c), canonical for the adder patterns above.
			return Binary(OpAdd, l, Const(-rc))
		}
	case OpMul:
		if rok {
			switch rc {
			case 0:
				return Const(0)
			case 1:
				return l
			}
		}
	case OpDiv:
		if rok && rc == 1 {
			return l
		}
	case OpAnd:
		if rok && rc == 0 {
			return Const(0)
		}
		if rok && rc == -1 {
			return l
		}
		if l.Equal(r) {
			return l
		}
	case OpOr:
		if rok && rc == 0 {
			return l
		}
		if rok && rc == -1 {
			return Const(-1)
		}
		if l.Equal(r) {
			return l
		}
	case OpXor:
		if rok && rc == 0 {
			return l
		}
		if l.Equal(r) {
			return Const(0)
		}
	case OpShl, OpShr:
		if rok && rc&63 == 0 {
			return l
		}
	case OpEq:
		if l.Equal(r) {
			return Const(1)
		}
	case OpNe:
		if l.Equal(r) {
			return Const(0)
		}
	case OpLt:
		if l.Equal(r) {
			return Const(0)
		}
	case OpLe:
		if l.Equal(r) {
			return Const(1)
		}
	}
	return &Expr{Kind: KBinary, Op: op, L: l, R: r, hash: exprHash(KBinary, uint64(op), l.hash, r.hash)}
}

// Equal reports structural equality. Cached hashes make the common
// unequal case O(1); equal-hash trees still compare structurally.
func (e *Expr) Equal(o *Expr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil || e.Kind != o.Kind {
		return false
	}
	if e.hash != 0 && o.hash != 0 && e.hash != o.hash {
		return false
	}
	switch e.Kind {
	case KConst:
		return e.Val == o.Val
	case KVar:
		return e.V == o.V
	case KUnary:
		return e.Op == o.Op && e.L.Equal(o.L)
	case KBinary:
		return e.Op == o.Op && e.L.Equal(o.L) && e.R.Equal(o.R)
	}
	return false
}

// Model assigns concrete values to variables; absent variables default to 0
// (the "unconstrained" choice).
type Model map[Var]int64

// Eval evaluates the expression under the model. The bool result is false
// only when a division/modulo by zero occurs.
func (e *Expr) Eval(m Model) (int64, bool) {
	switch e.Kind {
	case KConst:
		return e.Val, true
	case KVar:
		return m[e.V], true
	case KUnary:
		a, ok := e.L.Eval(m)
		if !ok {
			return 0, false
		}
		return evalUn(e.Op, a)
	case KBinary:
		a, ok := e.L.Eval(m)
		if !ok {
			return 0, false
		}
		b, ok := e.R.Eval(m)
		if !ok {
			return 0, false
		}
		return evalBin(e.Op, a, b)
	}
	return 0, false
}

// Subst replaces variables with the given expressions, rebuilding (and so
// re-simplifying) the tree. Variables absent from s are kept.
func (e *Expr) Subst(s map[Var]*Expr) *Expr {
	switch e.Kind {
	case KConst:
		return e
	case KVar:
		if r, ok := s[e.V]; ok {
			return r
		}
		return e
	case KUnary:
		l := e.L.Subst(s)
		if l == e.L {
			return e
		}
		return Unary(e.Op, l)
	case KBinary:
		l := e.L.Subst(s)
		r := e.R.Subst(s)
		if l == e.L && r == e.R {
			return e
		}
		return Binary(e.Op, l, r)
	}
	return e
}

// Vars adds every variable occurring in e to set.
func (e *Expr) Vars(set map[Var]bool) {
	switch e.Kind {
	case KVar:
		set[e.V] = true
	case KUnary:
		e.L.Vars(set)
	case KBinary:
		e.L.Vars(set)
		e.R.Vars(set)
	}
}

// HasVars reports whether e mentions any variable.
func (e *Expr) HasVars() bool {
	switch e.Kind {
	case KConst:
		return false
	case KVar:
		return true
	case KUnary:
		return e.L.HasVars()
	case KBinary:
		return e.L.HasVars() || e.R.HasVars()
	}
	return false
}

// Size returns the node count, used to bound solver work.
func (e *Expr) Size() int {
	switch e.Kind {
	case KConst, KVar:
		return 1
	case KUnary:
		return 1 + e.L.Size()
	case KBinary:
		return 1 + e.L.Size() + e.R.Size()
	}
	return 1
}

// String renders the expression; variables print as vN (use Pool.Render
// for provenance-aware rendering).
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b, nil)
	return b.String()
}

func (e *Expr) render(b *strings.Builder, pool *Pool) {
	switch e.Kind {
	case KConst:
		fmt.Fprintf(b, "%d", e.Val)
	case KVar:
		if pool != nil {
			b.WriteString(pool.Name(e.V))
		} else {
			fmt.Fprintf(b, "v%d", uint32(e.V))
		}
	case KUnary:
		b.WriteString(e.Op.String())
		b.WriteByte('(')
		e.L.render(b, pool)
		b.WriteByte(')')
	case KBinary:
		b.WriteByte('(')
		e.L.render(b, pool)
		b.WriteByte(' ')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		e.R.render(b, pool)
		b.WriteByte(')')
	}
}

// Pool allocates fresh symbolic variables and remembers their provenance.
// It is safe for concurrent use: the search expands frontier candidates in
// parallel, all drawing fresh variables from one engine-wide pool.
type Pool struct {
	mu    sync.Mutex
	names []string
}

// NewPool returns an empty variable pool.
func NewPool() *Pool { return &Pool{} }

// Fresh allocates a new variable annotated with a provenance name.
func (p *Pool) Fresh(name string) Var {
	p.mu.Lock()
	p.names = append(p.names, name)
	v := Var(len(p.names) - 1)
	p.mu.Unlock()
	return v
}

// FreshExpr is Fresh wrapped in a variable expression.
func (p *Pool) FreshExpr(name string) *Expr { return VarExpr(p.Fresh(name)) }

// Name returns the provenance name of v.
func (p *Pool) Name(v Var) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(v) < len(p.names) {
		return fmt.Sprintf("%s#%d", p.names[v], uint32(v))
	}
	return fmt.Sprintf("v%d", uint32(v))
}

// Count returns the number of variables allocated so far.
func (p *Pool) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.names)
}

// Render renders e with provenance names.
func (p *Pool) Render(e *Expr) string {
	var b strings.Builder
	e.render(&b, p)
	return b.String()
}

// SortedVars returns the variables of e in ascending order; helper for
// deterministic iteration in the solver and tests.
func SortedVars(es ...*Expr) []Var {
	set := make(map[Var]bool)
	for _, e := range es {
		e.Vars(set)
	}
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

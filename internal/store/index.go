package store

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// The key index solves an asymmetry of the disk layout: artifacts are
// filed by Key.ID(), a one-way hash of the key's components, so a
// directory walk alone can recover the *addresses* of the artifacts but
// never their keys — and the anti-entropy sweep needs keys (the replica
// set ranks by the key's program fingerprint, verification dispatches on
// its space). The index is an append-only JSON-lines file of every key
// this store has held, deduplicated on load; it is advisory metadata,
// not a tier: a lost or corrupt index costs sweep coverage until peers
// re-advertise the keys, never data.

// indexFile is the key index's name inside the disk tier's directory
// (artifact fan-out uses two-hex-digit subdirectories, so the name can
// never collide with artifact storage).
const indexFile = "index.jsonl"

// indexRecord is one line of the key index: a Key in its hex wire form.
type indexRecord struct {
	Space   string `json:"space"`
	Program string `json:"program"`
	Dump    string `json:"dump"`
	Options string `json:"options"`
}

func (r indexRecord) key() (Key, bool) {
	var k Key
	var err error
	k.Space = r.Space
	if k.Program, err = ParseFingerprint(r.Program); err != nil {
		return k, false
	}
	if k.Dump, err = ParseFingerprint(r.Dump); err != nil {
		return k, false
	}
	if k.Options, err = ParseFingerprint(r.Options); err != nil {
		return k, false
	}
	return k, true
}

// loadIndex reads the persisted key index and opens the append handle.
// Unparseable lines are skipped — the index is advisory, and a torn tail
// from a crash mid-append must not block startup.
func (s *Store) loadIndex() error {
	path := filepath.Join(s.dir, indexFile)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 4096), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec indexRecord
			if json.Unmarshal(line, &rec) != nil {
				continue
			}
			if k, ok := rec.key(); ok {
				s.known[k] = true
				s.persisted[k] = true
			}
		}
		f.Close()
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.idxF = f
	return nil
}

// noteKeyLocked records a key in the in-memory set and, for disk-backed
// stores, appends it to the persisted index on first sight. Caller holds
// s.mu. Append errors are swallowed: the index degrades sweep coverage,
// it must not fail a Put.
func (s *Store) noteKeyLocked(k Key) {
	if s.known[k] {
		return
	}
	s.known[k] = true
	if s.idxF == nil || s.persisted[k] {
		return
	}
	rec := indexRecord{
		Space:   k.Space,
		Program: k.Program.String(),
		Dump:    k.Dump.String(),
		Options: k.Options.String(),
	}
	if line, err := json.Marshal(rec); err == nil {
		if _, err := s.idxF.Write(append(line, '\n')); err == nil {
			s.persisted[k] = true
		}
	}
}

// Keys returns every key this store has held (sorted by ID for
// deterministic iteration): the memory tier's current population, the
// disk tier's accumulated history via the persisted index, and keys seen
// earlier in this process. Dropped keys are excluded until re-stored.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	out := make([]Key, 0, len(s.known))
	for k := range s.known {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Drop removes k from both local tiers and from the known-key set: the
// repair path's answer to an artifact whose bytes no longer match their
// content address. The persisted index is append-only, so the key
// resurfaces in Keys() after a restart — harmless, since a sweep that
// finds it missing simply re-pulls it from a replica.
func (s *Store) Drop(k Key) {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.Remove(el)
		delete(s.items, k)
		delete(s.byID, el.Value.(*entry).id)
	}
	delete(s.known, k)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		os.Remove(s.path(k))
	}
}

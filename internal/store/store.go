package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a two-tier content-addressed store. The memory tier is a
// strict LRU bounded by entry count; the optional disk tier holds every
// artifact ever Put and serves memory misses (promoting what it finds
// back into the LRU). All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List            // front = most recently used
	items map[Key]*list.Element // key -> entry element
	dir   string                // "" = memory-only
	stats Stats
}

type entry struct {
	key  Key
	data []byte
}

// Stats is a snapshot of store effectiveness counters.
type Stats struct {
	// Hits counts Gets answered from either tier; DiskHits is the subset
	// answered by the disk tier (a memory miss that disk covered).
	Hits, DiskHits uint64
	// Misses counts Gets neither tier could answer.
	Misses uint64
	// Puts counts successful writes; Evictions counts LRU entries dropped
	// from the memory tier to respect the capacity bound.
	Puts, Evictions uint64
	// Entries is the current memory-tier population.
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DefaultCapacity bounds the memory tier when the caller passes a
// capacity < 1.
const DefaultCapacity = 4096

// New creates a memory-only store holding at most capacity entries
// (capacity < 1 means DefaultCapacity).
func New(capacity int) *Store {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// NewDisk creates a store whose memory tier spills nothing but whose disk
// tier under dir retains every artifact; dir is created if missing.
func NewDisk(capacity int, dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := New(capacity)
	s.dir = dir
	return s, nil
}

// Get returns the artifact stored under k. The boolean reports whether it
// was found; the returned slice is the caller's to keep (it is never
// mutated by the store).
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir == "" {
		s.miss()
		return nil, false
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.insertLocked(k, data)
	s.mu.Unlock()
	return data, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put stores data under k in both tiers. Storing under an existing key
// replaces the previous value (content-addressed keys make that a no-op
// in practice).
func (s *Store) Put(k Key, data []byte) error {
	s.mu.Lock()
	dir := s.dir
	s.stats.Puts++
	s.insertLocked(k, data)
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	// Write-then-rename so a crashed daemon never leaves a torn artifact
	// for the next one to serve.
	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// insertLocked adds or refreshes the memory-tier entry and enforces the
// LRU bound. Caller holds s.mu.
func (s *Store) insertLocked(k Key, data []byte) {
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).data = data
		return
	}
	s.items[k] = s.ll.PushFront(&entry{key: k, data: data})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// Persistent reports whether the store has a disk tier.
func (s *Store) Persistent() bool { return s.dir != "" }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// path maps a key to its disk-tier location, fanned out over 256
// two-hex-digit subdirectories so no single directory grows unbounded.
// Pure: Put creates the subdirectory, Get only probes.
func (s *Store) path(k Key) string {
	id := k.ID()
	return filepath.Join(s.dir, id[:2], id)
}

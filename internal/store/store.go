package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"res/internal/fault"
)

// Store is a two-tier content-addressed store. The memory tier is a
// strict LRU bounded by entry count; the optional disk tier holds every
// artifact ever Put and serves memory misses (promoting what it finds
// back into the LRU). All methods are safe for concurrent use.
//
// A third, optional tier is the cluster: SetReplication installs a
// write-through callback (every Put is offered to peer replicas) and a
// read-through fetch (a miss in both local tiers is pulled from a peer
// and repopulated locally), so a node that lost its disk heals lazily.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List            // front = most recently used
	items map[Key]*list.Element // key -> entry element
	byID  map[string]*list.Element
	dir   string // "" = memory-only
	stats Stats

	// known is every key this store has held and not Dropped — the
	// memory tier's population plus, for disk-backed stores, the history
	// recorded in the persisted key index (the disk filenames are key
	// hashes, so the keys themselves must be remembered separately for
	// the anti-entropy sweep to walk). persisted marks the subset already
	// appended to the index file; idxF is its append handle.
	known     map[Key]bool
	persisted map[Key]bool
	idxF      *os.File

	// faults, when set, injects disk-seam failures (read/write errors,
	// partial writes, bit-flips) for chaos testing. Nil in production.
	faults *fault.Injector

	// Replication callbacks; nil outside a cluster. onPut runs after the
	// local tiers accept a Put; fetch runs after both local tiers miss.
	onPut func(Key, []byte)
	fetch func(Key) ([]byte, bool)

	// observer, when set, is invoked after every public Get/Put with the
	// operation name ("get", "put") and its wall time — the service wires
	// it to the resd_store_op_seconds histogram. Must be fast and
	// non-blocking; it runs on the caller's goroutine.
	observer func(op string, d time.Duration)
}

type entry struct {
	key  Key
	id   string // key.ID(), cached for the byID index
	data []byte
}

// Stats is a snapshot of store effectiveness counters.
type Stats struct {
	// Hits counts Gets answered from either tier; DiskHits is the subset
	// answered by the disk tier (a memory miss that disk covered).
	Hits, DiskHits uint64
	// Misses counts Gets neither tier could answer.
	Misses uint64
	// Puts counts successful writes; Evictions counts LRU entries dropped
	// from the memory tier to respect the capacity bound.
	Puts, Evictions uint64
	// ReplicaHits is the subset of Hits answered by the read-through
	// replication fetch: both local tiers missed and a peer had the bytes.
	ReplicaHits uint64
	// Entries is the current memory-tier population.
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 before any Get.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DefaultCapacity bounds the memory tier when the caller passes a
// capacity < 1.
const DefaultCapacity = 4096

// New creates a memory-only store holding at most capacity entries
// (capacity < 1 means DefaultCapacity).
func New(capacity int) *Store {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Store{
		cap:       capacity,
		ll:        list.New(),
		items:     make(map[Key]*list.Element),
		byID:      make(map[string]*list.Element),
		known:     make(map[Key]bool),
		persisted: make(map[Key]bool),
	}
}

// SetReplication installs the cluster tier's callbacks: onPut is invoked
// (outside the store lock) after every successful Put so completed
// artifacts can be written through to peer replicas, and fetch is invoked
// when both local tiers miss so the artifact can be pulled from a peer
// and repopulated locally. Either may be nil. Replicated writes arriving
// from peers must use PutLocal, and peers serving fetches must read with
// GetLocal/GetByID, so the callbacks never recurse.
func (s *Store) SetReplication(onPut func(Key, []byte), fetch func(Key) ([]byte, bool)) {
	s.mu.Lock()
	s.onPut, s.fetch = onPut, fetch
	s.mu.Unlock()
}

// SetObserver installs the op-latency observer (nil clears it). Only
// the public Get/Put entry points are observed: replication-internal
// reads and writes (GetLocal, PutLocal, GetByID) would double-count the
// operation that triggered them.
func (s *Store) SetObserver(fn func(op string, d time.Duration)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// NewDisk creates a store whose memory tier spills nothing but whose disk
// tier under dir retains every artifact; dir is created if missing.
func NewDisk(capacity int, dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := New(capacity)
	s.dir = dir
	if err := s.loadIndex(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// SetFaults installs (or, with nil, clears) the fault injector for the
// store seam. Chaos-testing only; the nil injector never fires.
func (s *Store) SetFaults(in *fault.Injector) {
	s.mu.Lock()
	s.faults = in
	s.mu.Unlock()
}

// Get returns the artifact stored under k, consulting the memory tier,
// then the disk tier, then (when SetReplication installed one) the
// cluster fetch. The boolean reports whether it was found; the returned
// slice is the caller's to keep (it is never mutated by the store).
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		defer func(t0 time.Time) { fn("get", time.Since(t0)) }(time.Now())
	}
	if data, ok := s.getLocal(k); ok {
		return data, true
	}
	s.mu.Lock()
	fetch := s.fetch
	s.mu.Unlock()
	if fetch != nil {
		if data, ok := fetch(k); ok {
			s.mu.Lock()
			s.stats.Hits++
			s.stats.ReplicaHits++
			s.insertLocked(k, data)
			s.mu.Unlock()
			s.writeDisk(k, data) // repopulate the local disk tier too
			return data, true
		}
	}
	s.miss()
	return nil, false
}

// GetLocal is Get restricted to the local tiers: it never invokes the
// replication fetch. Cluster peers answering a fetch must use it (or
// GetByID) so two nodes missing the same key cannot fetch from each
// other forever.
func (s *Store) GetLocal(k Key) ([]byte, bool) {
	if data, ok := s.getLocal(k); ok {
		return data, true
	}
	s.miss()
	return nil, false
}

// getLocal probes the memory and disk tiers without counting a miss.
func (s *Store) getLocal(k Key) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	dir := s.dir
	inj := s.faults
	s.mu.Unlock()

	if dir == "" {
		return nil, false
	}
	if inj.Should(fault.SeamStore, fault.KindReadError) {
		// An injected disk read error is indistinguishable from a missing
		// file: the caller falls through to the replication fetch.
		return nil, false
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, false
	}
	// An injected bit-flip models silent media corruption: the poisoned
	// bytes propagate into the memory tier exactly as a real flipped
	// sector would, and only content-address verification (the repair
	// sweep, the cluster's pull validation) can catch them.
	data = inj.Corrupt(fault.SeamStore, fault.KindBitFlip, data)
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.insertLocked(k, data)
	s.mu.Unlock()
	return data, true
}

// PeekLocal probes the local tiers like GetLocal but without counting a
// miss: the anti-entropy sweep's read, which probes every known key and
// must not poison the hit-rate statistics.
func (s *Store) PeekLocal(k Key) ([]byte, bool) {
	return s.getLocal(k)
}

// GetByID returns the artifact whose Key.ID() equals id, probing the
// memory tier's ID index and then the disk tier (whose filenames are the
// IDs). It is local-only — no replication fetch — because the caller by
// construction does not know the key's components, only its address. The
// cluster layer uses it to serve results replicated from peers and to
// answer peers' fetches.
func (s *Store) GetByID(id string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.byID[id]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	dir := s.dir
	inj := s.faults
	s.mu.Unlock()
	if dir == "" || len(id) < 3 {
		return nil, false
	}
	if inj.Should(fault.SeamStore, fault.KindReadError) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(dir, id[:2], id))
	if err != nil {
		return nil, false
	}
	data = inj.Corrupt(fault.SeamStore, fault.KindBitFlip, data)
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.mu.Unlock()
	return data, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put stores data under k in both local tiers and offers it to the
// replication write-through, if one is installed. Storing under an
// existing key replaces the previous value (content-addressed keys make
// that a no-op in practice).
func (s *Store) Put(k Key, data []byte) error {
	s.mu.Lock()
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		defer func(t0 time.Time) { fn("put", time.Since(t0)) }(time.Now())
	}
	err := s.PutLocal(k, data)
	s.mu.Lock()
	onPut := s.onPut
	s.mu.Unlock()
	if onPut != nil {
		onPut(k, data)
	}
	return err
}

// PutLocal stores data under k in the local tiers only, without invoking
// the replication write-through. It is the entry point for writes that
// are themselves replication traffic (a peer's write-through, a fetch
// repopulation), which must not echo back into the cluster.
func (s *Store) PutLocal(k Key, data []byte) error {
	s.mu.Lock()
	s.stats.Puts++
	s.insertLocked(k, data)
	s.mu.Unlock()
	return s.writeDisk(k, data)
}

// writeDisk persists one artifact to the disk tier (no-op without one).
func (s *Store) writeDisk(k Key, data []byte) error {
	s.mu.Lock()
	dir := s.dir
	inj := s.faults
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	if inj.Should(fault.SeamStore, fault.KindWriteError) {
		return fmt.Errorf("store: injected write error")
	}
	if inj.Should(fault.SeamStore, fault.KindPartialWrite) {
		// Only a prefix reaches the platter: the rename below still
		// happens, so the disk tier now holds a torn artifact whose bytes
		// no longer match their content address — detectable only by
		// re-verification (the repair sweep does).
		data = data[:len(data)/2]
	}
	// Write-then-rename so a crashed daemon never leaves a torn artifact
	// for the next one to serve.
	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// insertLocked adds or refreshes the memory-tier entry and enforces the
// LRU bound. Caller holds s.mu.
func (s *Store) insertLocked(k Key, data []byte) {
	s.noteKeyLocked(k)
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).data = data
		return
	}
	el := s.ll.PushFront(&entry{key: k, id: k.ID(), data: data})
	s.items[k] = el
	s.byID[el.Value.(*entry).id] = el
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		delete(s.byID, oldest.Value.(*entry).id)
		s.stats.Evictions++
	}
}

// Persistent reports whether the store has a disk tier.
func (s *Store) Persistent() bool { return s.dir != "" }

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// path maps a key to its disk-tier location, fanned out over 256
// two-hex-digit subdirectories so no single directory grows unbounded.
// Pure: Put creates the subdirectory, Get only probes.
func (s *Store) path(k Key) string {
	id := k.ID()
	return filepath.Join(s.dir, id[:2], id)
}

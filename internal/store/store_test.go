package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"res/internal/asm"
	"res/internal/vm"
)

const testSrc = `
.global g 1
func main:
    const r0, 1
    storeg r0, &g
    loadg r1, &g
    addi r2, r1, -1
    assert r2
    halt
`

const testSrcRenamed = `
; Same image, different label names and comments.
.global g 1
func main:
    const r0, 1
    storeg r0, &g
    loadg r1, &g
    addi r2, r1, -1
    assert r2
    halt
`

func testDumpBytes(t *testing.T) []byte {
	t.Helper()
	p := asm.MustAssemble(testSrc)
	v, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := v.Run()
	if err != nil || d == nil {
		t.Fatalf("want a failing run, got dump=%v err=%v", d, err)
	}
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestProgramFingerprintDeterministic(t *testing.T) {
	a, err := ProgramFingerprint(asm.MustAssemble(testSrc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProgramFingerprint(asm.MustAssemble(testSrc))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same source, different fingerprints: %s vs %s", a, b)
	}
	c, err := ProgramFingerprint(asm.MustAssemble(testSrcRenamed))
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Fatalf("comment-only source change moved the fingerprint: %s vs %s", a, c)
	}
	d, err := ProgramFingerprint(asm.MustAssemble(`
.global g 1
func main:
    const r0, 2
    storeg r0, &g
    loadg r1, &g
    addi r2, r1, -2
    assert r2
    halt
`))
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Fatal("different programs share a fingerprint")
	}
}

func TestDumpCanonicalization(t *testing.T) {
	raw := testDumpBytes(t)
	fp1, canon1, _, err := CanonicalizeDump(raw)
	if err != nil {
		t.Fatal(err)
	}
	fp2, canon2, _, err := CanonicalizeDump(canon1)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 || !bytes.Equal(canon1, canon2) {
		t.Fatal("canonicalization is not idempotent")
	}
	if _, _, _, err := CanonicalizeDump([]byte("not a dump")); err == nil {
		t.Fatal("garbage bytes canonicalized without error")
	}
}

func TestKeyIDStableAndDistinct(t *testing.T) {
	p := BytesFingerprint([]byte("prog"))
	d := BytesFingerprint([]byte("dump"))
	o := OptionsFingerprint("depth=8")
	k := ResultKey(p, d, o)
	if k.ID() != ResultKey(p, d, o).ID() {
		t.Fatal("key ID is not stable")
	}
	if k.ID() == ResultKey(p, d, OptionsFingerprint("depth=9")).ID() {
		t.Fatal("option change did not move the key")
	}
	if k.ID() == DumpKey(d).ID() {
		t.Fatal("spaces collide")
	}
	if _, err := ParseFingerprint(p.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFingerprint("zz"); err == nil {
		t.Fatal("bad hex parsed")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	k := func(i int) Key { return DumpKey(BytesFingerprint([]byte{byte(i)})) }
	s.Put(k(1), []byte("one"))
	s.Put(k(2), []byte("two"))
	s.Get(k(1)) // 1 is now most recent
	s.Put(k(3), []byte("three"))
	if _, ok := s.Get(k(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get(k(1)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want hits=2 misses=1", st)
	}
	if got := st.HitRate(); got != 2.0/3.0 {
		t.Fatalf("hit rate = %v, want 2/3", got)
	}
}

func TestDiskTierSurvivesEvictionAndRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := NewDisk(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k1 := DumpKey(BytesFingerprint([]byte("a")))
	k2 := DumpKey(BytesFingerprint([]byte("b")))
	s.Put(k1, []byte("alpha"))
	s.Put(k2, []byte("beta")) // evicts k1 from memory, disk keeps it
	got, ok := s.Get(k1)
	if !ok || string(got) != "alpha" {
		t.Fatalf("disk tier miss: %q %v", got, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}

	// A fresh store over the same directory (a restarted daemon) serves
	// everything the old one persisted.
	s2, err := NewDisk(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{k1, k2} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("restart lost key %s", k.ID())
		}
	}
}

func TestGetByID(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := NewDisk(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	k1 := DumpKey(BytesFingerprint([]byte("a")))
	k2 := DumpKey(BytesFingerprint([]byte("b")))
	s.Put(k1, []byte("alpha"))
	// Memory-tier index answers by ID.
	if got, ok := s.GetByID(k1.ID()); !ok || string(got) != "alpha" {
		t.Fatalf("GetByID from memory = %q, %v", got, ok)
	}
	s.Put(k2, []byte("beta")) // evicts k1 from memory
	// Disk tier answers by ID (the filename is the ID).
	if got, ok := s.GetByID(k1.ID()); !ok || string(got) != "alpha" {
		t.Fatalf("GetByID from disk = %q, %v", got, ok)
	}
	if _, ok := s.GetByID("feedfacefeedface"); ok {
		t.Fatal("unknown ID answered")
	}
	// Memory-only store: the evicted ID is gone.
	m := New(1)
	m.Put(k1, []byte("alpha"))
	m.Put(k2, []byte("beta"))
	if _, ok := m.GetByID(k1.ID()); ok {
		t.Fatal("evicted ID still answered from a memory-only store")
	}
	if got, ok := m.GetByID(k2.ID()); !ok || string(got) != "beta" {
		t.Fatalf("live ID = %q, %v", got, ok)
	}
}

func TestReplicationHooks(t *testing.T) {
	s := New(8)
	var putKeys []Key
	backing := map[Key][]byte{}
	s.SetReplication(
		func(k Key, data []byte) { putKeys = append(putKeys, k) },
		func(k Key) ([]byte, bool) { d, ok := backing[k]; return d, ok },
	)
	k1 := DumpKey(BytesFingerprint([]byte("a")))
	k2 := DumpKey(BytesFingerprint([]byte("b")))
	k3 := DumpKey(BytesFingerprint([]byte("c")))

	// Put write-through fires; PutLocal stays local.
	s.Put(k1, []byte("alpha"))
	s.PutLocal(k2, []byte("beta"))
	if len(putKeys) != 1 || putKeys[0] != k1 {
		t.Fatalf("write-through saw %v, want just %s", putKeys, k1.ID())
	}

	// A local miss falls through to the fetch and repopulates the store.
	backing[k3] = []byte("gamma")
	if got, ok := s.Get(k3); !ok || string(got) != "gamma" {
		t.Fatalf("read-through = %q, %v", got, ok)
	}
	if st := s.Stats(); st.ReplicaHits != 1 {
		t.Fatalf("stats = %+v, want 1 replica hit", st)
	}
	delete(backing, k3)
	if got, ok := s.Get(k3); !ok || string(got) != "gamma" {
		t.Fatalf("repopulated entry = %q, %v; want a local hit", got, ok)
	}

	// GetLocal never consults the fetch.
	k4 := DumpKey(BytesFingerprint([]byte("d")))
	backing[k4] = []byte("delta")
	if _, ok := s.GetLocal(k4); ok {
		t.Fatal("GetLocal consulted the replication fetch")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := DumpKey(BytesFingerprint([]byte(fmt.Sprintf("%d", i%50))))
				if i%2 == 0 {
					s.Put(k, []byte{byte(i)})
				} else {
					s.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries > 32 {
		t.Fatalf("capacity bound violated: %d entries", st.Entries)
	}
}

// Package store is the content-addressed dump/result store behind the
// ingestion service: analysis artifacts are keyed by fingerprint tuples
// (program hash, dump hash, options hash), so resubmitting an identical
// coredump of an identical program under identical analysis options is a
// cache hit that never reaches the solver. The store has an in-memory LRU
// tier and an optional on-disk tier that survives process restarts.
//
// The canonical byte forms are the ones the repo already ships: a dump's
// identity is the byte stream of coredump.(*Dump).Write, and a program's
// identity is its isa.EncodeStream instruction encoding plus globals and
// layout. Two dumps that serialize identically are the same dump, no
// matter how their in-memory structs were produced.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"res/internal/coredump"
	"res/internal/isa"
	"res/internal/prog"
)

// Fingerprint is a SHA-256 content hash.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the conventional abbreviated form (first 12 hex digits)
// used in logs and shard names.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// IsZero reports whether the fingerprint is unset.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// ParseFingerprint parses the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("store: bad fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("store: bad fingerprint %q: want %d bytes, got %d", s, len(f), len(b))
	}
	copy(f[:], b)
	return f, nil
}

// BytesFingerprint hashes raw bytes. Callers addressing dumps should
// prefer DumpFingerprint, which canonicalizes first.
func BytesFingerprint(b []byte) Fingerprint { return sha256.Sum256(b) }

// DumpFingerprint returns the dump's content address and its canonical
// serialized bytes (the coredump wire form, which is deterministic: locks
// are emitted in sorted order and the memory image encoding is
// positional).
func DumpFingerprint(d *coredump.Dump) (Fingerprint, []byte, error) {
	b, err := d.Marshal()
	if err != nil {
		return Fingerprint{}, nil, err
	}
	return sha256.Sum256(b), b, nil
}

// CanonicalizeDump parses serialized dump bytes and re-serializes them, so
// the returned fingerprint and bytes are independent of any non-canonical
// variation in the input encoding. It also validates the bytes: garbage
// in, error out.
func CanonicalizeDump(raw []byte) (Fingerprint, []byte, *coredump.Dump, error) {
	d, err := coredump.Unmarshal(raw)
	if err != nil {
		return Fingerprint{}, nil, nil, err
	}
	fp, canon, err := DumpFingerprint(d)
	if err != nil {
		return Fingerprint{}, nil, nil, err
	}
	return fp, canon, d, nil
}

// ProgramFingerprint hashes a program's semantic content: the instruction
// stream in its versioned binary encoding, the globals table, and the
// memory layout. Assembling the same source twice — or two sources that
// differ only in comments and label names resolved to the same image —
// yields the same fingerprint.
func ProgramFingerprint(p *prog.Program) (Fingerprint, error) {
	h := sha256.New()
	if err := isa.EncodeStream(h, p.Code); err != nil {
		return Fingerprint{}, err
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		h.Write(b[:])
	}
	writeI64 := func(v int64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	writeU32(uint32(len(p.Globals)))
	for _, g := range p.Globals {
		io.WriteString(h, g.Name)
		h.Write([]byte{0})
		writeU32(g.Addr)
		writeU32(g.Size)
		writeU32(uint32(len(g.Init)))
		for _, v := range g.Init {
			writeI64(v)
		}
	}
	writeU32(p.Layout.MemSize)
	writeU32(p.Layout.GlobalBase)
	writeU32(p.Layout.HeapBase)
	writeU32(p.Layout.StackSize)
	writeU32(uint32(p.Layout.MaxThreads))
	var f Fingerprint
	h.Sum(f[:0])
	return f, nil
}

// OptionsFingerprint hashes a canonical, human-readable description of an
// analysis configuration. Callers must render every result-affecting knob
// into desc in a fixed order (see service.AnalysisConfig.Canonical);
// changing the configuration changes the fingerprint and so misses the
// cache rather than serving a result computed under different options.
func OptionsFingerprint(desc string) Fingerprint {
	return sha256.Sum256([]byte("res-options\x00" + desc))
}

// Key addresses one stored artifact. Space partitions the keyspace
// ("result" for analysis reports, "dump" for coredump blobs); unused
// fingerprint components are zero (a dump blob is addressed by content
// alone, so only Dump is set).
type Key struct {
	Space   string
	Program Fingerprint
	Dump    Fingerprint
	Options Fingerprint
}

// ResultKey addresses the analysis report for one (program, dump,
// options) tuple.
func ResultKey(program, dump, options Fingerprint) Key {
	return Key{Space: "result", Program: program, Dump: dump, Options: options}
}

// DumpKey addresses a stored coredump blob by content.
func DumpKey(dump Fingerprint) Key {
	return Key{Space: "dump", Dump: dump}
}

// ID renders the key as a stable hex identifier (the hash of its
// components). It is safe to use as a filename and doubles as the
// service's public result ID.
func (k Key) ID() string {
	h := sha256.New()
	io.WriteString(h, k.Space)
	h.Write([]byte{0})
	h.Write(k.Program[:])
	h.Write(k.Dump[:])
	h.Write(k.Options[:])
	return hex.EncodeToString(h.Sum(nil))
}

package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"res/internal/fault"
)

func testKey(space string, n byte) Key {
	return Key{
		Space:   space,
		Program: BytesFingerprint([]byte{'p', n}),
		Dump:    BytesFingerprint([]byte{'d', n}),
		Options: OptionsFingerprint(string([]byte{'o', n})),
	}
}

// TestKeyIndexSurvivesRestart: keys put into a disk-backed store are
// recoverable via Keys() by a fresh store over the same directory — the
// property the anti-entropy sweep needs, since disk filenames alone are
// one-way hashes of the keys.
func TestKeyIndexSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := byte(0); i < 5; i++ {
		k := testKey("result", i)
		if err := s.Put(k, []byte{'v', i}); err != nil {
			t.Fatal(err)
		}
		want[k.ID()] = true
	}
	reopened, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := reopened.Keys()
	if len(keys) != len(want) {
		t.Fatalf("reopened Keys() = %d entries, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[k.ID()] {
			t.Fatalf("unexpected key %v", k)
		}
		if data, ok := reopened.GetLocal(k); !ok || len(data) != 2 {
			t.Fatalf("indexed key %s not readable: %v %v", k.ID(), data, ok)
		}
	}
	// A corrupt index line is skipped, not fatal, and the rest survives.
	idx := filepath.Join(dir, indexFile)
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, append([]byte("{torn\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(again.Keys()); got != len(want) {
		t.Fatalf("corrupt index line dropped keys: %d, want %d", got, len(want))
	}
}

// TestDropRemovesEverywhere: Drop removes the memory entry, the disk
// file, and the Keys() listing; a re-Put restores all three.
func TestDropRemovesEverywhere(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("dump", 1)
	if err := s.Put(k, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	s.Drop(k)
	if _, ok := s.PeekLocal(k); ok {
		t.Fatal("dropped key still readable")
	}
	if _, ok := s.GetByID(k.ID()); ok {
		t.Fatal("dropped key still readable by ID")
	}
	if len(s.Keys()) != 0 {
		t.Fatalf("dropped key still listed: %v", s.Keys())
	}
	if err := s.Put(k, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PeekLocal(k); !ok || len(s.Keys()) != 1 {
		t.Fatal("re-put after drop did not restore the key")
	}
}

// TestStoreFaultSeams: injected write errors surface as Put errors,
// injected read errors read as misses, and injected bit-flips corrupt
// the returned bytes — each deterministic under its seed.
func TestStoreFaultSeams(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("result", 2)
	blob := []byte(`{"verdict":"x"}`)

	s.SetFaults(fault.New(1, fault.Rule{Seam: fault.SeamStore, Kind: fault.KindWriteError, P: 1}))
	if err := s.Put(k, blob); err == nil {
		t.Fatal("injected write error did not surface")
	}
	s.SetFaults(nil)
	if err := s.Put(k, blob); err != nil {
		t.Fatal(err)
	}

	// Memory tier hits bypass the disk seam entirely.
	s.SetFaults(fault.New(1, fault.Rule{Seam: fault.SeamStore, Kind: fault.KindReadError, P: 1}))
	if _, ok := s.GetLocal(k); !ok {
		t.Fatal("memory-tier hit was affected by the disk read fault")
	}
	// A fresh store over the same dir must go to disk — and miss.
	cold, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold.SetFaults(fault.New(1, fault.Rule{Seam: fault.SeamStore, Kind: fault.KindReadError, P: 1}))
	if _, ok := cold.GetLocal(k); ok {
		t.Fatal("injected read error did not read as a miss")
	}
	cold.SetFaults(fault.New(1, fault.Rule{Seam: fault.SeamStore, Kind: fault.KindBitFlip, P: 1}))
	got, ok := cold.GetLocal(k)
	if !ok {
		t.Fatal("bit-flip fault swallowed the read")
	}
	if bytes.Equal(got, blob) {
		t.Fatal("injected bit-flip returned pristine bytes")
	}

	// Partial write: the artifact lands torn; only content verification
	// can tell.
	torn := testKey("dump", 3)
	cold.SetFaults(fault.New(1, fault.Rule{Seam: fault.SeamStore, Kind: fault.KindPartialWrite, P: 1}))
	if err := cold.PutLocal(torn, []byte("full artifact bytes")); err != nil {
		t.Fatal(err)
	}
	cold.SetFaults(nil)
	fresh, err := NewDisk(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := fresh.PeekLocal(torn); !ok || len(data) >= len("full artifact bytes") {
		t.Fatalf("partial write stored %d bytes, want a strict prefix on disk", len(data))
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"res"
	"res/internal/obs"
	"res/internal/store"
	"res/internal/workload"
)

// TestTraceEndpoint drives the span-tree contract over HTTP: a freshly
// analyzed, checkpoint-anchored job serves its full trace (root
// "analysis", bisect and per-depth children), ?format=chrome exports
// trace-event JSON, and unknown jobs map to 404.
func TestTraceEndpoint(t *testing.T) {
	bug := workload.LongPrefix(400)
	svc := New(Config{ShardWorkers: 2, Analysis: AnalysisConfig{MaxDepth: 12, MaxNodes: 4000}})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	dump, cks := checkpointedSubmission(t, bug)
	job, err := c.SubmitSourceEvidenceCheckpoints(ctx, bug.Name, bug.Source, dump, nil, cks)
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("job = %+v, want done", done)
	}

	td, err := c.Trace(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Spans) == 0 || td.Spans[0].Name != "request" {
		t.Fatalf("trace root = %+v, want a \"request\" span first", td.Spans)
	}
	if td.TraceID == "" || td.TraceID != job.TraceID {
		t.Fatalf("stitched trace ID %q != job trace ID %q", td.TraceID, job.TraceID)
	}
	for _, want := range []string{"analyze", "analysis", "checkpoint-bisect", "search", "depth"} {
		if len(td.ByName(want)) == 0 {
			t.Errorf("trace has no %q span:\n%s", want, td.Summary())
		}
	}
	// The engine's span tree must hang under the request fragment's
	// analyze span, not float as a second root.
	anal := td.ByName("analysis")[0]
	if anal.Parent != td.ByName("analyze")[0].ID {
		t.Fatalf("analysis span parent = %d, want the analyze span", anal.Parent)
	}
	// The report body carries no trace — it lives on the endpoint only,
	// so stored and cached reports stay byte-identical.
	if bytes.Contains(done.Report, []byte(`"trace"`)) {
		t.Error("report JSON embeds the trace; it must stay endpoint-only")
	}

	// Chrome trace-event export.
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + job.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) != len(td.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(chrome.TraceEvents), len(td.Spans))
	}

	if _, err := c.Trace(ctx, "no-such-job"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown job trace error = %v", err)
	}
}

// TestTraceAbsentForStoreServedJobs pins the documented 404: a job
// answered from the shared result store never ran an analysis in this
// process, so it has no span tree to serve.
func TestTraceAbsentForStoreServedJobs(t *testing.T) {
	bug := workload.RaceCounter()
	st := store.New(0)
	ctx := context.Background()

	first := New(Config{ShardWorkers: 2, Store: st, Analysis: AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}})
	dump := failingDumps(t, bug, 1)[0]
	progID, err := first.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	job, err := first.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	if tr, ok := first.Trace(job.ID); !ok || tr == nil {
		t.Fatal("analyzing service has no trace for its own job")
	}
	if err := first.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A second daemon sharing the store serves the result without
	// re-analysis — cached, and traceless.
	second := New(Config{ShardWorkers: 2, Store: st, Analysis: AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}})
	defer second.Shutdown(context.Background())
	srv := httptest.NewServer(second.Handler())
	defer srv.Close()
	progID2, err := second.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	hit, err := second.Submit(progID2, dump)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatalf("job = %+v, want a store-served cache hit", hit)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + hit.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 || !strings.Contains(string(body), "no trace") {
		t.Fatalf("cached job trace = %d %s, want 404 \"no trace\"", resp.StatusCode, body)
	}
}

// TestEventsDroppedGapRecord pins the slow-watcher contract at the unit
// level: overflowing a subscriber increments the drop accounting, the
// next event that fits is preceded by a gap record with the exact wire
// shape {"kind":"dropped","n":N}, and the loss surfaces on /metrics as
// resd_events_dropped_total.
func TestEventsDroppedGapRecord(t *testing.T) {
	svc := New(Config{Analysis: AnalysisConfig{MaxDepth: 8}})
	defer svc.Shutdown(context.Background())

	js := &jobState{}
	sub := &progressSub{ch: make(chan ProgressEvent, 2)}
	js.subs = []*progressSub{sub}

	depthEvent := func(d int) res.Event {
		return res.Event{Kind: res.EventDepth, Depth: d}
	}
	// Two fit, the third and fourth overflow.
	for i := 1; i <= 4; i++ {
		svc.publish(js, depthEvent(i))
	}
	if got := sub.dropped.Load(); got != 2 {
		t.Fatalf("sub.dropped = %d, want 2", got)
	}
	if got := svc.eventsDropped.Load(); got != 2 {
		t.Fatalf("eventsDropped = %d, want 2", got)
	}

	// Drain the two delivered events; the next publish must mark the gap
	// before resuming.
	if ev := <-sub.ch; ev.Kind != "depth" || ev.Depth != 1 {
		t.Fatalf("first event = %+v", ev)
	}
	if ev := <-sub.ch; ev.Kind != "depth" || ev.Depth != 2 {
		t.Fatalf("second event = %+v", ev)
	}
	svc.publish(js, depthEvent(5))
	gap := <-sub.ch
	if gap.Kind != "dropped" || gap.Dropped != 2 {
		t.Fatalf("gap record = %+v, want kind=dropped n=2", gap)
	}
	wire, err := json.Marshal(gap)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != `{"kind":"dropped","n":2}` {
		t.Fatalf("gap wire shape = %s", wire)
	}
	if ev := <-sub.ch; ev.Kind != "depth" || ev.Depth != 5 {
		t.Fatalf("post-gap event = %+v", ev)
	}

	var buf bytes.Buffer
	obs.WriteProm(&buf, svc.MetricsSnapshot())
	if !strings.Contains(buf.String(), "resd_events_dropped_total 2") {
		t.Fatalf("metrics missing resd_events_dropped_total 2:\n%s", buf.String())
	}
}

// TestMetricsHistogramsAndBuildInfo checks the new exposition: after an
// analysis, /metrics carries the latency histograms (with _bucket,
// _sum, _count series), the build-info gauge, and the pprof-labelable
// per-depth-band solver series.
func TestMetricsHistogramsAndBuildInfo(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{ShardWorkers: 2, Analysis: AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	job, err := c.SubmitSource(ctx, bug.Name, bug.Source, failingDumps(t, bug, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PollResult(ctx, job.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"resd_analysis_seconds_bucket{le=\"+Inf\"} 1",
		"resd_analysis_seconds_count 1",
		"resd_analysis_seconds_sum ",
		"resd_queue_wait_seconds_count 1",
		"resd_solver_depth_seconds_bucket{depth_band=\"0-4\",le=\"+Inf\"}",
		"resd_build_info{version=\"" + obs.Version + "\"",
		"resd_events_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}

// TestEventsChurnAccounting hammers one watcher with a publisher that
// far outruns it and checks the drop accounting balances exactly: every
// published event is either delivered, covered by a gap record, or
// still pending in the subscriber's residual counter — and the global
// resd_events_dropped_total equals the sum of the losses. NDJSON
// watchers under churn lose events, never count.
func TestEventsChurnAccounting(t *testing.T) {
	svc := New(Config{Analysis: AnalysisConfig{MaxDepth: 8}})
	defer svc.Shutdown(context.Background())

	js := &jobState{}
	sub := &progressSub{ch: make(chan ProgressEvent, 4)}
	js.subs = []*progressSub{sub}

	const total = 5000
	// Overflow before the consumer starts so the run is guaranteed to
	// contain gaps whatever the scheduler does.
	for i := 0; i < 8; i++ {
		svc.publish(js, res.Event{Kind: res.EventDepth, Depth: i})
	}

	var delivered, gapSum uint64
	take := func(ev ProgressEvent) {
		if ev.Kind == "dropped" {
			gapSum += ev.Dropped
		} else {
			delivered++
		}
	}
	done := make(chan struct{})
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		n := 0
		for {
			select {
			case ev := <-sub.ch:
				take(ev)
				if n++; n%64 == 0 {
					time.Sleep(50 * time.Microsecond) // stay slower than the publisher
				}
			case <-done:
				for { // the publisher is finished; drain what's buffered
					select {
					case ev := <-sub.ch:
						take(ev)
					default:
						return
					}
				}
			}
		}
	}()
	for i := 8; i < total; i++ {
		svc.publish(js, res.Event{Kind: res.EventDepth, Depth: i})
	}
	close(done)
	<-consumed

	residual := sub.dropped.Load()
	if delivered+gapSum+residual != total {
		t.Fatalf("accounting leak: delivered=%d + gaps=%d + residual=%d != published=%d",
			delivered, gapSum, residual, total)
	}
	if got := svc.eventsDropped.Load(); got != gapSum+residual {
		t.Fatalf("resd_events_dropped_total = %d, want gaps+residual = %d", got, gapSum+residual)
	}
	if gapSum+residual == 0 {
		t.Fatal("churn produced no drops; the test exercised nothing")
	}
}

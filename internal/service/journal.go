package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"res/internal/fault"
	"res/internal/store"
)

// Journal is a per-node append-only record of the service's durable
// metadata: program registrations (by source) and terminal job outcomes
// (ID, fingerprint key, bucket membership). Result and dump *blobs*
// already survive restarts via the content-addressed store's disk tier;
// the journal makes the metadata around them — which jobs exist, which
// bucket each landed in, which programs were registered — survive too,
// so a restarted daemon still answers result polls and lists its crash
// buckets instead of coming back amnesiac.
//
// The format is JSON-lines: one self-contained entry per line, appended
// and fsynced, so a crash mid-append loses at most the torn final line
// (replay stops at the first unparseable line). When the live tail grows
// past the compaction threshold the whole journal is rewritten as a
// single snapshot entry (write-to-temp + rename, the same discipline the
// store's disk tier uses), and the snapshot is also mirrored into the
// content-addressed store when one with a disk tier is attached — a node
// that lost the journal file but kept its store directory still recovers.
type Journal struct {
	mu          sync.Mutex
	path        string
	f           *os.File
	appends     uint64
	compactions uint64
	corrupt     uint64 // undecodable mid-file entries skipped by replay
	pending     int    // entries in the file since the last compaction
	closed      bool

	// faults, when set, corrupts appended entries on the decode seam —
	// chaos testing's way of manufacturing the damage ReadAll must
	// tolerate. Nil in production.
	faults *fault.Injector
}

// DefaultJournalCompactEvery is the live-tail length that triggers
// compaction when Config.JournalCompactEvery is 0.
const DefaultJournalCompactEvery = 1024

// journalEntry is one line of the journal. Exactly one of the payload
// fields is set, selected by T.
type journalEntry struct {
	T        string           `json:"t"` // "program" | "job" | "snapshot"
	Program  *JournalProgram  `json:"program,omitempty"`
	Job      *JournalJob      `json:"job,omitempty"`
	Snapshot *journalSnapshot `json:"snapshot,omitempty"`
}

// JournalProgram records one source-registered program, enough to
// re-register it (and so re-open its analysis shard) on replay.
type JournalProgram struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
}

// JournalKey is a store.Key in its hex wire form.
type JournalKey struct {
	Space   string `json:"space"`
	Program string `json:"program"`
	Dump    string `json:"dump"`
	Options string `json:"options"`
}

func journalKey(k store.Key) JournalKey {
	return JournalKey{
		Space:   k.Space,
		Program: k.Program.String(),
		Dump:    k.Dump.String(),
		Options: k.Options.String(),
	}
}

func (jk JournalKey) key() (store.Key, error) {
	var k store.Key
	var err error
	k.Space = jk.Space
	if k.Program, err = store.ParseFingerprint(jk.Program); err != nil {
		return k, err
	}
	if k.Dump, err = store.ParseFingerprint(jk.Dump); err != nil {
		return k, err
	}
	k.Options, err = store.ParseFingerprint(jk.Options)
	return k, err
}

// JournalJob records one terminal job: its identity, outcome, and bucket
// membership. Report bytes are deliberately absent — for a complete job
// they live in the content-addressed store under Key; for a failed or
// partial one they were never durable to begin with.
type JournalJob struct {
	ID          string     `json:"id"`
	Program     string     `json:"program"`
	ProgramName string     `json:"program_name,omitempty"`
	Status      Status     `json:"status"`
	Partial     bool       `json:"partial,omitempty"`
	Bucket      string     `json:"bucket,omitempty"`
	Error       string     `json:"error,omitempty"`
	Mode        string     `json:"mode,omitempty"`
	Evidence    []string   `json:"evidence,omitempty"`
	Warnings    []string   `json:"warnings,omitempty"`
	Key         JournalKey `json:"key"`
	FinishedAt  time.Time  `json:"finished_at"`
}

// journalSnapshot is the compacted form: the full durable state as of
// compaction time, replayed as if each element had been appended.
type journalSnapshot struct {
	Programs []JournalProgram `json:"programs,omitempty"`
	Jobs     []JournalJob     `json:"jobs,omitempty"`
}

// JournalSnapshotKey addresses the snapshot mirror inside the
// content-addressed store. It is a fixed, node-local key (stores are
// per-node; the cluster layer never replicates the "journal" space and
// refuses to serve this ID over the wire — the snapshot holds program
// sources and the full job history, not a result).
func JournalSnapshotKey() store.Key { return store.Key{Space: "journal-snapshot"} }

// OpenJournal opens (creating if needed) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f}
	// The live tail carries over across restarts: count existing entries
	// so the compaction threshold is about file length, not process age.
	entries, _ := j.ReadAll()
	j.pending = len(entries)
	return j, nil
}

// Append writes one entry and reports whether the live tail has grown
// past the compaction threshold (the caller owns compaction because only
// it can build the snapshot).
func (j *Journal) Append(e journalEntry, compactEvery int) (needCompact bool, err error) {
	if compactEvery <= 0 {
		compactEvery = DefaultJournalCompactEvery
	}
	data, err := json.Marshal(e)
	if err != nil {
		return false, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Injected corruption happens to the persisted line, after marshal
	// and before write: exactly what a bad sector does.
	data = j.faults.Corrupt(fault.SeamDecode, fault.KindJournalCorrupt, data)
	if j.closed {
		return false, fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	j.appends++
	j.pending++
	return j.pending >= compactEvery, nil
}

// ReadAll parses every entry currently in the journal. A torn final line
// (crash mid-append) ends the replay silently, but an undecodable entry
// with intact entries after it is damage, not a torn tail: it is skipped
// and counted (CorruptEntries / resd_journal_corrupt_entries_total), and
// the replay keeps going — one flipped bit mid-file must cost one entry,
// not the entire history behind it.
func (j *Journal) ReadAll() ([]journalEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		if line := sc.Bytes(); len(line) > 0 {
			lines = append(lines, append([]byte(nil), line...))
		}
	}
	var out []journalEntry
	var corrupt uint64
	for i, line := range lines {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				break // torn tail: the crash-mid-append case, not corruption
			}
			corrupt++
			continue
		}
		out = append(out, e)
	}
	// Set, not add: ReadAll runs more than once over the same file (open
	// counts the tail, replay parses it), and one damaged entry must read
	// as one, not one per pass. Compaction rewrites the file clean, so a
	// later pass legitimately resets the count.
	j.corrupt = corrupt
	return out, nil
}

// Compact atomically replaces the journal with a single snapshot entry.
func (j *Journal) Compact(snap journalSnapshot) error {
	data, err := json.Marshal(journalEntry{T: "snapshot", Snapshot: &snap})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	// Reopen the append handle onto the new file.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f.Close()
	j.f = f
	j.pending = 1
	j.compactions++
	return nil
}

// JournalStats is a snapshot of journal activity.
type JournalStats struct {
	Appends     uint64 `json:"appends"`
	Compactions uint64 `json:"compactions"`
	// CorruptEntries counts undecodable mid-file entries skipped (and
	// lost) during replay — nonzero means the journal file took damage.
	CorruptEntries uint64 `json:"corrupt_entries,omitempty"`
}

// Stats returns the activity counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Appends: j.appends, Compactions: j.compactions, CorruptEntries: j.corrupt}
}

// SetFaults installs (or clears) the decode-seam fault injector:
// subsequently appended entries are corrupted with the armed
// probability. Chaos-testing only.
func (j *Journal) SetFaults(in *fault.Injector) {
	j.mu.Lock()
	j.faults = in
	j.mu.Unlock()
}

// Close releases the file handle; later appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// ---- Service-side journal integration ----

// journalJobRecord builds the journal form of a terminal job. Caller
// holds s.mu (or the job is terminal and no longer mutated).
func journalJobRecord(js *jobState) *JournalJob {
	return &JournalJob{
		ID:          js.job.ID,
		Program:     js.job.Program,
		ProgramName: js.job.ProgramName,
		Status:      js.job.Status,
		Partial:     js.job.Partial,
		Bucket:      js.job.Bucket,
		Error:       js.job.Error,
		Mode:        js.job.Mode,
		Evidence:    js.job.Evidence,
		Warnings:    js.job.Warnings,
		Key:         journalKey(js.key),
		FinishedAt:  js.job.FinishedAt,
	}
}

// journalAppend writes one entry and runs compaction when the tail has
// grown past the threshold. Append errors are swallowed — a journal
// that stopped accepting writes (disk full, closed during shutdown)
// degrades durability, it must not fail analyses.
func (s *Service) journalAppend(e journalEntry) {
	j := s.cfg.Journal
	if j == nil || s.replaying {
		return
	}
	need, err := j.Append(e, s.cfg.JournalCompactEvery)
	if err != nil || !need {
		return
	}
	s.mu.Lock()
	snap := s.journalSnapshotLocked()
	s.mu.Unlock()
	if j.Compact(snap) == nil {
		s.mirrorSnapshot(snap)
	}
}

// mirrorSnapshot writes the compacted snapshot into the content-addressed
// store's disk tier (PutLocal: the "journal" space is node-local state and
// is never replicated to cluster peers).
func (s *Service) mirrorSnapshot(snap journalSnapshot) {
	if !s.store.Persistent() {
		return
	}
	if data, err := json.Marshal(snap); err == nil {
		s.store.PutLocal(JournalSnapshotKey(), data)
	}
}

// journalSnapshotLocked collects the full durable state: every
// source-registered program and every terminal job (live records and
// evicted store-backed records alike). Caller holds s.mu.
func (s *Service) journalSnapshotLocked() journalSnapshot {
	var snap journalSnapshot
	for _, p := range s.sources {
		snap.Programs = append(snap.Programs, p)
	}
	sort.Slice(snap.Programs, func(i, j int) bool { return snap.Programs[i].Source < snap.Programs[j].Source })
	for _, js := range s.jobs {
		if js.job.Status.Terminal() {
			snap.Jobs = append(snap.Jobs, *journalJobRecord(js))
		}
	}
	for id, rec := range s.evicted {
		snap.Jobs = append(snap.Jobs, JournalJob{
			ID: id, Program: rec.program, ProgramName: rec.programName,
			Status: StatusDone, Bucket: rec.bucket, Mode: rec.mode,
			Key: journalKey(rec.key), FinishedAt: rec.finished,
		})
	}
	sort.Slice(snap.Jobs, func(i, j int) bool {
		if !snap.Jobs[i].FinishedAt.Equal(snap.Jobs[j].FinishedAt) {
			return snap.Jobs[i].FinishedAt.Before(snap.Jobs[j].FinishedAt)
		}
		return snap.Jobs[i].ID < snap.Jobs[j].ID
	})
	return snap
}

// replayJournal restores durable state at construction time. The journal
// file wins; if it is empty or missing, the snapshot mirrored into the
// store's disk tier (if any) is used instead — a node that lost the
// journal but kept its store directory still recovers its history.
func (s *Service) replayJournal() {
	s.replaying = true
	defer func() { s.replaying = false }()
	entries, err := s.cfg.Journal.ReadAll()
	if err != nil || len(entries) == 0 {
		if data, ok := s.store.GetLocal(JournalSnapshotKey()); ok {
			var snap journalSnapshot
			if json.Unmarshal(data, &snap) == nil {
				entries = []journalEntry{{T: "snapshot", Snapshot: &snap}}
			}
		}
	}
	n := 0
	for _, e := range entries {
		switch e.T {
		case "program":
			if e.Program != nil {
				s.replayProgram(*e.Program)
				n++
			}
		case "job":
			if e.Job != nil {
				s.replayJob(*e.Job)
				n++
			}
		case "snapshot":
			if e.Snapshot != nil {
				for _, p := range e.Snapshot.Programs {
					s.replayProgram(p)
					n++
				}
				for _, jj := range e.Snapshot.Jobs {
					s.replayJob(jj)
					n++
				}
			}
		}
	}
	s.mu.Lock()
	s.journalReplayed = n
	s.mu.Unlock()
}

// replayProgram re-registers one journaled program; a source that no
// longer assembles is skipped (its jobs still replay as history).
func (s *Service) replayProgram(p JournalProgram) {
	s.RegisterSource(p.Name, p.Source)
}

// replayJob restores one terminal job. A later entry for the same ID
// supersedes an earlier one (the requeue-after-partial flow journals the
// same ID twice), so any previous restoration is removed first. Complete
// jobs come back as store-backed records — their reports resolve from
// the content-addressed store exactly like records evicted by the
// MaxJobs bound; failed/canceled/partial jobs come back as bare history
// (their answers were never durable, resubmission re-analyzes).
func (s *Service) replayJob(jj JournalJob) {
	key, err := jj.Key.key()
	if err != nil || jj.ID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.jobs[jj.ID]; ok {
		delete(s.jobs, jj.ID)
		s.removeBucketLocked(prev.job.Bucket, jj.ID)
	}
	if rec, ok := s.evicted[jj.ID]; ok {
		delete(s.evicted, jj.ID)
		s.removeBucketLocked(rec.bucket, jj.ID)
	}
	if jj.Status == StatusDone && !jj.Partial {
		s.insertEvictedLocked(jj.ID, evictedRec{
			key: key, program: jj.Program, programName: jj.ProgramName,
			bucket: jj.Bucket, mode: jj.Mode, finished: jj.FinishedAt,
		})
		s.addBucketLocked(jj.Bucket, jj.ID)
		return
	}
	done := make(chan struct{})
	close(done)
	js := &jobState{
		job: Job{
			ID: jj.ID, Program: jj.Program, ProgramName: jj.ProgramName,
			Status: jj.Status, Partial: jj.Partial, Bucket: jj.Bucket,
			Error: jj.Error, Mode: jj.Mode, Evidence: jj.Evidence,
			Warnings: jj.Warnings, FinishedAt: jj.FinishedAt,
		},
		key:  key,
		done: done,
	}
	s.jobs[jj.ID] = js
	if jj.Status == StatusDone {
		s.addBucketLocked(jj.Bucket, jj.ID)
	}
	s.recordDoneLocked(js)
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"res"
	"res/internal/breadcrumb"
	"res/internal/evidence"
	"res/internal/store"
	"res/internal/workload"
)

// fixBuggySrc fails deterministically: x is 5 but the check asserts 4.
// The check and the failure site live in separate labeled regions so
// patches to one leave the other in place.
const fixBuggySrc = `
.global x 1
func main:
    const r1, 5
    storeg r1, &x
check:
    loadg r2, &x
    const r3, 4
    cmpeq r4, r2, r3
site:
    assert r4
    halt
`

const fixGoodPatch = `replace check
    loadg r2, &x
    const r3, 5
    cmpeq r4, r2, r3
end
`

const fixBadPatch = `replace check
    loadg r2, &x
    const r3, 3
    cmpeq r4, r2, r3
end
`

// fixService builds a service holding the deterministic buggy program
// (registered by source, as a fix-verifying fleet would) plus one
// failing dump of it.
func fixService(t testing.TB, cfg Config) (*Service, string, []byte) {
	t.Helper()
	if cfg.Analysis == (AnalysisConfig{}) {
		cfg.Analysis = AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}
	}
	svc := New(cfg)
	id, err := svc.RegisterSource("fix-buggy", fixBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.MustAssemble(fixBuggySrc)
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("buggy program did not fail")
	}
	db, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return svc, id, db
}

// waitDone submits nothing; it just waits a job to StatusDone.
func waitDone(t testing.TB, svc *Service, job Job) Job {
	t.Helper()
	done, err := svc.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("job = %+v, want done", done)
	}
	return done
}

// TestSubmitFixVerdicts is the endpoint's acceptance property: verdicts
// are deterministic and cached by the (program, dump, options, patch)
// tuple — resubmitting the same fix is a byte-identical cache hit, and
// distinct patches get distinct jobs with distinct verdicts.
func TestSubmitFixVerdicts(t *testing.T) {
	svc, progID, dump := fixService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())

	good, err := svc.SubmitFix(progID, dump, []byte(fixGoodPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if good.Mode != ModeFixVerify {
		t.Fatalf("job mode = %q, want %q", good.Mode, ModeFixVerify)
	}
	goodDone := waitDone(t, svc, good)
	var rep struct {
		Kind     string `json:"kind"`
		Verdict  string `json:"verdict"`
		CauseKey string `json:"cause_key"`
	}
	if err := json.Unmarshal(goodDone.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "fixverify" || rep.Verdict != "fixed" {
		t.Fatalf("report = %s, want kind fixverify verdict fixed", goodDone.Report)
	}
	if rep.CauseKey == "" {
		t.Fatal("verdict carries no cause key")
	}
	if goodDone.Bucket != "" {
		t.Fatalf("fix job joined crash bucket %q; verdicts must stay out of dedup", goodDone.Bucket)
	}

	// Same (dump, patch): served from the store, byte-identical.
	again, err := svc.SubmitFix(progID, dump, []byte(fixGoodPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != goodDone.ID {
		t.Fatalf("same fix tuple produced job %s, want %s", again.ID, goodDone.ID)
	}
	if !again.Cached || !bytes.Equal(again.Report, goodDone.Report) {
		t.Fatalf("resubmission = %+v, want cached byte-identical verdict", again)
	}

	// A different patch is a different tuple with its own verdict.
	bad, err := svc.SubmitFix(progID, dump, []byte(fixBadPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if bad.ID == goodDone.ID {
		t.Fatal("distinct patches share a job ID")
	}
	badDone := waitDone(t, svc, bad)
	if err := json.Unmarshal(badDone.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "not-fixed" {
		t.Fatalf("bad patch verdict = %q, want not-fixed", rep.Verdict)
	}

	// The fix tuple is also distinct from the plain analysis of the dump.
	plain, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == goodDone.ID || plain.ID == badDone.ID {
		t.Fatal("analysis job shares an ID with a fix job")
	}

	m := svc.Metrics()
	if m.FixVerifyTotal != 2 {
		t.Fatalf("fixverify total = %d, want 2", m.FixVerifyTotal)
	}
	if m.FixVerifyVerdicts["fixed"] != 1 || m.FixVerifyVerdicts["not-fixed"] != 1 {
		t.Fatalf("verdict counters = %+v", m.FixVerifyVerdicts)
	}
}

// TestSubmitFixErrors covers the rejection paths: unparseable patches,
// programs the service holds no source for, and a caller-supplied source
// that is not the named program's.
func TestSubmitFixErrors(t *testing.T) {
	svc, progID, dump := fixService(t, Config{})
	defer svc.Shutdown(context.Background())

	if _, err := svc.SubmitFix(progID, dump, []byte("replace nowhere"), "", nil); !errors.Is(err, ErrBadPatch) {
		t.Fatalf("truncated patch: %v, want ErrBadPatch", err)
	}

	// A program registered by binary only: no source to patch.
	bug := workload.RaceCounter()
	binID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SubmitFix(binID, dump, []byte(fixGoodPatch), "", nil); !errors.Is(err, ErrNoSource) {
		t.Fatalf("sourceless program: %v, want ErrNoSource", err)
	}
	// Supplying that bug's real source for the wrong program ID is caught.
	if _, err := svc.SubmitFix(progID, dump, []byte(fixGoodPatch), bug.Source, nil); !errors.Is(err, ErrNoSource) {
		t.Fatalf("mismatched source: %v, want ErrNoSource", err)
	}
	// Supplying the right source for a binary-registered program works
	// (identity patch: the verdict is not-fixed, but the job completes).
	job, err := svc.SubmitFix(binID, failingDumps(t, bug, 1)[0], nil, bug.Source, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, svc, job)
}

// TestMinimizeJob is the minimize endpoint's acceptance property: a
// finished analysis with a redundant attachment set minimizes to
// strictly fewer evidence sources under the byte-identical cause key,
// and the repro bytes in the report are the canonical wire form.
func TestMinimizeJob(t *testing.T) {
	st, err := store.NewDisk(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bug := workload.RaceCounter()
	svc := New(Config{
		ShardWorkers: 2,
		Analysis:     AnalysisConfig{MaxDepth: 10, MaxNodes: 2500},
		Store:        st,
	})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{
		EventEvery: 3, EventWindow: 64, BranchWindow: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Redundant attachment set: recorded evidence plus the classic dump
	// hints, which largely duplicate it.
	srcs := append(evidence.Set{}, set...)
	srcs = append(srcs, evidence.LBR{Mode: breadcrumb.RecordAll}, evidence.OutputLog{})
	dump, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	job, err := svc.SubmitEvidence(progID, dump, srcs.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := waitDone(t, svc, job)
	var baseRep struct {
		Cause struct {
			Key string `json:"key"`
		} `json:"cause"`
	}
	if err := json.Unmarshal(base.Report, &baseRep); err != nil {
		t.Fatal(err)
	}
	if baseRep.Cause.Key == "" {
		t.Fatalf("analysis found no cause: %s", base.Report)
	}

	mj, err := svc.MinimizeJob(base.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mj.Mode != ModeMinimize {
		t.Fatalf("minimize job mode = %q", mj.Mode)
	}
	if mj.ID == base.ID {
		t.Fatal("minimize job shares the analysis job's ID")
	}
	mdone := waitDone(t, svc, mj)
	var mrep struct {
		Kind        string `json:"kind"`
		CauseKey    string `json:"cause_key"`
		OrigSources int    `json:"orig_sources"`
		MinSources  int    `json:"min_sources"`
		Fingerprint string `json:"fingerprint"`
		Repro       []byte `json:"repro"`
	}
	if err := json.Unmarshal(mdone.Report, &mrep); err != nil {
		t.Fatal(err)
	}
	if mrep.Kind != "minimal-repro" {
		t.Fatalf("report kind = %q", mrep.Kind)
	}
	if mrep.CauseKey != baseRep.Cause.Key {
		t.Fatalf("minimized cause key %q != analysis %q", mrep.CauseKey, baseRep.Cause.Key)
	}
	if mrep.OrigSources != len(srcs) || mrep.MinSources >= mrep.OrigSources {
		t.Fatalf("sources %d/%d; want a strict shrink of %d", mrep.MinSources, mrep.OrigSources, len(srcs))
	}
	m, err := res.DecodeMinimalRepro(mrep.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != mrep.Fingerprint {
		t.Fatal("report fingerprint does not match the repro bytes")
	}
	if mdone.Bucket != "" {
		t.Fatalf("minimize job joined crash bucket %q", mdone.Bucket)
	}

	// Minimizing the same job again is a cache hit on the same tuple.
	again, err := svc.MinimizeJob(base.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != mdone.ID || !again.Cached || !bytes.Equal(again.Report, mdone.Report) {
		t.Fatalf("re-minimize = %+v, want cached byte-identical repro", again)
	}
	met := svc.Metrics()
	if met.MinimizeTotal != 1 || met.MinimizeRuns < 2 || met.MinimizeReductions < 1 {
		t.Fatalf("minimize metrics = total %d runs %d reductions %d", met.MinimizeTotal, met.MinimizeRuns, met.MinimizeReductions)
	}
}

// TestMinimizeUnavailable covers the conflict paths: memory-only stores
// cannot recover the dump, mode jobs cannot be minimized, and unknown
// jobs stay unknown.
func TestMinimizeUnavailable(t *testing.T) {
	svc, progID, dump := fixService(t, Config{})
	defer svc.Shutdown(context.Background())

	if _, err := svc.MinimizeJob("nope", nil); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}

	job, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, svc, job)
	// The default store is memory-only: no ingest archive to rebuild from.
	if _, err := svc.MinimizeJob(done.ID, nil); !errors.Is(err, ErrMinimizeUnavailable) {
		t.Fatalf("memory-only store: %v, want ErrMinimizeUnavailable", err)
	}

	fix, err := svc.SubmitFix(progID, dump, []byte(fixGoodPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	fixDone := waitDone(t, svc, fix)
	if _, err := svc.MinimizeJob(fixDone.ID, nil); !errors.Is(err, ErrMinimizeUnavailable) {
		t.Fatalf("minimize of a fix job: %v, want ErrMinimizeUnavailable", err)
	}
}

// TestFixVerdictJournalRestart: verdicts are durable — after a daemon
// restart the verdict job replays from the journal and store, and
// resubmitting the same fix tuple is still a byte-identical cache hit.
func TestFixVerdictJournalRestart(t *testing.T) {
	dir := t.TempDir()
	newNode := func() (*Service, *Journal) {
		st, err := store.NewDisk(0, filepath.Join(dir, "store"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{
			Analysis:     AnalysisConfig{MaxDepth: 14, MaxNodes: 4000},
			ShardWorkers: 2,
			Store:        st,
			Journal:      j,
		}), j
	}
	svc, j := newNode()
	progID, err := svc.RegisterSource("fix-buggy", fixBuggySrc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.MustAssemble(fixBuggySrc)
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil || d == nil {
		t.Fatalf("run: %v, dump %v", err, d)
	}
	dump, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.SubmitFix(progID, dump, []byte(fixGoodPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, svc, job)
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.Close()

	svc2, j2 := newNode()
	defer func() {
		svc2.Shutdown(context.Background())
		j2.Close()
	}()
	got, ok := svc2.Job(done.ID)
	if !ok || got.Status != StatusDone || !got.Cached {
		t.Fatalf("restored verdict job = %+v, ok=%v; want store-backed done", got, ok)
	}
	if got.Mode != ModeFixVerify {
		t.Fatalf("restored job mode = %q, want %q", got.Mode, ModeFixVerify)
	}
	if !bytes.Equal(got.Report, done.Report) {
		t.Fatal("restored verdict differs from the original")
	}
	again, err := svc2.SubmitFix(progID, dump, []byte(fixGoodPatch), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Report, done.Report) {
		t.Fatalf("fix resubmit after restart = %+v, want cached original verdict", again)
	}
}

// TestHTTPFixLoop drives the closing-the-loop endpoints through a real
// HTTP server with the Client: POST /v1/fixes to a verdict, POST
// /v1/jobs/{id}/minimize to a minimal repro, and the error-code
// contract (400 bad patch, 404 unknown job, 409 minimize unavailable).
func TestHTTPFixLoop(t *testing.T) {
	st, err := store.NewDisk(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{
		ShardWorkers: 2,
		Analysis:     AnalysisConfig{MaxDepth: 14, MaxNodes: 4000},
		Store:        st,
	})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	p := res.MustAssemble(fixBuggySrc)
	d, err := res.Run(p, res.RunConfig{MaxSteps: 10000})
	if err != nil || d == nil {
		t.Fatalf("run: %v, dump %v", err, d)
	}
	dump, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	job, err := c.SubmitFix(ctx, SubmitFixRequest{
		ProgramName:   "fix-buggy",
		ProgramSource: fixBuggySrc,
		Patch:         []byte(fixGoodPatch),
		Dump:          dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var vrep struct {
		Kind    string `json:"kind"`
		Verdict string `json:"verdict"`
	}
	if err := json.Unmarshal(done.Report, &vrep); err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || vrep.Kind != "fixverify" || vrep.Verdict != "fixed" {
		t.Fatalf("fix job = %+v report %s, want done fixed", done, done.Report)
	}

	// Minimize the underlying analysis job (same tuple, no patch/mode).
	aj, err := c.SubmitSource(ctx, "fix-buggy", fixBuggySrc, dump)
	if err != nil {
		t.Fatal(err)
	}
	if aj, err = c.PollResult(ctx, aj.ID, 10*time.Millisecond); err != nil || aj.Status != StatusDone {
		t.Fatalf("analysis job = %+v, err %v", aj, err)
	}
	mj, err := c.MinimizeJob(ctx, aj.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mj, err = c.PollResult(ctx, mj.ID, 10*time.Millisecond); err != nil || mj.Status != StatusDone {
		t.Fatalf("minimize job = %+v, err %v", mj, err)
	}
	var mrep struct {
		Kind  string `json:"kind"`
		Repro []byte `json:"repro"`
	}
	if err := json.Unmarshal(mj.Report, &mrep); err != nil {
		t.Fatal(err)
	}
	if mrep.Kind != "minimal-repro" {
		t.Fatalf("minimize report kind = %q: %s", mrep.Kind, mj.Report)
	}
	if _, err := res.DecodeMinimalRepro(mrep.Repro); err != nil {
		t.Fatalf("report repro bytes do not decode: %v", err)
	}

	// Error-code contract.
	post := func(path, body string) int {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/fixes", `{"program_id":"`+aj.Program+`","dump":"QUFB"}`); code != 400 {
		t.Fatalf("missing patch: %d, want 400", code)
	}
	if code := post("/v1/jobs/no-such-job/minimize", ""); code != 404 {
		t.Fatalf("minimize unknown job: %d, want 404", code)
	}
	if code := post("/v1/jobs/"+job.ID+"/minimize", ""); code != 409 {
		t.Fatalf("minimize a fix job: %d, want 409", code)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"res/internal/evidence"
	"res/internal/workload"
)

// recordedSubmission produces one failing dump plus recorded evidence
// for the bug, both in wire form.
func recordedSubmission(t testing.TB, bug *workload.Bug) (dump, ev []byte) {
	t.Helper()
	d, set, _, err := bug.FindFailureRecorded(60, evidence.RecordConfig{
		EventEvery: 3, EventWindow: 64, BranchWindow: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 {
		t.Fatal("recorder produced no evidence")
	}
	dump, err = d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return dump, set.Encode()
}

// TestEvidenceCacheIdentity is the evidence-aware caching contract: the
// same dump with and without evidence are distinct tuples (distinct IDs,
// distinct store entries, both analyzed), identical evidence coalesces
// or cache-hits, and different evidence is again distinct.
func TestEvidenceCacheIdentity(t *testing.T) {
	// AmbiguousDispatch's backward search branches over many dispatch
	// targets, so a sparse event log measurably prunes even through the
	// analyzer's stop-at-first-faithful-cause path.
	bug := workload.AmbiguousDispatch(8)
	cfg := Config{ShardWorkers: 2, Analysis: AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}}
	svc := New(cfg)
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dump, ev := recordedSubmission(t, bug)

	plain, err := svc.Submit(progID, dump)
	if err != nil {
		t.Fatal(err)
	}
	withEv, err := svc.SubmitEvidence(progID, dump, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ID == withEv.ID {
		t.Fatalf("evidence did not change the cache identity: both jobs are %s", plain.ID)
	}
	if len(withEv.Evidence) == 0 {
		t.Fatalf("evidence kinds not recorded on the job: %+v", withEv)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	plainDone, err := svc.Wait(ctx, plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	evDone, err := svc.Wait(ctx, withEv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if plainDone.Status != StatusDone || evDone.Status != StatusDone {
		t.Fatalf("jobs did not complete: %v / %v", plainDone.Status, evDone.Status)
	}
	if plainDone.Cached || evDone.Cached {
		t.Fatal("distinct tuples must both be analyzed, not served from cache")
	}
	// Both identified the same defect: same bucket.
	if plainDone.Bucket == "" || plainDone.Bucket != evDone.Bucket {
		t.Fatalf("buckets differ: %q vs %q", plainDone.Bucket, evDone.Bucket)
	}
	// The evidence-guided analysis did less search work.
	var ps, es struct {
		Stats struct {
			Attempts int `json:"attempts"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(plainDone.Report, &ps); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(evDone.Report, &es); err != nil {
		t.Fatal(err)
	}
	if es.Stats.Attempts >= ps.Stats.Attempts {
		t.Errorf("evidence did not prune through the service: %d attempts vs %d baseline",
			es.Stats.Attempts, ps.Stats.Attempts)
	}

	// Identical (dump, evidence) again: cache hit on the evidence tuple.
	again, err := svc.SubmitEvidence(progID, dump, ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != withEv.ID || !again.Cached {
		t.Fatalf("identical evidence submission did not cache-hit: %+v", again)
	}
	// Different evidence (a truncated event log): a third tuple.
	set, err := evidence.Decode(ev)
	if err != nil {
		t.Fatal(err)
	}
	var trimmed evidence.Set
	for _, src := range set {
		if el, ok := src.(evidence.EventLog); ok && len(el.Records) > 1 {
			trimmed = append(trimmed, evidence.EventLog{Records: el.Records[:1]})
		}
	}
	if len(trimmed) == 0 {
		t.Fatal("no event log to trim")
	}
	other, err := svc.SubmitEvidence(progID, dump, trimmed.Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == withEv.ID || other.ID == plain.ID {
		t.Fatalf("different evidence reused an existing tuple: %s", other.ID)
	}

	// Garbage evidence degrades: the submission is accepted, the evidence
	// is dropped, and the job lands on the plain tuple with a warning.
	degraded, err := svc.SubmitEvidence(progID, dump, []byte("not evidence"), nil)
	if err != nil {
		t.Fatalf("bad evidence rejected instead of degraded: %v", err)
	}
	if degraded.ID != plain.ID {
		t.Fatalf("degraded submission landed on tuple %s, want plain tuple %s", degraded.ID, plain.ID)
	}
	if len(degraded.Evidence) != 0 || len(degraded.Warnings) == 0 {
		t.Fatalf("degraded job not marked: %+v", degraded)
	}

	m := svc.Metrics()
	if m.EvidenceAttached != 3 {
		t.Errorf("EvidenceAttached = %d, want 3", m.EvidenceAttached)
	}
	if m.EvidenceSources["event-log"] == 0 {
		t.Errorf("per-kind evidence counters missing: %+v", m.EvidenceSources)
	}
}

// TestEvidenceBatchCoalescing: batch submissions treat (dump, evidence)
// as the dedup unit — the same dump under different evidence must not
// coalesce, while true duplicates must.
func TestEvidenceBatchCoalescing(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{ShardWorkers: 2, Analysis: AnalysisConfig{MaxDepth: 12, MaxNodes: 2000}})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dump, ev := recordedSubmission(t, bug)
	items := svc.SubmitBatch(progID,
		[][]byte{dump, dump, dump},
		[][]byte{nil, ev, ev}, nil, nil)
	if items[0].Error != "" || items[1].Error != "" || items[2].Error != "" {
		t.Fatalf("batch errors: %+v", items)
	}
	if items[0].Job.ID == items[1].Job.ID {
		t.Fatal("evidence-carrying dump coalesced with the plain one")
	}
	if !items[2].Duplicate || items[2].Job.ID != items[1].Job.ID {
		t.Fatalf("identical (dump, evidence) pair did not coalesce: %+v", items[2])
	}
}

// TestWatchStreamsProgress covers the NDJSON progress feed end to end:
// Service.Watch bridges observer events, the HTTP endpoint streams them,
// and Client.WatchResult tails the stream to the terminal status.
func TestWatchStreamsProgress(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()
	cfg := Config{
		ShardWorkers: 1,
		Analysis:     AnalysisConfig{MaxDepth: 14, MaxNodes: 4000},
		// Hold the worker until the watcher is attached, so the stream
		// deterministically observes live events.
		BeforeAnalyze: func() { <-gate },
	}
	svc := New(cfg)
	defer svc.Shutdown(context.Background())
	bug := workload.RaceCounter()
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 1)

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	job, err := c.Submit(ctx, progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Terminal() {
		t.Fatalf("expected a queued job, got %v", job.Status)
	}

	type watchOut struct {
		events []ProgressEvent
		final  Job
		err    error
	}
	outc := make(chan watchOut, 1)
	go func() {
		var out watchOut
		out.final, out.err = c.WatchResult(ctx, job.ID, func(ev ProgressEvent) {
			out.events = append(out.events, ev)
		})
		outc <- out
	}()
	// Give the watcher a moment to attach, then let the analysis run.
	time.Sleep(50 * time.Millisecond)
	release()

	out := <-outc
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.final.Status != StatusDone {
		t.Fatalf("final status %v (%s)", out.final.Status, out.final.Error)
	}
	if len(out.final.Report) == 0 {
		t.Fatal("final job carries no report")
	}
	if len(out.events) == 0 {
		t.Fatal("no progress events streamed")
	}
	sawDepth := false
	for _, ev := range out.events {
		if ev.Kind == "depth" {
			sawDepth = true
		}
	}
	if !sawDepth {
		t.Errorf("no depth events in stream: %+v", out.events)
	}
	last := out.events[len(out.events)-1]
	if last.Kind != "status" || last.Status != StatusDone {
		t.Errorf("stream did not end with the terminal status: %+v", last)
	}

	// Watching a finished job yields exactly the terminal status event.
	final, err := c.WatchResult(ctx, job.ID, nil)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("watch of finished job: %+v, %v", final, err)
	}
	// Unknown jobs 404 through the same path.
	if _, err := c.WatchResult(ctx, strings.Repeat("0", 64), nil); err == nil {
		t.Fatal("watch of unknown job succeeded")
	}
}

// TestWatchServiceLevel exercises Service.Watch directly: subscribe
// before completion, receive the terminal event, and detach with cancel.
func TestWatchServiceLevel(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()
	svc := New(Config{
		ShardWorkers:  1,
		Analysis:      AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		BeforeAnalyze: func() { <-gate },
	})
	defer svc.Shutdown(context.Background())
	bug := workload.RaceCounter()
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 1)
	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelWatch, err := svc.Watch(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	// A second watcher that detaches immediately must not disturb the
	// first.
	_, cancel2, err := svc.Watch(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	release()

	var last ProgressEvent
	got := 0
	for ev := range ch {
		last = ev
		got++
	}
	if got == 0 {
		t.Fatal("no events delivered")
	}
	if last.Kind != "status" || !last.Status.Terminal() {
		t.Fatalf("stream did not end with a terminal status: %+v", last)
	}
	cancelWatch() // after close: must be a harmless no-op

	if _, err := svc.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Watch("nope"); err == nil {
		t.Fatal("Watch of unknown id succeeded")
	}
}

// TestEvidenceMetricsExposition: the resd_evidence_* series render in
// the Prometheus text format.
func TestEvidenceMetricsExposition(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{ShardWorkers: 1, Analysis: AnalysisConfig{MaxDepth: 10, MaxNodes: 500}})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dump, ev := recordedSubmission(t, bug)
	if _, err := svc.SubmitEvidence(progID, dump, ev, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	resp, err := c.hc.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "resd_evidence_attached_total 1") {
		t.Errorf("missing attached counter:\n%s", text)
	}
	if !strings.Contains(text, `resd_evidence_sources_total{kind="event-log"}`) {
		t.Errorf("missing per-kind counter:\n%s", text)
	}
}

package service

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"res/internal/workload"
)

// TestHTTPEndToEnd drives the full API through a real HTTP server with
// the Client: register by source, submit, poll, buckets, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{Analysis: AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}, ShardWorkers: 2})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	c := NewClient(srv.URL)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 2)

	// Submit with inline source: the program registers on first sight.
	job, err := c.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.PollResult(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || len(done.Report) == 0 {
		t.Fatalf("job = %+v, want done with report", done)
	}
	if !strings.Contains(string(done.Report), `"verdict"`) {
		t.Fatalf("report does not look like a ReportJSON: %s", done.Report)
	}

	// Resubmitting the identical dump over HTTP is a cache hit.
	again, err := c.SubmitSource(ctx, bug.Name, bug.Source, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || string(again.Report) != string(done.Report) {
		t.Fatalf("resubmission = %+v, want cached byte-identical report", again)
	}

	// Explicit registration is idempotent and returns the same ID.
	progID, err := c.Register(ctx, bug.Name, bug.Source)
	if err != nil {
		t.Fatal(err)
	}
	if progID != job.Program {
		t.Fatalf("register returned %s, submit used %s", progID, job.Program)
	}
	if _, err := c.Submit(ctx, progID, dumps[1]); err != nil {
		t.Fatal(err)
	}

	buckets, err := c.Buckets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no buckets after completed analyses")
	}

	// Metrics expose the cache hit as Prometheus text.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"resd_cache_hits_total 1", "resd_cache_misses_total 2", "resd_cache_hit_rate 0.3", "resd_shard_queue_depth{"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPErrorMapping checks the status-code contract.
func TestHTTPErrorMapping(t *testing.T) {
	svc := New(Config{Analysis: AnalysisConfig{MaxDepth: 8}})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	ctx := context.Background()
	c := NewClient(strings.TrimPrefix(srv.URL, "http://")) // host:port form

	post := func(path, body string) int {
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/dumps", `{"dump":"QUFB"}`); code != 400 {
		t.Fatalf("missing program: %d, want 400", code)
	}
	if code := post("/v1/dumps", `{"program_id":"beef","dump":"QUFB"}`); code != 404 {
		t.Fatalf("unknown program: %d, want 404", code)
	}
	if code := post("/v1/dumps", `not json`); code != 400 {
		t.Fatalf("bad json: %d, want 400", code)
	}
	if code := post("/v1/programs", `{"name":"x","source":"not assembly"}`); code != 400 {
		t.Fatalf("bad source: %d, want 400", code)
	}
	if _, err := c.Result(ctx, "no-such-job"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown job error = %v", err)
	}

	// A registered program with garbage dump bytes is a 400.
	progID, err := c.Register(ctx, "t", `
func main:
    const r0, 0
    assert r0
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, progID, []byte("garbage")); err == nil || !strings.Contains(err.Error(), "bad dump") {
		t.Fatalf("garbage dump error = %v", err)
	}

	// Draining maps to 503 on registration and on health.
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, "late", "func main:\n    halt\n"); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("draining register error = %v", err)
	}
	if err := c.Health(ctx); err == nil {
		t.Fatal("health reports ok while draining")
	}
}

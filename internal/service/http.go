package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"

	"res/internal/obs"
)

// SubmitRequest is the POST /v1/dumps body. Either ProgramID names an
// already-registered program, or ProgramSource carries the assembly text
// (registered on first sight, keyed by content, so resubmitting the same
// source is free). Dump is the serialized coredump, base64-encoded on the
// wire by encoding/json. Options, when present, override analysis knobs
// for this request only (and become part of the result's cache key).
type SubmitRequest struct {
	ProgramID     string           `json:"program_id,omitempty"`
	ProgramName   string           `json:"program_name,omitempty"`
	ProgramSource string           `json:"program_source,omitempty"`
	Options       *SubmitOverrides `json:"options,omitempty"`
	Dump          []byte           `json:"dump"`
	// Evidence is the dump's optional evidence attachment: canonical
	// evidence wire bytes (internal/evidence), base64 on the wire. It is
	// folded into the result's cache identity.
	Evidence []byte `json:"evidence,omitempty"`
	// Checkpoints is the dump's optional checkpoint-ring attachment:
	// canonical checkpoint wire bytes (internal/checkpoint), base64 on
	// the wire. It bounds the analysis's backward search and is folded
	// into the result's cache identity.
	Checkpoints []byte `json:"checkpoints,omitempty"`
}

// SubmitFixRequest is the POST /v1/fixes body: one failing dump plus a
// candidate fix to verify against it. Patch is accepted in either patch
// form — canonical RESPATCH1 wire bytes or the human text format
// (replace/insert/delete <label> ... end) — base64 on the wire. The
// program is named like a dump submission: ProgramID for a registered
// program, or ProgramSource to register on first sight. Verification
// needs the program's assembly source (patches are keyed by its labels);
// it comes from ProgramSource or from an earlier source registration.
// The field order keeps the small identifying fields ahead of the bulk
// payloads for the cluster router's streaming head parser.
type SubmitFixRequest struct {
	ProgramID     string           `json:"program_id,omitempty"`
	ProgramName   string           `json:"program_name,omitempty"`
	ProgramSource string           `json:"program_source,omitempty"`
	Options       *SubmitOverrides `json:"options,omitempty"`
	Patch         []byte           `json:"patch"`
	Dump          []byte           `json:"dump"`
}

// BatchSubmitRequest is the POST /v1/dumps/batch body: one program, many
// dumps, optional shared per-request option overrides.
type BatchSubmitRequest struct {
	ProgramID     string           `json:"program_id,omitempty"`
	ProgramName   string           `json:"program_name,omitempty"`
	ProgramSource string           `json:"program_source,omitempty"`
	Options       *SubmitOverrides `json:"options,omitempty"`
	Dumps         [][]byte         `json:"dumps"`
	// Evidence, when present, is positional with Dumps (entries may be
	// empty/null for dumps submitted without evidence).
	Evidence [][]byte `json:"evidence,omitempty"`
	// Checkpoints, when present, is positional with Dumps (entries may
	// be empty/null for dumps submitted without a checkpoint ring).
	Checkpoints [][]byte `json:"checkpoints,omitempty"`
}

// BatchSubmitResponse is the POST /v1/dumps/batch reply; Jobs is
// positional with the request's Dumps.
type BatchSubmitResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

// RegisterRequest is the POST /v1/programs body.
type RegisterRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// RegisterResponse is the POST /v1/programs reply.
type RegisterResponse struct {
	ProgramID string `json:"program_id"`
}

// errorResponse is the JSON error envelope for every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/programs         register a program, returns its program_id
//	POST /v1/dumps            submit a dump (202 queued, 200 done/cached,
//	                          429 queue full, 503 draining)
//	POST /v1/fixes            submit a candidate fix for verification
//	                          against a failing dump; the job's report is
//	                          a fixed/not-fixed/inconclusive verdict
//	POST /v1/jobs/{id}/minimize  delta-debug a finished analysis job's
//	                          tuple into a minimal repro (409 when the
//	                          tuple is no longer reconstructible)
//	GET  /v1/results/{id}     job status + report
//	GET  /v1/jobs/{id}/events NDJSON stream of analysis progress events
//	GET  /v1/jobs/{id}/trace  the analysis's span tree (?format=chrome
//	                          for Chrome trace-event JSON)
//	GET  /v1/buckets          crash-dedup buckets
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             Prometheus-style text metrics
//
// plus the node-internal observability endpoints:
//
//	GET  /internal/v1/trace/{id}  this node's raw span fragments for a
//	                              job (what the cluster stitcher reads)
//	GET  /internal/v1/flightrec   the flight recorder ring
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", s.handleRegister)
	mux.HandleFunc("POST /v1/dumps", s.handleSubmit)
	mux.HandleFunc("POST /v1/dumps/batch", s.handleSubmitBatch)
	mux.HandleFunc("POST /v1/fixes", s.handleSubmitFix)
	mux.HandleFunc("POST /v1/jobs/{id}/minimize", s.handleMinimize)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/buckets", s.handleBuckets)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /internal/v1/trace/{id}", s.handleTraceFragments)
	mux.HandleFunc("GET /internal/v1/flightrec", s.handleFlightRec)
	return s.recoverPanics(mux)
}

// recoverPanics converts a handler panic into a 500 after dumping the
// flight recorder: the ring holds the moments leading up to the panic,
// which is exactly when it must not be lost.
func (s *Service) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil || rec == http.ErrAbortHandler {
				return
			}
			slog.Error("handler panic", "path", r.URL.Path, "panic", fmt.Sprint(rec))
			s.cfg.FlightRec.Record(obs.FlightEvent{Kind: "panic", Msg: fmt.Sprintf("%s: %v", r.URL.Path, rec)})
			s.cfg.FlightRec.Dump(os.Stderr, "panic in "+r.URL.Path)
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal error"})
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownProgram), errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadDump), errors.Is(err, ErrBadEvidence), errors.Is(err, ErrBadCheckpoint),
		errors.Is(err, ErrBadPatch), errors.Is(err, ErrNoSource):
		code = http.StatusBadRequest
	case errors.Is(err, ErrMinimizeUnavailable):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// DefaultMaxRequestBody bounds POST bodies when Config.MaxRequestBody is
// unset (base64 in JSON inflates a dump ~4/3, so this admits dumps up to
// ~192MB serialized while keeping a malicious or runaway client from
// buffering the daemon into the ground).
const DefaultMaxRequestBody = 256 << 20

// maxBody resolves the configured request-body cap.
func (s *Service) maxBody() int64 {
	if s.cfg.MaxRequestBody > 0 {
		return s.cfg.MaxRequestBody
	}
	return DefaultMaxRequestBody
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Source == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "source is required"})
		return
	}
	id, err := s.RegisterSource(req.Name, req.Source)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{ProgramID: id})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Dump) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "dump is required"})
		return
	}
	programID := req.ProgramID
	if programID == "" {
		if req.ProgramSource == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "program_id or program_source is required"})
			return
		}
		var err error
		programID, err = s.RegisterSource(req.ProgramName, req.ProgramSource)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	job, err := s.SubmitTraced(programID, req.Dump, req.Evidence, req.Checkpoints, req.Options,
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	if err != nil {
		writeError(w, err)
		return
	}
	setSubmitHeaders(w, job)
	code := http.StatusAccepted
	if job.Status.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// handleSubmitFix submits a candidate fix for verification. The response
// shape mirrors dump submission: 202 queued / 200 terminal (cached
// verdicts are 200 immediately), with the same routing headers.
func (s *Service) handleSubmitFix(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req SubmitFixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Dump) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "dump is required"})
		return
	}
	if len(req.Patch) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "patch is required"})
		return
	}
	programID := req.ProgramID
	if programID == "" {
		if req.ProgramSource == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "program_id or program_source is required"})
			return
		}
		var err error
		programID, err = s.RegisterSource(req.ProgramName, req.ProgramSource)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	job, err := s.SubmitFixTraced(programID, req.Dump, req.Patch, req.ProgramSource, req.Options,
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	if err != nil {
		writeError(w, err)
		return
	}
	setSubmitHeaders(w, job)
	code := http.StatusAccepted
	if job.Status.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// handleMinimize starts a minimization of a finished analysis job. The
// new ModeMinimize job is returned like a submission: 202 queued, 200
// when the minimal repro was already cached, 409 when the input tuple
// can no longer be reconstructed on this node.
func (s *Service) handleMinimize(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var o *SubmitOverrides
	if r.ContentLength != 0 {
		var req struct {
			Options *SubmitOverrides `json:"options,omitempty"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		o = req.Options
	}
	job, err := s.MinimizeJobTraced(r.PathValue("id"), o,
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	if err != nil {
		writeError(w, err)
		return
	}
	setSubmitHeaders(w, job)
	code := http.StatusAccepted
	if job.Status.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, job)
}

// Response headers the routing layer reads off a proxied submission:
// the job ID keys the router's trace fragment, the trace ID propagates
// back to the ingest edge, and the cached marker lets the router skip
// recording fragments for jobs that never ran (their trace endpoint
// 404s by design).
const (
	JobHeader    = "X-Resd-Job"
	TraceHeader  = "X-Resd-Trace"
	CachedHeader = "X-Resd-Cached"
)

func setSubmitHeaders(w http.ResponseWriter, job Job) {
	if job.ID != "" {
		w.Header().Set(JobHeader, job.ID)
	}
	if job.TraceID != "" {
		w.Header().Set(TraceHeader, job.TraceID)
	}
	if job.Cached {
		w.Header().Set(CachedHeader, "true")
	}
}

// handleSubmitBatch ingests a burst of dumps for one program in a single
// request. The response is always 200 with positional per-item outcomes;
// only request-level problems (bad body, unknown/unregisterable program)
// get a non-2xx status.
func (s *Service) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody())
	var req BatchSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Dumps) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "dumps is required"})
		return
	}
	programID := req.ProgramID
	if programID == "" {
		if req.ProgramSource == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "program_id or program_source is required"})
			return
		}
		var err error
		programID, err = s.RegisterSource(req.ProgramName, req.ProgramSource)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	if len(req.Evidence) != 0 && len(req.Evidence) != len(req.Dumps) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "evidence must be positional with dumps"})
		return
	}
	if len(req.Checkpoints) != 0 && len(req.Checkpoints) != len(req.Dumps) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "checkpoints must be positional with dumps"})
		return
	}
	items := s.SubmitBatchTraced(programID, req.Dumps, req.Evidence, req.Checkpoints, req.Options,
		obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)))
	// The headers carry the first accepted job so the routing layer can
	// key its trace fragment; the per-item outcomes are in the body.
	for _, it := range items {
		if it.Error == "" {
			setSubmitHeaders(w, it.Job)
			break
		}
	}
	writeJSON(w, http.StatusOK, BatchSubmitResponse{Jobs: items})
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's analysis progress as NDJSON: one
// ProgressEvent per line, flushed as produced, ending with a terminal
// "status" event. Already-terminal jobs get just the status line, so the
// endpoint doubles as a blocking completion wait.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.Watch(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if enc.Encode(ev) != nil {
				return // client gone
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Kind == "status" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobTrace serves a job's stitched span tree — the request
// fragment with the analysis span tree grafted under its analyze span:
// the canonical wire form by default, Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto) with ?format=chrome, an
// indented text summary with ?format=text. Jobs that never ran an
// analysis in this process — cache hits, journal-replayed or evicted
// records — have no trace and return 404.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := obs.Stitch(s.TraceFragments(id))
	if tr == nil {
		if _, exists := s.Job(id); exists {
			writeJSON(w, http.StatusNotFound, errorResponse{
				Error: "no trace for job " + id + " (cached, replayed, or not yet finished)"})
		} else {
			writeError(w, ErrUnknownJob)
		}
		return
	}
	WriteTrace(w, r, tr)
}

// WriteTrace renders a span tree in the format the ?format query
// selects; the cluster stitcher reuses it for merged traces.
func WriteTrace(w http.ResponseWriter, r *http.Request, tr *obs.TraceData) {
	switch r.URL.Query().Get("format") {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(tr.ChromeTrace())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(tr.Summary()))
	default:
		writeJSON(w, http.StatusOK, tr)
	}
}

// handleTraceFragments serves this node's raw fragments for a job —
// the stitcher's per-node fetch. An empty list is a 200, not a 404:
// "this node recorded nothing" is an answer, and the cluster stitcher
// distinguishes it from "job unknown everywhere".
func (s *Service) handleTraceFragments(w http.ResponseWriter, r *http.Request) {
	frags := s.TraceFragments(r.PathValue("id"))
	if frags == nil {
		frags = []*obs.TraceData{}
	}
	writeJSON(w, http.StatusOK, frags)
}

// handleFlightRec serves the flight recorder ring.
func (s *Service) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if s.cfg.FlightRec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "flight recorder not enabled"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.cfg.FlightRec.WriteJSON(w)
}

func (s *Service) handleBuckets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Buckets []Bucket `json:"buckets"`
	}{Buckets: s.Buckets()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	code := http.StatusOK
	status := "ok"
	if m.Draining {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{Status: status})
}

// handleMetrics renders MetricsSnapshot in the Prometheus text
// exposition format (counters, gauges, and histograms — still no
// external dependency).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WriteProm(w, s.MetricsSnapshot())
}

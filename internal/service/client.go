package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"res/internal/obs"
)

// Client talks to a resd daemon over its HTTP JSON API. The zero
// HTTP client default is fine for the small request bodies involved.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the daemon at addr ("host:port" or a
// full http URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// do sends a request and decodes the JSON response into out; non-2xx
// responses become errors carrying the server's message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("resd: %s (%s)", e.Error, resp.Status)
		}
		return fmt.Errorf("resd: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Register registers a program by source and returns its program ID.
func (c *Client) Register(ctx context.Context, name, source string) (string, error) {
	var resp RegisterResponse
	err := c.do(ctx, http.MethodPost, "/v1/programs", RegisterRequest{Name: name, Source: source}, &resp)
	return resp.ProgramID, err
}

// Submit submits a serialized dump for an already-registered program.
func (c *Client) Submit(ctx context.Context, programID string, dump []byte) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps", SubmitRequest{ProgramID: programID, Dump: dump}, &job)
	return job, err
}

// SubmitSource submits a dump together with its program's assembly
// source; the daemon registers the program on first sight (content-keyed,
// so repeats are free).
func (c *Client) SubmitSource(ctx context.Context, name, source string, dump []byte) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramName: name, ProgramSource: source, Dump: dump}, &job)
	return job, err
}

// SubmitWithOptions submits a dump with per-request analysis-option
// overrides (folded into the result's cache key server-side).
func (c *Client) SubmitWithOptions(ctx context.Context, programID string, dump []byte, o *SubmitOverrides) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramID: programID, Dump: dump, Options: o}, &job)
	return job, err
}

// SubmitEvidence submits a dump together with an evidence attachment
// (canonical evidence wire bytes); the evidence becomes part of the
// result's cache identity server-side.
func (c *Client) SubmitEvidence(ctx context.Context, programID string, dump, evidence []byte, o *SubmitOverrides) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramID: programID, Dump: dump, Evidence: evidence, Options: o}, &job)
	return job, err
}

// SubmitSourceEvidence is SubmitSource with an evidence attachment.
func (c *Client) SubmitSourceEvidence(ctx context.Context, name, source string, dump, evidence []byte) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramName: name, ProgramSource: source, Dump: dump, Evidence: evidence}, &job)
	return job, err
}

// SubmitEvidenceCheckpoints is SubmitEvidence with an additional
// checkpoint-ring attachment (canonical checkpoint wire bytes); the ring
// anchors the analysis server-side and is part of the result's cache
// identity.
func (c *Client) SubmitEvidenceCheckpoints(ctx context.Context, programID string, dump, evidence, checkpoints []byte, o *SubmitOverrides) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramID: programID, Dump: dump, Evidence: evidence, Checkpoints: checkpoints, Options: o}, &job)
	return job, err
}

// SubmitSourceEvidenceCheckpoints is SubmitSourceEvidence with an
// additional checkpoint-ring attachment.
func (c *Client) SubmitSourceEvidenceCheckpoints(ctx context.Context, name, source string, dump, evidence, checkpoints []byte) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/dumps",
		SubmitRequest{ProgramName: name, ProgramSource: source, Dump: dump, Evidence: evidence, Checkpoints: checkpoints}, &job)
	return job, err
}

// SubmitFix submits a candidate fix for verification against a failing
// dump (POST /v1/fixes). The returned job's report, once done, is a
// fixed/not-fixed/inconclusive verdict; verdicts are cached by the
// (program, dump, options, patch) tuple server-side.
func (c *Client) SubmitFix(ctx context.Context, req SubmitFixRequest) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/fixes", req, &job)
	return job, err
}

// MinimizeJob asks the daemon to delta-debug a finished analysis job's
// tuple into a minimal repro (POST /v1/jobs/{id}/minimize). The returned
// ModeMinimize job is polled like any other; its report carries the
// canonical repro bytes.
func (c *Client) MinimizeJob(ctx context.Context, id string, o *SubmitOverrides) (Job, error) {
	var body any
	if !o.empty() {
		body = struct {
			Options *SubmitOverrides `json:"options"`
		}{Options: o}
	}
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/minimize", body, &job)
	return job, err
}

// SubmitBatch ships a burst of dumps for one program in a single request
// (POST /v1/dumps/batch). The returned items are positional with
// req.Dumps; per-dump failures are reported in place, not as an error.
func (c *Client) SubmitBatch(ctx context.Context, req BatchSubmitRequest) ([]BatchItem, error) {
	var resp BatchSubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/dumps/batch", req, &resp)
	return resp.Jobs, err
}

// Result fetches the job's current snapshot.
func (c *Client) Result(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, "/v1/results/"+id, nil, &job)
	return job, err
}

// PollResult polls until the job reaches a terminal status or ctx ends.
func (c *Client) PollResult(ctx context.Context, id string, interval time.Duration) (Job, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		job, err := c.Result(ctx, id)
		if err != nil {
			return job, err
		}
		if job.Status.Terminal() {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-t.C:
		}
	}
}

// WatchResult tails the job's progress stream (GET /v1/jobs/{id}/events),
// invoking fn for every event (fn may be nil), and returns the job's
// final snapshot once the stream ends. The stream closes on the terminal
// status event, so WatchResult doubles as a completion wait; if the
// stream drops early (daemon restart, proxy timeout) it falls back to a
// final Result fetch.
func (c *Client) WatchResult(ctx context.Context, id string, fn func(ProgressEvent)) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return Job{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return Job{}, fmt.Errorf("resd: %s (%s)", e.Error, resp.Status)
		}
		return Job{}, fmt.Errorf("resd: watch %s: %s", id, resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	sawStatus := false
	for {
		var ev ProgressEvent
		if err := dec.Decode(&ev); err != nil {
			break // stream ended (cleanly or not); resolve below
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Kind == "status" {
			sawStatus = true
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return Job{}, err
	}
	if sawStatus {
		return c.Result(ctx, id)
	}
	// The stream dropped before the terminal event (daemon restart, proxy
	// timeout): fall back to polling so the returned snapshot is still
	// final, as documented.
	return c.PollResult(ctx, id, 250*time.Millisecond)
}

// Trace fetches a finished job's analysis span tree
// (GET /v1/jobs/{id}/trace). Jobs served from cache never ran an
// analysis and have no trace; those return an error.
func (c *Client) Trace(ctx context.Context, id string) (*obs.TraceData, error) {
	var td obs.TraceData
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &td); err != nil {
		return nil, err
	}
	return &td, nil
}

// Buckets fetches the crash-dedup buckets.
func (c *Client) Buckets(ctx context.Context) ([]Bucket, error) {
	var resp struct {
		Buckets []Bucket `json:"buckets"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/buckets", nil, &resp)
	return resp.Buckets, err
}

// Health reports whether the daemon is accepting work.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

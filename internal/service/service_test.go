package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"res"
	"res/internal/coredump"
	"res/internal/store"
	"res/internal/workload"
)

// failingDumps produces n distinct failing dumps of the bug's program.
func failingDumps(t testing.TB, bug *workload.Bug, n int) [][]byte {
	t.Helper()
	p := bug.Program()
	var out [][]byte
	for _, base := range bug.Configs {
		for s := int64(0); s < 300 && len(out) < n; s++ {
			cfg := base
			cfg.Seed = s
			d, err := res.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
				continue
			}
			b, err := d.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		if len(out) >= n {
			break
		}
	}
	if len(out) < n {
		t.Fatalf("%s: only %d of %d failing dumps found", bug.Name, len(out), n)
	}
	return out
}

func testService(t testing.TB, cfg Config) (*Service, string, [][]byte) {
	t.Helper()
	bug := workload.RaceCounter()
	if cfg.Analysis == (AnalysisConfig{}) {
		cfg.Analysis = AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}
	}
	svc := New(cfg)
	id, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	return svc, id, failingDumps(t, bug, 4)
}

func TestSubmitAnalyzeAndBucket(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.Cached || job.Status.Terminal() {
		t.Fatalf("fresh submit should queue, got %+v", job)
	}
	done, err := svc.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || len(done.Report) == 0 {
		t.Fatalf("job = %+v, want done with report", done)
	}
	if done.Bucket == "" {
		t.Fatal("completed job has no bucket")
	}
	if bs := svc.Buckets(); len(bs) != 1 || bs[0].Count != 1 {
		t.Fatalf("buckets = %+v, want one bucket with one member", bs)
	}
}

// TestCacheHitDeterminism is the acceptance property: resubmitting the
// same dump is served from the store, byte-identical to the fresh report,
// and observable in the cache hit-rate metric.
func TestCacheHitDeterminism(t *testing.T) {
	svc, progID, dumps := testService(t, Config{})
	defer svc.Shutdown(context.Background())

	first, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := svc.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("first analysis claims to be cached")
	}

	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone {
		t.Fatalf("resubmission = %+v, want cached done", again)
	}
	if again.ID != fresh.ID {
		t.Fatalf("same dump produced different job IDs %s vs %s", again.ID, fresh.ID)
	}
	if !bytes.Equal(again.Report, fresh.Report) {
		t.Fatalf("cached report differs from fresh report:\n%s\nvs\n%s", again.Report, fresh.Report)
	}
	m := svc.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics = %+v, want 1 hit / 1 miss", m)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
	// The store itself must have answered: its own hit counter moved.
	if m.Store.Hits == 0 {
		t.Fatalf("store stats = %+v, want at least one hit", m.Store)
	}
}

// TestBackpressure fills the only worker and the one queue slot, then
// expects the third submission to bounce with ErrQueueFull.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	svc, progID, dumps := testService(t, Config{
		QueueDepth:    1,
		ShardWorkers:  1,
		BeforeAnalyze: func() { <-release },
	})
	defer func() {
		svc.Shutdown(context.Background())
	}()

	// First dump occupies the worker (blocked in BeforeAnalyze)...
	j1, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, j1.ID, StatusRunning)
	// ...second fills the queue...
	if _, err := svc.Submit(progID, dumps[1]); err != nil {
		t.Fatal(err)
	}
	// ...third must be rejected, not dropped or blocked.
	if _, err := svc.Submit(progID, dumps[2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	m := svc.Metrics()
	if m.Rejected != 1 || m.QueueDepth != 1 {
		t.Fatalf("metrics = %+v, want rejected=1 queue_depth=1", m)
	}
	close(release)
	for _, id := range []string{j1.ID} {
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGracefulDrainPartialResults forces a drain deadline while one
// analysis is in flight and another is queued: the in-flight one must
// complete with a partial report, the queued one must be canceled, and
// neither partial nor canceled work may poison the cache.
func TestGracefulDrainPartialResults(t *testing.T) {
	release := make(chan struct{})
	svc, progID, dumps := testService(t, Config{
		QueueDepth:    4,
		ShardWorkers:  1,
		BeforeAnalyze: func() { <-release },
	})

	j1, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, j1.ID, StatusRunning)
	j2, err := svc.Submit(progID, dumps[1])
	if err != nil {
		t.Fatal(err)
	}

	// Drain with a deadline the blocked worker will blow through; release
	// the worker only once the drain has forced cancellation.
	shCtx, shCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shCancel()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.Shutdown(shCtx) }()
	go func() {
		<-svc.baseCtx.Done()
		close(release)
	}()
	if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}

	// New work is refused while and after draining.
	if _, err := svc.Submit(progID, dumps[2]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}

	got1, _ := svc.Job(j1.ID)
	if got1.Status != StatusDone || !got1.Partial {
		t.Fatalf("in-flight job = %+v, want done+partial", got1)
	}
	if len(got1.Report) == 0 {
		t.Fatal("partial job lost its report")
	}
	got2, _ := svc.Job(j2.ID)
	if got2.Status != StatusCanceled {
		t.Fatalf("queued job = %+v, want canceled", got2)
	}
	// Partial results must not be served to future submitters, and a
	// memory-only store archives no dump blobs: nothing was stored.
	if st := svc.Store().Stats(); st.Puts != 0 {
		t.Fatalf("store puts = %+v, want none (partials never cached)", st)
	}
}

// TestPartialResultsRequeueOnResubmit guards the cache-integrity rule:
// a result cut short by the job timeout is reported but is NOT the
// tuple's answer of record — resubmitting the same dump re-analyzes it
// instead of serving the stale partial.
func TestPartialResultsRequeueOnResubmit(t *testing.T) {
	svc, progID, dumps := testService(t, Config{JobTimeout: time.Nanosecond})
	defer svc.Shutdown(context.Background())

	first, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || !got.Partial {
		t.Fatalf("job = %+v, want done+partial under a 1ns timeout", got)
	}

	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("requeue changed the job ID: %s vs %s", again.ID, first.ID)
	}
	if again.Cached || again.Status.Terminal() {
		t.Fatalf("resubmission = %+v, want a fresh queued analysis, not the stale partial", again)
	}
	if _, err := svc.Wait(context.Background(), again.ID); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 2 {
		t.Fatalf("metrics = %+v, want 0 hits / 2 misses (partials never cached)", m)
	}
	// The stale partial's bucket membership was replaced, not duplicated.
	total := 0
	for _, b := range svc.Buckets() {
		total += b.Count
	}
	if total > 1 {
		t.Fatalf("buckets count the same job twice: %+v", svc.Buckets())
	}
}

// TestConcurrentSubmits hammers one service from many goroutines with a
// mix of duplicate and distinct dumps across two programs; run under
// -race this is the service's concurrency contract.
func TestConcurrentSubmits(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 4, QueueDepth: 256})
	bug2 := workload.AtomViolation()
	progID2, err := svc.RegisterProgram(bug2.Name, bug2.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps2 := failingDumps(t, bug2, 2)

	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := make(map[string]bool)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				pid, d := progID, dumps[(g+i)%len(dumps)]
				if (g+i)%3 == 0 {
					pid, d = progID2, dumps2[i%len(dumps2)]
				}
				job, err := svc.Submit(pid, d)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				ids[job.ID] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for id := range ids {
		job, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status != StatusDone {
			t.Fatalf("job %s = %+v, want done", id, job)
		}
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	// 6 distinct (program, dump) tuples exist; everything else coalesced
	// or hit the cache.
	if m.Jobs != len(ids) || m.Jobs > 6 {
		t.Fatalf("metrics = %+v with %d distinct IDs, want ≤ 6 jobs", m, len(ids))
	}
	if m.Completed+m.CacheHits+m.Coalesced != 48 {
		t.Fatalf("metrics = %+v, want completed+hits+coalesced = 48 submissions", m)
	}
	if m.Programs != 2 || len(m.Shards) != 2 {
		t.Fatalf("metrics = %+v, want 2 shards", m)
	}
}

// TestBucketsDedupAcrossManifestations checks the service-level payoff of
// root-cause bucketing: distinct dumps (different schedules, same bug)
// land in one bucket.
func TestBucketsDedupAcrossManifestations(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())
	for _, d := range dumps[:3] {
		job, err := svc.Submit(progID, d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
	}
	bs := svc.Buckets()
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("buckets = %+v, want 3 jobs bucketed", bs)
	}
	if len(bs) != 1 {
		t.Logf("note: %d buckets for one bug (suffix fallback can split); largest has %d", len(bs), bs[0].Count)
	}
}

func waitStatus(t *testing.T, svc *Service, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := svc.Job(id)
		if ok && (job.Status == want || job.Status.Terminal()) {
			if job.Status != want {
				t.Fatalf("job %s = %v, want %v", id, job.Status, want)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
}

// TestRetryTransientFailure is the retry policy's contract: an analysis
// that fails transiently is re-queued with backoff and eventually
// completes, observable in the retried counter and the job's Retries.
func TestRetryTransientFailure(t *testing.T) {
	svc, progID, dumps := testService(t, Config{
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		analyzeHook: func(attempt int) error {
			if attempt < 2 {
				return errors.New("transient resource exhaustion")
			}
			return nil // third attempt: let the real analysis run
		},
	})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || len(done.Report) == 0 {
		t.Fatalf("job = %+v, want done after retries", done)
	}
	if done.Retries != 2 {
		t.Fatalf("retries = %d, want 2", done.Retries)
	}
	if done.Error != "" {
		t.Fatalf("successful retry left error %q on the job", done.Error)
	}
	m := svc.Metrics()
	if m.Retried != 2 || m.Failed != 0 || m.Completed != 1 {
		t.Fatalf("metrics = %+v, want retried=2 failed=0 completed=1", m)
	}
}

// TestRetryExhaustion: a persistently failing analysis fails for good
// once MaxRetries is spent.
func TestRetryExhaustion(t *testing.T) {
	svc, progID, dumps := testService(t, Config{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		analyzeHook:  func(int) error { return errors.New("permanent breakage") },
	})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	done, err := svc.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusFailed || done.Error != "permanent breakage" {
		t.Fatalf("job = %+v, want failed with the analysis error", done)
	}
	if done.Retries != 2 {
		t.Fatalf("retries = %d, want MaxRetries(2)", done.Retries)
	}
	m := svc.Metrics()
	if m.Retried != 2 || m.Failed != 1 {
		t.Fatalf("metrics = %+v, want retried=2 failed=1", m)
	}
}

// TestShutdownCancelsRetryBackoff: a job waiting out a retry backoff is
// on a timer, not a queue — Shutdown must terminalize it instead of
// abandoning the timer and leaving its waiters hanging.
func TestShutdownCancelsRetryBackoff(t *testing.T) {
	svc, progID, dumps := testService(t, Config{
		MaxRetries:   5,
		RetryBackoff: time.Hour, // would fire long after the test is gone
		analyzeHook:  func(int) error { return errors.New("always failing") },
	})
	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, _ := svc.Job(job.ID)
		if j.Retries >= 1 && j.Status == StatusQueued {
			break // in backoff
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never entered retry backoff: %+v", j)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v; a backed-off retry must not stall the drain", err)
	}
	got, ok := svc.Job(job.ID)
	if !ok || got.Status != StatusCanceled {
		t.Fatalf("backed-off job after shutdown = %+v, ok=%v; want canceled", got, ok)
	}
	if _, err := svc.Wait(context.Background(), job.ID); err != nil {
		t.Fatalf("Wait on the canceled job = %v, want immediate return", err)
	}
}

// TestPerRequestOverrides: overridden analysis options are part of the
// cache identity — the same dump under two option sets is two jobs with
// two store entries, while overrides equal to the daemon's configuration
// share the daemon's cache key.
func TestPerRequestOverrides(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())

	base, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if base, err = svc.Wait(context.Background(), base.ID); err != nil || base.Status != StatusDone {
		t.Fatalf("base job = %+v, err = %v", base, err)
	}

	// A different depth is a different tuple: fresh analysis, own entry.
	over, err := svc.SubmitWithOptions(progID, dumps[0], &SubmitOverrides{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if over.ID == base.ID {
		t.Fatal("override did not move the cache key")
	}
	if over.Cached {
		t.Fatalf("override submission = %+v, want fresh analysis", over)
	}
	if over, err = svc.Wait(context.Background(), over.ID); err != nil || over.Status != StatusDone {
		t.Fatalf("override job = %+v, err = %v", over, err)
	}
	if st := svc.Store().Stats(); st.Puts != 2 {
		t.Fatalf("store puts = %d, want 2 distinct cache entries", st.Puts)
	}

	// Resubmitting under the same overrides hits the override's entry.
	again, err := svc.SubmitWithOptions(progID, dumps[0], &SubmitOverrides{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != over.ID || !bytes.Equal(again.Report, over.Report) {
		t.Fatalf("override resubmission = %+v, want cached byte-identical", again)
	}

	// Overrides that spell out the daemon's own configuration are the
	// daemon's tuple — no cache split.
	same, err := svc.SubmitWithOptions(progID, dumps[0], &SubmitOverrides{MaxDepth: 14})
	if err != nil {
		t.Fatal(err)
	}
	if same.ID != base.ID || !same.Cached {
		t.Fatalf("identity override = %+v, want the base job's cache entry", same)
	}
}

// TestSubmitBatchCoalesces: one batch call ingests many dumps, coalesces
// intra-batch duplicates, and isolates per-item failures.
func TestSubmitBatchCoalesces(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2, QueueDepth: 16})
	defer svc.Shutdown(context.Background())

	items := svc.SubmitBatch(progID, [][]byte{dumps[0], dumps[1], dumps[0], []byte("garbage")}, nil, nil, nil)
	if len(items) != 4 {
		t.Fatalf("items = %d, want 4 (positional)", len(items))
	}
	if !items[2].Duplicate || items[2].Job.ID != items[0].Job.ID {
		t.Fatalf("intra-batch duplicate not coalesced: %+v vs %+v", items[2], items[0])
	}
	if items[3].Error == "" || items[3].Job.ID != "" {
		t.Fatalf("bad dump item = %+v, want per-item error", items[3])
	}
	for _, i := range []int{0, 1} {
		job, err := svc.Wait(context.Background(), items[i].Job.ID)
		if err != nil || job.Status != StatusDone {
			t.Fatalf("batch item %d = %+v, err = %v", i, job, err)
		}
	}
	m := svc.Metrics()
	if m.Submitted != 2 || m.CacheMisses != 2 {
		t.Fatalf("metrics = %+v, want 2 submissions (duplicate pre-coalesced)", m)
	}
}

// TestJournalRestart is the durability acceptance: job history, bucket
// membership, and program registrations survive a restart via the
// journal, and the restored jobs' reports resolve byte-identical from
// the store's disk tier.
func TestJournalRestart(t *testing.T) {
	bug := workload.RaceCounter()
	dir := t.TempDir()
	newNode := func() (*Service, *Journal) {
		st, err := store.NewDisk(0, filepath.Join(dir, "store"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{
			Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
			ShardWorkers: 2,
			Store:        st,
			Journal:      j,
		}), j
	}
	svc, j := newNode()
	progID, err := svc.RegisterSource(bug.Name, bug.Source)
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 2)
	var jobs []Job
	for _, db := range dumps {
		job, err := svc.Submit(progID, db)
		if err != nil {
			t.Fatal(err)
		}
		if job, err = svc.Wait(context.Background(), job.ID); err != nil || job.Status != StatusDone {
			t.Fatalf("job = %+v, err = %v", job, err)
		}
		jobs = append(jobs, job)
	}
	buckets := svc.Buckets()
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Restart: same store directory, same journal.
	svc2, j2 := newNode()
	defer func() {
		svc2.Shutdown(context.Background())
		j2.Close()
	}()
	m := svc2.Metrics()
	if m.Programs != 1 {
		t.Fatalf("programs after restart = %d, want the journaled registration back", m.Programs)
	}
	if m.JournalReplayed == 0 {
		t.Fatal("nothing replayed from the journal")
	}
	for _, want := range jobs {
		got, ok := svc2.Job(want.ID)
		if !ok || got.Status != StatusDone || !got.Cached {
			t.Fatalf("restored job = %+v, ok=%v; want store-backed done", got, ok)
		}
		if !bytes.Equal(got.Report, want.Report) {
			t.Fatal("restored report differs from the original")
		}
		if got.Bucket != want.Bucket {
			t.Fatalf("restored bucket = %q, want %q", got.Bucket, want.Bucket)
		}
	}
	after := svc2.Buckets()
	if len(after) != len(buckets) {
		t.Fatalf("buckets after restart = %+v, want %+v", after, buckets)
	}
	for i := range after {
		if after[i].Key != buckets[i].Key || after[i].Count != buckets[i].Count {
			t.Fatalf("bucket %d = %+v, want %+v", i, after[i], buckets[i])
		}
	}
	// Resubmission of a restored tuple is a cache hit, not a re-analysis.
	again, err := svc2.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Report, jobs[0].Report) {
		t.Fatalf("resubmit after restart = %+v, want cached original report", again)
	}
}

// TestJournalCompaction: the live tail is bounded — past the threshold
// the journal collapses into one snapshot, and replay from the compacted
// form restores the same state.
func TestJournalCompaction(t *testing.T) {
	bug := workload.RaceCounter()
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{
		Analysis:            AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		ShardWorkers:        2,
		Journal:             j,
		JournalCompactEvery: 3,
	})
	progID, err := svc.RegisterSource(bug.Name, bug.Source)
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 4)
	for _, db := range dumps {
		job, err := svc.Submit(progID, db)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatalf("journal stats = %+v, want a compaction after 5 appends with threshold 3", st)
	}
	entries, err := j.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[0].T != "snapshot" {
		t.Fatalf("compacted journal starts with %+v, want a snapshot entry", entries)
	}
	svc.Shutdown(context.Background())
	j.Close()

	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	svc2 := New(Config{Analysis: AnalysisConfig{MaxDepth: 12, MaxNodes: 2000}, Journal: j2})
	defer svc2.Shutdown(context.Background())
	// The store was memory-only, so reports are gone — but the history
	// (IDs, buckets, program registration) replays from the snapshot.
	if m := svc2.Metrics(); m.Programs != 1 || m.Buckets == 0 {
		t.Fatalf("metrics after compacted replay = %+v, want program and buckets back", m)
	}
}

// TestSubmitErrors covers the rejection paths.
func TestSubmitErrors(t *testing.T) {
	svc, progID, dumps := testService(t, Config{})
	defer svc.Shutdown(context.Background())
	if _, err := svc.Submit(progID, []byte("garbage")); !errors.Is(err, ErrBadDump) {
		t.Fatalf("garbage dump: %v, want ErrBadDump", err)
	}
	if _, err := svc.Submit("no-such-program", dumps[0]); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("bad program id: %v, want ErrUnknownProgram", err)
	}
	other := fmt.Sprintf("%064x", 42)
	if _, err := svc.Submit(other, dumps[0]); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unregistered program: %v, want ErrUnknownProgram", err)
	}
	if _, err := svc.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}
}

// TestJobEvictionByCap verifies the jobs-map bound: a long-lived service
// evicts the oldest-finished terminal records past MaxJobs, counts the
// evictions, and still answers a resubmission of an evicted tuple from
// the content-addressed store.
func TestJobEvictionByCap(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{
		Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		ShardWorkers: 2,
		MaxJobs:      2,
	})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 4)

	var first Job
	for i, db := range dumps {
		job, err := svc.Submit(progID, db)
		if err != nil {
			t.Fatal(err)
		}
		if job, err = svc.Wait(context.Background(), job.ID); err != nil || job.Status != StatusDone {
			t.Fatalf("dump %d: job = %+v, err = %v", i, job, err)
		}
		if i == 0 {
			first = job
		}
	}

	m := svc.Metrics()
	if m.Jobs > 2 {
		t.Fatalf("jobs retained = %d, want <= MaxJobs(2)", m.Jobs)
	}
	if m.JobsEvicted < 2 {
		t.Fatalf("evictions = %d, want >= 2", m.JobsEvicted)
	}
	// A result poll for the evicted job still resolves: the slim
	// tombstone routes it to the store-cached report.
	got, ok := svc.Job(first.ID)
	if !ok || got.Status != StatusDone || !got.Cached || len(got.Report) == 0 {
		t.Fatalf("evicted job lookup = %+v, ok=%v; want cached done with report", got, ok)
	}
	if !bytes.Equal(got.Report, first.Report) {
		t.Fatal("evicted job lookup returned a different report")
	}
	if w, err := svc.Wait(context.Background(), first.ID); err != nil || w.Status != StatusDone {
		t.Fatalf("Wait on evicted job = %+v, %v", w, err)
	}
	// The evicted tuple's answer lives on in the store.
	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone || len(again.Report) == 0 {
		t.Fatalf("resubmit after eviction = %+v, want cached done", again)
	}
	if !bytes.Equal(again.Report, first.Report) {
		t.Fatal("cached report differs from the original analysis")
	}
	// Evict+resubmit cycles must not duplicate bucket membership.
	for _, b := range svc.Buckets() {
		seen := map[string]bool{}
		for _, id := range b.JobIDs {
			if seen[id] {
				t.Fatalf("bucket %s lists job %s twice after evict+resubmit", b.Key, id)
			}
			seen[id] = true
		}
	}
}

// TestJobEvictionByTTL verifies the retention bound: terminal records
// older than JobRetention are swept on the next submission.
func TestJobEvictionByTTL(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{
		Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		ShardWorkers: 2,
		JobRetention: time.Nanosecond,
	})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 2)

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the record age past the TTL
	if _, err := svc.Submit(progID, dumps[1]); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.JobsEvicted < 1 {
		t.Fatalf("evictions = %d, want >= 1 after TTL sweep", m.JobsEvicted)
	}
	if m.Jobs >= 2 {
		t.Fatalf("jobs retained = %d, want the expired record swept", m.Jobs)
	}
	// Evicted-but-complete jobs still answer result polls via the store.
	if got, ok := svc.Job(job.ID); !ok || !got.Cached || got.Status != StatusDone {
		t.Fatalf("evicted job poll = %+v, ok=%v", got, ok)
	}
}

package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"res"
	"res/internal/coredump"
	"res/internal/workload"
)

// failingDumps produces n distinct failing dumps of the bug's program.
func failingDumps(t testing.TB, bug *workload.Bug, n int) [][]byte {
	t.Helper()
	p := bug.Program()
	var out [][]byte
	for _, base := range bug.Configs {
		for s := int64(0); s < 300 && len(out) < n; s++ {
			cfg := base
			cfg.Seed = s
			d, err := res.Run(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil || d.Fault.Kind == coredump.FaultBudget {
				continue
			}
			if bug.WantFault != coredump.FaultNone && d.Fault.Kind != bug.WantFault {
				continue
			}
			b, err := d.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		if len(out) >= n {
			break
		}
	}
	if len(out) < n {
		t.Fatalf("%s: only %d of %d failing dumps found", bug.Name, len(out), n)
	}
	return out
}

func testService(t testing.TB, cfg Config) (*Service, string, [][]byte) {
	t.Helper()
	bug := workload.RaceCounter()
	if cfg.Analysis == (AnalysisConfig{}) {
		cfg.Analysis = AnalysisConfig{MaxDepth: 14, MaxNodes: 4000}
	}
	svc := New(cfg)
	id, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	return svc, id, failingDumps(t, bug, 4)
}

func TestSubmitAnalyzeAndBucket(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.Cached || job.Status.Terminal() {
		t.Fatalf("fresh submit should queue, got %+v", job)
	}
	done, err := svc.Wait(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || len(done.Report) == 0 {
		t.Fatalf("job = %+v, want done with report", done)
	}
	if done.Bucket == "" {
		t.Fatal("completed job has no bucket")
	}
	if bs := svc.Buckets(); len(bs) != 1 || bs[0].Count != 1 {
		t.Fatalf("buckets = %+v, want one bucket with one member", bs)
	}
}

// TestCacheHitDeterminism is the acceptance property: resubmitting the
// same dump is served from the store, byte-identical to the fresh report,
// and observable in the cache hit-rate metric.
func TestCacheHitDeterminism(t *testing.T) {
	svc, progID, dumps := testService(t, Config{})
	defer svc.Shutdown(context.Background())

	first, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := svc.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("first analysis claims to be cached")
	}

	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone {
		t.Fatalf("resubmission = %+v, want cached done", again)
	}
	if again.ID != fresh.ID {
		t.Fatalf("same dump produced different job IDs %s vs %s", again.ID, fresh.ID)
	}
	if !bytes.Equal(again.Report, fresh.Report) {
		t.Fatalf("cached report differs from fresh report:\n%s\nvs\n%s", again.Report, fresh.Report)
	}
	m := svc.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics = %+v, want 1 hit / 1 miss", m)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
	// The store itself must have answered: its own hit counter moved.
	if m.Store.Hits == 0 {
		t.Fatalf("store stats = %+v, want at least one hit", m.Store)
	}
}

// TestBackpressure fills the only worker and the one queue slot, then
// expects the third submission to bounce with ErrQueueFull.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	svc, progID, dumps := testService(t, Config{
		QueueDepth:    1,
		ShardWorkers:  1,
		beforeAnalyze: func() { <-release },
	})
	defer func() {
		svc.Shutdown(context.Background())
	}()

	// First dump occupies the worker (blocked in beforeAnalyze)...
	j1, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, j1.ID, StatusRunning)
	// ...second fills the queue...
	if _, err := svc.Submit(progID, dumps[1]); err != nil {
		t.Fatal(err)
	}
	// ...third must be rejected, not dropped or blocked.
	if _, err := svc.Submit(progID, dumps[2]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	m := svc.Metrics()
	if m.Rejected != 1 || m.QueueDepth != 1 {
		t.Fatalf("metrics = %+v, want rejected=1 queue_depth=1", m)
	}
	close(release)
	for _, id := range []string{j1.ID} {
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGracefulDrainPartialResults forces a drain deadline while one
// analysis is in flight and another is queued: the in-flight one must
// complete with a partial report, the queued one must be canceled, and
// neither partial nor canceled work may poison the cache.
func TestGracefulDrainPartialResults(t *testing.T) {
	release := make(chan struct{})
	svc, progID, dumps := testService(t, Config{
		QueueDepth:    4,
		ShardWorkers:  1,
		beforeAnalyze: func() { <-release },
	})

	j1, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, j1.ID, StatusRunning)
	j2, err := svc.Submit(progID, dumps[1])
	if err != nil {
		t.Fatal(err)
	}

	// Drain with a deadline the blocked worker will blow through; release
	// the worker only once the drain has forced cancellation.
	shCtx, shCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shCancel()
	errCh := make(chan error, 1)
	go func() { errCh <- svc.Shutdown(shCtx) }()
	go func() {
		<-svc.baseCtx.Done()
		close(release)
	}()
	if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}

	// New work is refused while and after draining.
	if _, err := svc.Submit(progID, dumps[2]); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}

	got1, _ := svc.Job(j1.ID)
	if got1.Status != StatusDone || !got1.Partial {
		t.Fatalf("in-flight job = %+v, want done+partial", got1)
	}
	if len(got1.Report) == 0 {
		t.Fatal("partial job lost its report")
	}
	got2, _ := svc.Job(j2.ID)
	if got2.Status != StatusCanceled {
		t.Fatalf("queued job = %+v, want canceled", got2)
	}
	// Partial results must not be served to future submitters, and a
	// memory-only store archives no dump blobs: nothing was stored.
	if st := svc.Store().Stats(); st.Puts != 0 {
		t.Fatalf("store puts = %+v, want none (partials never cached)", st)
	}
}

// TestPartialResultsRequeueOnResubmit guards the cache-integrity rule:
// a result cut short by the job timeout is reported but is NOT the
// tuple's answer of record — resubmitting the same dump re-analyzes it
// instead of serving the stale partial.
func TestPartialResultsRequeueOnResubmit(t *testing.T) {
	svc, progID, dumps := testService(t, Config{JobTimeout: time.Nanosecond})
	defer svc.Shutdown(context.Background())

	first, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || !got.Partial {
		t.Fatalf("job = %+v, want done+partial under a 1ns timeout", got)
	}

	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("requeue changed the job ID: %s vs %s", again.ID, first.ID)
	}
	if again.Cached || again.Status.Terminal() {
		t.Fatalf("resubmission = %+v, want a fresh queued analysis, not the stale partial", again)
	}
	if _, err := svc.Wait(context.Background(), again.ID); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 2 {
		t.Fatalf("metrics = %+v, want 0 hits / 2 misses (partials never cached)", m)
	}
	// The stale partial's bucket membership was replaced, not duplicated.
	total := 0
	for _, b := range svc.Buckets() {
		total += b.Count
	}
	if total > 1 {
		t.Fatalf("buckets count the same job twice: %+v", svc.Buckets())
	}
}

// TestConcurrentSubmits hammers one service from many goroutines with a
// mix of duplicate and distinct dumps across two programs; run under
// -race this is the service's concurrency contract.
func TestConcurrentSubmits(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 4, QueueDepth: 256})
	bug2 := workload.AtomViolation()
	progID2, err := svc.RegisterProgram(bug2.Name, bug2.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps2 := failingDumps(t, bug2, 2)

	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := make(map[string]bool)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				pid, d := progID, dumps[(g+i)%len(dumps)]
				if (g+i)%3 == 0 {
					pid, d = progID2, dumps2[i%len(dumps2)]
				}
				job, err := svc.Submit(pid, d)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				ids[job.ID] = true
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for id := range ids {
		job, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status != StatusDone {
			t.Fatalf("job %s = %+v, want done", id, job)
		}
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	// 6 distinct (program, dump) tuples exist; everything else coalesced
	// or hit the cache.
	if m.Jobs != len(ids) || m.Jobs > 6 {
		t.Fatalf("metrics = %+v with %d distinct IDs, want ≤ 6 jobs", m, len(ids))
	}
	if m.Completed+m.CacheHits+m.Coalesced != 48 {
		t.Fatalf("metrics = %+v, want completed+hits+coalesced = 48 submissions", m)
	}
	if m.Programs != 2 || len(m.Shards) != 2 {
		t.Fatalf("metrics = %+v, want 2 shards", m)
	}
}

// TestBucketsDedupAcrossManifestations checks the service-level payoff of
// root-cause bucketing: distinct dumps (different schedules, same bug)
// land in one bucket.
func TestBucketsDedupAcrossManifestations(t *testing.T) {
	svc, progID, dumps := testService(t, Config{ShardWorkers: 2})
	defer svc.Shutdown(context.Background())
	for _, d := range dumps[:3] {
		job, err := svc.Submit(progID, d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), job.ID); err != nil {
			t.Fatal(err)
		}
	}
	bs := svc.Buckets()
	total := 0
	for _, b := range bs {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("buckets = %+v, want 3 jobs bucketed", bs)
	}
	if len(bs) != 1 {
		t.Logf("note: %d buckets for one bug (suffix fallback can split); largest has %d", len(bs), bs[0].Count)
	}
}

func waitStatus(t *testing.T, svc *Service, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := svc.Job(id)
		if ok && (job.Status == want || job.Status.Terminal()) {
			if job.Status != want {
				t.Fatalf("job %s = %v, want %v", id, job.Status, want)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
}

// TestSubmitErrors covers the rejection paths.
func TestSubmitErrors(t *testing.T) {
	svc, progID, dumps := testService(t, Config{})
	defer svc.Shutdown(context.Background())
	if _, err := svc.Submit(progID, []byte("garbage")); !errors.Is(err, ErrBadDump) {
		t.Fatalf("garbage dump: %v, want ErrBadDump", err)
	}
	if _, err := svc.Submit("no-such-program", dumps[0]); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("bad program id: %v, want ErrUnknownProgram", err)
	}
	other := fmt.Sprintf("%064x", 42)
	if _, err := svc.Submit(other, dumps[0]); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unregistered program: %v, want ErrUnknownProgram", err)
	}
	if _, err := svc.Wait(context.Background(), "nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: %v, want ErrUnknownJob", err)
	}
}

// TestJobEvictionByCap verifies the jobs-map bound: a long-lived service
// evicts the oldest-finished terminal records past MaxJobs, counts the
// evictions, and still answers a resubmission of an evicted tuple from
// the content-addressed store.
func TestJobEvictionByCap(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{
		Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		ShardWorkers: 2,
		MaxJobs:      2,
	})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 4)

	var first Job
	for i, db := range dumps {
		job, err := svc.Submit(progID, db)
		if err != nil {
			t.Fatal(err)
		}
		if job, err = svc.Wait(context.Background(), job.ID); err != nil || job.Status != StatusDone {
			t.Fatalf("dump %d: job = %+v, err = %v", i, job, err)
		}
		if i == 0 {
			first = job
		}
	}

	m := svc.Metrics()
	if m.Jobs > 2 {
		t.Fatalf("jobs retained = %d, want <= MaxJobs(2)", m.Jobs)
	}
	if m.JobsEvicted < 2 {
		t.Fatalf("evictions = %d, want >= 2", m.JobsEvicted)
	}
	// A result poll for the evicted job still resolves: the slim
	// tombstone routes it to the store-cached report.
	got, ok := svc.Job(first.ID)
	if !ok || got.Status != StatusDone || !got.Cached || len(got.Report) == 0 {
		t.Fatalf("evicted job lookup = %+v, ok=%v; want cached done with report", got, ok)
	}
	if !bytes.Equal(got.Report, first.Report) {
		t.Fatal("evicted job lookup returned a different report")
	}
	if w, err := svc.Wait(context.Background(), first.ID); err != nil || w.Status != StatusDone {
		t.Fatalf("Wait on evicted job = %+v, %v", w, err)
	}
	// The evicted tuple's answer lives on in the store.
	again, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Status != StatusDone || len(again.Report) == 0 {
		t.Fatalf("resubmit after eviction = %+v, want cached done", again)
	}
	if !bytes.Equal(again.Report, first.Report) {
		t.Fatal("cached report differs from the original analysis")
	}
	// Evict+resubmit cycles must not duplicate bucket membership.
	for _, b := range svc.Buckets() {
		seen := map[string]bool{}
		for _, id := range b.JobIDs {
			if seen[id] {
				t.Fatalf("bucket %s lists job %s twice after evict+resubmit", b.Key, id)
			}
			seen[id] = true
		}
	}
}

// TestJobEvictionByTTL verifies the retention bound: terminal records
// older than JobRetention are swept on the next submission.
func TestJobEvictionByTTL(t *testing.T) {
	bug := workload.RaceCounter()
	svc := New(Config{
		Analysis:     AnalysisConfig{MaxDepth: 12, MaxNodes: 2000},
		ShardWorkers: 2,
		JobRetention: time.Nanosecond,
	})
	defer svc.Shutdown(context.Background())
	progID, err := svc.RegisterProgram(bug.Name, bug.Program())
	if err != nil {
		t.Fatal(err)
	}
	dumps := failingDumps(t, bug, 2)

	job, err := svc.Submit(progID, dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), job.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the record age past the TTL
	if _, err := svc.Submit(progID, dumps[1]); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.JobsEvicted < 1 {
		t.Fatalf("evictions = %d, want >= 1 after TTL sweep", m.JobsEvicted)
	}
	if m.Jobs >= 2 {
		t.Fatalf("jobs retained = %d, want the expired record swept", m.Jobs)
	}
	// Evicted-but-complete jobs still answer result polls via the store.
	if got, ok := svc.Job(job.ID); !ok || !got.Cached || got.Status != StatusDone {
		t.Fatalf("evicted job poll = %+v, ok=%v", got, ok)
	}
}

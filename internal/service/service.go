// Package service is the crash-ingestion engine behind resd: a fleet
// ships coredumps in, the service dedups them against the
// content-addressed store, shards fresh work onto per-program analysis
// pools built around reusable res.Analyzer sessions, and groups finished
// analyses into crash buckets by root-cause signature.
//
// The paper's premise is debugging failures harvested from production,
// which means the same defect arrives over and over as near-identical
// dumps. The service exploits that twice: byte-identical dumps are cache
// hits served straight from the store without touching the solver, and
// distinct dumps of the same underlying bug land in one bucket via the
// root-cause key, so a human (or an autonomous triage loop) sees one
// work item instead of a thousand reports.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"res"
	"res/internal/store"
)

// Sentinel errors Submit and friends return; the HTTP layer maps them to
// status codes (429, 503, 404, 400).
var (
	// ErrQueueFull is backpressure: the target shard's queue is at
	// capacity and the dump was rejected, not silently dropped.
	ErrQueueFull = errors.New("service: analysis queue full")
	// ErrDraining rejects work submitted after Shutdown began.
	ErrDraining = errors.New("service: draining")
	// ErrUnknownProgram rejects a dump for a program never registered.
	ErrUnknownProgram = errors.New("service: unknown program")
	// ErrUnknownJob is returned for result lookups with no such ID.
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrBadDump rejects bytes that do not parse as a coredump.
	ErrBadDump = errors.New("service: bad dump")
)

// AnalysisConfig is the service-wide analysis configuration. It is part
// of every result's cache identity: changing any knob changes the options
// fingerprint, so results computed under different budgets never collide
// in the store.
type AnalysisConfig struct {
	MaxDepth           int  `json:"max_depth"`
	MaxNodes           int  `json:"max_nodes"`
	BeamWidth          int  `json:"beam_width"`
	UseLBR             bool `json:"use_lbr"`
	LBRSkipConditional bool `json:"lbr_skip_conditional"`
	MatchOutputs       bool `json:"match_outputs"`
	// SearchParallelism is the candidate-level parallelism within each
	// analysis (res.WithSearchParallelism): <= 0 = automatic (the
	// machine's cores divided among the shard's workers), 1 = sequential.
	// It is deliberately NOT part of Canonical(): the engine produces
	// bit-identical results at any parallelism, so results computed under
	// different settings are interchangeable and share cache entries.
	SearchParallelism int `json:"search_parallelism"`
}

// Canonical renders every result-affecting knob in a fixed order; this
// string is what the options fingerprint hashes.
func (c AnalysisConfig) Canonical() string {
	return fmt.Sprintf("v1 depth=%d nodes=%d beam=%d lbr=%t lbrskip=%t outputs=%t",
		c.MaxDepth, c.MaxNodes, c.BeamWidth, c.UseLBR, c.LBRSkipConditional, c.MatchOutputs)
}

// Fingerprint is the options component of the store key.
func (c AnalysisConfig) Fingerprint() store.Fingerprint {
	return store.OptionsFingerprint(c.Canonical())
}

// options lowers the config to the session API's functional options.
func (c AnalysisConfig) options() []res.Option {
	opts := []res.Option{
		res.WithMaxDepth(c.MaxDepth),
		res.WithMaxNodes(c.MaxNodes),
		res.WithBeamWidth(c.BeamWidth),
		res.WithSearchParallelism(c.SearchParallelism),
	}
	if c.UseLBR {
		mode := res.LBRRecordAll
		if c.LBRSkipConditional {
			mode = res.LBRSkipConditional
		}
		opts = append(opts, res.WithLBR(mode))
	}
	if c.MatchOutputs {
		opts = append(opts, res.WithMatchOutputs())
	}
	return opts
}

// Config tunes the service.
type Config struct {
	// Analysis is the shared analysis configuration (cache identity).
	Analysis AnalysisConfig
	// QueueDepth bounds each shard's pending queue; a full queue rejects
	// with ErrQueueFull. < 1 means DefaultQueueDepth.
	QueueDepth int
	// ShardWorkers is the number of concurrent analyses per program
	// shard. < 1 means 1.
	ShardWorkers int
	// JobTimeout deadline-bounds each analysis; 0 means none. A timed-out
	// analysis still reports its partial result (marked partial, never
	// cached).
	JobTimeout time.Duration
	// Store caches results and dump blobs; nil means a default in-memory
	// store.
	Store *store.Store
	// MaxJobs caps the in-memory job records a long-lived daemon retains:
	// when the jobs map exceeds it, the oldest-finished terminal records
	// are evicted (in-flight and queued jobs are never evicted). A
	// resubmission of an evicted tuple is served from the result store as
	// a cache hit, so eviction loses history, not answers. 0 = unbounded.
	MaxJobs int
	// JobRetention additionally evicts terminal job records older than
	// this, regardless of MaxJobs. 0 = no TTL.
	JobRetention time.Duration

	// beforeAnalyze, when set, runs in the worker just before each
	// analysis. Test-only: it lets lifecycle tests hold a worker busy
	// deterministically.
	beforeAnalyze func()
}

// DefaultQueueDepth is the per-shard queue bound when Config leaves it 0.
const DefaultQueueDepth = 64

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Job is the public record of one submitted dump. Its ID is the store
// key of the (program, dump, options) tuple, so resubmitting the same
// dump yields the same ID — duplicates coalesce instead of queueing
// twice.
type Job struct {
	ID          string `json:"id"`
	Program     string `json:"program"` // program fingerprint (hex)
	ProgramName string `json:"program_name,omitempty"`
	Status      Status `json:"status"`
	// Cached marks a response served from the store without analysis.
	Cached bool `json:"cached"`
	// Partial marks a result cut short by drain or JobTimeout.
	Partial bool   `json:"partial,omitempty"`
	Bucket  string `json:"bucket,omitempty"`
	Error   string `json:"error,omitempty"`
	// Report is the deterministic analysis report (res.Result.JSON).
	Report      json.RawMessage `json:"report,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  time.Time       `json:"finished_at,omitzero"`
}

type jobState struct {
	job  Job
	key  store.Key // result key (the ID is its hash)
	dump *res.Dump
	done chan struct{}
}

// shard is one program's analysis pool: a shared Analyzer session (the
// predecessor index computed once), a bounded queue, and counters.
type shard struct {
	fp       store.Fingerprint
	name     string
	analyzer *res.Analyzer
	queue    chan *jobState

	// Guarded by Service.mu.
	submitted, completed, failed, cached, rejected uint64
}

// Service is the ingestion engine. Construct with New, register programs,
// submit dumps, then Shutdown to drain.
type Service struct {
	cfg   Config
	store *store.Store
	optFP store.Fingerprint

	baseCtx context.Context // canceled when a drain deadline forces cut-off
	cancel  context.CancelFunc

	mu       sync.Mutex
	shards   map[string]*shard // keyed by program fingerprint hex
	jobs     map[string]*jobState
	buckets  map[string][]string // bucket key -> job IDs
	draining bool
	wg       sync.WaitGroup

	// doneOrder tracks terminal job records oldest-finished first, the
	// eviction order for the MaxJobs/JobRetention bounds. Maintained only
	// when one of the bounds is configured.
	doneOrder []doneRec
	// evicted maps evicted complete jobs to the slim record needed to
	// keep GET /v1/results/{id} answering from the result store after the
	// full job record is gone. Bounded FIFO (evictedOrder), ~200 bytes
	// per entry against the kilobytes a full record holds.
	evicted      map[string]evictedRec
	evictedOrder []string

	submitted, completed, failed, canceled uint64
	rejected, coalesced                    uint64
	cacheHits, cacheMisses                 uint64
	jobsEvicted                            uint64
}

// doneRec is one entry of the eviction queue. The timestamp doubles as a
// validity check: a record requeued after finishing gets a new entry, and
// the stale one is skipped when popped.
type doneRec struct {
	id string
	at time.Time
}

// evictedRec is what survives a complete job's eviction: enough to serve
// a result poll from the store and keep the job's identity.
type evictedRec struct {
	key         store.Key
	program     string
	programName string
	bucket      string
	finished    time.Time
}

// bounded reports whether any job-record bound is configured.
func (s *Service) bounded() bool {
	return s.cfg.MaxJobs > 0 || s.cfg.JobRetention > 0
}

// recordDoneLocked queues a terminal job for eviction. Caller holds s.mu.
func (s *Service) recordDoneLocked(js *jobState) {
	if !s.bounded() {
		return // no bounds: don't accumulate an eviction queue for nothing
	}
	s.doneOrder = append(s.doneOrder, doneRec{id: js.job.ID, at: js.job.FinishedAt})
	s.evictJobsLocked()
}

// maxEvictedIndex bounds the slim tombstone index.
func (s *Service) maxEvictedIndex() int {
	if s.cfg.MaxJobs > 0 {
		return 16 * s.cfg.MaxJobs
	}
	return 1 << 18
}

// evictJobsLocked enforces the job-record bounds. A complete job leaves a
// slim tombstone behind so result polls keep resolving via the store;
// failed/canceled/partial records (whose answer was never durable) just
// vanish. Caller holds s.mu.
func (s *Service) evictJobsLocked() {
	now := time.Now()
	for len(s.doneOrder) > 0 {
		ent := s.doneOrder[0]
		expired := s.cfg.JobRetention > 0 && now.Sub(ent.at) > s.cfg.JobRetention
		over := s.cfg.MaxJobs > 0 && len(s.jobs) > s.cfg.MaxJobs
		if !expired && !over {
			return
		}
		s.doneOrder = s.doneOrder[1:]
		js, ok := s.jobs[ent.id]
		if !ok || !js.job.Status.Terminal() || !js.job.FinishedAt.Equal(ent.at) {
			continue // evicted already, or requeued: a newer entry governs it
		}
		delete(s.jobs, ent.id)
		s.jobsEvicted++
		if js.job.Status == StatusDone && !js.job.Partial {
			if s.evicted == nil {
				s.evicted = make(map[string]evictedRec)
			}
			if _, dup := s.evicted[ent.id]; !dup {
				s.evictedOrder = append(s.evictedOrder, ent.id)
			}
			s.evicted[ent.id] = evictedRec{
				key: js.key, program: js.job.Program, programName: js.job.ProgramName,
				bucket: js.job.Bucket, finished: js.job.FinishedAt,
			}
			for len(s.evictedOrder) > s.maxEvictedIndex() {
				delete(s.evicted, s.evictedOrder[0])
				s.evictedOrder = s.evictedOrder[1:]
			}
		}
	}
}

// resurrectEvictedLocked clears the eviction tombstone and the bucket
// membership the evicted record left behind, so a resubmission that
// recreates the job (from the store, or by re-analysis after an LRU
// miss) does not append the same ID to its bucket twice. Caller holds
// s.mu.
func (s *Service) resurrectEvictedLocked(id string) {
	rec, ok := s.evicted[id]
	if !ok {
		return
	}
	delete(s.evicted, id) // the stale order entry is skipped at trim time
	s.removeBucketLocked(rec.bucket, id)
}

// evictedJob serves a result lookup for an evicted complete job from the
// store. Returns false when the ID is unknown or the store no longer
// holds the report.
func (s *Service) evictedJob(id string) (Job, bool) {
	s.mu.Lock()
	rec, ok := s.evicted[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	rep, ok := s.store.Get(rec.key)
	if !ok {
		return Job{}, false
	}
	return Job{
		ID: id, Program: rec.program, ProgramName: rec.programName,
		Status: StatusDone, Cached: true, Report: rep,
		Bucket: rec.bucket, FinishedAt: rec.finished,
	}, true
}

// New creates a service; it accepts work immediately (programs register
// lazily via RegisterProgram/RegisterSource).
func New(cfg Config) *Service {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ShardWorkers < 1 {
		cfg.ShardWorkers = 1
	}
	if cfg.Store == nil {
		cfg.Store = store.New(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Service{
		cfg:     cfg,
		store:   cfg.Store,
		optFP:   cfg.Analysis.Fingerprint(),
		baseCtx: ctx,
		cancel:  cancel,
		shards:  make(map[string]*shard),
		jobs:    make(map[string]*jobState),
		buckets: make(map[string][]string),
	}
}

// Store exposes the backing store (for metrics and tests).
func (s *Service) Store() *store.Store { return s.store }

// RegisterProgram opens an analysis shard for p and returns its program
// ID (the program fingerprint in hex). Registration is idempotent: the
// same program image maps to the same shard no matter how often — or
// under which name — it is registered.
func (s *Service) RegisterProgram(name string, p *res.Program) (string, error) {
	fp, err := store.ProgramFingerprint(p)
	if err != nil {
		return "", err
	}
	id := fp.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", ErrDraining
	}
	if _, ok := s.shards[id]; ok {
		return id, nil
	}
	aopts := s.cfg.Analysis.options()
	if s.cfg.Analysis.SearchParallelism <= 0 {
		// Unset: split the machine between the shard's workers and each
		// analysis's candidate-level pool instead of multiplying them.
		inner := runtime.GOMAXPROCS(0) / s.cfg.ShardWorkers
		if inner < 1 {
			inner = 1
		}
		aopts = append(aopts, res.WithSearchParallelism(inner))
	}
	sh := &shard{
		fp:       fp,
		name:     name,
		analyzer: res.NewAnalyzer(p, aopts...),
		queue:    make(chan *jobState, s.cfg.QueueDepth),
	}
	s.shards[id] = sh
	for i := 0; i < s.cfg.ShardWorkers; i++ {
		s.wg.Add(1)
		go s.worker(sh)
	}
	return id, nil
}

// RegisterSource assembles src and registers the resulting program.
func (s *Service) RegisterSource(name, src string) (string, error) {
	p, err := res.Assemble(src)
	if err != nil {
		return "", fmt.Errorf("service: assembling %q: %w", name, err)
	}
	return s.RegisterProgram(name, p)
}

// Submit ingests one serialized coredump for the given program. The
// returned Job is a snapshot: for a cache hit it is already done (Cached
// set, Report populated from the store); for fresh work it is queued and
// the caller polls Job/Wait by ID. A duplicate of an in-flight dump
// coalesces onto the existing job. A full shard queue returns
// ErrQueueFull — the caller's cue to back off.
func (s *Service) Submit(programID string, dumpBytes []byte) (Job, error) {
	progFP, err := store.ParseFingerprint(programID)
	if err != nil {
		return Job{}, ErrUnknownProgram
	}
	s.mu.Lock()
	_, known := s.shards[programID]
	s.mu.Unlock()
	if !known {
		return Job{}, ErrUnknownProgram
	}
	dumpFP, canon, d, err := store.CanonicalizeDump(dumpBytes)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrBadDump, err)
	}
	key := store.ResultKey(progFP, dumpFP, s.optFP)
	id := key.ID()

	// Probe the store before taking the service lock (the disk tier does
	// IO). A concurrent duplicate submission is serialized below.
	cachedRep, haveCached := s.store.Get(key)

	s.mu.Lock()
	s.evictJobsLocked() // amortized TTL/cap sweep, uniform across all submit paths
	sh, ok := s.shards[programID]
	if !ok {
		s.mu.Unlock()
		return Job{}, ErrUnknownProgram
	}
	if s.draining {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	var stale *jobState
	if js, ok := s.jobs[id]; ok {
		// Same tuple already known. In flight: coalesce onto it. Finished
		// with a complete answer: serve it as a cache hit. Finished
		// without one (failed, or cut to a partial result by a drain or
		// job timeout): fall through and requeue — a partial answer must
		// never become the tuple's answer of record.
		snap := js.job
		switch {
		case !snap.Status.Terminal():
			s.submitted++
			sh.submitted++
			s.coalesced++
			s.mu.Unlock()
			return snap, nil
		case snap.Status == StatusDone && !snap.Partial:
			s.submitted++
			sh.submitted++
			s.cacheHits++
			sh.cached++
			snap.Cached = true
			if haveCached {
				snap.Report = cachedRep
			}
			s.mu.Unlock()
			if !haveCached {
				// The LRU evicted this result; the job record still holds
				// the complete bytes, so repopulate the store.
				s.store.Put(key, snap.Report)
			}
			return snap, nil
		}
		// The stale record (and its bucket membership, if the partial
		// result earned one) is replaced below, only once the requeue is
		// accepted by the shard queue.
		stale = js
	}
	now := time.Now()
	if haveCached {
		// First sighting in this process — or a stale partial/failed
		// record being superseded — and the store (possibly its disk
		// tier, written by a prior run or another daemon) already has the
		// complete result.
		s.resurrectEvictedLocked(id)
		if stale != nil {
			s.removeBucketLocked(stale.job.Bucket, id)
		}
		s.cacheHits++
		sh.cached++
		sh.submitted++
		s.submitted++
		js := &jobState{
			job: Job{
				ID: id, Program: programID, ProgramName: sh.name,
				Status: StatusDone, Cached: true, Report: cachedRep,
				Bucket:      bucketFromReport(sh.name, cachedRep),
				SubmittedAt: now, FinishedAt: now,
			},
			key:  key,
			done: make(chan struct{}),
		}
		close(js.done)
		s.jobs[id] = js
		s.addBucketLocked(js.job.Bucket, id)
		s.recordDoneLocked(js)
		s.mu.Unlock()
		return js.job, nil
	}
	js := &jobState{
		job: Job{
			ID: id, Program: programID, ProgramName: sh.name,
			Status: StatusQueued, SubmittedAt: now,
		},
		key:  key,
		dump: d,
		done: make(chan struct{}),
	}
	select {
	case sh.queue <- js:
	default:
		sh.rejected++
		s.rejected++
		s.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	s.resurrectEvictedLocked(id)
	if stale != nil {
		s.removeBucketLocked(stale.job.Bucket, id)
	}
	s.cacheMisses++
	sh.submitted++
	s.submitted++
	s.jobs[id] = js
	snap := js.job
	s.mu.Unlock()

	// Persist the dump blob as the service's ingest archive — only when
	// the store has a disk tier. In a memory-only store the blob would
	// just crowd result entries out of the LRU (nothing in-process ever
	// reads a dump blob back).
	if s.store.Persistent() {
		s.store.Put(store.DumpKey(dumpFP), canon)
	}
	return snap, nil
}

// worker drains one shard's queue until Shutdown closes it.
func (s *Service) worker(sh *shard) {
	defer s.wg.Done()
	for js := range sh.queue {
		s.run(sh, js)
	}
}

// run executes one queued analysis and records its outcome.
func (s *Service) run(sh *shard, js *jobState) {
	if s.baseCtx.Err() != nil {
		// The drain deadline fired while this job sat queued.
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusCanceled
			j.Error = "canceled during drain"
		})
		return
	}
	s.mu.Lock()
	js.job.Status = StatusRunning
	s.mu.Unlock()

	if s.cfg.beforeAnalyze != nil {
		s.cfg.beforeAnalyze()
	}
	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	r, err := sh.analyzer.Analyze(ctx, js.dump)
	if r == nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			if err != nil {
				j.Error = err.Error()
			}
		})
		return
	}
	rep, jerr := r.JSON()
	if jerr != nil {
		s.finish(sh, js, func(j *Job) {
			j.Status = StatusFailed
			j.Error = jerr.Error()
		})
		return
	}
	// Only complete, deterministic results enter the store: a partial
	// (drained or timed-out) report depends on where the cut fell and
	// must not be served to future submitters as the answer.
	if err == nil && !r.Partial {
		s.store.Put(js.key, rep)
	}
	bucket := bucketSignature(sh.name, r)
	s.finish(sh, js, func(j *Job) {
		j.Status = StatusDone
		j.Partial = r.Partial
		j.Report = rep
		j.Bucket = bucket
	})
}

// finish applies the terminal mutation, updates counters and buckets, and
// releases waiters.
func (s *Service) finish(sh *shard, js *jobState, mut func(*Job)) {
	s.mu.Lock()
	mut(&js.job)
	js.job.FinishedAt = time.Now()
	// The decoded dump (a full memory image) is only needed for analysis;
	// dropping it here keeps the long-lived jobs map lightweight.
	js.dump = nil
	switch js.job.Status {
	case StatusDone:
		sh.completed++
		s.completed++
		s.addBucketLocked(js.job.Bucket, js.job.ID)
	case StatusFailed:
		sh.failed++
		s.failed++
	case StatusCanceled:
		s.canceled++
	}
	s.recordDoneLocked(js)
	s.mu.Unlock()
	close(js.done)
}

func (s *Service) addBucketLocked(bucket, id string) {
	if bucket == "" {
		return
	}
	s.buckets[bucket] = append(s.buckets[bucket], id)
}

// removeBucketLocked drops one job from a bucket (requeue path). Caller
// holds s.mu.
func (s *Service) removeBucketLocked(bucket, id string) {
	if bucket == "" {
		return
	}
	ids := s.buckets[bucket]
	for i, v := range ids {
		if v == id {
			s.buckets[bucket] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(s.buckets[bucket]) == 0 {
		delete(s.buckets, bucket)
	}
}

// Job returns a snapshot of the job with the given ID. A complete job
// whose in-memory record was evicted by the MaxJobs/JobRetention bounds
// is reconstructed from the result store, so result polls survive
// eviction.
func (s *Service) Job(id string) (Job, bool) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	var snap Job
	if ok {
		snap = js.job
	}
	s.mu.Unlock()
	if !ok {
		return s.evictedJob(id)
	}
	return snap, true
}

// Wait blocks until the job reaches a terminal status (or ctx ends) and
// returns its final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		if job, ok := s.evictedJob(id); ok {
			return job, nil
		}
		return Job{}, ErrUnknownJob
	}
	select {
	case <-js.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return js.job, nil
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
}

// Bucket is one crash-dedup group: every member job shares a root-cause
// (or suffix) signature, so a bucket is one underlying defect.
type Bucket struct {
	Key    string   `json:"key"`
	Count  int      `json:"count"`
	JobIDs []string `json:"job_ids"`
}

// Buckets returns the dedup groups, largest first (ties by key).
func (s *Service) Buckets() []Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Bucket, 0, len(s.buckets))
	for k, ids := range s.buckets {
		out = append(out, Bucket{Key: k, Count: len(ids), JobIDs: append([]string(nil), ids...)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ShardMetrics is one program pool's counters.
type ShardMetrics struct {
	Program    string `json:"program"`
	Name       string `json:"name,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Cached     uint64 `json:"cached"`
	Rejected   uint64 `json:"rejected"`
}

// Metrics is a consistent snapshot of service health.
type Metrics struct {
	QueueDepth   int            `json:"queue_depth"`
	Submitted    uint64         `json:"submitted"`
	Completed    uint64         `json:"completed"`
	Failed       uint64         `json:"failed"`
	Canceled     uint64         `json:"canceled"`
	Rejected     uint64         `json:"rejected"`
	Coalesced    uint64         `json:"coalesced"`
	CacheHits    uint64         `json:"cache_hits"`
	CacheMisses  uint64         `json:"cache_misses"`
	CacheHitRate float64        `json:"cache_hit_rate"`
	Store        store.Stats    `json:"store"`
	Jobs         int            `json:"jobs"`
	JobsEvicted  uint64         `json:"jobs_evicted"`
	Buckets      int            `json:"buckets"`
	Programs     int            `json:"programs"`
	Draining     bool           `json:"draining"`
	Shards       []ShardMetrics `json:"shards"`
}

// Metrics returns a snapshot of all counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Submitted: s.submitted, Completed: s.completed, Failed: s.failed,
		Canceled: s.canceled, Rejected: s.rejected, Coalesced: s.coalesced,
		CacheHits: s.cacheHits, CacheMisses: s.cacheMisses,
		Jobs: len(s.jobs), JobsEvicted: s.jobsEvicted,
		Buckets: len(s.buckets), Programs: len(s.shards),
		Draining: s.draining,
	}
	if total := m.CacheHits + m.CacheMisses; total > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(total)
	}
	for id, sh := range s.shards {
		depth := len(sh.queue)
		m.QueueDepth += depth
		m.Shards = append(m.Shards, ShardMetrics{
			Program: id, Name: sh.name, QueueDepth: depth,
			Submitted: sh.submitted, Completed: sh.completed,
			Failed: sh.failed, Cached: sh.cached, Rejected: sh.rejected,
		})
	}
	s.mu.Unlock()
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].Program < m.Shards[j].Program })
	m.Store = s.store.Stats()
	return m
}

// Shutdown drains the service: new submissions are rejected with
// ErrDraining, queued work keeps running, and Shutdown returns when every
// worker has exited. If ctx ends first, in-flight analyses are canceled —
// they finish immediately with partial results (recorded on their jobs,
// never cached) and queued-but-unstarted jobs are marked canceled.
// Shutdown is idempotent; concurrent calls all wait for the same drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, sh := range s.shards {
			close(sh.queue)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// bucketSignature derives the dedup key from a completed analysis. The
// strongest signal is the root-cause key (stable across manifestations of
// one bug — the paper's fix for WER over-splitting); with no cause, a
// synthesized suffix's schedule shape still groups alike failures; with
// neither, the verdict is all there is.
func bucketSignature(app string, r *res.Result) string {
	if r.Cause != nil {
		return app + "|" + r.Cause.Key()
	}
	if r.Suffix != nil && len(r.Suffix.Steps) > 0 {
		h := sha256.New()
		for _, st := range r.Suffix.Steps {
			fmt.Fprintln(h, st.String())
		}
		return app + "|suffix:" + hex.EncodeToString(h.Sum(nil)[:6])
	}
	if r.HardwareSuspect {
		return app + "|hardware-suspect"
	}
	return app + "|no-cause"
}

// bucketFromReport recovers the dedup key from a stored report (the
// cache-hit path, where no res.Result exists in memory). It mirrors
// bucketSignature over the report's exported schema, res.ReportJSON, so
// a cached job lands in the same bucket a fresh analysis would.
func bucketFromReport(app string, rep []byte) string {
	var parsed res.ReportJSON
	if err := json.Unmarshal(rep, &parsed); err != nil {
		return app + "|unparseable-report"
	}
	if parsed.Cause != nil && parsed.Cause.Key != "" {
		return app + "|" + parsed.Cause.Key
	}
	if parsed.Suffix != nil && len(parsed.Suffix.Steps) > 0 {
		h := sha256.New()
		for _, st := range parsed.Suffix.Steps {
			fmt.Fprintln(h, st)
		}
		return app + "|suffix:" + hex.EncodeToString(h.Sum(nil)[:6])
	}
	if parsed.Verdict == "hardware-suspect" {
		return app + "|hardware-suspect"
	}
	return app + "|no-cause"
}
